// Forest runtime tests: the sharded engine must be a pure function of
// (config, seed) — byte-identical metrics at any shard count — while the
// request mux, cross-shard exchange, per-shard RNG streams, and registry
// merge each hold their own contracts.  This suite also runs under TSan in
// CI (the shards>1 cases drive real pool workers through the barriers).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "forest/forest.hpp"
#include "obs/metrics.hpp"
#include "workload/request_mux.hpp"

namespace dyncon::forest {
namespace {

ForestConfig small_config(unsigned shards) {
  ForestConfig cfg;
  cfg.shards = shards;
  cfg.mux.users = 96;
  cfg.mux.trees = 12;
  cfg.mux.requests_per_user = 6;
  cfg.tree_size = 12;
  cfg.window = 64;
  return cfg;
}

/// Run one engine to completion under a fresh registry; returns the
/// registry JSON (counters + histograms, deterministically ordered) and
/// the stats.
struct RunResult {
  ForestStats stats;
  std::string registry_json;
};

RunResult run_forest(const ForestConfig& cfg, std::uint64_t seed) {
  obs::Registry reg;
  ForestEngine engine(cfg, seed);
  RunResult out;
  {
    obs::ScopedMetrics scope(reg);
    out.stats = engine.run();
  }
  out.registry_json = reg.to_json().dump();
  return out;
}

// ---- shard determinism ------------------------------------------------------

TEST(ForestDeterminism, ByteIdenticalAtOneVsEightShards) {
  const RunResult serial = run_forest(small_config(1), 77);
  const RunResult sharded = run_forest(small_config(8), 77);
  EXPECT_EQ(serial.registry_json, sharded.registry_json);
  EXPECT_EQ(serial.stats.requests, sharded.stats.requests);
  EXPECT_EQ(serial.stats.granted, sharded.stats.granted);
  EXPECT_EQ(serial.stats.rejected, sharded.stats.rejected);
  EXPECT_EQ(serial.stats.other, sharded.stats.other);
  EXPECT_EQ(serial.stats.events, sharded.stats.events);
  EXPECT_EQ(serial.stats.windows, sharded.stats.windows);
  EXPECT_EQ(serial.stats.handoffs, sharded.stats.handoffs);
}

TEST(ForestDeterminism, EveryShardCountAgrees) {
  const RunResult base = run_forest(small_config(1), 5);
  for (unsigned k : {2u, 3u, 5u, 8u}) {
    const RunResult r = run_forest(small_config(k), 5);
    EXPECT_EQ(r.registry_json, base.registry_json) << "shards=" << k;
    EXPECT_EQ(r.stats.events, base.stats.events) << "shards=" << k;
  }
}

TEST(ForestDeterminism, RerunsAreIdenticalAndSeedsDiffer) {
  const RunResult a = run_forest(small_config(4), 11);
  const RunResult b = run_forest(small_config(4), 11);
  const RunResult c = run_forest(small_config(4), 12);
  EXPECT_EQ(a.registry_json, b.registry_json);
  EXPECT_NE(a.registry_json, c.registry_json);
}

TEST(ForestDeterminism, HoldsUnderTightPermitBudget) {
  // Exhaustion (reject waves) is the controller's nastiest path; shard
  // counts must still agree byte-for-byte when budgets run dry.
  ForestConfig cfg = small_config(1);
  cfg.permits_per_tree = 8;
  const RunResult serial = run_forest(cfg, 31);
  cfg.shards = 6;
  const RunResult sharded = run_forest(cfg, 31);
  EXPECT_EQ(serial.registry_json, sharded.registry_json);
  EXPECT_GT(serial.stats.rejected + serial.stats.other, 0u)
      << "budget of 8 permits for 6 requests/user * 96 users must exhaust";
}

TEST(ForestDeterminism, EchoModeAgreesAcrossShardCounts) {
  ForestConfig cfg = small_config(1);
  cfg.service = Service::kEcho;
  const RunResult serial = run_forest(cfg, 9);
  cfg.shards = 8;
  const RunResult sharded = run_forest(cfg, 9);
  EXPECT_EQ(serial.registry_json, sharded.registry_json);
  EXPECT_EQ(serial.stats.granted, serial.stats.requests)
      << "echo grants everything";
}

// ---- cross-shard delivery ---------------------------------------------------

TEST(ForestExchange, CrossShardHandoffsHappenAndStayOutOfMetrics) {
  // With trees striped modulo shards and Zipf-hopping users, follow-up
  // requests must frequently land on a different shard; the count is real
  // work but shard-count dependent, so it lives in stats, not the registry.
  const RunResult serial = run_forest(small_config(1), 3);
  const RunResult sharded = run_forest(small_config(4), 3);
  EXPECT_EQ(serial.stats.cross_shard, 0u);
  EXPECT_GT(sharded.stats.cross_shard, 0u);
  EXPECT_EQ(serial.registry_json, sharded.registry_json)
      << "cross-shard routing may not leak into merged metrics";
  EXPECT_EQ(sharded.registry_json.find("cross_shard"), std::string::npos);
}

TEST(ForestExchange, EveryRequestCompletesExactlyOnce) {
  const ForestConfig cfg = small_config(3);
  const RunResult r = run_forest(cfg, 21);
  const std::uint64_t expected =
      cfg.mux.users * cfg.mux.requests_per_user;
  EXPECT_EQ(r.stats.requests, expected);
  // Follow-ups = everything after each user's opening request.
  EXPECT_EQ(r.stats.handoffs, expected - cfg.mux.users);
  EXPECT_EQ(r.stats.granted + r.stats.rejected + r.stats.other,
            r.stats.requests);
}

TEST(ForestExchange, WindowsAdvanceMonotonically) {
  const RunResult r = run_forest(small_config(2), 13);
  EXPECT_GT(r.stats.windows, 1u);
  // Closed loop + window-edge clamp: a user completes at most one request
  // per window, so the run needs at least requests_per_user windows.
  EXPECT_GE(r.stats.windows, small_config(2).mux.requests_per_user);
}

// ---- per-shard RNG ----------------------------------------------------------

TEST(ForestRng, ShardStreamsAreIndependentAndSeedStable) {
  const ForestConfig cfg = small_config(8);
  ForestEngine a(cfg, 1234);
  ForestEngine b(cfg, 1234);
  ForestEngine c(cfg, 4321);
  const auto fa = a.shard_rng_fingerprints();
  const auto fb = b.shard_rng_fingerprints();
  const auto fc = c.shard_rng_fingerprints();
  ASSERT_EQ(fa.size(), 8u);
  EXPECT_EQ(fa, fb) << "same seed, same per-shard streams";
  EXPECT_NE(fa, fc) << "different seed, different streams";
  const std::set<std::uint64_t> unique(fa.begin(), fa.end());
  EXPECT_EQ(unique.size(), fa.size()) << "shard streams must not collide";
}

// ---- registry merge ---------------------------------------------------------

TEST(ForestRegistry, MergedTotalsMatchTheWorkload) {
  const ForestConfig cfg = small_config(4);
  obs::Registry reg;
  ForestEngine engine(cfg, 55);
  ForestStats stats;
  {
    obs::ScopedMetrics scope(reg);
    stats = engine.run();
  }
  const std::uint64_t expected =
      cfg.mux.users * cfg.mux.requests_per_user;
  EXPECT_EQ(reg.counter("forest.requests.total"), expected);
  EXPECT_EQ(reg.counter("forest.requests.granted"), stats.granted);
  EXPECT_EQ(reg.counter("forest.requests.rejected"), stats.rejected);
  EXPECT_EQ(reg.counter("forest.requests.other"), stats.other);
  EXPECT_EQ(reg.counter("forest.ops.permit") +
                reg.counter("forest.ops.grow") +
                reg.counter("forest.ops.shrink") +
                reg.counter("forest.ops.destroy"),
            expected);
  const obs::Histogram* cost = reg.histogram("forest.serve.cost");
  ASSERT_NE(cost, nullptr);
  EXPECT_EQ(cost->count, expected);
  const obs::Histogram* defer = reg.histogram("forest.mux.defer");
  ASSERT_NE(defer, nullptr);
  EXPECT_EQ(defer->count, stats.handoffs);
}

TEST(ForestRegistry, NoInstalledRegistryIsFine) {
  // The engine must run (and keep its stats) with metrics disabled.
  ForestEngine engine(small_config(2), 8);
  const ForestStats stats = engine.run();
  EXPECT_EQ(stats.requests,
            small_config(2).mux.users * small_config(2).mux.requests_per_user);
}

// ---- engine contracts -------------------------------------------------------

TEST(ForestEngineContracts, RunIsOneShot) {
  ForestEngine engine(small_config(1), 2);
  (void)engine.run();
  EXPECT_THROW((void)engine.run(), ContractError);
}

TEST(ForestEngineContracts, RejectsDegenerateConfigs) {
  ForestConfig cfg = small_config(1);
  cfg.shards = 0;
  EXPECT_THROW(ForestEngine(cfg, 1), ContractError);
  cfg = small_config(1);
  cfg.window = 0;
  EXPECT_THROW(ForestEngine(cfg, 1), ContractError);
  cfg = small_config(1);
  cfg.tree_size = 0;
  EXPECT_THROW(ForestEngine(cfg, 1), ContractError);
}

TEST(ForestEngineContracts, ShardPlacementIsModulo) {
  ForestEngine engine(small_config(3), 1);
  EXPECT_EQ(engine.shards(), 3u);
  EXPECT_EQ(engine.shard_of(0), 0u);
  EXPECT_EQ(engine.shard_of(4), 1u);
  EXPECT_EQ(engine.shard_of(11), 2u);
}

// ---- controller parameter sizing (the u_bound regression) -------------------

TEST(ForestParams, ControllerLevelsIndependentOfUsersAndTrees) {
  // The bug this pins down: u_bound was tree_size + total_requests + 2, so
  // adding unrelated users or trees to the workload silently deepened every
  // controller's level structure.  tree_params must be a pure function of
  // the per-tree knobs.
  ForestConfig small = small_config(1);
  ForestConfig huge = small_config(1);
  huge.mux.users = 1'000'000;
  huge.mux.requests_per_user = 64;
  huge.mux.trees = 500'000;
  const core::Params a = tree_params(small);
  const core::Params b = tree_params(huge);
  EXPECT_EQ(a.M(), b.M());
  EXPECT_EQ(a.U(), b.U());
  EXPECT_EQ(a.W(), b.W());
  EXPECT_EQ(a.U(), small.tree_size + resolved_grow_cap(small) + 2);
  // An explicit cap flows straight through.
  ForestConfig capped = small_config(1);
  capped.grow_cap = 7;
  EXPECT_EQ(resolved_grow_cap(capped), 7u);
  EXPECT_EQ(tree_params(capped).U(), capped.tree_size + 7 + 2);
}

TEST(ForestParams, GrowCapRefusesAsMootDeterministically) {
  // A cap tight enough to trip: grows beyond it complete as kMoot and are
  // counted, and the refusal is byte-identical at any shard count.
  ForestConfig cfg = small_config(1);
  cfg.grow_cap = 2;
  cfg.mux.grow_fraction = 0.5;
  obs::Registry reg;
  ForestEngine engine(cfg, 42);
  {
    obs::ScopedMetrics scope(reg);
    (void)engine.run();
  }
  EXPECT_GT(reg.counter("forest.ops.grow_capped"), 0u);
  EXPECT_LE(reg.counter("forest.ops.grow_capped"),
            reg.counter("forest.ops.grow"));
  const RunResult serial = run_forest(cfg, 42);
  cfg.shards = 5;
  const RunResult sharded = run_forest(cfg, 42);
  EXPECT_EQ(serial.registry_json, sharded.registry_json);
}

// ---- lazy materialization / hibernation -------------------------------------

TEST(ForestMemory, LazyMatchesEagerByteForByte) {
  // Materializing a tree at construction or at first touch must be
  // indistinguishable in every counter, histogram, and invariant stat — a
  // tree's build is a pure function of (seed, tree_id).
  for (std::uint64_t seed : {77ull, 5ull, 910ull}) {
    for (unsigned shards : {1u, 4u}) {
      ForestConfig lazy = small_config(shards);
      ForestConfig eager = small_config(shards);
      eager.eager = true;
      const RunResult a = run_forest(lazy, seed);
      const RunResult b = run_forest(eager, seed);
      EXPECT_EQ(a.registry_json, b.registry_json)
          << "seed=" << seed << " shards=" << shards;
      EXPECT_EQ(a.stats.events, b.stats.events);
      EXPECT_EQ(a.stats.granted, b.stats.granted);
      EXPECT_GE(b.stats.tree_builds, a.stats.tree_builds)
          << "eager builds every tree; lazy only the touched ones";
    }
  }
}

TEST(ForestMemory, ByteIdenticalAtAnyResidentBudget) {
  // The hibernate -> rematerialize round-trip must be invisible: any
  // residency budget (including a starved budget of one resident tree per
  // shard) reproduces the unlimited run's registry exactly.
  for (std::uint64_t seed : {77ull, 31ull}) {
    for (unsigned shards : {1u, 3u, 8u}) {
      ForestConfig cfg = small_config(shards);
      const RunResult unlimited = run_forest(cfg, seed);
      for (std::uint64_t budget : {1ull, 2ull, 8ull}) {
        cfg.resident_trees = budget;
        const RunResult r = run_forest(cfg, seed);
        EXPECT_EQ(r.registry_json, unlimited.registry_json)
            << "seed=" << seed << " shards=" << shards
            << " budget=" << budget;
        EXPECT_EQ(r.stats.events, unlimited.stats.events);
        EXPECT_EQ(r.stats.granted, unlimited.stats.granted);
        EXPECT_EQ(r.stats.handoffs, unlimited.stats.handoffs);
        // Eviction only triggers where a shard hosts more trees than its
        // budget (trees stripe modulo shards).
        const std::uint64_t max_per_shard =
            (cfg.mux.trees + shards - 1) / shards;
        if (budget < max_per_shard) {
          EXPECT_GT(r.stats.hibernations, 0u)
              << "seed=" << seed << " shards=" << shards
              << " budget=" << budget << ": starved budget must evict";
          EXPECT_GT(r.stats.wakes, 0u);
          EXPECT_GT(r.stats.hibernate_bits, 0u);
        }
      }
    }
  }
}

TEST(ForestMemory, SpansIdenticalAtAnyResidentBudget) {
  // Causal spans ride the same determinism contract as the registry.
  auto spans_json = [](std::uint64_t budget) {
    ForestConfig cfg = small_config(3);
    cfg.resident_trees = budget;
    obs::SpanSink sink(std::size_t{1} << 15);
    obs::ScopedSpans span_scope(sink);
    obs::Registry reg;
    ForestEngine engine(cfg, 66);
    {
      obs::ScopedMetrics scope(reg);
      (void)engine.run();
    }
    return sink.to_json().dump();
  };
  const std::string unlimited = spans_json(0);
  EXPECT_EQ(spans_json(1), unlimited);
  EXPECT_EQ(spans_json(4), unlimited);
}

TEST(ForestMemory, TightBudgetUnderManyShards) {
  // The TSan cell: pool workers hibernating and waking trees behind the
  // window barriers, with lazy first-touch materialization on every shard.
  ForestConfig cfg = small_config(8);
  cfg.resident_trees = 1;
  const RunResult r = run_forest(cfg, 123);
  EXPECT_EQ(r.stats.requests, cfg.mux.users * cfg.mux.requests_per_user);
  EXPECT_GT(r.stats.hibernations, 0u);
  EXPECT_GT(r.stats.wakes, 0u);
}

TEST(ForestMemory, MemStatsPartitionAndAccounting) {
  ForestConfig cfg = small_config(2);
  cfg.resident_trees = 2;
  ForestEngine engine(cfg, 9);
  (void)engine.run();
  const ForestMemStats m = engine.mem_stats();
  EXPECT_EQ(m.trees, cfg.mux.trees);
  EXPECT_EQ(m.resident + m.hibernated, m.materialized);
  EXPECT_EQ(m.materialized + m.virgin, m.trees);
  EXPECT_LE(m.resident, 2u * cfg.shards) << "per-shard budget enforced";
  EXPECT_GT(m.hibernated, 0u);
  EXPECT_GT(m.image_bytes, 0u);
  EXPECT_GT(m.arena_bytes, 0u);
  EXPECT_GT(m.index_bytes, 0u);
  EXPECT_EQ(m.accounting_bytes(),
            m.arena_bytes + m.image_bytes + m.index_bytes);
}

TEST(ForestMemory, NeverTouchedForestCostsOnlyTheIndex) {
  // A lazily-constructed engine with zero requests materializes nothing.
  ForestConfig cfg = small_config(1);
  cfg.mux.trees = 10'000;
  cfg.mux.requests_per_user = 0;
  ForestEngine engine(cfg, 4);
  const ForestMemStats m = engine.mem_stats();
  EXPECT_EQ(m.virgin, 10'000u);
  EXPECT_EQ(m.materialized, 0u);
  EXPECT_EQ(m.arena_bytes, 0u);
  EXPECT_LT(m.index_bytes / m.trees, 32u) << "a few dozen bytes per tree";
}

// ---- tenant destroy ---------------------------------------------------------

TEST(ForestDestroy, DeterministicAcrossShardsAndBudgets) {
  ForestConfig cfg = small_config(1);
  cfg.mux.destroy_fraction = 0.12;
  obs::Registry reg;
  {
    ForestEngine engine(cfg, 202);
    obs::ScopedMetrics scope(reg);
    (void)engine.run();
  }
  EXPECT_GT(reg.counter("forest.ops.destroy"), 0u);
  EXPECT_EQ(reg.counter("forest.ops.permit") +
                reg.counter("forest.ops.grow") +
                reg.counter("forest.ops.shrink") +
                reg.counter("forest.ops.destroy"),
            reg.counter("forest.requests.total"));
  const RunResult serial = run_forest(cfg, 202);
  cfg.shards = 4;
  const RunResult sharded = run_forest(cfg, 202);
  EXPECT_EQ(serial.registry_json, sharded.registry_json);
  cfg.resident_trees = 1;
  const RunResult starved = run_forest(cfg, 202);
  EXPECT_EQ(starved.registry_json, serial.registry_json)
      << "destroy + hibernation must still be byte-identical";
}

}  // namespace
}  // namespace dyncon::forest

// ---- hibernation round-trip (component level) -------------------------------

namespace dyncon::forest {
namespace {

/// Drive `steps` deterministic ops against a controller-backed tree,
/// mirroring the engine's serve() draws.  Mutates grown/grows like the
/// engine does.
void drive(tree::DynamicTree& t, core::CentralizedController& ctrl, Rng& rng,
           std::vector<NodeId>& grown, std::uint64_t& grows,
           std::uint64_t tree_size, int steps) {
  for (int i = 0; i < steps; ++i) {
    const std::uint64_t pick = rng.next() % 4;
    if (pick == 0) {
      const NodeId parent =
          static_cast<NodeId>(rng.index(static_cast<std::size_t>(tree_size)));
      const core::Result res = ctrl.request_add_leaf(parent);
      if (res.granted()) {
        grown.push_back(res.new_node);
        ++grows;
      }
    } else if (pick == 1 && !grown.empty()) {
      const core::Result res = ctrl.request_remove(grown.back());
      if (res.granted()) grown.pop_back();
    } else {
      const NodeId site =
          static_cast<NodeId>(rng.index(static_cast<std::size_t>(tree_size)));
      (void)ctrl.request_event(site);
    }
  }
  (void)t;
}

TEST(HibernateRoundTrip, CaptureEncodeDecodeRestoreIsLossless) {
  constexpr std::uint64_t kTreeSize = 16;
  ForestConfig cfg;
  cfg.tree_size = kTreeSize;
  const core::Params params = tree_params(cfg);
  core::CentralizedController::Options opts;
  opts.track_domains = false;

  for (std::uint64_t seed : {1ull, 99ull, 4242ull}) {
    // Original timeline: build, drive, capture.
    tree::DynamicTree t1;
    Rng build1(seed);
    build_initial_topology(t1, build1, kTreeSize);
    core::CentralizedController c1(t1, params, opts);
    Rng rng1(seed ^ 0xabcdefULL);
    std::vector<NodeId> grown1;
    std::uint64_t grows1 = 0;
    drive(t1, c1, rng1, grown1, grows1, kTreeSize, 60);

    TreeImage img;
    capture_tree_image(img, t1, &c1, rng1, grown1, grows1);
    const sim::Encoded enc = encode_tree_image(img);
    EXPECT_EQ(enc.bits, tree_image_bits(img)) << "counter and writer agree";
    const TreeImage dec = decode_tree_image(enc);
    EXPECT_EQ(img, dec) << "codec round-trip, seed=" << seed;

    // Rematerialize exactly as wake() does.
    tree::DynamicTree t2;
    Rng build2(seed);
    build_initial_topology(t2, build2, kTreeSize);
    replay_grown_nodes(t2, dec);
    EXPECT_EQ(t2.total_ever(), t1.total_ever());
    EXPECT_EQ(t2.size(), t1.size());
    core::CentralizedController c2(t2, params, opts);
    c2.restore_image(dec.ctrl);
    Rng rng2(1);  // state overwritten below
    rng2.set_state(dec.rng_state);
    std::vector<NodeId> grown2;
    grown2.reserve(dec.grown.size());
    for (const auto& [id, parent] : dec.grown) grown2.push_back(id);
    std::uint64_t grows2 = dec.grows;

    // Both timelines must now evolve identically: same draws, same grants,
    // same captured state afterwards.
    drive(t1, c1, rng1, grown1, grows1, kTreeSize, 40);
    drive(t2, c2, rng2, grown2, grows2, kTreeSize, 40);
    TreeImage after1;
    TreeImage after2;
    capture_tree_image(after1, t1, &c1, rng1, grown1, grows1);
    capture_tree_image(after2, t2, &c2, rng2, grown2, grows2);
    EXPECT_EQ(after1, after2) << "post-wake divergence, seed=" << seed;
    EXPECT_EQ(c1.cost(), c2.cost());
  }
}

TEST(HibernateRoundTrip, EchoImageHasNoController) {
  tree::DynamicTree t;
  Rng build(7);
  build_initial_topology(t, build, 8);
  Rng rng(8);
  TreeImage img;
  capture_tree_image(img, t, nullptr, rng, {}, 0);
  EXPECT_FALSE(img.has_ctrl);
  const TreeImage dec = decode_tree_image(encode_tree_image(img));
  EXPECT_EQ(img, dec);
}

}  // namespace
}  // namespace dyncon::forest

// ---- request mux ------------------------------------------------------------

namespace dyncon::workload {
namespace {

MuxConfig mux_config() {
  MuxConfig cfg;
  cfg.users = 40;
  cfg.trees = 10;
  cfg.requests_per_user = 5;
  return cfg;
}

TEST(RequestMux, InitialRequestsOnePerUserSorted) {
  RequestMux mux(mux_config(), 17);
  const auto reqs = mux.initial_requests();
  ASSERT_EQ(reqs.size(), 40u);
  std::set<std::uint64_t> users;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    users.insert(reqs[i].user);
    EXPECT_LT(reqs[i].tree, 10u);
    if (i > 0) {
      const bool ordered =
          reqs[i - 1].ready < reqs[i].ready ||
          (reqs[i - 1].ready == reqs[i].ready &&
           reqs[i - 1].user < reqs[i].user);
      EXPECT_TRUE(ordered) << "at " << i;
    }
  }
  EXPECT_EQ(users.size(), 40u);
  EXPECT_THROW((void)mux.initial_requests(), ContractError);
}

TEST(RequestMux, NextRequestHonorsFloorAndBudget) {
  RequestMux mux(mux_config(), 17);
  (void)mux.initial_requests();
  MuxRequest req;
  std::uint64_t served = 1;  // the initial request
  while (mux.next_request(/*user=*/7, /*done=*/100, /*floor=*/5000, req)) {
    EXPECT_GE(req.ready, 5000u) << "floor is the earliest admissible time";
    EXPECT_EQ(req.user, 7u);
    ++served;
  }
  EXPECT_EQ(served, mux_config().requests_per_user);
  EXPECT_FALSE(mux.next_request(7, 0, 0, req)) << "budget stays exhausted";
}

TEST(RequestMux, StreamsDependOnlyOnSeedAndUser) {
  // The same user replayed with the same completion times must draw the
  // same requests, whatever other users did in between — the property the
  // forest's shard-count invariance rests on.
  auto draw_user3 = [](bool interleave_others) {
    RequestMux mux(mux_config(), 99);
    (void)mux.initial_requests();
    std::vector<MuxRequest> got;
    MuxRequest req;
    for (int round = 0; round < 4; ++round) {
      if (interleave_others) {
        for (std::uint64_t u : {1ull, 5ull, 9ull}) {
          (void)mux.next_request(u, 10 * (round + 1), 0, req);
        }
      }
      if (mux.next_request(3, 10 * (round + 1), 0, req)) got.push_back(req);
    }
    return got;
  };
  const auto quiet = draw_user3(false);
  const auto busy = draw_user3(true);
  ASSERT_EQ(quiet.size(), busy.size());
  for (std::size_t i = 0; i < quiet.size(); ++i) {
    EXPECT_EQ(quiet[i].ready, busy[i].ready) << i;
    EXPECT_EQ(quiet[i].tree, busy[i].tree) << i;
    EXPECT_EQ(quiet[i].op, busy[i].op) << i;
  }
}

TEST(RequestMux, OpMixRoughlyMatchesFractions) {
  MuxConfig cfg = mux_config();
  cfg.users = 400;
  cfg.requests_per_user = 10;
  cfg.grow_fraction = 0.3;
  cfg.shrink_fraction = 0.2;
  RequestMux mux(cfg, 7);
  std::uint64_t grow = 0, shrink = 0, total = 0;
  for (const auto& r : mux.initial_requests()) {
    grow += r.op == ForestOp::kGrow;
    shrink += r.op == ForestOp::kShrink;
    ++total;
  }
  MuxRequest req;
  for (std::uint64_t u = 0; u < cfg.users; ++u) {
    while (mux.next_request(u, 1, 0, req)) {
      grow += req.op == ForestOp::kGrow;
      shrink += req.op == ForestOp::kShrink;
      ++total;
    }
  }
  EXPECT_EQ(total, mux.total_requests());
  EXPECT_NEAR(static_cast<double>(grow) / total, 0.3, 0.03);
  EXPECT_NEAR(static_cast<double>(shrink) / total, 0.2, 0.03);
}

TEST(RequestMux, DestroyFractionDrawsDestroyOps) {
  MuxConfig cfg = mux_config();
  cfg.users = 400;
  cfg.requests_per_user = 10;
  cfg.destroy_fraction = 0.25;
  RequestMux mux(cfg, 7);
  std::uint64_t destroy = 0, total = 0;
  for (const auto& r : mux.initial_requests()) {
    destroy += r.op == ForestOp::kDestroy;
    ++total;
  }
  MuxRequest req;
  for (std::uint64_t u = 0; u < cfg.users; ++u) {
    while (mux.next_request(u, 1, 0, req)) {
      destroy += req.op == ForestOp::kDestroy;
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(destroy) / total, 0.25, 0.03);
}

TEST(RequestMux, ZeroDestroyFractionDrawsNone) {
  // The default keeps every seeded stream exactly as it was before the
  // knob existed: the destroy band is empty, so no draw can land in it.
  RequestMux mux(mux_config(), 123);
  for (const auto& r : mux.initial_requests()) {
    EXPECT_NE(r.op, ForestOp::kDestroy);
  }
}

TEST(RequestMux, RejectsBadConfigs) {
  MuxConfig cfg = mux_config();
  cfg.users = 0;
  EXPECT_THROW(RequestMux(cfg, 1), ContractError);
  cfg = mux_config();
  cfg.grow_fraction = 0.8;
  cfg.shrink_fraction = 0.4;  // sums past 1.0
  EXPECT_THROW(RequestMux(cfg, 1), ContractError);
  cfg = mux_config();
  cfg.grow_fraction = 0.5;
  cfg.shrink_fraction = 0.3;
  cfg.destroy_fraction = 0.3;  // sums past 1.0 only with destroy
  EXPECT_THROW(RequestMux(cfg, 1), ContractError);
  cfg = mux_config();
  cfg.mean_think = 0;
  EXPECT_THROW(RequestMux(cfg, 1), ContractError);
}

}  // namespace
}  // namespace dyncon::workload

// Forest runtime tests: the sharded engine must be a pure function of
// (config, seed) — byte-identical metrics at any shard count — while the
// request mux, cross-shard exchange, per-shard RNG streams, and registry
// merge each hold their own contracts.  This suite also runs under TSan in
// CI (the shards>1 cases drive real pool workers through the barriers).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "forest/forest.hpp"
#include "obs/metrics.hpp"
#include "workload/request_mux.hpp"

namespace dyncon::forest {
namespace {

ForestConfig small_config(unsigned shards) {
  ForestConfig cfg;
  cfg.shards = shards;
  cfg.mux.users = 96;
  cfg.mux.trees = 12;
  cfg.mux.requests_per_user = 6;
  cfg.tree_size = 12;
  cfg.window = 64;
  return cfg;
}

/// Run one engine to completion under a fresh registry; returns the
/// registry JSON (counters + histograms, deterministically ordered) and
/// the stats.
struct RunResult {
  ForestStats stats;
  std::string registry_json;
};

RunResult run_forest(const ForestConfig& cfg, std::uint64_t seed) {
  obs::Registry reg;
  ForestEngine engine(cfg, seed);
  RunResult out;
  {
    obs::ScopedMetrics scope(reg);
    out.stats = engine.run();
  }
  out.registry_json = reg.to_json().dump();
  return out;
}

// ---- shard determinism ------------------------------------------------------

TEST(ForestDeterminism, ByteIdenticalAtOneVsEightShards) {
  const RunResult serial = run_forest(small_config(1), 77);
  const RunResult sharded = run_forest(small_config(8), 77);
  EXPECT_EQ(serial.registry_json, sharded.registry_json);
  EXPECT_EQ(serial.stats.requests, sharded.stats.requests);
  EXPECT_EQ(serial.stats.granted, sharded.stats.granted);
  EXPECT_EQ(serial.stats.rejected, sharded.stats.rejected);
  EXPECT_EQ(serial.stats.other, sharded.stats.other);
  EXPECT_EQ(serial.stats.events, sharded.stats.events);
  EXPECT_EQ(serial.stats.windows, sharded.stats.windows);
  EXPECT_EQ(serial.stats.handoffs, sharded.stats.handoffs);
}

TEST(ForestDeterminism, EveryShardCountAgrees) {
  const RunResult base = run_forest(small_config(1), 5);
  for (unsigned k : {2u, 3u, 5u, 8u}) {
    const RunResult r = run_forest(small_config(k), 5);
    EXPECT_EQ(r.registry_json, base.registry_json) << "shards=" << k;
    EXPECT_EQ(r.stats.events, base.stats.events) << "shards=" << k;
  }
}

TEST(ForestDeterminism, RerunsAreIdenticalAndSeedsDiffer) {
  const RunResult a = run_forest(small_config(4), 11);
  const RunResult b = run_forest(small_config(4), 11);
  const RunResult c = run_forest(small_config(4), 12);
  EXPECT_EQ(a.registry_json, b.registry_json);
  EXPECT_NE(a.registry_json, c.registry_json);
}

TEST(ForestDeterminism, HoldsUnderTightPermitBudget) {
  // Exhaustion (reject waves) is the controller's nastiest path; shard
  // counts must still agree byte-for-byte when budgets run dry.
  ForestConfig cfg = small_config(1);
  cfg.permits_per_tree = 8;
  const RunResult serial = run_forest(cfg, 31);
  cfg.shards = 6;
  const RunResult sharded = run_forest(cfg, 31);
  EXPECT_EQ(serial.registry_json, sharded.registry_json);
  EXPECT_GT(serial.stats.rejected + serial.stats.other, 0u)
      << "budget of 8 permits for 6 requests/user * 96 users must exhaust";
}

TEST(ForestDeterminism, EchoModeAgreesAcrossShardCounts) {
  ForestConfig cfg = small_config(1);
  cfg.service = Service::kEcho;
  const RunResult serial = run_forest(cfg, 9);
  cfg.shards = 8;
  const RunResult sharded = run_forest(cfg, 9);
  EXPECT_EQ(serial.registry_json, sharded.registry_json);
  EXPECT_EQ(serial.stats.granted, serial.stats.requests)
      << "echo grants everything";
}

// ---- cross-shard delivery ---------------------------------------------------

TEST(ForestExchange, CrossShardHandoffsHappenAndStayOutOfMetrics) {
  // With trees striped modulo shards and Zipf-hopping users, follow-up
  // requests must frequently land on a different shard; the count is real
  // work but shard-count dependent, so it lives in stats, not the registry.
  const RunResult serial = run_forest(small_config(1), 3);
  const RunResult sharded = run_forest(small_config(4), 3);
  EXPECT_EQ(serial.stats.cross_shard, 0u);
  EXPECT_GT(sharded.stats.cross_shard, 0u);
  EXPECT_EQ(serial.registry_json, sharded.registry_json)
      << "cross-shard routing may not leak into merged metrics";
  EXPECT_EQ(sharded.registry_json.find("cross_shard"), std::string::npos);
}

TEST(ForestExchange, EveryRequestCompletesExactlyOnce) {
  const ForestConfig cfg = small_config(3);
  const RunResult r = run_forest(cfg, 21);
  const std::uint64_t expected =
      cfg.mux.users * cfg.mux.requests_per_user;
  EXPECT_EQ(r.stats.requests, expected);
  // Follow-ups = everything after each user's opening request.
  EXPECT_EQ(r.stats.handoffs, expected - cfg.mux.users);
  EXPECT_EQ(r.stats.granted + r.stats.rejected + r.stats.other,
            r.stats.requests);
}

TEST(ForestExchange, WindowsAdvanceMonotonically) {
  const RunResult r = run_forest(small_config(2), 13);
  EXPECT_GT(r.stats.windows, 1u);
  // Closed loop + window-edge clamp: a user completes at most one request
  // per window, so the run needs at least requests_per_user windows.
  EXPECT_GE(r.stats.windows, small_config(2).mux.requests_per_user);
}

// ---- per-shard RNG ----------------------------------------------------------

TEST(ForestRng, ShardStreamsAreIndependentAndSeedStable) {
  const ForestConfig cfg = small_config(8);
  ForestEngine a(cfg, 1234);
  ForestEngine b(cfg, 1234);
  ForestEngine c(cfg, 4321);
  const auto fa = a.shard_rng_fingerprints();
  const auto fb = b.shard_rng_fingerprints();
  const auto fc = c.shard_rng_fingerprints();
  ASSERT_EQ(fa.size(), 8u);
  EXPECT_EQ(fa, fb) << "same seed, same per-shard streams";
  EXPECT_NE(fa, fc) << "different seed, different streams";
  const std::set<std::uint64_t> unique(fa.begin(), fa.end());
  EXPECT_EQ(unique.size(), fa.size()) << "shard streams must not collide";
}

// ---- registry merge ---------------------------------------------------------

TEST(ForestRegistry, MergedTotalsMatchTheWorkload) {
  const ForestConfig cfg = small_config(4);
  obs::Registry reg;
  ForestEngine engine(cfg, 55);
  ForestStats stats;
  {
    obs::ScopedMetrics scope(reg);
    stats = engine.run();
  }
  const std::uint64_t expected =
      cfg.mux.users * cfg.mux.requests_per_user;
  EXPECT_EQ(reg.counter("forest.requests.total"), expected);
  EXPECT_EQ(reg.counter("forest.requests.granted"), stats.granted);
  EXPECT_EQ(reg.counter("forest.requests.rejected"), stats.rejected);
  EXPECT_EQ(reg.counter("forest.requests.other"), stats.other);
  EXPECT_EQ(reg.counter("forest.ops.permit") +
                reg.counter("forest.ops.grow") +
                reg.counter("forest.ops.shrink"),
            expected);
  const obs::Histogram* cost = reg.histogram("forest.serve.cost");
  ASSERT_NE(cost, nullptr);
  EXPECT_EQ(cost->count, expected);
  const obs::Histogram* defer = reg.histogram("forest.mux.defer");
  ASSERT_NE(defer, nullptr);
  EXPECT_EQ(defer->count, stats.handoffs);
}

TEST(ForestRegistry, NoInstalledRegistryIsFine) {
  // The engine must run (and keep its stats) with metrics disabled.
  ForestEngine engine(small_config(2), 8);
  const ForestStats stats = engine.run();
  EXPECT_EQ(stats.requests,
            small_config(2).mux.users * small_config(2).mux.requests_per_user);
}

// ---- engine contracts -------------------------------------------------------

TEST(ForestEngineContracts, RunIsOneShot) {
  ForestEngine engine(small_config(1), 2);
  (void)engine.run();
  EXPECT_THROW((void)engine.run(), ContractError);
}

TEST(ForestEngineContracts, RejectsDegenerateConfigs) {
  ForestConfig cfg = small_config(1);
  cfg.shards = 0;
  EXPECT_THROW(ForestEngine(cfg, 1), ContractError);
  cfg = small_config(1);
  cfg.window = 0;
  EXPECT_THROW(ForestEngine(cfg, 1), ContractError);
  cfg = small_config(1);
  cfg.tree_size = 0;
  EXPECT_THROW(ForestEngine(cfg, 1), ContractError);
}

TEST(ForestEngineContracts, ShardPlacementIsModulo) {
  ForestEngine engine(small_config(3), 1);
  EXPECT_EQ(engine.shards(), 3u);
  EXPECT_EQ(engine.shard_of(0), 0u);
  EXPECT_EQ(engine.shard_of(4), 1u);
  EXPECT_EQ(engine.shard_of(11), 2u);
}

}  // namespace
}  // namespace dyncon::forest

// ---- request mux ------------------------------------------------------------

namespace dyncon::workload {
namespace {

MuxConfig mux_config() {
  MuxConfig cfg;
  cfg.users = 40;
  cfg.trees = 10;
  cfg.requests_per_user = 5;
  return cfg;
}

TEST(RequestMux, InitialRequestsOnePerUserSorted) {
  RequestMux mux(mux_config(), 17);
  const auto reqs = mux.initial_requests();
  ASSERT_EQ(reqs.size(), 40u);
  std::set<std::uint64_t> users;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    users.insert(reqs[i].user);
    EXPECT_LT(reqs[i].tree, 10u);
    if (i > 0) {
      const bool ordered =
          reqs[i - 1].ready < reqs[i].ready ||
          (reqs[i - 1].ready == reqs[i].ready &&
           reqs[i - 1].user < reqs[i].user);
      EXPECT_TRUE(ordered) << "at " << i;
    }
  }
  EXPECT_EQ(users.size(), 40u);
  EXPECT_THROW((void)mux.initial_requests(), ContractError);
}

TEST(RequestMux, NextRequestHonorsFloorAndBudget) {
  RequestMux mux(mux_config(), 17);
  (void)mux.initial_requests();
  MuxRequest req;
  std::uint64_t served = 1;  // the initial request
  while (mux.next_request(/*user=*/7, /*done=*/100, /*floor=*/5000, req)) {
    EXPECT_GE(req.ready, 5000u) << "floor is the earliest admissible time";
    EXPECT_EQ(req.user, 7u);
    ++served;
  }
  EXPECT_EQ(served, mux_config().requests_per_user);
  EXPECT_FALSE(mux.next_request(7, 0, 0, req)) << "budget stays exhausted";
}

TEST(RequestMux, StreamsDependOnlyOnSeedAndUser) {
  // The same user replayed with the same completion times must draw the
  // same requests, whatever other users did in between — the property the
  // forest's shard-count invariance rests on.
  auto draw_user3 = [](bool interleave_others) {
    RequestMux mux(mux_config(), 99);
    (void)mux.initial_requests();
    std::vector<MuxRequest> got;
    MuxRequest req;
    for (int round = 0; round < 4; ++round) {
      if (interleave_others) {
        for (std::uint64_t u : {1ull, 5ull, 9ull}) {
          (void)mux.next_request(u, 10 * (round + 1), 0, req);
        }
      }
      if (mux.next_request(3, 10 * (round + 1), 0, req)) got.push_back(req);
    }
    return got;
  };
  const auto quiet = draw_user3(false);
  const auto busy = draw_user3(true);
  ASSERT_EQ(quiet.size(), busy.size());
  for (std::size_t i = 0; i < quiet.size(); ++i) {
    EXPECT_EQ(quiet[i].ready, busy[i].ready) << i;
    EXPECT_EQ(quiet[i].tree, busy[i].tree) << i;
    EXPECT_EQ(quiet[i].op, busy[i].op) << i;
  }
}

TEST(RequestMux, OpMixRoughlyMatchesFractions) {
  MuxConfig cfg = mux_config();
  cfg.users = 400;
  cfg.requests_per_user = 10;
  cfg.grow_fraction = 0.3;
  cfg.shrink_fraction = 0.2;
  RequestMux mux(cfg, 7);
  std::uint64_t grow = 0, shrink = 0, total = 0;
  for (const auto& r : mux.initial_requests()) {
    grow += r.op == ForestOp::kGrow;
    shrink += r.op == ForestOp::kShrink;
    ++total;
  }
  MuxRequest req;
  for (std::uint64_t u = 0; u < cfg.users; ++u) {
    while (mux.next_request(u, 1, 0, req)) {
      grow += req.op == ForestOp::kGrow;
      shrink += req.op == ForestOp::kShrink;
      ++total;
    }
  }
  EXPECT_EQ(total, mux.total_requests());
  EXPECT_NEAR(static_cast<double>(grow) / total, 0.3, 0.03);
  EXPECT_NEAR(static_cast<double>(shrink) / total, 0.2, 0.03);
}

TEST(RequestMux, RejectsBadConfigs) {
  MuxConfig cfg = mux_config();
  cfg.users = 0;
  EXPECT_THROW(RequestMux(cfg, 1), ContractError);
  cfg = mux_config();
  cfg.grow_fraction = 0.8;
  cfg.shrink_fraction = 0.4;  // sums past 1.0
  EXPECT_THROW(RequestMux(cfg, 1), ContractError);
  cfg = mux_config();
  cfg.mean_think = 0;
  EXPECT_THROW(RequestMux(cfg, 1), ContractError);
}

}  // namespace
}  // namespace dyncon::workload

// Parameterized property sweep for the distributed controller: across
// delay adversaries, tree shapes and seeds, concurrent request bursts must
// all complete, respect safety/liveness, keep the tree valid, drain all
// agents, and leave the domain invariants intact at quiescent points.

#include <gtest/gtest.h>

#include <tuple>

#include "core/distributed_controller.hpp"
#include "core/distributed_iterated.hpp"
#include "tree/validate.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"
#include "workload/shapes.hpp"

namespace dyncon::core {
namespace {

using tree::DynamicTree;
using workload::ChurnModel;
using workload::Shape;

using Case = std::tuple<sim::DelayKind, Shape, std::uint64_t /*seed*/>;

class DistributedProperty : public ::testing::TestWithParam<Case> {};

TEST_P(DistributedProperty, ConcurrentChurnBursts) {
  const auto [kind, shape, seed] = GetParam();
  Rng rng(seed);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(kind, seed * 31 + 7));
  DynamicTree t;
  workload::build(t, shape, 24, rng);

  const std::uint64_t M = 150, W = 30;
  DistributedController ctrl(net, t, Params(M, W, 1024));
  workload::ChurnGenerator churn(ChurnModel::kInternalChurn,
                                 Rng(seed * 13 + 3));
  const auto stats = workload::run_churn_async(
      ctrl, queue, t, churn, /*steps=*/200, /*burst=*/10,
      /*event_fraction=*/0.25, rng);

  EXPECT_EQ(stats.requests, 200u);
  EXPECT_LE(ctrl.permits_granted(), M);
  if (stats.rejected > 0) {
    EXPECT_GE(ctrl.permits_granted(), M - W);
  }
  EXPECT_EQ(ctrl.active_agents(), 0u);
  const auto valid = tree::validate(t);
  EXPECT_TRUE(valid.ok()) << valid.detail;
  ASSERT_NE(ctrl.domains(), nullptr);
  EXPECT_EQ(ctrl.domains()->check_invariants(), "");
  // Conservation: every permit is granted, parked, or still at the root.
  EXPECT_EQ(ctrl.permits_granted() + ctrl.unused_permits(), M);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistributedProperty,
    ::testing::Combine(
        ::testing::Values(sim::DelayKind::kFixed, sim::DelayKind::kUniform,
                          sim::DelayKind::kHeavyTail,
                          sim::DelayKind::kBiased,
                          sim::DelayKind::kReorder),
        ::testing::Values(Shape::kPath, Shape::kStar, Shape::kRandomAttach,
                          Shape::kCaterpillar),
        ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<Case>& info) {
      return std::string(sim::delay_kind_name(std::get<0>(info.param))) +
             "_" + workload::shape_name(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

/// Deep concurrent contention on a single path: the worst case for the
/// locking discipline (every agent wants the same ancestors).
class PathContention : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PathContention, AllRequestsAnswered) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kUniform, seed));
  DynamicTree t;
  workload::build(t, Shape::kPath, 80, rng);
  const std::uint64_t M = 100;
  DistributedController ctrl(net, t, Params(M, 50, 512));
  const auto nodes = t.alive_nodes();
  int answered = 0, granted = 0;
  for (int i = 0; i < 90; ++i) {
    ctrl.submit_event(nodes[rng.index(nodes.size())], [&](const Result& r) {
      ++answered;
      granted += r.granted();
    });
  }
  queue.run();
  EXPECT_EQ(answered, 90);
  EXPECT_EQ(granted, 90);  // M = 100 > 90: everything must be granted
  EXPECT_EQ(ctrl.active_agents(), 0u);
  EXPECT_EQ(ctrl.domains()->check_invariants(), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathContention,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

/// The iterated pipeline under concurrency: rotations mid-burst.
class IteratedConcurrency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IteratedConcurrency, ExactAccounting) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kUniform, seed));
  DynamicTree t;
  workload::build(t, Shape::kRandomAttach, 20, rng);
  const std::uint64_t M = 48;
  DistributedIterated ctrl(net, t, M, /*W=*/1, /*U=*/128);
  const auto nodes = t.alive_nodes();
  int granted = 0, rejected = 0;
  for (int i = 0; i < 150; ++i) {
    ctrl.submit_event(nodes[rng.index(nodes.size())], [&](const Result& r) {
      granted += r.granted();
      rejected += r.outcome == Outcome::kRejected;
    });
    if (i % 10 == 9) queue.run();
  }
  queue.run();
  EXPECT_EQ(granted + rejected, 150);
  EXPECT_GE(granted, static_cast<int>(M - 1));
  EXPECT_LE(granted, static_cast<int>(M));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IteratedConcurrency,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u));

}  // namespace
}  // namespace dyncon::core

// Unit tests for the baselines: the trivial root-trip controller and the
// AAPS bin-hierarchy reimplementation.

#include <gtest/gtest.h>

#include <vector>

#include "core/aaps_controller.hpp"
#include "core/iterated_controller.hpp"
#include "core/trivial_controller.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/shapes.hpp"

namespace dyncon::core {
namespace {

using tree::DynamicTree;

TEST(Trivial, GrantsThenRejects) {
  DynamicTree t;
  TrivialController ctrl(t, 3);
  EXPECT_TRUE(ctrl.request_event(t.root()).granted());
  EXPECT_TRUE(ctrl.request_event(t.root()).granted());
  EXPECT_TRUE(ctrl.request_event(t.root()).granted());
  EXPECT_EQ(ctrl.request_event(t.root()).outcome, Outcome::kRejected);
  EXPECT_EQ(ctrl.permits_granted(), 3u);
  EXPECT_EQ(ctrl.rejects_delivered(), 1u);
}

TEST(Trivial, CostIsRoundTripDepth) {
  Rng rng(1);
  DynamicTree t;
  workload::build(t, workload::Shape::kPath, 11, rng);
  TrivialController ctrl(t, 100);
  const NodeId deep = t.alive_nodes().back();
  ASSERT_EQ(t.depth(deep), 10u);
  ctrl.request_event(deep);
  EXPECT_EQ(ctrl.cost(), 20u);
  ctrl.request_event(deep);
  EXPECT_EQ(ctrl.cost(), 40u);  // no amortization, ever
}

TEST(Trivial, SupportsFullDynamicModel) {
  DynamicTree t;
  TrivialController ctrl(t, 100);
  const auto leaf = ctrl.request_add_leaf(t.root());
  ASSERT_TRUE(leaf.granted());
  const auto mid = ctrl.request_add_internal_above(leaf.new_node);
  ASSERT_TRUE(mid.granted());
  EXPECT_TRUE(ctrl.request_remove(mid.new_node).granted());
  EXPECT_TRUE(ctrl.request_remove(leaf.new_node).granted());
  EXPECT_EQ(t.size(), 1u);
}

TEST(AAPS, GrantsWithinBudget) {
  Rng rng(2);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 32, rng);
  const std::uint64_t M = 50;
  AAPSController ctrl(t, M, M / 2, /*U=*/128);
  const auto nodes = t.alive_nodes();
  std::uint64_t granted = 0;
  for (std::uint64_t i = 0; i < 3 * M; ++i) {
    granted += ctrl.request_event(nodes[i % nodes.size()]).granted();
  }
  EXPECT_LE(granted, M);
  EXPECT_GE(granted, M / 4);  // the bin hierarchy strands bounded waste
}

TEST(AAPS, GrowOnlyModelEnforced) {
  DynamicTree t;
  AAPSController ctrl(t, 10, 5, 16);
  const auto leaf = ctrl.request_add_leaf(t.root());
  ASSERT_TRUE(leaf.granted());
  EXPECT_THROW(ctrl.request_remove(leaf.new_node), ContractError);
  EXPECT_THROW(ctrl.request_add_internal_above(leaf.new_node),
               ContractError);
}

TEST(AAPS, LeafGrowthWorks) {
  // The single-shot bin hierarchy strands permits in bins off the demand
  // paths, so give it ample headroom over the 150 grants it must serve.
  Rng rng(3);
  DynamicTree t;
  AAPSController ctrl(t, 2000, 1000, 256);
  std::uint64_t added = 0;
  for (int i = 0; i < 150; ++i) {
    const auto nodes = t.alive_nodes();
    added += ctrl.request_add_leaf(nodes[rng.index(nodes.size())]).granted();
  }
  EXPECT_EQ(added, 150u);
  EXPECT_EQ(t.size(), 151u);
}

TEST(AAPS, AmortizesOnRepeatedDeepRequests) {
  // The point of the bin hierarchy: repeated requests at the same deep node
  // cost far less than the trivial controller's 2*depth each.
  Rng rng(4);
  DynamicTree t;
  workload::build(t, workload::Shape::kPath, 257, rng);
  const NodeId deep = t.alive_nodes().back();

  AAPSController aaps(t, 512, 256, 512);
  TrivialController trivial(t, 512);
  for (int i = 0; i < 128; ++i) {
    ASSERT_TRUE(aaps.request_event(deep).granted());
    ASSERT_TRUE(trivial.request_event(deep).granted());
  }
  EXPECT_LT(aaps.cost(), trivial.cost() / 4);
}

TEST(AAPS, SameAsymptoticsAsOurs) {
  // §1.4 claims our message complexity is never asymptotically more than
  // AAPS's.  Constants differ (this AAPS reconstruction keeps level-0 bins
  // at every node, so its constant is small; our psi constant is large —
  // see EXPERIMENTS.md EXP3): compare empirical log-log slopes, not
  // absolutes.
  std::vector<double> ns, cost_aaps, cost_ours;
  for (std::uint64_t n : {513u, 1025u, 2049u}) {
    Rng rng(5);
    DynamicTree t;
    workload::build(t, workload::Shape::kPath, n, rng);
    const auto nodes = t.alive_nodes();
    // The single-shot bin hierarchy strands up to ~log(U) permits per node
    // along the demand path, so both controllers get generous budgets; the
    // comparison is about message growth, not permit efficiency.
    AAPSController aaps(t, 16 * n, 8 * n, 2 * n);
    IteratedController ours(t, 16 * n, 8 * n, 2 * n);
    Rng pick(5);
    for (std::uint64_t i = 0; i < n; ++i) {
      const NodeId u = nodes[pick.index(nodes.size())];
      ASSERT_TRUE(aaps.request_event(u).granted());
      ASSERT_TRUE(ours.request_event(u).granted());
    }
    ns.push_back(static_cast<double>(n));
    cost_aaps.push_back(static_cast<double>(aaps.cost()));
    cost_ours.push_back(static_cast<double>(ours.cost()));
  }
  const double sa = loglog_slope(ns, cost_aaps);
  const double so = loglog_slope(ns, cost_ours);
  EXPECT_LT(so, sa + 0.4) << "ours grows asymptotically faster than AAPS";
  EXPECT_LT(cost_ours.back(), 40 * cost_aaps.back())
      << "constant factor blew past the documented gap";
}

}  // namespace
}  // namespace dyncon::core

// Opt-in heavy soak tier: larger networks, longer runs, all invariants.
// Skipped unless DYNCON_HEAVY_TESTS=1 is set (run it before releases or in
// a nightly job); each case is a few seconds, not milliseconds.

#include <gtest/gtest.h>

#include <cstdlib>

#include "apps/distributed_size_estimation.hpp"
#include "core/distributed_iterated.hpp"
#include "core/iterated_controller.hpp"
#include "tree/validate.hpp"
#include "util/rng.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

namespace dyncon {
namespace {

bool heavy_enabled() {
  const char* v = std::getenv("DYNCON_HEAVY_TESTS");
  return v != nullptr && v[0] == '1';
}

#define DYNCON_HEAVY_OR_SKIP()                                     \
  if (!heavy_enabled()) {                                          \
    GTEST_SKIP() << "set DYNCON_HEAVY_TESTS=1 to run this tier";   \
  }

TEST(HeavySoak, DistributedPipelineTenThousandRequests) {
  DYNCON_HEAVY_OR_SKIP();
  Rng rng(1);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kUniform, 3));
  tree::DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 512, rng);
  const std::uint64_t M = 6000, W = 1;
  core::DistributedIterated ctrl(net, t, M, W, /*U=*/65536);
  workload::ChurnGenerator churn(workload::ChurnModel::kInternalChurn,
                                 Rng(5));
  std::uint64_t answered = 0, granted = 0, rejected = 0, moot = 0;
  const std::uint64_t kSteps = 10000;
  for (std::uint64_t i = 0; i < kSteps; ++i) {
    const core::RequestSpec spec =
        rng.chance(0.3)
            ? core::RequestSpec{core::RequestSpec::Type::kEvent,
                                workload::random_node(t, rng)}
            : churn.next(t);
    ctrl.submit(spec, [&](const core::Result& r) {
      ++answered;
      granted += r.granted();
      rejected += r.outcome == core::Outcome::kRejected;
      moot += r.outcome == core::Outcome::kMoot;
    });
    if (i % 16 == 15) queue.run();
    if (i % 1000 == 999) {
      queue.run();
      const auto valid = tree::validate(t);
      ASSERT_TRUE(valid.ok()) << valid.detail;
      if (const auto* inner = ctrl.inner()) {
        ASSERT_EQ(inner->active_agents(), 0u);
        if (const auto* dom = inner->domains()) {
          ASSERT_EQ(dom->check_invariants(), "");
        }
      }
    }
  }
  queue.run();
  EXPECT_EQ(answered, kSteps);
  EXPECT_EQ(answered, granted + rejected + moot);
  EXPECT_LE(ctrl.permits_granted(), M);
  if (rejected > 0) EXPECT_GE(ctrl.permits_granted(), M - W);
}

TEST(HeavySoak, SizeEstimationFourThousandNodes) {
  DYNCON_HEAVY_OR_SKIP();
  Rng rng(7);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kHeavyTail, 9));
  tree::DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 4096, rng);
  const double beta = 2.0;
  apps::DistributedSizeEstimation est(net, t, beta);
  workload::ChurnGenerator churn(workload::ChurnModel::kBirthDeath, Rng(11));
  for (int i = 0; i < 6000; ++i) {
    est.submit(churn.next(t), [](const core::Result&) {});
    if (i % 12 == 11) {
      queue.run();
      const double n = static_cast<double>(t.size());
      const double e = static_cast<double>(est.estimate());
      ASSERT_GE(e * beta + 1e-9, n) << "step " << i;
      ASSERT_LE(e, beta * n + 1e-9) << "step " << i;
    }
  }
  queue.run();
  EXPECT_GE(est.iterations(), 2u);
}

TEST(HeavySoak, CentralizedDeepPathEightThousand) {
  DYNCON_HEAVY_OR_SKIP();
  Rng rng(13);
  tree::DynamicTree t;
  workload::build(t, workload::Shape::kPath, 8192, rng);
  core::IteratedController ctrl(t, 8192, 4096, 16384);
  const auto nodes = t.alive_nodes();
  std::uint64_t granted = 0;
  for (int i = 0; i < 8192; ++i) {
    granted += ctrl.request_event(nodes[rng.index(nodes.size())]).granted();
  }
  // W = M/2 lets up to W permits strand; nearly everything is granted.
  EXPECT_GE(granted, 8192u - 4096u);
  EXPECT_GE(granted, 8000u);  // in practice stranding is tiny
  // Obs 3.4 constant check at scale.
  const double U = 2.0 * 8192;
  const double bound = 8.0 * U * 14 * 14;  // log2(16384) = 14
  EXPECT_LT(static_cast<double>(ctrl.cost()), bound);
}

}  // namespace
}  // namespace dyncon

// Tests for tree snapshots: serialize/restore round trips, id fidelity,
// Script replay against restored trees, malformed-input rejection.

#include <gtest/gtest.h>

#include "core/trivial_controller.hpp"
#include "tree/snapshot.hpp"
#include "tree/validate.hpp"
#include "util/rng.hpp"
#include "workload/churn.hpp"
#include "workload/script.hpp"
#include "workload/shapes.hpp"

namespace dyncon::tree {
namespace {

TEST(Snapshot, RoundTripAllShapes) {
  for (auto shape : workload::all_shapes()) {
    Rng rng(1);
    DynamicTree t;
    workload::build(t, shape, 60, rng);
    const DynamicTree back = restore(snapshot(t));
    EXPECT_TRUE(same_topology(t, back)) << workload::shape_name(shape);
    EXPECT_TRUE(validate(back).ok()) << workload::shape_name(shape);
  }
}

TEST(Snapshot, RoundTripAfterChurnPreservesIds) {
  // A heavily churned tree has id gaps and internal-insertion history;
  // restore() must reproduce the exact alive ids anyway.
  Rng rng(2);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 30, rng);
  workload::ChurnGenerator churn(workload::ChurnModel::kInternalChurn,
                                 Rng(3));
  core::TrivialController ctrl(t, 1u << 20);
  for (int i = 0; i < 400; ++i) {
    const auto spec = churn.next(t);
    switch (spec.type) {
      case core::RequestSpec::Type::kAddLeaf:
        ctrl.request_add_leaf(spec.subject);
        break;
      case core::RequestSpec::Type::kAddInternal:
        ctrl.request_add_internal_above(spec.subject);
        break;
      case core::RequestSpec::Type::kRemove:
        ctrl.request_remove(spec.subject);
        break;
      default:
        break;
    }
  }
  const DynamicTree back = restore(snapshot(t));
  EXPECT_TRUE(same_topology(t, back));
  for (NodeId v : t.alive_nodes()) {
    EXPECT_TRUE(back.alive(v));
    EXPECT_EQ(t.depth(v), back.depth(v));
  }
}

TEST(Snapshot, RestoredTreeIsFullyOperational) {
  Rng rng(4);
  DynamicTree t;
  workload::build(t, workload::Shape::kCaterpillar, 25, rng);
  DynamicTree back = restore(snapshot(t));
  // All four change types work on the restored tree.
  const NodeId leaf = back.add_leaf(back.root());
  const NodeId mid = back.add_internal_above(leaf);
  back.remove_internal(mid);
  back.remove_leaf(leaf);
  EXPECT_TRUE(validate(back).ok());
  EXPECT_TRUE(same_topology(t, back));
}

TEST(Snapshot, ScriptReplayAgainstRestoredTree) {
  // The full checkpoint workflow: snapshot a tree, record churn from it,
  // then replay the script against the restored snapshot.
  Rng rng(5);
  DynamicTree original;
  workload::build(original, workload::Shape::kRandomAttach, 40, rng);
  const std::string snap = snapshot(original);

  workload::ChurnGenerator churn(workload::ChurnModel::kBirthDeath, Rng(6));
  const workload::Script script =
      workload::Script::record(original, churn, 200);

  DynamicTree restored = restore(snap);
  core::TrivialController ctrl(restored, 1u << 20);
  const auto stats = workload::replay(script, ctrl, restored);
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_TRUE(same_topology(original, restored));
}

TEST(Snapshot, MalformedInputsRejected) {
  EXPECT_THROW(restore("bogus header\n"), ContractError);
  EXPECT_THROW(restore("tree v1\n0 -\nnot a line\n"), ContractError);
  EXPECT_THROW(restore("tree v1\n5 -\n"), ContractError);     // root must be 0
  EXPECT_THROW(restore("tree v1\n0 -\n3 9\n"), ContractError);  // no parent 9
  EXPECT_THROW(restore("tree v1\n0 -\n1 0\n1 0\n"), ContractError);  // dup
}

TEST(Snapshot, SameTopologyDetectsDifferences) {
  Rng rng(7);
  DynamicTree a, b;
  workload::build(a, workload::Shape::kPath, 10, rng);
  Rng rng2(7);
  workload::build(b, workload::Shape::kPath, 10, rng2);
  EXPECT_TRUE(same_topology(a, b));
  b.add_leaf(b.root());
  EXPECT_FALSE(same_topology(a, b));
}

}  // namespace
}  // namespace dyncon::tree

// Every distributed protocol, run end-to-end with (a) the strict
// message-size envelope armed at c1 + c2*ceil(log2 U) bits and (b) the
// debug round-trip verification active, so the O(log N)-bit claim of
// §2.1.1/Lemma 4.5 is enforced on *measured* wire sizes while the protocols
// do real work.  A protocol that starts sending an over-budget field fails
// these tests at the offending send, not in a bench column.

#include <gtest/gtest.h>

#include <cstdint>

#include "apps/distributed_ancestry_labeling.hpp"
#include "apps/distributed_heavy_child.hpp"
#include "apps/distributed_name_assignment.hpp"
#include "apps/distributed_nca_labeling.hpp"
#include "apps/distributed_size_estimation.hpp"
#include "apps/distributed_tree_routing.hpp"
#include "core/distributed_adaptive.hpp"
#include "core/distributed_controller.hpp"
#include "core/distributed_iterated.hpp"
#include "util/log2.hpp"
#include "util/rng.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

namespace dyncon {
namespace {

using core::RequestSpec;
using core::Result;

/// Generous-but-logarithmic envelope: any message measuring above this for
/// the given universe size U is a bug.  The additive term covers the tag,
/// topic/phase bits and the gamma/varint constants on tiny trees, where
/// ceil(log2 U) alone would be unrealistically tight.
std::uint64_t envelope_bits(std::uint64_t u) {
  return 32 + 16 * ceil_log2(u < 2 ? 2 : u);
}

struct Sim {
  sim::EventQueue queue;
  sim::Network net;
  tree::DynamicTree tree;

  explicit Sim(std::uint64_t seed = 1)
      : net(queue, sim::make_delay(sim::DelayKind::kUniform, seed)) {}
};

/// Post-run checks shared by every protocol case.
void expect_wire_discipline(const Sim& s, std::uint64_t u) {
  const sim::NetStats& st = s.net.stats();
  EXPECT_GT(st.messages, 0u) << "protocol sent nothing; vacuous test";
#ifndef NDEBUG
  EXPECT_GT(st.roundtrip_checks, 0u)
      << "debug round-trip verification never ran";
#endif
  for (std::size_t k = 0; k < sim::NetStats::kKinds; ++k) {
    EXPECT_LE(st.max_bits_by_kind[k], envelope_bits(u))
        << "kind " << sim::msg_kind_name(static_cast<sim::MsgKind>(k))
        << " exceeds the c*log U envelope";
  }
}

/// For apps exposing only leaf-level operations (routing/labeling): grow
/// the tree leaf by leaf, which forces their periodic DFS relabel walks.
template <typename Protocol>
void grow_leaves(Sim& s, Protocol& proto, int steps, std::uint64_t seed) {
  Rng rng(seed);
  int answered = 0;
  for (int i = 0; i < steps; ++i) {
    const auto& alive = s.tree.alive_nodes();
    proto.submit_add_leaf(alive[rng.index(alive.size())],
                          [&](const Result&) { ++answered; });
    s.queue.run();
  }
  EXPECT_GT(answered, 0);
}

template <typename Protocol>
void churn_through(Sim& s, Protocol& proto, int steps,
                   workload::ChurnModel model, std::uint64_t seed) {
  workload::ChurnGenerator churn(model, Rng(seed));
  int answered = 0;
  for (int i = 0; i < steps; ++i) {
    if (s.tree.size() < 4) break;
    proto.submit(churn.next(s.tree), [&](const Result&) { ++answered; });
    s.queue.run();
  }
  EXPECT_GT(answered, 0);
}

TEST(WireProtocols, DistributedControllerUnderStrictEnvelope) {
  Sim s(11);
  Rng rng(2);
  workload::build(s.tree, workload::Shape::kRandomAttach, 48, rng);
  const std::uint64_t u = 512;
  s.net.set_strict_max_bits(envelope_bits(u));
  core::DistributedController ctrl(s.net, s.tree, core::Params(40, 8, u));
  int done = 0;
  for (int i = 0; i < 40; ++i) {
    ctrl.submit_event(s.tree.alive_nodes()[rng.index(s.tree.size())],
                      [&](const Result&) { ++done; });
    s.queue.run();
  }
  EXPECT_EQ(done, 40);
  expect_wire_discipline(s, u);
  EXPECT_GT(s.net.stats().kind(sim::MsgKind::kAgent), 0u);
}

TEST(WireProtocols, RejectFloodStaysInEnvelope) {
  // Exhaust a tiny controller so the reject wave (kReject traffic) fires.
  Sim s(13);
  Rng rng(3);
  workload::build(s.tree, workload::Shape::kBinary, 16, rng);
  const std::uint64_t u = 64;
  s.net.set_strict_max_bits(envelope_bits(u));
  core::DistributedController ctrl(s.net, s.tree, core::Params(4, 1, u));
  int done = 0;
  for (int i = 0; i < 12; ++i) {
    ctrl.submit_event(s.tree.root(), [&](const Result&) { ++done; });
    s.queue.run();
  }
  EXPECT_EQ(done, 12);
  EXPECT_GT(s.net.stats().kind(sim::MsgKind::kReject), 0u)
      << "flood never triggered; the case tests nothing";
  expect_wire_discipline(s, u);
}

TEST(WireProtocols, DistributedIteratedUnderStrictEnvelope) {
  Sim s(17);
  Rng rng(5);
  workload::build(s.tree, workload::Shape::kRandomAttach, 32, rng);
  const std::uint64_t u = 4096;
  s.net.set_strict_max_bits(envelope_bits(u));
  core::DistributedIterated ctrl(s.net, s.tree, /*M=*/24, /*W=*/2, u);
  churn_through(s, ctrl, 80, workload::ChurnModel::kBirthDeath, 7);
  expect_wire_discipline(s, u);
  // The budget is small enough that the run must have crossed at least one
  // iteration boundary, whose rotate broadcast is kControl traffic.
  EXPECT_GT(s.net.stats().kind(sim::MsgKind::kControl), 0u)
      << "rotation traffic never exercised";
}

TEST(WireProtocols, DistributedAdaptiveUnderStrictEnvelope) {
  Sim s(19);
  Rng rng(7);
  workload::build(s.tree, workload::Shape::kRandomAttach, 32, rng);
  // The adaptive controller sizes its own iterations from the live tree;
  // U here only parameterizes the envelope we assert against.
  const std::uint64_t u = 4096;
  s.net.set_strict_max_bits(envelope_bits(u));
  core::DistributedAdaptive ctrl(s.net, s.tree, /*M=*/48, /*W=*/4);
  churn_through(s, ctrl, 60, workload::ChurnModel::kBirthDeath, 9);
  expect_wire_discipline(s, u);
}

TEST(WireProtocols, SizeEstimationUnderStrictEnvelope) {
  Sim s(23);
  Rng rng(11);
  workload::build(s.tree, workload::Shape::kRandomAttach, 48, rng);
  const std::uint64_t u = 4096;
  s.net.set_strict_max_bits(envelope_bits(u));
  apps::DistributedSizeEstimation est(s.net, s.tree, 2.0);
  churn_through(s, est, 80, workload::ChurnModel::kBirthDeath, 13);
  EXPECT_GE(est.iterations(), 1u);
  expect_wire_discipline(s, u);
}

TEST(WireProtocols, NameAssignmentUnderStrictEnvelope) {
  Sim s(29);
  Rng rng(15);
  workload::build(s.tree, workload::Shape::kRandomAttach, 32, rng);
  const std::uint64_t u = 4096;
  s.net.set_strict_max_bits(envelope_bits(u));
  apps::DistributedNameAssignment names(s.net, s.tree);
  churn_through(s, names, 60, workload::ChurnModel::kBirthDeath, 17);
  expect_wire_discipline(s, u);
}

TEST(WireProtocols, TreeRoutingUnderStrictEnvelope) {
  Sim s(31);
  Rng rng(19);
  workload::build(s.tree, workload::Shape::kRandomAttach, 32, rng);
  const std::uint64_t u = 4096;
  s.net.set_strict_max_bits(envelope_bits(u));
  apps::DistributedTreeRouting routing(s.net, s.tree);
  grow_leaves(s, routing, 60, 21);
  expect_wire_discipline(s, u);
}

TEST(WireProtocols, NcaLabelingUnderStrictEnvelope) {
  Sim s(37);
  Rng rng(23);
  workload::build(s.tree, workload::Shape::kRandomAttach, 32, rng);
  const std::uint64_t u = 4096;
  s.net.set_strict_max_bits(envelope_bits(u));
  apps::DistributedNcaLabeling nca(s.net, s.tree);
  grow_leaves(s, nca, 60, 25);
  expect_wire_discipline(s, u);
}

TEST(WireProtocols, AncestryLabelingUnderStrictEnvelope) {
  Sim s(41);
  Rng rng(27);
  workload::build(s.tree, workload::Shape::kRandomAttach, 32, rng);
  const std::uint64_t u = 4096;
  s.net.set_strict_max_bits(envelope_bits(u));
  apps::DistributedAncestryLabeling anc(s.net, s.tree);
  grow_leaves(s, anc, 60, 29);
  expect_wire_discipline(s, u);
}

TEST(WireProtocols, HeavyChildUnderStrictEnvelope) {
  Sim s(43);
  Rng rng(31);
  workload::build(s.tree, workload::Shape::kRandomAttach, 32, rng);
  const std::uint64_t u = 4096;
  s.net.set_strict_max_bits(envelope_bits(u));
  apps::DistributedHeavyChild heavy(s.net, s.tree);
  churn_through(s, heavy, 60, workload::ChurnModel::kBirthDeath, 33);
  expect_wire_discipline(s, u);
}

#ifndef NDEBUG
TEST(WireProtocols, ControllerLinkCheckCatchesOffTreeSend) {
  // The controller installs its tree-adjacency hook on construction; a
  // non-app message between unrelated nodes must now trip the contract.
  Sim s(47);
  Rng rng(35);
  workload::build(s.tree, workload::Shape::kStar, 8, rng);
  core::DistributedController ctrl(s.net, s.tree, core::Params(8, 2, 64));
  const auto& leaves = s.tree.alive_nodes();
  // Two distinct leaves of a star are never tree-adjacent.
  const NodeId a = leaves[1], b = leaves[2];
  EXPECT_THROW(s.net.send(a, b, sim::Message::reject_wave(), [] {}),
               InvariantError);
  // kApp traffic (point-to-point metering) is exempt by design.
  s.net.send(a, b, sim::Message::app_payload(8), [] {});
}
#endif

}  // namespace
}  // namespace dyncon

// Tests for request-trace record/replay and differential testing through
// identical scripts.

#include <gtest/gtest.h>

#include "core/centralized_controller.hpp"
#include "core/distributed_controller.hpp"
#include "core/trivial_controller.hpp"
#include "tree/validate.hpp"
#include "util/rng.hpp"
#include "workload/script.hpp"
#include "workload/shapes.hpp"

namespace dyncon::workload {
namespace {

using core::RequestSpec;
using tree::DynamicTree;

TEST(Script, SerializeParseRoundTrip) {
  Script s;
  s.append(RequestSpec{RequestSpec::Type::kEvent, 12});
  s.append(RequestSpec{RequestSpec::Type::kAddLeaf, 0});
  s.append(RequestSpec{RequestSpec::Type::kAddInternal, 7});
  s.append(RequestSpec{RequestSpec::Type::kRemove, 3});
  const Script back = Script::parse(s.str());
  EXPECT_EQ(s, back);
}

TEST(Script, ParseSkipsCommentsAndBlanks) {
  const Script s = Script::parse("# header\n\nevent 5\n# tail\nremove 2\n");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.entries()[0].type, RequestSpec::Type::kEvent);
  EXPECT_EQ(s.entries()[1].subject, 2u);
}

TEST(Script, ParseRejectsGarbage) {
  EXPECT_THROW(Script::parse("frobnicate 3\n"), ContractError);
  EXPECT_THROW(Script::parse("event\n"), ContractError);
}

TEST(Script, RecordIsDeterministic) {
  Rng ra(5), rb(5);
  DynamicTree ta, tb;
  workload::build(ta, Shape::kRandomAttach, 20, ra);
  workload::build(tb, Shape::kRandomAttach, 20, rb);
  ChurnGenerator ca(ChurnModel::kInternalChurn, Rng(9));
  ChurnGenerator cb(ChurnModel::kInternalChurn, Rng(9));
  const Script sa = Script::record(ta, ca, 100);
  const Script sb = Script::record(tb, cb, 100);
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(sa.size(), 100u);
}

TEST(Script, ReplayReproducesRecordedTopology) {
  // Record against a copy, then replay through an all-granting controller
  // on an identical starting tree: the final topologies must agree.
  Rng r1(7), r2(7);
  DynamicTree recorded, replayed;
  workload::build(recorded, Shape::kRandomAttach, 16, r1);
  workload::build(replayed, Shape::kRandomAttach, 16, r2);
  ChurnGenerator churn(ChurnModel::kBirthDeath, Rng(11));
  const Script script = Script::record(recorded, churn, 200);

  core::TrivialController ctrl(replayed, 1u << 20);
  const ReplayStats stats = replay(script, ctrl, replayed);
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_EQ(stats.granted, stats.submitted);
  EXPECT_EQ(replayed.size(), recorded.size());
  EXPECT_EQ(replayed.total_ever(), recorded.total_ever());
  EXPECT_TRUE(tree::validate(replayed).ok());
}

TEST(Script, DifferentialCentralizedVsDistributed) {
  // The same script through both implementations, permit budgets equal:
  // the grant/reject sequences must match exactly (Lemma 4.5's reduction,
  // exercised as a differential test).
  Rng r0(13);
  DynamicTree base;
  workload::build(base, Shape::kRandomAttach, 24, r0);
  ChurnGenerator churn(ChurnModel::kInternalChurn, Rng(17));
  DynamicTree recorder;
  Rng rr(13);
  workload::build(recorder, Shape::kRandomAttach, 24, rr);
  const Script script = Script::record(recorder, churn, 150);

  const core::Params params(60, 20, 512);

  Rng r1(13);
  DynamicTree tc;
  workload::build(tc, Shape::kRandomAttach, 24, r1);
  core::CentralizedController cent(tc, params);
  const ReplayStats sc = replay(script, cent, tc);

  Rng r2(13);
  DynamicTree td;
  workload::build(td, Shape::kRandomAttach, 24, r2);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kFixed, 1));
  core::DistributedController dist(net, td, params);
  core::DistributedSyncFacade facade(queue, dist);
  const ReplayStats sd = replay(script, facade, td);

  EXPECT_EQ(sc.granted, sd.granted);
  EXPECT_EQ(sc.rejected, sd.rejected);
  EXPECT_EQ(sc.skipped, sd.skipped);
  EXPECT_EQ(tc.size(), td.size());
}

TEST(Script, ReplayToleratesDivergence) {
  // Replay against a tiny budget: later entries reference nodes that were
  // never created; they must be skipped, not crash.
  Rng r1(19), r2(19);
  DynamicTree recorded, replayed;
  workload::build(recorded, Shape::kRandomAttach, 8, r1);
  workload::build(replayed, Shape::kRandomAttach, 8, r2);
  ChurnGenerator churn(ChurnModel::kGrowOnly, Rng(21));
  const Script script = Script::record(recorded, churn, 100);
  core::TrivialController ctrl(replayed, 10);  // only 10 grants possible
  const ReplayStats stats = replay(script, ctrl, replayed);
  EXPECT_EQ(stats.granted, 10u);
  EXPECT_GT(stats.skipped, 0u);
  EXPECT_TRUE(tree::validate(replayed).ok());
}

}  // namespace
}  // namespace dyncon::workload

// Unit tests for the centralized (M,W)-controller of §3.1: grant/reject
// semantics, safety, liveness at the reject wave, domain maintenance,
// topological request handling.

#include <gtest/gtest.h>

#include <set>

#include "core/centralized_controller.hpp"
#include "tree/validate.hpp"
#include "util/rng.hpp"
#include "workload/shapes.hpp"

namespace dyncon::core {
namespace {

using tree::DynamicTree;

TEST(Centralized, GrantsSimpleRequests) {
  DynamicTree t;
  CentralizedController ctrl(t, Params(10, 5, 16));
  const Result r = ctrl.request_event(t.root());
  EXPECT_TRUE(r.granted());
  EXPECT_EQ(ctrl.permits_granted(), 1u);
}

TEST(Centralized, SafetyNeverExceedsM) {
  DynamicTree t;
  const std::uint64_t M = 7;
  CentralizedController ctrl(t, Params(M, 1, 8));
  std::uint64_t granted = 0;
  for (int i = 0; i < 50; ++i) {
    if (ctrl.request_event(t.root()).granted()) ++granted;
  }
  EXPECT_LE(granted, M);
  EXPECT_EQ(granted, ctrl.permits_granted());
}

TEST(Centralized, LivenessAtFirstReject) {
  // When a reject is delivered, at least M - W permits must have been (or
  // will be) granted; in the centralized flow they are granted already.
  Rng rng(17);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 32, rng);
  const std::uint64_t M = 40, W = 20;
  CentralizedController ctrl(t, Params(M, W, 64));
  const auto nodes = t.alive_nodes();
  std::uint64_t i = 0;
  while (!ctrl.reject_wave_started()) {
    ctrl.request_event(nodes[i++ % nodes.size()]);
    ASSERT_LT(i, 10 * M) << "controller neither granted M nor rejected";
  }
  EXPECT_GE(ctrl.permits_granted(), M - W);
  EXPECT_LE(ctrl.permits_granted(), M);
}

TEST(Centralized, RejectWaveRejectsEverywhere) {
  Rng rng(3);
  DynamicTree t;
  workload::build(t, workload::Shape::kPath, 10, rng);
  CentralizedController ctrl(t, Params(2, 1, 16));
  const auto nodes = t.alive_nodes();
  // Exhaust.
  for (std::uint64_t k = 0; k < 40 && !ctrl.reject_wave_started(); ++k) {
    ctrl.request_event(nodes[k % nodes.size()]);
  }
  ASSERT_TRUE(ctrl.reject_wave_started());
  for (NodeId v : nodes) {
    EXPECT_EQ(ctrl.request_event(v).outcome, Outcome::kRejected);
  }
}

TEST(Centralized, ExhaustSignalModeNeverRejects) {
  DynamicTree t;
  CentralizedController::Options opts;
  opts.mode = CentralizedController::Mode::kExhaustSignal;
  CentralizedController ctrl(t, Params(2, 1, 4), opts);
  int granted = 0, exhausted = 0;
  for (int i = 0; i < 10; ++i) {
    const auto o = ctrl.request_event(t.root()).outcome;
    granted += o == Outcome::kGranted;
    exhausted += o == Outcome::kExhausted;
    EXPECT_NE(o, Outcome::kRejected);
  }
  EXPECT_EQ(granted, 2);
  EXPECT_EQ(exhausted, 8);
  EXPECT_TRUE(ctrl.exhausted());
}

TEST(Centralized, TopologicalRequestsApplyOnGrant) {
  DynamicTree t;
  CentralizedController ctrl(t, Params(100, 50, 128));
  const Result leaf = ctrl.request_add_leaf(t.root());
  ASSERT_TRUE(leaf.granted());
  ASSERT_NE(leaf.new_node, kNoNode);
  EXPECT_EQ(t.parent(leaf.new_node), t.root());

  const Result mid = ctrl.request_add_internal_above(leaf.new_node);
  ASSERT_TRUE(mid.granted());
  EXPECT_EQ(t.parent(leaf.new_node), mid.new_node);

  const Result gone = ctrl.request_remove(mid.new_node);
  ASSERT_TRUE(gone.granted());
  EXPECT_FALSE(t.alive(mid.new_node));
  EXPECT_EQ(t.parent(leaf.new_node), t.root());
  EXPECT_TRUE(tree::validate(t).ok());
}

TEST(Centralized, RejectedTopologicalRequestDoesNotApply) {
  DynamicTree t;
  CentralizedController ctrl(t, Params(1, 1, 4));
  ASSERT_TRUE(ctrl.request_event(t.root()).granted());  // burn the permit
  const std::uint64_t before = t.size();
  const Result r = ctrl.request_add_leaf(t.root());
  EXPECT_EQ(r.outcome, Outcome::kRejected);
  EXPECT_EQ(t.size(), before);
}

TEST(Centralized, DeletionMovesPackagesToParent) {
  Rng rng(5);
  DynamicTree t;
  workload::build(t, workload::Shape::kPath, 6, rng);
  CentralizedController ctrl(t, Params(64, 32, 16));
  // Grant at the deepest node so a static package (and possibly mobile
  // packages on the path) exist below the root.
  const auto nodes = t.alive_nodes();
  const NodeId deep = nodes.back();
  ASSERT_TRUE(ctrl.request_event(deep).granted());
  // Remove the deep node: its leftover static package must move up, not
  // vanish (permit conservation).
  const std::uint64_t unused_before = ctrl.unused_permits();
  ASSERT_TRUE(ctrl.request_remove(deep).granted());
  EXPECT_EQ(ctrl.unused_permits(), unused_before - 1);
}

TEST(Centralized, PermitConservation) {
  Rng rng(23);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 20, rng);
  const std::uint64_t M = 50;
  CentralizedController ctrl(t, Params(M, 25, 64));
  const auto nodes = t.alive_nodes();
  for (int i = 0; i < 30; ++i) {
    ctrl.request_event(nodes[rng.index(nodes.size())]);
    EXPECT_EQ(ctrl.permits_granted() + ctrl.unused_permits(), M);
  }
}

TEST(Centralized, ProcLeavesPackagesThatServeLaterRequests) {
  // On a path deep enough that the creation level is >= 1, Proc leaves
  // mobile packages at the u_k waypoints; a second request at the same deep
  // node finds one of them (a filler) strictly closer than the root.
  Rng rng(29);
  DynamicTree t;
  workload::build(t, workload::Shape::kPath, 101, rng);
  CentralizedController ctrl(t, Params(64, 128, 128));
  const auto nodes = t.alive_nodes();
  const NodeId deep = nodes.back();
  ASSERT_GT(t.depth(deep),
            2 * ctrl.params().psi());  // ensures creation level >= 1
  ASSERT_TRUE(ctrl.request_event(deep).granted());
  const std::uint64_t cost_after_first = ctrl.cost();
  ASSERT_TRUE(ctrl.request_event(deep).granted());
  const std::uint64_t second_cost = ctrl.cost() - cost_after_first;
  EXPECT_LT(second_cost, cost_after_first);
}

TEST(Centralized, SerialsAreUniqueAndExhaustive) {
  DynamicTree t;
  CentralizedController::Options opts;
  opts.serials = Interval(100, 109);
  CentralizedController ctrl(t, Params(10, 5, 8), opts);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10; ++i) {
    const Result r = ctrl.request_event(t.root());
    ASSERT_TRUE(r.granted());
    ASSERT_TRUE(r.serial.has_value());
    EXPECT_TRUE(Interval(100, 109).contains(*r.serial));
    EXPECT_TRUE(seen.insert(*r.serial).second) << "duplicate serial";
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Centralized, CostScalesWithDepthNotN) {
  // A request near the root must not pay for the whole tree.
  Rng rng(31);
  DynamicTree t;
  workload::build(t, workload::Shape::kStar, 1000, rng);
  CentralizedController ctrl(t, Params(100, 50, 2000));
  ASSERT_TRUE(ctrl.request_event(t.root()).granted());
  EXPECT_LE(ctrl.cost(), 4u);  // star: everything is at depth <= 1
}

TEST(Centralized, RequestAtDeadNodeThrows) {
  DynamicTree t;
  CentralizedController ctrl(t, Params(10, 5, 8));
  const Result leaf = ctrl.request_add_leaf(t.root());
  ASSERT_TRUE(ctrl.request_remove(leaf.new_node).granted());
  EXPECT_THROW(ctrl.request_event(leaf.new_node), ContractError);
  EXPECT_THROW(ctrl.request_remove(t.root()), ContractError);
}

}  // namespace
}  // namespace dyncon::core

// Unit tests for the domain tracker (§3.2): the Case 2-5 update rules and
// the three invariants of Claim 3.1, exercised directly and through the
// centralized controller.

#include <gtest/gtest.h>

#include "core/centralized_controller.hpp"
#include "core/domain.hpp"
#include "util/rng.hpp"
#include "workload/shapes.hpp"

namespace dyncon::core {
namespace {

using tree::DynamicTree;

/// A tree, params, table and tracker wired together like a controller does.
struct Fixture {
  DynamicTree tree;
  Params params{100, 16, 64};
  PackageTable packages;
  DomainTracker domains{tree, params, packages};

  Fixture() { tree.add_observer(&domains); }
  ~Fixture() { tree.remove_observer(&domains); }

  /// Build a root-to-leaf path of `n` extra nodes; returns them in order.
  std::vector<NodeId> grow_path(std::uint64_t n) {
    std::vector<NodeId> out;
    NodeId cur = tree.root();
    for (std::uint64_t i = 0; i < n; ++i) {
      cur = tree.add_leaf(cur);
      out.push_back(cur);
    }
    return out;
  }
};

TEST(DomainTracker, AssignAndQuery) {
  Fixture f;
  const auto path = f.grow_path(10);
  // A level-0 package needs a domain of psi/2 nodes; use a fake small
  // params set instead: here we just exercise bookkeeping with an
  // arbitrary path, invariant checks are separate.
  const PackageId p = f.packages.create_mobile(f.tree.root(), 0, 1);
  f.domains.assign(p, {path[0], path[1], path[2]});
  EXPECT_EQ(f.domains.domain(p).size(), 3u);
  f.domains.drop(p);
  EXPECT_TRUE(f.domains.domain(p).empty());
  f.domains.drop(p);  // idempotent
}

TEST(DomainTracker, AddInternalSwapsMembers) {
  Fixture f;
  const auto path = f.grow_path(6);
  const PackageId p = f.packages.create_mobile(path[0], 1, 2);
  f.domains.assign(p, {path[1], path[2], path[3]});
  // Insert above path[2] (a domain member): the new node joins, the
  // bottommost alive member (path[3]) leaves.
  const NodeId m = f.tree.add_internal_above(path[2]);
  const auto& dom = f.domains.domain(p);
  ASSERT_EQ(dom.size(), 3u);
  EXPECT_EQ(dom[0], path[1]);
  EXPECT_EQ(dom[1], m);
  EXPECT_EQ(dom[2], path[2]);
}

TEST(DomainTracker, AddInternalAboveNonMemberNoChange) {
  Fixture f;
  const auto path = f.grow_path(6);
  const PackageId p = f.packages.create_mobile(path[0], 1, 2);
  f.domains.assign(p, {path[1], path[2], path[3]});
  f.tree.add_internal_above(path[5]);  // far below the domain
  EXPECT_EQ(f.domains.domain(p),
            (std::vector<NodeId>{path[1], path[2], path[3]}));
}

TEST(DomainTracker, RemovalKeepsMembership) {
  Fixture f;
  const auto path = f.grow_path(6);
  const PackageId p = f.packages.create_mobile(path[0], 1, 2);
  f.domains.assign(p, {path[1], path[2], path[3]});
  f.tree.remove_internal(path[2]);
  // Case 5: the dead node remains a domain member.
  EXPECT_EQ(f.domains.domain(p),
            (std::vector<NodeId>{path[1], path[2], path[3]}));
}

TEST(DomainTracker, InvariantCheckCatchesWrongSize) {
  Fixture f;
  const auto path = f.grow_path(20);
  const PackageId p = f.packages.create_mobile(path[0], 0, 1);
  f.domains.assign(p, {path[1], path[2]});  // psi/2 would be 12
  EXPECT_NE(f.domains.check_invariants(), "");
}

TEST(DomainTracker, InvariantCheckCatchesOverlap) {
  Fixture f;
  const std::uint64_t half_psi = f.params.domain_size(0);
  const auto path = f.grow_path(2 * half_psi + 4);
  const PackageId a = f.packages.create_mobile(f.tree.root(), 0, 1);
  const PackageId b = f.packages.create_mobile(f.tree.root(), 0, 1);
  std::vector<NodeId> dom_a(path.begin(),
                            path.begin() + static_cast<long>(half_psi));
  f.domains.assign(a, dom_a);
  f.domains.assign(b, dom_a);  // same nodes: must violate invariant 2
  EXPECT_NE(f.domains.check_invariants(), "");
}

TEST(DomainTracker, InvariantCheckCatchesBrokenPath) {
  Fixture f;
  const std::uint64_t half_psi = f.params.domain_size(0);
  const auto path = f.grow_path(half_psi + 8);
  const PackageId p = f.packages.create_mobile(f.tree.root(), 0, 1);
  // Domain that skips a node: alive members do not chain.
  std::vector<NodeId> dom;
  dom.push_back(path[0]);
  for (std::uint64_t i = 2; dom.size() < half_psi; ++i) dom.push_back(path[i]);
  f.domains.assign(p, dom);
  EXPECT_NE(f.domains.check_invariants(), "");
}

TEST(DomainTracker, NodeMayBelongToDomainsOfDifferentLevels) {
  // Invariant 2 is per-level: one node in a level-0 and a level-1 domain
  // simultaneously is legal, and a Case-4 insertion above it updates both.
  Fixture f;
  const auto path = f.grow_path(8);
  const PackageId p0 = f.packages.create_mobile(path[0], 0, 1);
  const PackageId p1 = f.packages.create_mobile(path[0], 1, 2);
  f.domains.assign(p0, {path[1], path[2], path[3]});
  f.domains.assign(p1, {path[1], path[2], path[3], path[4]});
  // (These hand-built domains exercise only the Case-4 update rule; their
  // sizes deliberately do not match params_, so no full audit here.)
  const NodeId m = f.tree.add_internal_above(path[2]);
  EXPECT_EQ(f.domains.domain(p0),
            (std::vector<NodeId>{path[1], m, path[2]}));
  EXPECT_EQ(f.domains.domain(p1),
            (std::vector<NodeId>{path[1], m, path[2], path[3]}));
  f.domains.drop(p0);
  f.domains.drop(p1);
}

TEST(DomainTracker, ControllerMaintainsInvariantsOnDeepPath) {
  // Drive the real controller on a deep path and audit after every grant.
  Rng rng(11);
  DynamicTree t;
  workload::build(t, workload::Shape::kPath, 400, rng);
  CentralizedController ctrl(t, Params(256, 512, 512));
  ASSERT_GE(ctrl.params().max_level(), 1u);
  const auto nodes = t.alive_nodes();
  for (int i = 0; i < 120; ++i) {
    const NodeId u = nodes[rng.index(nodes.size())];
    if (!t.alive(u)) continue;
    ctrl.request_event(u);
    ASSERT_NE(ctrl.domains(), nullptr);
    ASSERT_EQ(ctrl.domains()->check_invariants(), "") << "after request " << i;
  }
}

TEST(DomainTracker, ControllerMaintainsInvariantsUnderChurn) {
  Rng rng(13);
  DynamicTree t;
  workload::build(t, workload::Shape::kCaterpillar, 300, rng);
  CentralizedController ctrl(t, Params(400, 800, 1024));
  for (int i = 0; i < 200; ++i) {
    const auto nodes = t.alive_nodes();
    const NodeId u = nodes[rng.index(nodes.size())];
    switch (rng.uniform(0, 3)) {
      case 0:
        ctrl.request_add_leaf(u);
        break;
      case 1:
        if (u != t.root()) ctrl.request_add_internal_above(u);
        break;
      case 2:
        if (u != t.root() && t.size() > 2) ctrl.request_remove(u);
        break;
      default:
        ctrl.request_event(u);
    }
    ASSERT_EQ(ctrl.domains()->check_invariants(), "") << "after step " << i;
  }
}

}  // namespace
}  // namespace dyncon::core

// Parameterized property sweep for the adaptive (unknown-U) controllers,
// centralized and distributed, across rotation policies x churn models x
// seeds: safety, liveness, structural validity, iteration sanity.

#include <gtest/gtest.h>

#include <tuple>

#include "core/adaptive_controller.hpp"
#include "core/distributed_adaptive.hpp"
#include "tree/validate.hpp"
#include "util/rng.hpp"
#include "workload/churn.hpp"
#include "workload/scenario.hpp"
#include "workload/shapes.hpp"

namespace dyncon::core {
namespace {

using tree::DynamicTree;
using workload::ChurnModel;

using CentralCase =
    std::tuple<AdaptiveController::Policy, ChurnModel, std::uint64_t>;

class AdaptiveProperty : public ::testing::TestWithParam<CentralCase> {};

TEST_P(AdaptiveProperty, SafetyLivenessValidity) {
  const auto [policy, model, seed] = GetParam();
  Rng rng(seed);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 32, rng);
  const std::uint64_t M = 150, W = 10;
  AdaptiveController::Options opts;
  opts.policy = policy;
  opts.track_domains = false;
  AdaptiveController ctrl(t, M, W, opts);
  workload::ChurnGenerator churn(model, Rng(seed * 3 + 1));
  const auto stats = workload::run_churn(ctrl, t, churn, 4 * M,
                                         /*event_fraction=*/0.2, rng);
  EXPECT_LE(ctrl.permits_granted(), M);
  if (stats.rejected > 0) {
    EXPECT_GE(ctrl.permits_granted(), M - W);
  }
  const auto valid = tree::validate(t);
  EXPECT_TRUE(valid.ok()) << valid.detail;
  EXPECT_GE(ctrl.iterations(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdaptiveProperty,
    ::testing::Combine(
        ::testing::Values(AdaptiveController::Policy::kChangeCount,
                          AdaptiveController::Policy::kSizeDoubling),
        ::testing::Values(ChurnModel::kGrowOnly, ChurnModel::kBirthDeath,
                          ChurnModel::kInternalChurn,
                          ChurnModel::kFlashCrowd),
        ::testing::Values(1u, 2u)),
    [](const ::testing::TestParamInfo<CentralCase>& info) {
      const auto policy = std::get<0>(info.param);
      return std::string(policy == AdaptiveController::Policy::kChangeCount
                             ? "part1"
                             : "part2") +
             "_" + workload::churn_name(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

using DistCase =
    std::tuple<DistributedAdaptive::Policy, sim::DelayKind, std::uint64_t>;

class DistAdaptiveProperty : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistAdaptiveProperty, ConcurrentChurn) {
  const auto [policy, kind, seed] = GetParam();
  Rng rng(seed);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(kind, seed * 13 + 3));
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 24, rng);
  const std::uint64_t M = 120, W = 8;
  DistributedAdaptive::Options opts;
  opts.policy = policy;
  opts.track_domains = false;
  DistributedAdaptive ctrl(net, t, M, W, opts);
  workload::ChurnGenerator churn(ChurnModel::kInternalChurn,
                                 Rng(seed * 17 + 7));
  std::uint64_t answered = 0, granted = 0, rejected = 0;
  const std::uint64_t kSteps = 3 * M;
  for (std::uint64_t i = 0; i < kSteps; ++i) {
    ctrl.submit(churn.next(t), [&](const Result& r) {
      ++answered;
      granted += r.granted();
      rejected += r.outcome == Outcome::kRejected;
    });
    if (i % 6 == 5) queue.run();
  }
  queue.run();
  EXPECT_EQ(answered, kSteps);
  EXPECT_LE(granted, M);
  if (rejected > 0) EXPECT_GE(granted, M - W);
  const auto valid = tree::validate(t);
  EXPECT_TRUE(valid.ok()) << valid.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistAdaptiveProperty,
    ::testing::Combine(
        ::testing::Values(DistributedAdaptive::Policy::kChangeCount,
                          DistributedAdaptive::Policy::kSizeDoubling),
        ::testing::Values(sim::DelayKind::kFixed, sim::DelayKind::kUniform,
                          sim::DelayKind::kHeavyTail),
        ::testing::Values(1u, 2u)),
    [](const ::testing::TestParamInfo<DistCase>& info) {
      const auto policy = std::get<0>(info.param);
      return std::string(policy ==
                                 DistributedAdaptive::Policy::kChangeCount
                             ? "part1"
                             : "part2") +
             "_" + sim::delay_kind_name(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace dyncon::core

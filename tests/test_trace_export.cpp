// Structural validation of the Chrome trace-event conversion behind
// tools/trace_export: well-formed reports map to well-formed "X"/"C"
// events, malformed sections are rejected with a located error, and the
// real producers (SpanSink / FlightRecorder / RunReport) round-trip through
// serialization into a loadable trace.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/chrome_trace.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"

namespace dyncon::obs {
namespace {

json::Value parse(const std::string& text) {
  json::Value v;
  std::string err;
  EXPECT_TRUE(json::Value::parse(text, v, &err)) << err;
  return v;
}

TEST(ChromeTrace, ConvertsSpansAndTimeline) {
  const json::Value report = parse(R"({
    "name": "unit",
    "spans": {"capacity": 8, "recorded": 2, "overwritten": 0, "events": [
      {"trace": 1, "id": 0, "kind": "request", "op": 0, "label": "permit",
       "begin": 10, "end": 25},
      {"trace": 1, "id": 1, "parent": 0, "kind": "hop", "op": 2,
       "node": 3, "peer": 4, "begin": 12, "end": 14}
    ]},
    "timeline": {"period": 16, "capacity": 4, "taken": 2, "overwritten": 0,
      "counters": ["reqs", "grants"],
      "rows": [[0, 1.0, 0.0], [16, 5.0, 3.0]]}
  })");

  json::Value out;
  std::string err;
  ASSERT_TRUE(chrome_trace_from_report(report, out, &err)) << err;
  EXPECT_EQ(out.find("otherData")->find("report")->as_string(), "unit");
  const json::Array& events = out.find("traceEvents")->as_array();
  ASSERT_EQ(events.size(), 2u + 2u * 2u);  // 2 spans + 2 rows * 2 counters

  const json::Value& root = events[0];
  EXPECT_EQ(root.find("ph")->as_string(), "X");
  EXPECT_EQ(root.find("name")->as_string(), "permit");
  EXPECT_EQ(root.find("cat")->as_string(), "request");
  EXPECT_EQ(root.find("ts")->as_uint(), 10u);
  EXPECT_EQ(root.find("dur")->as_uint(), 15u);
  EXPECT_EQ(root.find("tid")->as_uint(), 1u);
  EXPECT_EQ(root.find("args")->find("span")->as_uint(), 0u);
  EXPECT_EQ(root.find("args")->find("parent"), nullptr);

  const json::Value& hop = events[1];
  EXPECT_EQ(hop.find("args")->find("parent")->as_uint(), 0u);
  EXPECT_EQ(hop.find("args")->find("node")->as_uint(), 3u);
  EXPECT_EQ(hop.find("args")->find("peer")->as_uint(), 4u);

  const json::Value& c0 = events[2];
  EXPECT_EQ(c0.find("ph")->as_string(), "C");
  EXPECT_EQ(c0.find("name")->as_string(), "reqs");
  EXPECT_EQ(c0.find("ts")->as_uint(), 0u);
  EXPECT_DOUBLE_EQ(c0.find("args")->find("value")->as_double(), 1.0);
  const json::Value& c3 = events[5];
  EXPECT_EQ(c3.find("name")->as_string(), "grants");
  EXPECT_EQ(c3.find("ts")->as_uint(), 16u);
}

TEST(ChromeTrace, EmptySectionsProduceAnEmptyValidTrace) {
  const json::Value report = parse(
      R"({"name": "bare", "spans": {}, "timeline": {}})");
  json::Value out;
  std::string err;
  ASSERT_TRUE(chrome_trace_from_report(report, out, &err)) << err;
  EXPECT_TRUE(out.find("traceEvents")->as_array().empty());
  EXPECT_EQ(out.find("displayTimeUnit")->as_string(), "ms");

  // Reports without the sections at all (pre-span schema) still convert.
  json::Value out2;
  ASSERT_TRUE(chrome_trace_from_report(parse(R"({"name": "old"})"), out2,
                                       &err))
      << err;
  EXPECT_TRUE(out2.find("traceEvents")->as_array().empty());
}

TEST(ChromeTrace, RejectsMalformedSpans) {
  json::Value out;
  std::string err;
  EXPECT_FALSE(chrome_trace_from_report(parse("[1, 2]"), out, &err));
  EXPECT_NE(err.find("not a JSON object"), std::string::npos) << err;

  // Missing required field.
  EXPECT_FALSE(chrome_trace_from_report(
      parse(R"({"spans": {"events": [{"trace": 1, "id": 0, "begin": 3,
                                      "end": 4}]}})"),
      out, &err));
  EXPECT_NE(err.find("spans.events[0]"), std::string::npos) << err;

  // Negative-duration span.
  EXPECT_FALSE(chrome_trace_from_report(
      parse(R"({"spans": {"events": [{"trace": 1, "id": 0, "kind": "op",
                                      "begin": 9, "end": 3}]}})"),
      out, &err));
  EXPECT_NE(err.find("ends before it begins"), std::string::npos) << err;
}

TEST(ChromeTrace, RejectsMalformedTimeline) {
  json::Value out;
  std::string err;
  // Row width must be counters + 1.
  EXPECT_FALSE(chrome_trace_from_report(
      parse(R"({"timeline": {"counters": ["a", "b"],
                             "rows": [[0, 1.0]]}})"),
      out, &err));
  EXPECT_NE(err.find("timeline.rows[0]"), std::string::npos) << err;

  // Counters without rows (or vice versa) is malformed, not empty.
  EXPECT_FALSE(chrome_trace_from_report(
      parse(R"({"timeline": {"counters": ["a"]}})"), out, &err));
  EXPECT_NE(err.find("counters/rows"), std::string::npos) << err;

  // Non-numeric cell.
  EXPECT_FALSE(chrome_trace_from_report(
      parse(R"({"timeline": {"counters": ["a"],
                             "rows": [[0, "oops"]]}})"),
      out, &err));
  EXPECT_NE(err.find("non-numeric cell"), std::string::npos) << err;
}

TEST(ChromeTrace, RealProducersRoundTripThroughReportText) {
  // SpanSink + FlightRecorder -> RunReport -> serialized text -> parse ->
  // convert: the exact pipeline `bench --metrics-out` + trace_export runs.
  SpanSink sink(8);
  Span root;
  root.trace = 3;
  root.kind = SpanKind::kRequest;
  root.op = 1;
  root.label = "grow";
  root.begin = 2;
  root.end = 10;
  sink.emit(root);
  Span op;
  op.trace = 3;
  op.id = sink.open(3);
  op.parent = kRootSpanId;
  op.kind = SpanKind::kOp;
  op.node = 5;
  op.begin = 4;
  op.end = 8;
  sink.emit(op);

  FlightRecorder fr({"reqs"}, /*period=*/4);
  Registry reg;
  reg.add("reqs", 2);
  fr.begin_row(0);
  fr.accumulate(reg);
  fr.commit_row();

  RunReport report("pipeline");
  report.set_spans(sink.to_json());
  report.set_timeline(fr.to_json());
  std::ostringstream os;
  report.write_json(os, nullptr);

  json::Value parsed;
  std::string err;
  ASSERT_TRUE(json::Value::parse(os.str(), parsed, &err)) << err;
  json::Value out;
  ASSERT_TRUE(chrome_trace_from_report(parsed, out, &err)) << err;
  const json::Array& events = out.find("traceEvents")->as_array();
  ASSERT_EQ(events.size(), 3u);  // 2 spans + 1 row * 1 counter
  EXPECT_EQ(events[0].find("name")->as_string(), "grow");
  EXPECT_EQ(events[1].find("cat")->as_string(), "op");
  EXPECT_EQ(events[1].find("args")->find("node")->as_uint(), 5u);
  EXPECT_EQ(events[2].find("ph")->as_string(), "C");
  EXPECT_DOUBLE_EQ(events[2].find("args")->find("value")->as_double(), 2.0);
}

}  // namespace
}  // namespace dyncon::obs

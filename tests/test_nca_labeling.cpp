// Tests for the heavy-path NCA labeling scheme (§5.4, Obs. 5.5).

#include <gtest/gtest.h>

#include "apps/nca_labeling.hpp"
#include "util/rng.hpp"
#include "workload/shapes.hpp"

namespace dyncon::apps {
namespace {

using tree::DynamicTree;

/// Ground-truth NCA by walking parents.
NodeId true_nca(const DynamicTree& t, NodeId u, NodeId v) {
  std::uint64_t du = t.depth(u), dv = t.depth(v);
  while (du > dv) {
    u = t.parent(u);
    --du;
  }
  while (dv > du) {
    v = t.parent(v);
    --dv;
  }
  while (u != v) {
    u = t.parent(u);
    v = t.parent(v);
  }
  return u;
}

void audit_all_pairs(const DynamicTree& t, const NcaLabeling& nca) {
  const auto nodes = t.alive_nodes();
  for (NodeId u : nodes) {
    for (NodeId v : nodes) {
      ASSERT_EQ(nca.nca(u, v), true_nca(t, u, v))
          << "pair (" << u << "," << v << ")";
    }
  }
}

TEST(NcaLabeling, CorrectOnAllShapes) {
  for (auto shape : workload::all_shapes()) {
    Rng rng(1);
    DynamicTree t;
    workload::build(t, shape, 40, rng);
    NcaLabeling nca(t);
    audit_all_pairs(t, nca);
  }
}

TEST(NcaLabeling, SelfAndAncestorQueries) {
  Rng rng(2);
  DynamicTree t;
  workload::build(t, workload::Shape::kBinary, 31, rng);
  NcaLabeling nca(t);
  const auto nodes = t.alive_nodes();
  for (NodeId v : nodes) {
    EXPECT_EQ(nca.nca(v, v), v);
    EXPECT_EQ(nca.nca(t.root(), v), t.root());
  }
}

TEST(NcaLabeling, LabelsAreLogarithmic) {
  for (auto shape :
       {workload::Shape::kPath, workload::Shape::kBinary,
        workload::Shape::kRandomAttach, workload::Shape::kCaterpillar}) {
    Rng rng(3);
    DynamicTree t;
    workload::build(t, shape, 500, rng);
    NcaLabeling nca(t);
    // Heavy-path decomposition: <= log2(n) light edges on any root path,
    // so <= log2(n) + 1 entries.
    EXPECT_LE(nca.max_label_entries(), ceil_log2(t.size()) + 1)
        << workload::shape_name(shape);
  }
}

TEST(NcaLabeling, PathHasSingleEntryLabels) {
  Rng rng(4);
  DynamicTree t;
  workload::build(t, workload::Shape::kPath, 60, rng);
  NcaLabeling nca(t);
  EXPECT_EQ(nca.max_label_entries(), 1u);  // one heavy path, no light edges
}

TEST(NcaLabeling, LeafGraftsStayCorrect) {
  Rng rng(5);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 24, rng);
  NcaLabeling nca(t);
  for (int i = 0; i < 30; ++i) {
    const auto r = nca.request_add_leaf(workload::random_node(t, rng));
    ASSERT_TRUE(r.granted());
    if (i % 6 == 0) audit_all_pairs(t, nca);
  }
  audit_all_pairs(t, nca);
}

TEST(NcaLabeling, LeafRemovalsStayCorrect) {
  Rng rng(6);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 40, rng);
  NcaLabeling nca(t);
  int removed = 0;
  while (removed < 25) {
    const auto nodes = t.alive_nodes();
    const NodeId v = nodes[rng.index(nodes.size())];
    if (v == t.root() || !t.is_leaf(v)) continue;
    ASSERT_TRUE(nca.request_remove_leaf(v).granted());
    ++removed;
    if (removed % 5 == 0) audit_all_pairs(t, nca);
  }
  audit_all_pairs(t, nca);
}

TEST(NcaLabeling, MixedLeafChurnWithRebuilds) {
  Rng rng(7);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 64, rng);
  NcaLabeling nca(t);
  const std::uint64_t initial_rebuilds = nca.rebuilds();
  for (int i = 0; i < 500; ++i) {
    if (rng.chance(0.5)) {
      nca.request_add_leaf(workload::random_node(t, rng));
    } else {
      const auto nodes = t.alive_nodes();
      const NodeId v = nodes[rng.index(nodes.size())];
      if (v != t.root() && t.is_leaf(v)) nca.request_remove_leaf(v);
    }
    if (i % 50 == 0) audit_all_pairs(t, nca);
  }
  audit_all_pairs(t, nca);
  // Growth/shrink over 500 steps triggers at least one rebuild cycle and
  // label lengths stay in the logarithmic band afterwards.
  EXPECT_GE(nca.rebuilds(), initial_rebuilds);
  EXPECT_LE(nca.max_label_entries(), 2 * ceil_log2(t.size()) + 2);
}

TEST(NcaLabeling, RejectsInternalRemoval) {
  Rng rng(8);
  DynamicTree t;
  workload::build(t, workload::Shape::kPath, 5, rng);
  NcaLabeling nca(t);
  EXPECT_THROW(nca.request_remove_leaf(t.alive_nodes()[1]), ContractError);
}

}  // namespace
}  // namespace dyncon::apps

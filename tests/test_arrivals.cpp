// Tests for the arrival processes and the open-loop timed driver: requests
// overlapping freely with protocol traffic under every arrival pattern.

#include <gtest/gtest.h>

#include "core/distributed_controller.hpp"
#include "tree/validate.hpp"
#include "workload/arrival.hpp"
#include "workload/scenario.hpp"
#include "workload/shapes.hpp"

namespace dyncon::workload {
namespace {

TEST(Arrivals, UniformIsConstant) {
  UniformArrivals a(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_gap(), 5u);
}

TEST(Arrivals, PoissonHasRightMean) {
  PoissonArrivals a(Rng(1), 8.0);
  double sum = 0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(a.next_gap());
  const double mean = sum / kN;
  EXPECT_NEAR(mean, 8.0, 0.5);  // geometric mean gap ~ 1/p
}

TEST(Arrivals, PoissonRejectsSubTickMean) {
  EXPECT_THROW(PoissonArrivals(Rng(1), 0.5), ContractError);
}

TEST(Arrivals, BurstyAlternatesZeroAndPause) {
  BurstyArrivals a(Rng(2), 6, 50);
  int zeros = 0, pauses = 0;
  for (int i = 0; i < 500; ++i) {
    const auto g = a.next_gap();
    if (g == 0) {
      ++zeros;
    } else {
      EXPECT_GE(g, 50u);
      ++pauses;
    }
  }
  EXPECT_GT(zeros, pauses);  // bursts dominate counts
  EXPECT_GT(pauses, 10);
}

TEST(Arrivals, FactoryCoversKinds) {
  for (auto k : {ArrivalKind::kUniform, ArrivalKind::kPoisson,
                 ArrivalKind::kBursty, ArrivalKind::kOnOff}) {
    auto a = make_arrivals(k, 7);
    ASSERT_NE(a, nullptr);
    (void)a->next_gap();
    EXPECT_FALSE(a->name().empty());
  }
}

TEST(Arrivals, OnOffInsertsPausesBetweenWaves) {
  // Base process: one arrival per tick.  With on=10/off=100 every 10 ticks
  // of arrivals must be followed by a pause of >= 100, so long gaps appear
  // at a predictable rate and cumulative time is dominated by OFF spans.
  OnOffArrivals a(Rng(5), std::make_unique<UniformArrivals>(1), 10, 100);
  int longs = 0;
  SimTime total = 0;
  const int kN = 1000;
  for (int i = 0; i < kN; ++i) {
    const SimTime g = a.next_gap();
    if (g >= 100) ++longs;
    total += g;
  }
  // ~1 pause per 10 arrivals; jitter cannot merge or drop pauses here.
  EXPECT_EQ(longs, kN / 10);
  EXPECT_GE(total, static_cast<SimTime>(longs) * 100);
}

TEST(Arrivals, OnOffIsSeedDeterministic) {
  auto run = [](std::uint64_t seed) {
    auto a = make_arrivals(ArrivalKind::kOnOff, seed);
    std::vector<SimTime> gaps;
    for (int i = 0; i < 200; ++i) gaps.push_back(a->next_gap());
    return gaps;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(Arrivals, OnOffLongBaseGapSpendsMultipleSpans) {
  // A base gap of 35 spans three full ON windows of 10 — three OFF pauses
  // (100 each, +jitter) must be inserted into the single returned gap.
  OnOffArrivals a(Rng(9), std::make_unique<UniformArrivals>(35), 10, 100);
  const SimTime g = a.next_gap();
  EXPECT_GE(g, 35u + 3 * 100u);
}

TEST(Zipf, ProbabilitiesFormDistribution) {
  ZipfSelector z(100, 1.1);
  EXPECT_EQ(z.size(), 100u);
  double sum = 0;
  double prev = 1.0;
  for (std::size_t i = 0; i < z.size(); ++i) {
    const double p = z.probability(i);
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, prev + 1e-12) << "mass must be non-increasing in rank";
    prev = p;
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, ZeroSkewIsUniform) {
  ZipfSelector z(8, 0.0);
  for (std::size_t i = 0; i < z.size(); ++i) {
    EXPECT_NEAR(z.probability(i), 1.0 / 8.0, 1e-12);
  }
}

TEST(Zipf, EmpiricalFrequencyMatchesHead) {
  ZipfSelector z(64, 1.0);
  Rng rng(123);
  const int kN = 50000;
  int head = 0;
  for (int i = 0; i < kN; ++i) {
    const std::size_t pick = z.pick(rng);
    ASSERT_LT(pick, z.size());
    if (pick == 0) ++head;
  }
  EXPECT_NEAR(static_cast<double>(head) / kN, z.probability(0), 0.01);
}

TEST(Zipf, PickIsSeedDeterministic) {
  ZipfSelector z(32, 1.2);
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.pick(a), z.pick(b));
}

TEST(Zipf, SingleIndexAlwaysPicked) {
  ZipfSelector z(1, 2.0);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(z.pick(rng), 0u);
}

TEST(TimedDriver, OpenLoopChurnUnderEveryArrivalPattern) {
  for (auto kind : {ArrivalKind::kUniform, ArrivalKind::kPoisson,
                    ArrivalKind::kBursty}) {
    Rng rng(11);
    sim::EventQueue queue;
    sim::Network net(queue,
                     sim::make_delay(sim::DelayKind::kUniform, 13));
    tree::DynamicTree t;
    build(t, Shape::kRandomAttach, 32, rng);
    const std::uint64_t M = 300, W = 60;
    core::DistributedController ctrl(net, t, core::Params(M, W, 1024));
    ChurnGenerator churn(ChurnModel::kInternalChurn, Rng(17));
    auto arrivals = make_arrivals(kind, 19);
    const auto stats = run_churn_timed(ctrl, queue, t, churn, /*steps=*/250,
                                       *arrivals, /*event_fraction=*/0.2,
                                       rng);
    EXPECT_EQ(stats.requests, 250u) << arrival_kind_name(kind);
    EXPECT_LE(ctrl.permits_granted(), M) << arrival_kind_name(kind);
    if (stats.rejected > 0) {
      EXPECT_GE(ctrl.permits_granted(), M - W) << arrival_kind_name(kind);
    }
    EXPECT_EQ(ctrl.active_agents(), 0u) << arrival_kind_name(kind);
    const auto valid = tree::validate(t);
    EXPECT_TRUE(valid.ok()) << arrival_kind_name(kind) << ": "
                            << valid.detail;
    ASSERT_NE(ctrl.domains(), nullptr);
    EXPECT_EQ(ctrl.domains()->check_invariants(), "")
        << arrival_kind_name(kind);
    EXPECT_EQ(ctrl.permits_granted() + ctrl.unused_permits(), M)
        << arrival_kind_name(kind);
  }
}

TEST(TimedDriver, BurstyArrivalsRaceTheFlood) {
  // Tight budget + bursty open-loop arrivals: the reject flood spreads
  // while whole bursts are still in flight.
  Rng rng(23);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kHeavyTail, 29));
  tree::DynamicTree t;
  build(t, Shape::kCaterpillar, 48, rng);
  const std::uint64_t M = 25, W = 5;
  core::DistributedController ctrl(net, t, core::Params(M, W, 256));
  ChurnGenerator churn(ChurnModel::kGrowOnly, Rng(31));
  auto arrivals = make_arrivals(ArrivalKind::kBursty, 37);
  const auto stats = run_churn_timed(ctrl, queue, t, churn, /*steps=*/120,
                                     *arrivals, 0.0, rng);
  EXPECT_EQ(stats.requests, 120u);
  EXPECT_LE(stats.granted, M);
  EXPECT_GE(stats.granted, M - W);
  EXPECT_TRUE(ctrl.reject_wave_started());
  EXPECT_EQ(ctrl.active_agents(), 0u);
}

}  // namespace
}  // namespace dyncon::workload

// Tests for the arrival processes and the open-loop timed driver: requests
// overlapping freely with protocol traffic under every arrival pattern.

#include <gtest/gtest.h>

#include "core/distributed_controller.hpp"
#include "tree/validate.hpp"
#include "workload/arrival.hpp"
#include "workload/scenario.hpp"
#include "workload/shapes.hpp"

namespace dyncon::workload {
namespace {

TEST(Arrivals, UniformIsConstant) {
  UniformArrivals a(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_gap(), 5u);
}

TEST(Arrivals, PoissonHasRightMean) {
  PoissonArrivals a(Rng(1), 8.0);
  double sum = 0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(a.next_gap());
  const double mean = sum / kN;
  EXPECT_NEAR(mean, 8.0, 0.5);  // geometric mean gap ~ 1/p
}

TEST(Arrivals, PoissonRejectsSubTickMean) {
  EXPECT_THROW(PoissonArrivals(Rng(1), 0.5), ContractError);
}

TEST(Arrivals, BurstyAlternatesZeroAndPause) {
  BurstyArrivals a(Rng(2), 6, 50);
  int zeros = 0, pauses = 0;
  for (int i = 0; i < 500; ++i) {
    const auto g = a.next_gap();
    if (g == 0) {
      ++zeros;
    } else {
      EXPECT_GE(g, 50u);
      ++pauses;
    }
  }
  EXPECT_GT(zeros, pauses);  // bursts dominate counts
  EXPECT_GT(pauses, 10);
}

TEST(Arrivals, FactoryCoversKinds) {
  for (auto k : {ArrivalKind::kUniform, ArrivalKind::kPoisson,
                 ArrivalKind::kBursty}) {
    auto a = make_arrivals(k, 7);
    ASSERT_NE(a, nullptr);
    (void)a->next_gap();
    EXPECT_FALSE(a->name().empty());
  }
}

TEST(TimedDriver, OpenLoopChurnUnderEveryArrivalPattern) {
  for (auto kind : {ArrivalKind::kUniform, ArrivalKind::kPoisson,
                    ArrivalKind::kBursty}) {
    Rng rng(11);
    sim::EventQueue queue;
    sim::Network net(queue,
                     sim::make_delay(sim::DelayKind::kUniform, 13));
    tree::DynamicTree t;
    build(t, Shape::kRandomAttach, 32, rng);
    const std::uint64_t M = 300, W = 60;
    core::DistributedController ctrl(net, t, core::Params(M, W, 1024));
    ChurnGenerator churn(ChurnModel::kInternalChurn, Rng(17));
    auto arrivals = make_arrivals(kind, 19);
    const auto stats = run_churn_timed(ctrl, queue, t, churn, /*steps=*/250,
                                       *arrivals, /*event_fraction=*/0.2,
                                       rng);
    EXPECT_EQ(stats.requests, 250u) << arrival_kind_name(kind);
    EXPECT_LE(ctrl.permits_granted(), M) << arrival_kind_name(kind);
    if (stats.rejected > 0) {
      EXPECT_GE(ctrl.permits_granted(), M - W) << arrival_kind_name(kind);
    }
    EXPECT_EQ(ctrl.active_agents(), 0u) << arrival_kind_name(kind);
    const auto valid = tree::validate(t);
    EXPECT_TRUE(valid.ok()) << arrival_kind_name(kind) << ": "
                            << valid.detail;
    ASSERT_NE(ctrl.domains(), nullptr);
    EXPECT_EQ(ctrl.domains()->check_invariants(), "")
        << arrival_kind_name(kind);
    EXPECT_EQ(ctrl.permits_granted() + ctrl.unused_permits(), M)
        << arrival_kind_name(kind);
  }
}

TEST(TimedDriver, BurstyArrivalsRaceTheFlood) {
  // Tight budget + bursty open-loop arrivals: the reject flood spreads
  // while whole bursts are still in flight.
  Rng rng(23);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kHeavyTail, 29));
  tree::DynamicTree t;
  build(t, Shape::kCaterpillar, 48, rng);
  const std::uint64_t M = 25, W = 5;
  core::DistributedController ctrl(net, t, core::Params(M, W, 256));
  ChurnGenerator churn(ChurnModel::kGrowOnly, Rng(31));
  auto arrivals = make_arrivals(ArrivalKind::kBursty, 37);
  const auto stats = run_churn_timed(ctrl, queue, t, churn, /*steps=*/120,
                                     *arrivals, 0.0, rng);
  EXPECT_EQ(stats.requests, 120u);
  EXPECT_LE(stats.granted, M);
  EXPECT_GE(stats.granted, M - W);
  EXPECT_TRUE(ctrl.reject_wave_started());
  EXPECT_EQ(ctrl.active_agents(), 0u);
}

}  // namespace
}  // namespace dyncon::workload

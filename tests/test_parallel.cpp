// The deterministic parallel run engine (util/thread_pool.hpp) and the
// observability guarantees parallel sweeps lean on:
//
//   * the pool runs every submitted task and propagates exceptions,
//   * for_each_index reports the lowest-index failure regardless of
//     scheduling,
//   * seed derivation depends only on (base_seed, index) — never on the
//     worker count,
//   * a replicated distributed-controller sweep produces byte-identical
//     metric snapshots at jobs=1 and jobs=8,
//   * Registry epochs stay unique when minted from many threads, and
//     Registry::merge reproduces the serial totals.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/distributed_controller.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workload/shapes.hpp"

namespace dyncon::util {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> done{0};
  ThreadPool pool(4);
  for (int i = 0; i < 200; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, BoundedQueueBackpressure) {
  // Queue capacity far below the task count: submit must block-and-drain
  // rather than drop or deadlock.
  std::atomic<int> done{0};
  ThreadPool pool(2, /*queue_capacity=*/4);
  for (int i = 0; i < 100; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, WaitIdleRethrowsTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable after the rethrow.
  std::atomic<int> done{0};
  pool.submit([&done] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 1);
}

TEST(ThreadPool, ForEachIsAReusableBarrier) {
  // The forest runtime barriers once per virtual-time window on the SAME
  // pool; every call must visit every index exactly once and return only
  // after all of them finished.
  ThreadPool pool(4);
  std::vector<int> hits(64, 0);
  for (int round = 0; round < 50; ++round) {
    pool.for_each(hits.size(), [&](std::uint64_t i) { hits[i] += 1; });
  }
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 50) << "index " << i;
  }
}

TEST(ThreadPool, ForEachHandlesDegenerateCounts) {
  ThreadPool pool(3);
  pool.for_each(0, [](std::uint64_t) { FAIL() << "n=0 must not call fn"; });
  int calls = 0;
  pool.for_each(1, [&](std::uint64_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ForEachRethrowsLowestIndexAndStaysUsable) {
  ThreadPool pool(4);
  try {
    pool.for_each(32, [](std::uint64_t i) {
      if (i == 3) throw std::runtime_error("index 3");
      if (i == 20) throw std::runtime_error("index 20");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "index 3");
  }
  std::atomic<int> done{0};
  pool.for_each(8, [&](std::uint64_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 8);
}

TEST(ForEachIndex, VisitsEveryIndexOnceAtAnyJobCount) {
  for (const unsigned jobs : {1u, 3u, 8u}) {
    std::vector<int> hits(257, 0);
    for_each_index(hits.size(), jobs,
                   [&](std::uint64_t i) { hits[i] += 1; });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i], 1) << "index " << i << " jobs " << jobs;
    }
  }
}

TEST(ForEachIndex, LowestFailingIndexWinsRegardlessOfScheduling) {
  for (const unsigned jobs : {1u, 7u}) {
    try {
      for_each_index(64, jobs, [](std::uint64_t i) {
        // Higher indices fail "sooner" in wall-clock terms, lower index
        // failures must still win the report.
        if (i == 5) throw std::runtime_error("index 5");
        if (i == 50) throw std::runtime_error("index 50");
      });
      FAIL() << "expected an exception at jobs=" << jobs;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "index 5") << "jobs=" << jobs;
    }
  }
}

TEST(ParallelForRuns, SeedDerivationIndependentOfWorkerCount) {
  auto draws_at = [](unsigned jobs) {
    std::vector<std::uint64_t> first(40, 0);
    parallel_for_runs(first.size(), jobs, /*base_seed=*/12345,
                      [&](std::uint64_t i, Rng rng) {
                        first[i] = rng.next();
                      });
    return first;
  };
  const auto serial = draws_at(1);
  EXPECT_EQ(serial, draws_at(5));
  EXPECT_EQ(serial, draws_at(8));
  // And the streams are pairwise distinct (split() actually splits).
  std::set<std::uint64_t> uniq(serial.begin(), serial.end());
  EXPECT_EQ(uniq.size(), serial.size());
}

TEST(RegistryConcurrency, EpochsUniqueAcrossThreads) {
  std::vector<std::uint64_t> epochs(64, 0);
  for_each_index(epochs.size(), 8, [&](std::uint64_t i) {
    obs::Registry r;
    epochs[i] = r.epoch();
  });
  std::set<std::uint64_t> uniq(epochs.begin(), epochs.end());
  EXPECT_EQ(uniq.size(), epochs.size());
}

// One seeded distributed-controller run, instrumented into whatever
// registry is installed on the calling thread.
void one_run(Rng rng) {
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kUniform,
                                          rng.next()));
  tree::DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 48, rng);
  core::DistributedController::Options opts;
  opts.track_domains = false;
  core::DistributedController ctrl(net, t, core::Params(80, 16, 256), opts);
  core::DistributedSyncFacade facade(queue, ctrl);
  const auto nodes = t.alive_nodes();
  for (int i = 0; i < 100; ++i) {
    facade.request_event(nodes[rng.index(nodes.size())]);
  }
}

std::string sweep_snapshot(unsigned jobs) {
  // The bench::parallel_sweep recipe, hand-rolled: per-run registries,
  // merged into a fresh main registry in run order.
  obs::Registry main_reg;
  std::vector<obs::Registry> per_run(8);
  parallel_for_runs(per_run.size(), jobs, /*base_seed=*/777,
                    [&](std::uint64_t i, Rng rng) {
                      obs::ScopedMetrics scope(per_run[i]);
                      one_run(rng);
                    });
  for (const obs::Registry& r : per_run) main_reg.merge(r);
  std::ostringstream os;
  main_reg.to_json().dump(os, 2);
  return os.str();
}

TEST(ParallelSweep, MetricSnapshotsByteIdenticalAcrossJobCounts) {
  const std::string serial = sweep_snapshot(1);
  EXPECT_FALSE(serial.empty());
  // The workload actually instruments something; an empty registry would
  // make this test vacuous.
  EXPECT_NE(serial.find("net.messages"), std::string::npos);
  EXPECT_EQ(serial, sweep_snapshot(8));
}

TEST(RegistryMerge, MatchesSerialTotals) {
  // The same instrumentation split across two registries and merged must
  // equal one registry that saw everything.
  obs::Registry whole;
  {
    obs::ScopedMetrics scope(whole);
    one_run(Rng(9));
    one_run(Rng(10));
  }
  obs::Registry a, b, merged;
  {
    obs::ScopedMetrics scope(a);
    one_run(Rng(9));
  }
  {
    obs::ScopedMetrics scope(b);
    one_run(Rng(10));
  }
  merged.merge(a);
  merged.merge(b);
  std::ostringstream w, m;
  whole.to_json().dump(w, 2);
  merged.to_json().dump(m, 2);
  EXPECT_EQ(w.str(), m.str());
}

}  // namespace
}  // namespace dyncon::util

// Edge cases and boundary regimes of the controller machinery:
// degenerate trees, extreme (M, W, U) combinations, phi > 1 static
// packages, single-node networks, the psi ablation knob.

#include <gtest/gtest.h>

#include "core/centralized_controller.hpp"
#include "core/distributed_controller.hpp"
#include "core/iterated_controller.hpp"
#include "util/rng.hpp"
#include "workload/shapes.hpp"

namespace dyncon::core {
namespace {

using tree::DynamicTree;

TEST(EdgeCases, SingleNodeNetwork) {
  DynamicTree t;
  CentralizedController ctrl(t, Params(5, 1, 1));
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ctrl.request_event(t.root()).granted());
  }
  EXPECT_EQ(ctrl.request_event(t.root()).outcome, Outcome::kRejected);
  EXPECT_EQ(ctrl.cost(), 1u);  // only the reject wave ever moved anything
}

TEST(EdgeCases, MEqualsOne) {
  Rng rng(1);
  DynamicTree t;
  workload::build(t, workload::Shape::kPath, 5, rng);
  CentralizedController ctrl(t, Params(1, 1, 8));
  const NodeId deep = t.alive_nodes().back();
  EXPECT_TRUE(ctrl.request_event(deep).granted());
  EXPECT_EQ(ctrl.request_event(deep).outcome, Outcome::kRejected);
  EXPECT_EQ(ctrl.permits_granted(), 1u);
}

TEST(EdgeCases, HugeWMakesPhiLarge) {
  // W >= 2U gives phi = floor(W/2U) > 1: static packages hold several
  // permits and co-located requests are served for free.
  Rng rng(2);
  DynamicTree t;
  workload::build(t, workload::Shape::kPath, 8, rng);
  const std::uint64_t U = 16, W = 160;  // phi = 5
  CentralizedController ctrl(t, Params(100, W, U));
  EXPECT_EQ(ctrl.params().phi(), 5u);
  const NodeId deep = t.alive_nodes().back();
  ASSERT_TRUE(ctrl.request_event(deep).granted());
  const std::uint64_t cost_first = ctrl.cost();
  // The next phi-1 requests at the same node hit the static package:
  // zero additional moves.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ctrl.request_event(deep).granted());
  }
  EXPECT_EQ(ctrl.cost(), cost_first);
}

TEST(EdgeCases, MuchLargerMThanU) {
  // M far beyond the polynomial regime still behaves (the paper's
  // M = n0^O(log^2 n0) assumption affects bounds, not correctness).
  Rng rng(3);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 8, rng);
  CentralizedController ctrl(t, Params(1u << 30, 1u << 20, 16));
  const auto nodes = t.alive_nodes();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(ctrl.request_event(nodes[rng.index(nodes.size())]).granted());
  }
  EXPECT_EQ(ctrl.permits_granted(), 200u);
}

TEST(EdgeCases, RequestsOnlyAtRoot) {
  DynamicTree t;
  Rng rng(4);
  workload::build(t, workload::Shape::kPath, 50, rng);
  CentralizedController ctrl(t, Params(64, 32, 128));
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(ctrl.request_event(t.root()).granted());
  }
  // Root requests never walk: cost stays zero until exhaustion.
  EXPECT_EQ(ctrl.cost(), 0u);
}

TEST(EdgeCases, DeleteEveryNodeButRoot) {
  Rng rng(5);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 40, rng);
  IteratedController ctrl(t, 100, 50, 128);
  // Delete from the leaves inward until only the root remains.
  while (t.size() > 1) {
    const auto nodes = t.alive_nodes();
    ASSERT_TRUE(ctrl.request_remove(nodes.back()).granted());
  }
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.alive(t.root()));
}

TEST(EdgeCases, AlternatingInsertRemoveSameSpot) {
  // Pathological churn concentrated on one edge: insert an internal node,
  // remove it, repeat.  Exercises domain Case 4/5 bookkeeping heavily.
  Rng rng(6);
  DynamicTree t;
  workload::build(t, workload::Shape::kPath, 20, rng);
  CentralizedController ctrl(t, Params(1000, 500, 2048));
  const NodeId anchor = t.alive_nodes()[10];
  for (int i = 0; i < 100; ++i) {
    const Result mid = ctrl.request_add_internal_above(anchor);
    ASSERT_TRUE(mid.granted());
    ASSERT_TRUE(ctrl.request_remove(mid.new_node).granted());
    ASSERT_NE(ctrl.domains(), nullptr);
    ASSERT_EQ(ctrl.domains()->check_invariants(), "") << "cycle " << i;
  }
  EXPECT_EQ(t.size(), 20u);
}

TEST(EdgeCases, PsiScaleRoundTrips) {
  const Params base(100, 50, 64);
  EXPECT_EQ(base.with_psi_scale(1, 1).psi(), base.psi());
  const Params half = base.with_psi_scale(1, 2);
  EXPECT_EQ(half.psi() % 4, 0u);
  EXPECT_LT(half.psi(), base.psi());
  const Params tiny = base.with_psi_scale(1, 1000000);
  EXPECT_EQ(tiny.psi(), 4u);  // clamped to the smallest legal scale
  EXPECT_THROW(base.with_psi_scale(0, 1), ContractError);
}

TEST(EdgeCases, ScaledPsiStillSafeAndLive) {
  // The ablation knob voids the W analysis, never safety; liveness at
  // W = M/2 survives a 4x shrink at this scale.
  Rng rng(7);
  DynamicTree t;
  workload::build(t, workload::Shape::kPath, 200, rng);
  const std::uint64_t M = 128;
  CentralizedController ctrl(t, Params(M, M / 2, 512).with_psi_scale(1, 4));
  const auto nodes = t.alive_nodes();
  std::uint64_t granted = 0;
  for (std::uint64_t i = 0; i < 4 * M; ++i) {
    granted += ctrl.request_event(nodes[rng.index(nodes.size())]).granted();
  }
  EXPECT_LE(granted, M);
  EXPECT_GE(granted, M / 2);
}

TEST(EdgeCases, DistributedSingleNode) {
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kFixed, 1));
  DynamicTree t;
  DistributedController ctrl(net, t, Params(3, 1, 1));
  int granted = 0, rejected = 0;
  for (int i = 0; i < 6; ++i) {
    ctrl.submit_event(t.root(), [&](const Result& r) {
      granted += r.granted();
      rejected += r.outcome == Outcome::kRejected;
    });
  }
  queue.run();
  EXPECT_EQ(granted, 3);
  EXPECT_EQ(rejected, 3);
  EXPECT_EQ(ctrl.messages_used(), 0u);  // nothing ever crossed an edge
}

TEST(EdgeCases, DistributedStarBurst) {
  // A star maximizes root contention: every agent needs the root's lock
  // region immediately.
  Rng rng(8);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kUniform, 9));
  DynamicTree t;
  workload::build(t, workload::Shape::kStar, 64, rng);
  DistributedController ctrl(net, t, Params(63, 31, 128));
  int answered = 0;
  for (NodeId v : t.alive_nodes()) {
    if (v == t.root()) continue;
    ctrl.submit_event(v, [&](const Result&) { ++answered; });
  }
  queue.run();
  EXPECT_EQ(answered, 63);
  EXPECT_EQ(ctrl.active_agents(), 0u);
}

TEST(EdgeCases, RemoveChainRootward) {
  // Remove an entire path from the bottom node's perspective: every
  // removal is an internal-node removal that re-parents the survivor.
  Rng rng(9);
  DynamicTree t;
  workload::build(t, workload::Shape::kPath, 30, rng);
  IteratedController ctrl(t, 64, 32, 64);
  const NodeId bottom = t.alive_nodes().back();
  while (t.depth(bottom) > 1) {
    const NodeId mid = t.parent(bottom);
    ASSERT_TRUE(ctrl.request_remove(mid).granted());
  }
  EXPECT_EQ(t.parent(bottom), t.root());
}

}  // namespace
}  // namespace dyncon::core

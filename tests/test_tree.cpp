// Unit tests for the dynamic tree substrate: the four controlled
// topological changes, queries, ports, validation, and observers.

#include <gtest/gtest.h>

#include "tree/dynamic_tree.hpp"
#include "tree/validate.hpp"
#include "util/rng.hpp"

namespace dyncon::tree {
namespace {

TEST(DynamicTree, StartsWithRootOnly) {
  DynamicTree t;
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.total_ever(), 1u);
  EXPECT_TRUE(t.alive(t.root()));
  EXPECT_EQ(t.parent(t.root()), kNoNode);
  EXPECT_TRUE(t.is_leaf(t.root()));
  EXPECT_TRUE(validate(t).ok());
}

TEST(DynamicTree, AddLeafBasics) {
  DynamicTree t;
  const NodeId a = t.add_leaf(t.root());
  const NodeId b = t.add_leaf(a);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.parent(b), a);
  EXPECT_EQ(t.depth(b), 2u);
  EXPECT_FALSE(t.is_leaf(a));
  EXPECT_TRUE(t.is_leaf(b));
  EXPECT_TRUE(validate(t).ok());
}

TEST(DynamicTree, RemoveLeaf) {
  DynamicTree t;
  const NodeId a = t.add_leaf(t.root());
  const NodeId b = t.add_leaf(a);
  t.remove_leaf(b);
  EXPECT_FALSE(t.alive(b));
  EXPECT_TRUE(t.is_leaf(a));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.total_ever(), 3u);  // ids are never reused
  EXPECT_TRUE(validate(t).ok());
}

TEST(DynamicTree, RemoveLeafRejectsRootAndInternal) {
  DynamicTree t;
  const NodeId a = t.add_leaf(t.root());
  t.add_leaf(a);
  EXPECT_THROW(t.remove_leaf(t.root()), ContractError);
  EXPECT_THROW(t.remove_leaf(a), ContractError);  // a is internal now
}

TEST(DynamicTree, AddInternalSplitsEdge) {
  DynamicTree t;
  const NodeId a = t.add_leaf(t.root());
  const NodeId b = t.add_leaf(a);
  const NodeId m = t.add_internal_above(b);
  EXPECT_EQ(t.parent(b), m);
  EXPECT_EQ(t.parent(m), a);
  EXPECT_EQ(t.depth(b), 3u);
  EXPECT_TRUE(validate(t).ok());
}

TEST(DynamicTree, AddInternalAboveRootChildren) {
  DynamicTree t;
  const NodeId a = t.add_leaf(t.root());
  const NodeId m = t.add_internal_above(a);
  EXPECT_EQ(t.parent(m), t.root());
  EXPECT_EQ(t.parent(a), m);
  EXPECT_THROW(t.add_internal_above(t.root()), ContractError);
  EXPECT_TRUE(validate(t).ok());
}

TEST(DynamicTree, RemoveInternalReparentsChildren) {
  DynamicTree t;
  const NodeId a = t.add_leaf(t.root());
  const NodeId b = t.add_leaf(a);
  const NodeId c = t.add_leaf(a);
  t.remove_internal(a);
  EXPECT_FALSE(t.alive(a));
  EXPECT_EQ(t.parent(b), t.root());
  EXPECT_EQ(t.parent(c), t.root());
  EXPECT_EQ(t.size(), 3u);
  EXPECT_TRUE(validate(t).ok());
}

TEST(DynamicTree, RemoveNodeDispatches) {
  DynamicTree t;
  const NodeId a = t.add_leaf(t.root());
  const NodeId b = t.add_leaf(a);
  t.remove_node(a);  // internal
  EXPECT_EQ(t.parent(b), t.root());
  t.remove_node(b);  // leaf
  EXPECT_EQ(t.size(), 1u);
}

TEST(DynamicTree, AncestryQueries) {
  DynamicTree t;
  const NodeId a = t.add_leaf(t.root());
  const NodeId b = t.add_leaf(a);
  const NodeId c = t.add_leaf(t.root());
  EXPECT_TRUE(t.is_ancestor(t.root(), b));
  EXPECT_TRUE(t.is_ancestor(a, b));
  EXPECT_TRUE(t.is_ancestor(b, b));
  EXPECT_FALSE(t.is_ancestor(b, a));
  EXPECT_FALSE(t.is_ancestor(c, b));
  EXPECT_EQ(t.ancestor_at(b, 0), b);
  EXPECT_EQ(t.ancestor_at(b, 1), a);
  EXPECT_EQ(t.ancestor_at(b, 2), t.root());
  EXPECT_THROW(t.ancestor_at(b, 3), ContractError);
}

TEST(DynamicTree, AliveNodesIsBfsFromRoot) {
  DynamicTree t;
  const NodeId a = t.add_leaf(t.root());
  const NodeId b = t.add_leaf(t.root());
  const NodeId c = t.add_leaf(a);
  const auto nodes = t.alive_nodes();
  ASSERT_EQ(nodes.size(), 4u);
  EXPECT_EQ(nodes[0], t.root());
  EXPECT_EQ(nodes[1], a);
  EXPECT_EQ(nodes[2], b);
  EXPECT_EQ(nodes[3], c);
}

TEST(DynamicTree, PortsUniqueAndSymmetric) {
  DynamicTree t;
  const NodeId a = t.add_leaf(t.root());
  const NodeId b = t.add_leaf(a);
  EXPECT_TRUE(t.ports().has_port(a, t.root()));
  EXPECT_TRUE(t.ports().has_port(a, b));
  const PortId p = t.ports().port_to(a, b);
  EXPECT_EQ(t.ports().neighbor_at(a, p), b);
  EXPECT_EQ(t.ports().degree(a), 2u);
}

TEST(DynamicTree, PortsFollowTopologyChanges) {
  DynamicTree t;
  const NodeId a = t.add_leaf(t.root());
  const NodeId b = t.add_leaf(a);
  const NodeId m = t.add_internal_above(b);
  EXPECT_FALSE(t.ports().has_port(a, b));
  EXPECT_TRUE(t.ports().has_port(a, m));
  EXPECT_TRUE(t.ports().has_port(m, b));
  t.remove_internal(m);
  EXPECT_TRUE(t.ports().has_port(a, b));
  EXPECT_EQ(t.ports().degree(b), 1u);
  EXPECT_TRUE(validate(t).ok());
}

class RecordingObserver final : public TreeObserver {
 public:
  int adds = 0, removes = 0, internal_adds = 0, internal_removes = 0;
  void on_add_leaf(NodeId, NodeId) override { ++adds; }
  void on_remove_leaf(NodeId, NodeId) override { ++removes; }
  void on_add_internal(NodeId, NodeId, NodeId) override { ++internal_adds; }
  void on_remove_internal(NodeId, NodeId,
                          const std::vector<NodeId>&) override {
    ++internal_removes;
  }
};

TEST(DynamicTree, ObserversSeeEveryChange) {
  DynamicTree t;
  RecordingObserver obs;
  t.add_observer(&obs);
  const NodeId a = t.add_leaf(t.root());
  const NodeId b = t.add_leaf(a);
  const NodeId m = t.add_internal_above(b);
  t.remove_internal(m);
  t.remove_leaf(b);
  t.remove_observer(&obs);
  t.add_leaf(a);  // not observed
  EXPECT_EQ(obs.adds, 2);
  EXPECT_EQ(obs.internal_adds, 1);
  EXPECT_EQ(obs.internal_removes, 1);
  EXPECT_EQ(obs.removes, 1);
}

TEST(DynamicTree, RandomizedChurnKeepsStructureValid) {
  DynamicTree t;
  Rng rng(99);
  std::vector<NodeId> alive{t.root()};
  for (int step = 0; step < 2000; ++step) {
    const auto roll = rng.uniform(0, 3);
    alive = t.alive_nodes();
    if (roll == 0 || t.size() < 3) {
      t.add_leaf(alive[rng.index(alive.size())]);
    } else if (roll == 1) {
      const NodeId v = alive[rng.index(alive.size())];
      if (v != t.root()) t.add_internal_above(v);
    } else {
      const NodeId v = alive[rng.index(alive.size())];
      if (v != t.root()) t.remove_node(v);
    }
    const auto res = validate(t);
    ASSERT_TRUE(res.ok()) << "step " << step << ": " << res.detail;
  }
}

}  // namespace
}  // namespace dyncon::tree

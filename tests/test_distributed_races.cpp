// Deterministic regressions for the concurrency races of the distributed
// controller — each of these interleavings was at some point a real bug
// (deadlock, leaked lock, or a stale path) and is now pinned:
//
//   A. the graceful-insertion splice: an agent waiting at a node when the
//      lock holder inserts a new node into the waiter's counted path;
//   B. origin relocation: requests queued at a node that gets removed;
//   C. two concurrent add-internal requests above the same child (the
//      effective-child serialization);
//   D. a request whose subject dies while it waits (kMoot at evaluation).
//
// Fixed 1-tick delays make the schedules reproducible.

#include <gtest/gtest.h>

#include <iostream>
#include <vector>

#include "core/distributed_controller.hpp"
#include "obs/events.hpp"
#include "sim/trace.hpp"
#include "tree/validate.hpp"
#include "workload/shapes.hpp"

namespace dyncon::core {
namespace {

using tree::DynamicTree;

struct Sim {
  sim::EventQueue queue;
  sim::Network net;
  DynamicTree tree;
  sim::Trace trace{256};
  obs::ScopedTrace trace_scope{trace};

  Sim() : net(queue, sim::make_delay(sim::DelayKind::kFixed, 1)) {
    trace.enable(true);
  }

  // Race tests are schedule bugs: when one fails, the interleaving that
  // produced it is the evidence.  Dump the typed event tail (JSONL) so the
  // failing schedule is in the test log without a re-run.
  ~Sim() {
    if (::testing::Test::HasFailure() && trace.size() > 0) {
      std::cerr << "--- typed trace tail (" << trace.size() << " of "
                << trace.recorded() << " events, " << trace.overwritten()
                << " overwritten) ---\n";
      trace.dump_jsonl(std::cerr, 64);
    }
  }
};

/// Build the path root -> a -> b -> c and return {a, b, c}.
std::vector<NodeId> make_path(DynamicTree& t, int extra) {
  std::vector<NodeId> out;
  NodeId cur = t.root();
  for (int i = 0; i < extra; ++i) {
    cur = t.add_leaf(cur);
    out.push_back(cur);
  }
  return out;
}

TEST(DistributedRaces, SpliceIntoWaitersPath) {
  // Y (add-internal above c, origin b) holds b's lock when X (event at c)
  // arrives below; Y's grant splices m between b and c — exactly into X's
  // counted path.  X must still complete, and every lock must drain.
  Sim s;
  const auto p = make_path(s.tree, 3);  // a, b, c
  const NodeId b = p[1], c = p[2];
  DistributedController ctrl(s.net, s.tree, Params(20, 10, 64));

  Result ry, rx;
  ctrl.submit_add_internal_above(c, [&](const Result& r) { ry = r; });
  ctrl.submit_event(c, [&](const Result& r) { rx = r; });
  s.queue.run();

  ASSERT_TRUE(ry.granted());
  ASSERT_TRUE(rx.granted());
  const NodeId m = ry.new_node;
  EXPECT_EQ(s.tree.parent(m), b);
  EXPECT_EQ(s.tree.parent(c), m);
  EXPECT_EQ(ctrl.active_agents(), 0u);
  EXPECT_TRUE(tree::validate(s.tree).ok());
  ASSERT_NE(ctrl.domains(), nullptr);
  EXPECT_EQ(ctrl.domains()->check_invariants(), "");
}

TEST(DistributedRaces, QueuedRequestsSurviveOriginRemoval) {
  // R removes b while E (a plain event) waits in b's queue: E relocates to
  // b's parent and must still be granted, not lost and not moot.
  Sim s;
  const auto p = make_path(s.tree, 2);  // a, b
  const NodeId a = p[0], b = p[1];
  DistributedController ctrl(s.net, s.tree, Params(20, 10, 64));

  Result rr, re;
  ctrl.submit_remove(b, [&](const Result& r) { rr = r; });
  ctrl.submit_event(b, [&](const Result& r) { re = r; });
  s.queue.run();

  EXPECT_TRUE(rr.granted());
  EXPECT_FALSE(s.tree.alive(b));
  EXPECT_TRUE(re.granted()) << "relocated request must complete at "
                            << "the parent (" << a << ")";
  EXPECT_EQ(ctrl.active_agents(), 0u);
}

TEST(DistributedRaces, SecondRemoveOfSameNodeIsMoot) {
  Sim s;
  const auto p = make_path(s.tree, 2);
  const NodeId b = p[1];
  DistributedController ctrl(s.net, s.tree, Params(20, 10, 64));
  std::vector<Outcome> outs;
  ctrl.submit_remove(b, [&](const Result& r) { outs.push_back(r.outcome); });
  ctrl.submit_remove(b, [&](const Result& r) { outs.push_back(r.outcome); });
  s.queue.run();
  ASSERT_EQ(outs.size(), 2u);
  EXPECT_EQ(std::count(outs.begin(), outs.end(), Outcome::kGranted), 1);
  EXPECT_EQ(std::count(outs.begin(), outs.end(), Outcome::kMoot), 1);
}

TEST(DistributedRaces, ConcurrentAddInternalAboveSameChild) {
  // Both requests arrive at c's (original) parent a.  The first inserts m1
  // between a and c; the second must split the edge (a, m1) — the edge its
  // origin's lock actually guards — NOT the edge (m1, c) some other agent
  // may be walking.
  Sim s;
  const auto p = make_path(s.tree, 2);  // a, c
  const NodeId a = p[0], c = p[1];
  DistributedController ctrl(s.net, s.tree, Params(20, 10, 64));

  Result r1, r2;
  ctrl.submit_add_internal_above(c, [&](const Result& r) { r1 = r; });
  ctrl.submit_add_internal_above(c, [&](const Result& r) { r2 = r; });
  s.queue.run();

  ASSERT_TRUE(r1.granted());
  ASSERT_TRUE(r2.granted());
  const NodeId m1 = r1.new_node, m2 = r2.new_node;
  // Chain: a -> m2 -> m1 -> c (the second wrapper lands above the first).
  EXPECT_EQ(s.tree.parent(c), m1);
  EXPECT_EQ(s.tree.parent(m1), m2);
  EXPECT_EQ(s.tree.parent(m2), a);
  EXPECT_TRUE(tree::validate(s.tree).ok());
  EXPECT_EQ(ctrl.active_agents(), 0u);
}

TEST(DistributedRaces, AddInternalWhoseSubjectDiesIsMoot) {
  // R (remove c) wins the lock race; Y (add-internal above c) waits at a;
  // when Y finally holds its origin lock, c is gone: Y completes kMoot
  // without consuming a permit.
  Sim s;
  const auto p = make_path(s.tree, 2);  // a, c
  const NodeId c = p[1];
  DistributedController ctrl(s.net, s.tree, Params(20, 10, 64));

  Result rr, ry;
  ctrl.submit_remove(c, [&](const Result& r) { rr = r; });
  // Let the remover lock c and then a before the add-internal arrives
  // (creation + one fixed-delay hop = two events), so the add-internal
  // queues behind it and finds its subject gone on resume.
  s.queue.run(2);
  ctrl.submit_add_internal_above(c, [&](const Result& r) { ry = r; });
  s.queue.run();

  EXPECT_TRUE(rr.granted());
  EXPECT_EQ(ry.outcome, Outcome::kMoot);
  EXPECT_EQ(ctrl.permits_granted(), 1u);  // only the removal consumed one
  EXPECT_EQ(ctrl.active_agents(), 0u);
}

TEST(DistributedRaces, AddLeafUnderDyingParentIsMoot) {
  Sim s;
  const auto p = make_path(s.tree, 2);
  const NodeId b = p[1];
  DistributedController ctrl(s.net, s.tree, Params(20, 10, 64));
  Result rr, rl;
  ctrl.submit_remove(b, [&](const Result& r) { rr = r; });
  ctrl.submit_add_leaf(b, [&](const Result& r) { rl = r; });
  s.queue.run();
  EXPECT_TRUE(rr.granted());
  EXPECT_EQ(rl.outcome, Outcome::kMoot);
  EXPECT_EQ(s.tree.size(), 2u);  // root + a; no orphan leaf appeared
}

TEST(DistributedRaces, DeepStackedWrappers) {
  // Hammer the splice + effective-child machinery: many concurrent
  // wrappers above the same deep node, plus a climbing event through the
  // contested edge, across several waves.
  Sim s;
  const auto p = make_path(s.tree, 6);
  const NodeId deep = p.back();
  DistributedController ctrl(s.net, s.tree, Params(200, 100, 512));
  int granted = 0, answered = 0;
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 4; ++i) {
      ctrl.submit_add_internal_above(deep, [&](const Result& r) {
        ++answered;
        granted += r.granted();
      });
    }
    ctrl.submit_event(deep, [&](const Result& r) {
      ++answered;
      granted += r.granted();
    });
    s.queue.run();
    ASSERT_EQ(ctrl.active_agents(), 0u) << "wave " << wave;
    ASSERT_TRUE(tree::validate(s.tree).ok()) << "wave " << wave;
    ASSERT_EQ(ctrl.domains()->check_invariants(), "") << "wave " << wave;
  }
  EXPECT_EQ(answered, 25);
  EXPECT_EQ(granted, 25);
  EXPECT_EQ(s.tree.depth(deep), 6u + 20u);  // every wrapper above `deep`
}

TEST(DistributedRaces, FloodRacesInFlightGrants) {
  // Exhaust the budget with one burst: grants already past the root finish
  // while the reject flood spreads; nobody hangs and every outcome lands.
  Sim s;
  Rng rng(3);
  workload::build(s.tree, workload::Shape::kCaterpillar, 40, rng);
  const std::uint64_t M = 10;
  DistributedController ctrl(s.net, s.tree, Params(M, 2, 64));
  const auto nodes = s.tree.alive_nodes();
  int granted = 0, rejected = 0;
  for (int i = 0; i < 40; ++i) {
    ctrl.submit_event(nodes[rng.index(nodes.size())], [&](const Result& r) {
      granted += r.granted();
      rejected += r.outcome == Outcome::kRejected;
    });
  }
  s.queue.run();
  EXPECT_EQ(granted + rejected, 40);
  EXPECT_LE(granted, static_cast<int>(M));
  EXPECT_GE(granted, static_cast<int>(M - 2));
  EXPECT_TRUE(ctrl.reject_wave_started());
  EXPECT_EQ(ctrl.active_agents(), 0u);
}

TEST(DistributedRaces, TypedTraceRecordsProtocolEvents) {
  // The Sim fixture installs a typed trace; a run that grants and then
  // floods rejects must leave the matching events in the ring.
  Sim s;
  Rng rng(5);
  workload::build(s.tree, workload::Shape::kRandomAttach, 16, rng);
  DistributedController ctrl(s.net, s.tree, Params(4, 1, 64));
  const auto nodes = s.tree.alive_nodes();
  for (int i = 0; i < 12; ++i) {
    ctrl.submit_event(nodes[rng.index(nodes.size())], [](const Result&) {});
  }
  s.queue.run();

  std::uint64_t grants = 0, rejects = 0, hops = 0;
  for (const auto& e : s.trace.tail_entries(256)) {
    grants += e.event.kind == obs::EventKind::kPermitGranted;
    rejects += e.event.kind == obs::EventKind::kRequestRejected;
    hops += e.event.kind == obs::EventKind::kAgentHop;
  }
  EXPECT_GE(grants, 3u);  // M=4, W=1: at least M-W grants
  EXPECT_GE(rejects, 1u);
  EXPECT_GT(hops, 0u);
  EXPECT_GT(s.trace.recorded(), 0u);
}

}  // namespace
}  // namespace dyncon::core

// Tests for the observability layer: json, metrics registry, typed event
// trace, run report, and the NetStats adapter.

#include <gtest/gtest.h>

#include <sstream>

#include "obs/events.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/net_adapter.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "sim/network.hpp"

namespace dyncon::obs {
namespace {

// ---- json -------------------------------------------------------------------

TEST(Json, DumpParseRoundTrip) {
  json::Value v = json::Value::object();
  v["u"] = std::uint64_t{18446744073709551615ULL};  // needs the exact arm
  v["d"] = 2.5;
  v["s"] = "a \"quoted\" \n line";
  v["b"] = true;
  v["n"] = nullptr;
  json::Array arr;
  arr.emplace_back(std::uint64_t{1});
  arr.emplace_back("two");
  v["arr"] = json::Value(std::move(arr));

  std::ostringstream os;
  v.dump(os);
  json::Value back;
  std::string err;
  ASSERT_TRUE(json::Value::parse(os.str(), back, &err)) << err;
  ASSERT_TRUE(back.is_object());
  EXPECT_EQ(back.find("u")->as_uint(), 18446744073709551615ULL);
  EXPECT_DOUBLE_EQ(back.find("d")->as_double(), 2.5);
  EXPECT_EQ(back.find("s")->as_string(), "a \"quoted\" \n line");
  EXPECT_EQ(back.find("arr")->as_array().size(), 2u);
}

TEST(Json, ParseRejectsGarbage) {
  json::Value out;
  std::string err;
  EXPECT_FALSE(json::Value::parse("{", out, &err));
  EXPECT_FALSE(json::Value::parse("[1,]", out, &err));
  EXPECT_FALSE(json::Value::parse("{\"a\":1} trailing", out, &err));
  EXPECT_FALSE(err.empty());
}

TEST(Json, StringEscapeRoundTrip) {
  // Control characters dump as \u00XX and parse back to the same bytes.
  json::Value v = json::Value::object();
  v["s"] = std::string("tab\t bell\x07 nul-free \x1f end");
  std::ostringstream os;
  v.dump(os);
  EXPECT_NE(os.str().find("\\u0007"), std::string::npos);
  json::Value back;
  std::string err;
  ASSERT_TRUE(json::Value::parse(os.str(), back, &err)) << err;
  EXPECT_EQ(back.find("s")->as_string(), v.find("s")->as_string());

  // \u escapes outside the control range decode to UTF-8.
  json::Value uni;
  ASSERT_TRUE(json::Value::parse("\"\\u0041\\u00e9\\u20ac\"", uni, &err))
      << err;
  EXPECT_EQ(uni.as_string(), "A\xc3\xa9\xe2\x82\xac");  // A, é, €

  // Malformed escapes are rejected, not mangled.
  json::Value bad;
  EXPECT_FALSE(json::Value::parse("\"\\u12\"", bad, &err));
  EXPECT_FALSE(json::Value::parse("\"\\u12zz\"", bad, &err));
  EXPECT_FALSE(json::Value::parse("\"\\q\"", bad, &err));
  EXPECT_FALSE(json::Value::parse("\"dangling\\", bad, &err));
}

TEST(Json, DeepNestingLimit) {
  auto nested = [](int depth) {
    std::string s(static_cast<std::size_t>(depth), '[');
    s += "1";
    s.append(static_cast<std::size_t>(depth), ']');
    return s;
  };
  json::Value out;
  std::string err;
  EXPECT_TRUE(json::Value::parse(nested(60), out, &err)) << err;
  EXPECT_FALSE(json::Value::parse(nested(80), out, &err));
  EXPECT_NE(err.find("nesting too deep"), std::string::npos) << err;
}

TEST(Json, TruncatedInputs) {
  json::Value out;
  std::string err;
  // Every prefix of a valid document must fail cleanly, never crash or
  // accept.  (The empty prefix included.)
  const std::string doc = R"({"a": [1, 2.5, "x\n"], "b": {"c": true}})";
  for (std::size_t n = 0; n < doc.size(); ++n) {
    EXPECT_FALSE(json::Value::parse(doc.substr(0, n), out, &err))
        << "prefix length " << n << " unexpectedly parsed";
  }
  EXPECT_TRUE(json::Value::parse(doc, out, &err)) << err;
}

// ---- registry ---------------------------------------------------------------

TEST(Registry, CounterGaugeHistogramSemantics) {
  Registry reg;
  reg.add("permits.granted");
  reg.add("permits.granted", 4);
  EXPECT_EQ(reg.counter("permits.granted"), 5u);
  EXPECT_EQ(reg.counter("never.touched"), 0u);

  reg.set("net.messages", 100);
  reg.set("net.messages", 42);  // overwrite, not accumulate
  EXPECT_EQ(reg.counter("net.messages"), 42u);

  reg.set_gauge("wall.build", 1.5);
  reg.add_gauge("wall.build", 0.5);
  EXPECT_DOUBLE_EQ(reg.gauge("wall.build"), 2.0);

  reg.observe("net.message_bits", 0);
  reg.observe("net.message_bits", 1);
  reg.observe("net.message_bits", 7, /*weight=*/3);
  const Histogram* h = reg.histogram("net.message_bits");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 5u);
  EXPECT_EQ(h->sum, 22u);
  EXPECT_EQ(h->min, 0u);
  EXPECT_EQ(h->max, 7u);
  EXPECT_EQ(h->buckets[0], 1u);  // the zero
  EXPECT_EQ(h->buckets[1], 1u);  // 1 in [1,2)
  EXPECT_EQ(h->buckets[3], 3u);  // 7 in [4,8), weighted
  EXPECT_DOUBLE_EQ(h->mean(), 22.0 / 5.0);

  reg.clear();
  EXPECT_TRUE(reg.counters().empty());
  EXPECT_TRUE(reg.gauges().empty());
  EXPECT_TRUE(reg.histograms().empty());
}

TEST(Registry, HistogramPercentile) {
  Registry reg;
  const Histogram* empty = reg.histogram("nope");
  EXPECT_EQ(empty, nullptr);

  reg.observe("lat", 0);                  // bucket 0
  reg.observe("lat", 3, /*weight=*/98);   // bucket 2, [2,4)
  reg.observe("lat", 100);                // bucket 7, [64,128)
  const Histogram* h = reg.histogram("lat");
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->count, 100u);
  EXPECT_EQ(h->percentile(0.0), 0u);    // first value is the zero
  EXPECT_EQ(h->percentile(0.50), 3u);   // bucket upper edge (1<<2)-1
  EXPECT_EQ(h->percentile(0.99), 3u);
  EXPECT_EQ(h->percentile(1.0), 100u);  // clamped to observed max
  EXPECT_EQ(h->percentile(7.0), 100u);  // q clamps to [0,1]

  Histogram none;
  EXPECT_EQ(none.percentile(0.5), 0u);  // empty histogram: 0, not UB
}

TEST(Registry, FreeFunctionsNoOpWhenUninstalled) {
  ASSERT_EQ(metrics(), nullptr) << "a registry leaked from another test";
  count("permits.granted");          // must not crash
  gauge("wall.x", 1.0);
  observe("net.message_bits", 8);
  EXPECT_EQ(metrics(), nullptr);
}

TEST(Registry, ScopedInstallRestoresPrevious) {
  Registry outer;
  {
    ScopedMetrics a(outer);
    count("x");
    Registry inner;
    {
      ScopedMetrics b(inner);
      count("x", 10);
    }
    count("x");  // back to outer
  }
  EXPECT_EQ(metrics(), nullptr);
  EXPECT_EQ(outer.counter("x"), 2u);
}

TEST(Registry, ScopeTimerAccumulates) {
  Registry reg;
  ScopedMetrics scope(reg);
  { ScopeTimer t("phase"); }
  { ScopeTimer t("phase"); }
  EXPECT_EQ(reg.counter("wall.phase.calls"), 2u);
  EXPECT_GE(reg.gauge("wall.phase"), 0.0);
}

// ---- typed events -----------------------------------------------------------

TEST(EventTrace, RingWrapsKeepingNewest) {
  EventTrace trace(4);
  trace.enable(true);
  for (std::uint64_t i = 0; i < 10; ++i) {
    trace.record(TraceEvent{EventKind::kAgentHop, i, 1, i, 0});
  }
  EXPECT_EQ(trace.recorded(), 10u);
  EXPECT_EQ(trace.size(), 4u);
  const auto entries = trace.tail_entries(100);
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries.front().event.a, 6u);  // oldest surviving
  EXPECT_EQ(entries.back().event.a, 9u);   // newest
}

TEST(EventTrace, OverwrittenCountsRingEvictions) {
  EventTrace trace(4);
  trace.enable(true);
  for (std::uint64_t i = 0; i < 3; ++i) {
    trace.record(TraceEvent{EventKind::kAgentHop, i, 1, i, 0});
  }
  EXPECT_EQ(trace.overwritten(), 0u);  // under capacity: nothing lost
  for (std::uint64_t i = 3; i < 10; ++i) {
    trace.record(TraceEvent{EventKind::kAgentHop, i, 1, i, 0});
  }
  EXPECT_EQ(trace.recorded(), 10u);
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.overwritten(), 6u);  // recorded - size
  trace.clear();
  EXPECT_EQ(trace.overwritten(), 0u);
}

TEST(EventTrace, DisabledRecordsNothing) {
  EventTrace trace(8);
  trace.record(TraceEvent{EventKind::kWaveStart, 0, 0, 0, 0});
  EXPECT_EQ(trace.recorded(), 0u);
  EXPECT_EQ(trace.size(), 0u);
}

TEST(EventTrace, EmitIsNoOpWithoutInstallAndWorksWithin) {
  ASSERT_EQ(trace(), nullptr);
  emit(TraceEvent{EventKind::kPermitGranted, 1, 2, 3, 4});  // no sink: no-op

  EventTrace ring(16);
  ring.enable(true);
  {
    ScopedTrace scope(ring);
    emit(TraceEvent{EventKind::kPermitGranted, 1, 2, 3, 4});
  }
  EXPECT_EQ(trace(), nullptr);
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.tail_entries(1)[0].event.kind, EventKind::kPermitGranted);
}

TEST(EventTrace, FormatAndJsonl) {
  EventTrace trace(8);
  trace.enable(true);
  trace.record(TraceEvent{EventKind::kText, 3, kNoNode, 0, 0}, "hello");
  trace.record(TraceEvent{EventKind::kPermitGranted, 4, 7, 9, 1});
  const auto lines = trace.tail(8);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "[t=3] hello");  // legacy string-trace format
  EXPECT_NE(lines[1].find("PermitGranted"), std::string::npos);
  EXPECT_NE(lines[1].find("node=7"), std::string::npos);

  std::ostringstream os;
  trace.dump_jsonl(os, 8);
  std::istringstream in(os.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(in, line)) {
    json::Value v;
    std::string err;
    ASSERT_TRUE(json::Value::parse(line, v, &err)) << line << ": " << err;
    ASSERT_TRUE(v.is_object());
    EXPECT_NE(v.find("kind"), nullptr);
    ++n;
  }
  EXPECT_EQ(n, 2u);
}

// ---- flight recorder --------------------------------------------------------

TEST(FlightRecorder, SamplesOnScheduleAndBoundsRing) {
  Registry a, b;
  a.add("reqs", 3);
  a.set_gauge("load", 0.5);
  b.add("reqs", 4);
  b.set_gauge("load", 0.25);

  FlightRecorder fr({"reqs", "load", "missing"}, /*period=*/10,
                    /*capacity=*/2);
  EXPECT_TRUE(fr.due(0));  // first sample is at t=0
  fr.begin_row(0);
  fr.accumulate(a);
  fr.accumulate(b);
  fr.commit_row();
  EXPECT_FALSE(fr.due(9));
  EXPECT_TRUE(fr.due(10));

  ASSERT_EQ(fr.rows().size(), 1u);
  const auto& row = fr.rows().front();
  EXPECT_EQ(row.t, 0u);
  ASSERT_EQ(row.cells.size(), 3u);
  EXPECT_DOUBLE_EQ(row.cells[0], 7.0);   // counter, summed across shards
  EXPECT_DOUBLE_EQ(row.cells[1], 0.75);  // gauge fallback
  EXPECT_DOUBLE_EQ(row.cells[2], 0.0);   // unknown name reads as zero

  // Idle catch-up: a row at t=35 schedules the next sample at 40, not 20.
  fr.begin_row(35);
  fr.accumulate(a);
  fr.commit_row();
  EXPECT_FALSE(fr.due(39));
  EXPECT_TRUE(fr.due(40));

  // Capacity bound evicts oldest rows and counts them.
  fr.begin_row(40);
  fr.commit_row();
  EXPECT_EQ(fr.taken(), 3u);
  EXPECT_EQ(fr.rows().size(), 2u);
  EXPECT_EQ(fr.overwritten(), 1u);
  EXPECT_EQ(fr.rows().front().t, 35u);

  const json::Value doc = fr.to_json();
  EXPECT_EQ(doc.find("period")->as_uint(), 10u);
  EXPECT_EQ(doc.find("taken")->as_uint(), 3u);
  EXPECT_EQ(doc.find("overwritten")->as_uint(), 1u);
  EXPECT_EQ(doc.find("counters")->as_array().size(), 3u);
  const auto& rows = doc.find("rows")->as_array();
  ASSERT_EQ(rows.size(), 2u);
  // Row layout: [t, v0, v1, ...] — one more cell than counter names.
  ASSERT_EQ(rows[0].as_array().size(), 4u);
  EXPECT_EQ(rows[0].as_array()[0].as_uint(), 35u);
}

// ---- run report -------------------------------------------------------------

TEST(RunReport, JsonShapeAndRoundTrip) {
  Registry reg;
  reg.add("permits.granted", 12);
  reg.set_gauge("wall.run", 0.25);
  reg.observe("net.message_bits", 33);

  RunReport report("unit");
  report.set_param("n", json::Value(std::uint64_t{1024}));
  report.set_param("shape", json::Value("path"));
  report.set_wall_time(1.5);

  std::ostringstream os;
  report.write_json(os, &reg);
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::Value::parse(os.str(), v, &err)) << err;

  // Fixed schema: every key present even when empty.
  for (const char* key :
       {"name", "params", "metrics", "histograms", "net_stats",
        "wall_time_sec"}) {
    EXPECT_NE(v.find(key), nullptr) << key;
  }
  EXPECT_EQ(v.find("name")->as_string(), "unit");
  EXPECT_EQ(v.find("params")->find("n")->as_uint(), 1024u);
  const json::Value* counters = v.find("metrics")->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("permits.granted")->as_uint(), 12u);
  EXPECT_NE(v.find("histograms")->find("net.message_bits"), nullptr);
  EXPECT_DOUBLE_EQ(v.find("wall_time_sec")->as_double(), 1.5);

  // Null registry: metrics sections exist but are empty.
  std::ostringstream bare;
  report.write_json(bare, nullptr);
  json::Value v2;
  ASSERT_TRUE(json::Value::parse(bare.str(), v2, &err)) << err;
  EXPECT_TRUE(v2.find("metrics")->find("counters")->as_object().empty());
}

TEST(RunReport, SpansAndTimelineSectionsRoundTrip) {
  RunReport report("unit");
  std::ostringstream bare;
  report.write_json(bare, nullptr);
  json::Value v0;
  std::string err;
  ASSERT_TRUE(json::Value::parse(bare.str(), v0, &err)) << err;
  // Fixed schema: the sections exist (empty objects) even when never set.
  ASSERT_NE(v0.find("spans"), nullptr);
  ASSERT_NE(v0.find("timeline"), nullptr);
  EXPECT_TRUE(v0.find("spans")->as_object().empty());
  EXPECT_TRUE(v0.find("timeline")->as_object().empty());

  // Populate from the real producers and round-trip through text.
  SpanSink sink(8);
  Span s;
  s.trace = 7;
  s.id = sink.open(7);
  s.kind = SpanKind::kRequest;
  s.begin = 10;
  s.end = 25;
  s.label = "permit";
  sink.emit(s);
  FlightRecorder fr({"reqs"}, 4);
  fr.begin_row(0);
  fr.commit_row();
  report.set_spans(sink.to_json());
  report.set_timeline(fr.to_json());

  std::ostringstream os;
  report.write_json(os, nullptr);
  json::Value v;
  ASSERT_TRUE(json::Value::parse(os.str(), v, &err)) << err;
  const json::Value* spans = v.find("spans");
  ASSERT_NE(spans, nullptr);
  EXPECT_EQ(spans->find("recorded")->as_uint(), 1u);
  const auto& events = spans->find("events")->as_array();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].find("trace")->as_uint(), 7u);
  EXPECT_EQ(events[0].find("kind")->as_string(), "request");
  EXPECT_EQ(events[0].find("label")->as_string(), "permit");
  EXPECT_EQ(events[0].find("begin")->as_uint(), 10u);
  EXPECT_EQ(events[0].find("end")->as_uint(), 25u);
  const json::Value* timeline = v.find("timeline");
  ASSERT_NE(timeline, nullptr);
  EXPECT_EQ(timeline->find("period")->as_uint(), 4u);
  EXPECT_EQ(timeline->find("rows")->as_array().size(), 1u);
}

// ---- net adapter ------------------------------------------------------------

TEST(NetAdapter, PublishUsesOverwriteSemantics) {
  sim::NetStats st;
  st.messages = 10;
  st.total_bits = 420;
  st.max_message_bits = 42;
  st.by_kind[0] = 10;
  st.bits_by_kind[0] = 420;
  st.max_bits_by_kind[0] = 42;

  Registry reg;
  publish_net_stats(reg, st);
  publish_net_stats(reg, st);  // cumulative source: must not double-count
  EXPECT_EQ(reg.counter("net.messages"), 10u);
  EXPECT_EQ(reg.counter("net.total_bits"), 420u);

  const json::Value v = net_stats_json(st);
  EXPECT_EQ(v.find("messages")->as_uint(), 10u);
  const json::Value* agent = v.find("per_kind")->find(
      sim::msg_kind_name(static_cast<sim::MsgKind>(0)));
  ASSERT_NE(agent, nullptr);
  EXPECT_EQ(agent->find("count")->as_uint(), 10u);
}

TEST(NetAdapter, NetStatsMergeSums) {
  sim::NetStats a, b;
  a.messages = 3;
  a.total_bits = 30;
  a.max_message_bits = 12;
  a.size_histogram[4] = 3;
  b.messages = 5;
  b.total_bits = 70;
  b.max_message_bits = 20;
  b.size_histogram[5] = 5;
  a.merge(b);
  EXPECT_EQ(a.messages, 8u);
  EXPECT_EQ(a.total_bits, 100u);
  EXPECT_EQ(a.max_message_bits, 20u);  // max, not sum
  EXPECT_EQ(a.size_histogram[4], 3u);
  EXPECT_EQ(a.size_histogram[5], 5u);
}

}  // namespace
}  // namespace dyncon::obs

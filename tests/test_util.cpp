// Unit tests for src/util: integer log math, RNG determinism, intervals,
// summary statistics.

#include <gtest/gtest.h>

#include <set>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/interval.hpp"
#include "util/log2.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace dyncon {
namespace {

TEST(Log2, FloorValues) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(floor_log2(UINT64_MAX), 63u);
}

TEST(Log2, CeilValues) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1 << 20), 20u);
  EXPECT_EQ(ceil_log2((1 << 20) + 1), 21u);
}

TEST(Log2, FloorOfZeroThrows) { EXPECT_THROW(floor_log2(0), InvariantError); }

TEST(Log2, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 5), 0u);
  EXPECT_EQ(ceil_div(1, 5), 1u);
  EXPECT_EQ(ceil_div(5, 5), 1u);
  EXPECT_EQ(ceil_div(6, 5), 2u);
  EXPECT_THROW(ceil_div(1, 0), InvariantError);
}

TEST(Log2, Pow2AndSatMul) {
  EXPECT_EQ(pow2(0), 1u);
  EXPECT_EQ(pow2(40), std::uint64_t{1} << 40);
  EXPECT_THROW(pow2(64), InvariantError);
  EXPECT_EQ(sat_mul(0, UINT64_MAX), 0u);
  EXPECT_EQ(sat_mul(3, 5), 15u);
  EXPECT_EQ(sat_mul(UINT64_MAX, 2), UINT64_MAX);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniform(10, 20);
    EXPECT_GE(x, 10u);
    EXPECT_LE(x, 20u);
  }
  EXPECT_EQ(rng.uniform(5, 5), 5u);
  EXPECT_THROW(rng.uniform(6, 5), ContractError);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ZipfTailBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.zipf_tail(100);
    EXPECT_GE(x, 1u);
    EXPECT_LE(x, 100u);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng child = a.split();
  EXPECT_NE(a.next(), child.next());
}

TEST(Interval, EmptyBasics) {
  Interval iv;
  EXPECT_TRUE(iv.empty());
  EXPECT_EQ(iv.size(), 0u);
  EXPECT_FALSE(iv.contains(1));
}

TEST(Interval, ClosedSemantics) {
  Interval iv(3, 7);
  EXPECT_EQ(iv.size(), 5u);
  EXPECT_TRUE(iv.contains(3));
  EXPECT_TRUE(iv.contains(7));
  EXPECT_FALSE(iv.contains(8));
}

TEST(Interval, TakeLow) {
  Interval iv(1, 10);
  Interval lo = iv.take_low(4);
  EXPECT_EQ(lo, Interval(1, 4));
  EXPECT_EQ(iv, Interval(5, 10));
  EXPECT_THROW(iv.take_low(100), ContractError);
}

TEST(Interval, TakeOneDrains) {
  Interval iv(5, 6);
  EXPECT_EQ(iv.take_one(), 5u);
  EXPECT_EQ(iv.take_one(), 6u);
  EXPECT_TRUE(iv.empty());
  EXPECT_THROW(iv.take_one(), ContractError);
}

TEST(Interval, SplitHalf) {
  Interval iv(1, 8);
  auto [a, b] = iv.split_half();
  EXPECT_EQ(a, Interval(1, 4));
  EXPECT_EQ(b, Interval(5, 8));
  Interval odd(1, 3);
  EXPECT_THROW(odd.split_half(), ContractError);
}

TEST(Interval, Intersection) {
  EXPECT_TRUE(Interval(1, 5).intersects(Interval(5, 9)));
  EXPECT_FALSE(Interval(1, 5).intersects(Interval(6, 9)));
  EXPECT_FALSE(Interval().intersects(Interval(1, 5)));
}

TEST(Stats, SummaryMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
}

TEST(Stats, PercentileInterpolation) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_NEAR(p.at(0.0), 1.0, 1e-9);
  EXPECT_NEAR(p.at(1.0), 100.0, 1e-9);
  EXPECT_NEAR(p.at(0.5), 50.5, 1e-9);
}

TEST(Stats, PercentilesAddAfterQueryResorts) {
  // Regression: add() after at() used to leave the stale sort flag set, so
  // later percentiles were computed over a partially sorted sample.
  Percentiles p;
  for (double v : {5.0, 1.0, 9.0}) p.add(v);
  EXPECT_NEAR(p.at(1.0), 9.0, 1e-9);  // sorts and caches
  p.add(100.0);
  p.add(0.5);
  EXPECT_NEAR(p.at(0.0), 0.5, 1e-9);
  EXPECT_NEAR(p.at(1.0), 100.0, 1e-9);
  EXPECT_NEAR(p.at(0.5), 5.0, 1e-9);
}

TEST(Stats, LogLogSlopeRecoversExponent) {
  std::vector<double> x, y;
  for (double v : {8.0, 16.0, 32.0, 64.0, 128.0}) {
    x.push_back(v);
    y.push_back(3.0 * v * v);  // slope 2 in log-log
  }
  EXPECT_NEAR(loglog_slope(x, y), 2.0, 1e-9);
}

TEST(Stats, LogLogSlopeDegenerate) {
  EXPECT_EQ(loglog_slope({}, {}), 0.0);
  EXPECT_EQ(loglog_slope({1.0}, {2.0}), 0.0);
}

TEST(ParseCount, AcceptsPlainCounts) {
  EXPECT_EQ(util::parse_count("1", 256), 1u);
  EXPECT_EQ(util::parse_count("8", 256), 8u);
  EXPECT_EQ(util::parse_count("256", 256), 256u);
}

TEST(ParseCount, RejectsZeroWithActionableMessage) {
  std::string error;
  EXPECT_EQ(util::parse_count("0", 256, &error), std::nullopt);
  EXPECT_NE(error.find(">= 1"), std::string::npos) << error;
}

TEST(ParseCount, RejectsGarbageAndNegatives) {
  for (const char* bad : {"", "abc", "4x", "-3", "1.5", " 2"}) {
    std::string error;
    EXPECT_EQ(util::parse_count(bad, 256, &error), std::nullopt)
        << "'" << bad << "'";
    EXPECT_FALSE(error.empty()) << "'" << bad << "'";
  }
}

TEST(ParseCount, ClampsAboveMaximumAndSaysSo) {
  std::string error;
  bool clamped = false;
  EXPECT_EQ(util::parse_count("10000", 64, &error, &clamped), 64u);
  EXPECT_TRUE(clamped);
  clamped = true;
  EXPECT_EQ(util::parse_count("64", 64, &error, &clamped), 64u);
  EXPECT_FALSE(clamped) << "the maximum itself is not a clamp";
}

TEST(FlagCount, AbsentFlagUsesFallback) {
  const char* argv[] = {"bin"};
  EXPECT_EQ(util::flag_count(1, const_cast<char**>(argv), "--jobs", 7), 7u);
}

TEST(FlagCount, ParsesBothSpellings) {
  const char* eq[] = {"bin", "--jobs=5"};
  EXPECT_EQ(util::flag_count(2, const_cast<char**>(eq), "--jobs", 1), 5u);
  const char* two[] = {"bin", "--shards", "12"};
  EXPECT_EQ(util::flag_count(3, const_cast<char**>(two), "--shards", 1),
            12u);
}

}  // namespace
}  // namespace dyncon

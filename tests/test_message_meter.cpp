// Tests for the message-metering adapter (§2.2): a network-wide message
// budget enforced through the controller.

#include <gtest/gtest.h>

#include "core/iterated_controller.hpp"
#include "core/message_meter.hpp"
#include "core/trivial_controller.hpp"
#include "util/rng.hpp"
#include "workload/shapes.hpp"

namespace dyncon::core {
namespace {

using tree::DynamicTree;

struct Fixture {
  sim::EventQueue queue;
  sim::Network net;
  DynamicTree tree;

  Fixture() : net(queue, sim::make_delay(sim::DelayKind::kFixed, 1)) {}
};

TEST(MessageMeter, EnforcesGlobalBudgetExactly) {
  Fixture f;
  Rng rng(1);
  workload::build(f.tree, workload::Shape::kRandomAttach, 24, rng);
  const std::uint64_t M = 50;
  IteratedController ctrl(f.tree, M, /*W=*/0, /*U=*/64);  // exact budget
  MessageMeter meter(ctrl, f.net);

  int delivered = 0;
  const auto nodes = f.tree.alive_nodes();
  for (int i = 0; i < 200; ++i) {
    const NodeId from = nodes[rng.index(nodes.size())];
    const NodeId to = nodes[rng.index(nodes.size())];
    meter.send(from, to, 32, [&] { ++delivered; });
  }
  f.queue.run();
  EXPECT_EQ(meter.sent(), M);
  EXPECT_EQ(meter.suppressed(), 200 - M);
  EXPECT_EQ(delivered, static_cast<int>(M));
}

TEST(MessageMeter, WasteBandWithPositiveW) {
  Fixture f;
  Rng rng(2);
  workload::build(f.tree, workload::Shape::kCaterpillar, 32, rng);
  const std::uint64_t M = 60, W = 15;
  IteratedController ctrl(f.tree, M, W, /*U=*/64);
  MessageMeter meter(ctrl, f.net);
  const auto nodes = f.tree.alive_nodes();
  for (int i = 0; i < 300; ++i) {
    meter.send(nodes[rng.index(nodes.size())], f.tree.root(), 8, [] {});
  }
  EXPECT_LE(meter.sent(), M);
  EXPECT_GE(meter.sent(), M - W);  // liveness carries over to the meter
}

TEST(MessageMeter, AmortizesBetterThanCentralBudgetServer) {
  // A central budget server costs one root round trip per metered message;
  // the controller caches permits near chatty senders.
  Fixture f;
  Rng rng(3);
  workload::build(f.tree, workload::Shape::kPath, 257, rng);
  const NodeId chatty = f.tree.alive_nodes().back();
  const std::uint64_t M = 512;

  IteratedController::Options opts;
  opts.track_domains = false;
  // Generous waste budget (W = 4U) makes phi = 4: each static package the
  // controller parks at the chatty sender serves four messages.
  IteratedController smart(f.tree, M, 4 * 512, /*U=*/512, opts);
  TrivialController naive(f.tree, M);
  MessageMeter smart_meter(smart, f.net);
  MessageMeter naive_meter(naive, f.net);
  for (int i = 0; i < 256; ++i) {
    ASSERT_TRUE(smart_meter.send(chatty, f.tree.root(), 8, [] {}));
    ASSERT_TRUE(naive_meter.send(chatty, f.tree.root(), 8, [] {}));
  }
  EXPECT_LT(smart_meter.metering_cost(), naive_meter.metering_cost() / 4);
}

TEST(MessageMeter, SuppressedMessagesNeverTravel) {
  Fixture f;
  IteratedController ctrl(f.tree, 1, 0, 2);
  MessageMeter meter(ctrl, f.net);
  int delivered = 0;
  ASSERT_TRUE(meter.send(f.tree.root(), f.tree.root(), 8,
                         [&] { ++delivered; }));
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(meter.send(f.tree.root(), f.tree.root(), 8,
                            [&] { ++delivered; }));
  }
  f.queue.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(f.net.stats().kind(sim::MsgKind::kApp), 1u);
}

}  // namespace
}  // namespace dyncon::core

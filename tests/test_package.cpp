// Unit tests for the package table: creation, moves, splits, consumption,
// carry semantics, move-complexity accounting, serial payloads.

#include <gtest/gtest.h>

#include "core/package.hpp"

namespace dyncon::core {
namespace {

TEST(PackageTable, CreateAndQuery) {
  PackageTable t;
  const PackageId m = t.create_mobile(3, 2, 8);
  const PackageId s = t.create_static(3, 2);
  const PackageId r = t.create_reject(4);
  EXPECT_TRUE(t.alive(m));
  EXPECT_EQ(t.get(m).level, 2u);
  EXPECT_EQ(t.at(3).size(), 2u);
  EXPECT_TRUE(t.has_reject(4));
  EXPECT_FALSE(t.has_reject(3));
  EXPECT_EQ(t.find_static(3), s);
  EXPECT_EQ(t.find_mobile_of_level(3, 2), m);
  EXPECT_EQ(t.find_mobile_of_level(3, 1), kNoPackage);
  EXPECT_EQ(t.get(r).kind, PackageKind::kReject);
}

TEST(PackageTable, MoveChargesHops) {
  PackageTable t;
  const PackageId m = t.create_mobile(1, 0, 1);
  t.move(m, 9, 5);
  EXPECT_EQ(t.get(m).host, 9u);
  EXPECT_EQ(t.move_complexity(), 5u);
  EXPECT_TRUE(t.at(1).empty());
  EXPECT_EQ(t.at(9).front(), m);
}

TEST(PackageTable, MoveAllIsOneMessage) {
  PackageTable t;
  t.create_mobile(2, 0, 1);
  t.create_static(2, 1);
  t.create_reject(2);
  EXPECT_EQ(t.move_all(2, 1), 3u);
  EXPECT_EQ(t.move_complexity(), 1u);
  EXPECT_EQ(t.at(1).size(), 3u);
  EXPECT_EQ(t.move_all(5, 1), 0u);  // nothing there
  EXPECT_EQ(t.move_complexity(), 1u);
}

TEST(PackageTable, SplitHalvesSizeAndLevel) {
  PackageTable t;
  const PackageId m = t.create_mobile(7, 3, 16);
  auto [a, b] = t.split_mobile(m);
  EXPECT_FALSE(t.alive(m));
  EXPECT_EQ(t.get(a).level, 2u);
  EXPECT_EQ(t.get(b).level, 2u);
  EXPECT_EQ(t.get(a).size + t.get(b).size, 16u);
  EXPECT_EQ(t.get(a).host, 7u);
}

TEST(PackageTable, SplitPropagatesSerials) {
  PackageTable t;
  const PackageId m = t.create_mobile(7, 1, 4, Interval(10, 13));
  auto [a, b] = t.split_mobile(m);
  EXPECT_EQ(t.get(a).serials, Interval(10, 11));
  EXPECT_EQ(t.get(b).serials, Interval(12, 13));
}

TEST(PackageTable, SplitRejectsLevelZeroAndNonMobile) {
  PackageTable t;
  const PackageId z = t.create_mobile(1, 0, 1);
  EXPECT_THROW(t.split_mobile(z), ContractError);
  const PackageId s = t.create_static(1, 1);
  EXPECT_THROW(t.split_mobile(s), ContractError);
}

TEST(PackageTable, MakeStaticAndConsume) {
  PackageTable t;
  const PackageId m = t.create_mobile(5, 0, 2, Interval(40, 41));
  t.make_static(m);
  EXPECT_EQ(t.get(m).kind, PackageKind::kStatic);
  EXPECT_EQ(t.consume_one(m), std::make_optional<std::uint64_t>(40));
  EXPECT_TRUE(t.alive(m));
  EXPECT_EQ(t.consume_one(m), std::make_optional<std::uint64_t>(41));
  EXPECT_FALSE(t.alive(m));  // canceled at size 0
  EXPECT_EQ(t.find_static(5), kNoPackage);
}

TEST(PackageTable, ConsumeWithoutSerials) {
  PackageTable t;
  const PackageId s = t.create_static(5, 3);
  EXPECT_EQ(t.consume_one(s), std::nullopt);
  EXPECT_EQ(t.get(s).size, 2u);
}

TEST(PackageTable, PickUpAndPutDown) {
  PackageTable t;
  const PackageId m = t.create_mobile(5, 1, 2);
  t.pick_up(m);
  EXPECT_TRUE(t.carried(m));
  EXPECT_TRUE(t.at(5).empty());
  EXPECT_EQ(t.find_mobile_of_level(5, 1), kNoPackage);
  t.put_down(m, 8);
  EXPECT_FALSE(t.carried(m));
  EXPECT_EQ(t.find_mobile_of_level(8, 1), m);
  EXPECT_EQ(t.move_complexity(), 0u);  // carried inside an agent: free
}

TEST(PackageTable, PermitAccounting) {
  PackageTable t;
  t.create_mobile(1, 2, 4);
  t.create_static(2, 3);
  t.create_reject(3);
  EXPECT_EQ(t.permits_in_packages(), 7u);
  EXPECT_EQ(t.all_alive().size(), 3u);
}

TEST(PackageTable, CancelRemovesFromIndex) {
  PackageTable t;
  const PackageId m = t.create_mobile(1, 0, 1);
  t.cancel(m);
  EXPECT_FALSE(t.alive(m));
  EXPECT_TRUE(t.at(1).empty());
  EXPECT_THROW(t.get(m), ContractError);
}

TEST(PackageTable, SerialSizeMismatchRejected) {
  PackageTable t;
  EXPECT_THROW(t.create_mobile(1, 1, 2, Interval(1, 5)), ContractError);
  EXPECT_THROW(t.create_static(1, 2, Interval(1, 5)), ContractError);
}

}  // namespace
}  // namespace dyncon::core

// Tests for the distributed compact-routing scheme: stretch-1 routes under
// asynchronous churn with all control traffic on the wire.

#include <gtest/gtest.h>

#include "apps/distributed_tree_routing.hpp"
#include "tree/validate.hpp"
#include "util/rng.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

namespace dyncon::apps {
namespace {

using core::RequestSpec;
using core::Result;
using tree::DynamicTree;

struct Sim {
  sim::EventQueue queue;
  sim::Network net;
  DynamicTree tree;
  explicit Sim(sim::DelayKind kind = sim::DelayKind::kFixed,
               std::uint64_t seed = 1)
      : net(queue, sim::make_delay(kind, seed)) {}
};

std::uint64_t tree_distance(const DynamicTree& t, NodeId u, NodeId v) {
  std::uint64_t du = t.depth(u), dv = t.depth(v);
  NodeId a = u, b = v;
  while (du > dv) {
    a = t.parent(a);
    --du;
  }
  while (dv > du) {
    b = t.parent(b);
    --dv;
  }
  std::uint64_t d = (t.depth(u) - du) + (t.depth(v) - dv);
  while (a != b) {
    a = t.parent(a);
    b = t.parent(b);
    d += 2;
  }
  return d;
}

void audit(const DynamicTree& t, const DistributedTreeRouting& router,
           Rng& rng, int samples) {
  const auto nodes = t.alive_nodes();
  if (nodes.size() < 2) return;
  for (int i = 0; i < samples; ++i) {
    const NodeId u = nodes[rng.index(nodes.size())];
    const NodeId v = nodes[rng.index(nodes.size())];
    if (u == v) continue;
    const auto hops = router.route(u, v);
    ASSERT_EQ(hops.back(), v);
    ASSERT_EQ(hops.size(), tree_distance(t, u, v)) << u << "->" << v;
  }
}

TEST(DistRouting, StaticRoutesCorrect) {
  Sim s;
  Rng rng(1);
  workload::build(s.tree, workload::Shape::kRandomAttach, 50, rng);
  DistributedTreeRouting router(s.net, s.tree);
  audit(s.tree, router, rng, 200);
}

TEST(DistRouting, SerializedChurnStaysStretchOne) {
  Sim s;
  Rng rng(2);
  workload::build(s.tree, workload::Shape::kRandomAttach, 32, rng);
  DistributedTreeRouting router(s.net, s.tree);
  workload::ChurnGenerator churn(workload::ChurnModel::kInternalChurn,
                                 Rng(3));
  for (int i = 0; i < 250; ++i) {
    if (s.tree.size() < 4) break;
    const auto spec = churn.next(s.tree);
    switch (spec.type) {
      case RequestSpec::Type::kAddLeaf:
        router.submit_add_leaf(spec.subject, [](const Result&) {});
        break;
      case RequestSpec::Type::kAddInternal:
        router.submit_add_internal_above(spec.subject, [](const Result&) {});
        break;
      case RequestSpec::Type::kRemove:
        router.submit_remove(spec.subject, [](const Result&) {});
        break;
      default:
        break;
    }
    s.queue.run();
    if (i % 25 == 0) audit(s.tree, router, rng, 40);
  }
  audit(s.tree, router, rng, 100);
}

TEST(DistRouting, ConcurrentBurstsStayCorrectAtQuiescence) {
  for (auto kind : {sim::DelayKind::kUniform, sim::DelayKind::kReorder}) {
    Sim s(kind, 37);
    Rng rng(5);
    workload::build(s.tree, workload::Shape::kRandomAttach, 40, rng);
    DistributedTreeRouting router(s.net, s.tree);
    workload::ChurnGenerator churn(workload::ChurnModel::kBirthDeath,
                                   Rng(7));
    for (int burst = 0; burst < 30; ++burst) {
      for (int i = 0; i < 4; ++i) {
        const auto spec = churn.next(s.tree);
        if (spec.type == RequestSpec::Type::kAddLeaf) {
          router.submit_add_leaf(spec.subject, [](const Result&) {});
        } else if (spec.type == RequestSpec::Type::kRemove) {
          router.submit_remove(spec.subject, [](const Result&) {});
        }
      }
      s.queue.run();
      ASSERT_TRUE(tree::validate(s.tree).ok());
      audit(s.tree, router, rng, 20);
    }
  }
}

TEST(DistRouting, ShrinkRelabelsAndBitsStayTight) {
  Sim s;
  Rng rng(9);
  workload::build(s.tree, workload::Shape::kRandomAttach, 400, rng);
  DistributedTreeRouting router(s.net, s.tree);
  workload::ChurnGenerator churn(workload::ChurnModel::kShrink, Rng(11));
  while (s.tree.size() > 16) {
    router.submit_remove(churn.next(s.tree).subject, [](const Result&) {});
    s.queue.run();
  }
  EXPECT_GT(router.relabels(), 1u);
  EXPECT_LE(router.label_bits(), ceil_log2(s.tree.size()) + 10);
  audit(s.tree, router, rng, 100);
}

}  // namespace
}  // namespace dyncon::apps

// Tests for the name-assignment protocol (§5.2, Theorem 5.2): identities
// stay unique and within [1, 4n] at all times, across all churn models.

#include <gtest/gtest.h>

#include "apps/name_assignment.hpp"
#include "util/rng.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

namespace dyncon::apps {
namespace {

using tree::DynamicTree;
using workload::ChurnGenerator;
using workload::ChurnModel;

void drive_and_check(ChurnModel model, std::uint64_t n0, int steps,
                     std::uint64_t seed) {
  Rng rng(seed);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, n0, rng);
  NameAssignment names(t);
  ChurnGenerator churn(model, Rng(seed + 1));
  for (int i = 0; i < steps; ++i) {
    if (t.size() < 4) break;
    const auto spec = churn.next(t);
    core::Result r;
    switch (spec.type) {
      case core::RequestSpec::Type::kAddLeaf:
        r = names.request_add_leaf(spec.subject);
        break;
      case core::RequestSpec::Type::kAddInternal:
        r = names.request_add_internal_above(spec.subject);
        break;
      case core::RequestSpec::Type::kRemove:
        r = names.request_remove(spec.subject);
        break;
      default:
        continue;
    }
    ASSERT_TRUE(r.granted());
    ASSERT_TRUE(names.ids_unique())
        << workload::churn_name(model) << " step " << i;
    EXPECT_LE(names.max_id(), 4 * t.size())
        << workload::churn_name(model) << " step " << i;
  }
}

TEST(NameAssignment, InitialIdsAreDenseAndUnique) {
  Rng rng(1);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 50, rng);
  NameAssignment names(t);
  EXPECT_TRUE(names.ids_unique());
  EXPECT_LE(names.max_id(), 50u);  // [1, N_1] after the initial DFS
  for (NodeId v : t.alive_nodes()) {
    EXPECT_GE(names.id_of(v), 1u);
  }
}

TEST(NameAssignment, GrowOnly) {
  drive_and_check(ChurnModel::kGrowOnly, 16, 400, 2);
}

TEST(NameAssignment, BirthDeath) {
  drive_and_check(ChurnModel::kBirthDeath, 32, 400, 3);
}

TEST(NameAssignment, InternalChurn) {
  drive_and_check(ChurnModel::kInternalChurn, 32, 400, 4);
}

TEST(NameAssignment, Shrink) {
  drive_and_check(ChurnModel::kShrink, 250, 230, 5);
}

TEST(NameAssignment, NewNodesGetSerialNames) {
  Rng rng(6);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 20, rng);
  NameAssignment names(t);
  const auto r = names.request_add_leaf(t.root());
  ASSERT_TRUE(r.granted());
  // The new identity comes from the serial range (N_i, 3N_i/2].
  EXPECT_GT(names.id_of(r.new_node), 20u);
  EXPECT_LE(names.id_of(r.new_node), 30u);
}

TEST(NameAssignment, IterationRelabelsCompactly) {
  Rng rng(7);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 16, rng);
  NameAssignment names(t);
  // Push enough churn for several iterations.
  for (int i = 0; i < 200; ++i) {
    const auto nodes = t.alive_nodes();
    ASSERT_TRUE(
        names.request_add_leaf(nodes[rng.index(nodes.size())]).granted());
  }
  EXPECT_GE(names.iterations(), 3u);
  EXPECT_LE(names.max_id(), 4 * t.size());
}

TEST(NameAssignment, IdOfDeadNodeThrows) {
  Rng rng(8);
  DynamicTree t;
  workload::build(t, workload::Shape::kPath, 5, rng);
  NameAssignment names(t);
  const NodeId leaf = t.alive_nodes().back();
  ASSERT_TRUE(names.request_remove(leaf).granted());
  EXPECT_THROW(names.id_of(leaf), ContractError);
}

}  // namespace
}  // namespace dyncon::apps

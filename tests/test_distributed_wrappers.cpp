// Unit tests for the distributed wrappers: Thm 4.7 (iterated), Obs 2.1
// (terminating) and Thm 4.9 / Appendix A (adaptive, unknown U).

#include <gtest/gtest.h>

#include <vector>

#include "core/distributed_adaptive.hpp"
#include "core/distributed_iterated.hpp"
#include "tree/validate.hpp"
#include "util/rng.hpp"
#include "workload/shapes.hpp"

namespace dyncon::core {
namespace {

using tree::DynamicTree;

struct Sim {
  sim::EventQueue queue;
  sim::Network net;
  DynamicTree tree;

  explicit Sim(sim::DelayKind kind = sim::DelayKind::kFixed,
               std::uint64_t seed = 1)
      : net(queue, sim::make_delay(kind, seed)) {}
};

/// Submit one request and run to completion.
template <typename Ctrl>
Result sync_submit(Sim& s, Ctrl& ctrl, const RequestSpec& spec) {
  Result out;
  bool fired = false;
  ctrl.submit(spec, [&](const Result& r) {
    out = r;
    fired = true;
  });
  while (!fired && !s.queue.empty()) s.queue.step();
  EXPECT_TRUE(fired);
  return out;
}

TEST(DistIterated, GrantsUpToMThenRejects) {
  Rng rng(1);
  Sim s;
  workload::build(s.tree, workload::Shape::kRandomAttach, 16, rng);
  const std::uint64_t M = 30;
  DistributedIterated ctrl(s.net, s.tree, M, /*W=*/1, /*U=*/64);
  const auto nodes = s.tree.alive_nodes();
  std::uint64_t granted = 0, rejected = 0;
  for (std::uint64_t i = 0; i < 3 * M; ++i) {
    const auto o =
        sync_submit(s, ctrl,
                    RequestSpec{RequestSpec::Type::kEvent,
                                nodes[i % nodes.size()]})
            .outcome;
    granted += o == Outcome::kGranted;
    rejected += o == Outcome::kRejected;
  }
  EXPECT_GE(granted, M - 1);
  EXPECT_LE(granted, M);
  EXPECT_EQ(granted + rejected, 3 * M);
  // (On shallow trees every creation level is 0, nothing strands, and a
  // single iteration can grant all of M; iteration-count behaviour is
  // covered by the deep-path centralized test.)
}

TEST(DistIterated, WZeroExactGrantCount) {
  Rng rng(2);
  Sim s;
  workload::build(s.tree, workload::Shape::kPath, 10, rng);
  const std::uint64_t M = 17;
  DistributedIterated ctrl(s.net, s.tree, M, /*W=*/0, /*U=*/32);
  const auto nodes = s.tree.alive_nodes();
  std::uint64_t granted = 0;
  for (std::uint64_t i = 0; i < 4 * M; ++i) {
    granted += sync_submit(s, ctrl,
                           RequestSpec{RequestSpec::Type::kEvent,
                                       nodes[i % nodes.size()]})
                   .granted();
  }
  EXPECT_EQ(granted, M);
}

TEST(DistIterated, ConcurrentRequestsAcrossRotation) {
  Rng rng(3);
  Sim s(sim::DelayKind::kUniform, 17);
  workload::build(s.tree, workload::Shape::kRandomAttach, 24, rng);
  const std::uint64_t M = 64;
  DistributedIterated ctrl(s.net, s.tree, M, /*W=*/1, /*U=*/256);
  const auto nodes = s.tree.alive_nodes();
  int answered = 0, granted = 0;
  for (int i = 0; i < 200; ++i) {
    ctrl.submit_event(nodes[rng.index(nodes.size())], [&](const Result& r) {
      ++answered;
      granted += r.granted();
    });
  }
  s.queue.run();
  EXPECT_EQ(answered, 200);
  EXPECT_GE(granted, static_cast<int>(M - 1));
  EXPECT_LE(granted, static_cast<int>(M));
}

TEST(DistTerminating, NeverRejectsTerminatesInBand) {
  Rng rng(4);
  Sim s;
  workload::build(s.tree, workload::Shape::kRandomAttach, 12, rng);
  const std::uint64_t M = 24, W = 6;
  DistributedTerminating ctrl(s.net, s.tree, M, W, /*U=*/64);
  const auto nodes = s.tree.alive_nodes();
  std::uint64_t granted = 0;
  for (std::uint64_t i = 0; i < 4 * M; ++i) {
    const auto o = sync_submit(s, ctrl,
                               RequestSpec{RequestSpec::Type::kEvent,
                                           nodes[i % nodes.size()]})
                       .outcome;
    EXPECT_NE(o, Outcome::kRejected);
    granted += o == Outcome::kGranted;
  }
  EXPECT_TRUE(ctrl.terminated());
  EXPECT_GE(granted, M - W);
  EXPECT_LE(granted, M);
}

TEST(DistTerminating, ExternalTerminate) {
  Sim s;
  DistributedTerminating ctrl(s.net, s.tree, 100, 50, 16);
  ASSERT_TRUE(
      sync_submit(s, ctrl, RequestSpec{RequestSpec::Type::kEvent, 0})
          .granted());
  bool done = false;
  ctrl.terminate([&] { done = true; });
  s.queue.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(ctrl.terminated());
  EXPECT_EQ(
      sync_submit(s, ctrl, RequestSpec{RequestSpec::Type::kEvent, 0}).outcome,
      Outcome::kTerminated);
}

TEST(DistAdaptive, GrowthAcrossIterations) {
  Rng rng(5);
  Sim s;
  workload::build(s.tree, workload::Shape::kRandomAttach, 8, rng);
  DistributedAdaptive ctrl(s.net, s.tree, /*M=*/300, /*W=*/1);
  std::uint64_t granted = 0;
  for (int i = 0; i < 200; ++i) {
    const auto nodes = s.tree.alive_nodes();
    granted += sync_submit(s, ctrl,
                           RequestSpec{RequestSpec::Type::kAddLeaf,
                                       nodes[rng.index(nodes.size())]})
                   .granted();
  }
  EXPECT_EQ(granted, 200u);
  EXPECT_EQ(s.tree.size(), 208u);
  EXPECT_GE(ctrl.iterations(), 2u);
  EXPECT_TRUE(tree::validate(s.tree).ok());
}

TEST(DistAdaptive, SafetyAndRejectAfterExhaustion) {
  Rng rng(6);
  Sim s;
  workload::build(s.tree, workload::Shape::kRandomAttach, 10, rng);
  const std::uint64_t M = 40;
  DistributedAdaptive ctrl(s.net, s.tree, M, /*W=*/4);
  std::uint64_t granted = 0, rejected = 0;
  for (std::uint64_t i = 0; i < 4 * M; ++i) {
    const auto nodes = s.tree.alive_nodes();
    const NodeId u = nodes[rng.index(nodes.size())];
    const auto o =
        sync_submit(s, ctrl, RequestSpec{RequestSpec::Type::kAddLeaf, u})
            .outcome;
    granted += o == Outcome::kGranted;
    rejected += o == Outcome::kRejected;
  }
  EXPECT_LE(granted, M);
  EXPECT_GE(granted, M - 4);
  EXPECT_GT(rejected, 0u);
  EXPECT_TRUE(ctrl.done());
}

TEST(DistAdaptive, MixedChurnConcurrent) {
  Rng rng(7);
  Sim s(sim::DelayKind::kUniform, 23);
  workload::build(s.tree, workload::Shape::kCaterpillar, 30, rng);
  DistributedAdaptive ctrl(s.net, s.tree, /*M=*/500, /*W=*/8);
  int answered = 0;
  for (int burst = 0; burst < 30; ++burst) {
    for (int i = 0; i < 6; ++i) {
      const auto nodes = s.tree.alive_nodes();
      const NodeId u = nodes[rng.index(nodes.size())];
      RequestSpec spec;
      switch (rng.uniform(0, 2)) {
        case 0:
          spec = RequestSpec{RequestSpec::Type::kAddLeaf, u};
          break;
        case 1:
          spec = u != s.tree.root()
                     ? RequestSpec{RequestSpec::Type::kRemove, u}
                     : RequestSpec{RequestSpec::Type::kAddLeaf, u};
          break;
        default:
          spec = RequestSpec{RequestSpec::Type::kEvent, u};
      }
      ctrl.submit(spec, [&](const Result&) { ++answered; });
    }
    s.queue.run();
    ASSERT_TRUE(tree::validate(s.tree).ok()) << "burst " << burst;
  }
  EXPECT_EQ(answered, 180);
}

}  // namespace
}  // namespace dyncon::core

// Unit tests for the unknown-U controller of Theorem 3.5 (centralized).

#include <gtest/gtest.h>

#include <set>

#include "core/adaptive_controller.hpp"
#include "tree/validate.hpp"
#include "util/rng.hpp"
#include "workload/churn.hpp"
#include "workload/scenario.hpp"
#include "workload/shapes.hpp"

namespace dyncon::core {
namespace {

using tree::DynamicTree;

TEST(Adaptive, GrantsAndRotatesUnderGrowth) {
  Rng rng(7);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 8, rng);
  AdaptiveController ctrl(t, /*M=*/500, /*W=*/1);
  std::uint64_t granted = 0;
  for (int i = 0; i < 300; ++i) {
    const auto nodes = t.alive_nodes();
    granted +=
        ctrl.request_add_leaf(nodes[rng.index(nodes.size())]).granted();
  }
  EXPECT_EQ(granted, 300u);
  // 8 -> 308 nodes with iterations rotating every ~N_i/2 changes: several
  // rotations must have happened.
  EXPECT_GE(ctrl.iterations(), 3u);
  EXPECT_TRUE(tree::validate(t).ok());
}

TEST(Adaptive, SafetyAcrossIterations) {
  Rng rng(8);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 16, rng);
  const std::uint64_t M = 60;
  AdaptiveController ctrl(t, M, /*W=*/4);
  workload::ChurnGenerator churn(workload::ChurnModel::kBirthDeath, Rng(9));
  const auto stats =
      workload::run_churn(ctrl, t, churn, 5 * M, /*event_fraction=*/0.3, rng);
  EXPECT_LE(stats.granted, M);
  EXPECT_GE(stats.granted, M - 4);
  EXPECT_GT(stats.rejected, 0u);
}

TEST(Adaptive, HandlesShrinkingNetwork) {
  Rng rng(10);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 200, rng);
  AdaptiveController ctrl(t, /*M=*/1000, /*W=*/1);
  workload::ChurnGenerator churn(workload::ChurnModel::kShrink, Rng(11));
  std::uint64_t removed = 0;
  while (t.size() > 5) {
    const auto spec = churn.next(t);
    removed += ctrl.request_remove(spec.subject).granted();
    ASSERT_TRUE(tree::validate(t).ok());
  }
  EXPECT_EQ(removed, 195u);
  EXPECT_GE(ctrl.iterations(), 2u);
}

TEST(Adaptive, InternalChurnStaysCorrect) {
  Rng rng(12);
  DynamicTree t;
  workload::build(t, workload::Shape::kCaterpillar, 40, rng);
  AdaptiveController ctrl(t, /*M=*/400, /*W=*/8);
  workload::ChurnGenerator churn(workload::ChurnModel::kInternalChurn,
                                 Rng(13));
  const auto stats = workload::run_churn(ctrl, t, churn, 400, 0.1, rng);
  EXPECT_LE(stats.granted, 400u);
  EXPECT_TRUE(tree::validate(t).ok());
}

TEST(Adaptive, SizeDoublingPolicy) {
  Rng rng(14);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 8, rng);
  AdaptiveController::Options opts;
  opts.policy = AdaptiveController::Policy::kSizeDoubling;
  AdaptiveController ctrl(t, /*M=*/600, /*W=*/1, opts);
  std::uint64_t granted = 0;
  for (int i = 0; i < 500; ++i) {
    const auto nodes = t.alive_nodes();
    granted +=
        ctrl.request_add_leaf(nodes[rng.index(nodes.size())]).granted();
  }
  EXPECT_EQ(granted, 500u);
  // Size went 8 -> 508: ~6 doublings.
  EXPECT_GE(ctrl.iterations(), 3u);
  EXPECT_LE(ctrl.iterations(), 12u);
}

TEST(Adaptive, RejectsEverythingAfterExhaustion) {
  DynamicTree t;
  AdaptiveController ctrl(t, /*M=*/3, /*W=*/1);
  std::uint64_t granted = 0;
  for (int i = 0; i < 10; ++i) {
    granted += ctrl.request_add_leaf(t.root()).granted();
  }
  EXPECT_LE(granted, 3u);
  EXPECT_TRUE(ctrl.done());
  EXPECT_EQ(ctrl.request_event(t.root()).outcome, Outcome::kRejected);
  EXPECT_GT(ctrl.rejects_delivered(), 0u);
}

}  // namespace
}  // namespace dyncon::core

// Unit tests for the distributed (M,W)-controller of §4: agent walks,
// locking, concurrency, the reject flood, graceful deletions, and the
// reduction to the centralized controller (Lemma 4.5).

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/centralized_controller.hpp"
#include "core/distributed_controller.hpp"
#include "tree/validate.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"
#include "workload/shapes.hpp"

namespace dyncon::core {
namespace {

using tree::DynamicTree;

struct Sim {
  sim::EventQueue queue;
  sim::Network net;
  DynamicTree tree;

  explicit Sim(sim::DelayKind kind = sim::DelayKind::kFixed,
               std::uint64_t seed = 1)
      : net(queue, sim::make_delay(kind, seed)) {}
};

TEST(Distributed, GrantsSingleRequest) {
  Sim s;
  DistributedController ctrl(s.net, s.tree, Params(10, 5, 16));
  Result out;
  ctrl.submit_event(s.tree.root(), [&](const Result& r) { out = r; });
  s.queue.run();
  EXPECT_TRUE(out.granted());
  EXPECT_EQ(ctrl.permits_granted(), 1u);
  EXPECT_EQ(ctrl.active_agents(), 0u);
}

TEST(Distributed, SyncFacadeMatchesIControllerContract) {
  Rng rng(1);
  Sim s;
  workload::build(s.tree, workload::Shape::kRandomAttach, 16, rng);
  DistributedController ctrl(s.net, s.tree, Params(100, 50, 128));
  DistributedSyncFacade facade(s.queue, ctrl);
  const Result leaf = facade.request_add_leaf(s.tree.root());
  ASSERT_TRUE(leaf.granted());
  EXPECT_TRUE(s.tree.alive(leaf.new_node));
  const Result mid = facade.request_add_internal_above(leaf.new_node);
  ASSERT_TRUE(mid.granted());
  EXPECT_TRUE(facade.request_remove(mid.new_node).granted());
  EXPECT_TRUE(facade.request_remove(leaf.new_node).granted());
  EXPECT_TRUE(tree::validate(s.tree).ok());
  EXPECT_GT(facade.cost(), 0u);
}

TEST(Distributed, SafetyUnderSerializedFlood) {
  Rng rng(2);
  Sim s;
  workload::build(s.tree, workload::Shape::kRandomAttach, 24, rng);
  const std::uint64_t M = 40;
  DistributedController ctrl(s.net, s.tree, Params(M, 10, 64));
  DistributedSyncFacade facade(s.queue, ctrl);
  const auto nodes = s.tree.alive_nodes();
  std::uint64_t granted = 0, rejected = 0;
  for (std::uint64_t i = 0; i < 4 * M; ++i) {
    const auto o = facade.request_event(nodes[i % nodes.size()]).outcome;
    granted += o == Outcome::kGranted;
    rejected += o == Outcome::kRejected;
  }
  EXPECT_LE(granted, M);
  EXPECT_GE(granted, M - 10);  // liveness with W = 10
  EXPECT_GT(rejected, 0u);
  EXPECT_TRUE(ctrl.reject_wave_started());
}

TEST(Distributed, ConcurrentBurstAllAnswered) {
  Rng rng(3);
  Sim s(sim::DelayKind::kUniform, 99);
  workload::build(s.tree, workload::Shape::kRandomAttach, 32, rng);
  const std::uint64_t M = 200;
  DistributedController ctrl(s.net, s.tree, Params(M, 100, 512));
  const auto nodes = s.tree.alive_nodes();
  int answered = 0, granted = 0;
  // 64 concurrent requests: agents must queue on locks, not deadlock.
  for (int i = 0; i < 64; ++i) {
    ctrl.submit_event(nodes[rng.index(nodes.size())], [&](const Result& r) {
      ++answered;
      granted += r.granted();
    });
  }
  s.queue.run();
  EXPECT_EQ(answered, 64);
  EXPECT_EQ(granted, 64);
  EXPECT_EQ(ctrl.active_agents(), 0u);
}

TEST(Distributed, ConcurrentSafetyNearExhaustion) {
  // More concurrent demand than permits: exactly the safety boundary.
  Rng rng(4);
  for (auto kind : {sim::DelayKind::kFixed, sim::DelayKind::kUniform,
                    sim::DelayKind::kHeavyTail, sim::DelayKind::kBiased}) {
    Sim s(kind, 7);
    workload::build(s.tree, workload::Shape::kCaterpillar, 24, rng);
    const std::uint64_t M = 20;
    DistributedController ctrl(s.net, s.tree, Params(M, 5, 64));
    const auto nodes = s.tree.alive_nodes();
    int granted = 0, rejected = 0;
    for (int i = 0; i < 60; ++i) {
      ctrl.submit_event(nodes[rng.index(nodes.size())],
                        [&](const Result& r) {
                          granted += r.granted();
                          rejected += r.outcome == Outcome::kRejected;
                        });
    }
    s.queue.run();
    EXPECT_LE(granted, static_cast<int>(M)) << sim::delay_kind_name(kind);
    EXPECT_GE(granted, static_cast<int>(M - 5))
        << sim::delay_kind_name(kind);
    EXPECT_EQ(granted + rejected, 60) << sim::delay_kind_name(kind);
  }
}

TEST(Distributed, ConcurrentChurnKeepsTreeValid) {
  Rng rng(5);
  Sim s(sim::DelayKind::kUniform, 31);
  workload::build(s.tree, workload::Shape::kRandomAttach, 20, rng);
  DistributedController ctrl(s.net, s.tree, Params(500, 250, 1024));
  workload::ChurnGenerator churn(workload::ChurnModel::kInternalChurn,
                                 Rng(6));
  const auto stats = workload::run_churn_async(
      ctrl, s.queue, s.tree, churn, /*steps=*/300, /*burst=*/8,
      /*event_fraction=*/0.2, rng);
  EXPECT_EQ(stats.requests, 300u);
  EXPECT_GT(stats.granted, 0u);
  EXPECT_TRUE(tree::validate(s.tree).ok());
  EXPECT_EQ(ctrl.active_agents(), 0u);
  if (ctrl.domains() != nullptr) {
    EXPECT_EQ(ctrl.domains()->check_invariants(), "");
  }
}

TEST(Distributed, RemovalWithQueuedRequestsMootsThem) {
  Rng rng(7);
  Sim s;
  workload::build(s.tree, workload::Shape::kPath, 6, rng);
  DistributedController ctrl(s.net, s.tree, Params(50, 25, 64));
  const NodeId victim = s.tree.alive_nodes().back();
  std::vector<Outcome> outs;
  // Two concurrent removals of the same node: one wins, one becomes moot.
  ctrl.submit_remove(victim,
                     [&](const Result& r) { outs.push_back(r.outcome); });
  ctrl.submit_remove(victim,
                     [&](const Result& r) { outs.push_back(r.outcome); });
  s.queue.run();
  ASSERT_EQ(outs.size(), 2u);
  EXPECT_EQ(std::count(outs.begin(), outs.end(), Outcome::kGranted), 1);
  EXPECT_EQ(std::count(outs.begin(), outs.end(), Outcome::kMoot), 1);
  EXPECT_FALSE(s.tree.alive(victim));
}

TEST(Distributed, MessageSizeStaysLogarithmic) {
  Rng rng(8);
  Sim s;
  workload::build(s.tree, workload::Shape::kRandomAttach, 200, rng);
  DistributedController ctrl(s.net, s.tree, Params(300, 150, 1024));
  DistributedSyncFacade facade(s.queue, ctrl);
  const auto nodes = s.tree.alive_nodes();
  for (int i = 0; i < 100; ++i) {
    facade.request_event(nodes[rng.index(nodes.size())]);
  }
  // O(log N) bits: with N ~ 1k, allow a generous constant.
  EXPECT_LE(s.net.stats().max_message_bits,
            12 * ceil_log2(s.tree.size()) + 64);
}

TEST(Distributed, DesignerPortModelShrinksQueueMemory) {
  // §4.4.2: in the designer-port model the agent queue is distributed
  // among the children, so a contended node's own memory drops to O(logN)
  // for the queue regardless of how many agents wait.
  Rng rng(43);
  Sim s;
  workload::build(s.tree, workload::Shape::kStar, 32, rng);
  DistributedController ctrl(s.net, s.tree, Params(100, 50, 64));
  // Pile agents onto the root's lock: every star leaf requests at once.
  for (NodeId v : s.tree.alive_nodes()) {
    if (v != s.tree.root()) {
      ctrl.submit_event(v, [](const Result&) {});
    }
  }
  s.queue.run(40);  // mid-flight: queues are populated
  std::uint64_t adversary_total = 0, designer_total = 0;
  for (NodeId v : s.tree.alive_nodes()) {
    adversary_total += ctrl.memory_bits(v, false);
    designer_total += ctrl.memory_bits(v, true);
  }
  EXPECT_LE(designer_total, adversary_total);
  s.queue.run();
  EXPECT_EQ(ctrl.active_agents(), 0u);
}

TEST(Distributed, MemoryBitsWithinClaim48) {
  Rng rng(9);
  Sim s;
  workload::build(s.tree, workload::Shape::kRandomAttach, 100, rng);
  DistributedController ctrl(s.net, s.tree, Params(200, 100, 256));
  DistributedSyncFacade facade(s.queue, ctrl);
  const auto nodes = s.tree.alive_nodes();
  for (int i = 0; i < 80; ++i) {
    facade.request_event(nodes[rng.index(nodes.size())]);
  }
  const std::uint64_t logN = ceil_log2(s.tree.size());
  const std::uint64_t logU = ceil_log2(256);
  for (NodeId v : s.tree.alive_nodes()) {
    const std::uint64_t deg = s.tree.children(v).size();
    // Claim 4.8: O(deg * logN + log^3 N + log^2 U).
    const std::uint64_t bound =
        32 * (deg * logN + logN * logN * logN + logU * logU) + 256;
    EXPECT_LE(ctrl.memory_bits(v), bound) << "node " << v;
  }
}

TEST(Distributed, MatchesCentralizedGrantCountWhenSerialized) {
  // Lemma 4.5's reduction: with requests issued one at a time, the
  // distributed controller makes exactly the centralized decisions.
  Rng rng_a(10), rng_b(10);
  Sim s;
  workload::build(s.tree, workload::Shape::kBroom, 40, rng_a);
  DynamicTree mirror;
  workload::build(mirror, workload::Shape::kBroom, 40, rng_b);

  const Params params(30, 10, 128);
  DistributedController dist(s.net, s.tree, params);
  DistributedSyncFacade facade(s.queue, dist);
  CentralizedController cent(mirror, params);

  const auto nodes = s.tree.alive_nodes();
  Rng pick(11);
  for (int i = 0; i < 120; ++i) {
    const NodeId u = nodes[pick.index(nodes.size())];
    const auto od = facade.request_event(u).outcome;
    const auto oc = cent.request_event(u).outcome;
    ASSERT_EQ(od, oc) << "diverged at request " << i;
  }
  EXPECT_EQ(dist.permits_granted(), cent.permits_granted());
}

TEST(Distributed, ExhaustSignalModeAborts) {
  Sim s;
  DistributedController::Options opts;
  opts.mode = DistributedController::Mode::kExhaustSignal;
  DistributedController ctrl(s.net, s.tree, Params(2, 1, 4), opts);
  std::vector<Outcome> outs;
  for (int i = 0; i < 5; ++i) {
    ctrl.submit_event(s.tree.root(),
                      [&](const Result& r) { outs.push_back(r.outcome); });
  }
  s.queue.run();
  EXPECT_EQ(std::count(outs.begin(), outs.end(), Outcome::kGranted), 2);
  EXPECT_EQ(std::count(outs.begin(), outs.end(), Outcome::kExhausted), 3);
  EXPECT_FALSE(ctrl.reject_wave_started());
}

TEST(Distributed, SerialsDeliveredToRequests) {
  Sim s;
  DistributedController::Options opts;
  opts.serials = Interval(50, 59);
  DistributedController ctrl(s.net, s.tree, Params(10, 5, 8), opts);
  DistributedSyncFacade facade(s.queue, ctrl);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10; ++i) {
    const Result r = facade.request_event(s.tree.root());
    ASSERT_TRUE(r.granted());
    ASSERT_TRUE(r.serial.has_value());
    seen.insert(*r.serial);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Distributed, DebugTraceRecordsAgentTrails) {
  // debug_trace is off by default; with it on, stuck-agent dumps carry the
  // full action trail (lock/unlock/hop per agent).
  Rng rng(41);
  Sim s;
  workload::build(s.tree, workload::Shape::kPath, 12, rng);
  DistributedController::Options opts;
  opts.debug_trace = true;
  DistributedController ctrl(s.net, s.tree, Params(20, 10, 32), opts);
  // Keep one agent parked mid-operation so debug_agents() has content:
  // it waits behind a lock we never release by pausing the queue early.
  const auto nodes = s.tree.alive_nodes();
  ctrl.submit_event(nodes.back(), [](const Result&) {});
  ctrl.submit_event(nodes.back(), [](const Result&) {});
  s.queue.run(3);  // partial: agents are mid-walk
  const std::string dump = ctrl.debug_agents();
  EXPECT_NE(dump.find("agent"), std::string::npos);
  s.queue.run();  // drain; trails must not disturb correctness
  EXPECT_EQ(ctrl.active_agents(), 0u);
  EXPECT_EQ(ctrl.permits_granted(), 2u);
}

TEST(Distributed, CountingOnlyInstanceLeavesTreeAlone) {
  Sim s;
  DistributedController::Options opts;
  opts.apply_events = false;
  DistributedController ctrl(s.net, s.tree, Params(10, 5, 8), opts);
  DistributedSyncFacade facade(s.queue, ctrl);
  const Result r = facade.request_add_leaf(s.tree.root());
  EXPECT_TRUE(r.granted());
  EXPECT_EQ(r.new_node, kNoNode);
  EXPECT_EQ(s.tree.size(), 1u);
}

}  // namespace
}  // namespace dyncon::core

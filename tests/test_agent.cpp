// Unit tests for the agent substrate: whiteboards (locks, FIFO queues,
// eviction), the taxi (hop delivery under topology changes), and the
// message-size model.

#include <gtest/gtest.h>

#include <vector>

#include "agent/runtime.hpp"
#include "agent/taxi.hpp"
#include "agent/whiteboard.hpp"
#include "sim/network.hpp"
#include "tree/dynamic_tree.hpp"

namespace dyncon::agent {
namespace {

TEST(Whiteboard, LockUnlockBasics) {
  WhiteboardManager wb;
  EXPECT_FALSE(wb.locked(5));
  wb.lock(5, 1, 10);
  EXPECT_TRUE(wb.locked(5));
  EXPECT_EQ(wb.locked_by(5), 1u);
  EXPECT_EQ(wb.down_child(5), 10u);
  const auto next = wb.unlock(5, 1);
  EXPECT_FALSE(next.has_value());
  EXPECT_FALSE(wb.locked(5));
  EXPECT_EQ(wb.down_child(5), kNoNode);
}

TEST(Whiteboard, DoubleLockIsInvariantViolation) {
  WhiteboardManager wb;
  wb.lock(5, 1, kNoNode);
  EXPECT_THROW(wb.lock(5, 2, kNoNode), InvariantError);
}

TEST(Whiteboard, UnlockByNonHolderRejected) {
  WhiteboardManager wb;
  wb.lock(5, 1, kNoNode);
  EXPECT_THROW((void)wb.unlock(5, 2), InvariantError);
}

TEST(Whiteboard, FifoQueueOrder) {
  WhiteboardManager wb;
  wb.lock(5, 1, kNoNode);
  wb.enqueue(5, 2, 20);
  wb.enqueue(5, 3, 30);
  wb.enqueue(5, 4, 40);
  auto first = wb.unlock(5, 1);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->agent, 2u);
  EXPECT_EQ(first->came_from, 20u);
  // Remaining waiters stay queued in order.
  EXPECT_EQ(wb.queue(5).size(), 2u);
  EXPECT_EQ(wb.queue(5).front().agent, 3u);
}

TEST(Whiteboard, EnqueueRequiresLocked) {
  WhiteboardManager wb;
  EXPECT_THROW(wb.enqueue(5, 1, kNoNode), InvariantError);
}

TEST(Whiteboard, EvictMovesQueueInOrder) {
  WhiteboardManager wb;
  wb.lock(5, 1, kNoNode);
  wb.enqueue(5, 2, 20);
  wb.enqueue(5, 3, 30);
  wb.release_for_removal(5, 1);
  const auto res = wb.evict_to_parent(5, 4);
  EXPECT_EQ(res.moved, 2u);
  // Parent was unlocked: the first mover is handed back for resumption.
  ASSERT_TRUE(res.resume.has_value());
  EXPECT_EQ(res.resume->agent, 2u);
  EXPECT_EQ(wb.queue(4).size(), 1u);
  EXPECT_EQ(wb.queue(4).front().agent, 3u);
}

TEST(Whiteboard, EvictIntoLockedParentJustAppends) {
  WhiteboardManager wb;
  wb.lock(4, 9, kNoNode);  // parent locked by someone else
  wb.lock(5, 1, kNoNode);
  wb.enqueue(5, 2, 20);
  wb.release_for_removal(5, 1);
  const auto res = wb.evict_to_parent(5, 4);
  EXPECT_EQ(res.moved, 1u);
  EXPECT_FALSE(res.resume.has_value());
  EXPECT_EQ(wb.queue(4).size(), 1u);
}

TEST(Whiteboard, EvictPreservesFloodMarker) {
  WhiteboardManager wb;
  wb.set_flooded(5, true);
  const auto res = wb.evict_to_parent(5, 4);
  EXPECT_EQ(res.moved, 0u);
  EXPECT_TRUE(wb.flooded(4));
}

struct TaxiFixture {
  sim::EventQueue queue;
  sim::Network net;
  tree::DynamicTree tree;
  Taxi taxi;
  std::vector<std::tuple<AgentId, NodeId, NodeId>> arrivals;

  TaxiFixture()
      : net(queue, std::make_unique<sim::FixedDelay>(1)),
        taxi(net, tree) {
    taxi.set_on_arrival([this](AgentId a, NodeId at, NodeId from) {
      arrivals.emplace_back(a, at, from);
    });
  }

  /// A representative agent-hop message for tests that only care about the
  /// hop itself, not the payload.
  static sim::Message hop_msg(AgentId a) {
    return sim::Message::agent_hop(a, 1, 1, 0, 0, false);
  }
};

TEST(Taxi, HopUpDeliversToParent) {
  TaxiFixture f;
  const NodeId a = f.tree.add_leaf(f.tree.root());
  const NodeId b = f.tree.add_leaf(a);
  f.taxi.hop_up(7, b, TaxiFixture::hop_msg(7));
  f.queue.run();
  ASSERT_EQ(f.arrivals.size(), 1u);
  EXPECT_EQ(std::get<1>(f.arrivals[0]), a);
  EXPECT_EQ(std::get<2>(f.arrivals[0]), b);
  EXPECT_EQ(f.net.stats().messages, 1u);
}

TEST(Taxi, HopUpResolvesAtDeliveryAfterInsertion) {
  // The paper's graceful-insertion contract: a hop in flight toward the
  // old parent is received by the node spliced in between.
  TaxiFixture f;
  const NodeId a = f.tree.add_leaf(f.tree.root());
  const NodeId b = f.tree.add_leaf(a);
  f.taxi.hop_up(7, b, TaxiFixture::hop_msg(7));
  const NodeId m = f.tree.add_internal_above(b);  // while in flight
  f.queue.run();
  ASSERT_EQ(f.arrivals.size(), 1u);
  EXPECT_EQ(std::get<1>(f.arrivals[0]), m);
}

TEST(Taxi, HopUpResolvesAtDeliveryAfterParentRemoval) {
  // "A message sent to a parent who is being deleted is ... received by
  // the new parent."
  TaxiFixture f;
  const NodeId a = f.tree.add_leaf(f.tree.root());
  const NodeId b = f.tree.add_leaf(a);
  f.taxi.hop_up(7, b, TaxiFixture::hop_msg(7));
  f.tree.remove_internal(a);  // while in flight
  f.queue.run();
  ASSERT_EQ(f.arrivals.size(), 1u);
  EXPECT_EQ(std::get<1>(f.arrivals[0]), f.tree.root());
}

TEST(Taxi, HopUpFromRootRejected) {
  TaxiFixture f;
  EXPECT_THROW(f.taxi.hop_up(7, f.tree.root(), TaxiFixture::hop_msg(7)),
               ContractError);
}

TEST(Taxi, RejectsNonAgentMessages) {
  TaxiFixture f;
  const NodeId a = f.tree.add_leaf(f.tree.root());
  const NodeId b = f.tree.add_leaf(a);
  EXPECT_THROW(f.taxi.hop_up(7, b, sim::Message::reject_wave()),
               ContractError);
  EXPECT_THROW(f.taxi.hop_down(7, a, b, sim::Message::app_payload(8)),
               ContractError);
}

TEST(Taxi, HopDownAddressed) {
  TaxiFixture f;
  const NodeId a = f.tree.add_leaf(f.tree.root());
  const NodeId b = f.tree.add_leaf(a);
  f.taxi.hop_down(7, a, b, TaxiFixture::hop_msg(7));
  f.queue.run();
  ASSERT_EQ(f.arrivals.size(), 1u);
  EXPECT_EQ(std::get<1>(f.arrivals[0]), b);
}

TEST(Taxi, ResumeLocalBeatsMessages) {
  TaxiFixture f;
  const NodeId a = f.tree.add_leaf(f.tree.root());
  f.taxi.hop_down(1, f.tree.root(), a, TaxiFixture::hop_msg(1));  // 1 tick
  f.taxi.resume_local(2, a, kNoNode);        // 0 ticks
  f.queue.run();
  ASSERT_EQ(f.arrivals.size(), 2u);
  EXPECT_EQ(std::get<0>(f.arrivals[0]), 2u) << "resume must fire first";
  EXPECT_EQ(f.net.stats().messages, 1u) << "resume is not a message";
}

TEST(Runtime, MessageBitsLogarithmic) {
  const auto small = agent_message_bits(16, 4);
  const auto big = agent_message_bits(1u << 20, 22);
  EXPECT_LT(small, big);
  EXPECT_LE(big, 2 * 21 + 6 + 8 + 8);  // 2 counters + bag + flags, roughly
  EXPECT_GE(agent_message_bits(1, 1), 8u);  // degenerate sizes stay sane
}

}  // namespace
}  // namespace dyncon::agent

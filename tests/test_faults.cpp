// Unit tests for the transport-fault adversaries (sim/fault.hpp) and for
// how the Network applies their decisions: charging dropped and duplicated
// transmissions, stall hold time, determinism under a fixed seed, and the
// per-kind NetStats accounting surviving fault injection.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/delay.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace dyncon::sim {
namespace {

Message probe(std::uint64_t agent = 7) {
  return Message::agent_hop(agent, 3, 5, 2, /*phase=*/1, /*carrying=*/true);
}

// ---- policy behavior ---------------------------------------------------------

TEST(Fault, DropRateIsRoughlyHonored) {
  DropFault f(Rng(11), 0.25);
  int drops = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    drops += f.on_send(0, 1, MsgKind::kAgent, i, 0).drop;
  }
  EXPECT_GT(drops, n / 8);
  EXPECT_LT(drops, n / 2);
}

TEST(Fault, DropIsDeterministicUnderSeed) {
  DropFault a(Rng(42), 0.3), b(Rng(42), 0.3);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.on_send(0, 1, MsgKind::kAgent, i, 0).drop,
              b.on_send(0, 1, MsgKind::kAgent, i, 0).drop);
  }
}

TEST(Fault, DuplicateAddsCopiesNeverDrops) {
  DuplicateFault f(Rng(5), 0.5);
  std::uint64_t dups = 0;
  for (int i = 0; i < 1000; ++i) {
    const FaultDecision d = f.on_send(0, 1, MsgKind::kAgent, i, 0);
    EXPECT_FALSE(d.drop);
    EXPECT_EQ(d.stall_ticks, 0u);
    dups += d.duplicates;
  }
  EXPECT_GT(dups, 250u);
  EXPECT_LT(dups, 750u);
}

TEST(Fault, ZeroRatePoliciesAreFaultFree) {
  EXPECT_TRUE(DropFault(Rng(1), 0.0).fault_free());
  EXPECT_TRUE(DuplicateFault(Rng(1), 0.0).fault_free());
  EXPECT_TRUE(BurstLossFault(Rng(1), 0.0, 64, 8).fault_free());
  EXPECT_TRUE(StallFault(Rng(1), 0.0, 64, 8).fault_free());
  EXPECT_FALSE(DropFault(Rng(1), 0.1).fault_free());
  std::vector<std::unique_ptr<FaultPolicy>> kids;
  kids.push_back(std::make_unique<DropFault>(Rng(1), 0.0));
  kids.push_back(std::make_unique<StallFault>(Rng(2), 0.0, 64, 8));
  EXPECT_TRUE(ComposedFault(std::move(kids)).fault_free());
}

TEST(Fault, BurstLossIsAPureWindowFunction) {
  BurstLossFault f(Rng(7), 0.5, 96, 24);
  // Find a flaky link; with half the links marked, a handful of tries finds
  // one deterministically.
  NodeId from = 0, to = 1;
  bool found = false;
  for (NodeId u = 0; u < 32 && !found; ++u) {
    if (f.flaky(u, u + 1)) { from = u; to = u + 1; found = true; }
  }
  ASSERT_TRUE(found);
  // Inside a burst every transmission drops; outside none does — and the
  // answer depends only on (link, now), so the same query repeats.
  int dropped = 0, passed = 0;
  for (SimTime t = 0; t < 96 * 4; ++t) {
    const bool d1 = f.on_send(from, to, MsgKind::kAgent, t, t).drop;
    const bool d2 = f.on_send(from, to, MsgKind::kAgent, t, t).drop;
    EXPECT_EQ(d1, d2);
    dropped += d1;
    passed += !d1;
  }
  EXPECT_EQ(dropped, 24 * 4);
  EXPECT_EQ(passed, 72 * 4);
  // A non-flaky link never loses anything.
  for (NodeId u = 0; u < 64; ++u) {
    if (f.flaky(u, u + 1)) continue;
    for (SimTime t = 0; t < 96; t += 7) {
      EXPECT_FALSE(f.on_send(u, u + 1, MsgKind::kAgent, t, t).drop);
    }
    break;
  }
}

TEST(Fault, StallHoldsBothEndpointsAndExpires) {
  StallFault f(Rng(9), 0.5, 192, 48);
  NodeId victim = kNoNode;
  for (NodeId u = 0; u < 64; ++u) {
    if (f.stalled_for(u, 0) > 0 || f.stalled_for(u, 100) > 0) {
      victim = u;
      break;
    }
  }
  ASSERT_NE(victim, kNoNode);
  // Scan one full period: the hold decreases tick by tick inside the
  // window and is zero outside it.
  SimTime in_window = 0;
  for (SimTime t = 0; t < 192; ++t) {
    const SimTime hold = f.stalled_for(victim, t);
    if (hold > 0) {
      ++in_window;
      EXPECT_LE(hold, 48u);
      if (f.stalled_for(victim, t + 1) > 0) {
        EXPECT_EQ(f.stalled_for(victim, t + 1), hold - 1);
      }
    }
  }
  EXPECT_EQ(in_window, 48u);
  // The decision stalls traffic in both directions of the victim.
  SimTime stall_time = 0;
  while (f.stalled_for(victim, stall_time) == 0) ++stall_time;
  EXPECT_GT(f.on_send(victim, victim + 1, MsgKind::kAgent, 0, stall_time)
                .stall_ticks,
            0u);
  EXPECT_GT(f.on_send(victim + 1, victim, MsgKind::kAgent, 0, stall_time)
                .stall_ticks,
            0u);
}

TEST(Fault, ComposedCombinesDamage) {
  std::vector<std::unique_ptr<FaultPolicy>> kids;
  kids.push_back(std::make_unique<DuplicateFault>(Rng(1), 1.0 - 1e-12));
  kids.push_back(std::make_unique<DuplicateFault>(Rng(2), 1.0 - 1e-12));
  kids.push_back(std::make_unique<DropFault>(Rng(3), 1.0 - 1e-12));
  ComposedFault f(std::move(kids));
  const FaultDecision d = f.on_send(0, 1, MsgKind::kAgent, 0, 0);
  EXPECT_TRUE(d.drop);
  EXPECT_EQ(d.duplicates, 2u);
}

TEST(Fault, FactoryCoversEveryKind) {
  EXPECT_EQ(make_fault(FaultKind::kNone, 1), nullptr);
  for (const FaultKind k : all_fault_kinds()) {
    SCOPED_TRACE(fault_kind_name(k));
    if (k == FaultKind::kNone) continue;
    const auto policy = make_fault(k, 123);
    ASSERT_NE(policy, nullptr);
    EXPECT_FALSE(policy->fault_free());
    EXPECT_FALSE(policy->name().empty());
  }
}

// ---- Network integration -----------------------------------------------------

struct NetFixture {
  EventQueue queue;
  Network net;
  explicit NetFixture() : net(queue, std::make_unique<FixedDelay>(1)) {}
};

TEST(FaultNetwork, DropsAreChargedButNotDelivered) {
  NetFixture s;
  s.net.set_fault_policy(std::make_unique<DropFault>(Rng(3), 1.0 - 1e-12));
  int delivered = 0;
  s.net.send(0, 1, probe(), [&] { ++delivered; });
  s.queue.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(s.net.fault_stats().drops, 1u);
  // The transmission was still paid for (the sender did send it).
  EXPECT_EQ(s.net.stats().messages, 1u);
  EXPECT_GT(s.net.stats().total_bits, 0u);
}

TEST(FaultNetwork, DuplicatesDeliverAndChargeEachCopy) {
  NetFixture s;
  s.net.set_fault_policy(
      std::make_unique<DuplicateFault>(Rng(3), 1.0 - 1e-12));
  int delivered = 0;
  s.net.send(0, 1, probe(), [&] { ++delivered; });
  s.queue.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(s.net.fault_stats().duplicates, 1u);
  // Two physical copies hit the wire: both are charged, under the same
  // kind, and both land in the size histogram.
  const NetStats& st = s.net.stats();
  EXPECT_EQ(st.messages, 2u);
  const auto k = static_cast<std::size_t>(MsgKind::kAgent);
  EXPECT_EQ(st.by_kind[k], 2u);
  EXPECT_EQ(st.bits_by_kind[k], st.total_bits);
  std::uint64_t histogram_total = 0;
  for (const std::uint64_t w : st.size_histogram) histogram_total += w;
  EXPECT_EQ(histogram_total, 2u);
}

TEST(FaultNetwork, StallDelaysDelivery) {
  NetFixture s;
  auto policy = std::make_unique<StallFault>(Rng(4), 1.0 - 1e-12, 192, 48);
  // Find a moment when node 0 is mid-stall (every node is stall-prone at
  // this fraction; only the window phase varies) and send then.
  SimTime t_stall = 0;
  while (policy->stalled_for(0, t_stall) == 0) ++t_stall;
  const SimTime hold = policy->stalled_for(0, t_stall);
  s.net.set_fault_policy(std::move(policy));
  SimTime delivered_at = 0;
  s.queue.schedule_after(t_stall, [&] {
    s.net.send(0, 1, probe(), [&] { delivered_at = s.queue.now(); });
  });
  s.queue.run();
  // FixedDelay(1) alone would deliver one tick after the send; the stall
  // hold is stacked on top.
  EXPECT_EQ(delivered_at, t_stall + 1 + hold);
  EXPECT_EQ(s.net.fault_stats().stalls, 1u);
  EXPECT_EQ(s.net.fault_stats().stall_ticks, hold);
}

TEST(FaultNetwork, FaultStatsMergeSums) {
  FaultStats a{2, 3, 4, 100};
  const FaultStats b{1, 1, 1, 11};
  a.merge(b);
  EXPECT_EQ(a.drops, 3u);
  EXPECT_EQ(a.duplicates, 4u);
  EXPECT_EQ(a.stalls, 5u);
  EXPECT_EQ(a.stall_ticks, 111u);
}

TEST(FaultNetwork, NetStatsMergeAcrossFaultyRuns) {
  // Satellite check: a sweep merges per-run NetStats; duplicated and
  // dropped transmissions must survive the merge as real messages.
  NetStats total;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    NetFixture s;
    s.net.set_fault_policy(make_fault(FaultKind::kChaos, seed));
    int answered = 0;
    for (int i = 0; i < 50; ++i) {
      s.net.send(i % 8, (i + 1) % 8, probe(i), [&] { ++answered; });
    }
    s.queue.run();
    total.merge(s.net.stats());
  }
  EXPECT_GE(total.messages, 150u);
  std::uint64_t histogram_total = 0, by_kind_total = 0;
  for (const std::uint64_t w : total.size_histogram) histogram_total += w;
  for (std::size_t k = 0; k < NetStats::kKinds; ++k) {
    by_kind_total += total.by_kind[k];
  }
  EXPECT_EQ(histogram_total, total.messages);
  EXPECT_EQ(by_kind_total, total.messages);
}

TEST(FaultNetwork, ChargeIsExemptFromInjection) {
  NetFixture s;
  s.net.set_fault_policy(std::make_unique<DropFault>(Rng(3), 1.0 - 1e-12));
  s.net.charge(probe(), 10);
  EXPECT_EQ(s.net.stats().messages, 10u);
  EXPECT_EQ(s.net.fault_stats().drops, 0u);
}

TEST(FaultNetwork, SameSeedSameDamage) {
  auto run = [](std::uint64_t seed) {
    NetFixture s;
    s.net.set_fault_policy(make_fault(FaultKind::kChaos, seed));
    int delivered = 0;
    for (int i = 0; i < 200; ++i) {
      s.net.send(i % 16, (i + 3) % 16, probe(i), [&] { ++delivered; });
    }
    s.queue.run();
    return std::tuple{delivered, s.net.fault_stats().drops,
                      s.net.fault_stats().duplicates,
                      s.net.stats().total_bits};
  };
  EXPECT_EQ(run(77), run(77));
  EXPECT_NE(run(77), run(78));
}

}  // namespace
}  // namespace dyncon::sim

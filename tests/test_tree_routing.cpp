// Tests for the dynamic compact routing scheme (§5.4, Obs. 5.5/Cor. 5.6):
// stretch-1 routes from labels alone, correctness under all churn models,
// label size tracking log n under shrinkage.

#include <gtest/gtest.h>

#include "apps/tree_routing.hpp"
#include "util/rng.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

namespace dyncon::apps {
namespace {

using tree::DynamicTree;
using workload::ChurnGenerator;
using workload::ChurnModel;

/// Tree distance by walking to the LCA (ground truth).
std::uint64_t tree_distance(const DynamicTree& t, NodeId u, NodeId v) {
  // Climb the deeper side until depths match, then both.
  std::uint64_t du = t.depth(u), dv = t.depth(v);
  NodeId a = u, b = v;
  while (du > dv) {
    a = t.parent(a);
    --du;
  }
  while (dv > du) {
    b = t.parent(b);
    --dv;
  }
  std::uint64_t d = (t.depth(u) - du) + (t.depth(v) - dv);
  while (a != b) {
    a = t.parent(a);
    b = t.parent(b);
    d += 2;
  }
  return d;
}

void audit_routes(const DynamicTree& t, const TreeRouting& router,
                  Rng& rng, int samples) {
  const auto nodes = t.alive_nodes();
  if (nodes.size() < 2) return;
  for (int i = 0; i < samples; ++i) {
    const NodeId u = nodes[rng.index(nodes.size())];
    const NodeId v = nodes[rng.index(nodes.size())];
    if (u == v) continue;
    const auto hops = router.route(u, v);
    ASSERT_FALSE(hops.empty());
    ASSERT_EQ(hops.back(), v) << "route did not reach its target";
    // Stretch 1: the route length equals the tree distance.
    ASSERT_EQ(hops.size(), tree_distance(t, u, v))
        << "route " << u << "->" << v << " is not shortest";
  }
}

TEST(TreeRouting, RoutesOnStaticShapes) {
  for (auto shape : workload::all_shapes()) {
    Rng rng(1);
    DynamicTree t;
    workload::build(t, shape, 50, rng);
    TreeRouting router(t);
    audit_routes(t, router, rng, 200);
  }
}

TEST(TreeRouting, NextHopIsLocalDecision) {
  Rng rng(2);
  DynamicTree t;
  workload::build(t, workload::Shape::kBinary, 31, rng);
  TreeRouting router(t);
  const auto nodes = t.alive_nodes();
  // Hops toward an ancestor go up; toward a descendant go down the right
  // child; across go up first.
  const NodeId deep = nodes.back();
  EXPECT_EQ(router.next_hop(deep, t.root()), t.parent(deep));
  const NodeId child = t.children(t.root()).front();
  EXPECT_EQ(router.next_hop(t.root(), child), child);
}

void churn_and_audit(ChurnModel model, std::uint64_t seed) {
  Rng rng(seed);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 40, rng);
  TreeRouting router(t);
  ChurnGenerator churn(model, Rng(seed + 1));
  for (int i = 0; i < 250; ++i) {
    if (t.size() < 4) break;
    const auto spec = churn.next(t);
    switch (spec.type) {
      case core::RequestSpec::Type::kAddLeaf:
        router.request_add_leaf(spec.subject);
        break;
      case core::RequestSpec::Type::kAddInternal:
        router.request_add_internal_above(spec.subject);
        break;
      case core::RequestSpec::Type::kRemove:
        router.request_remove(spec.subject);
        break;
      default:
        break;
    }
    if (i % 10 == 0) audit_routes(t, router, rng, 40);
  }
  audit_routes(t, router, rng, 100);
}

TEST(TreeRouting, GrowOnlyChurn) { churn_and_audit(ChurnModel::kGrowOnly, 3); }
TEST(TreeRouting, BirthDeathChurn) {
  churn_and_audit(ChurnModel::kBirthDeath, 4);
}
TEST(TreeRouting, InternalChurn) {
  churn_and_audit(ChurnModel::kInternalChurn, 5);
}
TEST(TreeRouting, FlashCrowdChurn) {
  churn_and_audit(ChurnModel::kFlashCrowd, 6);
}

TEST(TreeRouting, ShrinkTriggersRelabelAndKeepsBitsTight) {
  Rng rng(7);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 600, rng);
  TreeRouting router(t);
  ChurnGenerator churn(ChurnModel::kShrink, Rng(8));
  while (t.size() > 16) {
    ASSERT_TRUE(router.request_remove(churn.next(t).subject).granted());
  }
  EXPECT_GT(router.relabels(), 1u);
  EXPECT_LE(router.label_bits(), ceil_log2(t.size()) + 10);
  audit_routes(t, router, rng, 100);
}

TEST(TreeRouting, DegenerateQueriesRejected) {
  DynamicTree t;
  TreeRouting router(t);
  EXPECT_THROW(router.next_hop(t.root(), t.root()), ContractError);
}

}  // namespace
}  // namespace dyncon::apps

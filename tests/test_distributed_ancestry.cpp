// Tests for distributed ancestry labeling: exactness of label-only queries
// under asynchronous churn, shrink-triggered relabels, label-size bound.

#include <gtest/gtest.h>

#include "apps/distributed_ancestry_labeling.hpp"
#include "tree/validate.hpp"
#include "util/rng.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

namespace dyncon::apps {
namespace {

using core::RequestSpec;
using core::Result;
using tree::DynamicTree;

struct Sim {
  sim::EventQueue queue;
  sim::Network net;
  DynamicTree tree;
  Sim() : net(queue, sim::make_delay(sim::DelayKind::kUniform, 3)) {}
};

void audit_all_pairs(const DynamicTree& t,
                     const DistributedAncestryLabeling& lab) {
  const auto nodes = t.alive_nodes();
  for (NodeId u : nodes) {
    for (NodeId v : nodes) {
      ASSERT_EQ(lab.is_ancestor(u, v), t.is_ancestor(u, v))
          << "pair (" << u << "," << v << ")";
    }
  }
}

TEST(DistAncestry, InitialLabelsExact) {
  Sim s;
  Rng rng(1);
  workload::build(s.tree, workload::Shape::kRandomAttach, 40, rng);
  DistributedAncestryLabeling lab(s.net, s.tree);
  audit_all_pairs(s.tree, lab);
}

TEST(DistAncestry, FullChurnStaysExact) {
  Sim s;
  Rng rng(2);
  workload::build(s.tree, workload::Shape::kRandomAttach, 32, rng);
  DistributedAncestryLabeling lab(s.net, s.tree);
  workload::ChurnGenerator churn(workload::ChurnModel::kInternalChurn,
                                 Rng(3));
  for (int i = 0; i < 250; ++i) {
    if (s.tree.size() < 4) break;
    const auto spec = churn.next(s.tree);
    switch (spec.type) {
      case RequestSpec::Type::kAddLeaf:
        lab.submit_add_leaf(spec.subject, [](const Result&) {});
        break;
      case RequestSpec::Type::kAddInternal:
        lab.submit_add_internal_above(spec.subject, [](const Result&) {});
        break;
      case RequestSpec::Type::kRemove:
        lab.submit_remove(spec.subject, [](const Result&) {});
        break;
      default:
        break;
    }
    s.queue.run();
    if (i % 25 == 0) audit_all_pairs(s.tree, lab);
  }
  audit_all_pairs(s.tree, lab);
}

TEST(DistAncestry, ConcurrentBurstsExactAtQuiescence) {
  Sim s;
  Rng rng(4);
  workload::build(s.tree, workload::Shape::kCaterpillar, 36, rng);
  DistributedAncestryLabeling lab(s.net, s.tree);
  workload::ChurnGenerator churn(workload::ChurnModel::kFlashCrowd, Rng(5));
  for (int burst = 0; burst < 30; ++burst) {
    for (int i = 0; i < 4; ++i) {
      const auto spec = churn.next(s.tree);
      if (spec.type == RequestSpec::Type::kAddLeaf) {
        lab.submit_add_leaf(spec.subject, [](const Result&) {});
      } else if (spec.type == RequestSpec::Type::kRemove) {
        lab.submit_remove(spec.subject, [](const Result&) {});
      }
    }
    s.queue.run();
    ASSERT_TRUE(tree::validate(s.tree).ok());
    if (burst % 5 == 0) audit_all_pairs(s.tree, lab);
  }
  audit_all_pairs(s.tree, lab);
}

TEST(DistAncestry, ShrinkRelabelsKeepBitsTight) {
  Sim s;
  Rng rng(6);
  workload::build(s.tree, workload::Shape::kRandomAttach, 400, rng);
  DistributedAncestryLabeling lab(s.net, s.tree);
  workload::ChurnGenerator churn(workload::ChurnModel::kShrink, Rng(7));
  while (s.tree.size() > 16) {
    lab.submit_remove(churn.next(s.tree).subject, [](const Result&) {});
    s.queue.run();
  }
  EXPECT_GT(lab.relabels(), 1u);
  EXPECT_LE(lab.label_bits(), ceil_log2(s.tree.size()) + 10);
  audit_all_pairs(s.tree, lab);
}

}  // namespace
}  // namespace dyncon::apps

// Parameterized property sweep for the centralized controller stack:
// for every (tree shape x churn model x seed) combination, the full
// (M,W)-controller pipeline must maintain
//
//   * safety (grants <= M),
//   * liveness (>= M - W grants once anything is rejected),
//   * permit conservation inside each base iteration,
//   * the Claim 3.1 domain invariants after every step,
//   * structural validity of the tree.

#include <gtest/gtest.h>

#include <tuple>

#include "core/iterated_controller.hpp"
#include "tree/validate.hpp"
#include "util/rng.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

namespace dyncon::core {
namespace {

using tree::DynamicTree;
using workload::ChurnModel;
using workload::Shape;

using Case = std::tuple<Shape, ChurnModel, std::uint64_t /*seed*/>;

class ControllerProperty : public ::testing::TestWithParam<Case> {};

TEST_P(ControllerProperty, SafetyLivenessDomainsUnderChurn) {
  const auto [shape, model, seed] = GetParam();
  Rng rng(seed);
  DynamicTree t;
  workload::build(t, shape, 48, rng);

  const std::uint64_t M = 120, W = 12;
  IteratedController ctrl(t, M, W, /*U=*/1024);
  workload::ChurnGenerator churn(model, Rng(seed * 7 + 1));

  std::uint64_t granted = 0, rejected = 0;
  for (int i = 0; i < 360; ++i) {
    if (t.size() < 4) break;
    const auto spec = churn.next(t);
    Result r;
    switch (spec.type) {
      case RequestSpec::Type::kAddLeaf:
        r = ctrl.request_add_leaf(spec.subject);
        break;
      case RequestSpec::Type::kAddInternal:
        r = ctrl.request_add_internal_above(spec.subject);
        break;
      case RequestSpec::Type::kRemove:
        r = ctrl.request_remove(spec.subject);
        break;
      case RequestSpec::Type::kEvent:
        r = ctrl.request_event(spec.subject);
        break;
    }
    granted += r.granted();
    rejected += r.outcome == Outcome::kRejected;

    ASSERT_LE(ctrl.permits_granted(), M);
    const auto valid = tree::validate(t);
    ASSERT_TRUE(valid.ok()) << valid.detail << " at step " << i;
    if (ctrl.inner() != nullptr) {
      // Permit conservation within the live base iteration.
      ASSERT_EQ(ctrl.inner()->permits_granted() +
                    ctrl.inner()->unused_permits(),
                ctrl.inner()->params().M());
      if (const auto* dom = ctrl.inner()->domains()) {
        const std::string err = dom->check_invariants();
        ASSERT_EQ(err, "") << "step " << i;
      }
    }
  }
  if (rejected > 0) {
    EXPECT_GE(granted, M - W);  // liveness
  }
  EXPECT_EQ(granted, ctrl.permits_granted());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ControllerProperty,
    ::testing::Combine(
        ::testing::Values(Shape::kPath, Shape::kStar, Shape::kBinary,
                          Shape::kRandomAttach, Shape::kCaterpillar,
                          Shape::kBroom),
        ::testing::Values(ChurnModel::kGrowOnly, ChurnModel::kBirthDeath,
                          ChurnModel::kInternalChurn,
                          ChurnModel::kFlashCrowd),
        ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<Case>& info) {
      return std::string(workload::shape_name(std::get<0>(info.param))) +
             "_" + workload::churn_name(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

/// W-sweep: the waste parameter's contract holds across magnitudes.
class WasteProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WasteProperty, LivenessBandRespected) {
  const std::uint64_t W = GetParam();
  Rng rng(W + 5);
  DynamicTree t;
  workload::build(t, Shape::kRandomAttach, 32, rng);
  const std::uint64_t M = 200;
  IteratedController ctrl(t, M, W, /*U=*/512);
  const auto nodes = t.alive_nodes();
  std::uint64_t granted = 0;
  bool saw_reject = false;
  for (std::uint64_t i = 0; i < 4 * M; ++i) {
    const auto o = ctrl.request_event(nodes[i % nodes.size()]).outcome;
    granted += o == Outcome::kGranted;
    saw_reject |= o == Outcome::kRejected;
  }
  EXPECT_TRUE(saw_reject);
  EXPECT_LE(granted, M);
  EXPECT_GE(granted, M - W);
}

INSTANTIATE_TEST_SUITE_P(WSweep, WasteProperty,
                         ::testing::Values(0u, 1u, 2u, 5u, 20u, 100u, 199u));

}  // namespace
}  // namespace dyncon::core

// Unit tests for the reliable-FIFO channel sublayer (sim/channel.hpp):
// retransmission repairs drops, duplicate suppression, ack-loss recovery,
// FIFO restoration under reordering, exponential backoff with a loud retry
// cap, measured control-traffic accounting, and the zero-overhead-when-off
// guarantee (bit-identical NetStats, asserted with NetStats::operator==).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/channel.hpp"
#include "sim/delay.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "sim/wire.hpp"
#include "util/rng.hpp"

namespace dyncon::sim {
namespace {

Message probe(std::uint64_t agent = 7) {
  return Message::agent_hop(agent, 3, 5, 2, /*phase=*/1, /*carrying=*/true);
}

struct ChanFixture {
  EventQueue queue;
  Network net;
  explicit ChanFixture(std::unique_ptr<DelayPolicy> delay =
                           std::make_unique<FixedDelay>(1))
      : net(queue, std::move(delay)) {}
};

// A drop policy that loses exactly the first `n` transmissions, then
// passes everything — surgical loss for deterministic channel tests.
class DropFirstN final : public FaultPolicy {
 public:
  explicit DropFirstN(int n) : remaining_(n) {}
  FaultDecision on_send(NodeId, NodeId, MsgKind, std::uint64_t,
                        SimTime) override {
    FaultDecision d;
    if (remaining_ > 0) {
      --remaining_;
      d.drop = true;
    }
    return d;
  }
  std::string name() const override { return "drop-first-n"; }

 private:
  int remaining_;
};

// Drops every kChannel ack (and nothing else): exercises the ack-loss
// repair path, where the provoked retransmission is suppressed and
// re-acked.
class DropAcks final : public FaultPolicy {
 public:
  FaultDecision on_send(NodeId, NodeId, MsgKind kind, std::uint64_t,
                        SimTime) override {
    FaultDecision d;
    if (kind == MsgKind::kChannel && dropped_ < 2) {
      d.drop = true;
      ++dropped_;
    }
    return d;
  }
  std::string name() const override { return "drop-acks"; }

 private:
  int dropped_ = 0;
};

TEST(Channel, RetransmissionRepairsADrop) {
  ChanFixture s;
  s.net.set_fault_policy(std::make_unique<DropFirstN>(1));
  s.net.enable_reliability();
  int delivered = 0;
  s.net.send(0, 1, probe(), [&] { ++delivered; });
  s.queue.run();
  EXPECT_EQ(delivered, 1);
  const ChannelStats& cs = s.net.channel()->stats();
  EXPECT_EQ(cs.data_frames, 1u);
  EXPECT_EQ(cs.retransmits, 1u);
  EXPECT_EQ(cs.duplicates_suppressed, 0u);
  EXPECT_EQ(s.net.channel()->in_flight(), 0u);
  // Delivery happened only after the first RTO expired.
  EXPECT_GE(s.queue.now(), s.net.channel()->config().initial_rto);
}

TEST(Channel, FaultInjectedCopiesAreSuppressed) {
  ChanFixture s;
  s.net.set_fault_policy(
      std::make_unique<DuplicateFault>(Rng(3), 1.0 - 1e-12));
  s.net.enable_reliability();
  int delivered = 0;
  s.net.send(0, 1, probe(), [&] { ++delivered; });
  s.queue.run();
  EXPECT_EQ(delivered, 1) << "exactly-once despite transport duplication";
  EXPECT_GE(s.net.channel()->stats().duplicates_suppressed, 1u);
  EXPECT_EQ(s.net.channel()->in_flight(), 0u);
}

TEST(Channel, LostAckIsRepairedByRetransmission) {
  ChanFixture s;
  s.net.set_fault_policy(std::make_unique<DropAcks>());
  s.net.enable_reliability();
  int delivered = 0;
  s.net.send(0, 1, probe(), [&] { ++delivered; });
  s.queue.run();
  EXPECT_EQ(delivered, 1);
  const ChannelStats& cs = s.net.channel()->stats();
  EXPECT_GE(cs.retransmits, 1u);
  EXPECT_GE(cs.duplicates_suppressed, 1u) << "retransmission was suppressed";
  EXPECT_EQ(s.net.channel()->in_flight(), 0u) << "a later ack landed";
}

TEST(Channel, FifoRestoredOverReorderingDelays) {
  // kReorder delays shuffle arrival order aggressively; the channel must
  // hand messages up in send order anyway.
  ChanFixture s(make_delay(DelayKind::kReorder, 1234));
  // A faulty-but-harmless policy: lossy() must be true for the channel to
  // engage, so drop with tiny probability (seeded; may or may not fire).
  s.net.set_fault_policy(std::make_unique<DropFault>(Rng(5), 0.05));
  s.net.enable_reliability();
  std::vector<int> order;
  const int n = 32;
  for (int i = 0; i < n; ++i) {
    s.net.send(0, 1, probe(i), [&order, i] { order.push_back(i); });
  }
  s.queue.run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
  EXPECT_EQ(s.net.channel()->in_flight(), 0u);
}

TEST(Channel, ManyLinksManyMessagesAllDeliveredExactlyOnce) {
  ChanFixture s(make_delay(DelayKind::kUniform, 9));
  s.net.set_fault_policy(make_fault(FaultKind::kChaos, 31));
  s.net.enable_reliability();
  std::vector<int> hits(64, 0);
  for (int i = 0; i < 64; ++i) {
    s.net.send(i % 8, 8 + i % 8, probe(i), [&hits, i] { ++hits[i]; });
  }
  s.queue.run();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(hits[i], 1) << "message " << i;
  EXPECT_EQ(s.net.channel()->in_flight(), 0u);
}

TEST(Channel, BackoffGivesUpLoudlyOnADeadLink) {
  ChanFixture s;
  // Everything drops forever: the frame can never get through.
  s.net.set_fault_policy(std::make_unique<DropFault>(Rng(3), 1.0 - 1e-12));
  ChannelConfig cfg;
  cfg.initial_rto = 4;
  cfg.max_rto = 16;
  cfg.max_retries = 5;
  s.net.enable_reliability(cfg);
  s.net.send(0, 1, probe(), [] { FAIL() << "delivered on a dead link"; });
  EXPECT_THROW(s.queue.run(), InvariantError);
  EXPECT_EQ(s.net.channel()->stats().retransmits, 5u);
}

TEST(Channel, ControlTrafficIsMeasuredAndKindSplit) {
  ChanFixture s;
  s.net.set_fault_policy(std::make_unique<DropFirstN>(1));
  s.net.enable_reliability();
  int delivered = 0;
  s.net.send(0, 1, probe(), [&] { ++delivered; });
  s.queue.run();
  ASSERT_EQ(delivered, 1);
  const NetStats& st = s.net.stats();
  const auto hop = static_cast<std::size_t>(MsgKind::kAgent);
  const auto chan = static_cast<std::size_t>(MsgKind::kChannel);
  // Two physical data frames (original + retransmit) charged as agent
  // traffic at the full wrapped size; one ack under kChannel.
  EXPECT_EQ(st.by_kind[hop], 2u);
  EXPECT_EQ(st.by_kind[chan], 1u);
  EXPECT_EQ(st.messages, 3u);
  const Encoded raw = probe().encode();
  EXPECT_GT(st.max_bits_by_kind[hop], raw.bits)
      << "wrapped frame must be bigger than the bare message";
  EXPECT_GT(st.bits_by_kind[chan], 0u);
}

TEST(Channel, ZeroOverheadWhenFaultFree) {
  // The acceptance bar: with all fault rates at zero, a run through the
  // enabled channel is *bit-identical* to a run with no channel at all.
  auto run = [](bool with_channel) {
    ChanFixture s(make_delay(DelayKind::kHeavyTail, 77));
    if (with_channel) {
      // A policy whose rates are all zero: lossy() stays false.
      s.net.set_fault_policy(std::make_unique<DropFault>(Rng(1), 0.0));
      s.net.enable_reliability();
    }
    int delivered = 0;
    for (int i = 0; i < 128; ++i) {
      s.net.send(i % 16, (i + 1) % 16, probe(i), [&] { ++delivered; });
    }
    s.queue.run();
    EXPECT_EQ(delivered, 128);
    if (with_channel) {
      EXPECT_EQ(s.net.channel()->stats().data_frames, 0u);
      EXPECT_EQ(s.net.channel()->stats().retransmits, 0u);
      EXPECT_EQ(s.net.channel()->stats().acks, 0u);
    }
    return s.net.stats();
  };
  const NetStats bare = run(false);
  const NetStats channeled = run(true);
  EXPECT_TRUE(bare == channeled)
      << "with: " << channeled.str() << "\nwithout: " << bare.str();
}

TEST(Channel, StatsMergeAndPrint) {
  ChannelStats a{10, 2, 9, 1, 3};
  const ChannelStats b{5, 1, 4, 2, 0};
  a.merge(b);
  EXPECT_EQ(a, (ChannelStats{15, 3, 13, 3, 3}));
  EXPECT_FALSE(a.str().empty());
}

TEST(Channel, WireRoundTripOfChannelFrames) {
  const Message data = Message::channel_data(42, probe());
  const Encoded enc = data.encode();
  EXPECT_EQ(Message::decode(enc), data);
  EXPECT_EQ(data.as<ChannelMsg>().inner_kind(), MsgKind::kAgent);
  const Message ack = Message::channel_ack(7);
  EXPECT_EQ(Message::decode(ack.encode()), ack);
  // Frames never nest.
  EXPECT_THROW(Message::channel_data(0, data), ContractError);
}

}  // namespace
}  // namespace dyncon::sim

// Checked-in regression fixtures: a snapshot + recorded trace pair under
// tests/fixtures/, replayed through several controllers.  This pins the
// end-to-end file workflow (snapshot -> restore -> replay) and gives the
// repository a place to drop reproducers for any future field bug: save
// the snapshot and script, add three lines here.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/distributed_controller.hpp"
#include "core/iterated_controller.hpp"
#include "core/trivial_controller.hpp"
#include "tree/snapshot.hpp"
#include "tree/validate.hpp"
#include "workload/script.hpp"

#ifndef DYNCON_TEST_DATA_DIR
#error "DYNCON_TEST_DATA_DIR must be defined by the build"
#endif

namespace dyncon {
namespace {

std::string slurp(const std::string& name) {
  const std::string path = std::string(DYNCON_TEST_DATA_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct Fixture {
  tree::DynamicTree tree;
  workload::Script script;

  explicit Fixture(const std::string& stem)
      : tree(tree::restore(slurp(stem + ".snapshot"))),
        script(workload::Script::parse(slurp(stem + ".script"))) {}
};

TEST(Fixtures, Caterpillar48Loads) {
  Fixture f("caterpillar48");
  EXPECT_EQ(f.tree.size(), 48u);
  EXPECT_EQ(f.script.size(), 160u);
  EXPECT_TRUE(tree::validate(f.tree).ok());
}

TEST(Fixtures, Caterpillar48ReplaysIdenticallyEverywhere) {
  // The same fixture through three controller implementations with an
  // all-granting budget: identical final topology (and it matches the
  // values recorded when the fixture was generated).
  std::vector<std::uint64_t> sizes;
  for (int impl = 0; impl < 3; ++impl) {
    Fixture f("caterpillar48");
    workload::ReplayStats stats;
    sim::EventQueue queue;
    sim::Network net(queue, sim::make_delay(sim::DelayKind::kUniform, 5));
    std::unique_ptr<core::DistributedController> dist;
    std::unique_ptr<core::IController> ctrl;
    if (impl == 0) {
      ctrl = std::make_unique<core::TrivialController>(f.tree, 1u << 20);
    } else if (impl == 1) {
      ctrl = std::make_unique<core::IteratedController>(f.tree, 1u << 20,
                                                        1u << 19, 4096);
    } else {
      dist = std::make_unique<core::DistributedController>(
          net, f.tree, core::Params(1u << 20, 1u << 19, 4096));
      ctrl = std::make_unique<core::DistributedSyncFacade>(queue, *dist);
    }
    stats = workload::replay(f.script, *ctrl, f.tree);
    EXPECT_EQ(stats.skipped, 0u) << "impl " << impl;
    EXPECT_EQ(stats.granted, stats.submitted) << "impl " << impl;
    // Values recorded at fixture-generation time.
    EXPECT_EQ(f.tree.size(), 62u) << "impl " << impl;
    EXPECT_EQ(f.tree.total_ever(), 135u) << "impl " << impl;
    EXPECT_TRUE(tree::validate(f.tree).ok()) << "impl " << impl;
    sizes.push_back(f.tree.size());
  }
  EXPECT_EQ(sizes[0], sizes[1]);
  EXPECT_EQ(sizes[1], sizes[2]);
}

TEST(Fixtures, Caterpillar48UnderTightBudget) {
  // The same fixture with a tight budget: deterministic grant/reject split
  // (a change here means controller behaviour changed — review it!).
  Fixture f("caterpillar48");
  core::IteratedController ctrl(f.tree, /*M=*/60, /*W=*/10, 4096);
  const auto stats = workload::replay(f.script, ctrl, f.tree);
  EXPECT_LE(stats.granted, 60u);
  EXPECT_GE(stats.granted, 50u);
  EXPECT_EQ(stats.granted + stats.rejected + stats.skipped,
            f.script.size());
  EXPECT_TRUE(tree::validate(f.tree).ok());
}

TEST(Fixtures, Path64FlashCrowdReplay) {
  Fixture f("path64");
  EXPECT_EQ(f.tree.size(), 64u);
  EXPECT_EQ(f.script.size(), 200u);
  core::IteratedController ctrl(f.tree, 1u << 20, 1u << 19, 4096);
  const auto stats = workload::replay(f.script, ctrl, f.tree);
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_EQ(stats.granted, stats.submitted);
  // Values recorded at fixture-generation time.
  EXPECT_EQ(f.tree.size(), 50u);
  EXPECT_EQ(f.tree.total_ever(), 157u);
  EXPECT_TRUE(tree::validate(f.tree).ok());
}

}  // namespace
}  // namespace dyncon

// Tests for NCA labels built over the protocol-maintained (approximate)
// heavy-child decomposition: queries stay exact, label lengths stay
// logarithmic even though mu(v) comes from beta-approximate estimates.

#include <gtest/gtest.h>

#include "apps/distributed_nca_labeling.hpp"
#include "util/rng.hpp"
#include "workload/shapes.hpp"

namespace dyncon::apps {
namespace {

using core::Result;
using tree::DynamicTree;

struct Sim {
  sim::EventQueue queue;
  sim::Network net;
  DynamicTree tree;
  Sim() : net(queue, sim::make_delay(sim::DelayKind::kFixed, 1)) {}
};

NodeId true_nca(const DynamicTree& t, NodeId u, NodeId v) {
  std::uint64_t du = t.depth(u), dv = t.depth(v);
  while (du > dv) {
    u = t.parent(u);
    --du;
  }
  while (dv > du) {
    v = t.parent(v);
    --dv;
  }
  while (u != v) {
    u = t.parent(u);
    v = t.parent(v);
  }
  return u;
}

void audit_all_pairs(const DynamicTree& t,
                     const DistributedNcaLabeling& nca) {
  const auto nodes = t.alive_nodes();
  for (NodeId u : nodes) {
    for (NodeId v : nodes) {
      ASSERT_EQ(nca.nca(u, v), true_nca(t, u, v))
          << "pair (" << u << "," << v << ")";
    }
  }
}

TEST(DistNca, CorrectOnAllShapes) {
  for (auto shape : workload::all_shapes()) {
    Sim s;
    Rng rng(1);
    workload::build(s.tree, shape, 40, rng);
    DistributedNcaLabeling nca(s.net, s.tree);
    audit_all_pairs(s.tree, nca);
  }
}

TEST(DistNca, ApproximateDecompositionKeepsLabelsLogarithmic) {
  // The point of the construction: even though mu(v) comes from the
  // protocol's sqrt(3)-approximate estimates, Thm. 5.4's 3/4-weight
  // argument bounds the light depth, and so the label length.
  for (auto shape :
       {workload::Shape::kBinary, workload::Shape::kRandomAttach,
        workload::Shape::kCaterpillar, workload::Shape::kBroom}) {
    Sim s;
    Rng rng(2);
    workload::build(s.tree, shape, 300, rng);
    DistributedNcaLabeling nca(s.net, s.tree);
    EXPECT_LE(nca.max_label_entries(),
              2 * ceil_log2(s.tree.size()) + 2)
        << workload::shape_name(shape);
  }
}

TEST(DistNca, LeafChurnStaysExact) {
  Sim s;
  Rng rng(3);
  workload::build(s.tree, workload::Shape::kRandomAttach, 40, rng);
  DistributedNcaLabeling nca(s.net, s.tree);
  for (int i = 0; i < 300; ++i) {
    if (rng.chance(0.55)) {
      nca.submit_add_leaf(workload::random_node(s.tree, rng),
                          [](const Result&) {});
    } else {
      const auto nodes = s.tree.alive_nodes();
      const NodeId v = nodes[rng.index(nodes.size())];
      if (v != s.tree.root() && s.tree.is_leaf(v)) {
        nca.submit_remove_leaf(v, [](const Result&) {});
      }
    }
    s.queue.run();
    if (i % 30 == 0) audit_all_pairs(s.tree, nca);
  }
  audit_all_pairs(s.tree, nca);
  EXPECT_LE(nca.max_label_entries(),
            2 * ceil_log2(s.tree.size()) + 3);
}

TEST(DistNca, GrowthTriggersRebuilds) {
  Sim s;
  Rng rng(4);
  workload::build(s.tree, workload::Shape::kRandomAttach, 16, rng);
  DistributedNcaLabeling nca(s.net, s.tree);
  const std::uint64_t before = nca.rebuilds();
  for (int i = 0; i < 200; ++i) {
    nca.submit_add_leaf(workload::random_node(s.tree, rng),
                        [](const Result&) {});
    s.queue.run();
  }
  EXPECT_GT(nca.rebuilds(), before);  // 16 -> 216 nodes: several doublings
  audit_all_pairs(s.tree, nca);
}

TEST(DistNca, InternalRemovalRejected) {
  Sim s;
  Rng rng(5);
  workload::build(s.tree, workload::Shape::kPath, 5, rng);
  DistributedNcaLabeling nca(s.net, s.tree);
  EXPECT_THROW(
      nca.submit_remove_leaf(s.tree.alive_nodes()[1], [](const Result&) {}),
      ContractError);
}

}  // namespace
}  // namespace dyncon::apps

// Unit tests for Observation 3.4 (iterated controller) and Observation 2.1
// (terminating transform), centralized versions.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/iterated_controller.hpp"
#include "core/terminating_controller.hpp"
#include "util/rng.hpp"
#include "workload/shapes.hpp"

namespace dyncon::core {
namespace {

using tree::DynamicTree;

TEST(Iterated, GrantsExactlyUpToMThenRejects) {
  Rng rng(1);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 16, rng);
  const std::uint64_t M = 30;
  IteratedController ctrl(t, M, /*W=*/1, /*U=*/64);
  const auto nodes = t.alive_nodes();
  std::uint64_t granted = 0, rejected = 0;
  for (std::uint64_t i = 0; i < 3 * M; ++i) {
    const auto o = ctrl.request_event(nodes[i % nodes.size()]).outcome;
    granted += o == Outcome::kGranted;
    rejected += o == Outcome::kRejected;
  }
  EXPECT_LE(granted, M);
  EXPECT_GE(granted, M - 1);  // W = 1
  EXPECT_EQ(granted + rejected, 3 * M);
}

TEST(Iterated, WZeroGrantsExactlyM) {
  // The W = 0 pipeline must grant *exactly* M permits (trivial (1,0) tail).
  Rng rng(2);
  DynamicTree t;
  workload::build(t, workload::Shape::kPath, 12, rng);
  const std::uint64_t M = 25;
  IteratedController ctrl(t, M, /*W=*/0, /*U=*/32);
  const auto nodes = t.alive_nodes();
  std::uint64_t granted = 0;
  for (std::uint64_t i = 0; i < 4 * M; ++i) {
    granted += ctrl.request_event(nodes[i % nodes.size()]).granted();
  }
  EXPECT_EQ(granted, M);
  EXPECT_EQ(ctrl.permits_granted(), M);
}

TEST(Iterated, IterationCountLogarithmic) {
  // Iterations only advance when an exhausting iteration leaves stranded
  // permits (L > 0), which needs a tree deep enough for creation levels
  // >= 1; a long path provides that.
  Rng rng(3);
  DynamicTree t;
  workload::build(t, workload::Shape::kPath, 200, rng);
  const std::uint64_t M = 1u << 14;
  IteratedController ctrl(t, M, /*W=*/1, /*U=*/256);
  const auto nodes = t.alive_nodes();
  std::uint64_t i = 0;
  while (!ctrl.done()) {
    ctrl.request_event(nodes[i++ % nodes.size()]);
    ASSERT_LT(i, 4 * M);
  }
  // O(log(M / (W+1))) = O(14) iterations; allow generous slack.
  EXPECT_LE(ctrl.iterations(), 20u);
  EXPECT_GE(ctrl.iterations(), 2u);
  EXPECT_GE(ctrl.permits_granted(), M - 1);
}

TEST(Iterated, LargeWIsSingleIteration) {
  DynamicTree t;
  IteratedController ctrl(t, 100, /*W=*/50, /*U=*/16);
  for (int i = 0; i < 10; ++i) ctrl.request_event(t.root());
  EXPECT_EQ(ctrl.iterations(), 1u);
}

TEST(Iterated, TopologicalRequestsAcrossIterations) {
  Rng rng(4);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 8, rng);
  IteratedController ctrl(t, 200, /*W=*/1, /*U=*/512);
  std::uint64_t adds = 0, removes = 0;
  for (int i = 0; i < 300; ++i) {
    const auto nodes = t.alive_nodes();
    const NodeId u = nodes[rng.index(nodes.size())];
    if (rng.chance(0.5)) {
      adds += ctrl.request_add_leaf(u).granted();
    } else if (u != t.root()) {
      removes += ctrl.request_remove(u).granted();
    }
  }
  EXPECT_LE(adds + removes, 200u);
  EXPECT_GE(adds + removes, 199u);
  EXPECT_EQ(t.size(), 8 + adds - removes);
}

TEST(Iterated, SerialsSupportedWhenFinalFromTheStart) {
  DynamicTree t;
  IteratedController::Options opts;
  opts.serials = Interval(1, 10);
  IteratedController ctrl(t, 10, /*W=*/5, /*U=*/8, opts);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10; ++i) {
    const Result r = ctrl.request_event(t.root());
    ASSERT_TRUE(r.granted());
    ASSERT_TRUE(r.serial.has_value());
    seen.insert(*r.serial);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Iterated, SerialsRejectedWithMultipleIterations) {
  DynamicTree t;
  IteratedController::Options opts;
  opts.serials = Interval(1, 1000);
  EXPECT_THROW(IteratedController(t, 1000, 1, 8, opts), ContractError);
}

TEST(Terminating, NeverRejectsAndTerminates) {
  Rng rng(5);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 16, rng);
  const std::uint64_t M = 40, W = 10;
  TerminatingController ctrl(t, M, W, /*U=*/64);
  const auto nodes = t.alive_nodes();
  std::uint64_t granted = 0;
  for (std::uint64_t i = 0; i < 4 * M; ++i) {
    const auto o = ctrl.request_event(nodes[i % nodes.size()]).outcome;
    EXPECT_NE(o, Outcome::kRejected);
    granted += o == Outcome::kGranted;
  }
  EXPECT_TRUE(ctrl.terminated());
  // Observation 2.1: at termination, M - W <= granted <= M.
  EXPECT_GE(granted, M - W);
  EXPECT_LE(granted, M);
}

TEST(Terminating, TerminateNowFreezes) {
  DynamicTree t;
  TerminatingController ctrl(t, 100, 50, 16);
  ASSERT_TRUE(ctrl.request_event(t.root()).granted());
  const std::uint64_t cost_before = ctrl.cost();
  ctrl.terminate_now();
  EXPECT_TRUE(ctrl.terminated());
  EXPECT_GT(ctrl.cost(), cost_before);  // broadcast/upcast charged
  EXPECT_EQ(ctrl.request_event(t.root()).outcome, Outcome::kTerminated);
  EXPECT_EQ(ctrl.permits_granted(), 1u);
}

using BandCase = std::tuple<std::uint64_t /*M*/, std::uint64_t /*W*/>;

class TerminatingBand : public ::testing::TestWithParam<BandCase> {};

TEST_P(TerminatingBand, GrantCountLandsInBand) {
  const auto [M, W] = GetParam();
  Rng rng(M * 31 + W);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 24, rng);
  TerminatingController ctrl(t, M, W, /*U=*/1024);
  const auto nodes = t.alive_nodes();
  std::uint64_t granted = 0, i = 0;
  while (!ctrl.terminated() && i < 6 * M + 100) {
    granted += ctrl.request_event(nodes[i++ % nodes.size()]).granted();
  }
  ASSERT_TRUE(ctrl.terminated()) << "never terminated";
  EXPECT_GE(granted, M - W);
  EXPECT_LE(granted, M);
}

INSTANTIATE_TEST_SUITE_P(
    Bands, TerminatingBand,
    ::testing::Values(BandCase{1, 1}, BandCase{2, 1}, BandCase{10, 1},
                      BandCase{10, 5}, BandCase{64, 1}, BandCase{64, 16},
                      BandCase{64, 63}, BandCase{200, 50},
                      BandCase{333, 7}),
    [](const ::testing::TestParamInfo<BandCase>& info) {
      return "M" + std::to_string(std::get<0>(info.param)) + "_W" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Terminating, GrantsAllWhenDemandBelowM) {
  DynamicTree t;
  TerminatingController ctrl(t, 1000, 10, 8);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(ctrl.request_event(t.root()).granted());
  }
  EXPECT_FALSE(ctrl.terminated());
}

}  // namespace
}  // namespace dyncon::core

// Systematic contract coverage: every public precondition (DYNCON_REQUIRE)
// must fire as ContractError on misuse, and never on correct use.  API
// misuse must be loud, not undefined.

#include <gtest/gtest.h>

#include "apps/size_estimation.hpp"
#include "core/distributed_controller.hpp"
#include "core/iterated_controller.hpp"
#include "core/message_meter.hpp"
#include "util/rng.hpp"
#include "workload/shapes.hpp"

namespace dyncon {
namespace {

using core::CentralizedController;
using core::Params;
using tree::DynamicTree;

TEST(Contracts, TreeApi) {
  DynamicTree t;
  const NodeId a = t.add_leaf(t.root());
  EXPECT_THROW(t.add_leaf(999), ContractError);
  EXPECT_THROW(t.remove_leaf(t.root()), ContractError);
  EXPECT_THROW(t.remove_internal(a), ContractError);  // a is a leaf
  EXPECT_THROW(t.add_internal_above(t.root()), ContractError);
  EXPECT_THROW(t.remove_node(t.root()), ContractError);
  EXPECT_THROW((void)t.parent(999), ContractError);
  EXPECT_THROW((void)t.depth(999), ContractError);
  EXPECT_THROW((void)t.ancestor_at(a, 5), ContractError);
  EXPECT_THROW(t.add_observer(nullptr), ContractError);
  t.remove_leaf(a);
  EXPECT_THROW(t.remove_leaf(a), ContractError);  // already dead
}

TEST(Contracts, ParamsApi) {
  EXPECT_THROW(Params(0, 1, 1), ContractError);
  EXPECT_THROW(Params(1, 0, 1), ContractError);
  EXPECT_THROW(Params(1, 1, 0), ContractError);
  const Params p(10, 5, 8);
  EXPECT_THROW((void)p.mobile_size(p.max_level() + 1), ContractError);
  EXPECT_THROW((void)p.level_of_size(3), ContractError);
  EXPECT_THROW((void)p.with_psi_scale(0, 1), ContractError);
  EXPECT_THROW((void)p.with_psi_scale(1, 0), ContractError);
}

TEST(Contracts, ControllerApi) {
  Rng rng(1);
  DynamicTree t;
  workload::build(t, workload::Shape::kPath, 4, rng);
  CentralizedController ctrl(t, Params(10, 5, 8));
  const NodeId leaf = t.alive_nodes().back();
  EXPECT_THROW(ctrl.request_event(12345), ContractError);
  EXPECT_THROW(ctrl.request_remove(t.root()), ContractError);
  EXPECT_THROW(ctrl.request_add_internal_above(t.root()), ContractError);
  EXPECT_THROW(ctrl.request_add_leaf(12345), ContractError);
  ASSERT_TRUE(ctrl.request_remove(leaf).granted());
  EXPECT_THROW(ctrl.request_event(leaf), ContractError);  // dead node
}

TEST(Contracts, SerialIntervalMustMatchM) {
  DynamicTree t;
  CentralizedController::Options opts;
  opts.serials = Interval(1, 7);  // 7 serials for M = 10
  EXPECT_THROW(CentralizedController(t, Params(10, 5, 8), opts),
               ContractError);
}

TEST(Contracts, DistributedApi) {
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kFixed, 1));
  DynamicTree t;
  core::DistributedController ctrl(net, t, Params(10, 5, 8));
  EXPECT_THROW(ctrl.submit_event(999, [](const core::Result&) {}),
               ContractError);
  EXPECT_THROW(ctrl.submit_remove(t.root(), [](const core::Result&) {}),
               ContractError);
  EXPECT_THROW(
      ctrl.submit_add_internal_above(t.root(), [](const core::Result&) {}),
      ContractError);
  EXPECT_THROW(ctrl.submit_event(t.root(), nullptr), ContractError);
}

TEST(Contracts, AppsApi) {
  Rng rng(2);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 8, rng);
  EXPECT_THROW(apps::SizeEstimation(t, 1.0), ContractError);
  apps::SizeEstimation est(t, 2.0);
  EXPECT_THROW(est.request_remove(t.root()), ContractError);
}

TEST(Contracts, MeterApi) {
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kFixed, 1));
  DynamicTree t;
  core::IteratedController ctrl(t, 5, 1, 2);
  core::MessageMeter meter(ctrl, net);
  EXPECT_THROW(meter.send(t.root(), t.root(), 8, nullptr), ContractError);
}

TEST(Contracts, InvariantAndContractAreDistinct) {
  // Misuse is ContractError; internal breakage is InvariantError — callers
  // can catch the former without masking bugs.
  static_assert(!std::is_base_of_v<InvariantError, ContractError>);
  static_assert(!std::is_base_of_v<ContractError, InvariantError>);
  EXPECT_THROW(
      []() { DYNCON_REQUIRE(false, "nope"); }(), ContractError);
  EXPECT_THROW(
      []() { DYNCON_INVARIANT(false, "broken"); }(), InvariantError);
}

}  // namespace
}  // namespace dyncon

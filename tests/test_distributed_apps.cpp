// Tests for the fully distributed applications: size estimation over the
// asynchronous simulator and the two-phase commit round.

#include <gtest/gtest.h>

#include "apps/distributed_heavy_child.hpp"
#include "apps/distributed_name_assignment.hpp"
#include "apps/distributed_size_estimation.hpp"
#include "apps/two_phase_commit.hpp"
#include "tree/validate.hpp"
#include "util/rng.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

namespace dyncon::apps {
namespace {

using core::Outcome;
using core::RequestSpec;
using core::Result;

struct Sim {
  sim::EventQueue queue;
  sim::Network net;
  tree::DynamicTree tree;

  explicit Sim(sim::DelayKind kind = sim::DelayKind::kFixed,
               std::uint64_t seed = 1)
      : net(queue, sim::make_delay(kind, seed)) {}
};

TEST(DistSizeEstimation, BetaInvariantUnderSerializedChurn) {
  Sim s;
  Rng rng(1);
  workload::build(s.tree, workload::Shape::kRandomAttach, 64, rng);
  const double beta = 2.0;
  DistributedSizeEstimation est(s.net, s.tree, beta);
  workload::ChurnGenerator churn(workload::ChurnModel::kBirthDeath, Rng(2));
  for (int i = 0; i < 400; ++i) {
    if (s.tree.size() < 4) break;
    const auto spec = churn.next(s.tree);
    bool fired = false;
    est.submit(spec, [&](const Result& r) {
      fired = true;
      EXPECT_TRUE(r.granted());
    });
    s.queue.run();
    ASSERT_TRUE(fired);
    const double n = static_cast<double>(s.tree.size());
    const double e = static_cast<double>(est.estimate());
    ASSERT_GE(e * beta + 1e-9, n) << "step " << i;
    ASSERT_LE(e, beta * n + 1e-9) << "step " << i;
  }
  EXPECT_GE(est.iterations(), 2u);
}

TEST(DistSizeEstimation, ConcurrentBurstsStayInBand) {
  for (auto kind : {sim::DelayKind::kFixed, sim::DelayKind::kUniform,
                    sim::DelayKind::kHeavyTail}) {
    Sim s(kind, 31);
    Rng rng(3);
    workload::build(s.tree, workload::Shape::kRandomAttach, 48, rng);
    const double beta = 2.0;
    DistributedSizeEstimation est(s.net, s.tree, beta);
    workload::ChurnGenerator churn(workload::ChurnModel::kFlashCrowd,
                                   Rng(5));
    int answered = 0;
    for (int burst = 0; burst < 40; ++burst) {
      for (int i = 0; i < 5; ++i) {
        est.submit(churn.next(s.tree),
                   [&](const Result&) { ++answered; });
      }
      s.queue.run();
      const double n = static_cast<double>(s.tree.size());
      const double e = static_cast<double>(est.estimate());
      ASSERT_GE(e * beta + 1e-9, n)
          << sim::delay_kind_name(kind) << " burst " << burst;
      ASSERT_LE(e, beta * n + 1e-9)
          << sim::delay_kind_name(kind) << " burst " << burst;
      ASSERT_TRUE(tree::validate(s.tree).ok());
    }
    EXPECT_EQ(answered, 200) << sim::delay_kind_name(kind);
  }
}

TEST(DistSizeEstimation, RejectsNonTopologicalRequests) {
  Sim s;
  DistributedSizeEstimation est(s.net, s.tree, 2.0);
  EXPECT_THROW(est.submit(RequestSpec{RequestSpec::Type::kEvent, 0},
                          [](const Result&) {}),
               ContractError);
}

TEST(DistSizeEstimation, MessagesAmortizePolylog) {
  Sim s;
  Rng rng(7);
  workload::build(s.tree, workload::Shape::kRandomAttach, 256, rng);
  DistributedSizeEstimation est(s.net, s.tree, 2.0);
  workload::ChurnGenerator churn(workload::ChurnModel::kBirthDeath, Rng(9));
  const int steps = 600;
  for (int i = 0; i < steps; ++i) {
    est.submit(churn.next(s.tree), [](const Result&) {});
    if (i % 8 == 7) s.queue.run();
  }
  s.queue.run();
  const double per = static_cast<double>(est.messages()) / steps;
  EXPECT_LT(per, static_cast<double>(s.tree.size()) / 2.0)
      << "no better than flooding";
}

TEST(TwoPhaseCommit, UnanimousYesCommitsEverywhere) {
  Sim s;
  Rng rng(11);
  workload::build(s.tree, workload::Shape::kRandomAttach, 40, rng);
  TwoPhaseCommit tpc(s.net, s.tree, 1.3);
  for (NodeId v : s.tree.alive_nodes()) tpc.set_vote(v, Vote::kYes);
  Decision got = Decision::kAbort;
  bool fired = false;
  tpc.run_round([&](Decision d) {
    got = d;
    fired = true;
  });
  s.queue.run();
  ASSERT_TRUE(fired);
  EXPECT_EQ(got, Decision::kCommit);
  for (NodeId v : s.tree.alive_nodes()) {
    EXPECT_EQ(tpc.decision_at(v), Decision::kCommit);
  }
}

TEST(TwoPhaseCommit, MinorityYesAborts) {
  Sim s;
  Rng rng(13);
  workload::build(s.tree, workload::Shape::kRandomAttach, 40, rng);
  TwoPhaseCommit tpc(s.net, s.tree, 1.3);
  const auto nodes = s.tree.alive_nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    tpc.set_vote(nodes[i], i % 3 == 0 ? Vote::kYes : Vote::kNo);
  }
  Decision got = Decision::kCommit;
  tpc.run_round([&](Decision d) { got = d; });
  s.queue.run();
  EXPECT_EQ(got, Decision::kAbort);
}

TEST(TwoPhaseCommit, SoundUnderChurn) {
  // Across churn + voting rounds: every COMMIT is backed by a strict
  // majority of the live network at decision time.
  Sim s(sim::DelayKind::kUniform, 17);
  Rng rng(15);
  workload::build(s.tree, workload::Shape::kRandomAttach, 64, rng);
  TwoPhaseCommit tpc(s.net, s.tree, 1.3);
  Rng votes(19);
  std::unordered_map<NodeId, Vote> ballot;
  auto vote_for = [&](NodeId v) {
    const Vote w = votes.chance(0.62) ? Vote::kYes : Vote::kNo;
    ballot[v] = w;
    tpc.set_vote(v, w);
  };
  for (NodeId v : s.tree.alive_nodes()) vote_for(v);

  workload::ChurnGenerator churn(workload::ChurnModel::kBirthDeath, Rng(21));
  for (int round = 0; round < 12; ++round) {
    for (int i = 0; i < 15; ++i) {
      const auto spec = churn.next(s.tree);
      if (spec.type == RequestSpec::Type::kAddLeaf) {
        tpc.submit_add_leaf(spec.subject, [&](const Result& r) {
          if (r.granted()) vote_for(r.new_node);
        });
      } else if (spec.type == RequestSpec::Type::kRemove) {
        tpc.submit_remove(spec.subject, [](const Result&) {});
      }
    }
    s.queue.run();  // quiesce before the round

    Decision got = Decision::kAbort;
    bool fired = false;
    tpc.run_round([&](Decision d) {
      got = d;
      fired = true;
    });
    s.queue.run();
    ASSERT_TRUE(fired);
    if (got == Decision::kCommit) {
      std::uint64_t yes = 0;
      for (NodeId v : s.tree.alive_nodes()) {
        auto it = ballot.find(v);
        yes += it != ballot.end() && it->second == Vote::kYes;
      }
      EXPECT_GT(2 * yes, s.tree.size()) << "commit without a majority";
    }
  }
  EXPECT_EQ(tpc.rounds(), 12u);
}

TEST(TwoPhaseCommit, RejectsUnsoundBeta) {
  Sim s;
  EXPECT_THROW(TwoPhaseCommit(s.net, s.tree, 1.5), ContractError);
}

TEST(DistNameAssignment, InitialIdsDenseUnique) {
  Sim s;
  Rng rng(23);
  workload::build(s.tree, workload::Shape::kRandomAttach, 50, rng);
  DistributedNameAssignment names(s.net, s.tree);
  EXPECT_TRUE(names.ids_unique());
  EXPECT_LE(names.max_id(), 50u);
}

TEST(DistNameAssignment, InvariantsUnderSerializedChurn) {
  Sim s;
  Rng rng(25);
  workload::build(s.tree, workload::Shape::kRandomAttach, 32, rng);
  DistributedNameAssignment names(s.net, s.tree);
  workload::ChurnGenerator churn(workload::ChurnModel::kInternalChurn,
                                 Rng(27));
  for (int i = 0; i < 300; ++i) {
    if (s.tree.size() < 4) break;
    names.submit(churn.next(s.tree), [](const Result&) {});
    s.queue.run();
    ASSERT_TRUE(names.ids_unique()) << "step " << i;
    ASSERT_LE(names.max_id(), 4 * s.tree.size()) << "step " << i;
  }
  EXPECT_GE(names.iterations(), 2u);
}

TEST(DistNameAssignment, InvariantsUnderConcurrentBursts) {
  Sim s(sim::DelayKind::kUniform, 41);
  Rng rng(29);
  workload::build(s.tree, workload::Shape::kRandomAttach, 32, rng);
  DistributedNameAssignment names(s.net, s.tree);
  workload::ChurnGenerator churn(workload::ChurnModel::kBirthDeath, Rng(31));
  int answered = 0;
  for (int burst = 0; burst < 40; ++burst) {
    for (int i = 0; i < 5; ++i) {
      names.submit(churn.next(s.tree), [&](const Result&) { ++answered; });
    }
    s.queue.run();
    ASSERT_TRUE(names.ids_unique()) << "burst " << burst;
    ASSERT_LE(names.max_id(), 4 * s.tree.size()) << "burst " << burst;
  }
  EXPECT_EQ(answered, 200);
}

TEST(DistSubtreeEstimator, BaselineExactAtIterationStart) {
  Sim s;
  Rng rng(51);
  workload::build(s.tree, workload::Shape::kRandomAttach, 48, rng);
  DistributedSubtreeEstimator est(s.net, s.tree, 2.0);
  for (NodeId v : s.tree.alive_nodes()) {
    EXPECT_EQ(est.estimate(v), est.true_super_weight(v));
  }
  EXPECT_EQ(est.estimate(s.tree.root()), 48u);
}

TEST(DistSubtreeEstimator, RootCoversSuperWeightUnderChurn) {
  Sim s;
  Rng rng(53);
  workload::build(s.tree, workload::Shape::kRandomAttach, 64, rng);
  DistributedSubtreeEstimator est(s.net, s.tree, 2.0);
  workload::ChurnGenerator churn(workload::ChurnModel::kBirthDeath, Rng(55));
  for (int i = 0; i < 250; ++i) {
    est.submit(churn.next(s.tree), [](const Result&) {});
    if (i % 5 == 4) s.queue.run();
  }
  s.queue.run();
  const double sw =
      static_cast<double>(est.true_super_weight(s.tree.root()));
  const double e = static_cast<double>(est.estimate(s.tree.root()));
  EXPECT_GE(e * 2.0 + 1e-9, sw);
  EXPECT_LE(e, 2.0 * sw + 1e-9);
}

TEST(DistHeavyChild, LogLightAncestorsUnderAsyncChurn) {
  Sim s(sim::DelayKind::kUniform, 57);
  Rng rng(59);
  workload::build(s.tree, workload::Shape::kRandomAttach, 64, rng);
  DistributedHeavyChild hc(s.net, s.tree);
  workload::ChurnGenerator churn(workload::ChurnModel::kInternalChurn,
                                 Rng(61));
  for (int burst = 0; burst < 50; ++burst) {
    for (int i = 0; i < 4; ++i) {
      if (s.tree.size() < 4) break;
      hc.submit(churn.next(s.tree), [](const Result&) {});
    }
    s.queue.run();
    const std::uint64_t bound =
        4 * (ceil_log2(std::max<std::uint64_t>(s.tree.size(), 2)) + 1);
    ASSERT_LE(hc.max_light_ancestors(), bound) << "burst " << burst;
  }
}

TEST(DistHeavyChild, PointersValidAfterChurn) {
  Sim s;
  Rng rng(63);
  workload::build(s.tree, workload::Shape::kCaterpillar, 40, rng);
  DistributedHeavyChild hc(s.net, s.tree);
  workload::ChurnGenerator churn(workload::ChurnModel::kBirthDeath, Rng(65));
  for (int i = 0; i < 150; ++i) {
    hc.submit(churn.next(s.tree), [](const Result&) {});
    s.queue.run();
  }
  for (NodeId v : s.tree.alive_nodes()) {
    if (s.tree.is_leaf(v)) {
      EXPECT_EQ(hc.heavy(v), kNoNode);
    } else {
      const NodeId h = hc.heavy(v);
      ASSERT_NE(h, kNoNode);
      EXPECT_EQ(s.tree.parent(h), v);
    }
  }
}

TEST(DistNameAssignment, NewNodesNamedFromSerialRange) {
  Sim s;
  Rng rng(33);
  workload::build(s.tree, workload::Shape::kRandomAttach, 20, rng);
  DistributedNameAssignment names(s.net, s.tree);
  NodeId joined = kNoNode;
  names.submit_add_leaf(s.tree.root(), [&](const Result& r) {
    ASSERT_TRUE(r.granted());
    joined = r.new_node;
  });
  s.queue.run();
  ASSERT_NE(joined, kNoNode);
  EXPECT_GT(names.id_of(joined), 20u);   // serial range starts above N_i
  EXPECT_LE(names.id_of(joined), 30u);   // and ends at 3N_i/2
}

}  // namespace
}  // namespace dyncon::apps

// Crash faults and recovery (PROTOCOL.md §9): the CrashSchedule's pure-
// function determinism contract, the durable-whiteboard codec (encode →
// decode identity plus the Claim 4.8 size bound), the orphan-lock release
// wave for doomed holders, journal-backed restarts, wrapper redrives, and
// byte-identity of crashy runs under a fixed seed.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "agent/durable.hpp"
#include "core/distributed_controller.hpp"
#include "core/distributed_iterated.hpp"
#include "obs/metrics.hpp"
#include "sim/channel.hpp"
#include "sim/crash.hpp"
#include "sim/fault.hpp"
#include "sim/watchdog.hpp"
#include "util/rng.hpp"
#include "workload/shapes.hpp"

namespace dyncon::core {
namespace {

using tree::DynamicTree;

// ---- schedule ---------------------------------------------------------------

TEST(CrashSchedule, IsAPureFunctionOfNodeAndTime) {
  // Same seed, two instances: every query agrees — the schedule draws no
  // RNG after construction, so consulting it can never perturb a run.
  sim::CrashSchedule a(Rng(42), 0.5, 128, 16);
  sim::CrashSchedule b(Rng(42), 0.5, 128, 16);
  bool any_prone = false, any_immune = false;
  for (NodeId v = 0; v < 64; ++v) {
    ASSERT_EQ(a.crash_prone(v), b.crash_prone(v));
    any_prone |= a.crash_prone(v);
    any_immune |= !a.crash_prone(v);
    for (SimTime t = 0; t < 1024; t += 7) {
      ASSERT_EQ(a.down(v, t), b.down(v, t));
      ASSERT_EQ(a.down_for(v, t), b.down_for(v, t));
    }
  }
  // fraction=0.5 over 64 nodes: both classes must be inhabited or the
  // marking hash is broken.
  EXPECT_TRUE(any_prone);
  EXPECT_TRUE(any_immune);
}

TEST(CrashSchedule, WarmupWindowsAndImmunity) {
  sim::CrashSchedule s(Rng(7), 1.0, 100, 20);
  s.set_immune(0);
  EXPECT_FALSE(s.crash_prone(0));
  for (NodeId v = 1; v < 8; ++v) {
    ASSERT_TRUE(s.crash_prone(v));
    // Warmup: no node is ever down before one full period has elapsed, so
    // t=0 setup never runs against a dead node.
    for (SimTime t = 0; t < 100; ++t) ASSERT_FALSE(s.down(v, t));
    const std::vector<SimTime> wins = s.windows(v, 2000);
    ASSERT_FALSE(wins.empty());
    for (SimTime w : wins) {
      EXPECT_GE(w, s.period());
      EXPECT_TRUE(s.down(v, w));
      EXPECT_EQ(s.down_for(v, w), s.down_len());
      EXPECT_FALSE(s.down(v, w - 1));
      EXPECT_FALSE(s.down(v, w + s.down_len()));
    }
  }
  // Nodes at or past the limit were born after the adversary was fixed
  // and never crash.
  sim::CrashSchedule lim(Rng(7), 1.0, 100, 20);
  lim.set_limit(4);
  EXPECT_TRUE(lim.crash_prone(3));
  EXPECT_FALSE(lim.crash_prone(4));
  EXPECT_FALSE(lim.crash_prone(900));
  // The default-constructed schedule is crash-free.
  EXPECT_TRUE(sim::CrashSchedule().crash_free());
  EXPECT_FALSE(s.crash_free());
}

// ---- durable codec (satellite: snapshot property test) ----------------------

agent::BoardSnapshot random_snapshot(Rng& rng, std::uint64_t n) {
  agent::BoardSnapshot b;
  b.locked = rng.index(2) == 0;
  if (b.locked) b.locked_by = rng.index(1u << 20);
  b.flooded = rng.index(2) == 0;
  b.down_child = rng.index(3) == 0 ? kNoNode : NodeId{rng.index(n)};
  const std::size_t waiters = rng.index(6);
  for (std::size_t i = 0; i < waiters; ++i) {
    agent::ParkedAgent p;
    p.agent = rng.index(1u << 20);
    p.came_from = rng.index(4) == 0 ? kNoNode : NodeId{rng.index(n)};
    p.origin = rng.index(n);
    p.distance = rng.index(n + 1);  // <= n: a path can span the whole tree
    p.phase = static_cast<std::uint8_t>(rng.index(7));
    p.req_type = static_cast<std::uint8_t>(rng.index(4));
    p.req_subject = rng.index(n);
    b.queue.push_back(p);
  }
  return b;
}

TEST(DurableBoard, SnapshotRoundTripProperty) {
  // decode(encode(b)) == b for randomized snapshots, and the BitCounter
  // mirror predicts the exact encoded size.
  Rng rng(2026);
  for (int iter = 0; iter < 500; ++iter) {
    const std::uint64_t n = 2 + rng.index(500);
    const agent::BoardSnapshot b = random_snapshot(rng, n);
    const sim::Encoded e = agent::encode_board(b);
    ASSERT_EQ(agent::board_snapshot_bits(b), e.bits);
    ASSERT_EQ(agent::decode_board(e), b);
  }
}

TEST(DurableBoard, EncodedSizeStaysWithinClaim48Budget) {
  // Claim 4.8 charges O(log N) bits per parked agent; the serialized
  // journal entry must stay inside the accounting budget derived from the
  // same model whenever every node reference is < n and distance <= n.
  Rng rng(4711);
  for (int iter = 0; iter < 500; ++iter) {
    const std::uint64_t n = 2 + rng.index(2000);
    const agent::BoardSnapshot b = random_snapshot(rng, n);
    const sim::Encoded e = agent::encode_board(b);
    EXPECT_LE(e.bits, agent::board_snapshot_budget_bits(b, n))
        << "n=" << n << " waiters=" << b.queue.size();
  }
}

TEST(DurableBoard, EmptyBoardEncodesToAConstant) {
  const sim::Encoded e = agent::encode_board(agent::BoardSnapshot{});
  EXPECT_EQ(agent::decode_board(e), agent::BoardSnapshot{});
  // A blank board's journal entry is O(1) bits — restarts of idle nodes
  // are near-free.
  EXPECT_LE(e.bits, 32u);
}

// ---- orphan-lock release wave ----------------------------------------------

TEST(CrashRecovery, OrphanLockReleaseWaveFreesADoomedHolder) {
  // A deep chain; the agent locks its origin and climbs.  Crash the origin
  // while the agent is in flight above it: the holder is doomed, and the
  // release wave must reclaim its locks and fail the request so a later
  // request sails through.
  obs::Registry reg;
  obs::ScopedMetrics scope(reg);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kFixed, 1));
  DynamicTree t;
  NodeId tip = t.root();
  for (int i = 0; i < 7; ++i) tip = t.add_leaf(tip);

  const std::uint64_t M = 8, W = 2;
  DistributedController ctrl(net, t, Params(M, W, 64));
  Result first;
  bool first_done = false;
  ctrl.submit_event(tip, [&](const Result& r) {
    first = r;
    first_done = true;
  });
  // Step until the agent has hopped twice: it now holds the locks at the
  // origin and its parent and is in flight toward the grandparent.
  while (!queue.empty() && net.stats().kind(sim::MsgKind::kAgent) < 2) {
    queue.step();
  }
  ASSERT_EQ(net.stats().kind(sim::MsgKind::kAgent), 2u);
  ASSERT_FALSE(first_done);

  ctrl.on_crash(tip);  // volatile: board wiped, holder doomed
  EXPECT_EQ(ctrl.doomed_holders(), 1u);
  EXPECT_TRUE(ctrl.crash_recover());  // the release wave acts
  EXPECT_EQ(ctrl.doomed_holders(), 0u);
  queue.run();

  ASSERT_TRUE(first_done);
  EXPECT_EQ(first.outcome, Outcome::kRejected);
  EXPECT_TRUE(first.crash_failed);
  EXPECT_EQ(reg.counter("crash.holders_doomed"), 1u);
  EXPECT_EQ(reg.counter("crash.agents_killed"), 1u);
  EXPECT_EQ(reg.counter("crash.requests_failed"), 1u);
  EXPECT_EQ(reg.counter("recovery.release_waves"), 1u);
  // The parent's lock was the orphan (the origin's own lock evaporated
  // with the board).
  EXPECT_EQ(reg.counter("recovery.orphan_locks_released"), 1u);
  // The killed agent's in-flight hop landed after the kill and was
  // dropped as stale instead of tripping the unknown-agent invariant.
  EXPECT_EQ(reg.counter("crash.stale_arrivals"), 1u);

  // Every lock is free again: a fresh request at the same origin succeeds.
  Result second;
  bool second_done = false;
  ctrl.submit_event(tip, [&](const Result& r) {
    second = r;
    second_done = true;
  });
  queue.run();
  ASSERT_TRUE(second_done);
  EXPECT_EQ(second.outcome, Outcome::kGranted);
  EXPECT_EQ(ctrl.active_agents(), 0u);
  // The doomed request consumed nothing: conservation holds.
  EXPECT_EQ(ctrl.permits_granted() + ctrl.unused_permits(), M);
}

// ---- durable journal --------------------------------------------------------

TEST(CrashRecovery, DurableJournalRestoresBoardsAcrossOutages) {
  obs::Registry reg;
  obs::ScopedMetrics scope(reg);
  Rng rng(11);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kUniform, 12));
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 24, rng);

  sim::CrashSchedule sch(Rng(13), 0.4, 256, 32);
  sch.set_limit(24);
  sch.set_immune(t.root());
  auto sched = std::make_shared<const sim::CrashSchedule>(sch);
  net.set_fault_policy(sim::make_crash_stack(nullptr, sched));
  net.enable_reliability();
  sim::CrashDriver crashes(queue, sched);
  sim::Watchdog wd(queue, 20'000'000);

  const std::uint64_t M = 40, W = 8;
  DistributedController::Options opts;
  opts.watchdog = &wd;
  opts.crashes = &crashes;
  opts.durability = agent::Durability::kDurable;
  opts.meter_persistence = true;
  DistributedController ctrl(net, t, Params(M, W, 256), opts);
  crashes.start(24, SimTime{1} << 15);

  const auto nodes = t.alive_nodes();
  std::uint64_t answered = 0, granted = 0, rejected = 0;
  const std::uint64_t requests = 100;
  for (std::uint64_t i = 0; i < requests; ++i) {
    ctrl.submit_event(nodes[rng.index(nodes.size())], [&](const Result& r) {
      ++answered;
      granted += r.granted();
      rejected += r.outcome == Outcome::kRejected;
    });
  }
  queue.run();
  while (wd.run_recovery_sweep() > 0) queue.run();
  wd.verify_idle();

  // Durable boards lose nothing: the full fault-free liveness band holds
  // even though nodes crashed mid-run.
  EXPECT_EQ(answered, requests);
  EXPECT_EQ(granted + rejected, requests);
  EXPECT_LE(granted, M);
  EXPECT_GE(granted, M - W);
  EXPECT_EQ(ctrl.permits_granted() + ctrl.unused_permits(), M);
  EXPECT_EQ(ctrl.active_agents(), 0u);
  EXPECT_EQ(ctrl.doomed_holders(), 0u);
  EXPECT_EQ(net.channel()->in_flight(), 0u);

  // The adversary actually fired, journals were written, and at least one
  // restart went through the decode-verify-reinstall path.
  EXPECT_GT(crashes.crashes(), 0u);
  EXPECT_GE(crashes.crashes(), crashes.restarts());
  ASSERT_NE(ctrl.durable_store(), nullptr);
  EXPECT_GT(ctrl.durable_store()->writes(), 0u);
  EXPECT_GT(ctrl.durable_store()->bits_written(), 0u);
  EXPECT_EQ(reg.counter("crash.node_crashes"), crashes.crashes());
  EXPECT_EQ(reg.counter("crash.node_restarts"), crashes.restarts());
  EXPECT_EQ(reg.counter("recovery.snapshot_writes"),
            ctrl.durable_store()->writes());
  EXPECT_GT(reg.counter("recovery.boards_restored"), 0u);
  // Persistence cost is metered §2.2 traffic when opted in.
  EXPECT_GT(net.stats().kind(sim::MsgKind::kApp), 0u);
}

// ---- wrapper redrive --------------------------------------------------------

TEST(CrashRecovery, IteratedWrapperRedrivesCrashFailedRequests) {
  obs::Registry reg;
  obs::ScopedMetrics scope(reg);
  Rng rng(29);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kUniform, 31));
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 24, rng);

  sim::CrashSchedule sch(Rng(37), 0.5, 192, 24);
  sch.set_limit(24);
  sch.set_immune(t.root());
  auto sched = std::make_shared<const sim::CrashSchedule>(sch);
  net.set_fault_policy(sim::make_crash_stack(nullptr, sched));
  net.enable_reliability();
  sim::CrashDriver crashes(queue, sched);
  sim::Watchdog wd(queue, 20'000'000);

  const std::uint64_t M = 48, W = 6;
  DistributedIterated::Options opts;
  opts.watchdog = &wd;
  opts.crashes = &crashes;
  opts.durability = agent::Durability::kVolatile;
  opts.crash_redrives = 3;
  DistributedIterated ctrl(net, t, M, W, 256, opts);
  crashes.start(24, SimTime{1} << 15);

  const auto nodes = t.alive_nodes();
  std::uint64_t answered = 0, granted = 0, surfaced_crash_failures = 0;
  const std::uint64_t requests = 120;
  for (std::uint64_t i = 0; i < requests; ++i) {
    ctrl.submit_event(nodes[rng.index(nodes.size())], [&](const Result& r) {
      ++answered;
      granted += r.granted();
      surfaced_crash_failures += r.crash_failed;
    });
  }
  queue.run();
  while (wd.run_recovery_sweep() > 0) queue.run();
  wd.verify_idle();

  EXPECT_EQ(answered, requests);
  EXPECT_LE(granted, M);
  EXPECT_TRUE(ctrl.quiescent());
  EXPECT_EQ(net.channel()->in_flight(), 0u);
  // Crashes killed agents, and the wrapper re-drove them instead of
  // surfacing the crash rejection (redrives > surfaced failures: the
  // budget of 3 absorbs them).
  EXPECT_GT(reg.counter("crash.agents_killed"), 0u);
  EXPECT_GT(reg.counter("recovery.redrives"), 0u);
  EXPECT_LE(surfaced_crash_failures, reg.counter("recovery.redrives"));
}

// ---- determinism ------------------------------------------------------------

TEST(CrashRecovery, SameSeedIsByteIdentical) {
  // The PR-5/6 contract extended to the crash adversary: the whole crashy
  // run — message counts, per-kind byte counts, crash transitions, grants
  // — is a pure function of the seed.
  struct Fingerprint {
    sim::NetStats stats;
    std::uint64_t granted = 0, messages = 0, crashes = 0, restarts = 0;
    bool operator==(const Fingerprint&) const = default;
  };
  auto run = [](std::uint64_t seed) {
    Rng rng(seed);
    sim::EventQueue queue;
    sim::Network net(queue, sim::make_delay(sim::DelayKind::kReorder,
                                            seed + 1));
    tree::DynamicTree t;
    workload::build(t, workload::Shape::kRandomAttach, 24, rng);
    sim::CrashSchedule sch(Rng(seed + 3), 0.3, 256, 32);
    sch.set_limit(24);
    sch.set_immune(t.root());
    auto sched = std::make_shared<const sim::CrashSchedule>(sch);
    net.set_fault_policy(sim::make_crash_stack(
        sim::make_fault(sim::FaultKind::kChaos, seed + 2), sched));
    net.enable_reliability();
    sim::CrashDriver crashes(queue, sched);
    sim::Watchdog wd(queue, 20'000'000);
    DistributedController::Options opts;
    opts.watchdog = &wd;
    opts.crashes = &crashes;
    DistributedController ctrl(net, t, Params(40, 8, 256), opts);
    crashes.start(24, SimTime{1} << 15);
    const auto nodes = t.alive_nodes();
    for (std::uint64_t i = 0; i < 80; ++i) {
      ctrl.submit_event(nodes[rng.index(nodes.size())],
                        [](const Result&) {});
    }
    queue.run();
    while (wd.run_recovery_sweep() > 0) queue.run();
    wd.verify_idle();
    return Fingerprint{net.stats(), ctrl.permits_granted(),
                       ctrl.messages_used(), crashes.crashes(),
                       crashes.restarts()};
  };
  const Fingerprint a = run(9);
  const Fingerprint b = run(9);
  EXPECT_TRUE(a == b);
  EXPECT_GT(a.crashes, 0u);
}

}  // namespace
}  // namespace dyncon::core

// Chaos soak: the distributed controller, behind the reliable channel,
// survives every fault adversary crossed with every delay adversary —
// safety (granted <= M), liveness (every request answered; granted >=
// M - W once demand exceeds the budget), permit conservation, agent
// drain, domain invariants, and a clean watchdog verdict.
//
// Named ChaosSoak.* so the sanitizer CI job's `-E "Soak"` filter skips it
// (it is the longest-running tier-1 test after the heavy soaks).

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/distributed_controller.hpp"
#include "core/distributed_iterated.hpp"
#include "sim/channel.hpp"
#include "sim/fault.hpp"
#include "sim/watchdog.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workload/shapes.hpp"

namespace dyncon::core {
namespace {

using tree::DynamicTree;

constexpr sim::DelayKind kAllDelays[] = {
    sim::DelayKind::kFixed, sim::DelayKind::kUniform,
    sim::DelayKind::kHeavyTail, sim::DelayKind::kBiased,
    sim::DelayKind::kReorder};

std::string label(sim::FaultKind f, sim::DelayKind d, std::uint64_t seed) {
  return std::string(sim::fault_kind_name(f)) + "/" +
         sim::delay_kind_name(d) + "/seed=" + std::to_string(seed);
}

void soak_one(sim::FaultKind fault, sim::DelayKind delay,
              std::uint64_t seed) {
  SCOPED_TRACE(label(fault, delay, seed));
  Rng rng(seed);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(delay, seed + 1));
  net.set_fault_policy(sim::make_fault(fault, seed + 2));
  net.enable_reliability();
  // Per-request deadline far above any honest completion time; what it
  // must catch is "never", not "slow".
  sim::Watchdog wd(queue, 20'000'000);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 32, rng);

  const std::uint64_t M = 60, W = 10;
  DistributedController::Options opts;
  opts.watchdog = &wd;
  DistributedController ctrl(net, t, Params(M, W, 256), opts);
  const auto nodes = t.alive_nodes();
  std::uint64_t answered = 0, granted = 0, rejected = 0;
  const std::uint64_t requests = 150;
  for (std::uint64_t i = 0; i < requests; ++i) {
    ctrl.submit_event(nodes[rng.index(nodes.size())], [&](const Result& r) {
      ++answered;
      granted += r.granted();
      rejected += r.outcome == Outcome::kRejected;
    });
  }
  queue.run();
  wd.verify_idle();

  // Liveness: every request got a verdict, and the controller used its
  // budget up to the paper's W slack.
  EXPECT_EQ(answered, requests);
  EXPECT_EQ(granted + rejected, requests);
  EXPECT_LE(granted, M);
  EXPECT_GE(granted, M - W);
  // Conservation and drain.
  EXPECT_EQ(ctrl.permits_granted() + ctrl.unused_permits(), M);
  EXPECT_EQ(ctrl.active_agents(), 0u);
  ASSERT_NE(net.channel(), nullptr);
  EXPECT_EQ(net.channel()->in_flight(), 0u);
  ASSERT_NE(ctrl.domains(), nullptr);
  EXPECT_EQ(ctrl.domains()->check_invariants(), "");
  // The fault adversary actually did something (kNone aside) — otherwise
  // this soak is vacuous.
  const sim::FaultStats& fs = net.fault_stats();
  if (fault == sim::FaultKind::kNone) {
    EXPECT_EQ(fs.drops + fs.duplicates + fs.stalls, 0u);
    EXPECT_EQ(net.channel()->stats().retransmits, 0u);
  } else {
    EXPECT_GT(fs.drops + fs.duplicates + fs.stalls, 0u);
  }
}

TEST(ChaosSoak, EveryFaultTimesEveryDelay) {
  // Every grid point is an independent seeded simulation, so the soak
  // fans out across the pool; googletest's EXPECT_* machinery is
  // thread-safe on pthreads platforms.
  std::vector<std::pair<sim::FaultKind, sim::DelayKind>> grid;
  for (const sim::FaultKind fault : sim::all_fault_kinds()) {
    for (const sim::DelayKind delay : kAllDelays) {
      grid.emplace_back(fault, delay);
    }
  }
  util::for_each_index(grid.size(), util::ThreadPool::hardware_jobs(),
                       [&](std::uint64_t i) {
                         soak_one(grid[i].first, grid[i].second, 7);
                       });
}

TEST(ChaosSoak, SeedSweepUnderFullChaos) {
  std::vector<std::pair<sim::DelayKind, std::uint64_t>> grid;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    grid.emplace_back(sim::DelayKind::kReorder, seed);
    grid.emplace_back(sim::DelayKind::kHeavyTail, 100 + seed);
  }
  util::for_each_index(grid.size(), util::ThreadPool::hardware_jobs(),
                       [&](std::uint64_t i) {
                         soak_one(sim::FaultKind::kChaos, grid[i].first,
                                  grid[i].second);
                       });
}

TEST(ChaosSoak, IteratedPipelineSurvivesChaos) {
  // The rotation machinery (drain, broadcast, replay) on a chaos-faulted
  // transport, watched at the wrapper's submit boundary.
  Rng rng(3);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kReorder, 17));
  net.set_fault_policy(sim::make_fault(sim::FaultKind::kChaos, 23));
  net.enable_reliability();
  sim::Watchdog wd(queue, 20'000'000);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 24, rng);

  const std::uint64_t M = 48, W = 6;
  DistributedIterated::Options opts;
  opts.watchdog = &wd;
  DistributedIterated ctrl(net, t, M, W, 256, opts);
  const auto nodes = t.alive_nodes();
  std::uint64_t answered = 0, granted = 0;
  const std::uint64_t requests = 120;
  for (std::uint64_t i = 0; i < requests; ++i) {
    ctrl.submit_event(nodes[rng.index(nodes.size())], [&](const Result& r) {
      ++answered;
      granted += r.granted();
    });
  }
  queue.run();
  wd.verify_idle();
  EXPECT_EQ(answered, requests);
  EXPECT_LE(granted, M);
  EXPECT_GE(granted, M - W);
  EXPECT_TRUE(ctrl.quiescent());
  EXPECT_EQ(net.channel()->in_flight(), 0u);
  EXPECT_EQ(wd.armed_total(), wd.completed_total());
}

TEST(ChaosSoak, WatchdogCatchesAStrandedRequest) {
  // Control experiment: take the channel away and the same chaos strands
  // an agent — the watchdog must convict, proving the soak above is
  // actually guarded.
  Rng rng(3);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kUniform, 17));
  net.set_fault_policy(std::make_unique<sim::DropFault>(Rng(5), 0.5));
  sim::Watchdog wd(queue, 100000);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 24, rng);
  DistributedController::Options opts;
  opts.watchdog = &wd;
  opts.allow_unreliable_transport = true;
  DistributedController ctrl(net, t, Params(40, 8, 128), opts);
  const auto nodes = t.alive_nodes();
  for (int i = 0; i < 20; ++i) {
    ctrl.submit_event(nodes[rng.index(nodes.size())],
                      [](const Result&) {});
  }
  EXPECT_THROW(
      {
        queue.run();
        wd.verify_idle();
      },
      sim::WatchdogError);
  EXPECT_GT(wd.outstanding(), 0u);
}

}  // namespace
}  // namespace dyncon::core

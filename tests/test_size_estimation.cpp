// Tests for the size-estimation protocol (§5.1, Theorem 5.1): the
// beta-approximation invariant under every churn model, iteration
// rotation, and message accounting.

#include <gtest/gtest.h>

#include "apps/size_estimation.hpp"
#include "tree/validate.hpp"
#include "util/rng.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

namespace dyncon::apps {
namespace {

using tree::DynamicTree;
using workload::ChurnGenerator;
using workload::ChurnModel;

void drive_and_check(ChurnModel model, double beta, std::uint64_t n0,
                     int steps, std::uint64_t seed) {
  Rng rng(seed);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, n0, rng);
  SizeEstimation est(t, beta);
  ChurnGenerator churn(model, Rng(seed + 1));
  for (int i = 0; i < steps; ++i) {
    if (t.size() < 4) break;  // keep small-n integer effects out of scope
    const auto spec = churn.next(t);
    core::Result r;
    switch (spec.type) {
      case core::RequestSpec::Type::kAddLeaf:
        r = est.request_add_leaf(spec.subject);
        break;
      case core::RequestSpec::Type::kAddInternal:
        r = est.request_add_internal_above(spec.subject);
        break;
      case core::RequestSpec::Type::kRemove:
        r = est.request_remove(spec.subject);
        break;
      default:
        continue;
    }
    ASSERT_TRUE(r.granted()) << "size estimation must admit churn";
    const double n = static_cast<double>(t.size());
    const double e = static_cast<double>(est.estimate());
    EXPECT_GE(e * beta + 1e-9, n)
        << workload::churn_name(model) << " step " << i;
    EXPECT_LE(e, beta * n + 1e-9)
        << workload::churn_name(model) << " step " << i;
  }
}

TEST(SizeEstimation, BetaTwoGrowOnly) {
  drive_and_check(ChurnModel::kGrowOnly, 2.0, 16, 500, 1);
}

TEST(SizeEstimation, BetaTwoBirthDeath) {
  drive_and_check(ChurnModel::kBirthDeath, 2.0, 32, 500, 2);
}

TEST(SizeEstimation, BetaTwoInternalChurn) {
  drive_and_check(ChurnModel::kInternalChurn, 2.0, 32, 500, 3);
}

TEST(SizeEstimation, BetaTwoFlashCrowd) {
  drive_and_check(ChurnModel::kFlashCrowd, 2.0, 32, 600, 4);
}

TEST(SizeEstimation, BetaTwoShrink) {
  drive_and_check(ChurnModel::kShrink, 2.0, 300, 280, 5);
}

TEST(SizeEstimation, TighterBeta) {
  drive_and_check(ChurnModel::kBirthDeath, 1.3, 128, 400, 6);
}

TEST(SizeEstimation, LooserBeta) {
  drive_and_check(ChurnModel::kInternalChurn, 4.0, 32, 400, 7);
}

TEST(SizeEstimation, IterationsRotate) {
  Rng rng(8);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 16, rng);
  SizeEstimation est(t, 2.0);
  for (int i = 0; i < 300; ++i) {
    const auto nodes = t.alive_nodes();
    ASSERT_TRUE(
        est.request_add_leaf(nodes[rng.index(nodes.size())]).granted());
  }
  EXPECT_GE(est.iterations(), 3u);
  EXPECT_EQ(t.size(), 316u);
}

TEST(SizeEstimation, EstimateEqualsExactAtIterationStart) {
  Rng rng(9);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 64, rng);
  SizeEstimation est(t, 3.0);
  EXPECT_EQ(est.estimate(), 64u);
}

TEST(SizeEstimation, RejectsInvalidBeta) {
  DynamicTree t;
  EXPECT_THROW(SizeEstimation(t, 1.0), ContractError);
  EXPECT_THROW(SizeEstimation(t, 0.5), ContractError);
}

TEST(SizeEstimation, MessageGrowthIsModest) {
  // Amortized O(log^2 n) per change: total messages for k changes from
  // size n should be well below k * n for non-trivial n.
  Rng rng(10);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 256, rng);
  SizeEstimation est(t, 2.0);
  ChurnGenerator churn(ChurnModel::kBirthDeath, Rng(11));
  const int kSteps = 400;
  for (int i = 0; i < kSteps; ++i) {
    const auto spec = churn.next(t);
    if (spec.type == core::RequestSpec::Type::kAddLeaf) {
      est.request_add_leaf(spec.subject);
    } else {
      est.request_remove(spec.subject);
    }
  }
  const double per_change =
      static_cast<double>(est.messages()) / kSteps;
  const double n = static_cast<double>(t.size());
  EXPECT_LT(per_change, n / 2) << "no better than flooding";
}

}  // namespace
}  // namespace dyncon::apps

// Unit tests for the bit-level wire format (sim/wire.hpp): the bit stream
// primitives, the per-variant codecs (exact sizes and random round trips),
// and the measured-size accounting in Network/NetStats.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <memory>
#include <sstream>
#include <vector>

#include "sim/network.hpp"
#include "sim/wire.hpp"
#include "util/log2.hpp"
#include "util/rng.hpp"

namespace dyncon::sim {
namespace {

// ---- bit stream primitives --------------------------------------------------

TEST(BitStream, BitsRoundTripMsbFirst) {
  BitWriter w;
  w.put_bits(0b1011, 4);
  w.put_bit(true);
  w.put_bits(0x1234'5678'9abc'def0ULL, 64);
  const Encoded e = w.finish();
  EXPECT_EQ(e.bits, 4u + 1u + 64u);
  BitReader r(e);
  EXPECT_EQ(r.get_bits(4), 0b1011u);
  EXPECT_TRUE(r.get_bit());
  EXPECT_EQ(r.get_bits(64), 0x1234'5678'9abc'def0ULL);
  EXPECT_TRUE(r.finished());
}

TEST(BitStream, FirstBitIsByteMsb) {
  BitWriter w;
  w.put_bit(true);
  const Encoded e = w.finish();
  ASSERT_EQ(e.bytes.size(), 1u);
  EXPECT_EQ(e.bytes[0], 0x80u);
}

TEST(BitStream, GammaCostMatchesFormula) {
  // Elias-gamma of v encodes v+1: 2*floor(log2(v+1)) + 1 bits.
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 7ull, 100ull, 1ull << 20,
                          (1ull << 62) - 1}) {
    BitWriter w;
    w.put_gamma(v);
    const Encoded e = w.finish();
    EXPECT_EQ(e.bits, 2 * floor_log2(v + 1) + 1) << "v=" << v;
    BitReader r(e);
    EXPECT_EQ(r.get_gamma(), v);
    EXPECT_TRUE(r.finished());
  }
}

TEST(BitStream, GammaRejectsOverflow) {
  BitWriter w;
  EXPECT_THROW(w.put_gamma(std::uint64_t{1} << 62), ContractError);
  EXPECT_THROW(w.put_gamma(kNoNode), ContractError);  // 2^64 - 1
}

TEST(BitStream, VarintCostIsEightBitsPerGroup) {
  const struct {
    std::uint64_t v;
    std::uint64_t bits;
  } cases[] = {{0, 8},        {127, 8},          {128, 16},
               {(1ull << 14) - 1, 16}, {1ull << 14, 24}, {UINT64_MAX, 80}};
  for (const auto& c : cases) {
    BitWriter w;
    w.put_varint(c.v);
    const Encoded e = w.finish();
    EXPECT_EQ(e.bits, c.bits) << "v=" << c.v;
    BitReader r(e);
    EXPECT_EQ(r.get_varint(), c.v);
  }
}

TEST(BitStream, ReaderUnderrunThrows) {
  BitWriter w;
  w.put_bits(3, 2);
  const Encoded e = w.finish();
  BitReader r(e);
  EXPECT_THROW((void)r.get_bits(3), ContractError);
  BitReader r2(e);
  EXPECT_THROW(r2.skip(3), ContractError);
}

TEST(BitStream, MalformedGammaPrefixThrows) {
  BitWriter w;
  w.pad_zeros(64);  // a gamma code may never have 63+ leading zeros
  const Encoded e = w.finish();
  BitReader r(e);
  EXPECT_THROW((void)r.get_gamma(), ContractError);
}

// ---- message codec ----------------------------------------------------------

TEST(Wire, KindNamesAreDefensive) {
  EXPECT_STREQ(msg_kind_name(MsgKind::kAgent), "agent");
  EXPECT_STREQ(msg_kind_name(MsgKind::kReject), "reject");
  EXPECT_STREQ(msg_kind_name(MsgKind::kControl), "control");
  EXPECT_STREQ(msg_kind_name(MsgKind::kDataMove), "datamove");
  EXPECT_STREQ(msg_kind_name(MsgKind::kApp), "app");
  EXPECT_STREQ(msg_kind_name(MsgKind::kKindCount__), "invalid");
  EXPECT_STREQ(msg_kind_name(static_cast<MsgKind>(200)), "invalid");
}

TEST(Wire, KindStreamInsertion) {
  std::ostringstream os;
  os << MsgKind::kControl << " " << static_cast<MsgKind>(9);
  EXPECT_EQ(os.str(), "control invalid(MsgKind=9)");
}

TEST(Wire, VariantIndexMatchesKind) {
  EXPECT_EQ(Message::agent_hop(0, 0, 0, 0, 0, false).kind(), MsgKind::kAgent);
  EXPECT_EQ(Message::reject_wave().kind(), MsgKind::kReject);
  EXPECT_EQ(Message::control(ControlTopic::kRotate, 1).kind(),
            MsgKind::kControl);
  EXPECT_EQ(Message::data_move(1).kind(), MsgKind::kDataMove);
  EXPECT_EQ(Message::app_value(AppTopic::kToken, 1).kind(), MsgKind::kApp);
  EXPECT_EQ(Message::app_payload(16).kind(), MsgKind::kApp);
}

TEST(Wire, RejectWaveIsTagOnly) {
  EXPECT_EQ(Message::reject_wave().measured_bits(), 3u);
}

TEST(Wire, AppPayloadPaysForEveryOpaqueBit) {
  // Growing the opaque payload by k bits grows the wire size by k plus the
  // (logarithmic) growth of the length field: the padding is really paid.
  const auto p1 = Message::app_payload(1).measured_bits();
  const auto p1000 = Message::app_payload(1000).measured_bits();
  EXPECT_GE(p1000, 1000u);
  EXPECT_GE(p1000 - p1, 999u);
  EXPECT_LE(p1000 - p1, 999u + 24u);
}

TEST(Wire, DecodeRejectsUnknownTag) {
  BitWriter w;
  w.put_bits(static_cast<std::uint64_t>(MsgKind::kKindCount__), 3);
  EXPECT_THROW((void)Message::decode(w.finish()), ContractError);
}

TEST(Wire, DecodeRejectsTrailingBits) {
  Encoded e = Message::reject_wave().encode();
  BitWriter w;
  w.put_bits(static_cast<std::uint64_t>(MsgKind::kReject), 3);
  w.put_bit(false);  // one stray bit
  EXPECT_THROW((void)Message::decode(w.finish()), ContractError);
  EXPECT_EQ(Message::decode(e), Message::reject_wave());
}

TEST(Wire, DecodeRejectsTruncation) {
  Encoded e = Message::control(ControlTopic::kUpcast, 12345).encode();
  e.bits -= 4;  // chop the value's tail
  EXPECT_THROW((void)Message::decode(e), ContractError);
}

TEST(Wire, FactoryContracts) {
  EXPECT_THROW(Message::agent_hop(0, 0, 0, 0, /*phase=*/8, false),
               ContractError);
  EXPECT_THROW(Message::app_value(AppTopic::kMetered, 1), ContractError);
}

// Random round trips per variant, with fields up to the N = 2^20 regime the
// complexity tests exercise (and far beyond, for the unbounded id fields).
TEST(Wire, RandomRoundTripEveryVariant) {
  Rng rng(0xa11ce);
  constexpr std::uint64_t kBig = 1ull << 20;
  for (int i = 0; i < 2000; ++i) {
    std::vector<Message> msgs;
    msgs.push_back(Message::agent_hop(
        rng.uniform(0, UINT64_MAX), rng.uniform(0, kBig),
        rng.uniform(0, kBig), static_cast<std::uint32_t>(rng.uniform(0, 63)),
        static_cast<std::uint8_t>(rng.uniform(0, 7)), rng.chance(0.5)));
    msgs.push_back(Message::reject_wave());
    msgs.push_back(Message::control(
        static_cast<ControlTopic>(rng.uniform(0, 3)), rng.uniform(0, kBig)));
    msgs.push_back(Message::data_move(rng.uniform(0, kBig)));
    msgs.push_back(Message::app_value(
        static_cast<AppTopic>(rng.uniform(0, 1)), rng.uniform(0, UINT64_MAX)));
    msgs.push_back(Message::app_payload(rng.uniform(0, 512)));
    for (const Message& m : msgs) {
      const Encoded e = m.encode();
      EXPECT_EQ(e.bits, m.measured_bits());
      EXPECT_EQ(e.bytes.size(), (e.bits + 7) / 8);
      const Message back = Message::decode(e);
      ASSERT_EQ(back, m) << m.str() << " vs " << back.str();
    }
  }
}

// Message sizes must be O(log N) in every field (Lemma 4.5's budget): a
// doubling of the field value adds O(1) bits.
TEST(Wire, SizesAreLogarithmicInFields) {
  std::uint64_t prev = 0;
  for (std::uint32_t p = 1; p <= 40; ++p) {
    const std::uint64_t n = 1ull << p;
    const auto bits =
        Message::agent_hop(n, n, n, 20, 3, true).measured_bits();
    if (p > 1) EXPECT_LE(bits, prev + 16) << "p=" << p;
    prev = bits;
  }
  EXPECT_LE(Message::control(ControlTopic::kBroadcast, 1ull << 40)
                .measured_bits(),
            3u + 2u + (2 * 40 + 1));
}

// ---- NetStats accounting ----------------------------------------------------

struct NetFixture {
  EventQueue q;
  Network net{q, std::make_unique<FixedDelay>(1)};
};

TEST(NetStats, PerKindCountersAndMaxima) {
  NetFixture f;
  const Message hop = Message::agent_hop(3, 9, 9, 2, 1, true);
  const Message ctrl = Message::control(ControlTopic::kUpcast, 1000);
  f.net.send(0, 1, hop, [] {});
  f.net.send(1, 0, ctrl, [] {});
  f.net.send(0, 1, Message::reject_wave(), [] {});
  const NetStats& s = f.net.stats();
  EXPECT_EQ(s.messages, 3u);
  EXPECT_EQ(s.kind(MsgKind::kAgent), 1u);
  EXPECT_EQ(s.kind(MsgKind::kControl), 1u);
  EXPECT_EQ(s.kind(MsgKind::kReject), 1u);
  EXPECT_EQ(s.kind_bits(MsgKind::kAgent), hop.measured_bits());
  EXPECT_EQ(s.kind_max_bits(MsgKind::kControl), ctrl.measured_bits());
  EXPECT_EQ(s.total_bits, hop.measured_bits() + ctrl.measured_bits() + 3);
  EXPECT_EQ(s.max_message_bits,
            std::max(hop.measured_bits(), ctrl.measured_bits()));
#ifndef NDEBUG
  EXPECT_EQ(s.roundtrip_checks, 3u);
#endif
}

TEST(NetStats, ChargeInteractsWithMaxBits) {
  NetFixture f;
  const Message big = Message::data_move(1ull << 30);
  const Message small = Message::data_move(1);
  f.net.charge(big, 2);
  f.net.charge(small, 5);
  f.net.charge(small, 0);  // a no-op, not a crash
  const NetStats& s = f.net.stats();
  EXPECT_EQ(s.messages, 7u);
  EXPECT_EQ(s.kind(MsgKind::kDataMove), 7u);
  EXPECT_EQ(s.max_message_bits, big.measured_bits());
  EXPECT_EQ(s.kind_max_bits(MsgKind::kDataMove), big.measured_bits());
  EXPECT_EQ(s.total_bits,
            2 * big.measured_bits() + 5 * small.measured_bits());
  EXPECT_TRUE(f.q.empty()) << "charge must not schedule deliveries";
}

TEST(NetStats, HistogramBucketsByBitWidth) {
  NetFixture f;
  const Message wave = Message::reject_wave();  // 3 bits -> bucket 2
  f.net.charge(wave, 4);
  const Message pay = Message::app_payload(100);  // >= 100 bits -> bucket 7
  f.net.send(0, 1, pay, [] {});
  const NetStats& s = f.net.stats();
  EXPECT_EQ(s.size_histogram[2], 4u);
  EXPECT_EQ(s.size_histogram[std::bit_width(pay.measured_bits())], 1u);
  EXPECT_EQ(s.size_histogram[0], 0u);
}

TEST(NetStats, ResetClearsEverything) {
  NetFixture f;
  f.net.send(0, 1, Message::reject_wave(), [] {});
  f.net.charge(Message::data_move(7), 3);
  ASSERT_GT(f.net.stats().messages, 0u);
  f.net.reset_stats();
  const NetStats& s = f.net.stats();
  EXPECT_EQ(s.messages, 0u);
  EXPECT_EQ(s.total_bits, 0u);
  EXPECT_EQ(s.max_message_bits, 0u);
  EXPECT_EQ(s.roundtrip_checks, 0u);
  for (std::size_t k = 0; k < NetStats::kKinds; ++k) {
    EXPECT_EQ(s.by_kind[k], 0u);
    EXPECT_EQ(s.bits_by_kind[k], 0u);
    EXPECT_EQ(s.max_bits_by_kind[k], 0u);
  }
  for (const auto b : s.size_histogram) EXPECT_EQ(b, 0u);
}

TEST(NetStats, StrBreaksDownByKind) {
  NetFixture f;
  f.net.send(0, 1, Message::control(ControlTopic::kBroadcast, 5), [] {});
  const std::string s = f.net.stats().str();
  EXPECT_NE(s.find("control"), std::string::npos) << s;
}

// ---- strict envelope + link check -------------------------------------------

TEST(Network, StrictModeAbortsOnOversize) {
  NetFixture f;
  f.net.set_strict_max_bits(16);
  EXPECT_EQ(f.net.strict_max_bits(), 16u);
  f.net.send(0, 1, Message::reject_wave(), [] {});  // 3 bits: fine
  EXPECT_THROW(f.net.send(0, 1, Message::app_payload(64), [] {}),
               InvariantError);
  EXPECT_THROW(f.net.charge(Message::app_payload(64), 1), InvariantError);
  f.net.set_strict_max_bits(0);  // disabled again
  f.net.send(0, 1, Message::app_payload(64), [] {});
}

// ---- size-only encoding path ------------------------------------------------
//
// encoded_bits() (the BitCounter pass used by release-build accounting) must
// agree with encode().bits (the byte-materializing pass) EXACTLY, for every
// message kind, across the full field ranges — one bit of drift and the
// release build charges different sizes than the debug build measures.

// Mixed-magnitude draws: small values and full-width values both matter for
// gamma/varint length boundaries.  Gamma-encoded fields cap at 2^62 - 1.
std::uint64_t fuzz_value(Rng& rng) {
  return rng.next() >> rng.uniform(0, 63);
}
std::uint64_t fuzz_gamma(Rng& rng) {
  return rng.next() >> rng.uniform(2, 63);
}

void expect_size_only_path_matches(const Message& m) {
  const Encoded enc = m.encode();
  EXPECT_EQ(m.encoded_bits(), enc.bits) << m.str();
  // And the round trip still holds, so both passes describe a real message.
  EXPECT_EQ(Message::decode(enc), m) << m.str();
}

TEST(Wire, EncodedBitsMatchesEncodeForEveryKindFuzzed) {
  Rng rng(0xC0DE);
  bool saw_kind[static_cast<std::size_t>(MsgKind::kKindCount__)] = {};
  auto cover = [&saw_kind](const Message& m) {
    saw_kind[static_cast<std::size_t>(m.kind())] = true;
    expect_size_only_path_matches(m);
    return m;
  };
  for (int i = 0; i < 500; ++i) {
    cover(Message::agent_hop(fuzz_value(rng), fuzz_gamma(rng),
                             fuzz_gamma(rng),
                             static_cast<std::uint32_t>(rng.uniform(0, 1u << 20)),
                             static_cast<std::uint8_t>(rng.uniform(0, 7)),
                             rng.chance(0.5)));
    cover(Message::reject_wave());
    cover(Message::control(static_cast<ControlTopic>(rng.uniform(0, 3)),
                           fuzz_gamma(rng)));
    cover(Message::data_move(fuzz_gamma(rng)));
    cover(Message::app_value(static_cast<AppTopic>(rng.uniform(0, 1)),
                             fuzz_value(rng)));
    cover(Message::app_payload(rng.uniform(0, 300)));  // covers kMetered
    // Channel frames: a data frame wrapping a random inner message (the
    // payload is an embedded Encoded, the case put_encoded must count
    // bit-exactly), and a bare cumulative ack.
    const Message inner =
        rng.chance(0.5)
            ? Message::agent_hop(fuzz_value(rng), fuzz_gamma(rng),
                                 fuzz_gamma(rng), 3, 2, true)
            : Message::app_value(AppTopic::kReport, fuzz_value(rng));
    cover(Message::channel_data(fuzz_gamma(rng), inner));
    cover(Message::channel_ack(fuzz_gamma(rng)));
    // Batch frames: 1..5 random non-batch payloads back to back (the count
    // prefix and every per-payload length prefix must count bit-exactly).
    std::vector<Encoded> payloads;
    const std::uint64_t n = rng.uniform(1, 5);
    for (std::uint64_t p = 0; p < n; ++p) {
      payloads.push_back(
          rng.chance(0.5)
              ? Message::agent_hop(fuzz_value(rng), fuzz_gamma(rng),
                                   fuzz_gamma(rng), 1, 1, false)
                    .encode()
              : Message::control(ControlTopic::kBroadcast, fuzz_gamma(rng))
                    .encode());
    }
    cover(Message::batch_frame(std::move(payloads)));
  }
  for (std::size_t k = 0; k < static_cast<std::size_t>(MsgKind::kKindCount__);
       ++k) {
    EXPECT_TRUE(saw_kind[k]) << "kind not fuzzed: "
                             << msg_kind_name(static_cast<MsgKind>(k));
  }
}

#ifndef NDEBUG
TEST(Network, LinkCheckRejectsOffTreeSends) {
  NetFixture f;
  int owner = 0;
  f.net.set_link_check(&owner, [](NodeId from, NodeId to, MsgKind) {
    return from + 1 == to;  // only "adjacent" ids
  });
  f.net.send(4, 5, Message::reject_wave(), [] {});
  EXPECT_THROW(f.net.send(4, 9, Message::reject_wave(), [] {}),
               InvariantError);
  // A different owner must not be able to clear the hook...
  int other = 0;
  f.net.clear_link_check(&other);
  EXPECT_THROW(f.net.send(4, 9, Message::reject_wave(), [] {}),
               InvariantError);
  // ...but the installer can.
  f.net.clear_link_check(&owner);
  f.net.send(4, 9, Message::reject_wave(), [] {});
}
#endif

}  // namespace
}  // namespace dyncon::sim

// Soak tests: long randomized mixed runs with every invariant audited.
// These are the closest thing the controlled model has to failure
// injection — adversarial delays, adversarial shapes, dense concurrent
// churn, periodic full audits.

#include <gtest/gtest.h>

#include "apps/distributed_size_estimation.hpp"
#include "core/distributed_iterated.hpp"
#include "tree/validate.hpp"
#include "util/rng.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

namespace dyncon {
namespace {

using core::Outcome;
using core::RequestSpec;
using core::Result;

class Soak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Soak, DistributedPipelineLongRun) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  sim::EventQueue queue;
  sim::Network net(queue,
                   sim::make_delay(static_cast<sim::DelayKind>(seed % 4),
                                   seed * 31 + 1));
  tree::DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 64, rng);

  const std::uint64_t M = 1200, W = 1;
  core::DistributedIterated ctrl(net, t, M, W, /*U=*/8192);
  workload::ChurnGenerator churn(workload::ChurnModel::kInternalChurn,
                                 Rng(seed * 7 + 5));

  std::uint64_t granted = 0, rejected = 0, moot = 0, answered = 0;
  std::uint64_t submitted = 0;
  const std::uint64_t kSteps = 2000;
  while (submitted < kSteps) {
    const std::uint64_t burst = rng.uniform(1, 12);
    for (std::uint64_t i = 0; i < burst && submitted < kSteps; ++i) {
      ++submitted;
      RequestSpec spec =
          rng.chance(0.3)
              ? RequestSpec{RequestSpec::Type::kEvent,
                            workload::random_node(t, rng)}
              : churn.next(t);
      ctrl.submit(spec, [&](const Result& r) {
        ++answered;
        granted += r.granted();
        rejected += r.outcome == Outcome::kRejected;
        moot += r.outcome == Outcome::kMoot;
      });
    }
    queue.run();
    const auto valid = tree::validate(t);
    ASSERT_TRUE(valid.ok()) << valid.detail;
    if (const auto* inner = ctrl.inner()) {
      ASSERT_EQ(inner->active_agents(), 0u);
      if (const auto* dom = inner->domains()) {
        ASSERT_EQ(dom->check_invariants(), "");
      }
      ASSERT_EQ(inner->permits_granted() + inner->unused_permits(),
                inner->params().M());
    }
  }
  EXPECT_EQ(answered, kSteps);
  EXPECT_EQ(answered, granted + rejected + moot);
  EXPECT_LE(ctrl.permits_granted(), M);
  if (rejected > 0) EXPECT_GE(ctrl.permits_granted(), M - W);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Soak,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(SoakApps, SizeEstimationSurvivesEverything) {
  // One long mixed run of the fully distributed estimator with the
  // invariant checked at every quiescent point.
  Rng rng(77);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kHeavyTail, 79));
  tree::DynamicTree t;
  workload::build(t, workload::Shape::kCaterpillar, 96, rng);
  const double beta = 2.0;
  apps::DistributedSizeEstimation est(net, t, beta);
  workload::ChurnGenerator churn(workload::ChurnModel::kFlashCrowd, Rng(81));
  for (int burst = 0; burst < 150; ++burst) {
    const std::uint64_t width = rng.uniform(1, 6);
    for (std::uint64_t i = 0; i < width; ++i) {
      if (t.size() < 4) break;
      est.submit(churn.next(t), [](const Result&) {});
    }
    queue.run();
    const double n = static_cast<double>(t.size());
    const double e = static_cast<double>(est.estimate());
    ASSERT_GE(e * beta + 1e-9, n) << "burst " << burst;
    ASSERT_LE(e, beta * n + 1e-9) << "burst " << burst;
  }
  EXPECT_GE(est.iterations(), 3u);
}

}  // namespace
}  // namespace dyncon

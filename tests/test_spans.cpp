// Causal span tests: the SpanSink ring and context plumbing, root spans +
// latency histograms from the request mux, hop spans from the network, and
// the forest-level contract that the whole causal record (spans, timeline,
// registry) is byte-identical at any shard count — and that the registry
// itself is identical with spans on or off.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "forest/forest.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/network.hpp"
#include "workload/request_mux.hpp"

namespace dyncon {
namespace {

// ---- sink mechanics ---------------------------------------------------------

TEST(SpanSink, RingBoundsAndCountsEvictions) {
  obs::SpanSink sink(3);
  for (std::uint64_t t = 1; t <= 5; ++t) {
    obs::Span s;
    s.trace = t;
    sink.emit(s);
  }
  EXPECT_EQ(sink.recorded(), 5u);
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.overwritten(), 2u);
  EXPECT_EQ(sink.entries().front().trace, 3u);  // oldest surviving
  EXPECT_EQ(sink.entries().back().trace, 5u);
  sink.add_overwritten(7);  // shard-merge fold-in
  EXPECT_EQ(sink.overwritten(), 9u);
  sink.clear();
  EXPECT_EQ(sink.recorded(), 0u);
  EXPECT_EQ(sink.overwritten(), 0u);
  EXPECT_EQ(sink.size(), 0u);
}

TEST(SpanSink, OpenMintsPerTraceChildIds) {
  obs::SpanSink sink;
  EXPECT_EQ(sink.open(10), 1u);  // children count up from 1; 0 is the root
  EXPECT_EQ(sink.open(10), 2u);
  EXPECT_EQ(sink.open(11), 1u);  // independent per trace
  EXPECT_EQ(sink.open(10), 3u);

  // Minted trace ids live in their own band, never colliding with the
  // mux's dense 1-based request indices.
  const obs::TraceId a = sink.new_trace();
  const obs::TraceId b = sink.new_trace();
  EXPECT_GE(a, obs::kMintedTraceBase);
  EXPECT_EQ(b, a + 1);
}

TEST(SpanSink, JsonOmitsUnsetOptionalFields) {
  obs::SpanSink sink(8);
  obs::Span root;
  root.trace = 1;
  root.kind = obs::SpanKind::kRequest;
  root.begin = 5;
  root.end = 9;
  sink.emit(root);  // no parent, no node/peer, no label
  obs::Span hop;
  hop.trace = 1;
  hop.id = sink.open(1);
  hop.parent = obs::kRootSpanId;
  hop.kind = obs::SpanKind::kHop;
  hop.node = 3;
  hop.peer = 4;
  hop.label = "agent";
  sink.emit(hop);

  const obs::json::Value doc = sink.to_json();
  EXPECT_EQ(doc.find("recorded")->as_uint(), 2u);
  EXPECT_EQ(doc.find("overwritten")->as_uint(), 0u);
  const auto& events = doc.find("events")->as_array();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].find("parent"), nullptr);
  EXPECT_EQ(events[0].find("node"), nullptr);
  EXPECT_EQ(events[0].find("label"), nullptr);
  EXPECT_EQ(events[0].find("kind")->as_string(), "request");
  ASSERT_NE(events[1].find("parent"), nullptr);
  EXPECT_EQ(events[1].find("parent")->as_uint(), 0u);
  EXPECT_EQ(events[1].find("node")->as_uint(), 3u);
  EXPECT_EQ(events[1].find("peer")->as_uint(), 4u);
  EXPECT_EQ(events[1].find("label")->as_string(), "agent");
  EXPECT_EQ(events[1].find("kind")->as_string(), "hop");
}

TEST(SpanContext, ScopedInstallAndContextRestore) {
  ASSERT_EQ(obs::spans(), nullptr) << "a sink leaked from another test";
  obs::Span s;
  s.trace = 1;
  obs::emit_span(s);  // no sink: one branch, no effect

  obs::SpanSink ring(4);
  {
    obs::ScopedSpans scope(ring);
    ASSERT_EQ(obs::spans(), &ring);
    obs::emit_span(s);

    EXPECT_EQ(obs::current_span().trace, obs::kNoTrace);
    {
      obs::ScopedSpanContext ctx(obs::SpanContext{42, 7});
      EXPECT_EQ(obs::current_span().trace, 42u);
      EXPECT_EQ(obs::current_span().span, 7u);
      obs::ScopedSpanContext deferred;  // save-only, then engage
      deferred.engage(obs::SpanContext{43, 0});
      EXPECT_EQ(obs::current_span().trace, 43u);
    }
    EXPECT_EQ(obs::current_span().trace, obs::kNoTrace);
  }
  EXPECT_EQ(obs::spans(), nullptr);
  EXPECT_EQ(ring.recorded(), 1u);
}

// ---- mux root spans + latency histograms ------------------------------------

TEST(MuxSpans, RootSpanPerRequestAndLatencyHistogram) {
  workload::MuxConfig cfg;
  cfg.users = 4;
  cfg.trees = 3;
  cfg.requests_per_user = 3;

  obs::Registry reg;
  obs::SpanSink sink(64);
  obs::ScopedMetrics metrics(reg);
  obs::ScopedSpans spans(sink);

  workload::RequestMux mux(cfg, 17);
  const auto initial = mux.initial_requests();
  ASSERT_EQ(initial.size(), cfg.users);
  std::set<obs::TraceId> traces;
  for (const auto& r : initial) {
    EXPECT_NE(r.trace, obs::kNoTrace);
    traces.insert(r.trace);
  }
  EXPECT_EQ(traces.size(), cfg.users) << "trace ids are unique per request";

  // Drain every user; each completion closes the pending request's root
  // span (including the final one, closed by the exhausted call).
  workload::MuxRequest req;
  for (std::uint64_t u = 0; u < cfg.users; ++u) {
    SimTime done = 100 * (u + 1);
    while (mux.next_request(u, done, /*floor=*/0, req)) {
      EXPECT_NE(req.trace, obs::kNoTrace);
      EXPECT_TRUE(traces.insert(req.trace).second) << "trace ids never reuse";
      done += 50;
    }
  }
  const std::uint64_t total = cfg.users * cfg.requests_per_user;
  EXPECT_EQ(traces.size(), total);
  EXPECT_EQ(sink.recorded(), total) << "one root span per request";

  std::uint64_t hist_total = 0;
  for (const char* op : {"permit", "grow", "shrink"}) {
    if (const obs::Histogram* h =
            reg.histogram(std::string("req.latency.") + op)) {
      hist_total += h->count;
    }
  }
  EXPECT_EQ(hist_total, total) << "every request lands in one latency bucket";

  for (const obs::Span& s : sink.entries()) {
    EXPECT_EQ(s.kind, obs::SpanKind::kRequest);
    EXPECT_EQ(s.id, obs::kRootSpanId);
    EXPECT_EQ(s.parent, obs::kNoSpan);
    EXPECT_GE(s.end, s.begin);
    EXPECT_NE(s.label, nullptr);
  }
}

TEST(MuxSpans, LatencyHistogramIsOnWithoutASink) {
  // req.latency.* is always-on instrumentation: byte-identical whether or
  // not spans are being collected.
  workload::MuxConfig cfg;
  cfg.users = 3;
  cfg.trees = 2;
  cfg.requests_per_user = 2;
  auto run = [&](bool with_sink) {
    obs::Registry reg;
    obs::SpanSink sink(16);
    obs::ScopedMetrics metrics(reg);
    std::unique_ptr<obs::ScopedSpans> scope;
    if (with_sink) scope = std::make_unique<obs::ScopedSpans>(sink);
    workload::RequestMux mux(cfg, 5);
    (void)mux.initial_requests();
    workload::MuxRequest req;
    for (std::uint64_t u = 0; u < cfg.users; ++u) {
      while (mux.next_request(u, 40, 0, req)) {
      }
    }
    return reg.to_json().dump();
  };
  EXPECT_EQ(run(false), run(true));
}

// ---- network hop spans ------------------------------------------------------

TEST(NetworkSpans, HopSpanCarriesSenderContextToDelivery) {
  sim::EventQueue q;
  sim::Network net(q, std::make_unique<sim::FixedDelay>(2));
  obs::SpanSink sink(16);
  obs::ScopedSpans scope(sink);

  obs::SpanContext seen{};
  {
    obs::ScopedSpanContext ctx(obs::SpanContext{5, 2});
    net.send(0, 1, sim::Message::agent_hop(1, 3, 3, 0, 0, false),
             [&] { seen = obs::current_span(); });
  }
  EXPECT_EQ(sink.recorded(), 0u) << "hop span closes at delivery, not send";
  q.run();

  EXPECT_EQ(seen.trace, 5u) << "continuation runs under the sender's context";
  EXPECT_EQ(seen.span, 2u);
  ASSERT_EQ(sink.recorded(), 1u);
  const obs::Span& hop = sink.entries().front();
  EXPECT_EQ(hop.trace, 5u);
  EXPECT_EQ(hop.parent, 2u);
  EXPECT_EQ(hop.kind, obs::SpanKind::kHop);
  EXPECT_EQ(hop.node, 0u);
  EXPECT_EQ(hop.peer, 1u);
  EXPECT_EQ(hop.begin, 0u);
  EXPECT_EQ(hop.end, 2u);
  EXPECT_EQ(obs::current_span().trace, obs::kNoTrace)
      << "delivery scope must not leak";
}

TEST(NetworkSpans, NoContextOrNoSinkMeansNoHopSpan) {
  sim::EventQueue q;
  sim::Network net(q, std::make_unique<sim::FixedDelay>(1));
  obs::SpanSink sink(16);
  int delivered = 0;
  {
    obs::ScopedSpans scope(sink);
    // Sink installed but no traced context: untraced send.
    net.send(0, 1, sim::Message::reject_wave(), [&] { ++delivered; });
  }
  {
    // Traced context but no sink: also untraced.
    obs::ScopedSpanContext ctx(obs::SpanContext{9, 0});
    net.send(1, 2, sim::Message::reject_wave(), [&] { ++delivered; });
  }
  q.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(sink.recorded(), 0u);
  EXPECT_EQ(net.stats().messages, 2u) << "accounting is span-independent";
}

// ---- forest: the end-to-end determinism contract ----------------------------

forest::ForestConfig span_config(unsigned shards) {
  forest::ForestConfig cfg;
  cfg.shards = shards;
  cfg.mux.users = 96;
  cfg.mux.trees = 12;
  cfg.mux.requests_per_user = 4;
  cfg.tree_size = 12;
  cfg.window = 64;
  cfg.service = forest::Service::kController;
  return cfg;
}

struct SpanRun {
  forest::ForestStats stats;
  std::string registry_json;
  std::string spans_json;
  std::string timeline_json;
  std::uint64_t root_spans = 0;
  std::uint64_t op_spans = 0;
};

SpanRun run_with_spans(unsigned shards, std::uint64_t seed) {
  SpanRun out;
  obs::Registry reg;
  obs::SpanSink sink(std::size_t{1} << 14);
  obs::FlightRecorder flight(
      {"forest.requests.total", "forest.ops.grow"}, /*period=*/256);
  obs::ScopedSpans span_scope(sink);
  obs::ScopedMetrics scope(reg);
  forest::ForestEngine engine(span_config(shards), seed);
  engine.set_flight_recorder(&flight);
  out.stats = engine.run();
  out.registry_json = reg.to_json().dump();
  out.spans_json = sink.to_json().dump();
  out.timeline_json = flight.to_json().dump();
  for (const obs::Span& s : sink.entries()) {
    out.root_spans += s.kind == obs::SpanKind::kRequest;
    out.op_spans += s.kind == obs::SpanKind::kOp;
  }
  return out;
}

TEST(ForestSpans, CausalRecordByteIdenticalAcrossShardCounts) {
  const SpanRun base = run_with_spans(1, 77);
  EXPECT_EQ(base.root_spans, base.stats.requests)
      << "one root span per request";
  EXPECT_EQ(base.op_spans, base.stats.requests - base.stats.other)
      << "one controller op span per request that reaches the controller";
  EXPECT_NE(base.timeline_json.find("\"rows\":[["), std::string::npos)
      << "flight recorder sampled at least one row";
  for (unsigned k : {2u, 4u}) {
    const SpanRun r = run_with_spans(k, 77);
    EXPECT_EQ(r.spans_json, base.spans_json) << "shards=" << k;
    EXPECT_EQ(r.timeline_json, base.timeline_json) << "shards=" << k;
    EXPECT_EQ(r.registry_json, base.registry_json) << "shards=" << k;
  }
}

TEST(ForestSpans, RegistryUnchangedBySpanCollection) {
  // Turning the whole span + flight-recorder stack on must not perturb the
  // run: the merged registry is byte-identical with and without it.
  obs::Registry plain;
  {
    obs::ScopedMetrics scope(plain);
    forest::ForestEngine engine(span_config(2), 77);
    (void)engine.run();
  }
  const SpanRun traced = run_with_spans(2, 77);
  EXPECT_EQ(plain.to_json().dump(), traced.registry_json);
}

TEST(ForestSpans, ParentedOpSpansResolveWithinTheirTrace) {
  std::set<std::pair<obs::TraceId, std::uint32_t>> ids;
  obs::Registry reg;
  obs::SpanSink sink(std::size_t{1} << 14);
  obs::ScopedSpans span_scope(sink);
  obs::ScopedMetrics scope(reg);
  forest::ForestEngine engine(span_config(4), 9);
  (void)engine.run();
  ASSERT_EQ(sink.overwritten(), 0u) << "sized for the full workload";
  for (const obs::Span& s : sink.entries()) {
    EXPECT_TRUE(ids.insert({s.trace, s.id}).second)
        << "(trace, id) pairs are globally unique";
  }
  for (const obs::Span& s : sink.entries()) {
    if (s.parent == obs::kNoSpan) continue;
    EXPECT_TRUE(ids.count({s.trace, s.parent}))
        << "child spans point at a recorded span of the same trace";
  }
}

}  // namespace
}  // namespace dyncon

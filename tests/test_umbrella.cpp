// Compilation smoke test: the umbrella header exposes the whole public API
// in one include, with no hidden ordering requirements.

#include "dyncon.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EndToEndSmoke) {
  dyncon::tree::DynamicTree tree;
  dyncon::core::IteratedController ctrl(tree, 4, 2, 8);
  EXPECT_TRUE(ctrl.request_add_leaf(tree.root()).granted());
  EXPECT_EQ(tree.size(), 2u);

  dyncon::sim::EventQueue queue;
  dyncon::sim::Network net(
      queue, dyncon::sim::make_delay(dyncon::sim::DelayKind::kFixed, 1));
  dyncon::core::DistributedController dist(net, tree,
                                           dyncon::core::Params(4, 2, 8));
  bool fired = false;
  dist.submit_event(tree.root(), [&](const dyncon::core::Result& r) {
    fired = r.granted();
  });
  queue.run();
  EXPECT_TRUE(fired);
}

}  // namespace

// Unit tests for the discrete-event simulator: event ordering, delay
// policies, network accounting, tracing.

#include <gtest/gtest.h>

#include <vector>

#include "sim/delay.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/trace.hpp"

namespace dyncon::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule_after(5, [&] { fired.push_back(5); });
  q.schedule_after(1, [&] { fired.push_back(1); });
  q.schedule_after(3, [&] { fired.push_back(3); });
  q.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(q.now(), 5u);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule_after(7, [&fired, i] { fired.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.schedule_after(1, recurse);
  };
  q.schedule_after(1, recurse);
  q.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.now(), 5u);
}

TEST(EventQueue, MaxEventsBound) {
  EventQueue q;
  for (int i = 0; i < 10; ++i) q.schedule_after(1, [] {});
  EXPECT_EQ(q.run(4), 4u);
  EXPECT_EQ(q.pending(), 6u);
}

TEST(EventQueue, PastSchedulingRejected) {
  EventQueue q;
  q.schedule_after(10, [] {});
  q.step();
  EXPECT_THROW(q.schedule_at(5, [] {}), ContractError);
}

TEST(EventQueue, ZeroDelayFiresBeforeUnitDelay) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule_after(1, [&] {
    // Scheduled during the same event: 0-delay beats future messages.
    q.schedule_after(1, [&] { fired.push_back(2); });
    q.schedule_after(0, [&] { fired.push_back(1); });
  });
  q.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(Delay, FixedIsConstant) {
  FixedDelay d(3);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(d.delay(0, 1, 0), 3u);
  EXPECT_THROW(FixedDelay(0), ContractError);
}

TEST(Delay, UniformWithinBounds) {
  UniformDelay d(Rng(1), 2, 9);
  for (int i = 0; i < 200; ++i) {
    const SimTime t = d.delay(0, 1, 0);
    EXPECT_GE(t, 2u);
    EXPECT_LE(t, 9u);
  }
}

TEST(Delay, HeavyTailWithinCap) {
  HeavyTailDelay d(Rng(2), 64);
  SimTime max_seen = 0;
  for (int i = 0; i < 2000; ++i) {
    const SimTime t = d.delay(0, 1, 0);
    EXPECT_GE(t, 1u);
    EXPECT_LE(t, 64u);
    max_seen = std::max(max_seen, t);
  }
  EXPECT_GT(max_seen, 8u) << "tail never materialized";
}

TEST(Delay, BiasedSlowsSomeNodes) {
  BiasedDelay d(Rng(3), 0.5, 100);
  bool saw_slow = false, saw_fast = false;
  for (NodeId n = 0; n < 64; ++n) {
    const SimTime t = d.delay(n, n, 0);
    (t > 100 ? saw_slow : saw_fast) = true;
  }
  EXPECT_TRUE(saw_slow);
  EXPECT_TRUE(saw_fast);
}

TEST(Delay, FactoryCoversAllKinds) {
  for (DelayKind k : {DelayKind::kFixed, DelayKind::kUniform,
                      DelayKind::kHeavyTail, DelayKind::kBiased}) {
    auto d = make_delay(k, 7);
    ASSERT_NE(d, nullptr);
    EXPECT_GE(d->delay(1, 2, 0), 1u);
    EXPECT_FALSE(d->name().empty());
  }
}

TEST(Network, CountsMessagesAndBits) {
  EventQueue q;
  Network net(q, std::make_unique<FixedDelay>(2));
  int delivered = 0;
  const Message hop = Message::agent_hop(1, 3, 3, 0, 0, false);
  const Message wave = Message::reject_wave();
  net.send(0, 1, hop, [&] { ++delivered; });
  net.send(1, 2, wave, [&] { ++delivered; });
  EXPECT_EQ(net.stats().messages, 2u);
  EXPECT_EQ(net.stats().total_bits,
            hop.measured_bits() + wave.measured_bits());
  EXPECT_EQ(net.stats().max_message_bits, hop.measured_bits());
  EXPECT_EQ(net.stats().kind(MsgKind::kAgent), 1u);
  EXPECT_EQ(net.stats().kind(MsgKind::kReject), 1u);
  q.run();
  EXPECT_EQ(delivered, 2);
}

TEST(Network, ChargeModelsUnscheduledMessages) {
  EventQueue q;
  Network net(q, std::make_unique<FixedDelay>(1));
  const Message move = Message::data_move(12);
  net.charge(move, 5);
  EXPECT_EQ(net.stats().messages, 5u);
  EXPECT_EQ(net.stats().total_bits, 5 * move.measured_bits());
  EXPECT_EQ(net.stats().kind(MsgKind::kDataMove), 5u);
  EXPECT_TRUE(q.empty());
}

TEST(Network, DeliveryRespectsDelayPolicy) {
  EventQueue q;
  Network net(q, std::make_unique<FixedDelay>(7));
  SimTime delivered_at = 0;
  net.send(0, 1, Message::app_payload(1), [&] { delivered_at = q.now(); });
  q.run();
  EXPECT_EQ(delivered_at, 7u);
}

TEST(Trace, DisabledByDefault) {
  Trace tr;
  tr.log(1, "hello");
  EXPECT_EQ(tr.lines_recorded(), 0u);
}

TEST(Trace, RecordsAndBounds) {
  Trace tr(4);
  tr.enable();
  for (int i = 0; i < 10; ++i) tr.log(static_cast<SimTime>(i), "line");
  EXPECT_EQ(tr.lines_recorded(), 10u);
  EXPECT_EQ(tr.tail(100).size(), 4u);
  tr.clear();
  EXPECT_EQ(tr.lines_recorded(), 0u);
}

TEST(Trace, WraparoundKeepsNewestLines) {
  Trace tr(3);
  tr.enable();
  for (int i = 0; i < 7; ++i) {
    tr.log(static_cast<SimTime>(i), "line " + std::to_string(i));
  }
  const auto lines = tr.tail(10);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "[t=4] line 4");
  EXPECT_EQ(lines[1], "[t=5] line 5");
  EXPECT_EQ(lines[2], "[t=6] line 6");
}

TEST(Trace, MixesTypedEventsWithTextLines) {
  Trace tr(8);
  tr.enable();
  tr.log(1, "text line");
  tr.event(obs::TraceEvent{obs::EventKind::kPermitGranted, 2, 5, 11, 3});
  EXPECT_EQ(tr.lines_recorded(), 2u);
  const auto lines = tr.tail(8);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "[t=1] text line");
  EXPECT_NE(lines[1].find("PermitGranted"), std::string::npos);
  EXPECT_NE(lines[1].find("node=5"), std::string::npos);
}

}  // namespace
}  // namespace dyncon::sim

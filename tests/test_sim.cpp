// Unit tests for the discrete-event simulator: event ordering, delay
// policies, network accounting, tracing.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "sim/delay.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace dyncon::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule_after(5, [&] { fired.push_back(5); });
  q.schedule_after(1, [&] { fired.push_back(1); });
  q.schedule_after(3, [&] { fired.push_back(3); });
  q.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(q.now(), 5u);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule_after(7, [&fired, i] { fired.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, RunUntilStopsAtHorizon) {
  EventQueue q;
  std::vector<SimTime> fired;
  for (SimTime t : {2u, 5u, 9u, 10u, 14u}) {
    q.schedule_after(t, [&fired, &q] { fired.push_back(q.now()); });
  }
  // Horizon is exclusive: the event AT 10 stays pending.
  EXPECT_EQ(q.run_until(10), 3u);
  EXPECT_EQ(fired, (std::vector<SimTime>{2, 5, 9}));
  EXPECT_EQ(q.next_time(), 10u);
  EXPECT_EQ(q.run_until(10), 0u) << "re-running the same window is a no-op";
  EXPECT_EQ(q.run_until(UINT64_MAX), 2u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunUntilIncludesEventsScheduledInsideTheWindow) {
  EventQueue q;
  std::vector<SimTime> fired;
  q.schedule_after(1, [&] {
    fired.push_back(q.now());
    q.schedule_after(2, [&] { fired.push_back(q.now()); });   // t=3, inside
    q.schedule_after(50, [&] { fired.push_back(q.now()); });  // t=51, outside
  });
  EXPECT_EQ(q.run_until(10), 2u);
  EXPECT_EQ(fired, (std::vector<SimTime>{1, 3}));
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.next_time(), 51u);
}

TEST(EventQueue, NextTimeOnEmptyQueueThrows) {
  EventQueue q;
  EXPECT_THROW((void)q.next_time(), ContractError);
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.schedule_after(1, recurse);
  };
  q.schedule_after(1, recurse);
  q.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.now(), 5u);
}

TEST(EventQueue, MaxEventsBound) {
  EventQueue q;
  for (int i = 0; i < 10; ++i) q.schedule_after(1, [] {});
  EXPECT_EQ(q.run(4), 4u);
  EXPECT_EQ(q.pending(), 6u);
}

TEST(EventQueue, PastSchedulingRejected) {
  EventQueue q;
  q.schedule_after(10, [] {});
  q.step();
  EXPECT_THROW(q.schedule_at(5, [] {}), ContractError);
}

TEST(EventQueue, ZeroDelayFiresBeforeUnitDelay) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule_after(1, [&] {
    // Scheduled during the same event: 0-delay beats future messages.
    q.schedule_after(1, [&] { fired.push_back(2); });
    q.schedule_after(0, [&] { fired.push_back(1); });
  });
  q.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

// Property: among events scheduled for the same SimTime, firing order is
// strict insertion (seq) order — regardless of how many other times are
// interleaved and in what order everything was scheduled.  This pins the
// heap comparator's tie-break: a heap reshuffle must never reorder ties.
TEST(EventQueue, PropertySameTimeEventsFireInFifoOrder) {
  Rng rng(0xf1f0);
  for (int round = 0; round < 50; ++round) {
    EventQueue q;
    // (time, insertion index) in fired order.
    std::vector<std::pair<SimTime, int>> fired;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
      // Few distinct times => many ties; schedule order is random.
      const SimTime when = rng.uniform(0, 7);
      q.schedule_at(when, [&fired, when, i] { fired.emplace_back(when, i); });
    }
    q.run();
    ASSERT_EQ(fired.size(), static_cast<std::size_t>(n));
    for (std::size_t k = 1; k < fired.size(); ++k) {
      ASSERT_LE(fired[k - 1].first, fired[k].first) << "time order violated";
      if (fired[k - 1].first == fired[k].first) {
        ASSERT_LT(fired[k - 1].second, fired[k].second)
            << "FIFO tie-break violated at time " << fired[k].first;
      }
    }
  }
}

// Same property under churn: events firing at time T schedule more events
// at the same time T (zero delay), which must run after every already-queued
// time-T event, still in insertion order.
TEST(EventQueue, PropertyZeroDelayChainsKeepFifoOrder) {
  EventQueue q;
  std::vector<int> fired;
  int next_id = 100;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(1, [&q, &fired, &next_id, i] {
      fired.push_back(i);
      const int child = next_id++;
      q.schedule_after(0, [&fired, child] { fired.push_back(child); });
    });
  }
  q.run();
  ASSERT_EQ(fired.size(), 20u);
  // First the ten originals in order, then the ten children in spawn order.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fired[static_cast<size_t>(10 + i)], 100 + i);
  }
}

TEST(InlineFn, InvokesAndMoves) {
  int hits = 0;
  InlineFn<void()> f = [&hits] { ++hits; };
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  EXPECT_EQ(hits, 1);
  InlineFn<void()> g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
  g();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFn, DestroysCaptureExactlyOnce) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> alive = token;
  {
    InlineFn<int()> f = [token] { return *token; };
    token.reset();
    EXPECT_FALSE(alive.expired());  // the capture keeps it alive
    InlineFn<int()> g = std::move(f);
    EXPECT_EQ(g(), 7);
  }
  EXPECT_TRUE(alive.expired());  // destroyed with the wrapper, no leak
}

TEST(InlineFn, ReturnsValuesAndTakesArguments) {
  InlineFn<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);
}

TEST(Delay, FixedIsConstant) {
  FixedDelay d(3);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(d.delay(0, 1, 0), 3u);
  EXPECT_THROW(FixedDelay(0), ContractError);
}

TEST(Delay, UniformWithinBounds) {
  UniformDelay d(Rng(1), 2, 9);
  for (int i = 0; i < 200; ++i) {
    const SimTime t = d.delay(0, 1, 0);
    EXPECT_GE(t, 2u);
    EXPECT_LE(t, 9u);
  }
}

TEST(Delay, HeavyTailWithinCap) {
  HeavyTailDelay d(Rng(2), 64);
  SimTime max_seen = 0;
  for (int i = 0; i < 2000; ++i) {
    const SimTime t = d.delay(0, 1, 0);
    EXPECT_GE(t, 1u);
    EXPECT_LE(t, 64u);
    max_seen = std::max(max_seen, t);
  }
  EXPECT_GT(max_seen, 8u) << "tail never materialized";
}

TEST(Delay, BiasedSlowsSomeNodes) {
  BiasedDelay d(Rng(3), 0.5, 100);
  bool saw_slow = false, saw_fast = false;
  for (NodeId n = 0; n < 64; ++n) {
    const SimTime t = d.delay(n, n, 0);
    (t > 100 ? saw_slow : saw_fast) = true;
  }
  EXPECT_TRUE(saw_slow);
  EXPECT_TRUE(saw_fast);
}

TEST(Delay, FactoryCoversAllKinds) {
  for (DelayKind k : {DelayKind::kFixed, DelayKind::kUniform,
                      DelayKind::kHeavyTail, DelayKind::kBiased}) {
    auto d = make_delay(k, 7);
    ASSERT_NE(d, nullptr);
    EXPECT_GE(d->delay(1, 2, 0), 1u);
    EXPECT_FALSE(d->name().empty());
  }
}

TEST(Network, CountsMessagesAndBits) {
  EventQueue q;
  Network net(q, std::make_unique<FixedDelay>(2));
  int delivered = 0;
  const Message hop = Message::agent_hop(1, 3, 3, 0, 0, false);
  const Message wave = Message::reject_wave();
  net.send(0, 1, hop, [&] { ++delivered; });
  net.send(1, 2, wave, [&] { ++delivered; });
  EXPECT_EQ(net.stats().messages, 2u);
  EXPECT_EQ(net.stats().total_bits,
            hop.measured_bits() + wave.measured_bits());
  EXPECT_EQ(net.stats().max_message_bits, hop.measured_bits());
  EXPECT_EQ(net.stats().kind(MsgKind::kAgent), 1u);
  EXPECT_EQ(net.stats().kind(MsgKind::kReject), 1u);
  q.run();
  EXPECT_EQ(delivered, 2);
}

TEST(Network, ChargeModelsUnscheduledMessages) {
  EventQueue q;
  Network net(q, std::make_unique<FixedDelay>(1));
  const Message move = Message::data_move(12);
  net.charge(move, 5);
  EXPECT_EQ(net.stats().messages, 5u);
  EXPECT_EQ(net.stats().total_bits, 5 * move.measured_bits());
  EXPECT_EQ(net.stats().kind(MsgKind::kDataMove), 5u);
  EXPECT_TRUE(q.empty());
}

TEST(Network, DeliveryRespectsDelayPolicy) {
  EventQueue q;
  Network net(q, std::make_unique<FixedDelay>(7));
  SimTime delivered_at = 0;
  net.send(0, 1, Message::app_payload(1), [&] { delivered_at = q.now(); });
  q.run();
  EXPECT_EQ(delivered_at, 7u);
}

TEST(Trace, DisabledByDefault) {
  Trace tr;
  tr.log(1, "hello");
  EXPECT_EQ(tr.lines_recorded(), 0u);
}

TEST(Trace, RecordsAndBounds) {
  Trace tr(4);
  tr.enable();
  for (int i = 0; i < 10; ++i) tr.log(static_cast<SimTime>(i), "line");
  EXPECT_EQ(tr.lines_recorded(), 10u);
  EXPECT_EQ(tr.tail(100).size(), 4u);
  tr.clear();
  EXPECT_EQ(tr.lines_recorded(), 0u);
}

TEST(Trace, WraparoundKeepsNewestLines) {
  Trace tr(3);
  tr.enable();
  for (int i = 0; i < 7; ++i) {
    tr.log(static_cast<SimTime>(i), "line " + std::to_string(i));
  }
  const auto lines = tr.tail(10);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "[t=4] line 4");
  EXPECT_EQ(lines[1], "[t=5] line 5");
  EXPECT_EQ(lines[2], "[t=6] line 6");
}

TEST(Trace, MixesTypedEventsWithTextLines) {
  Trace tr(8);
  tr.enable();
  tr.log(1, "text line");
  tr.event(obs::TraceEvent{obs::EventKind::kPermitGranted, 2, 5, 11, 3});
  EXPECT_EQ(tr.lines_recorded(), 2u);
  const auto lines = tr.tail(8);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "[t=1] text line");
  EXPECT_NE(lines[1].find("PermitGranted"), std::string::npos);
  EXPECT_NE(lines[1].find("node=5"), std::string::npos);
}

}  // namespace
}  // namespace dyncon::sim

// Tests for the ancestry-labeling extension (§5.4, Cor. 5.7) and the
// majority-commitment application (§1.3).

#include <gtest/gtest.h>

#include "apps/ancestry_labeling.hpp"
#include "apps/majority_commit.hpp"
#include "util/rng.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

namespace dyncon::apps {
namespace {

using tree::DynamicTree;
using workload::ChurnGenerator;
using workload::ChurnModel;

void audit_all_pairs(const DynamicTree& t, const AncestryLabeling& lab) {
  const auto nodes = t.alive_nodes();
  for (NodeId u : nodes) {
    for (NodeId v : nodes) {
      ASSERT_EQ(lab.is_ancestor(u, v), t.is_ancestor(u, v))
          << "pair (" << u << "," << v << ")";
    }
  }
}

TEST(Ancestry, InitialLabelsAnswerAllPairs) {
  Rng rng(1);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 40, rng);
  AncestryLabeling lab(t);
  audit_all_pairs(t, lab);
}

TEST(Ancestry, DeletionsPreserveCorrectness) {
  Rng rng(2);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 60, rng);
  AncestryLabeling lab(t);
  ChurnGenerator churn(ChurnModel::kShrink, Rng(3));
  while (t.size() > 10) {
    ASSERT_TRUE(lab.request_remove(churn.next(t).subject).granted());
  }
  audit_all_pairs(t, lab);
}

TEST(Ancestry, ShrinkTriggersRelabelKeepingBitsOptimal) {
  Rng rng(4);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 512, rng);
  AncestryLabeling lab(t);
  const std::uint64_t initial_relabels = lab.relabels();
  ChurnGenerator churn(ChurnModel::kShrink, Rng(5));
  while (t.size() > 16) {
    ASSERT_TRUE(lab.request_remove(churn.next(t).subject).granted());
  }
  EXPECT_GT(lab.relabels(), initial_relabels)
      << "a 32x shrink must trigger relabeling";
  // log n + O(1) bits: n = 16 here, so far below the 512-node label size.
  EXPECT_LE(lab.label_bits(), ceil_log2(t.size()) + 10);
}

TEST(Ancestry, MixedChurnStaysCorrect) {
  Rng rng(6);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 30, rng);
  AncestryLabeling lab(t);
  ChurnGenerator churn(ChurnModel::kInternalChurn, Rng(7));
  for (int i = 0; i < 150; ++i) {
    if (t.size() < 4) break;
    const auto spec = churn.next(t);
    switch (spec.type) {
      case core::RequestSpec::Type::kAddLeaf:
        lab.request_add_leaf(spec.subject);
        break;
      case core::RequestSpec::Type::kAddInternal:
        lab.request_add_internal_above(spec.subject);
        break;
      case core::RequestSpec::Type::kRemove:
        lab.request_remove(spec.subject);
        break;
      default:
        break;
    }
    if (i % 10 == 0) audit_all_pairs(t, lab);
  }
  audit_all_pairs(t, lab);
}

TEST(Ancestry, InsertionsKeepBitsBounded) {
  Rng rng(8);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 16, rng);
  AncestryLabeling lab(t);
  ChurnGenerator churn(ChurnModel::kGrowOnly, Rng(9));
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(lab.request_add_leaf(churn.next(t).subject).granted());
  }
  EXPECT_LE(lab.label_bits(), ceil_log2(t.size()) + 10);
}

TEST(Majority, UnanimousYesCommits) {
  Rng rng(10);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 50, rng);
  MajorityCommit mc(t, 1.2);
  for (NodeId v : t.alive_nodes()) mc.cast_vote(v, Vote::kYes);
  EXPECT_EQ(mc.decide(), Decision::kCommit);
}

TEST(Majority, UnanimousNoAborts) {
  Rng rng(11);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 50, rng);
  MajorityCommit mc(t, 1.2);
  for (NodeId v : t.alive_nodes()) mc.cast_vote(v, Vote::kNo);
  EXPECT_EQ(mc.decide(), Decision::kAbort);
}

TEST(Majority, CommitImpliesTrueMajority) {
  // Soundness under churn: whenever decide() commits, the YES voters alive
  // at that moment are a strict majority of the *current* network.
  Rng rng(12);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 64, rng);
  MajorityCommit mc(t, 1.2);
  Rng votes(13);
  for (NodeId v : t.alive_nodes()) {
    mc.cast_vote(v, votes.chance(0.7) ? Vote::kYes : Vote::kNo);
  }
  ChurnGenerator churn(ChurnModel::kBirthDeath, Rng(14));
  for (int i = 0; i < 200; ++i) {
    const auto spec = churn.next(t);
    if (spec.type == core::RequestSpec::Type::kAddLeaf) {
      const auto r = mc.request_add_leaf(spec.subject);
      if (r.granted()) {
        mc.cast_vote(r.new_node, votes.chance(0.7) ? Vote::kYes : Vote::kNo);
      }
    } else {
      mc.request_remove(spec.subject);
    }
    if (i % 20 != 0) continue;
    // Soundness contract: the threshold always clears half the true size,
    // so any commit is backed by a strict majority.
    EXPECT_GE(mc.commit_threshold() * 2, t.size() + 1);
    mc.decide();
  }
}

TEST(Majority, RejectsOutOfRangeBeta) {
  DynamicTree t;
  EXPECT_THROW(MajorityCommit(t, 1.5), ContractError);  // 1.5^2 > 2
  EXPECT_THROW(MajorityCommit(t, 0.9), ContractError);
}

TEST(Majority, ThresholdTracksEstimate) {
  Rng rng(15);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 100, rng);
  MajorityCommit mc(t, 1.3);
  // threshold = floor(1.3 * 100 / 2) + 1 = 66.
  EXPECT_EQ(mc.commit_threshold(), 66u);
}

}  // namespace
}  // namespace dyncon::apps

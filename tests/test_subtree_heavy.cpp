// Tests for the subtree estimator (Lemma 5.3) and the heavy-child
// decomposition (Theorem 5.4).

#include <gtest/gtest.h>

#include <cmath>

#include "apps/heavy_child.hpp"
#include "apps/subtree_estimator.hpp"
#include "util/rng.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

namespace dyncon::apps {
namespace {

using tree::DynamicTree;
using workload::ChurnGenerator;
using workload::ChurnModel;

TEST(SubtreeEstimator, BaselineIsExactAtIterationStart) {
  Rng rng(1);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 60, rng);
  SubtreeEstimator est(t, 2.0);
  // Before any change: w~ = w0 = exact subtree size = super-weight.
  for (NodeId v : t.alive_nodes()) {
    EXPECT_EQ(est.estimate(v), est.true_super_weight(v));
  }
  EXPECT_EQ(est.estimate(t.root()), 60u);
}

TEST(SubtreeEstimator, SuperWeightCountsEverything) {
  Rng rng(2);
  DynamicTree t;
  workload::build(t, workload::Shape::kPath, 10, rng);
  SubtreeEstimator est(t, 2.0);
  const NodeId mid = t.alive_nodes()[5];
  const std::uint64_t before = est.true_super_weight(mid);
  // Add below mid: super-weight grows.
  const auto leaf = est.request_add_leaf(t.alive_nodes().back());
  ASSERT_TRUE(leaf.granted());
  EXPECT_EQ(est.true_super_weight(mid), before + 1);
  // Remove it again: super-weight does NOT shrink (ever-existed counting).
  ASSERT_TRUE(est.request_remove(leaf.new_node).granted());
  EXPECT_EQ(est.true_super_weight(mid), before + 1);
}

TEST(SubtreeEstimator, EstimateNeverBelowConsumedChanges) {
  // w~(u) >= SW(u) for nodes whose subtree absorbed changes: permits that
  // granted changes below u all passed through u.
  Rng rng(3);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 80, rng);
  SubtreeEstimator est(t, 2.0);
  ChurnGenerator churn(ChurnModel::kBirthDeath, Rng(4));
  for (int i = 0; i < 300; ++i) {
    const auto spec = churn.next(t);
    if (spec.type == core::RequestSpec::Type::kAddLeaf) {
      est.request_add_leaf(spec.subject);
    } else {
      est.request_remove(spec.subject);
    }
  }
  // Root sees everything: its estimate must cover its true super-weight
  // within the protocol's approximation (and is never absurdly large).
  const double sw = static_cast<double>(est.true_super_weight(t.root()));
  const double e = static_cast<double>(est.estimate(t.root()));
  EXPECT_GE(e * 2.0 + 1e-9, sw);
  EXPECT_LE(e, 2.0 * sw + 1e-9);
}

TEST(SubtreeEstimator, ApproximationOnLargeSubtrees) {
  // Audit the beta-approximation on subtrees that are not tiny (small
  // subtrees can be off by parked-package constants; the heavy-child
  // argument only needs the multiplicative bound where it matters).
  Rng rng(5);
  DynamicTree t;
  workload::build(t, workload::Shape::kBinary, 127, rng);
  const double beta = 2.0;
  SubtreeEstimator est(t, beta);
  ChurnGenerator churn(ChurnModel::kGrowOnly, Rng(6));
  for (int i = 0; i < 250; ++i) {
    est.request_add_leaf(churn.next(t).subject);
  }
  const double slack = 2.0;  // integer effects on top of beta
  for (NodeId v : t.alive_nodes()) {
    const double sw = static_cast<double>(est.true_super_weight(v));
    if (sw < 16) continue;
    const double e = static_cast<double>(est.estimate(v));
    EXPECT_GE(e * beta * slack, sw) << "node " << v;
    EXPECT_LE(e, beta * slack * sw) << "node " << v;
  }
}

TEST(HeavyChild, PointersExistAndValid) {
  Rng rng(7);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 50, rng);
  HeavyChild hc(t);
  for (NodeId v : t.alive_nodes()) {
    if (t.is_leaf(v)) {
      EXPECT_EQ(hc.heavy(v), kNoNode);
    } else {
      const NodeId h = hc.heavy(v);
      ASSERT_NE(h, kNoNode);
      EXPECT_EQ(t.parent(h), v);
    }
  }
}

TEST(HeavyChild, PathHasZeroLightAncestors) {
  Rng rng(8);
  DynamicTree t;
  workload::build(t, workload::Shape::kPath, 64, rng);
  HeavyChild hc(t);
  // On a path every internal node has exactly one child = the heavy one.
  EXPECT_EQ(hc.max_light_ancestors(), 0u);
}

TEST(HeavyChild, BalancedTreeLogLightAncestors) {
  Rng rng(9);
  DynamicTree t;
  workload::build(t, workload::Shape::kBinary, 255, rng);
  HeavyChild hc(t);
  // Complete binary tree: light depth is exactly its log-depth-ish bound.
  EXPECT_LE(hc.max_light_ancestors(), 8u);
}

std::uint64_t log_bound(std::uint64_t n) {
  return 4 * (ceil_log2(n < 2 ? 2 : n) + 1);
}

void churn_and_audit(ChurnModel model, std::uint64_t n0, int steps,
                     std::uint64_t seed) {
  Rng rng(seed);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, n0, rng);
  HeavyChild hc(t);
  ChurnGenerator churn(model, Rng(seed + 1));
  for (int i = 0; i < steps; ++i) {
    if (t.size() < 4) break;
    const auto spec = churn.next(t);
    switch (spec.type) {
      case core::RequestSpec::Type::kAddLeaf:
        hc.request_add_leaf(spec.subject);
        break;
      case core::RequestSpec::Type::kAddInternal:
        hc.request_add_internal_above(spec.subject);
        break;
      case core::RequestSpec::Type::kRemove:
        hc.request_remove(spec.subject);
        break;
      default:
        break;
    }
    if (i % 25 == 0) {
      ASSERT_LE(hc.max_light_ancestors(), log_bound(t.size()))
          << workload::churn_name(model) << " step " << i;
    }
  }
  EXPECT_LE(hc.max_light_ancestors(), log_bound(t.size()));
}

TEST(HeavyChild, GrowOnlyStaysLogarithmic) {
  churn_and_audit(ChurnModel::kGrowOnly, 32, 400, 10);
}

TEST(HeavyChild, BirthDeathStaysLogarithmic) {
  churn_and_audit(ChurnModel::kBirthDeath, 64, 400, 11);
}

TEST(HeavyChild, InternalChurnStaysLogarithmic) {
  churn_and_audit(ChurnModel::kInternalChurn, 64, 400, 12);
}

TEST(HeavyChild, MessagesAtMostDoubleEstimator) {
  // "These extra messages may only increase the total number of messages
  // by a factor of two" — reports piggyback on estimate updates.
  Rng rng(13);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 64, rng);
  HeavyChild hc(t);
  ChurnGenerator churn(ChurnModel::kGrowOnly, Rng(14));
  for (int i = 0; i < 200; ++i) hc.request_add_leaf(churn.next(t).subject);
  EXPECT_LE(hc.messages(), 3 * hc.estimator().messages());
}

}  // namespace
}  // namespace dyncon::apps

// Unit tests for the (M, W, U) parameter arithmetic of §3.1: phi, psi,
// filler windows, creation levels, u_k distances, domain sizes.

#include <gtest/gtest.h>

#include "core/params.hpp"

namespace dyncon::core {
namespace {

TEST(Params, PhiSmallWasteIsOne) {
  // W < 2U  =>  phi = 1.
  Params p(100, 10, 64);
  EXPECT_EQ(p.phi(), 1u);
}

TEST(Params, PhiLargeWaste) {
  // W >= 2U  =>  phi = floor(W / 2U).
  Params p(1000, 640, 64);
  EXPECT_EQ(p.phi(), 5u);
}

TEST(Params, PsiFormula) {
  // psi = 4 * (ceil(log2 U) + 2) * max(ceil(U/W), 1).
  Params p(100, 16, 16);  // ceil(log2 16)=4 -> 4*6*1 = 24
  EXPECT_EQ(p.psi(), 24u);
  Params q(100, 4, 16);  // ceil(16/4)=4 -> 4*6*4 = 96
  EXPECT_EQ(q.psi(), 96u);
  EXPECT_EQ(p.psi() % 4, 0u);
  EXPECT_EQ(q.psi() % 4, 0u);
}

TEST(Params, RejectsBadArguments) {
  EXPECT_THROW(Params(0, 1, 1), ContractError);
  EXPECT_THROW(Params(1, 0, 1), ContractError);
  EXPECT_THROW(Params(1, 1, 0), ContractError);
}

TEST(Params, MobileSizesArePowersTimesPhi) {
  Params p(1000, 640, 64);  // phi = 5
  EXPECT_EQ(p.mobile_size(0), 5u);
  EXPECT_EQ(p.mobile_size(3), 40u);
  EXPECT_EQ(p.level_of_size(5), 0u);
  EXPECT_EQ(p.level_of_size(40), 3u);
  EXPECT_THROW(p.level_of_size(7), ContractError);
}

TEST(Params, FillerWindowsPartitionDistances) {
  // Every distance lies in exactly one level's window, and that level is
  // creation_level(d).
  Params p(100, 8, 32);
  for (std::uint64_t d = 0; d <= 20 * p.psi(); ++d) {
    int matches = 0;
    std::uint32_t match_level = 0;
    for (std::uint32_t j = 0; j <= p.max_level(); ++j) {
      if (p.in_filler_window(j, d)) {
        ++matches;
        match_level = j;
      }
    }
    ASSERT_EQ(matches, 1) << "d=" << d;
    EXPECT_EQ(match_level, p.creation_level(d)) << "d=" << d;
  }
}

TEST(Params, WindowBoundaries) {
  Params p(100, 16, 16);  // psi = 24
  const std::uint64_t psi = p.psi();
  EXPECT_TRUE(p.in_filler_window(0, 0));
  EXPECT_TRUE(p.in_filler_window(0, 2 * psi));
  EXPECT_FALSE(p.in_filler_window(0, 2 * psi + 1));
  EXPECT_FALSE(p.in_filler_window(1, 2 * psi));
  EXPECT_TRUE(p.in_filler_window(1, 2 * psi + 1));
  EXPECT_TRUE(p.in_filler_window(1, 4 * psi));
  EXPECT_FALSE(p.in_filler_window(1, 4 * psi + 1));
}

TEST(Params, UkDistancesAreExactHalvings) {
  // u_k at 3 * 2^(k-1) * psi; each level halves toward the origin.
  Params p(100, 16, 64);
  const std::uint64_t psi = p.psi();
  EXPECT_EQ(p.uk_distance(0), 3 * psi / 2);
  EXPECT_EQ(p.uk_distance(1), 3 * psi);
  EXPECT_EQ(p.uk_distance(2), 6 * psi);
  for (std::uint32_t k = 1; k < 10; ++k) {
    EXPECT_EQ(p.uk_distance(k), 2 * p.uk_distance(k - 1));
  }
}

TEST(Params, DomainSizes) {
  Params p(100, 16, 64);
  const std::uint64_t psi = p.psi();
  EXPECT_EQ(p.domain_size(0), psi / 2);
  EXPECT_EQ(p.domain_size(1), psi);
  EXPECT_EQ(p.domain_size(4), 8 * psi);
}

TEST(Params, UkStrictlyInsideWindowBelow) {
  // For any level j >= 1, u_{j-1} lies strictly below the level-j window's
  // lower edge, so Proc's first hop is always downward.
  Params p(100, 8, 128);
  for (std::uint32_t j = 1; j <= 6; ++j) {
    EXPECT_LT(p.uk_distance(j - 1), sat_mul(pow2(j), p.psi()));
  }
}

TEST(Params, DomainFitsBelowUk) {
  // domain_size(k) <= uk_distance(k): the domain never runs past the
  // origin.
  Params p(100, 8, 128);
  for (std::uint32_t k = 0; k <= 6; ++k) {
    EXPECT_LE(p.domain_size(k), p.uk_distance(k));
  }
}

TEST(Params, CreationLevelMonotone) {
  Params p(50, 4, 64);
  std::uint32_t prev = 0;
  for (std::uint64_t d = 0; d < 50 * p.psi(); d += 7) {
    const std::uint32_t j = p.creation_level(d);
    EXPECT_GE(j, prev);
    prev = j;
  }
}

TEST(Params, ScaledPsiStillPartitionsDistances) {
  // The window-partition property needs only psi % 4 == 0, which
  // with_psi_scale preserves — so the ablation never mis-levels a filler.
  const Params base(100, 8, 32);
  for (auto [num, den] : {std::pair<std::uint64_t, std::uint64_t>{1, 8},
                          {1, 3},
                          {3, 2},
                          {5, 1}}) {
    const Params p = base.with_psi_scale(num, den);
    EXPECT_EQ(p.psi() % 4, 0u);
    for (std::uint64_t d = 0; d <= 12 * p.psi(); d += 3) {
      int matches = 0;
      for (std::uint32_t j = 0; j <= p.max_level(); ++j) {
        matches += p.in_filler_window(j, d);
      }
      ASSERT_EQ(matches, 1) << "scale " << num << "/" << den << " d=" << d;
      EXPECT_TRUE(p.in_filler_window(p.creation_level(d), d));
    }
  }
}

TEST(Params, StrFormatting) {
  Params p(10, 5, 8);
  const std::string s = p.str();
  EXPECT_NE(s.find("M=10"), std::string::npos);
  EXPECT_NE(s.find("psi="), std::string::npos);
}

}  // namespace
}  // namespace dyncon::core

// Unit tests for the broadcast/convergecast substrate.

#include <gtest/gtest.h>

#include <unordered_set>

#include "agent/convergecast.hpp"
#include "sim/delay.hpp"
#include "util/rng.hpp"
#include "workload/shapes.hpp"

namespace dyncon::agent {
namespace {

struct Fixture {
  sim::EventQueue queue;
  sim::Network net;
  tree::DynamicTree tree;
  Convergecast cast;

  explicit Fixture(sim::DelayKind kind = sim::DelayKind::kFixed)
      : net(queue, sim::make_delay(kind, 7)), cast(net, tree) {}
};

TEST(Convergecast, CountsSingleRoot) {
  Fixture f;
  std::uint64_t counted = 0;
  f.cast.count_nodes([&](std::uint64_t n) { counted = n; });
  f.queue.run();
  EXPECT_EQ(counted, 1u);
  EXPECT_EQ(f.cast.messages(), 0u);  // no edges, no messages
}

TEST(Convergecast, CountsEveryShape) {
  for (auto shape : workload::all_shapes()) {
    Fixture f;
    Rng rng(3);
    workload::build(f.tree, shape, 60, rng);
    std::uint64_t counted = 0;
    f.cast.count_nodes([&](std::uint64_t n) { counted = n; });
    f.queue.run();
    EXPECT_EQ(counted, 60u) << workload::shape_name(shape);
    // Exactly one message down + one up per edge.
    EXPECT_EQ(f.cast.messages(), 2 * (60 - 1))
        << workload::shape_name(shape);
  }
}

TEST(Convergecast, CountIsDelayScheduleIndependent) {
  for (auto kind : {sim::DelayKind::kFixed, sim::DelayKind::kUniform,
                    sim::DelayKind::kHeavyTail, sim::DelayKind::kBiased}) {
    Fixture f(kind);
    Rng rng(5);
    workload::build(f.tree, workload::Shape::kRandomAttach, 40, rng);
    std::uint64_t counted = 0;
    f.cast.count_nodes([&](std::uint64_t n) { counted = n; });
    f.queue.run();
    EXPECT_EQ(counted, 40u) << sim::delay_kind_name(kind);
  }
}

TEST(Convergecast, VisitSeesBroadcastValueEverywhere) {
  Fixture f;
  Rng rng(7);
  workload::build(f.tree, workload::Shape::kBinary, 31, rng);
  std::unordered_set<NodeId> visited;
  std::uint64_t result = 0;
  f.cast.run(
      42,
      [&](NodeId v, std::uint64_t val) -> std::uint64_t {
        EXPECT_EQ(val, 42u);
        visited.insert(v);
        return 0;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; },
      [&](std::uint64_t r) { result = r; });
  f.queue.run();
  EXPECT_EQ(visited.size(), 31u);
  EXPECT_EQ(result, 0u);
}

TEST(Convergecast, AggregatesMax) {
  Fixture f;
  Rng rng(9);
  workload::build(f.tree, workload::Shape::kCaterpillar, 25, rng);
  std::uint64_t deepest = 0;
  f.cast.run(
      0,
      [&](NodeId v, std::uint64_t) { return f.tree.depth(v); },
      [](std::uint64_t a, std::uint64_t b) { return std::max(a, b); },
      [&](std::uint64_t r) { deepest = r; });
  f.queue.run();
  std::uint64_t want = 0;
  for (NodeId v : f.tree.alive_nodes()) {
    want = std::max(want, f.tree.depth(v));
  }
  EXPECT_EQ(deepest, want);
}

TEST(Convergecast, SequentialRunsAllowedOverlapsRejected) {
  Fixture f;
  Rng rng(11);
  workload::build(f.tree, workload::Shape::kRandomAttach, 10, rng);
  int done = 0;
  f.cast.count_nodes([&](std::uint64_t) { ++done; });
  EXPECT_TRUE(f.cast.running());
  EXPECT_THROW(f.cast.count_nodes([](std::uint64_t) {}), ContractError);
  f.queue.run();
  // Chaining from the done callback is the supported pattern.
  f.cast.count_nodes([&](std::uint64_t) {
    ++done;
    f.cast.count_nodes([&](std::uint64_t) { ++done; });
  });
  f.queue.run();
  EXPECT_EQ(done, 3);
}

TEST(Convergecast, TopologyChangeMidRunIsLoudlyRejected) {
  // The substrate's contract: runs only at quiescent points.  Removing a
  // node a broadcast message is already in flight toward trips an
  // invariant instead of silently corrupting the aggregate.
  Fixture f;
  Rng rng(13);
  workload::build(f.tree, workload::Shape::kPath, 12, rng);
  bool finished = false;
  f.cast.count_nodes([&](std::uint64_t) { finished = true; });
  // The hop from the root to its child is now in flight; delete that
  // child (an internal node) before delivery.
  const NodeId first_child = f.tree.children(f.tree.root()).front();
  f.tree.remove_internal(first_child);  // contract violation
  EXPECT_THROW(f.queue.run(), InvariantError);
  EXPECT_FALSE(finished);
}

}  // namespace
}  // namespace dyncon::agent

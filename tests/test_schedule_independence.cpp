// Schedule-independence of the paper's cost measure (Lemmas 4.2-4.5):
// for a serialized request stream, the distributed controller's decisions
// AND its exact message count are identical under every delay adversary —
// including deliberate message reordering, since the protocol assumes
// nothing about link FIFO-ness.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/distributed_controller.hpp"
#include "sim/channel.hpp"
#include "sim/fault.hpp"
#include "sim/watchdog.hpp"
#include "util/rng.hpp"
#include "workload/churn.hpp"
#include "workload/script.hpp"
#include "workload/shapes.hpp"

namespace dyncon::core {
namespace {

using tree::DynamicTree;

constexpr sim::DelayKind kAllKinds[] = {
    sim::DelayKind::kFixed, sim::DelayKind::kUniform,
    sim::DelayKind::kHeavyTail, sim::DelayKind::kBiased,
    sim::DelayKind::kReorder};

struct RunResult {
  std::uint64_t messages;
  std::uint64_t granted;
  std::uint64_t rejected;
  std::uint64_t final_size;
};

RunResult run_serialized(sim::DelayKind kind, const workload::Script& script,
                         std::uint64_t n0, std::uint64_t M,
                         std::uint64_t W) {
  Rng rng(7);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(kind, 99));
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, n0, rng);
  DistributedController::Options opts;
  opts.track_domains = false;
  DistributedController ctrl(net, t, Params(M, W, 4096), opts);
  DistributedSyncFacade facade(queue, ctrl);
  const auto stats = workload::replay(script, facade, t);
  queue.run();  // drain the tail of the reject flood before counting
  return {ctrl.messages_used(), stats.granted, stats.rejected, t.size()};
}

TEST(ScheduleIndependence, SerializedRunsAreBitIdentical) {
  // Record one mixed churn trace; with the budget above demand (nothing is
  // ever rejected) a serialized replay is a pure function of the requests:
  // decisions AND the exact message count match under every adversary.
  Rng r(7);
  DynamicTree recorder;
  workload::build(recorder, workload::Shape::kRandomAttach, 32, r);
  workload::ChurnGenerator churn(workload::ChurnModel::kInternalChurn,
                                 Rng(11));
  const workload::Script script =
      workload::Script::record(recorder, churn, 150);

  const RunResult base =
      run_serialized(sim::DelayKind::kFixed, script, 32, 1000, 100);
  EXPECT_GT(base.messages, 0u);
  EXPECT_EQ(base.rejected, 0u);
  for (sim::DelayKind kind : kAllKinds) {
    const RunResult rr = run_serialized(kind, script, 32, 1000, 100);
    EXPECT_EQ(rr.messages, base.messages) << sim::delay_kind_name(kind);
    EXPECT_EQ(rr.granted, base.granted) << sim::delay_kind_name(kind);
    EXPECT_EQ(rr.final_size, base.final_size) << sim::delay_kind_name(kind);
  }
}

TEST(ScheduleIndependence, RejectRaceIsBoundedByU) {
  // Once the budget exhausts, requests race the spreading reject flood:
  // how far a rejected agent climbs before meeting a reject package
  // depends on the schedule.  That slack is exactly the paper's O(U)
  // reject-machinery term — decisions still agree, and the message counts
  // differ by at most a small multiple of the node count.
  Rng r(7);
  DynamicTree recorder;
  workload::build(recorder, workload::Shape::kRandomAttach, 32, r);
  workload::ChurnGenerator churn(workload::ChurnModel::kInternalChurn,
                                 Rng(11));
  const workload::Script script =
      workload::Script::record(recorder, churn, 150);

  const RunResult base =
      run_serialized(sim::DelayKind::kFixed, script, 32, 100, 20);
  EXPECT_GT(base.rejected, 0u);
  for (sim::DelayKind kind : kAllKinds) {
    const RunResult rr = run_serialized(kind, script, 32, 100, 20);
    EXPECT_EQ(rr.granted, base.granted) << sim::delay_kind_name(kind);
    EXPECT_EQ(rr.rejected, base.rejected) << sim::delay_kind_name(kind);
    EXPECT_EQ(rr.final_size, base.final_size) << sim::delay_kind_name(kind);
    const std::uint64_t diff = rr.messages > base.messages
                                   ? rr.messages - base.messages
                                   : base.messages - rr.messages;
    EXPECT_LE(diff, 4 * rr.final_size) << sim::delay_kind_name(kind);
  }
}

TEST(ScheduleIndependence, ReorderingAdversaryWithConcurrency) {
  // Under concurrency the *execution* may differ per schedule, but safety,
  // liveness, completion and conservation may not.
  Rng rng(13);
  sim::EventQueue queue;
  sim::Network net(queue,
                   sim::make_delay(sim::DelayKind::kReorder, 17));
  DynamicTree t;
  workload::build(t, workload::Shape::kCaterpillar, 32, rng);
  const std::uint64_t M = 60, W = 10;
  DistributedController ctrl(net, t, Params(M, W, 256));
  const auto nodes = t.alive_nodes();
  int granted = 0, rejected = 0;
  for (int i = 0; i < 150; ++i) {
    ctrl.submit_event(nodes[rng.index(nodes.size())], [&](const Result& r) {
      granted += r.granted();
      rejected += r.outcome == Outcome::kRejected;
    });
  }
  queue.run();
  EXPECT_EQ(granted + rejected, 150);
  EXPECT_LE(granted, static_cast<int>(M));
  EXPECT_GE(granted, static_cast<int>(M - W));
  EXPECT_EQ(ctrl.active_agents(), 0u);
  EXPECT_EQ(ctrl.permits_granted() + ctrl.unused_permits(), M);
  ASSERT_NE(ctrl.domains(), nullptr);
  EXPECT_EQ(ctrl.domains()->check_invariants(), "");
}

// ---- watchdog verdicts under faults ------------------------------------------
//
// The watchdog's verdict must be a property of the *fault model*, not of
// the delivery schedule: the same seed convicts (or acquits) under every
// delay adversary.

struct ChaosVerdict {
  bool aborted = false;
  std::uint64_t answered = 0;
  std::uint64_t granted = 0;
};

ChaosVerdict run_with_watchdog(sim::DelayKind kind, bool with_channel) {
  Rng rng(21);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(kind, 99));
  // Half the transmissions vanish: without the reliable channel some agent
  // is stranded with near certainty; with it, every request completes.
  net.set_fault_policy(std::make_unique<sim::DropFault>(Rng(5), 0.5));
  if (with_channel) net.enable_reliability();
  sim::Watchdog wd(queue, 500000);
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 16, rng);
  DistributedController::Options opts;
  opts.watchdog = &wd;
  opts.allow_unreliable_transport = !with_channel;
  DistributedController ctrl(net, t, Params(50, 10, 64), opts);
  const auto nodes = t.alive_nodes();
  ChaosVerdict v;
  for (int i = 0; i < 8; ++i) {
    ctrl.submit_event(nodes[rng.index(nodes.size())], [&](const Result& r) {
      ++v.answered;
      v.granted += r.granted();
    });
  }
  try {
    queue.run();
    wd.verify_idle();
  } catch (const sim::WatchdogError&) {
    v.aborted = true;
  }
  return v;
}

TEST(ScheduleIndependence, WatchdogConvictsLossyLinksUnderEveryAdversary) {
  for (sim::DelayKind kind : kAllKinds) {
    const ChaosVerdict v = run_with_watchdog(kind, /*with_channel=*/false);
    EXPECT_TRUE(v.aborted) << sim::delay_kind_name(kind);
    EXPECT_LT(v.answered, 8u) << sim::delay_kind_name(kind);
  }
}

TEST(ScheduleIndependence, WatchdogAcquitsReliableChannelUnderEveryAdversary) {
  for (sim::DelayKind kind : kAllKinds) {
    const ChaosVerdict v = run_with_watchdog(kind, /*with_channel=*/true);
    EXPECT_FALSE(v.aborted) << sim::delay_kind_name(kind);
    EXPECT_EQ(v.answered, 8u) << sim::delay_kind_name(kind);
    EXPECT_GE(v.granted, 1u) << sim::delay_kind_name(kind);
  }
}

TEST(ScheduleIndependence, ChannelRestoresScheduleIndependentDecisions) {
  // With the reliable channel over a chaos-faulted transport, a serialized
  // replay makes the same decisions under every delay adversary — the
  // protocol sees the reliable links the paper assumes.  (The message
  // count does vary here: retransmissions depend on timing.)
  Rng r(7);
  DynamicTree recorder;
  workload::build(recorder, workload::Shape::kRandomAttach, 24, r);
  workload::ChurnGenerator churn(workload::ChurnModel::kInternalChurn,
                                 Rng(11));
  const workload::Script script =
      workload::Script::record(recorder, churn, 80);

  auto run_chaos_serialized = [&script](sim::DelayKind kind) {
    Rng rng(7);
    sim::EventQueue queue;
    sim::Network net(queue, sim::make_delay(kind, 99));
    net.set_fault_policy(sim::make_fault(sim::FaultKind::kChaos, 13));
    net.enable_reliability();
    DynamicTree t;
    workload::build(t, workload::Shape::kRandomAttach, 24, rng);
    DistributedController::Options opts;
    opts.track_domains = false;
    DistributedController ctrl(net, t, Params(1000, 100, 4096), opts);
    DistributedSyncFacade facade(queue, ctrl);
    const auto stats = workload::replay(script, facade, t);
    queue.run();
    EXPECT_EQ(net.channel()->in_flight(), 0u);
    return RunResult{ctrl.messages_used(), stats.granted, stats.rejected,
                     t.size()};
  };

  const RunResult base = run_chaos_serialized(sim::DelayKind::kFixed);
  EXPECT_EQ(base.rejected, 0u);
  for (sim::DelayKind kind : kAllKinds) {
    const RunResult rr = run_chaos_serialized(kind);
    EXPECT_EQ(rr.granted, base.granted) << sim::delay_kind_name(kind);
    EXPECT_EQ(rr.rejected, base.rejected) << sim::delay_kind_name(kind);
    EXPECT_EQ(rr.final_size, base.final_size) << sim::delay_kind_name(kind);
  }
}

TEST(ScheduleIndependence, ReorderDelayActuallyReorders) {
  // Sanity: the adversary produces genuine inversions.
  sim::ReorderDelay d(Rng(1), 8);
  // Two consecutive sends: the second one's delay is smaller by ~1.
  const auto d0 = d.delay(0, 1, 0);
  const auto d1 = d.delay(0, 1, 1);
  EXPECT_GT(d0 + 1, d1);
  sim::EventQueue queue;
  sim::Network net(queue,
                   std::make_unique<sim::ReorderDelay>(Rng(2), 8));
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    net.send(0, 1, sim::Message::app_payload(1), [&order, i] {
      order.push_back(i);
    });
  }
  queue.run();
  ASSERT_EQ(order.size(), 8u);
  EXPECT_NE(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}))
      << "no inversion produced";
}

}  // namespace
}  // namespace dyncon::core

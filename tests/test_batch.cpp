// Batch-coalescing tests (PR 9): the BatchFrame wire format, the network's
// same-edge delivery coalescing, and the end-to-end identity contract —
// batching is a transport optimization, so every observable of a run
// (registry snapshot, NetStats, delivery order, event count) must be
// bit-identical with batching on and off, under every fault adversary and
// at every shard count.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/distributed_controller.hpp"
#include "forest/forest.hpp"
#include "obs/metrics.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "sim/wire.hpp"
#include "util/rng.hpp"
#include "workload/shapes.hpp"

namespace dyncon::sim {
namespace {

// ---- BatchFrame wire properties ---------------------------------------------

/// A random non-batch payload, small ids biased toward the sizes real runs
/// produce (agent hops dominate the coalesced traffic).
Message random_payload(Rng& rng) {
  switch (rng.uniform(0, 3)) {
    case 0:
      return Message::agent_hop(rng.uniform(0, 1u << 20),
                                rng.uniform(0, 1u << 10),
                                rng.uniform(0, 1u << 10),
                                static_cast<std::uint32_t>(rng.uniform(0, 30)),
                                static_cast<std::uint8_t>(rng.uniform(0, 7)),
                                rng.chance(0.5));
    case 1:
      return Message::data_move(rng.uniform(0, 1u << 20));
    case 2:
      return Message::control(static_cast<ControlTopic>(rng.uniform(0, 3)),
                              rng.uniform(0, 1u << 16));
    default:
      return Message::reject_wave();
  }
}

TEST(BatchFrame, RoundTripRandomKindMixes) {
  Rng rng(0xba7c4);
  for (int iter = 0; iter < 400; ++iter) {
    const std::size_t n = 1 + rng.uniform(0, 7);
    std::vector<Encoded> payloads;
    std::vector<std::uint64_t> sizes;
    for (std::size_t i = 0; i < n; ++i) {
      payloads.push_back(random_payload(rng).encode());
      sizes.push_back(payloads.back().bits);
    }
    const Message frame = Message::batch_frame(payloads);
    const Encoded e = frame.encode();
    // The size arithmetic the release network charges with must match the
    // bits the encoder actually produces.
    EXPECT_EQ(e.bits, batch_frame_bits(sizes.data(), n));
    EXPECT_EQ(e.bits, frame.measured_bits());
    const Message back = Message::decode(e);
    ASSERT_EQ(back, frame);
    // Payloads decode back to the original messages, in order.
    const auto& bm = back.as<BatchMsg>();
    ASSERT_EQ(bm.payloads.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(bm.payloads[i], payloads[i]);
    }
  }
}

TEST(BatchFrame, CountPrefixEdgeCases) {
  // A single-payload frame is legal on the wire (the network never emits
  // one — lazy opening guarantees n >= 2 — but the codec must not care),
  // and so is a frame far wider than any delivery window.
  for (const std::size_t n : {std::size_t{1}, std::size_t{2},
                              std::size_t{64}, std::size_t{257}}) {
    std::vector<Encoded> payloads;
    for (std::size_t i = 0; i < n; ++i) {
      // Smallest possible payload: the tag-only reject wave.
      payloads.push_back(Message::reject_wave().encode());
    }
    const Message frame = Message::batch_frame(std::move(payloads));
    const Encoded e = frame.encode();
    const Message back = Message::decode(e);
    ASSERT_EQ(back, frame) << "count=" << n;
    EXPECT_EQ(back.as<BatchMsg>().payloads.size(), n);
  }
}

TEST(BatchFrame, TruncationIsRejected) {
  Rng rng(0x7041);
  std::vector<Encoded> payloads;
  for (int i = 0; i < 5; ++i) payloads.push_back(random_payload(rng).encode());
  const Message frame = Message::batch_frame(std::move(payloads));
  const Encoded whole = frame.encode();
  // Chopping the frame anywhere — inside the count prefix, between
  // payloads, mid-payload — must throw, never mis-decode.
  for (std::uint64_t bits = 0; bits < whole.bits; ++bits) {
    Encoded cut = whole;
    cut.bits = bits;
    EXPECT_THROW((void)Message::decode(cut), ContractError) << "bits=" << bits;
  }
  // A stray trailing bit is equally malformed.
  Encoded padded = whole;
  padded.bits += 1;
  padded.bytes.resize((padded.bits + 7) / 8, 0);
  EXPECT_THROW((void)Message::decode(padded), ContractError);
}

TEST(BatchFrame, FramesNeverNest) {
  std::vector<Encoded> inner;
  inner.push_back(Message::reject_wave().encode());
  inner.push_back(Message::data_move(7).encode());
  const Encoded nested = Message::batch_frame(std::move(inner)).encode();
  std::vector<Encoded> outer;
  outer.push_back(nested);
  EXPECT_THROW((void)Message::batch_frame(std::move(outer)), ContractError);
}

// ---- coalescing preserves per-link delivery order ---------------------------

/// One delivery stream: bursts of same-tick sends on two links, under the
/// given fault policy, recording arrival order per link.  Returns the two
/// per-link sequences; batching on and off must produce the same ones.
struct StreamResult {
  std::vector<std::uint64_t> link_a;
  std::vector<std::uint64_t> link_b;
  std::uint64_t frames = 0;
  bool operator==(const StreamResult&) const = default;
};

using FaultFactory = std::unique_ptr<FaultPolicy> (*)();

StreamResult run_stream(DelayKind kind, FaultFactory make_fault,
                        bool batching) {
  EventQueue q;
  Network net(q, make_delay(kind, 99));
  net.set_batching(batching);
  if (make_fault != nullptr) net.set_fault_policy(make_fault());
  StreamResult out;
  Rng rng(5);
  std::uint64_t id = 0;
  for (int burst = 0; burst < 40; ++burst) {
    // Same-tick bursts are what coalescing feeds on; vary the burst size
    // and interleave the two links so frames open and close mid-burst.
    const std::uint64_t k = 1 + rng.uniform(0, 5);
    for (std::uint64_t i = 0; i < k; ++i) {
      const std::uint64_t msg_id = id++;
      net.send(0, 1, Message::data_move(msg_id),
               [&out, msg_id] { out.link_a.push_back(msg_id); });
      if (rng.chance(0.4)) {
        const std::uint64_t other = id++;
        net.send(2, 3, Message::data_move(other),
                 [&out, other] { out.link_b.push_back(other); });
      }
    }
    q.run();
  }
  out.frames = net.batch_stats().frames;
  return out;
}

class BatchFifo : public ::testing::TestWithParam<DelayKind> {};

TEST_P(BatchFifo, OrderIdenticalUnderEveryFaultAdversary) {
  const DelayKind kind = GetParam();
  const FaultFactory adversaries[] = {
      nullptr,
      +[]() -> std::unique_ptr<FaultPolicy> {
        return std::make_unique<DropFault>(Rng(11), 0.2);
      },
      +[]() -> std::unique_ptr<FaultPolicy> {
        return std::make_unique<DuplicateFault>(Rng(5), 0.3);
      },
      +[]() -> std::unique_ptr<FaultPolicy> {
        return std::make_unique<BurstLossFault>(Rng(7), 0.5, 96, 24);
      },
      +[]() -> std::unique_ptr<FaultPolicy> {
        return std::make_unique<StallFault>(Rng(3), 0.2, 64, 8);
      },
      +[]() -> std::unique_ptr<FaultPolicy> {
        std::vector<std::unique_ptr<FaultPolicy>> kids;
        kids.push_back(std::make_unique<DropFault>(Rng(1), 0.1));
        kids.push_back(std::make_unique<StallFault>(Rng(2), 0.1, 64, 8));
        return std::make_unique<ComposedFault>(std::move(kids));
      },
  };
  for (std::size_t i = 0; i < std::size(adversaries); ++i) {
    const StreamResult plain = run_stream(kind, adversaries[i], false);
    const StreamResult batched = run_stream(kind, adversaries[i], true);
    EXPECT_EQ(batched.link_a, plain.link_a) << "adversary " << i;
    EXPECT_EQ(batched.link_b, plain.link_b) << "adversary " << i;
    EXPECT_EQ(plain.frames, 0u) << "adversary " << i;
  }
  // The comparison must not be vacuous: fault-free streams coalesce.
  EXPECT_GT(run_stream(kind, nullptr, true).frames, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllDelayKinds, BatchFifo,
                         ::testing::Values(DelayKind::kFixed,
                                           DelayKind::kUniform,
                                           DelayKind::kHeavyTail,
                                           DelayKind::kBiased,
                                           DelayKind::kReorder),
                         [](const auto& info) {
                           return std::string(delay_kind_name(info.param));
                         });

}  // namespace
}  // namespace dyncon::sim

// ---- batched grants: registry-identical to unbatched ------------------------

namespace dyncon::core {
namespace {

struct DistRun {
  std::string registry_json;
  std::uint64_t messages = 0;
  std::uint64_t events = 0;
  std::uint64_t granted = 0;
};

/// An async request flood on a mixed tree: overlapping events at shared
/// ancestors force waiter queues, so unlock waves release multiple agents
/// back to back — the traffic both vectorized grants and same-edge
/// coalescing act on.
DistRun run_distributed(std::uint64_t seed, bool batch_grants,
                        bool net_batching) {
  obs::Registry reg;
  DistRun out;
  {
    obs::ScopedMetrics scope(reg);
    Rng rng(seed);
    sim::EventQueue queue;
    sim::Network net(queue, sim::make_delay(sim::DelayKind::kUniform, 17));
    net.set_batching(net_batching);
    tree::DynamicTree t;
    workload::build(t, workload::Shape::kRandomAttach, 48, rng);
    DistributedController::Options opts;
    opts.batch_grants = batch_grants;
    DistributedController ctrl(net, t, Params(1u << 16, 1u << 15, 4096),
                               opts);
    const auto nodes = t.alive_nodes();
    for (int wave = 0; wave < 6; ++wave) {
      for (int i = 0; i < 24; ++i) {
        const NodeId u = nodes[rng.uniform(0, nodes.size() - 1)];
        ctrl.submit_event(u, [&out](const Result& r) {
          out.granted += r.granted() ? 1 : 0;
        });
      }
      queue.run();
    }
    out.messages = ctrl.messages_used();
    out.events = queue.events_fired();
  }
  out.registry_json = reg.to_json().dump();
  return out;
}

TEST(BatchedGrants, BitIdenticalToUnbatchedOnSeedSweep) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const DistRun base = run_distributed(seed, false, false);
    ASSERT_GT(base.granted, 0u);
    for (const bool grants : {false, true}) {
      for (const bool batching : {false, true}) {
        if (!grants && !batching) continue;
        const DistRun r = run_distributed(seed, grants, batching);
        EXPECT_EQ(r.registry_json, base.registry_json)
            << "seed=" << seed << " grants=" << grants
            << " batching=" << batching;
        EXPECT_EQ(r.messages, base.messages) << "seed=" << seed;
        EXPECT_EQ(r.events, base.events) << "seed=" << seed;
        EXPECT_EQ(r.granted, base.granted) << "seed=" << seed;
      }
    }
  }
}

}  // namespace
}  // namespace dyncon::core

// ---- forest: byte-identical across shard counts and batching ----------------

namespace dyncon::forest {
namespace {

std::string forest_registry(unsigned shards, bool batch_exchange) {
  ForestConfig cfg;
  cfg.shards = shards;
  cfg.mux.users = 96;
  cfg.mux.trees = 12;
  cfg.mux.requests_per_user = 6;
  cfg.tree_size = 12;
  cfg.window = 64;
  cfg.batch_exchange = batch_exchange;
  obs::Registry reg;
  ForestEngine engine(cfg, /*seed=*/77);
  {
    obs::ScopedMetrics scope(reg);
    (void)engine.run();
  }
  return reg.to_json().dump();
}

TEST(ForestBatching, ByteIdenticalAcrossShardsAndBatching) {
  const std::string base = forest_registry(1, false);
  for (const unsigned shards : {1u, 3u, 8u}) {
    for (const bool batching : {false, true}) {
      if (shards == 1 && !batching) continue;
      EXPECT_EQ(forest_registry(shards, batching), base)
          << "shards=" << shards << " batch_exchange=" << batching;
    }
  }
}

}  // namespace
}  // namespace dyncon::forest

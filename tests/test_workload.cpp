// Unit tests for the workload module: shape builders, churn generators,
// scenario drivers.

#include <gtest/gtest.h>

#include "core/trivial_controller.hpp"
#include "tree/validate.hpp"
#include "workload/churn.hpp"
#include "workload/scenario.hpp"
#include "workload/shapes.hpp"

namespace dyncon::workload {
namespace {

using tree::DynamicTree;

TEST(Shapes, AllShapesReachTarget) {
  for (Shape s : all_shapes()) {
    Rng rng(5);
    DynamicTree t;
    build(t, s, 100, rng);
    EXPECT_EQ(t.size(), 100u) << shape_name(s);
    EXPECT_TRUE(tree::validate(t).ok()) << shape_name(s);
  }
}

TEST(Shapes, PathIsDeep) {
  Rng rng(1);
  DynamicTree t;
  build(t, Shape::kPath, 50, rng);
  EXPECT_EQ(t.depth(t.alive_nodes().back()), 49u);
}

TEST(Shapes, StarIsShallow) {
  Rng rng(1);
  DynamicTree t;
  build(t, Shape::kStar, 50, rng);
  for (NodeId v : t.alive_nodes()) EXPECT_LE(t.depth(v), 1u);
}

TEST(Shapes, BinaryDepthLogarithmic) {
  Rng rng(1);
  DynamicTree t;
  build(t, Shape::kBinary, 127, rng);
  std::uint64_t max_depth = 0;
  for (NodeId v : t.alive_nodes()) {
    max_depth = std::max(max_depth, t.depth(v));
  }
  EXPECT_EQ(max_depth, 6u);
}

TEST(Shapes, CaterpillarHasSpineAndLegs) {
  Rng rng(1);
  DynamicTree t;
  build(t, Shape::kCaterpillar, 60, rng);
  std::uint64_t leaves = 0;
  for (NodeId v : t.alive_nodes()) leaves += t.is_leaf(v);
  EXPECT_GE(leaves, 25u);  // roughly half the nodes are legs
  std::uint64_t max_depth = 0;
  for (NodeId v : t.alive_nodes()) {
    max_depth = std::max(max_depth, t.depth(v));
  }
  EXPECT_GE(max_depth, 20u);  // and there is a long spine
}

TEST(Shapes, BroomHandleThenFan) {
  Rng rng(1);
  DynamicTree t;
  build(t, Shape::kBroom, 40, rng);
  // Handle of ~20, then ~20 bristles at its tip.
  std::uint64_t leaves = 0;
  for (NodeId v : t.alive_nodes()) leaves += t.is_leaf(v);
  EXPECT_GE(leaves, 18u);
}

TEST(Shapes, RandomPickers) {
  Rng rng(2);
  DynamicTree t;
  build(t, Shape::kRandomAttach, 20, rng);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(t.alive(random_node(t, rng)));
    EXPECT_NE(random_non_root(t, rng), t.root());
  }
}

TEST(Churn, GrowOnlyProposesOnlyAdds) {
  Rng rng(3);
  DynamicTree t;
  build(t, Shape::kRandomAttach, 10, rng);
  ChurnGenerator gen(ChurnModel::kGrowOnly, Rng(4));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(gen.next(t).type, core::RequestSpec::Type::kAddLeaf);
  }
}

TEST(Churn, ShrinkProposesOnlyRemovals) {
  Rng rng(3);
  DynamicTree t;
  build(t, Shape::kRandomAttach, 10, rng);
  ChurnGenerator gen(ChurnModel::kShrink, Rng(4));
  for (int i = 0; i < 20; ++i) {
    const auto spec = gen.next(t);
    EXPECT_EQ(spec.type, core::RequestSpec::Type::kRemove);
    EXPECT_NE(spec.subject, t.root());
  }
}

TEST(Churn, ProposalsAlwaysValid) {
  for (ChurnModel m : all_churn_models()) {
    Rng rng(5);
    DynamicTree t;
    build(t, Shape::kRandomAttach, 12, rng);
    ChurnGenerator gen(m, Rng(6));
    core::TrivialController ctrl(t, 100000);
    for (int i = 0; i < 300; ++i) {
      const auto spec = gen.next(t);
      EXPECT_TRUE(t.alive(spec.subject)) << churn_name(m);
      // Applying through a controller must never throw.
      switch (spec.type) {
        case core::RequestSpec::Type::kAddLeaf:
          ctrl.request_add_leaf(spec.subject);
          break;
        case core::RequestSpec::Type::kAddInternal:
          ctrl.request_add_internal_above(spec.subject);
          break;
        case core::RequestSpec::Type::kRemove:
          ctrl.request_remove(spec.subject);
          break;
        case core::RequestSpec::Type::kEvent:
          ctrl.request_event(spec.subject);
          break;
      }
      ASSERT_TRUE(tree::validate(t).ok()) << churn_name(m) << " step " << i;
    }
  }
}

TEST(Churn, FlashCrowdAlternates) {
  Rng rng(7);
  DynamicTree t;
  build(t, Shape::kRandomAttach, 30, rng);
  ChurnGenerator gen(ChurnModel::kFlashCrowd, Rng(8));
  int adds = 0, removes = 0;
  core::TrivialController ctrl(t, 100000);
  for (int i = 0; i < 400; ++i) {
    const auto spec = gen.next(t);
    if (spec.type == core::RequestSpec::Type::kAddLeaf) {
      ++adds;
      ctrl.request_add_leaf(spec.subject);
    } else if (spec.type == core::RequestSpec::Type::kRemove) {
      ++removes;
      ctrl.request_remove(spec.subject);
    }
  }
  EXPECT_GT(adds, 50);
  EXPECT_GT(removes, 50);
}

TEST(Scenario, StatsTally) {
  Rng rng(9);
  DynamicTree t;
  build(t, Shape::kRandomAttach, 10, rng);
  core::TrivialController ctrl(t, 20);
  ChurnGenerator gen(ChurnModel::kBirthDeath, Rng(10));
  const auto stats = run_churn(ctrl, t, gen, 100, 0.5, rng);
  EXPECT_EQ(stats.requests, 100u);
  EXPECT_LE(stats.granted, 20u);
  EXPECT_EQ(stats.granted + stats.rejected + stats.moot + stats.other, 100u);
  EXPECT_FALSE(stats.str().empty());
}

}  // namespace
}  // namespace dyncon::workload

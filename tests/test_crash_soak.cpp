// Crash soak: node crash/restart adversary crossed with the link-fault and
// delay adversaries, in both durability modes (PROTOCOL.md §9).  Every
// cell must keep the permit-safety invariant (granted <= M), answer every
// request, conserve permits, drain every agent and channel, collect every
// doomed holder, and end with a clean watchdog verdict.
//
// Named CrashSoak.* so the sanitizer CI job's `-E "Soak"` filter skips it.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "agent/durable.hpp"
#include "core/distributed_controller.hpp"
#include "obs/metrics.hpp"
#include "sim/channel.hpp"
#include "sim/crash.hpp"
#include "sim/fault.hpp"
#include "sim/watchdog.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workload/shapes.hpp"

namespace dyncon::core {
namespace {

using tree::DynamicTree;

std::string label(sim::FaultKind f, sim::DelayKind d, agent::Durability dur,
                  std::uint64_t seed) {
  return std::string(sim::fault_kind_name(f)) + "/" +
         sim::delay_kind_name(d) + "/" + agent::durability_name(dur) +
         "/seed=" + std::to_string(seed);
}

void crash_soak_one(sim::FaultKind fault, sim::DelayKind delay,
                    agent::Durability durability, std::uint64_t seed) {
  SCOPED_TRACE(label(fault, delay, durability, seed));
  Rng rng(seed);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(delay, seed + 1));
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 32, rng);

  sim::CrashSchedule sch(Rng(seed + 3), 0.3, 512, 64);
  sch.set_limit(32);
  sch.set_immune(t.root());
  auto sched = std::make_shared<const sim::CrashSchedule>(sch);
  net.set_fault_policy(sim::make_crash_stack(
      fault == sim::FaultKind::kNone ? nullptr
                                     : sim::make_fault(fault, seed + 2),
      sched));
  net.enable_reliability();
  sim::CrashDriver crashes(queue, sched);
  sim::Watchdog wd(queue, 20'000'000);

  const std::uint64_t M = 60, W = 10;
  DistributedController::Options opts;
  opts.watchdog = &wd;
  opts.crashes = &crashes;
  opts.durability = durability;
  DistributedController ctrl(net, t, Params(M, W, 256), opts);
  crashes.start(32, SimTime{1} << 16);

  const auto nodes = t.alive_nodes();
  std::uint64_t answered = 0, granted = 0, rejected = 0;
  const std::uint64_t requests = 150;
  for (std::uint64_t i = 0; i < requests; ++i) {
    ctrl.submit_event(nodes[rng.index(nodes.size())], [&](const Result& r) {
      ++answered;
      granted += r.granted();
      rejected += r.outcome == Outcome::kRejected;
    });
  }
  queue.run();
  while (wd.run_recovery_sweep() > 0) queue.run();
  wd.verify_idle();

  // Safety and liveness.  Crash-failed requests surface as rejections, so
  // every request still gets exactly one verdict; the M-W band is only
  // promised when nothing is lost (durable mode) — a volatile crash may
  // strand rescued permits in static packages nobody asks for again.
  EXPECT_EQ(answered, requests);
  EXPECT_EQ(granted + rejected, requests);
  EXPECT_LE(granted, M);
  if (durability == agent::Durability::kDurable) {
    EXPECT_GE(granted, M - W);
    ASSERT_NE(ctrl.durable_store(), nullptr);
    EXPECT_GT(ctrl.durable_store()->writes(), 0u);
  }
  // Conservation and drain: crashes never mint or destroy permits, every
  // agent and channel drains, and every doomed holder was collected.
  EXPECT_EQ(ctrl.permits_granted() + ctrl.unused_permits(), M);
  EXPECT_EQ(ctrl.active_agents(), 0u);
  EXPECT_EQ(ctrl.doomed_holders(), 0u);
  ASSERT_NE(net.channel(), nullptr);
  EXPECT_EQ(net.channel()->in_flight(), 0u);
  // The adversary actually fired.
  EXPECT_GT(crashes.crashes(), 0u);
  EXPECT_GE(crashes.crashes(), crashes.restarts());
}

TEST(CrashSoak, EveryFaultTimesDelayTimesDurability) {
  constexpr sim::FaultKind kFaults[] = {
      sim::FaultKind::kNone, sim::FaultKind::kDrop, sim::FaultKind::kChaos};
  constexpr sim::DelayKind kDelays[] = {sim::DelayKind::kFixed,
                                        sim::DelayKind::kReorder,
                                        sim::DelayKind::kHeavyTail};
  constexpr agent::Durability kDur[] = {agent::Durability::kVolatile,
                                        agent::Durability::kDurable};
  std::vector<std::tuple<sim::FaultKind, sim::DelayKind, agent::Durability>>
      grid;
  for (const auto f : kFaults) {
    for (const auto d : kDelays) {
      for (const auto dur : kDur) grid.emplace_back(f, d, dur);
    }
  }
  util::for_each_index(grid.size(), util::ThreadPool::hardware_jobs(),
                       [&](std::uint64_t i) {
                         const auto& [f, d, dur] = grid[i];
                         crash_soak_one(f, d, dur, 7);
                       });
}

TEST(CrashSoak, SeedSweepUnderCrashChaos) {
  std::vector<std::pair<agent::Durability, std::uint64_t>> grid;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    grid.emplace_back(agent::Durability::kVolatile, seed);
    grid.emplace_back(agent::Durability::kDurable, 100 + seed);
  }
  util::for_each_index(grid.size(), util::ThreadPool::hardware_jobs(),
                       [&](std::uint64_t i) {
                         crash_soak_one(sim::FaultKind::kChaos,
                                        sim::DelayKind::kReorder,
                                        grid[i].first, grid[i].second);
                       });
}

TEST(CrashSoak, TopologyChurnUnderCrashes) {
  // Crashes interleaved with topological requests: adds extend the tree
  // (past the crash limit — nodes born mid-run never crash), removes make
  // later requests moot, and the durable journal must track the splices.
  for (const agent::Durability dur :
       {agent::Durability::kVolatile, agent::Durability::kDurable}) {
    SCOPED_TRACE(agent::durability_name(dur));
    Rng rng(17);
    sim::EventQueue queue;
    sim::Network net(queue, sim::make_delay(sim::DelayKind::kUniform, 19));
    DynamicTree t;
    workload::build(t, workload::Shape::kRandomAttach, 32, rng);

    sim::CrashSchedule sch(Rng(23), 0.3, 512, 64);
    sch.set_limit(32);
    sch.set_immune(t.root());
    auto sched = std::make_shared<const sim::CrashSchedule>(sch);
    net.set_fault_policy(sim::make_crash_stack(nullptr, sched));
    net.enable_reliability();
    sim::CrashDriver crashes(queue, sched);
    sim::Watchdog wd(queue, 20'000'000);

    const std::uint64_t M = 60, W = 10;
    DistributedController::Options opts;
    opts.watchdog = &wd;
    opts.crashes = &crashes;
    opts.durability = dur;
    DistributedController ctrl(net, t, Params(M, W, 256), opts);
    crashes.start(32, SimTime{1} << 16);

    const auto nodes = t.alive_nodes();
    std::uint64_t answered = 0, granted = 0, rejected = 0, moot = 0;
    const std::uint64_t requests = 100;
    for (std::uint64_t i = 0; i < requests; ++i) {
      const NodeId subject = nodes[rng.index(nodes.size())];
      auto done = [&](const Result& r) {
        ++answered;
        granted += r.granted();
        rejected += r.outcome == Outcome::kRejected;
        moot += r.outcome == Outcome::kMoot;
      };
      const std::size_t die = rng.index(100);
      if (die < 60) {
        ctrl.submit_event(subject, done);
      } else if (die < 85) {
        ctrl.submit_add_leaf(subject, done);
      } else if (subject != t.root()) {
        ctrl.submit_remove(subject, done);
      } else {
        ctrl.submit_event(subject, done);
      }
    }
    queue.run();
    while (wd.run_recovery_sweep() > 0) queue.run();
    wd.verify_idle();

    EXPECT_EQ(answered, requests);
    EXPECT_EQ(granted + rejected + moot, requests);
    EXPECT_LE(granted, M);
    EXPECT_EQ(ctrl.permits_granted() + ctrl.unused_permits(), M);
    EXPECT_EQ(ctrl.active_agents(), 0u);
    EXPECT_EQ(ctrl.doomed_holders(), 0u);
    EXPECT_EQ(net.channel()->in_flight(), 0u);
    EXPECT_GT(crashes.crashes(), 0u);
  }
}

TEST(CrashSoak, BatchingIdentityUnderCrashes) {
  // One grid cell (chaos faults x reorder delay x durable journal), run
  // with delivery batching on and off: coalescing is transport-only, so
  // the registries and outcome tallies must be byte-identical even while
  // nodes crash mid-flight.  CI's chaos-smoke job also runs this cell on
  // its own so a batching regression under crashes is attributable at a
  // glance.
  struct Fingerprint {
    std::string registry;
    std::uint64_t answered = 0, granted = 0, rejected = 0, frames = 0;
  };
  auto run_cell = [](bool batching) {
    Fingerprint fp;
    obs::Registry reg;
    obs::ScopedMetrics scope(reg);
    Rng rng(7);
    sim::EventQueue queue;
    sim::Network net(queue, sim::make_delay(sim::DelayKind::kReorder, 8));
    net.set_batching(batching);
    DynamicTree t;
    workload::build(t, workload::Shape::kRandomAttach, 32, rng);

    sim::CrashSchedule sch(Rng(10), 0.3, 512, 64);
    sch.set_limit(32);
    sch.set_immune(t.root());
    auto sched = std::make_shared<const sim::CrashSchedule>(sch);
    net.set_fault_policy(sim::make_crash_stack(
        sim::make_fault(sim::FaultKind::kChaos, 9), sched));
    net.enable_reliability();
    sim::CrashDriver crashes(queue, sched);
    sim::Watchdog wd(queue, 20'000'000);

    const std::uint64_t M = 60, W = 10;
    DistributedController::Options opts;
    opts.watchdog = &wd;
    opts.crashes = &crashes;
    opts.durability = agent::Durability::kDurable;
    DistributedController ctrl(net, t, Params(M, W, 256), opts);
    crashes.start(32, SimTime{1} << 16);

    const auto nodes = t.alive_nodes();
    for (std::uint64_t i = 0; i < 150; ++i) {
      ctrl.submit_event(nodes[rng.index(nodes.size())], [&](const Result& r) {
        ++fp.answered;
        fp.granted += r.granted();
        fp.rejected += r.outcome == Outcome::kRejected;
      });
    }
    queue.run();
    while (wd.run_recovery_sweep() > 0) queue.run();
    wd.verify_idle();
    fp.frames = net.batch_stats().frames;
    fp.registry = reg.to_json().dump();
    return fp;
  };

  const Fingerprint batched = run_cell(true);
  const Fingerprint plain = run_cell(false);
  EXPECT_EQ(batched.answered, 150u);
  EXPECT_EQ(batched.registry, plain.registry);
  EXPECT_EQ(batched.answered, plain.answered);
  EXPECT_EQ(batched.granted, plain.granted);
  EXPECT_EQ(batched.rejected, plain.rejected);
  // The knob actually engaged: frames only exist on the batched run.
  EXPECT_EQ(plain.frames, 0u);
  EXPECT_GT(batched.frames, 0u);
}

TEST(CrashSoak, WatchdogConvictsWithoutTheChannel) {
  // Control experiment: the same crash adversary without the reliable
  // channel loses agent hops for good — the watchdog must convict (after
  // exhausting its probe extensions), proving the cells above are guarded.
  Rng rng(3);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kUniform, 17));
  DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 24, rng);

  sim::CrashSchedule sch(Rng(41), 0.8, 128, 48);
  sch.set_limit(24);
  sch.set_immune(t.root());
  auto sched = std::make_shared<const sim::CrashSchedule>(sch);
  net.set_fault_policy(sim::make_crash_stack(nullptr, sched));
  sim::CrashDriver crashes(queue, sched);
  sim::Watchdog wd(queue, 100000);
  DistributedController::Options opts;
  opts.watchdog = &wd;
  opts.crashes = &crashes;
  opts.allow_unreliable_transport = true;
  DistributedController ctrl(net, t, Params(40, 8, 128), opts);
  crashes.start(24, SimTime{1} << 16);
  const auto nodes = t.alive_nodes();
  for (int i = 0; i < 40; ++i) {
    ctrl.submit_event(nodes[rng.index(nodes.size())], [](const Result&) {});
  }
  EXPECT_THROW(
      {
        queue.run();
        wd.verify_idle();
      },
      sim::WatchdogError);
  EXPECT_GT(wd.outstanding(), 0u);
}

}  // namespace
}  // namespace dyncon::core

// Empirical complexity-bound checks: the paper's asymptotic claims, tested
// as measured scaling shapes (the bench suite reproduces them as full
// experiment tables; these tests pin the qualitative facts).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "apps/size_estimation.hpp"
#include "core/distributed_controller.hpp"
#include "core/iterated_controller.hpp"
#include "core/trivial_controller.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

namespace dyncon::core {
namespace {

using tree::DynamicTree;

/// Flood a path tree of n nodes with M = n events; return total cost.
template <typename MakeCtrl>
std::uint64_t flood_cost(std::uint64_t n, MakeCtrl make, std::uint64_t seed) {
  Rng rng(seed);
  DynamicTree t;
  workload::build(t, workload::Shape::kPath, n, rng);
  auto ctrl = make(t, n);
  const auto nodes = t.alive_nodes();
  for (std::uint64_t i = 0; i < n; ++i) {
    ctrl->request_event(nodes[rng.index(nodes.size())]);
  }
  return ctrl->cost();
}

TEST(Complexity, ControllerNearLinearTrivialQuadratic) {
  // Lemma 3.3/Obs 3.4: ours is O(U log^2 U); trivial is Omega(n*M) = n^2
  // here.  At laptop scales our psi constant keeps the measured slope a
  // little above 1.5, but it must sit clearly below the trivial
  // controller's ~2 and the absolute gap must widen with n.
  std::vector<double> ns, ours, trivial;
  for (std::uint64_t n : {512u, 1024u, 2048u, 4096u}) {
    ns.push_back(static_cast<double>(n));
    ours.push_back(static_cast<double>(flood_cost(
        n,
        [](DynamicTree& t, std::uint64_t m) {
          return std::make_unique<IteratedController>(t, m, m / 2, 2 * m);
        },
        7)));
    trivial.push_back(static_cast<double>(flood_cost(
        n,
        [](DynamicTree& t, std::uint64_t m) {
          return std::make_unique<TrivialController>(t, m);
        },
        7)));
  }
  const double slope_ours = loglog_slope(ns, ours);
  const double slope_trivial = loglog_slope(ns, trivial);
  EXPECT_LT(slope_ours, slope_trivial - 0.25);
  EXPECT_GT(slope_trivial, 1.8) << "trivial should be ~n^2";
  EXPECT_LT(ours.back(), trivial.back() / 4);
  // The advantage grows with n.
  EXPECT_GT(trivial.back() / ours.back(), trivial.front() / ours.front());
}

TEST(Complexity, MoveComplexityWithinPaperConstant) {
  // Obs. 3.4: O(U log^2 U log(M/(W+1))).  Check the measured cost against
  // the formula with a fixed constant across sizes.
  for (std::uint64_t n : {128u, 256u, 512u}) {
    const std::uint64_t cost = flood_cost(
        n,
        [](DynamicTree& t, std::uint64_t m) {
          return std::make_unique<IteratedController>(t, m, m / 2, 2 * m);
        },
        11);
    const double U = static_cast<double>(2 * n);
    const double bound = 8.0 * U * std::log2(U) * std::log2(U);
    EXPECT_LT(static_cast<double>(cost), bound) << "n=" << n;
  }
}

TEST(Complexity, DistributedMessagesTrackCentralizedMoves) {
  // Lemma 4.5: the agent traverses at most ~4x the centralized move
  // distance, plus control/reject terms.
  for (std::uint64_t n : {64u, 128u, 256u}) {
    Rng rng(13);
    DynamicTree td;
    workload::build(td, workload::Shape::kPath, n, rng);
    sim::EventQueue queue;
    sim::Network net(queue, sim::make_delay(sim::DelayKind::kFixed, 1));
    const Params params(n, n / 2, 2 * n);
    DistributedController dist(net, td, params);
    DistributedSyncFacade facade(queue, dist);

    Rng rng2(13);
    DynamicTree tc;
    workload::build(tc, workload::Shape::kPath, n, rng2);
    CentralizedController cent(tc, params);

    Rng pick(17);
    const auto nodes = td.alive_nodes();
    for (std::uint64_t i = 0; i < n; ++i) {
      const NodeId u = nodes[pick.index(nodes.size())];
      facade.request_event(u);
      cent.request_event(u);
    }
    EXPECT_LE(dist.messages_used(), 6 * cent.cost() + 8 * n) << "n=" << n;
    EXPECT_GE(dist.messages_used(), cent.cost()) << "n=" << n;
  }
}

TEST(Complexity, SizeEstimationAmortizedPolylog) {
  // Thm 5.1: O(n0 log^2 n0 + sum_j log^2 n_j) messages; per-change
  // amortized cost must shrink relative to n as n grows.
  std::vector<double> ns, per_change;
  for (std::uint64_t n : {128u, 256u, 512u}) {
    Rng rng(19);
    DynamicTree t;
    workload::build(t, workload::Shape::kRandomAttach, n, rng);
    apps::SizeEstimation est(t, 2.0);
    workload::ChurnGenerator churn(workload::ChurnModel::kBirthDeath,
                                   Rng(23));
    const std::uint64_t steps = 4 * n;
    for (std::uint64_t i = 0; i < steps; ++i) {
      const auto spec = churn.next(t);
      if (spec.type == RequestSpec::Type::kAddLeaf) {
        est.request_add_leaf(spec.subject);
      } else {
        est.request_remove(spec.subject);
      }
    }
    ns.push_back(static_cast<double>(n));
    per_change.push_back(static_cast<double>(est.messages()) /
                         static_cast<double>(steps));
  }
  // Amortized per-change cost is polylog: it must grow far slower than n.
  const double slope = loglog_slope(ns, per_change);
  EXPECT_LT(slope, 0.7) << "per-change cost should be ~log^2 n";
  // And in absolute terms stay below c * log^2 n.
  for (std::size_t i = 0; i < ns.size(); ++i) {
    const double lg = std::log2(ns[i]);
    EXPECT_LT(per_change[i], 6.0 * lg * lg) << "n=" << ns[i];
  }
}

TEST(Complexity, WasteFactorLogarithmic) {
  // Obs 3.4: cost carries a log(M/(W+1)) factor.  The factor only
  // materializes once exhausting iterations strand permits (deep trees,
  // more demand than M), so drive 3M requests on a 2048-path.
  const std::uint64_t n = 2048;
  const auto run = [&](std::uint64_t W) {
    Rng rng(29);
    DynamicTree t;
    workload::build(t, workload::Shape::kPath, n, rng);
    IteratedController ctrl(t, n, W, 2 * n);
    const auto nodes = t.alive_nodes();
    for (std::uint64_t i = 0; i < 3 * n; ++i) {
      ctrl.request_event(nodes[rng.index(nodes.size())]);
    }
    return std::pair{ctrl.cost(), ctrl.iterations()};
  };
  const auto [big_w_cost, big_w_iters] = run(n / 2);
  const auto [small_w_cost, small_w_iters] = run(1);
  EXPECT_GT(small_w_iters, big_w_iters);  // tighter waste iterates more
  EXPECT_GT(small_w_cost, big_w_cost);    // ...and costs more
  EXPECT_LT(small_w_cost, 40 * big_w_cost);  // but only logarithmically
}

}  // namespace
}  // namespace dyncon::core

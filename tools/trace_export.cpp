// trace_export — convert a run report's spans + timeline into Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing).
//
//   trace_export <report.json> [out.json]
//
// Default output path is <report.json> with a ".trace.json" suffix.  The
// conversion itself lives in obs/chrome_trace.{hpp,cpp} so tests validate
// it in-process; this is only the file plumbing.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"

using dyncon::obs::json::Value;

namespace {

bool load(const std::string& path, Value& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_export: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string err;
  if (!Value::parse(buf.str(), out, &err)) {
    std::fprintf(stderr, "trace_export: %s: %s\n", path.c_str(), err.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2 && argc != 3) {
    std::fprintf(stderr,
                 "usage: trace_export <report.json> [out.json]\n"
                 "  writes Chrome trace-event JSON (open in Perfetto)\n");
    return 2;
  }
  const std::string in_path = argv[1];
  const std::string out_path =
      argc == 3 ? argv[2] : in_path + ".trace.json";

  Value report;
  if (!load(in_path, report)) return 1;
  Value trace;
  std::string err;
  if (!dyncon::obs::chrome_trace_from_report(report, trace, &err)) {
    std::fprintf(stderr, "trace_export: %s: %s\n", in_path.c_str(),
                 err.c_str());
    return 1;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "trace_export: cannot write %s\n", out_path.c_str());
    return 1;
  }
  trace.dump(out);
  out << '\n';
  out.flush();
  if (!out) {
    std::fprintf(stderr, "trace_export: write to %s failed\n",
                 out_path.c_str());
    return 1;
  }
  const std::size_t events = trace.find("traceEvents")->as_array().size();
  std::printf("trace_export: %zu events -> %s\n", events, out_path.c_str());
  return 0;
}

#!/usr/bin/env python3
"""Validate a run-report JSON written via --metrics-out.

usage: check_report.py <report.json> [counter ...]

Checks the fixed schema (every key of obs::RunReport is always present) and,
for each counter named on the command line, that it exists and is nonzero.
Exits nonzero with a message on the first violation; prints a one-line
summary on success.  Used by the CI metrics-smoke job.
"""

import json
import sys

REQUIRED_KEYS = ("name", "params", "metrics", "histograms", "net_stats",
                 "wall_time_sec")


def fail(msg: str) -> None:
    print(f"check_report: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) < 2:
        fail("usage: check_report.py <report.json> [counter ...]")

    path = sys.argv[1]
    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    for key in REQUIRED_KEYS:
        if key not in report:
            fail(f"{path}: missing required key '{key}'")

    metrics = report["metrics"]
    for section in ("counters", "gauges"):
        if section not in metrics or not isinstance(metrics[section], dict):
            fail(f"{path}: metrics.{section} missing or not an object")

    if not isinstance(report["wall_time_sec"], (int, float)):
        fail(f"{path}: wall_time_sec is not a number")

    counters = metrics["counters"]
    for name in sys.argv[2:]:
        if name not in counters:
            fail(f"{path}: counter '{name}' not in report")
        if counters[name] == 0:
            fail(f"{path}: counter '{name}' is zero")

    print(f"check_report: {path} ok "
          f"({len(counters)} counters, "
          f"{report['net_stats'].get('messages', 0)} messages, "
          f"wall {report['wall_time_sec']:.2f}s)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Validate a run-report JSON written via --metrics-out.

usage: check_report.py <report.json> [counter ...]

Checks the fixed schema (every key of obs::RunReport is always present) and,
for each counter named on the command line, that it exists and is nonzero.
Also cross-validates the fault/reliability metric families whenever they
appear (a report must not claim retransmissions on a loss-free transport,
nor more watchdog completions than arms), the crash.* / recovery.* families
written by the crash/restart adversary (restarts bounded by crashes, journal
replays by restarts, surfaced failures by killed agents — plus exp21's
per-point permit accounting), the perf.* family written by
bench/perf_suite (rates positive, percentiles ordered, per-phase event
counts summing to the total), the perf.parallel.* scaling family (speedup
gauge consistent with the per-jobs throughputs), the perf.batch.* batching
economics (coalesced messages bounded by accounted messages, cache hits by
lookups, frame-size histogram conserving the frame count), the forest.* /
perf.forest.* family written by the sharded forest runtime and
bench/exp19_forest_scaling (outcome and op-mix counters partitioning the
request total, speedups consistent with the per-shard-count rates), and —
when the exp17
per-rate gauges are present — that the measured reliability overhead is
monotone in the drop rate.  The causal-observability sections added with
the span subsystem are validated too: req.latency.* histogram counts must
partition forest.requests.total with ordered percentile gauges, the
"timeline" flight-recorder section must hold well-formed monotone rows, and
the "spans" section must be internally consistent (conserved ring counts,
non-negative durations, resolvable parents).  Exits nonzero with a message
on the first violation; prints a one-line summary on success.  Used by the
CI metrics-smoke and chaos-smoke jobs.
"""

import json
import sys

REQUIRED_KEYS = ("name", "params", "metrics", "histograms", "net_stats",
                 "spans", "timeline", "wall_time_sec")


FAULT_FAMILIES = ("faults.", "channel.", "watchdog.", "crash.", "recovery.")


def fail(msg: str) -> None:
    print(f"check_report: {msg}", file=sys.stderr)
    sys.exit(1)


def check_fault_families(path: str, counters: dict) -> None:
    """Consistency of the faults.* / channel.* / watchdog.* counters."""
    for name, value in counters.items():
        if not name.startswith(FAULT_FAMILIES):
            continue
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counter '{name}' = {value!r} is not a "
                 f"non-negative integer")

    get = lambda name: counters.get(name, 0)
    # A retransmission only ever happens because an ack did not come back
    # in time, which on this simulator requires a lost transmission — either
    # a fault-injected drop or a frame eaten by a crashed endpoint.
    if (get("channel.retransmits") > 0 and get("faults.injected.drop") == 0
            and get("crash.drops") == 0):
        fail(f"{path}: channel.retransmits = "
             f"{get('channel.retransmits')} but faults.injected.drop = 0 "
             f"and crash.drops = 0 "
             f"(retransmissions on a loss-free transport)")
    # Every suppressed duplicate is either a fault-injected copy or a
    # retransmission of a frame that already arrived.
    if (get("channel.duplicates_suppressed") >
            get("faults.injected.duplicate") + get("channel.retransmits")):
        fail(f"{path}: channel.duplicates_suppressed exceeds injected "
             f"duplicates + retransmits")
    if get("watchdog.completed") > get("watchdog.armed"):
        fail(f"{path}: watchdog.completed > watchdog.armed")


def check_crash_family(path: str, counters: dict, gauges: dict,
                       params: dict) -> None:
    """Consistency of the crash.* / recovery.* families written by the
    crash/restart adversary (sim/crash) and the recovery machinery
    (PROTOCOL.md §9): every restart follows a crash, every journal replay
    follows a restart, every surfaced request failure names a killed agent,
    and — when the exp21.point.* gauges are present — per-point permit
    accounting (granted + safety_margin == M), crash-free baselines staying
    crash-free, durable cells staying kill- and redrive-free, and ordered
    recovery-latency percentiles."""
    get = lambda name: counters.get(name, 0)
    if get("crash.node_restarts") > get("crash.node_crashes"):
        fail(f"{path}: crash.node_restarts = {get('crash.node_restarts')} "
             f"exceeds crash.node_crashes = {get('crash.node_crashes')} "
             f"(a restart without a crash)")
    if get("recovery.boards_restored") > get("crash.node_restarts"):
        fail(f"{path}: recovery.boards_restored = "
             f"{get('recovery.boards_restored')} exceeds "
             f"crash.node_restarts = {get('crash.node_restarts')} "
             f"(a journal replay without a restart)")
    if get("crash.requests_failed") > get("crash.agents_killed"):
        fail(f"{path}: crash.requests_failed = "
             f"{get('crash.requests_failed')} exceeds crash.agents_killed = "
             f"{get('crash.agents_killed')} (a surfaced failure without a "
             f"killed agent)")
    if get("crash.holders_doomed") > get("crash.agents_killed"):
        fail(f"{path}: crash.holders_doomed = "
             f"{get('crash.holders_doomed')} exceeds crash.agents_killed = "
             f"{get('crash.agents_killed')} (a doomed holder the release "
             f"wave never collected)")

    # exp21's per-point gauges, when present, pin the permit accounting.
    m = params.get("M")
    points = 0
    while f"exp21.point.{points}.crash_fraction" in gauges:
        p = lambda field: gauges.get(f"exp21.point.{points}.{field}", 0)
        if isinstance(m, int) and p("granted") + p("safety_margin") != m:
            fail(f"{path}: exp21 point {points}: granted "
                 f"{p('granted'):.0f} + margin {p('safety_margin'):.0f} "
                 f"!= M = {m}")
        if p("crash_fraction") == 0 and p("crashes") != 0:
            fail(f"{path}: exp21 point {points}: crash-free baseline "
                 f"reports {p('crashes'):.0f} crashes")
        if p("crashes") == 0 and (p("agents_killed") != 0
                                  or p("boards_restored") != 0):
            fail(f"{path}: exp21 point {points}: recovery work without a "
                 f"single crash")
        if p("durable") == 1 and (p("agents_killed") != 0
                                  or p("redrives") != 0):
            fail(f"{path}: exp21 point {points}: durable boards must not "
                 f"kill agents or redrive requests")
        if not (p("latency.p50") <= p("latency.p95") <= p("latency.p99")):
            fail(f"{path}: exp21 point {points}: recovery-latency "
                 f"percentiles not ordered")
        points += 1
    if get("crash.node_crashes") or points:
        print(f"check_report: crash/recovery family ok "
              f"({get('crash.node_crashes')} crashes, "
              f"{get('crash.node_restarts')} restarts, "
              f"{get('recovery.boards_restored')} boards restored"
              + (f", {points} exp21 points" if points else "") + ")")


def check_perf_family(path: str, counters: dict, gauges: dict) -> None:
    """Consistency of the perf.* family written by bench/perf_suite: rates
    and percentiles must be positive finite numbers, per-phase event counts
    must sum to the total, and the headline gauges must agree in sign with
    the phase gauges they are derived from."""
    perf_counters = {k: v for k, v in counters.items() if k.startswith("perf.")}
    perf_gauges = {k: v for k, v in gauges.items() if k.startswith("perf.")}
    if not perf_counters and not perf_gauges:
        return  # not a perf report
    for name, value in perf_counters.items():
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counter '{name}' = {value!r} is not a "
                 f"non-negative integer")
    for name, value in perf_gauges.items():
        if not isinstance(value, (int, float)) or value != value or value < 0:
            fail(f"{path}: gauge '{name}' = {value!r} is not a "
                 f"non-negative number")
    # The perf_suite headline gauges are only required when the report IS a
    # perf_suite report — one whose perf.* family extends beyond the
    # self-contained perf.parallel. / perf.forest. / perf.mem. scaling and
    # memory sub-families (exp19 writes perf.forest.* and perf.mem.* alone).
    suite_gauges = {k for k in perf_gauges
                    if not k.startswith(("perf.parallel.", "perf.forest.",
                                         "perf.mem."))}
    if suite_gauges:
        for required in ("perf.events_per_sec", "perf.allocs_per_event",
                         "perf.ns_per_event_p50", "perf.ns_per_event_p99"):
            if required not in perf_gauges:
                fail(f"{path}: perf report lacks gauge '{required}'")
        if perf_gauges["perf.events_per_sec"] <= 0:
            fail(f"{path}: perf.events_per_sec is not positive")
        if (perf_gauges["perf.ns_per_event_p99"] <
                perf_gauges["perf.ns_per_event_p50"]):
            fail(f"{path}: perf percentiles inverted (p99 < p50)")
        phase_events = sum(v for k, v in perf_counters.items()
                           if k.endswith(".events") and k != "perf.events"
                           and not k.startswith("perf.parallel."))
        total = perf_counters.get("perf.events", 0)
        if phase_events and total and phase_events != total:
            fail(f"{path}: per-phase perf.<phase>.events sum to "
                 f"{phase_events} but perf.events = {total}")
    check_parallel_family(path, perf_counters, perf_gauges)
    check_batch_family(path, counters, perf_gauges)
    if suite_gauges:
        print(f"check_report: perf family ok "
              f"({perf_gauges['perf.events_per_sec']:.0f} events/sec, "
              f"{perf_gauges['perf.allocs_per_event']:.3f} allocs/event)")


def check_parallel_family(path: str, counters: dict, gauges: dict) -> None:
    """Consistency of the perf.parallel.* family (parallel run-engine
    scaling phase): the jobs=1 throughput must be positive, the published
    speedup must equal the j4/j1 gauge ratio, and the batch counters must
    be positive integers.  (The parallel phase's events/sec gauges are
    intentionally absent from the cross-machine baseline comparison —
    check_bench.py gates them within a single report.)"""
    par_gauges = {k: v for k, v in gauges.items()
                  if k.startswith("perf.parallel.")}
    if not par_gauges:
        return  # older report without the parallel phase
    j1 = par_gauges.get("perf.parallel.events_per_sec_j1", 0.0)
    if j1 <= 0:
        fail(f"{path}: perf.parallel.events_per_sec_j1 is not positive")
    j4 = par_gauges.get("perf.parallel.events_per_sec_j4")
    speedup = par_gauges.get("perf.parallel.speedup_j4")
    if j4 is not None and speedup is not None:
        derived = j4 / j1
        if abs(speedup - derived) > 1e-6 * max(1.0, derived):
            fail(f"{path}: perf.parallel.speedup_j4 = {speedup:.6f} but "
                 f"j4/j1 = {derived:.6f}")
    if par_gauges.get("perf.parallel.hw_threads", 0.0) < 1.0:
        fail(f"{path}: perf.parallel.hw_threads below 1")
    for name in ("perf.parallel.events", "perf.parallel.runs"):
        value = counters.get(name)
        if not isinstance(value, int) or value <= 0:
            fail(f"{path}: counter '{name}' = {value!r} is not a "
                 f"positive integer")


def check_batch_family(path: str, counters: dict, gauges: dict) -> None:
    """Internal arithmetic of the perf.batch.* gauges (PR 9's batch-layer
    economics).  These are deliberately absent from the cross-report
    baseline diff — their values follow the --no-batch / --batch-window
    knobs — so the consistency gate lives here instead: every coalesced
    message is an accounted message, every cache hit was a lookup, and
    the frame-size histogram conserves the frame count.  (frame_bits is
    always >= member_bits — the frame adds a tag, a count prefix, and
    per-payload length prefixes on top of the members — so that is the
    direction checked; asserting the saving itself would be wrong.)"""
    bat = {k: v for k, v in gauges.items() if k.startswith("perf.batch.")}
    if not bat:
        return  # not a batching report (or --no-batch with nothing fired)
    get = lambda name: bat.get("perf.batch." + name, 0.0)
    frames = get("frames")
    batched = get("batched_msgs")
    if batched > counters.get("net.messages", 0):
        fail(f"{path}: perf.batch.batched_msgs = {batched:.0f} exceeds "
             f"net.messages = {counters.get('net.messages', 0)} (a frame "
             f"member that was never charged as a message)")
    if frames > 0 and batched < 2 * frames:
        fail(f"{path}: perf.batch.batched_msgs = {batched:.0f} but "
             f"perf.batch.frames = {frames:.0f}: lazy opening guarantees "
             f">= 2 members per frame")
    if frames > 0 and get("frame_bits") < get("member_bits"):
        fail(f"{path}: perf.batch.frame_bits = {get('frame_bits'):.0f} "
             f"below member_bits = {get('member_bits'):.0f} (the frame "
             f"header cannot have negative size)")
    buckets = sum(v for k, v in bat.items()
                  if k.startswith("perf.batch.msgs_per_frame_w"))
    if buckets != frames:
        fail(f"{path}: perf.batch.msgs_per_frame_w* buckets sum to "
             f"{buckets:.0f} but perf.batch.frames = {frames:.0f} "
             f"(frame-size histogram lost or double-counted a frame)")
    hits, lookups = get("cache_hits"), get("cache_lookups")
    if hits > lookups:
        fail(f"{path}: perf.batch.cache_hits = {hits:.0f} exceeds "
             f"cache_lookups = {lookups:.0f}")
    if lookups > 0:
        derived = hits / lookups
        rate = get("cache_hit_rate")
        if abs(rate - derived) > 1e-6:
            fail(f"{path}: perf.batch.cache_hit_rate = {rate:.6f} but "
                 f"hits/lookups = {derived:.6f}")
    print(f"check_report: batch family ok ({frames:.0f} frames / "
          f"{batched:.0f} msgs coalesced, cache hit rate "
          f"{get('cache_hit_rate'):.3f})")


def check_forest_family(path: str, counters: dict, gauges: dict) -> None:
    """Consistency of the forest.* counters and perf.forest.* gauges
    written by the sharded forest runtime / bench/exp19_forest_scaling:
    outcome and op-mix counters must partition the request total, the
    published speedups must equal the per-shard-count throughput ratios,
    and the per-shard-count request rates must all be positive.  (The
    perf.forest.* rates are machine-local — check_bench.py excludes them
    from the cross-machine baseline diff and gates the speedup within a
    single report.)"""
    total = counters.get("forest.requests.total")
    if total is not None:
        outcomes = (counters.get("forest.requests.granted", 0)
                    + counters.get("forest.requests.rejected", 0)
                    + counters.get("forest.requests.other", 0))
        if outcomes != total:
            fail(f"{path}: forest outcome counters sum to {outcomes} but "
                 f"forest.requests.total = {total}")
        ops = (counters.get("forest.ops.permit", 0)
               + counters.get("forest.ops.grow", 0)
               + counters.get("forest.ops.shrink", 0)
               + counters.get("forest.ops.destroy", 0))
        if ops != total:
            fail(f"{path}: forest op-mix counters sum to {ops} but "
                 f"forest.requests.total = {total}")
        if counters.get("forest.ops.shrink_noop", 0) > counters.get(
                "forest.ops.shrink", 0):
            fail(f"{path}: forest.ops.shrink_noop exceeds forest.ops.shrink")
        if counters.get("forest.ops.grow_capped", 0) > counters.get(
                "forest.ops.grow", 0):
            fail(f"{path}: forest.ops.grow_capped exceeds forest.ops.grow")

    rates = {k: v for k, v in gauges.items()
             if k.startswith("perf.forest.requests_per_sec.s")}
    if not rates:
        return
    for name, value in rates.items():
        if value <= 0:
            fail(f"{path}: gauge '{name}' is not positive")
    s1 = rates.get("perf.forest.requests_per_sec.s1")
    if s1 is None:
        fail(f"{path}: perf.forest rates present without the s1 reference")
    for name, rate in rates.items():
        k = name.rsplit(".s", 1)[1]
        speedup = gauges.get(f"perf.forest.speedup.s{k}")
        if speedup is None:
            fail(f"{path}: perf.forest.speedup.s{k} missing")
        derived = rate / s1
        if abs(speedup - derived) > 1e-6 * max(1.0, derived):
            fail(f"{path}: perf.forest.speedup.s{k} = {speedup:.6f} but "
                 f"s{k}/s1 = {derived:.6f}")
    if gauges.get("perf.forest.hw_threads", 0.0) < 1.0:
        fail(f"{path}: perf.forest.hw_threads below 1")
    print(f"check_report: forest family ok ({len(rates)} shard counts, "
          f"{gauges.get('perf.forest.allocs_per_event', 0.0):.4f} "
          f"allocs/event)")


def check_mem_family(path: str, gauges: dict) -> None:
    """Consistency of the perf.mem.* gauges written by EXP19's memory
    phase: the tree population must partition by lifecycle state
    (resident + hibernated == materialized, materialized + virgin ==
    trees), hibernated snapshots must carry bytes, and the kernel's peak
    RSS can never sit below the current reading.  Absolute byte values are
    machine-local (check_bench.py excludes the family from baseline
    diffs); only the internal arithmetic is checked here."""
    mem = {k[len("perf.mem."):]: v for k, v in gauges.items()
           if k.startswith("perf.mem.")}
    if not mem:
        return
    def get(name):
        v = mem.get(name)
        if v is None:
            fail(f"{path}: perf.mem.{name} missing from the perf.mem family")
        return v
    trees = get("trees")
    virgin = get("virgin_trees")
    resident = get("resident_trees")
    hibernated = get("hibernated_trees")
    materialized = get("materialized_trees")
    if resident + hibernated != materialized:
        fail(f"{path}: perf.mem tree states do not partition: "
             f"{resident:.0f} resident + {hibernated:.0f} hibernated != "
             f"{materialized:.0f} materialized")
    if materialized + virgin != trees:
        fail(f"{path}: perf.mem tree states do not partition: "
             f"{materialized:.0f} materialized + {virgin:.0f} virgin != "
             f"{trees:.0f} trees")
    if hibernated > 0 and get("image_bytes") <= 0:
        fail(f"{path}: {hibernated:.0f} hibernated trees but "
             f"perf.mem.image_bytes is zero")
    rss = get("rss_bytes")
    peak = get("peak_rss_bytes")
    if rss > 0 and peak > 0 and peak < rss:
        fail(f"{path}: perf.mem.peak_rss_bytes = {peak:.0f} below the "
             f"current rss {rss:.0f}")
    print(f"check_report: mem family ok ({resident:.0f} resident / "
          f"{hibernated:.0f} hibernated / {virgin:.0f} virgin of "
          f"{trees:.0f} trees)")


def check_exp17_monotone(path: str, gauges: dict) -> None:
    """exp17 publishes exp17.rate.<k>.{drop_rate,total_bits,...} gauges;
    the overhead (total bits for the identical workload) must not shrink
    as the drop rate grows."""
    rows = []
    k = 0
    while f"exp17.rate.{k}.drop_rate" in gauges:
        rows.append((gauges[f"exp17.rate.{k}.drop_rate"],
                     gauges.get(f"exp17.rate.{k}.total_bits", 0),
                     gauges.get(f"exp17.rate.{k}.retransmits", 0)))
        k += 1
    if not rows:
        return
    if len(rows) < 2:
        fail(f"{path}: exp17 gauges present but only {len(rows)} rate row")
    for i in range(1, len(rows)):
        if rows[i][0] <= rows[i - 1][0]:
            fail(f"{path}: exp17 drop rates not strictly increasing "
                 f"at row {i}")
        if rows[i][1] < rows[i - 1][1]:
            fail(f"{path}: exp17 overhead not monotone: total_bits fell "
                 f"from {rows[i - 1][1]:.0f} to {rows[i][1]:.0f} as the "
                 f"drop rate rose to {rows[i][0]}")
    if rows[0][0] == 0 and rows[0][2] != 0:
        fail(f"{path}: exp17 rate-0 row reports "
             f"{rows[0][2]:.0f} retransmits (passthrough violated)")
    if rows[-1][1] <= rows[0][1]:
        fail(f"{path}: exp17 overhead flat: faulted run is not more "
             f"expensive than the baseline")
    print(f"check_report: exp17 overhead monotone over {len(rows)} rates "
          f"({rows[0][1]:.0f} -> {rows[-1][1]:.0f} bits)")


def check_latency_family(path: str, counters: dict, gauges: dict,
                         histograms: dict) -> None:
    """Consistency of the req.latency.* family written by the request mux
    (always-on histograms) and bench/exp20_request_latency (percentile
    gauges): the per-op histogram counts must partition the request total,
    and p50 <= p95 <= p99 <= max for every op kind that publishes gauges."""
    lat = {k: v for k, v in histograms.items()
           if k.startswith("req.latency.") and "." not in k[len("req.latency."):]}
    if not lat:
        return
    total = counters.get("forest.requests.total")
    if total is not None:
        observed = sum(h.get("count", 0) for h in lat.values())
        if observed != total:
            fail(f"{path}: req.latency.* histogram counts sum to "
                 f"{observed} but forest.requests.total = {total}")
    for name, hist in lat.items():
        if hist.get("count", 0) and hist.get("max", 0) < hist.get("min", 0):
            fail(f"{path}: histogram '{name}' has max < min")
        p50 = gauges.get(f"{name}.p50")
        p95 = gauges.get(f"{name}.p95")
        p99 = gauges.get(f"{name}.p99")
        if p50 is None and p95 is None and p99 is None:
            continue  # histograms are always-on; gauges only from exp20
        if p50 is None or p95 is None or p99 is None:
            fail(f"{path}: '{name}' percentile gauges incomplete "
                 f"(p50={p50!r} p95={p95!r} p99={p99!r})")
        if not p50 <= p95 <= p99:
            fail(f"{path}: '{name}' percentiles not ordered "
                 f"(p50={p50} p95={p95} p99={p99})")
        if p99 > hist.get("max", 0):
            fail(f"{path}: '{name}' p99 = {p99} exceeds histogram max "
                 f"{hist.get('max', 0)}")
    print(f"check_report: req.latency family ok ({len(lat)} op kinds)")


def check_timeline(path: str, timeline: dict, counters: dict) -> None:
    """Structure of the flight-recorder "timeline" section: [t, v...] rows
    matching the counter-name list, strictly increasing sample times,
    conserved ring counts, and — for sampled names that are cumulative
    counters — columns that never decrease over time."""
    if not timeline:
        return  # section always present; empty when no recorder was wired
    for key in ("period", "capacity", "taken", "overwritten", "counters",
                "rows"):
        if key not in timeline:
            fail(f"{path}: timeline lacks '{key}'")
    names = timeline["counters"]
    rows = timeline["rows"]
    if not isinstance(names, list) or not isinstance(rows, list):
        fail(f"{path}: timeline counters/rows are not arrays")
    if timeline["overwritten"] + len(rows) != timeline["taken"]:
        fail(f"{path}: timeline rows not conserved "
             f"({timeline['overwritten']} overwritten + {len(rows)} kept "
             f"!= {timeline['taken']} taken)")
    prev_t = None
    prev_cells = None
    for i, row in enumerate(rows):
        if not isinstance(row, list) or len(row) != len(names) + 1:
            fail(f"{path}: timeline row {i} is not [t, v...] over "
                 f"{len(names)} counters")
        t, cells = row[0], row[1:]
        if prev_t is not None and t <= prev_t:
            fail(f"{path}: timeline times not strictly increasing at row {i}")
        for c, (name, cell) in enumerate(zip(names, cells)):
            if not isinstance(cell, (int, float)) or cell < 0:
                fail(f"{path}: timeline row {i} cell '{name}' = {cell!r}")
            if (prev_cells is not None and name in counters
                    and cell < prev_cells[c]):
                fail(f"{path}: timeline column '{name}' decreases at row {i} "
                     f"({prev_cells[c]} -> {cell}) despite being a counter")
        prev_t, prev_cells = t, cells
    print(f"check_report: timeline ok ({len(rows)} rows x {len(names)} "
          f"counters, period {timeline['period']})")


def check_spans(path: str, spans: dict) -> None:
    """Internal consistency of the "spans" section: ring counts conserved,
    non-negative durations, known kinds, and — when nothing was evicted, so
    the record is complete — unique (trace, id) pairs and parents that
    resolve within the same trace and start no later than their children
    ("request" roots must also fully contain them; op parents may end
    before a flood they started finishes)."""
    if not spans:
        return  # section always present; empty when no sink was installed
    for key in ("capacity", "recorded", "overwritten", "events"):
        if key not in spans:
            fail(f"{path}: spans lacks '{key}'")
    events = spans["events"]
    if not isinstance(events, list):
        fail(f"{path}: spans.events is not an array")
    if spans["overwritten"] + len(events) != spans["recorded"]:
        fail(f"{path}: spans not conserved ({spans['overwritten']} "
             f"overwritten + {len(events)} kept != {spans['recorded']} "
             f"recorded)")
    by_id = {}
    for i, s in enumerate(events):
        for key in ("trace", "id", "kind", "begin", "end"):
            if key not in s:
                fail(f"{path}: spans.events[{i}] lacks '{key}'")
        if s["kind"] not in ("request", "op", "hop", "crash", "recovery"):
            fail(f"{path}: spans.events[{i}] has unknown kind "
                 f"'{s['kind']}'")
        if s["end"] < s["begin"]:
            fail(f"{path}: spans.events[{i}] ends before it begins")
        by_id[(s["trace"], s["id"])] = s
    if spans["overwritten"] == 0:
        if len(by_id) != len(events):
            fail(f"{path}: duplicate (trace, id) span pairs")
        for i, s in enumerate(events):
            if "parent" not in s:
                continue
            parent = by_id.get((s["trace"], s["parent"]))
            if parent is None:
                fail(f"{path}: spans.events[{i}] parent {s['parent']} not "
                     f"recorded in trace {s['trace']}")
            if parent["begin"] > s["begin"]:
                fail(f"{path}: spans.events[{i}] begins before its parent")
            if parent["kind"] == "request" and s["end"] > parent["end"]:
                fail(f"{path}: spans.events[{i}] outlives its request root")
    print(f"check_report: spans ok ({spans['recorded']} recorded, "
          f"{spans['overwritten']} overwritten)")


def main() -> None:
    if len(sys.argv) < 2:
        fail("usage: check_report.py <report.json> [counter ...]")

    path = sys.argv[1]
    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    for key in REQUIRED_KEYS:
        if key not in report:
            fail(f"{path}: missing required key '{key}'")

    metrics = report["metrics"]
    for section in ("counters", "gauges"):
        if section not in metrics or not isinstance(metrics[section], dict):
            fail(f"{path}: metrics.{section} missing or not an object")

    if not isinstance(report["wall_time_sec"], (int, float)):
        fail(f"{path}: wall_time_sec is not a number")

    counters = metrics["counters"]
    check_fault_families(path, counters)
    check_crash_family(path, counters, metrics["gauges"],
                       report.get("params", {}))
    check_perf_family(path, counters, metrics["gauges"])
    check_forest_family(path, counters, metrics["gauges"])
    check_mem_family(path, metrics["gauges"])
    check_latency_family(path, counters, metrics["gauges"],
                         report["histograms"])
    check_timeline(path, report["timeline"], counters)
    check_spans(path, report["spans"])
    check_exp17_monotone(path, metrics["gauges"])
    for name in sys.argv[2:]:
        if name not in counters:
            fail(f"{path}: counter '{name}' not in report")
        if counters[name] == 0:
            fail(f"{path}: counter '{name}' is zero")

    print(f"check_report: {path} ok "
          f"({len(counters)} counters, "
          f"{report['net_stats'].get('messages', 0)} messages, "
          f"wall {report['wall_time_sec']:.2f}s)")


if __name__ == "__main__":
    main()

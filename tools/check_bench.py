#!/usr/bin/env python3
"""Compare a perf_suite run report against a committed baseline.

usage: check_bench.py --baseline BENCH_perf.json --current report.json
                      [--tolerance 0.25]

Directional comparison of the perf.* metric family:

  * throughput gauges (``*_per_sec``) must not fall below
    baseline * (1 - tolerance);
  * cost gauges (``*allocs_per_event``, ``*ns_per_event*``) must not rise
    above baseline * (1 + tolerance), with a small absolute floor so a
    zero-allocation baseline does not make any nonzero value an infinite
    regression;
  * the workload-shape counters (``perf.events``, ``perf.sends``, and the
    per-phase variants) must match the baseline EXACTLY — the suite's
    workloads are deterministic, so a drifted count means the comparison is
    between different workloads and the rate columns are meaningless.

Improvements (faster, fewer allocations) always pass; the expectation is
that a genuine speedup is followed by re-committing the baseline.  Exits
nonzero listing every violation.  Used by the CI perf-smoke job.
"""

import argparse
import json
import sys

# Absolute slack added to cost comparisons: allows a baseline of exactly 0
# allocs/event to tolerate measurement jitter (e.g. a one-off lazy init
# landing inside the timed region) without passing real per-event leaks.
ABS_COST_FLOOR = {
    "allocs_per_event": 0.01,   # allocations per event
    "ns_per_event": 150.0,      # nanoseconds; scheduler noise moves p99 by
                                # O(100ns) between runs on a busy host
}


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench: {path}: {e}", file=sys.stderr)
        sys.exit(2)
    metrics = report.get("metrics", {})
    return {
        "counters": {k: v for k, v in metrics.get("counters", {}).items()
                     if k.startswith("perf.")},
        "gauges": {k: v for k, v in metrics.get("gauges", {}).items()
                   if k.startswith("perf.")},
    }


def cost_floor(name: str) -> float:
    for key, slack in ABS_COST_FLOOR.items():
        if key in name:
            return slack
    return 0.0


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--tolerance", type=float, default=0.25)
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    if not base["gauges"]:
        print(f"check_bench: {args.baseline} has no perf.* gauges",
              file=sys.stderr)
        sys.exit(2)

    errors = []
    checked = 0

    # Workload shape: exact match (deterministic suite).
    for name, expected in sorted(base["counters"].items()):
        actual = cur["counters"].get(name)
        if actual is None:
            errors.append(f"counter {name} missing from current report")
        elif actual != expected:
            errors.append(f"counter {name}: {actual} != baseline {expected} "
                          f"(workload drifted; rates are not comparable)")
        else:
            checked += 1

    tol = args.tolerance
    for name, expected in sorted(base["gauges"].items()):
        actual = cur["gauges"].get(name)
        if actual is None:
            errors.append(f"gauge {name} missing from current report")
            continue
        if name.endswith("_per_sec"):
            limit = expected * (1.0 - tol)
            if actual < limit:
                errors.append(
                    f"{name}: {actual:.0f} < {limit:.0f} "
                    f"(baseline {expected:.0f} - {tol:.0%}): regression")
            else:
                checked += 1
        else:  # cost metric: lower is better
            limit = expected * (1.0 + tol) + cost_floor(name)
            if actual > limit:
                errors.append(
                    f"{name}: {actual:.3f} > {limit:.3f} "
                    f"(baseline {expected:.3f} + {tol:.0%}): regression")
            else:
                checked += 1

    if errors:
        for e in errors:
            print(f"check_bench: {e}", file=sys.stderr)
        print(f"check_bench: {len(errors)} regression(s) vs {args.baseline} "
              f"(tolerance {tol:.0%})", file=sys.stderr)
        sys.exit(1)

    ev = cur["gauges"].get("perf.events_per_sec", 0.0)
    base_ev = base["gauges"].get("perf.events_per_sec", 0.0)
    ratio = ev / base_ev if base_ev else float("nan")
    print(f"check_bench: {checked} metrics within {tol:.0%} of "
          f"{args.baseline} (headline {ev:.0f} events/sec, "
          f"{ratio:.2f}x baseline)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Compare a perf_suite run report against a committed baseline.

usage: check_bench.py --baseline BENCH_perf.json --current report.json
                      [--tolerance 0.25]

Directional comparison of the perf.* metric family:

  * throughput gauges (``*_per_sec``) must not fall below
    baseline * (1 - tolerance);
  * cost gauges (``*allocs_per_event``, ``*ns_per_event*``) must not rise
    above baseline * (1 + tolerance), with a small absolute floor so a
    zero-allocation baseline does not make any nonzero value an infinite
    regression;
  * the workload-shape counters (``perf.events``, ``perf.sends``, and the
    per-phase variants) must match the baseline EXACTLY — the suite's
    workloads are deterministic, so a drifted count means the comparison is
    between different workloads and the rate columns are meaningless.

The ``perf.parallel.*`` and ``perf.forest.*`` gauges are machine-dependent
(they measure how the run engine / the sharded forest runtime scale across
*this host's* cores), so they are excluded from the cross-machine baseline
diff.  Instead they are checked within the current report alone:

  * ``events_per_sec_jN`` for 1 < N <= ``hw_threads`` must not fall below
    the jobs=1 figure by more than the tolerance (parallelism must never
    cost throughput where the cores exist to back it; oversubscribed
    batches on smaller hosts are informational only);
  * with ``--parallel-speedup-min X``, ``perf.parallel.speedup_j4`` must
    reach X — enforced only when ``perf.parallel.hw_threads`` >= 4, since
    a speedup target is meaningless on fewer cores than workers;
  * with ``--forest-speedup-min X``, ``perf.forest.speedup.s4`` must reach
    X under the same >= 4 hardware-threads condition (EXP19's acceptance
    bar);
  * ``perf.forest.allocs_per_event``, when present, must stay at ~0 (the
    absolute allocs floor): the steady-state shard loop is allocation-free
    by design on every machine, so this one is NOT tolerance-scaled
    against a baseline.

The ``perf.parallel.events``/``.runs`` counters stay in the exact-match
set, and so do the deterministic ``forest.*`` workload counters (request
totals, op mix, outcome split): batches and forest workloads are
deterministic, so those never drift.

``--family PREFIX[,PREFIX...]`` restricts the whole comparison to metric
names under any of the prefixes (e.g. ``--family perf.forest.,forest.``)
so a report produced by a single bench (exp19) can be diffed against the
merged full-suite baseline without every other family reporting as
missing — and, symmetrically, so the suite-only compare can pass
``--family perf.`` to ignore the baseline's forest counters.

Improvements (faster, fewer allocations) always pass; the expectation is
that a genuine speedup is followed by re-committing the baseline.  Exits
nonzero listing every violation.  Used by the CI perf-smoke job.
"""

import argparse
import json
import sys

# Absolute slack added to cost comparisons: allows a baseline of exactly 0
# allocs/event to tolerate measurement jitter (e.g. a one-off lazy init
# landing inside the timed region) without passing real per-event leaks.
ABS_COST_FLOOR = {
    "allocs_per_event": 0.01,   # allocations per event
    "ns_per_event": 150.0,      # nanoseconds; scheduler noise moves p99 by
                                # O(100ns) between runs on a busy host
}


# Counter families in the exact-match set: perf_suite's workload shape and
# the forest runtime's deterministic request accounting.
COUNTER_PREFIXES = ("perf.", "forest.")


def load(path: str, family=None) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench: {path}: {e}", file=sys.stderr)
        sys.exit(2)
    metrics = report.get("metrics", {})
    family_prefixes = tuple(family.split(",")) if family else None

    def keep(name: str, prefixes) -> bool:
        if not name.startswith(prefixes):
            return False
        return family_prefixes is None or name.startswith(family_prefixes)

    return {
        "counters": {k: v for k, v in metrics.get("counters", {}).items()
                     if keep(k, COUNTER_PREFIXES)},
        "gauges": {k: v for k, v in metrics.get("gauges", {}).items()
                   if keep(k, "perf.")},
    }


def cost_floor(name: str) -> float:
    for key, slack in ABS_COST_FLOOR.items():
        if key in name:
            return slack
    return 0.0


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--tolerance", type=float, default=0.25)
    ap.add_argument("--parallel-speedup-min", type=float, default=None,
                    help="require perf.parallel.speedup_j4 >= this value "
                         "when the current host has >= 4 hardware threads")
    ap.add_argument("--forest-speedup-min", type=float, default=None,
                    help="require perf.forest.speedup.s4 >= this value "
                         "when the current host has >= 4 hardware threads")
    ap.add_argument("--forest-mem-reduction-min", type=float, default=None,
                    help="require perf.forest.mem_reduction (eager bytes/"
                         "tree over lazy bytes/tree) >= this value")
    ap.add_argument("--forest-bytes-per-tree-max", type=float, default=None,
                    help="require perf.forest.bytes_per_tree (lazy engine, "
                         "post-run accounting bytes / trees) <= this value")
    ap.add_argument("--forest-startup-ratio-max", type=float, default=None,
                    help="require perf.forest.startup_ratio (lazy startup "
                         "seconds over eager startup seconds) <= this value")
    ap.add_argument("--family", default=None,
                    help="restrict the comparison to metric names under "
                         "these comma-separated prefixes "
                         "(e.g. perf.forest.,forest.)")
    args = ap.parse_args()

    base = load(args.baseline, args.family)
    cur = load(args.current, args.family)
    if not base["gauges"]:
        scope = f" under {args.family}" if args.family else ""
        print(f"check_bench: {args.baseline} has no perf.* gauges{scope}",
              file=sys.stderr)
        sys.exit(2)

    errors = []
    checked = 0

    # Workload shape: exact match (deterministic suite).
    for name, expected in sorted(base["counters"].items()):
        actual = cur["counters"].get(name)
        if actual is None:
            errors.append(f"counter {name} missing from current report")
        elif actual != expected:
            errors.append(f"counter {name}: {actual} != baseline {expected} "
                          f"(workload drifted; rates are not comparable)")
        else:
            checked += 1

    tol = args.tolerance
    for name, expected in sorted(base["gauges"].items()):
        if name.startswith(("perf.parallel.", "perf.forest.", "perf.batch.",
                            "perf.mem.")):
            continue  # machine- or knob-dependent; checked within the
            # current report (check_report.py validates perf.batch.*
            # arithmetic and the perf.mem.* family's internal consistency;
            # their values follow --no-batch/--batch-window/--resident-trees
            # and the host's allocator)
        actual = cur["gauges"].get(name)
        if actual is None:
            errors.append(f"gauge {name} missing from current report")
            continue
        if name.endswith("_per_sec"):
            limit = expected * (1.0 - tol)
            if actual < limit:
                errors.append(
                    f"{name}: {actual:.0f} < {limit:.0f} "
                    f"(baseline {expected:.0f} - {tol:.0%}): regression")
            else:
                checked += 1
        else:  # cost metric: lower is better
            limit = expected * (1.0 + tol) + cost_floor(name)
            if actual > limit:
                errors.append(
                    f"{name}: {actual:.3f} > {limit:.3f} "
                    f"(baseline {expected:.3f} + {tol:.0%}): regression")
            else:
                checked += 1

    # Parallel-scaling family: within-report checks only (see module doc).
    j1 = cur["gauges"].get("perf.parallel.events_per_sec_j1")
    if j1 is not None and j1 > 0:
        hw = cur["gauges"].get("perf.parallel.hw_threads", 1.0)
        for name, actual in sorted(cur["gauges"].items()):
            if (name.startswith("perf.parallel.events_per_sec_j")
                    and not name.endswith("_j1")):
                n_jobs = float(name.rsplit("_j", 1)[1])
                if n_jobs > hw:
                    continue  # oversubscribed batch: informational only
                limit = j1 * (1.0 - tol)
                if actual < limit:
                    errors.append(
                        f"{name}: {actual:.0f} < {limit:.0f} "
                        f"(jobs=1 {j1:.0f} - {tol:.0%}): parallel execution "
                        f"costs throughput")
                else:
                    checked += 1
        if args.parallel_speedup_min is not None:
            hw = cur["gauges"].get("perf.parallel.hw_threads", 0.0)
            speedup = cur["gauges"].get("perf.parallel.speedup_j4")
            if hw >= 4.0:
                if speedup is None:
                    errors.append("perf.parallel.speedup_j4 missing")
                elif speedup < args.parallel_speedup_min:
                    errors.append(
                        f"perf.parallel.speedup_j4: {speedup:.2f} < "
                        f"{args.parallel_speedup_min:.2f} on a "
                        f"{hw:.0f}-thread host: parallel scaling regression")
                else:
                    checked += 1
            else:
                print(f"check_bench: skipping --parallel-speedup-min "
                      f"({hw:.0f} hardware threads < 4)")
    elif args.parallel_speedup_min is not None:
        errors.append("perf.parallel.events_per_sec_j1 missing but "
                      "--parallel-speedup-min was requested")

    # Forest-scaling family: within-report checks (see module doc).
    forest_allocs = cur["gauges"].get("perf.forest.allocs_per_event")
    if forest_allocs is not None:
        limit = ABS_COST_FLOOR["allocs_per_event"]
        if forest_allocs > limit:
            errors.append(
                f"perf.forest.allocs_per_event: {forest_allocs:.4f} > "
                f"{limit:.2f}: the steady-state shard loop must not "
                f"allocate per event (on any machine)")
        else:
            checked += 1
    if args.forest_speedup_min is not None:
        hw = cur["gauges"].get("perf.forest.hw_threads", 0.0)
        speedup = cur["gauges"].get("perf.forest.speedup.s4")
        if hw >= 4.0:
            if speedup is None:
                errors.append("perf.forest.speedup.s4 missing but "
                              "--forest-speedup-min was requested")
            elif speedup < args.forest_speedup_min:
                errors.append(
                    f"perf.forest.speedup.s4: {speedup:.2f} < "
                    f"{args.forest_speedup_min:.2f} on a {hw:.0f}-thread "
                    f"host: forest scaling regression")
            else:
                checked += 1
        else:
            print(f"check_bench: skipping --forest-speedup-min "
                  f"({hw:.0f} hardware threads < 4)")

    # Forest memory model: within-report gates on EXP19's memory phase.
    # Machine-local like the speedups (capacity accounting + wall clock),
    # but the *ratios* hold on any host, so CI pins them at scale.
    mem_gates = [
        ("perf.forest.mem_reduction", args.forest_mem_reduction_min, ">=",
         "lazy+hibernated engine must keep its memory advantage over the "
         "eager build"),
        ("perf.forest.bytes_per_tree", args.forest_bytes_per_tree_max, "<=",
         "per-tree footprint regression in the lazy engine"),
        ("perf.forest.startup_ratio", args.forest_startup_ratio_max, "<=",
         "lazy startup must stay far below the eager build"),
    ]
    for name, bound, op, why in mem_gates:
        if bound is None:
            continue
        actual = cur["gauges"].get(name)
        if actual is None:
            errors.append(f"{name} missing but its gate was requested")
        elif (actual < bound) if op == ">=" else (actual > bound):
            errors.append(f"{name}: {actual:.2f} not {op} {bound:.2f}: {why}")
        else:
            checked += 1

    if errors:
        for e in errors:
            print(f"check_bench: {e}", file=sys.stderr)
        print(f"check_bench: {len(errors)} regression(s) vs {args.baseline} "
              f"(tolerance {tol:.0%})", file=sys.stderr)
        sys.exit(1)

    ev = cur["gauges"].get("perf.events_per_sec", 0.0)
    base_ev = base["gauges"].get("perf.events_per_sec", 0.0)
    if base_ev:
        print(f"check_bench: {checked} metrics within {tol:.0%} of "
              f"{args.baseline} (headline {ev:.0f} events/sec, "
              f"{ev / base_ev:.2f}x baseline)")
    else:
        print(f"check_bench: {checked} metrics within {tol:.0%} of "
              f"{args.baseline}")


if __name__ == "__main__":
    main()

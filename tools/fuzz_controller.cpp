// Continuous randomized stress for the distributed controller stack.
//
// Runs random (seed, shape, churn, delay, fault, burst) combinations until
// the time budget expires, auditing after every burst:
//   * structural validity of the tree,
//   * all agents drained,
//   * Claim 3.1 domain invariants,
//   * permit conservation, safety, and the liveness band.
//
// Every run injects a random transport-fault adversary and rides the
// reliable channel over it, guarded by a watchdog: a stranded request or a
// stuck channel frame is a failure like any other.
//
// On a violation it prints the failing configuration (which is enough to
// reproduce deterministically — everything is seeded) and exits nonzero.
//
//   usage: fuzz_controller [--seconds N | --runs N] [--base-seed S]
//                          [--jobs J] [--crash-rate F]
//
// --crash-rate F (in [0, 1]) adds the node crash/restart adversary on top
// of the rolled transport fault: each seed draws a crash-schedule salt, a
// durability mode (volatile boards vs journaled), and a redrive budget, and
// the run audits the recovery machinery — orphan-lock release waves,
// journal replay, crash-failed verdict accounting — alongside the usual
// invariants.  The default of 0 leaves every historical seed's verdict
// untouched.
//
// --runs N explores exactly N consecutive seeds (base-seed + i), split
// across J pool workers; every worker audits independent configurations,
// and a failure is reported for the LOWEST failing seed regardless of
// scheduling, so the fixed-count mode's output is byte-identical at any
// --jobs value.  --seconds keeps the classic wall-clock budget (workers
// pull seeds from a shared counter; throughput scales, output order does
// not matter since success prints only a total).  --start-seed is kept as
// an alias for --base-seed.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/distributed_iterated.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "sim/channel.hpp"
#include "sim/crash.hpp"
#include "sim/fault.hpp"
#include "sim/trace.hpp"
#include "sim/watchdog.hpp"
#include "tree/validate.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;

namespace {

struct Config {
  std::uint64_t seed;
  sim::DelayKind delay;
  workload::Shape shape;
  workload::ChurnModel churn;
  sim::FaultKind fault;
  std::uint64_t fault_seed;
  std::uint64_t n0;
  std::uint64_t m;
  std::uint64_t w;
  std::uint64_t steps;
  std::uint64_t max_burst;
  // Crash-adversary dimension (--crash-rate > 0 only; zero keeps every
  // existing seed's configuration — and its verdict — byte-identical).
  double crash_rate = 0.0;
  std::uint64_t crash_seed = 0;
  bool durable = false;
  std::uint64_t redrives = 0;

  [[nodiscard]] std::string describe() const {
    char buf[384];
    int len = std::snprintf(
        buf, sizeof buf,
        "config: seed=%llu delay=%s shape=%s churn=%s fault=%s "
        "fault_seed=%llu n0=%llu M=%llu W=%llu steps=%llu "
        "burst<=%llu",
        static_cast<unsigned long long>(seed), sim::delay_kind_name(delay),
        workload::shape_name(shape), workload::churn_name(churn),
        sim::fault_kind_name(fault),
        static_cast<unsigned long long>(fault_seed),
        static_cast<unsigned long long>(n0),
        static_cast<unsigned long long>(m),
        static_cast<unsigned long long>(w),
        static_cast<unsigned long long>(steps),
        static_cast<unsigned long long>(max_burst));
    if (crash_rate > 0 && len > 0 &&
        static_cast<std::size_t>(len) < sizeof buf) {
      std::snprintf(buf + len, sizeof buf - static_cast<std::size_t>(len),
                    " crash=%.2f boards=%s redrives=%llu crash_seed=%llu",
                    crash_rate, durable ? "durable" : "volatile",
                    static_cast<unsigned long long>(redrives),
                    static_cast<unsigned long long>(crash_seed));
    }
    return buf;
  }
};

Config roll(std::uint64_t seed, double crash_rate) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  const auto shapes = workload::all_shapes();
  const auto churns = workload::all_churn_models();
  Config c;
  c.seed = seed;
  c.delay = static_cast<sim::DelayKind>(rng.uniform(0, 3));
  c.shape = shapes[rng.index(shapes.size())];
  c.churn = churns[rng.index(churns.size())];
  const auto& faults = sim::all_fault_kinds();
  c.fault = faults[rng.index(faults.size())];
  c.fault_seed = rng.next();
  c.n0 = rng.uniform(2, 96);
  c.m = rng.uniform(1, 400);
  c.w = rng.uniform(0, c.m);
  c.steps = rng.uniform(50, 600);
  c.max_burst = rng.uniform(1, 16);
  // Crash fields draw last, and only when the mode is on, so turning the
  // flag off reproduces the historical stream for every seed exactly.
  if (crash_rate > 0) {
    c.crash_rate = crash_rate;
    c.crash_seed = rng.next();
    c.durable = rng.chance(0.5);
    c.redrives = rng.uniform(0, 3);
  }
  return c;
}

/// Returns an empty string on success, a description on failure.  The
/// caller's registry and trace are installed for the duration, so a failing
/// run leaves behind its full metrics snapshot and typed event tail.
std::string run_one(const Config& c, obs::Registry& reg, sim::Trace& trace) {
  obs::ScopedMetrics metrics_scope(reg);
  obs::ScopedTrace trace_scope(trace);
  Rng rng(c.seed);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(c.delay, c.seed * 31 + 7));
  sim::Watchdog wd(queue, 50'000'000);
  tree::DynamicTree t;
  workload::build(t, c.shape, c.n0, rng);

  // The crash adversary rides the same fault stack as every other run: the
  // rolled transport fault composes under the crash drop filter, so a
  // crashy seed still sees its reorderings and duplicates.  Nodes born
  // under churn (ids >= n0) never crash; the root is immune (PROTOCOL.md
  // §9 modeling boundaries).  Declared before the controller so listener
  // deregistration in the controller's destructor finds them alive.
  std::shared_ptr<const sim::CrashSchedule> sched;
  std::unique_ptr<sim::CrashDriver> crashes;
  if (c.crash_rate > 0) {
    sim::CrashSchedule sch(Rng(c.crash_seed), c.crash_rate, /*period=*/512,
                           /*down_len=*/64);
    sch.set_limit(c.n0);
    sch.set_immune(t.root());
    sched = std::make_shared<const sim::CrashSchedule>(sch);
    net.set_fault_policy(
        sim::make_crash_stack(sim::make_fault(c.fault, c.fault_seed), sched));
    crashes = std::make_unique<sim::CrashDriver>(queue, sched);
  } else {
    net.set_fault_policy(sim::make_fault(c.fault, c.fault_seed));
  }
  net.enable_reliability();

  core::DistributedIterated::Options ctrl_opts;
  ctrl_opts.watchdog = &wd;
  if (crashes != nullptr) {
    ctrl_opts.crashes = crashes.get();
    ctrl_opts.durability = c.durable ? agent::Durability::kDurable
                                     : agent::Durability::kVolatile;
    ctrl_opts.crash_redrives = static_cast<std::uint32_t>(c.redrives);
  }
  core::DistributedIterated ctrl(net, t, c.m, c.w, /*U=*/8192, ctrl_opts);
  if (crashes != nullptr) crashes->start(c.n0, SimTime{1} << 18);
  workload::ChurnGenerator churn(c.churn, Rng(c.seed * 7 + 3));

  std::uint64_t answered = 0, granted = 0, rejected = 0, moot = 0;
  std::uint64_t surfaced = 0;
  std::uint64_t submitted = 0;
  while (submitted < c.steps) {
    std::uint64_t burst = rng.uniform(1, c.max_burst);
    // Crash mode runs the whole workload as one burst: every queue drain
    // advances virtual time past the stale watchdog deadlines (one per
    // armed request), so pre-scheduled crash windows can only intersect
    // request activity if all the activity shares the first drain — the
    // same single-drain structure the chaos soaks use.
    if (c.crash_rate > 0) burst = c.steps;
    for (std::uint64_t i = 0; i < burst && submitted < c.steps; ++i) {
      ++submitted;
      const core::RequestSpec spec =
          rng.chance(0.25)
              ? core::RequestSpec{core::RequestSpec::Type::kEvent,
                                  workload::random_node(t, rng)}
              : churn.next(t);
      ctrl.submit(spec, [&](const core::Result& r) {
        ++answered;
        granted += r.granted();
        rejected += r.outcome == core::Outcome::kRejected;
        moot += r.outcome == core::Outcome::kMoot;
        surfaced += r.crash_failed && r.outcome == core::Outcome::kRejected;
      });
    }
    queue.run();
    while (wd.run_recovery_sweep() > 0) queue.run();
    const auto valid = tree::validate(t);
    if (!valid.ok()) return "tree corrupt: " + valid.detail;
    if (const auto* inner = ctrl.inner()) {
      if (inner->active_agents() != 0) return "agents leaked";
      if (inner->doomed_holders() != 0) return "doomed holders leaked";
      if (const auto* dom = inner->domains()) {
        const std::string err = dom->check_invariants();
        if (!err.empty()) return "domain invariant: " + err;
      }
      if (inner->permits_granted() + inner->unused_permits() !=
          inner->params().M()) {
        return "permit conservation broken";
      }
    }
  }
  if (answered != submitted) return "requests lost";
  if (answered != granted + rejected + moot) return "outcome mismatch";
  if (ctrl.permits_granted() > c.m) return "safety violated";
  if (surfaced > 0 && !(c.crash_rate > 0 && !c.durable)) {
    return "crash-failed verdict outside volatile crash mode";
  }
  // Volatile crashes may strand rescued static permits (conservation still
  // holds — the soak grid asserts the band cell by cell), so the liveness
  // band binds whenever boards are durable or crash-free, and only honest
  // rejections (not surfaced crash failures) may trip it.
  if (!(c.crash_rate > 0 && !c.durable) && rejected > surfaced &&
      ctrl.permits_granted() + c.w < c.m) {
    return "liveness violated";
  }
  wd.verify_idle();  // throws WatchdogError -> reported via the catch
  if (net.channel()->in_flight() != 0) return "channel frames stuck";
  if (c.fault == sim::FaultKind::kNone && c.crash_rate == 0 &&
      net.channel()->stats().retransmits != 0) {
    return "retransmissions on a fault-free transport";
  }
  return {};
}

/// One audited configuration, post-mortem captured as a string so workers
/// can report without interleaving on stderr.  Returns the full failure
/// report, or nullopt on a clean run.
std::optional<std::string> audit_seed(std::uint64_t seed, double crash_rate) {
  const Config c = roll(seed, crash_rate);
  obs::Registry reg;
  sim::Trace trace(512);
  trace.enable(true);
  std::string failure;
  try {
    failure = run_one(c, reg, trace);
  } catch (const std::exception& e) {
    failure = std::string("exception: ") + e.what();
  }
  if (failure.empty()) return std::nullopt;
  // The post-mortem: every counter the run touched, then the last typed
  // events (JSONL, newest last) leading up to the violation.
  std::ostringstream out;
  out << "FAILURE: " << failure << "\n" << c.describe() << "\n";
  std::ostringstream snapshot;
  reg.to_json().dump(snapshot, 2);
  out << "metrics snapshot:\n" << snapshot.str() << "\n";
  out << "trace tail (" << trace.size() << " of " << trace.recorded()
      << " events, " << trace.overwritten() << " overwritten):\n";
  trace.dump_jsonl(out, 64);
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    const bool known = a.rfind("--seconds", 0) == 0 ||
                       a.rfind("--runs", 0) == 0 ||
                       a.rfind("--base-seed", 0) == 0 ||
                       a.rfind("--start-seed", 0) == 0 ||
                       a.rfind("--jobs", 0) == 0 ||
                       a.rfind("--crash-rate", 0) == 0;
    if (!known) {
      std::fprintf(stderr,
                   "usage: %s [--seconds N | --runs N] [--base-seed S] "
                   "[--jobs J] [--crash-rate F]\n",
                   argv[0]);
      return 1;
    }
    // Two-token spellings consume the next argv slot.
    if ((a == "--seconds" || a == "--runs" || a == "--base-seed" ||
         a == "--start-seed" || a == "--jobs" || a == "--crash-rate") &&
        i + 1 < argc) {
      ++i;
    }
  }
  const std::uint64_t seconds = util::flag_u64(argc, argv, "--seconds", 10);
  std::uint64_t base_seed = util::flag_u64(argc, argv, "--start-seed", 1);
  base_seed = util::flag_u64(argc, argv, "--base-seed", base_seed);
  unsigned jobs = static_cast<unsigned>(util::flag_u64(
      argc, argv, "--jobs", util::ThreadPool::hardware_jobs()));
  if (jobs == 0) jobs = 1;
  // --crash-rate F turns on the node crash/restart adversary (sim/crash)
  // at node fraction F; each seed then also rolls a durability mode, a
  // redrive budget, and a crash-schedule salt.
  double crash_rate = 0.0;
  if (const auto v = util::flag_value(argc, argv, "--crash-rate")) {
    char* end = nullptr;
    crash_rate = std::strtod(v->c_str(), &end);
    if (end == nullptr || *end != '\0' || !(crash_rate >= 0.0) ||
        crash_rate > 1.0) {
      std::fprintf(stderr, "--crash-rate=%s: expected a fraction in [0, 1]\n",
                   v->c_str());
      return 1;
    }
  }

  if (util::flag_present(argc, argv, "--runs")) {
    // Fixed-count mode: exactly N consecutive seeds, lowest failure wins.
    const std::uint64_t n = util::flag_u64(argc, argv, "--runs", 0);
    std::vector<std::optional<std::string>> failures(n);
    util::for_each_index(n, jobs, [&](std::uint64_t i) {
      failures[i] = audit_seed(base_seed + i, crash_rate);
    });
    for (std::uint64_t i = 0; i < n; ++i) {
      if (failures[i]) {
        std::fputs(failures[i]->c_str(), stderr);
        return 2;
      }
    }
    std::printf("fuzz_controller: %llu configurations clean "
                "(seeds %llu..%llu)\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(base_seed),
                static_cast<unsigned long long>(base_seed + n - 1));
    return 0;
  }

  // Wall-clock mode: workers pull seeds from a shared counter until the
  // deadline; the seed set explored depends on timing, the verdict on any
  // explored seed does not.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(seconds);
  std::atomic<std::uint64_t> next_seed{base_seed};
  std::atomic<std::uint64_t> clean_runs{0};
  std::mutex fail_mu;
  std::optional<std::string> first_failure;
  const unsigned workers = jobs;
  {
    util::ThreadPool pool(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.submit([&] {
        while (std::chrono::steady_clock::now() < deadline) {
          {
            std::scoped_lock lock(fail_mu);
            if (first_failure) return;
          }
          const std::uint64_t seed =
              next_seed.fetch_add(1, std::memory_order_relaxed);
          if (auto f = audit_seed(seed, crash_rate)) {
            std::scoped_lock lock(fail_mu);
            if (!first_failure) first_failure = std::move(f);
            return;
          }
          clean_runs.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    pool.wait_idle();
  }
  if (first_failure) {
    std::fputs(first_failure->c_str(), stderr);
    return 2;
  }
  std::printf("fuzz_controller: %llu configurations clean (%llus, %u jobs)\n",
              static_cast<unsigned long long>(
                  clean_runs.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(seconds), workers);
  return 0;
}

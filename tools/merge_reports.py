#!/usr/bin/env python3
"""Merge several run reports into one baseline report.

usage: merge_reports.py [--only PREFIX[,PREFIX...]] first.json second.json
                        [...] > BENCH_perf.json

The committed ``BENCH_perf.json`` baseline carries more than one bench's
metric families (perf_suite's ``perf.*`` plus EXP19's ``forest.*`` /
``perf.forest.*``), but each bench emits its own run report.  This tool
takes the first report as the skeleton (name, params, wall time) and
unions every later report's counters, gauges, and histograms into it.

``--only`` restricts what is taken from the *later* reports to names
under the given prefixes — necessary because a bench's report also
carries the generic instrumentation of the components it drives (EXP19's
shards run real controllers, so its report includes ``permits.*``,
``filler_search.steps``, ...), and those would collide with the suite's
own numbers for a different workload.  Even under ``--only``, a name
appearing twice with different values is an error: the baseline would be
ambiguous.  Later params are merged in under ``<report name>.<param>``
so the baseline records every workload knob that produced it.
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"merge_reports: {msg}", file=sys.stderr)
    sys.exit(2)


def main() -> None:
    argv = sys.argv[1:]
    only = None
    if argv and argv[0] == "--only":
        if len(argv) < 2:
            fail("--only needs a prefix list")
        only = tuple(argv[1].split(","))
        argv = argv[2:]
    paths = argv
    if len(paths) < 2:
        fail("need at least two report paths")
    reports = []
    for path in paths:
        try:
            with open(path, encoding="utf-8") as f:
                reports.append(json.load(f))
        except (OSError, json.JSONDecodeError) as e:
            fail(f"{path}: {e}")

    merged = reports[0]
    metrics = merged.setdefault("metrics", {})
    for extra, path in zip(reports[1:], paths[1:]):
        for kind in ("counters", "gauges", "histograms"):
            dst = metrics.setdefault(kind, {})
            for name, value in extra.get("metrics", {}).get(kind, {}).items():
                if only is not None and not name.startswith(only):
                    continue
                if name in dst and dst[name] != value:
                    fail(f"{path}: {kind[:-1]} {name} collides with an "
                         f"earlier report ({dst[name]!r} vs {value!r})")
                dst[name] = value
        prefix = extra.get("name", "extra")
        for key, value in extra.get("params", {}).items():
            merged.setdefault("params", {})[f"{prefix}.{key}"] = value
        merged["wall_time_sec"] = round(
            merged.get("wall_time_sec", 0.0)
            + extra.get("wall_time_sec", 0.0), 6)

    json.dump(merged, sys.stdout, indent=1, sort_keys=True)
    print()


if __name__ == "__main__":
    main()

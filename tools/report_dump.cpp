// report_dump — pretty-print one run-report JSON, or diff two.
//
//   report_dump <report.json>             summary of one report
//   report_dump <a.json> <b.json>         counter/gauge diff (a, b, delta,
//                                         ratio (b/a), sorted by |delta|)
//                                         plus histogram count/mean/max deltas
//
// The diff view is the intended workflow for performance investigations:
// run a bench with --metrics-out before and after a change and diff the
// two reports instead of eyeballing table output.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

using dyncon::obs::json::Value;

namespace {

bool load(const std::string& path, Value& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "report_dump: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string err;
  if (!Value::parse(buf.str(), out, &err)) {
    std::fprintf(stderr, "report_dump: %s: %s\n", path.c_str(), err.c_str());
    return false;
  }
  return true;
}

std::uint64_t as_u64(const Value& v) {
  if (v.is_uint()) return v.as_uint();
  if (v.is_double()) return static_cast<std::uint64_t>(v.as_double());
  return 0;
}

/// count/mean/max triple of one serialized histogram (for the diff view).
struct HistStat {
  double count = 0, mean = 0, max = 0;
};

/// Flatten "histograms" into name -> {count, mean, max}.
std::map<std::string, HistStat> hist_metrics(const Value& report) {
  std::map<std::string, HistStat> out;
  const Value* hists = report.find("histograms");
  if (hists == nullptr || !hists->is_object()) return out;
  for (const auto& [k, h] : hists->as_object()) {
    HistStat st;
    if (const Value* c = h.find("count")) st.count = static_cast<double>(as_u64(*c));
    if (const Value* m = h.find("mean")) {
      st.mean = m->is_double() ? m->as_double() : static_cast<double>(as_u64(*m));
    }
    if (const Value* mx = h.find("max")) st.max = static_cast<double>(as_u64(*mx));
    out[k] = st;
  }
  return out;
}

/// Flatten "metrics.counters" and "metrics.gauges" into name -> value.
std::map<std::string, double> scalar_metrics(const Value& report) {
  std::map<std::string, double> out;
  const Value* metrics = report.find("metrics");
  if (metrics == nullptr) return out;
  for (const char* section : {"counters", "gauges"}) {
    const Value* sec = metrics->find(section);
    if (sec == nullptr || !sec->is_object()) continue;
    for (const auto& [k, v] : sec->as_object()) {
      out[k] = v.is_uint() ? static_cast<double>(v.as_uint())
                           : (v.is_double() ? v.as_double() : 0.0);
    }
  }
  return out;
}

void print_one(const std::string& path, const Value& report) {
  const Value* name = report.find("name");
  std::printf("report %s (%s)\n", path.c_str(),
              name != nullptr && name->is_string() ? name->as_string().c_str()
                                                   : "?");
  if (const Value* wall = report.find("wall_time_sec")) {
    std::printf("  wall time: %.3f s\n",
                wall->is_double() ? wall->as_double()
                                  : static_cast<double>(as_u64(*wall)));
  }
  if (const Value* params = report.find("params");
      params != nullptr && params->is_object() && !params->as_object().empty()) {
    std::printf("  params:\n");
    for (const auto& [k, v] : params->as_object()) {
      std::ostringstream os;
      v.dump(os);
      std::printf("    %-28s %s\n", k.c_str(), os.str().c_str());
    }
  }
  if (const Value* net = report.find("net_stats");
      net != nullptr && net->find("messages") != nullptr) {
    std::printf("  net: %llu messages, %llu bits, max %llu bits/message\n",
                static_cast<unsigned long long>(as_u64(*net->find("messages"))),
                static_cast<unsigned long long>(
                    net->find("total_bits") ? as_u64(*net->find("total_bits"))
                                            : 0),
                static_cast<unsigned long long>(
                    net->find("max_message_bits")
                        ? as_u64(*net->find("max_message_bits"))
                        : 0));
  }
  const auto metrics = scalar_metrics(report);
  if (!metrics.empty()) {
    std::printf("  metrics (%zu):\n", metrics.size());
    for (const auto& [k, v] : metrics) {
      if (std::floor(v) == v && std::fabs(v) < 1e15) {
        std::printf("    %-36s %llu\n", k.c_str(),
                    static_cast<unsigned long long>(v));
      } else {
        std::printf("    %-36s %g\n", k.c_str(), v);
      }
    }
  }
  if (const Value* hists = report.find("histograms");
      hists != nullptr && hists->is_object()) {
    for (const auto& [k, h] : hists->as_object()) {
      const Value* count = h.find("count");
      const Value* mean = h.find("mean");
      std::printf("  histogram %s: count=%llu mean=%.2f min=%llu max=%llu\n",
                  k.c_str(),
                  static_cast<unsigned long long>(
                      count != nullptr ? as_u64(*count) : 0),
                  mean != nullptr && mean->is_double() ? mean->as_double()
                                                       : 0.0,
                  static_cast<unsigned long long>(
                      h.find("min") ? as_u64(*h.find("min")) : 0),
                  static_cast<unsigned long long>(
                      h.find("max") ? as_u64(*h.find("max")) : 0));
    }
  }
  if (const Value* spans = report.find("spans");
      spans != nullptr && spans->find("recorded") != nullptr) {
    const std::uint64_t recorded = as_u64(*spans->find("recorded"));
    const std::uint64_t lost =
        spans->find("overwritten") ? as_u64(*spans->find("overwritten")) : 0;
    const Value* events = spans->find("events");
    const std::size_t kept =
        events != nullptr && events->is_array() ? events->as_array().size() : 0;
    std::printf("  spans: %llu recorded, %zu kept, %llu overwritten\n",
                static_cast<unsigned long long>(recorded), kept,
                static_cast<unsigned long long>(lost));
    if (lost > 0) {
      std::printf(
          "  WARNING: span ring overflowed — the trace tail is truncated "
          "(%llu oldest spans lost)\n",
          static_cast<unsigned long long>(lost));
    }
  }
  if (const Value* timeline = report.find("timeline");
      timeline != nullptr && timeline->find("rows") != nullptr) {
    const Value* rows = timeline->find("rows");
    const Value* counters = timeline->find("counters");
    const std::uint64_t lost = timeline->find("overwritten")
                                   ? as_u64(*timeline->find("overwritten"))
                                   : 0;
    std::printf(
        "  timeline: %zu rows x %zu counters, period %llu, %llu overwritten\n",
        rows->is_array() ? rows->as_array().size() : 0,
        counters != nullptr && counters->is_array()
            ? counters->as_array().size()
            : 0,
        static_cast<unsigned long long>(
            timeline->find("period") ? as_u64(*timeline->find("period")) : 0),
        static_cast<unsigned long long>(lost));
    if (lost > 0) {
      std::printf(
          "  WARNING: flight-recorder ring overflowed — the timeline head is "
          "truncated (%llu oldest rows lost)\n",
          static_cast<unsigned long long>(lost));
    }
  }
}

int diff(const std::string& pa, const Value& a, const std::string& pb,
         const Value& b) {
  std::printf("diff %s -> %s\n", pa.c_str(), pb.c_str());
  const auto ma = scalar_metrics(a);
  const auto mb = scalar_metrics(b);

  struct Row {
    std::string name;
    double a, b;
  };
  std::vector<Row> rows;
  for (const auto& [k, v] : ma) {
    auto it = mb.find(k);
    rows.push_back({k, v, it == mb.end() ? 0.0 : it->second});
  }
  for (const auto& [k, v] : mb) {
    if (ma.find(k) == ma.end()) rows.push_back({k, 0.0, v});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& x, const Row& y) {
    return std::fabs(x.b - x.a) > std::fabs(y.b - y.a);
  });

  std::printf("  %-36s %14s %14s %14s %8s\n", "metric", "a", "b", "delta",
              "ratio");
  bool changed = false;
  for (const auto& r : rows) {
    const double delta = r.b - r.a;
    if (delta != 0.0) changed = true;
    char ratio[32];
    if (r.a != 0.0) {
      std::snprintf(ratio, sizeof ratio, "%.3f", r.b / r.a);
    } else {
      std::snprintf(ratio, sizeof ratio, "%s", r.b == 0.0 ? "1.000" : "inf");
    }
    std::printf("  %-36s %14.0f %14.0f %+14.0f %8s\n", r.name.c_str(), r.a,
                r.b, delta, ratio);
  }
  if (!changed) std::printf("  (no scalar metric differs)\n");

  // Histogram deltas: count/mean/max per name, union of both reports,
  // sorted by |count delta| then name.  Silent when identical.
  const auto ha = hist_metrics(a);
  const auto hb = hist_metrics(b);
  struct HRow {
    std::string name;
    HistStat a, b;
  };
  std::vector<HRow> hrows;
  for (const auto& [k, v] : ha) {
    auto it = hb.find(k);
    hrows.push_back({k, v, it == hb.end() ? HistStat{} : it->second});
  }
  for (const auto& [k, v] : hb) {
    if (ha.find(k) == ha.end()) hrows.push_back({k, HistStat{}, v});
  }
  hrows.erase(std::remove_if(hrows.begin(), hrows.end(),
                             [](const HRow& r) {
                               return r.a.count == r.b.count &&
                                      r.a.mean == r.b.mean &&
                                      r.a.max == r.b.max;
                             }),
              hrows.end());
  if (!hrows.empty()) {
    std::sort(hrows.begin(), hrows.end(), [](const HRow& x, const HRow& y) {
      const double dx = std::fabs(x.b.count - x.a.count);
      const double dy = std::fabs(y.b.count - y.a.count);
      return dx != dy ? dx > dy : x.name < y.name;
    });
    std::printf("  %-36s %14s %14s %14s\n", "histogram", "d.count", "d.mean",
                "d.max");
    for (const auto& r : hrows) {
      std::printf("  %-36s %+14.0f %+14.3f %+14.0f\n", r.name.c_str(),
                  r.b.count - r.a.count, r.b.mean - r.a.mean,
                  r.b.max - r.a.max);
    }
  } else if (!ha.empty() || !hb.empty()) {
    std::printf("  (no histogram differs)\n");
  }

  // Truncation advisory for either side: a diff over a clipped causal
  // record compares incomplete tails, flag it.
  for (const auto* side : {&a, &b}) {
    const Value* spans = side->find("spans");
    if (spans == nullptr || spans->find("overwritten") == nullptr) continue;
    const std::uint64_t lost = as_u64(*spans->find("overwritten"));
    if (lost > 0) {
      std::printf(
          "  WARNING: %s has a truncated span tail (%llu overwritten)\n",
          side == &a ? pa.c_str() : pb.c_str(),
          static_cast<unsigned long long>(lost));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2 && argc != 3) {
    std::fprintf(stderr,
                 "usage: report_dump <report.json> [other.json]\n"
                 "  one file: pretty-print; two files: metric diff\n");
    return 2;
  }
  Value a;
  if (!load(argv[1], a)) return 1;
  if (argc == 2) {
    print_one(argv[1], a);
    return 0;
  }
  Value b;
  if (!load(argv[2], b)) return 1;
  return diff(argv[1], a, argv[2], b);
}

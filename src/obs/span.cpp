#include "obs/span.hpp"

namespace dyncon::obs {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRequest: return "request";
    case SpanKind::kOp: return "op";
    case SpanKind::kHop: return "hop";
    case SpanKind::kCrash: return "crash";
    case SpanKind::kRecovery: return "recovery";
  }
  return "invalid";
}

void SpanSink::emit(const Span& span) {
  ++recorded_;
  ring_.push_back(span);
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    ++overwritten_;
  }
}

std::uint32_t SpanSink::open(TraceId trace) {
  // Child ids start at 1; kRootSpanId (0) is reserved for the request span
  // the mux emits, whether or not it ever materializes in this sink.
  std::uint32_t& next = next_id_[trace];
  if (next == 0) next = 1;
  return next++;
}

void SpanSink::clear() {
  ring_.clear();
  next_id_.clear();
  recorded_ = 0;
  overwritten_ = 0;
}

json::Value SpanSink::to_json() const {
  json::Value doc = json::Value::object();
  doc["capacity"] = static_cast<std::uint64_t>(capacity_);
  doc["recorded"] = recorded_;
  doc["overwritten"] = overwritten_;
  json::Array events;
  events.reserve(ring_.size());
  for (const Span& s : ring_) {
    json::Value ev = json::Value::object();
    ev["trace"] = s.trace;
    ev["id"] = static_cast<std::uint64_t>(s.id);
    if (s.parent != kNoSpan) {
      ev["parent"] = static_cast<std::uint64_t>(s.parent);
    }
    ev["kind"] = span_kind_name(s.kind);
    ev["op"] = static_cast<std::uint64_t>(s.op);
    if (s.label != nullptr) ev["label"] = s.label;
    if (s.node != kNoNode) ev["node"] = s.node;
    if (s.peer != kNoNode) ev["peer"] = s.peer;
    ev["begin"] = s.begin;
    ev["end"] = s.end;
    events.push_back(std::move(ev));
  }
  doc["events"] = json::Value(std::move(events));
  return doc;
}

}  // namespace dyncon::obs

#pragma once

// Typed trace events.
//
// The string trace (sim::Trace) is great for eyeballs and useless for
// machines; these events are the machine-readable layer underneath it.
// Every event is an enum tag plus a POD payload (two generic operand
// slots whose meaning is fixed per kind — see the table in
// docs/OBSERVABILITY.md), so recording one is an O(1) copy, and a failing
// test or fuzz run can dump the tail as JSONL for post-mortem tooling.
//
// Emission mirrors the metrics registry: protocol layers call
// `obs::emit(...)`, which is a single branch unless an EventTrace has been
// installed (`ScopedTrace`).  Legacy `trace.log(now, "...")` call sites
// keep working — a string line is recorded as a kText event whose payload
// lives in the ring entry, and the formatter reproduces the old output.

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

#include "util/ids.hpp"

namespace dyncon::obs {

enum class EventKind : std::uint8_t {
  kText = 0,          ///< legacy free-form line (shim for Trace::log)
  kPermitGranted,     ///< node=origin, a=serial (or ~0), b=permits left there
  kRequestRejected,   ///< node=origin
  kRequestMoot,       ///< node=origin
  kRequestExhausted,  ///< node=origin
  kPackageCreated,    ///< node=host, a=level, b=size
  kPackageSplit,      ///< node=host, a=level before split, b=size of each half
  kPackageStatic,     ///< node=host, a=size
  kWaveStart,         ///< node=root, a=alive nodes flooded
  kWaveEnd,           ///< node=root
  kLinkAdded,         ///< node=new node, a=parent
  kLinkRemoved,       ///< node=removed node, a=parent
  kAgentHop,          ///< node=from, a=agent id, b=0 up / 1 down
  kLockWait,          ///< node=where, a=agent id
  kIterationStart,    ///< a=iteration index, b=M_i
  kIterationRotate,   ///< a=iteration index, b=unused permits carried over
  kKindCount__
};

[[nodiscard]] const char* event_kind_name(EventKind kind);

/// POD payload; the ring stores it by value.
struct TraceEvent {
  EventKind kind = EventKind::kText;
  SimTime time = 0;
  NodeId node = kNoNode;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};
static_assert(std::is_trivially_copyable_v<TraceEvent>);

/// Ring entry: the typed event plus the kText payload (empty otherwise).
struct TraceEntry {
  TraceEvent event;
  std::string text;
};

/// "[t=3] PermitGranted node=5 a=7 b=1" — or the legacy "[t=3] line" form
/// for kText, byte-identical to what the old string trace produced.
[[nodiscard]] std::string format_entry(const TraceEntry& entry);

/// One compact JSON object (no trailing newline).
[[nodiscard]] std::string entry_json(const TraceEntry& entry);

/// Bounded in-memory event ring (keeps the most recent `capacity` events).
class EventTrace {
 public:
  explicit EventTrace(std::size_t capacity = 4096) : capacity_(capacity) {}

  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Record one event (no-op when disabled).
  void record(const TraceEvent& event, std::string text = {});

  /// Most recent entries, oldest first.
  [[nodiscard]] std::vector<TraceEntry> tail_entries(std::size_t n) const;
  /// Most recent entries, formatted for humans, oldest first.
  [[nodiscard]] std::vector<std::string> tail(std::size_t n = 64) const;
  /// JSONL dump of the most recent `n` entries (one object per line).
  void dump_jsonl(std::ostream& os, std::size_t n = 64) const;

  /// Events offered while enabled (monotone; unaffected by ring eviction).
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  /// Events evicted by the capacity bound — nonzero means the tail is
  /// truncated, and failure dumps should say so instead of presenting the
  /// ring as the whole story.
  [[nodiscard]] std::uint64_t overwritten() const { return overwritten_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  void clear();

 private:
  std::size_t capacity_;
  bool enabled_ = false;
  std::deque<TraceEntry> ring_;
  std::uint64_t recorded_ = 0;
  std::uint64_t overwritten_ = 0;
};

namespace detail {
// thread_local for the same reason as the metrics registry: parallel-sweep
// workers each install their own trace (or none); traces are never shared
// across threads.
inline thread_local EventTrace* g_trace = nullptr;
}  // namespace detail

[[nodiscard]] inline EventTrace* trace() { return detail::g_trace; }
inline void install_trace(EventTrace* t) { detail::g_trace = t; }

/// Emit a typed event to the installed trace; one branch when none is.
inline void emit(const TraceEvent& event) {
  if (EventTrace* t = detail::g_trace) t->record(event);
}

/// RAII install; restores the previous trace on scope exit.
class ScopedTrace {
 public:
  explicit ScopedTrace(EventTrace& t) : prev_(detail::g_trace) {
    detail::g_trace = &t;
  }
  ~ScopedTrace() { detail::g_trace = prev_; }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  EventTrace* prev_;
};

}  // namespace dyncon::obs

#pragma once

// Bridges sim::NetStats into the observability layer.  Header-only so the
// obs library itself stays below sim in the dependency order (sim already
// links obs for the typed trace).
//
// Two directions:
//   * net_stats_json / add_net_stats — embed the per-kind measured message
//     stats into a RunReport's "net_stats" section;
//   * publish_net_stats — re-export the same numbers as registry counters
//     ("net.kind.<kind>.count" etc.) so report_dump diffs see one flat
//     namespace.  Uses set() semantics: NetStats is already cumulative, so
//     publishing twice must not double-count.

#include <string>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "sim/network.hpp"

namespace dyncon::obs {

[[nodiscard]] inline json::Value net_stats_json(const sim::NetStats& st) {
  json::Value v = json::Value::object();
  v["messages"] = st.messages;
  v["total_bits"] = st.total_bits;
  v["max_message_bits"] = st.max_message_bits;
  v["roundtrip_checks"] = st.roundtrip_checks;
  json::Value& per_kind = v["per_kind"] = json::Value::object();
  for (std::size_t k = 0; k < sim::NetStats::kKinds; ++k) {
    json::Value& kv =
        per_kind[sim::msg_kind_name(static_cast<sim::MsgKind>(k))] =
            json::Value::object();
    kv["count"] = st.by_kind[k];
    kv["bits"] = st.bits_by_kind[k];
    kv["max_bits"] = st.max_bits_by_kind[k];
  }
  json::Array hist;
  std::size_t top = st.size_histogram.size();
  while (top > 0 && st.size_histogram[top - 1] == 0) --top;
  hist.reserve(top);
  for (std::size_t w = 0; w < top; ++w) hist.emplace_back(st.size_histogram[w]);
  v["size_histogram"] = json::Value(std::move(hist));
  return v;
}

/// Fill a report's "net_stats" section from (accumulated) stats.
inline void add_net_stats(RunReport& report, const sim::NetStats& st) {
  report.net_stats() = net_stats_json(st);
}

/// Re-export stats as counters in `reg` under the "net." prefix.
inline void publish_net_stats(Registry& reg, const sim::NetStats& st) {
  reg.set("net.messages", st.messages);
  reg.set("net.total_bits", st.total_bits);
  reg.set("net.max_message_bits", st.max_message_bits);
  for (std::size_t k = 0; k < sim::NetStats::kKinds; ++k) {
    const std::string prefix =
        std::string("net.kind.") +
        sim::msg_kind_name(static_cast<sim::MsgKind>(k));
    reg.set(prefix + ".count", st.by_kind[k]);
    reg.set(prefix + ".bits", st.bits_by_kind[k]);
    reg.set(prefix + ".max_bits", st.max_bits_by_kind[k]);
  }
}

}  // namespace dyncon::obs

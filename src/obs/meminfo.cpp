#include "obs/meminfo.hpp"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace dyncon::obs {

std::uint64_t current_rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long total = 0;
  unsigned long long resident = 0;
  const int got = std::fscanf(f, "%llu %llu", &total, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  return resident * static_cast<std::uint64_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

std::uint64_t peak_rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      unsigned long long v = 0;
      if (std::sscanf(line + 6, "%llu", &v) == 1) kib = v;
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
#else
  return 0;
#endif
}

}  // namespace dyncon::obs

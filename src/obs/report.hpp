#pragma once

// Run-report exporter: one JSON document per run (bench, test, fuzz) with
// the shape
//
//   {
//     "name":          "<run name>",
//     "params":        { ... run parameters ... },
//     "metrics":       { "counters": {...}, "gauges": {...} },
//     "histograms":    { "<name>": {count, sum, min, max, mean, buckets} },
//     "net_stats":     { messages, total_bits, max_message_bits,
//                        per_kind: {...}, size_histogram: [...] },
//     "spans":         { capacity, recorded, overwritten, events: [...] },
//     "timeline":      { period, capacity, taken, overwritten,
//                        counters: [...], rows: [[t, v...], ...] },
//     "wall_time_sec": 1.23
//   }
//
// Every key is always present (empty objects where a run has nothing to
// say), so downstream tooling (tools/report_dump, tools/check_report.py)
// never branches on schema.  The "net_stats" section is filled by the
// header-only adapter in obs/net_adapter.hpp to keep this layer free of a
// sim dependency.

#include <ostream>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace dyncon::obs {

class RunReport {
 public:
  explicit RunReport(std::string name) : name_(std::move(name)) {}

  void set_param(const std::string& key, json::Value value) {
    params_[key] = std::move(value);
  }
  [[nodiscard]] json::Value& params() { return params_; }

  /// The "net_stats" section (see obs/net_adapter.hpp).
  [[nodiscard]] json::Value& net_stats() { return net_stats_; }

  /// The "spans" section (SpanSink::to_json); empty object by default.
  void set_spans(json::Value spans) { spans_ = std::move(spans); }
  /// The "timeline" section (FlightRecorder::to_json); empty by default.
  void set_timeline(json::Value timeline) { timeline_ = std::move(timeline); }

  void set_wall_time(double seconds) { wall_time_sec_ = seconds; }
  [[nodiscard]] double wall_time() const { return wall_time_sec_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Assemble the document; `reg` may be null (empty metrics sections).
  [[nodiscard]] json::Value to_json(const Registry* reg) const;

  void write_json(std::ostream& os, const Registry* reg) const;

  /// Write to `path` (pretty-printed, trailing newline).  Returns false and
  /// fills `err` on I/O failure.
  bool write_file(const std::string& path, const Registry* reg,
                  std::string* err = nullptr) const;

 private:
  std::string name_;
  json::Value params_ = json::Value::object();
  json::Value net_stats_ = json::Value::object();
  json::Value spans_ = json::Value::object();
  json::Value timeline_ = json::Value::object();
  double wall_time_sec_ = 0.0;
};

}  // namespace dyncon::obs

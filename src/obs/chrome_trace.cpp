#include "obs/chrome_trace.hpp"

#include <utility>

namespace dyncon::obs {

namespace {

bool fail(std::string* err, const std::string& msg) {
  if (err != nullptr) *err = msg;
  return false;
}

const json::Value* number_field(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  return v != nullptr && v->is_number() ? v : nullptr;
}

bool convert_spans(const json::Value& spans, json::Array& events,
                   std::string* err) {
  if (!spans.is_object()) return fail(err, "\"spans\" is not an object");
  const json::Value* list = spans.find("events");
  if (list == nullptr) return true;  // empty section
  if (!list->is_array()) return fail(err, "spans.events is not an array");
  for (std::size_t i = 0; i < list->as_array().size(); ++i) {
    const json::Value& s = list->as_array()[i];
    const std::string at = "spans.events[" + std::to_string(i) + "]";
    if (!s.is_object()) return fail(err, at + " is not an object");
    const json::Value* trace = number_field(s, "trace");
    const json::Value* id = number_field(s, "id");
    const json::Value* begin = number_field(s, "begin");
    const json::Value* end = number_field(s, "end");
    const json::Value* kind = s.find("kind");
    if (trace == nullptr || id == nullptr || begin == nullptr ||
        end == nullptr || kind == nullptr || !kind->is_string()) {
      return fail(err, at + " lacks trace/id/kind/begin/end");
    }
    if (end->as_uint() < begin->as_uint()) {
      return fail(err, at + " ends before it begins");
    }
    json::Value ev = json::Value::object();
    ev["ph"] = "X";
    const json::Value* label = s.find("label");
    ev["name"] = label != nullptr && label->is_string() ? label->as_string()
                                                        : kind->as_string();
    ev["cat"] = kind->as_string();
    ev["ts"] = begin->as_uint();
    ev["dur"] = end->as_uint() - begin->as_uint();
    ev["pid"] = std::uint64_t{0};
    ev["tid"] = trace->as_uint();
    json::Value args = json::Value::object();
    args["span"] = id->as_uint();
    for (const char* key : {"parent", "node", "peer", "op"}) {
      if (const json::Value* v = number_field(s, key)) args[key] = *v;
    }
    ev["args"] = std::move(args);
    events.push_back(std::move(ev));
  }
  return true;
}

bool convert_timeline(const json::Value& timeline, json::Array& events,
                      std::string* err) {
  if (!timeline.is_object()) return fail(err, "\"timeline\" is not an object");
  const json::Value* counters = timeline.find("counters");
  const json::Value* rows = timeline.find("rows");
  if (counters == nullptr && rows == nullptr) return true;  // empty section
  if (counters == nullptr || !counters->is_array() || rows == nullptr ||
      !rows->is_array()) {
    return fail(err, "timeline lacks counters/rows arrays");
  }
  const json::Array& names = counters->as_array();
  for (std::size_t r = 0; r < rows->as_array().size(); ++r) {
    const json::Value& row = rows->as_array()[r];
    const std::string at = "timeline.rows[" + std::to_string(r) + "]";
    if (!row.is_array() || row.as_array().size() != names.size() + 1) {
      return fail(err, at + " is not a [t, v...] array matching counters");
    }
    const json::Value& t = row.as_array()[0];
    if (!t.is_number()) return fail(err, at + " has a non-numeric time");
    for (std::size_t c = 0; c < names.size(); ++c) {
      if (!names[c].is_string()) {
        return fail(err, "timeline.counters holds a non-string name");
      }
      const json::Value& cell = row.as_array()[c + 1];
      if (!cell.is_number()) return fail(err, at + " has a non-numeric cell");
      json::Value ev = json::Value::object();
      ev["ph"] = "C";
      ev["name"] = names[c].as_string();
      ev["ts"] = t.as_uint();
      ev["pid"] = std::uint64_t{0};
      json::Value args = json::Value::object();
      args["value"] = cell;
      ev["args"] = std::move(args);
      events.push_back(std::move(ev));
    }
  }
  return true;
}

}  // namespace

bool chrome_trace_from_report(const json::Value& report, json::Value& out,
                              std::string* err) {
  if (!report.is_object()) return fail(err, "report is not a JSON object");
  json::Array events;
  if (const json::Value* spans = report.find("spans")) {
    if (!convert_spans(*spans, events, err)) return false;
  }
  if (const json::Value* timeline = report.find("timeline")) {
    if (!convert_timeline(*timeline, events, err)) return false;
  }
  out = json::Value::object();
  out["traceEvents"] = json::Value(std::move(events));
  out["displayTimeUnit"] = "ms";
  if (const json::Value* name = report.find("name")) {
    if (name->is_string()) {
      json::Value other = json::Value::object();
      other["report"] = *name;
      out["otherData"] = std::move(other);
    }
  }
  return true;
}

}  // namespace dyncon::obs

#include "obs/events.hpp"

#include <sstream>
#include <utility>

#include "obs/json.hpp"

namespace dyncon::obs {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kText: return "Text";
    case EventKind::kPermitGranted: return "PermitGranted";
    case EventKind::kRequestRejected: return "RequestRejected";
    case EventKind::kRequestMoot: return "RequestMoot";
    case EventKind::kRequestExhausted: return "RequestExhausted";
    case EventKind::kPackageCreated: return "PackageCreated";
    case EventKind::kPackageSplit: return "PackageSplit";
    case EventKind::kPackageStatic: return "PackageStatic";
    case EventKind::kWaveStart: return "WaveStart";
    case EventKind::kWaveEnd: return "WaveEnd";
    case EventKind::kLinkAdded: return "LinkAdded";
    case EventKind::kLinkRemoved: return "LinkRemoved";
    case EventKind::kAgentHop: return "AgentHop";
    case EventKind::kLockWait: return "LockWait";
    case EventKind::kIterationStart: return "IterationStart";
    case EventKind::kIterationRotate: return "IterationRotate";
    case EventKind::kKindCount__: break;
  }
  return "invalid";
}

std::string format_entry(const TraceEntry& entry) {
  const TraceEvent& ev = entry.event;
  std::string out = "[t=" + std::to_string(ev.time) + "] ";
  if (ev.kind == EventKind::kText) return out + entry.text;
  out += event_kind_name(ev.kind);
  if (ev.node != kNoNode) out += " node=" + std::to_string(ev.node);
  out += " a=" + std::to_string(ev.a) + " b=" + std::to_string(ev.b);
  return out;
}

std::string entry_json(const TraceEntry& entry) {
  const TraceEvent& ev = entry.event;
  std::ostringstream os;
  os << "{\"kind\":";
  json::write_escaped(os, event_kind_name(ev.kind));
  os << ",\"t\":" << ev.time;
  if (ev.node != kNoNode) os << ",\"node\":" << ev.node;
  if (ev.kind == EventKind::kText) {
    os << ",\"text\":";
    json::write_escaped(os, entry.text);
  } else {
    os << ",\"a\":" << ev.a << ",\"b\":" << ev.b;
  }
  os << "}";
  return os.str();
}

void EventTrace::record(const TraceEvent& event, std::string text) {
  if (!enabled_) return;
  ++recorded_;
  ring_.push_back(TraceEntry{event, std::move(text)});
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    ++overwritten_;
  }
}

std::vector<TraceEntry> EventTrace::tail_entries(std::size_t n) const {
  std::vector<TraceEntry> out;
  const std::size_t start = ring_.size() > n ? ring_.size() - n : 0;
  out.reserve(ring_.size() - start);
  for (std::size_t i = start; i < ring_.size(); ++i) out.push_back(ring_[i]);
  return out;
}

std::vector<std::string> EventTrace::tail(std::size_t n) const {
  std::vector<std::string> out;
  const std::size_t start = ring_.size() > n ? ring_.size() - n : 0;
  out.reserve(ring_.size() - start);
  for (std::size_t i = start; i < ring_.size(); ++i) {
    out.push_back(format_entry(ring_[i]));
  }
  return out;
}

void EventTrace::dump_jsonl(std::ostream& os, std::size_t n) const {
  const std::size_t start = ring_.size() > n ? ring_.size() - n : 0;
  for (std::size_t i = start; i < ring_.size(); ++i) {
    os << entry_json(ring_[i]) << '\n';
  }
}

void EventTrace::clear() {
  ring_.clear();
  recorded_ = 0;
  overwritten_ = 0;
}

}  // namespace dyncon::obs

#pragma once

// Causal request spans over virtual time.
//
// A Span is one closed interval of virtual time attributed to a trace: the
// root span of a trace is a user request's end-to-end life (mux arrival ->
// completion), its children are the controller operations served on its
// behalf, and *their* children are individual message hops.  Spans are POD
// records emitted on completion (the emitter tracks the begin time), so
// recording one is an O(1) copy into a bounded ring — the same shape as
// obs::EventTrace, and with the same install discipline as the metrics
// registry: a thread-local SpanSink pointer, one branch per would-be span
// when none is installed, zero allocation on any hot path that has no sink.
//
// Causality is carried OUT OF BAND.  The current (trace, span) pair lives
// in a thread-local SpanContext that emitters scope around the work they
// attribute (ScopedSpanContext); the network stashes per-message hop state
// in a side table keyed by a token captured in the delivery continuation.
// Wire bytes, event timing, and RNG draws are untouched, which is what
// keeps every run byte-identical with spans on or off and at any shard
// count (the forest engine merges per-shard sinks in a shard-invariant
// order; see forest/forest.cpp).

#include <cstdint>
#include <deque>
#include <map>

#include "obs/json.hpp"
#include "util/ids.hpp"

namespace dyncon::obs {

using TraceId = std::uint64_t;

/// Trace id 0 means "no trace": emitters skip span work entirely.
inline constexpr TraceId kNoTrace = 0;
/// Span id of a trace's root span (the request itself).
inline constexpr std::uint32_t kRootSpanId = 0;
/// "This span has no parent" (root spans, orphaned ops).
inline constexpr std::uint32_t kNoSpan = 0xffffffffu;
/// SpanSink::new_trace mints from this band so sink-minted trace ids never
/// collide with the mux's dense request-index ids.
inline constexpr TraceId kMintedTraceBase = TraceId{1} << 48;

enum class SpanKind : std::uint8_t {
  kRequest = 0,  ///< root: one user request end to end (op = ForestOp)
  kOp,           ///< one controller operation (op = core::Outcome)
  kHop,          ///< one message hop (op = sim::MsgKind)
  kCrash,        ///< one node down window (node = the crashed node)
  kRecovery,     ///< one restart's recovery work (node = restarted node)
};

[[nodiscard]] const char* span_kind_name(SpanKind kind);

/// One completed span.  `label` is an optional static string naming the op
/// (e.g. forest_op_name / outcome_name); it is serialized by value, so two
/// runs emitting the same labels produce identical JSON.
struct Span {
  TraceId trace = kNoTrace;
  SimTime begin = 0;
  SimTime end = 0;
  std::uint32_t id = kRootSpanId;
  std::uint32_t parent = kNoSpan;
  NodeId node = kNoNode;
  NodeId peer = kNoNode;
  SpanKind kind = SpanKind::kRequest;
  std::uint8_t op = 0;
  const char* label = nullptr;
};

/// Thread-confined bounded span ring (keeps the most recent `capacity`
/// spans; `overwritten()` counts evictions so truncation is never silent).
class SpanSink {
 public:
  explicit SpanSink(std::size_t capacity = 1 << 15) : capacity_(capacity) {}

  void emit(const Span& span);

  /// Allocate the next child span id within `trace` (root is kRootSpanId;
  /// children count up from 1).  Ids are per-trace, so they are invariant
  /// under any interleaving of traces.
  [[nodiscard]] std::uint32_t open(TraceId trace);

  /// Mint a fresh trace id (for ops submitted outside any request trace).
  [[nodiscard]] TraceId new_trace() { return next_trace_++; }

  /// Recorded spans, oldest first.
  [[nodiscard]] const std::deque<Span>& entries() const { return ring_; }

  /// Spans offered (monotone; unaffected by ring eviction).
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  /// Spans evicted by the capacity bound (here or in a merged-in sink).
  [[nodiscard]] std::uint64_t overwritten() const { return overwritten_; }
  /// Fold eviction counts from merged-in sinks (forest shard merge).
  void add_overwritten(std::uint64_t n) { overwritten_ += n; }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  void clear();

  /// {"capacity", "recorded", "overwritten", "events": [...]}; events are
  /// serialized in ring order with all-present numeric fields except node /
  /// peer / parent, which are omitted when unset.
  [[nodiscard]] json::Value to_json() const;

 private:
  std::size_t capacity_;
  std::deque<Span> ring_;
  std::map<TraceId, std::uint32_t> next_id_;
  TraceId next_trace_ = kMintedTraceBase;
  std::uint64_t recorded_ = 0;
  std::uint64_t overwritten_ = 0;
};

/// The causal position new spans attach to: which trace, and which span
/// within it, the current work is being done for.
struct SpanContext {
  TraceId trace = kNoTrace;
  std::uint32_t span = kNoSpan;
};

namespace detail {
// thread_local for the same reason as the metrics registry: forest shard
// workers each install their own sink; sinks are never shared across
// threads.  The context and virtual clock ride along with the sink.
inline thread_local SpanSink* g_spans = nullptr;
inline thread_local SpanContext g_span_ctx{};
inline thread_local SimTime g_span_now = 0;
}  // namespace detail

/// The sink installed on THIS thread, or nullptr (disabled).
[[nodiscard]] inline SpanSink* spans() { return detail::g_spans; }
inline void install_spans(SpanSink* s) { detail::g_spans = s; }

/// Emit to the installed sink; one branch when none is.
inline void emit_span(const Span& span) {
  if (SpanSink* s = detail::g_spans) s->emit(span);
}

[[nodiscard]] inline SpanContext current_span() { return detail::g_span_ctx; }
inline void set_span_context(SpanContext ctx) { detail::g_span_ctx = ctx; }

/// Virtual "now" for emitters that have no event queue in reach (the
/// centralized controller): whoever drives such an emitter sets it.
[[nodiscard]] inline SimTime span_now() { return detail::g_span_now; }
inline void set_span_now(SimTime t) { detail::g_span_now = t; }

/// RAII install; restores the previous sink on scope exit.
class ScopedSpans {
 public:
  explicit ScopedSpans(SpanSink& s) : prev_(detail::g_spans) {
    detail::g_spans = &s;
  }
  ~ScopedSpans() { detail::g_spans = prev_; }
  ScopedSpans(const ScopedSpans&) = delete;
  ScopedSpans& operator=(const ScopedSpans&) = delete;

 private:
  SpanSink* prev_;
};

/// RAII span context: saves on construction, restores on destruction.  The
/// default constructor only saves — engage() sets a new context later, so
/// hot paths can keep the save unconditional and the store behind the
/// "sink installed" branch.
class ScopedSpanContext {
 public:
  ScopedSpanContext() : prev_(detail::g_span_ctx) {}
  explicit ScopedSpanContext(SpanContext ctx) : prev_(detail::g_span_ctx) {
    detail::g_span_ctx = ctx;
  }
  void engage(SpanContext ctx) { detail::g_span_ctx = ctx; }
  ~ScopedSpanContext() { detail::g_span_ctx = prev_; }
  ScopedSpanContext(const ScopedSpanContext&) = delete;
  ScopedSpanContext& operator=(const ScopedSpanContext&) = delete;

 private:
  SpanContext prev_;
};

}  // namespace dyncon::obs

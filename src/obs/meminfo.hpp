#pragma once

// Process-level memory readings for the perf.mem.* gauges: current and
// peak resident set size, straight from the kernel's per-process counters.
// These are the one class of perf figures that CANNOT be deterministic —
// they measure the allocator and the machine, not the simulation — so
// report emitters publish them as gauges only (check_bench excludes gauge
// families from baseline comparison) and check_report checks consistency
// (peak >= current), never absolute values.

#include <cstdint>

namespace dyncon::obs {

/// Current resident set size in bytes (/proc/self/statm).  0 when the
/// reading is unavailable (non-Linux, or /proc unmounted).
[[nodiscard]] std::uint64_t current_rss_bytes();

/// Peak resident set size in bytes (/proc/self/status VmHWM).  0 when
/// unavailable.
[[nodiscard]] std::uint64_t peak_rss_bytes();

}  // namespace dyncon::obs

#include "obs/report.hpp"

#include <fstream>

namespace dyncon::obs {

json::Value RunReport::to_json(const Registry* reg) const {
  json::Value doc = json::Value::object();
  doc["name"] = name_;
  doc["params"] = params_;
  json::Value& metrics = doc["metrics"] = json::Value::object();
  metrics["counters"] = json::Value::object();
  metrics["gauges"] = json::Value::object();
  doc["histograms"] = json::Value::object();
  if (reg != nullptr) {
    json::Value all = reg->to_json();
    metrics["counters"] = *all.find("counters");
    metrics["gauges"] = *all.find("gauges");
    doc["histograms"] = *all.find("histograms");
  }
  doc["net_stats"] = net_stats_;
  doc["spans"] = spans_;
  doc["timeline"] = timeline_;
  doc["wall_time_sec"] = wall_time_sec_;
  return doc;
}

void RunReport::write_json(std::ostream& os, const Registry* reg) const {
  to_json(reg).dump(os, 2);
  os << '\n';
}

bool RunReport::write_file(const std::string& path, const Registry* reg,
                           std::string* err) const {
  std::ofstream out(path);
  if (!out) {
    if (err) *err = "cannot open " + path + " for writing";
    return false;
  }
  write_json(out, reg);
  out.flush();
  if (!out) {
    if (err) *err = "write to " + path + " failed";
    return false;
  }
  return true;
}

}  // namespace dyncon::obs

#pragma once

// Minimal JSON value: enough to write run reports deterministically and to
// read them back (tools/report_dump, round-trip tests).  Not a general
// JSON library — no streaming, no comments, objects are kept in key order
// so two reports produced from the same run compare byte-identical.
//
// Numbers: unsigned integers are kept exact in a dedicated arm (counters
// routinely exceed 2^53, where double would silently round); everything
// else parses as double.

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace dyncon::obs::json {

class Value;

using Object = std::map<std::string, Value, std::less<>>;
using Array = std::vector<Value>;

class Value {
 public:
  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}
  Value(bool b) : v_(b) {}
  Value(std::uint64_t u) : v_(u) {}
  Value(int u) : v_(static_cast<std::uint64_t>(u < 0 ? 0 : u)) {
    if (u < 0) v_ = static_cast<double>(u);
  }
  Value(double d) : v_(d) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Object o) : v_(std::move(o)) {}

  static Value object() { return Value(Object{}); }
  static Value array() { return Value(Array{}); }

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(v_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(v_);
  }
  [[nodiscard]] bool is_uint() const {
    return std::holds_alternative<std::uint64_t>(v_);
  }
  [[nodiscard]] bool is_double() const {
    return std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_number() const { return is_uint() || is_double(); }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(v_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(v_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(v_);
  }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] std::uint64_t as_uint() const {
    if (is_double()) return static_cast<std::uint64_t>(std::get<double>(v_));
    return std::get<std::uint64_t>(v_);
  }
  [[nodiscard]] double as_double() const {
    if (is_uint()) return static_cast<double>(std::get<std::uint64_t>(v_));
    return std::get<double>(v_);
  }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(v_);
  }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(v_); }
  [[nodiscard]] Array& as_array() { return std::get<Array>(v_); }
  [[nodiscard]] const Object& as_object() const {
    return std::get<Object>(v_);
  }
  [[nodiscard]] Object& as_object() { return std::get<Object>(v_); }

  /// Object access; creates the key (inserting null) on the mutable form.
  Value& operator[](std::string_view key);
  /// Lookup without insertion; returns nullptr if absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Compact (indent < 0) or pretty (indent >= 0) serialization.
  void dump(std::ostream& os, int indent = -1) const;
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parse a complete JSON document.  On failure returns false and, if
  /// `err` is non-null, a position-tagged message.
  static bool parse(std::string_view text, Value& out,
                    std::string* err = nullptr);

  friend bool operator==(const Value& a, const Value& b) {
    return a.v_ == b.v_;
  }

 private:
  void dump_impl(std::ostream& os, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::uint64_t, double, std::string,
               Array, Object>
      v_;
};

/// Write `s` as a JSON string literal (quotes + escapes) to `os`.
void write_escaped(std::ostream& os, std::string_view s);

}  // namespace dyncon::obs::json

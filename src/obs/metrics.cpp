#include "obs/metrics.hpp"

namespace dyncon::obs {

json::Value Histogram::to_json() const {
  json::Value v = json::Value::object();
  v["count"] = count;
  v["sum"] = sum;
  v["min"] = min;
  v["max"] = max;
  v["mean"] = mean();
  json::Array b;
  std::size_t top = buckets.size();
  while (top > 0 && buckets[top - 1] == 0) --top;  // elide empty tail
  b.reserve(top);
  for (std::size_t w = 0; w < top; ++w) b.emplace_back(buckets[w]);
  v["buckets"] = json::Value(std::move(b));
  return v;
}

void Registry::add(std::string_view name, std::uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), 0).first;
  }
  it->second += delta;
}

void Registry::set(std::string_view name, std::uint64_t value) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), 0).first;
  }
  it->second = value;
}

void Registry::set_gauge(std::string_view name, double value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), 0.0).first;
  }
  it->second = value;
}

void Registry::add_gauge(std::string_view name, double delta) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), 0.0).first;
  }
  it->second += delta;
}

void Registry::observe(std::string_view name, std::uint64_t value,
                       std::uint64_t weight) {
  auto it = hists_.find(name);
  if (it == hists_.end()) {
    it = hists_.emplace(std::string(name), Histogram{}).first;
  }
  it->second.observe(value, weight);
}

std::uint64_t Registry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Registry::gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const Histogram* Registry::histogram(std::string_view name) const {
  const auto it = hists_.find(name);
  return it == hists_.end() ? nullptr : &it->second;
}

std::uint64_t& Registry::counter_slot(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), 0).first;
  }
  return it->second;
}

Histogram& Registry::histogram_slot(std::string_view name) {
  auto it = hists_.find(name);
  if (it == hists_.end()) {
    it = hists_.emplace(std::string(name), Histogram{}).first;
  }
  return it->second;
}

void Registry::clear() {
  counters_.clear();
  gauges_.clear();
  hists_.clear();
  epoch_ =
      detail::g_registry_epochs.fetch_add(1, std::memory_order_relaxed) + 1;
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[name] += value;
  }
  for (const auto& [name, value] : other.gauges_) {
    gauges_[name] += value;
  }
  for (const auto& [name, hist] : other.hists_) {
    hists_[name].merge(hist);
  }
}

json::Value Registry::to_json() const {
  json::Value v = json::Value::object();
  json::Value& c = v["counters"] = json::Value::object();
  for (const auto& [name, value] : counters_) c[name] = value;
  json::Value& g = v["gauges"] = json::Value::object();
  for (const auto& [name, value] : gauges_) g[name] = value;
  json::Value& h = v["histograms"] = json::Value::object();
  for (const auto& [name, hist] : hists_) h[name] = hist.to_json();
  return v;
}

}  // namespace dyncon::obs

#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace dyncon::obs::json {

// ---- access -----------------------------------------------------------------

Value& Value::operator[](std::string_view key) {
  if (!is_object()) v_ = Object{};
  Object& o = as_object();
  auto it = o.find(key);
  if (it == o.end()) it = o.emplace(std::string(key), Value{}).first;
  return it->second;
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const Object& o = as_object();
  const auto it = o.find(key);
  return it == o.end() ? nullptr : &it->second;
}

// ---- writing ----------------------------------------------------------------

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

namespace {

void write_newline_indent(std::ostream& os, int indent, int depth) {
  if (indent < 0) return;
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}

void write_double(std::ostream& os, double d) {
  if (!std::isfinite(d)) {
    os << "null";  // JSON has no inf/nan; reports never produce them
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[64];
    std::snprintf(probe, sizeof probe, "%.*g", prec, d);
    if (std::strtod(probe, nullptr) == d) {
      std::snprintf(buf, sizeof buf, "%.*g", prec, d);
      break;
    }
  }
  os << buf;
}

}  // namespace

void Value::dump_impl(std::ostream& os, int indent, int depth) const {
  if (is_null()) {
    os << "null";
  } else if (is_bool()) {
    os << (as_bool() ? "true" : "false");
  } else if (is_uint()) {
    os << std::get<std::uint64_t>(v_);
  } else if (is_double()) {
    write_double(os, std::get<double>(v_));
  } else if (is_string()) {
    write_escaped(os, as_string());
  } else if (is_array()) {
    const Array& a = as_array();
    if (a.empty()) {
      os << "[]";
      return;
    }
    os << '[';
    bool first = true;
    for (const Value& v : a) {
      if (!first) os << ',';
      first = false;
      write_newline_indent(os, indent, depth + 1);
      v.dump_impl(os, indent, depth + 1);
    }
    write_newline_indent(os, indent, depth);
    os << ']';
  } else {
    const Object& o = as_object();
    if (o.empty()) {
      os << "{}";
      return;
    }
    os << '{';
    bool first = true;
    for (const auto& [k, v] : o) {
      if (!first) os << ',';
      first = false;
      write_newline_indent(os, indent, depth + 1);
      write_escaped(os, k);
      os << (indent < 0 ? ":" : ": ");
      v.dump_impl(os, indent, depth + 1);
    }
    write_newline_indent(os, indent, depth);
    os << '}';
  }
}

void Value::dump(std::ostream& os, int indent) const {
  dump_impl(os, indent, 0);
}

std::string Value::dump(int indent) const {
  std::ostringstream os;
  dump(os, indent);
  return os.str();
}

// ---- parsing ----------------------------------------------------------------

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  [[nodiscard]] bool at_end() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!at_end() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                         peek() == '\r')) {
      ++pos;
    }
  }

  bool fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at offset " + std::to_string(pos);
    }
    return false;
  }

  bool consume(char c, const char* what) {
    skip_ws();
    if (at_end() || peek() != c) return fail(std::string("expected ") + what);
    ++pos;
    return true;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return fail("bad literal");
    pos += word.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"', "string")) return false;
    out.clear();
    while (true) {
      if (at_end()) return fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) return fail("unterminated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u digit");
            }
          }
          // Reports only ever emit \u00XX control escapes; encode the BMP
          // code point as UTF-8 so round trips are lossless anyway.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos;
    if (!at_end() && peek() == '-') ++pos;
    while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                         peek() == '.' || peek() == 'e' || peek() == 'E' ||
                         peek() == '+' || peek() == '-')) {
      ++pos;
    }
    const std::string_view tok = text.substr(start, pos - start);
    if (tok.empty()) return fail("expected number");
    const bool integral =
        tok.find_first_of(".eE") == std::string_view::npos && tok[0] != '-';
    if (integral) {
      std::uint64_t u = 0;
      const auto [p, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), u);
      if (ec == std::errc{} && p == tok.data() + tok.size()) {
        out = Value(u);
        return true;
      }
    }
    double d = 0;
    const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc{} || p != tok.data() + tok.size()) {
      return fail("malformed number");
    }
    out = Value(d);
    return true;
  }

  bool parse_value(Value& out, int depth) {
    if (depth > 64) return fail("nesting too deep");
    skip_ws();
    if (at_end()) return fail("unexpected end of input");
    const char c = peek();
    if (c == 'n') {
      out = Value(nullptr);
      return literal("null");
    }
    if (c == 't') {
      out = Value(true);
      return literal("true");
    }
    if (c == 'f') {
      out = Value(false);
      return literal("false");
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = Value(std::move(s));
      return true;
    }
    if (c == '[') {
      ++pos;
      Array a;
      skip_ws();
      if (!at_end() && peek() == ']') {
        ++pos;
        out = Value(std::move(a));
        return true;
      }
      while (true) {
        Value v;
        if (!parse_value(v, depth + 1)) return false;
        a.push_back(std::move(v));
        skip_ws();
        if (at_end()) return fail("unterminated array");
        if (peek() == ',') {
          ++pos;
          continue;
        }
        if (peek() == ']') {
          ++pos;
          out = Value(std::move(a));
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '{') {
      ++pos;
      Object o;
      skip_ws();
      if (!at_end() && peek() == '}') {
        ++pos;
        out = Value(std::move(o));
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        if (!consume(':', "':'")) return false;
        Value v;
        if (!parse_value(v, depth + 1)) return false;
        o.insert_or_assign(std::move(key), std::move(v));
        skip_ws();
        if (at_end()) return fail("unterminated object");
        if (peek() == ',') {
          ++pos;
          continue;
        }
        if (peek() == '}') {
          ++pos;
          out = Value(std::move(o));
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    return parse_number(out);
  }
};

}  // namespace

bool Value::parse(std::string_view text, Value& out, std::string* err) {
  Parser p{text, 0, {}};
  if (!p.parse_value(out, 0)) {
    if (err) *err = p.error;
    return false;
  }
  p.skip_ws();
  if (!p.at_end()) {
    if (err) *err = "trailing garbage at offset " + std::to_string(p.pos);
    return false;
  }
  return true;
}

}  // namespace dyncon::obs::json

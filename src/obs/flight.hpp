#pragma once

// Flight recorder: periodic virtual-time sampling of selected metrics.
//
// Counters and histograms answer "how much, in total"; the flight recorder
// answers "when".  At a fixed virtual-time period it snapshots a chosen set
// of metric names into one row of a bounded ring, so a run report carries a
// coarse timeline of the run (requests served over time, messages sent over
// time) without per-event cost: sampling happens only at window edges, on
// the serial path, against registries that are already barrier-quiesced.
//
// Determinism: the driver (forest/forest.cpp) samples at window edges —
// which are shard-count invariant — and accumulates the per-shard
// registries in shard order, so a timeline is byte-identical at any
// --shards/--jobs value.  Rows evicted by the capacity bound are counted
// (`overwritten()`), never silently dropped.
//
// A sampled name is read as a counter first and as a gauge second; rows
// hold doubles (counter sums in any realistic run stay far below 2^53, and
// the accumulation order is fixed, so serialization is deterministic).

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/ids.hpp"

namespace dyncon::obs {

class FlightRecorder {
 public:
  FlightRecorder(std::vector<std::string> names, SimTime period,
                 std::size_t capacity = 4096);

  /// True when virtual time `now` has reached the next sample point.
  [[nodiscard]] bool due(SimTime now) const { return now >= next_; }

  /// Start a row stamped `now` and advance the schedule past it.
  void begin_row(SimTime now);
  /// Add `reg`'s values for the selected names into the open row.
  void accumulate(const Registry& reg);
  /// Seal the open row into the ring (evicting the oldest beyond capacity).
  void commit_row();

  struct Row {
    SimTime t = 0;
    std::vector<double> cells;
  };

  [[nodiscard]] const std::vector<std::string>& names() const {
    return names_;
  }
  [[nodiscard]] SimTime period() const { return period_; }
  [[nodiscard]] const std::deque<Row>& rows() const { return ring_; }
  /// Rows committed (monotone; unaffected by ring eviction).
  [[nodiscard]] std::uint64_t taken() const { return taken_; }
  [[nodiscard]] std::uint64_t overwritten() const { return overwritten_; }
  void clear();

  /// {"period", "capacity", "taken", "overwritten", "counters": [names],
  ///  "rows": [[t, v0, v1, ...], ...]}.
  [[nodiscard]] json::Value to_json() const;

 private:
  std::vector<std::string> names_;
  SimTime period_;
  std::size_t capacity_;
  std::deque<Row> ring_;
  Row open_;
  bool row_open_ = false;
  SimTime next_ = 0;
  std::uint64_t taken_ = 0;
  std::uint64_t overwritten_ = 0;
};

}  // namespace dyncon::obs

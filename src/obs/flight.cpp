#include "obs/flight.hpp"

#include "util/error.hpp"

namespace dyncon::obs {

FlightRecorder::FlightRecorder(std::vector<std::string> names, SimTime period,
                               std::size_t capacity)
    : names_(std::move(names)), period_(period), capacity_(capacity) {
  DYNCON_REQUIRE(period_ >= 1, "flight-recorder period must be >= 1 tick");
  DYNCON_REQUIRE(capacity_ >= 1, "flight recorder needs capacity for a row");
}

void FlightRecorder::begin_row(SimTime now) {
  DYNCON_REQUIRE(!row_open_, "previous flight-recorder row never committed");
  open_.t = now;
  open_.cells.assign(names_.size(), 0.0);
  row_open_ = true;
  // Catch up past `now` in whole periods so an idle stretch costs nothing
  // and the schedule stays a pure function of the sample times.
  while (next_ <= now) next_ += period_;
}

void FlightRecorder::accumulate(const Registry& reg) {
  DYNCON_REQUIRE(row_open_, "accumulate outside begin_row/commit_row");
  for (std::size_t i = 0; i < names_.size(); ++i) {
    const std::string& name = names_[i];
    if (const auto it = reg.counters().find(name);
        it != reg.counters().end()) {
      open_.cells[i] += static_cast<double>(it->second);
      continue;
    }
    if (const auto it = reg.gauges().find(name); it != reg.gauges().end()) {
      open_.cells[i] += it->second;
    }
  }
}

void FlightRecorder::commit_row() {
  DYNCON_REQUIRE(row_open_, "commit_row without begin_row");
  row_open_ = false;
  ++taken_;
  ring_.push_back(open_);
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    ++overwritten_;
  }
}

void FlightRecorder::clear() {
  ring_.clear();
  row_open_ = false;
  next_ = 0;
  taken_ = 0;
  overwritten_ = 0;
}

json::Value FlightRecorder::to_json() const {
  json::Value doc = json::Value::object();
  doc["period"] = period_;
  doc["capacity"] = static_cast<std::uint64_t>(capacity_);
  doc["taken"] = taken_;
  doc["overwritten"] = overwritten_;
  json::Array counters;
  counters.reserve(names_.size());
  for (const std::string& n : names_) counters.push_back(json::Value(n));
  doc["counters"] = json::Value(std::move(counters));
  json::Array rows;
  rows.reserve(ring_.size());
  for (const Row& row : ring_) {
    json::Array cells;
    cells.reserve(row.cells.size() + 1);
    cells.push_back(json::Value(row.t));
    for (double v : row.cells) cells.push_back(json::Value(v));
    rows.push_back(json::Value(std::move(cells)));
  }
  doc["rows"] = json::Value(std::move(rows));
  return doc;
}

}  // namespace dyncon::obs

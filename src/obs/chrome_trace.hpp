#pragma once

// Run-report -> Chrome trace-event JSON converter (the format Perfetto and
// chrome://tracing load).  Spans become complete ("X") duration events —
// one track per trace id, nesting by begin/end containment — and flight-
// recorder rows become counter ("C") events, so one file shows the causal
// view and the timeline view on a shared virtual-time axis.  Virtual ticks
// are written as microseconds (the trace-event unit); the scale is
// arbitrary but consistent.
//
// Lives in obs (not tools/) so tests can validate conversions in-process;
// tools/trace_export.cpp is the CLI wrapper.

#include <string>

#include "obs/json.hpp"

namespace dyncon::obs {

/// Convert a run report's "spans" + "timeline" sections into a Chrome
/// trace-event document ({"traceEvents": [...], ...}).  Missing sections
/// contribute no events; malformed sections fail with `err` set.
bool chrome_trace_from_report(const json::Value& report, json::Value& out,
                              std::string* err = nullptr);

}  // namespace dyncon::obs

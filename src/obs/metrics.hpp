#pragma once

// Run-metrics registry: named counters, gauges, and log2-bucket histograms.
//
// Protocol layers never hold a registry — they call the free functions
// `obs::count/gauge/observe`, which forward to the *installed* registry.
// When none is installed (the default) each call is a single predictable
// branch, so instrumentation can stay in hot paths permanently; benches and
// tools install one for the duration of a run (`ScopedMetrics`).
//
// Metric names are dotted paths ("permits.granted", "net.messages"); the
// catalog, with each name's paper lemma, lives in docs/OBSERVABILITY.md.
//
// Threading model: a Registry is NOT internally synchronized — each
// simulation run stays single-threaded and owns its registry.  What IS
// safe is *independent* registries on concurrent threads (the parallel
// sweep shape, util/thread_pool.hpp): the installed-registry pointer is
// thread_local, the epoch source is atomic, and handle caches are declared
// `static thread_local` at their instrumentation sites, so runs on
// different workers never share mutable metric state.

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace dyncon::obs {

/// Histogram over [0, 2^64) with one bucket per bit-width: bucket w counts
/// values in [2^(w-1), 2^w), bucket 0 counts zeros — the same bucketing as
/// sim::NetStats::size_histogram, so the two merge losslessly.
struct Histogram {
  std::array<std::uint64_t, 65> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;

  /// Record `weight` occurrences of value `v` (weight > 1 models batched
  /// sources like Network::charge, which accounts many identical messages).
  void observe(std::uint64_t v, std::uint64_t weight = 1) {
    if (weight == 0) return;
    buckets[static_cast<std::size_t>(std::bit_width(v))] += weight;
    if (count == 0 || v < min) min = v;
    if (v > max) max = v;
    count += weight;
    sum += v * weight;
  }

  [[nodiscard]] double mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }

  /// Upper bound on the q-quantile (q in [0, 1]): the inclusive upper edge
  /// of the first bucket whose cumulative count reaches q * count, clamped
  /// to the observed max.  Resolution is the log2 bucketing — a factor-of-2
  /// envelope, which is what tail-latency claims are quoted against.
  [[nodiscard]] std::uint64_t percentile(double q) const {
    if (count == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const double target = q * static_cast<double>(count);
    std::uint64_t seen = 0;
    for (std::size_t w = 0; w < buckets.size(); ++w) {
      seen += buckets[w];
      if (static_cast<double>(seen) >= target && seen > 0) {
        // Bucket w holds values in [2^(w-1), 2^w); bucket 0 holds zeros.
        const std::uint64_t edge =
            w == 0 ? 0
                   : (w >= 64 ? UINT64_MAX : (std::uint64_t{1} << w) - 1);
        return edge < max ? edge : max;
      }
    }
    return max;
  }

  /// Fold another histogram in (bucketwise; min/max widened).  Merging is
  /// commutative over the integer fields, so a parallel sweep's per-worker
  /// histograms reduce to exactly the serial run's.
  void merge(const Histogram& other) {
    if (other.count == 0) return;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      buckets[i] += other.buckets[i];
    }
    if (count == 0 || other.min < min) min = other.min;
    if (other.max > max) max = other.max;
    count += other.count;
    sum += other.sum;
  }

  [[nodiscard]] json::Value to_json() const;
};

namespace detail {
/// Source for Registry epochs: globally monotonic, so no two registry
/// *incarnations* (a fresh instance, or one generation of an instance
/// between clear() calls) ever share an epoch — even if a new Registry is
/// constructed at a freed one's address.  Handles key their caches on it.
/// Atomic because independent registries are constructed concurrently by
/// parallel sweeps; a plain increment was a data race (two workers could
/// mint the same epoch and a stale handle cache would silently pass the
/// epoch check — see docs/OBSERVABILITY.md "Concurrency").
inline std::atomic<std::uint64_t> g_registry_epochs{0};
}  // namespace detail

/// Owns one run's metrics.  Lookups are by name; maps are ordered so JSON
/// output is deterministic.
class Registry {
 public:
  Registry()
      : epoch_(detail::g_registry_epochs.fetch_add(
                   1, std::memory_order_relaxed) +
               1) {}

  void add(std::string_view name, std::uint64_t delta = 1);
  /// Overwrite a counter (used when re-exporting cumulative sources such as
  /// an accumulated NetStats, where adding would double-count).
  void set(std::string_view name, std::uint64_t value);
  void set_gauge(std::string_view name, double value);
  void add_gauge(std::string_view name, double delta);
  void observe(std::string_view name, std::uint64_t value,
               std::uint64_t weight = 1);

  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  [[nodiscard]] double gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* histogram(std::string_view name) const;

  using CounterMap = std::map<std::string, std::uint64_t, std::less<>>;
  using GaugeMap = std::map<std::string, double, std::less<>>;
  using HistogramMap = std::map<std::string, Histogram, std::less<>>;

  [[nodiscard]] const CounterMap& counters() const { return counters_; }
  [[nodiscard]] const GaugeMap& gauges() const { return gauges_; }
  [[nodiscard]] const HistogramMap& histograms() const { return hists_; }

  void clear();

  /// Fold another registry's contents in: counters and gauges add,
  /// histograms merge bucketwise.  Gauges add (not overwrite) so the
  /// accumulating families (wall.* timers) reduce correctly; set-style
  /// gauges from sweep points use distinct names per point.  Used by
  /// bench::parallel_sweep to reduce per-worker registries into the run's
  /// registry in deterministic point order.
  void merge(const Registry& other);

  /// Incarnation id of this registry's current contents: unique across all
  /// Registry instances and bumped by clear(), so a cached slot reference
  /// is valid iff the (registry pointer, epoch) pair still matches.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Stable reference to a counter's storage (created at 0 if missing).
  /// std::map node references survive unrelated inserts/erases, so the
  /// reference stays valid until clear() or registry destruction — which is
  /// exactly what epoch() lets callers detect.
  [[nodiscard]] std::uint64_t& counter_slot(std::string_view name);
  /// Stable reference to a histogram's storage (created empty if missing).
  [[nodiscard]] Histogram& histogram_slot(std::string_view name);

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  [[nodiscard]] json::Value to_json() const;

 private:
  CounterMap counters_;
  GaugeMap gauges_;
  HistogramMap hists_;
  std::uint64_t epoch_;
};

namespace detail {
// thread_local: each parallel-sweep worker installs its own registry for
// the duration of its run; threads that install nothing keep the one-branch
// disabled path.  On the main thread this behaves exactly as the old
// process-wide pointer did.
inline thread_local Registry* g_metrics = nullptr;
}  // namespace detail

/// The registry installed on THIS thread, or nullptr (disabled).
[[nodiscard]] inline Registry* metrics() { return detail::g_metrics; }

/// Install (or, with nullptr, remove) this thread's registry.
inline void install_metrics(Registry* r) { detail::g_metrics = r; }

// ---- instrumentation entry points (one branch when not installed) -----------

inline void count(std::string_view name, std::uint64_t delta = 1) {
  if (Registry* r = detail::g_metrics) r->add(name, delta);
}

inline void gauge(std::string_view name, double value) {
  if (Registry* r = detail::g_metrics) r->set_gauge(name, value);
}

inline void observe(std::string_view name, std::uint64_t value,
                    std::uint64_t weight = 1) {
  if (Registry* r = detail::g_metrics) r->observe(name, value, weight);
}

// ---- pre-resolved handles (hot-path instrumentation) ------------------------
//
// obs::count("net.messages", n) pays a map lookup — a string hash/compare —
// on every call.  A handle resolves the name to the counter's storage once
// per (registry, epoch) incarnation and then increments through the cached
// reference; steady state is two loads, one compare, one add.  Declare them
// function-local `static thread_local` at the instrumentation site:
//
//   static thread_local obs::CounterHandle messages("net.messages");
//   messages.add(count);
//
// thread_local, not plain static: the cache holds a raw slot pointer into
// whichever registry this thread has installed.  A shared static would be
// thrashed (and raced on) by workers running different registries; per
// thread it keeps PR 4's one-branch steady-state cost with zero sharing.
//
// Safe against every registry lifecycle: uninstall (null check), reinstall
// of a different registry (pointer check), clear() or a new registry at a
// recycled address (epoch check — epochs are minted atomically, so no two
// incarnations ever alias).

class CounterHandle {
 public:
  explicit CounterHandle(std::string name) : name_(std::move(name)) {}

  void add(std::uint64_t delta = 1) {
    Registry* r = detail::g_metrics;
    if (r == nullptr) return;
    if (r != registry_ || r->epoch() != epoch_) {
      slot_ = &r->counter_slot(name_);
      registry_ = r;
      epoch_ = r->epoch();
    }
    *slot_ += delta;
  }

 private:
  std::string name_;
  Registry* registry_ = nullptr;
  std::uint64_t epoch_ = 0;
  std::uint64_t* slot_ = nullptr;
};

class HistogramHandle {
 public:
  explicit HistogramHandle(std::string name) : name_(std::move(name)) {}

  void observe(std::uint64_t value, std::uint64_t weight = 1) {
    Registry* r = detail::g_metrics;
    if (r == nullptr) return;
    if (r != registry_ || r->epoch() != epoch_) {
      slot_ = &r->histogram_slot(name_);
      registry_ = r;
      epoch_ = r->epoch();
    }
    slot_->observe(value, weight);
  }

 private:
  std::string name_;
  Registry* registry_ = nullptr;
  std::uint64_t epoch_ = 0;
  Histogram* slot_ = nullptr;
};

/// RAII install; restores the previously installed registry on scope exit,
/// so nested scopes (a test inside a bench) compose.
class ScopedMetrics {
 public:
  explicit ScopedMetrics(Registry& r) : prev_(detail::g_metrics) {
    detail::g_metrics = &r;
  }
  ~ScopedMetrics() { detail::g_metrics = prev_; }
  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  Registry* prev_;
};

/// RAII wall-clock phase timer: on destruction adds the elapsed seconds to
/// gauge "wall.<name>" (accumulating, so repeated phases sum) and counts
/// "wall.<name>.calls".  No-op when no registry is installed at destruction.
class ScopeTimer {
 public:
  explicit ScopeTimer(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}
  ~ScopeTimer() {
    Registry* r = detail::g_metrics;
    if (r == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    r->add_gauge("wall." + name_,
                 std::chrono::duration<double>(elapsed).count());
    r->add("wall." + name_ + ".calls");
  }
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dyncon::obs

#include "tree/ports.hpp"

#include "util/error.hpp"

namespace dyncon::tree {

void PortAssigner::reset() {
  tables_.clear();
  rng_ = Rng(seed_);
}

std::uint64_t PortAssigner::approx_bytes() const {
  std::uint64_t bytes = tables_.capacity() * sizeof(Table);
  for (const Table& t : tables_) {
    // Per map: one pointer-ish slot per bucket plus a node per element
    // (key/value pair and two link/hash words) — libstdc++-shaped estimate.
    bytes += (t.by_port.bucket_count() + t.by_neighbor.bucket_count()) *
             sizeof(void*);
    bytes += t.by_port.size() * (sizeof(PortId) + sizeof(NodeId) + 16);
    bytes += t.by_neighbor.size() * (sizeof(NodeId) + sizeof(PortId) + 16);
  }
  return bytes;
}

PortId PortAssigner::attach(NodeId node, NodeId neighbor) {
  if (node >= tables_.size()) tables_.resize(node + 1);
  Table& t = tables_[node];
  DYNCON_REQUIRE(!t.by_neighbor.contains(neighbor),
                 "port to this neighbor already exists");
  // Adversarial-looking port id; retry on the (rare) per-node collision.
  PortId p;
  do {
    p = rng_.next();
  } while (t.by_port.contains(p));
  t.by_port.emplace(p, neighbor);
  t.by_neighbor.emplace(neighbor, p);
  return p;
}

void PortAssigner::detach(NodeId node, NodeId neighbor) {
  Table* t = table(node);
  if (t == nullptr) return;
  auto nit = t->by_neighbor.find(neighbor);
  if (nit == t->by_neighbor.end()) return;
  t->by_port.erase(nit->second);
  t->by_neighbor.erase(nit);
}

void PortAssigner::drop_node(NodeId node) {
  // Ids are permanent, so the slot never comes back: release its storage.
  if (Table* t = table(node)) *t = Table{};
}

bool PortAssigner::has_port(NodeId node, NodeId neighbor) const {
  const Table* t = table(node);
  return t != nullptr && t->by_neighbor.contains(neighbor);
}

PortId PortAssigner::port_to(NodeId node, NodeId neighbor) const {
  const Table* t = table(node);
  DYNCON_REQUIRE(t != nullptr, "node has no ports");
  auto nit = t->by_neighbor.find(neighbor);
  DYNCON_REQUIRE(nit != t->by_neighbor.end(), "no port to neighbor");
  return nit->second;
}

NodeId PortAssigner::neighbor_at(NodeId node, PortId port) const {
  const Table* t = table(node);
  DYNCON_REQUIRE(t != nullptr, "node has no ports");
  auto pit = t->by_port.find(port);
  DYNCON_REQUIRE(pit != t->by_port.end(), "no such port");
  return pit->second;
}

std::size_t PortAssigner::degree(NodeId node) const {
  const Table* t = table(node);
  return t == nullptr ? 0 : t->by_port.size();
}

}  // namespace dyncon::tree

#include "tree/ports.hpp"

#include "util/error.hpp"

namespace dyncon::tree {

PortId PortAssigner::attach(NodeId node, NodeId neighbor) {
  Table& t = tables_[node];
  DYNCON_REQUIRE(!t.by_neighbor.contains(neighbor),
                 "port to this neighbor already exists");
  // Adversarial-looking port id; retry on the (rare) per-node collision.
  PortId p;
  do {
    p = rng_.next();
  } while (t.by_port.contains(p));
  t.by_port.emplace(p, neighbor);
  t.by_neighbor.emplace(neighbor, p);
  return p;
}

void PortAssigner::detach(NodeId node, NodeId neighbor) {
  auto it = tables_.find(node);
  if (it == tables_.end()) return;
  auto nit = it->second.by_neighbor.find(neighbor);
  if (nit == it->second.by_neighbor.end()) return;
  it->second.by_port.erase(nit->second);
  it->second.by_neighbor.erase(nit);
}

void PortAssigner::drop_node(NodeId node) { tables_.erase(node); }

bool PortAssigner::has_port(NodeId node, NodeId neighbor) const {
  auto it = tables_.find(node);
  return it != tables_.end() && it->second.by_neighbor.contains(neighbor);
}

PortId PortAssigner::port_to(NodeId node, NodeId neighbor) const {
  auto it = tables_.find(node);
  DYNCON_REQUIRE(it != tables_.end(), "node has no ports");
  auto nit = it->second.by_neighbor.find(neighbor);
  DYNCON_REQUIRE(nit != it->second.by_neighbor.end(), "no port to neighbor");
  return nit->second;
}

NodeId PortAssigner::neighbor_at(NodeId node, PortId port) const {
  auto it = tables_.find(node);
  DYNCON_REQUIRE(it != tables_.end(), "node has no ports");
  auto pit = it->second.by_port.find(port);
  DYNCON_REQUIRE(pit != it->second.by_port.end(), "no such port");
  return pit->second;
}

std::size_t PortAssigner::degree(NodeId node) const {
  auto it = tables_.find(node);
  return it == tables_.end() ? 0 : it->second.by_port.size();
}

}  // namespace dyncon::tree

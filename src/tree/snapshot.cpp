#include "tree/snapshot.hpp"

#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace dyncon::tree {

std::string snapshot(const DynamicTree& t) {
  std::ostringstream os;
  os << "tree v1\n";
  for (NodeId v : t.alive_nodes()) {
    os << v << ' ';
    if (v == t.root()) {
      os << "-";
    } else {
      os << t.parent(v);
    }
    os << '\n';
  }
  return os.str();
}

DynamicTree restore(const std::string& text) {
  std::istringstream is(text);
  std::string header;
  std::getline(is, header);
  DYNCON_REQUIRE(header == "tree v1", "unknown snapshot header: " + header);
  std::vector<std::pair<NodeId, NodeId>> parent_of;
  std::string line;
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    NodeId id = 0;
    std::string parent;
    if (!(ls >> id >> parent)) {
      throw ContractError("malformed snapshot line " +
                          std::to_string(lineno) + ": " + line);
    }
    parent_of.emplace_back(
        id, parent == "-" ? kNoNode : std::stoull(parent));
  }
  return DynamicTree::from_structure(parent_of);
}

bool same_topology(const DynamicTree& a, const DynamicTree& b) {
  if (a.size() != b.size()) return false;
  for (NodeId v : a.alive_nodes()) {
    if (!b.alive(v)) return false;
    if (v == a.root()) continue;
    if (!b.alive(a.parent(v)) || a.parent(v) != b.parent(v)) return false;
  }
  return true;
}

}  // namespace dyncon::tree

#pragma once

// The dynamic rooted spanning tree of §2.1.2.
//
// Supports exactly the paper's four controlled topological changes:
//
//   * add-leaf:            new degree-1 node u becomes a child of v
//   * remove-leaf:         non-root degree-1 node is deleted
//   * add-internal-node:   edge (v,w) splits into (v,u),(u,w)
//   * remove-internal-node: non-root internal u is deleted; its children
//                           become children of u's parent
//
// Node ids are permanent (never reused), so `total_ever()` is the paper's
// U-accounting quantity "nodes ever to exist, including deleted ones".
// Observers are notified after each change — that is how the agent layer
// implements the "graceful" deletion contract (whiteboard data moves to the
// parent) without this structure knowing about protocol state.

#include <cstdint>
#include <functional>
#include <vector>

#include "tree/ports.hpp"
#include "util/error.hpp"
#include "util/ids.hpp"

namespace dyncon::tree {

/// Observer of topological changes (notified after the tree is updated).
class TreeObserver {
 public:
  virtual ~TreeObserver() = default;
  virtual void on_add_leaf(NodeId u, NodeId parent) = 0;
  virtual void on_remove_leaf(NodeId u, NodeId parent) = 0;
  /// u inserted between `parent` and `child` (u adopts `child`).
  virtual void on_add_internal(NodeId u, NodeId parent, NodeId child) = 0;
  /// u removed; `children` re-parented to `parent`.
  virtual void on_remove_internal(NodeId u, NodeId parent,
                                  const std::vector<NodeId>& children) = 0;
};

/// Rooted dynamic tree with permanent node ids.
class DynamicTree {
 public:
  /// Create a tree with a single root node (id 0).  The root is never
  /// deleted (paper assumption).
  explicit DynamicTree(PortAssigner ports = PortAssigner{});

  /// Build a tree with exactly the given alive nodes: `parent_of` lists
  /// (id, parent-id) pairs, the root as (0, kNoNode).  Ids absent from the
  /// list come into existence as already-deleted nodes, so the alive ids
  /// (and hence recorded Scripts) line up with the source tree's.  Used by
  /// tree::restore(); throws ContractError on inconsistent input.
  static DynamicTree from_structure(
      const std::vector<std::pair<NodeId, NodeId>>& parent_of);

  // ---- queries -----------------------------------------------------------

  [[nodiscard]] NodeId root() const { return root_; }
  [[nodiscard]] bool alive(NodeId v) const;
  [[nodiscard]] NodeId parent(NodeId v) const;  ///< kNoNode for the root
  [[nodiscard]] const std::vector<NodeId>& children(NodeId v) const;
  [[nodiscard]] bool is_leaf(NodeId v) const;
  [[nodiscard]] std::uint64_t size() const { return alive_count_; }
  /// Nodes ever created, including deleted ones (the paper's U-quantity).
  [[nodiscard]] std::uint64_t total_ever() const { return nodes_.size(); }

  /// Hop distance from v to the root (walks the parent chain; O(depth)).
  [[nodiscard]] std::uint64_t depth(NodeId v) const;

  /// True iff `anc` is an ancestor of v (every node is its own ancestor).
  [[nodiscard]] bool is_ancestor(NodeId anc, NodeId v) const;

  /// The ancestor of v at exactly `hops` hops above it; requires
  /// hops <= depth(v).
  [[nodiscard]] NodeId ancestor_at(NodeId v, std::uint64_t hops) const;

  /// All currently alive node ids (root first, BFS order).
  [[nodiscard]] std::vector<NodeId> alive_nodes() const;

  /// Port bookkeeping (adversarially numbered; see ports.hpp).
  [[nodiscard]] const PortAssigner& ports() const { return ports_; }

  // ---- controlled topological changes -------------------------------------

  /// Add a new leaf as a child of `parent`; returns its id.
  NodeId add_leaf(NodeId parent);

  /// Remove a (non-root) leaf.
  void remove_leaf(NodeId v);

  /// Insert a new node on the tree edge between `child` and its parent;
  /// returns the new node's id.  Requires child != root.
  NodeId add_internal_above(NodeId child);

  /// Remove a non-root internal (non-leaf) node; its children are
  /// re-parented to its parent.
  void remove_internal(NodeId v);

  /// Remove any non-root node, dispatching on leaf/internal.
  void remove_node(NodeId v);

  // ---- storage management (forest slab recycling) -------------------------

  /// Reserve node storage for `n` ids up front (skips the doubling walk
  /// when the final size is known, e.g. a forest tree's initial build).
  void reserve_nodes(std::size_t n);

  /// Trim node/port storage capacity to size — the small-tree common case
  /// pays for exactly the nodes it has.
  void shrink_to_fit();

  /// Rewind to the single-root state of a freshly constructed tree while
  /// keeping `nodes_` / port-table capacity (slab-recycled trees rebuild
  /// into the same storage without reallocating it).  Requires that no
  /// observers are registered: a recycled identity would dangle them.
  void reset_to_root();

  /// Rough heap footprint in bytes (node array, child lists, port tables);
  /// an accounting estimate for `perf.mem.*`, not an allocator truth.
  [[nodiscard]] std::uint64_t approx_bytes() const;

  // ---- observers -----------------------------------------------------------

  void add_observer(TreeObserver* obs);
  void remove_observer(TreeObserver* obs);

 private:
  struct Node {
    NodeId parent = kNoNode;
    std::vector<NodeId> children;
    bool alive = true;
  };

  [[nodiscard]] const Node& node(NodeId v) const;
  [[nodiscard]] Node& node(NodeId v);
  void detach_from_parent(NodeId v);

  std::vector<Node> nodes_;
  NodeId root_ = 0;
  std::uint64_t alive_count_ = 0;
  PortAssigner ports_;
  std::vector<TreeObserver*> observers_;
};

}  // namespace dyncon::tree

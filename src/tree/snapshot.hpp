#pragma once

// Tree snapshots: a text serialization of the live topology.
//
// Format is one line per alive node in BFS order:
//
//     tree v1
//     0 -           # the root
//     3 0           # node 3, child of node 0
//     7 3
//
// Restoring builds an *isomorphic* tree whose alive node ids equal the
// snapshot's (achieved by creating and deleting filler nodes so the id
// counter lines up), which lets recorded Scripts replay against a restored
// tree.  Snapshots are how long experiments checkpoint, and how failing
// randomized runs get turned into fixture files.

#include <string>

#include "tree/dynamic_tree.hpp"

namespace dyncon::tree {

/// Serialize the alive topology of `t`.
[[nodiscard]] std::string snapshot(const DynamicTree& t);

/// Rebuild a tree from `text`; the result's alive node ids match the
/// snapshot's ids exactly.  Throws ContractError on malformed input or on
/// ids that cannot be reproduced (a snapshot's root must be node 0).
[[nodiscard]] DynamicTree restore(const std::string& text);

/// True iff the two trees have identical alive topology (same ids, same
/// parent relation).
[[nodiscard]] bool same_topology(const DynamicTree& a, const DynamicTree& b);

}  // namespace dyncon::tree

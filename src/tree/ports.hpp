#pragma once

// Adversarial port numbering (paper §2.1.2).
//
// "We assume the relatively wasteful model in which the port numbers are
//  assigned by an adversary ... encoded using O(log N) bits."
//
// The assigner hands out arbitrary-looking (but deterministic) port numbers
// that are unique per node; nothing in the protocols may rely on ports being
// small or consecutive, and tests assert per-node uniqueness.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/ids.hpp"
#include "util/rng.hpp"

namespace dyncon::tree {

/// Per-node port table: port -> neighbor and neighbor -> port.
class PortAssigner {
 public:
  explicit PortAssigner(std::uint64_t seed = 0xdecafbadULL)
      : rng_(seed), seed_(seed) {}

  /// Forget every port and rewind the adversary to its construction seed,
  /// keeping the outer table array's capacity (slab-recycled trees reuse
  /// it).  Equivalent to `*this = PortAssigner(seed)` minus the free.
  void reset();

  /// Reserve outer-table capacity for `nodes` node ids.
  void reserve_nodes(std::size_t nodes) { tables_.reserve(nodes); }

  /// Trim outer-table capacity to size (small-tree common case).
  void shrink_to_fit() { tables_.shrink_to_fit(); }

  /// Rough heap footprint in bytes (tables plus hash-map nodes/buckets);
  /// an accounting estimate for `perf.mem.*`, not an allocator truth.
  [[nodiscard]] std::uint64_t approx_bytes() const;

  /// Assign a fresh port at `node` leading to `neighbor`.
  PortId attach(NodeId node, NodeId neighbor);

  /// Remove the port at `node` leading to `neighbor` (edge deleted).
  void detach(NodeId node, NodeId neighbor);

  /// Drop all ports of a deleted node.
  void drop_node(NodeId node);

  [[nodiscard]] bool has_port(NodeId node, NodeId neighbor) const;
  [[nodiscard]] PortId port_to(NodeId node, NodeId neighbor) const;
  [[nodiscard]] NodeId neighbor_at(NodeId node, PortId port) const;
  [[nodiscard]] std::size_t degree(NodeId node) const;

 private:
  struct Table {
    std::unordered_map<PortId, NodeId> by_port;
    std::unordered_map<NodeId, PortId> by_neighbor;
  };
  /// Indexed by NodeId — node ids are dense (DynamicTree allocates them
  /// sequentially and never reuses them), so the per-node table is two
  /// array loads instead of a hash probe, and growing the topology never
  /// rehashes an outer map that is thousands of nodes wide.
  std::vector<Table> tables_;
  Rng rng_;
  std::uint64_t seed_;

  Table* table(NodeId node) {
    return node < tables_.size() ? &tables_[node] : nullptr;
  }
  [[nodiscard]] const Table* table(NodeId node) const {
    return node < tables_.size() ? &tables_[node] : nullptr;
  }
};

}  // namespace dyncon::tree

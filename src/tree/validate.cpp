#include "tree/validate.hpp"

#include <unordered_set>

namespace dyncon::tree {

namespace {
ValidationResult fail(std::string detail) {
  return ValidationResult{false, std::move(detail)};
}
}  // namespace

ValidationResult validate(const DynamicTree& t) {
  const auto nodes = t.alive_nodes();  // BFS from the root
  if (nodes.empty() || nodes.front() != t.root()) {
    return fail("BFS does not start at the root");
  }
  if (nodes.size() != t.size()) {
    return fail("alive_count (" + std::to_string(t.size()) +
                ") != reachable nodes (" + std::to_string(nodes.size()) + ")");
  }

  std::unordered_set<NodeId> seen;
  for (NodeId v : nodes) {
    if (!t.alive(v)) return fail("BFS reached dead node " + std::to_string(v));
    if (!seen.insert(v).second) {
      return fail("node visited twice (cycle?): " + std::to_string(v));
    }
    // Parent/child symmetry.
    if (v != t.root()) {
      const NodeId p = t.parent(v);
      if (!t.alive(p)) return fail("dead parent of " + std::to_string(v));
      bool found = false;
      for (NodeId c : t.children(p)) found |= (c == v);
      if (!found) {
        return fail("node " + std::to_string(v) +
                    " missing from parent's child list");
      }
      // Port symmetry along the tree edge.
      if (!t.ports().has_port(v, p) || !t.ports().has_port(p, v)) {
        return fail("missing port on tree edge " + std::to_string(p) + "-" +
                    std::to_string(v));
      }
    }
    for (NodeId c : t.children(v)) {
      if (!t.alive(c)) {
        return fail("dead child " + std::to_string(c) + " of " +
                    std::to_string(v));
      }
      if (t.parent(c) != v) {
        return fail("child " + std::to_string(c) + " has wrong parent");
      }
    }
    // Port table round-trips.
    const std::size_t deg =
        t.children(v).size() + (v == t.root() ? 0u : 1u);
    if (t.ports().degree(v) != deg) {
      return fail("port degree mismatch at " + std::to_string(v) + ": " +
                  std::to_string(t.ports().degree(v)) + " vs " +
                  std::to_string(deg));
    }
  }
  return ValidationResult{};
}

}  // namespace dyncon::tree

#pragma once

// Structural validation of a DynamicTree.
//
// Property tests call `validate()` after every topological change to catch
// any corruption of the parent/child/port bookkeeping.

#include <string>

#include "tree/dynamic_tree.hpp"

namespace dyncon::tree {

/// Result of a validation pass; `ok()` or a description of the first defect.
struct ValidationResult {
  bool valid = true;
  std::string detail;

  [[nodiscard]] bool ok() const { return valid; }
};

/// Full structural check: parent/child symmetry, acyclicity, connectivity,
/// alive-count consistency, port-table symmetry and per-node uniqueness.
[[nodiscard]] ValidationResult validate(const DynamicTree& t);

}  // namespace dyncon::tree

#include "tree/dynamic_tree.hpp"

#include <algorithm>
#include <deque>
#include <utility>

namespace dyncon::tree {

DynamicTree::DynamicTree(PortAssigner ports) : ports_(std::move(ports)) {
  nodes_.push_back(Node{});  // the root, id 0
  alive_count_ = 1;
}

DynamicTree DynamicTree::from_structure(
    const std::vector<std::pair<NodeId, NodeId>>& parent_of) {
  DYNCON_REQUIRE(!parent_of.empty(), "from_structure: empty node list");
  NodeId max_id = 0;
  for (const auto& [id, parent] : parent_of) {
    max_id = std::max(max_id, id);
  }
  DynamicTree t;
  // Lay out the id space: everything starts dead, then the listed nodes
  // come alive with their parents.
  t.nodes_.assign(static_cast<std::size_t>(max_id) + 1, Node{});
  for (auto& n : t.nodes_) n.alive = false;
  t.alive_count_ = 0;
  bool saw_root = false;
  for (const auto& [id, parent] : parent_of) {
    Node& n = t.nodes_[static_cast<std::size_t>(id)];
    DYNCON_REQUIRE(!n.alive, "from_structure: duplicate node id");
    n.alive = true;
    n.parent = parent;
    ++t.alive_count_;
    if (id == t.root_) {
      DYNCON_REQUIRE(parent == kNoNode, "from_structure: root has a parent");
      saw_root = true;
    }
  }
  DYNCON_REQUIRE(saw_root, "from_structure: node 0 (the root) missing");
  for (const auto& [id, parent] : parent_of) {
    if (id == t.root_) continue;
    DYNCON_REQUIRE(parent <= max_id &&
                       t.nodes_[static_cast<std::size_t>(parent)].alive,
                   "from_structure: parent not in the node list");
    t.nodes_[static_cast<std::size_t>(parent)].children.push_back(id);
    t.ports_.attach(parent, id);
    t.ports_.attach(id, parent);
  }
  // Reject cyclic/disconnected inputs: every alive node must be reachable.
  std::uint64_t reachable = 0;
  {
    std::deque<NodeId> bfs{t.root_};
    while (!bfs.empty()) {
      const NodeId v = bfs.front();
      bfs.pop_front();
      ++reachable;
      for (NodeId c : t.nodes_[static_cast<std::size_t>(v)].children) {
        bfs.push_back(c);
      }
    }
  }
  DYNCON_REQUIRE(reachable == t.alive_count_,
                 "from_structure: nodes unreachable from the root (cycle?)");
  return t;
}

const DynamicTree::Node& DynamicTree::node(NodeId v) const {
  DYNCON_REQUIRE(v < nodes_.size(), "unknown node id");
  return nodes_[static_cast<std::size_t>(v)];
}

DynamicTree::Node& DynamicTree::node(NodeId v) {
  DYNCON_REQUIRE(v < nodes_.size(), "unknown node id");
  return nodes_[static_cast<std::size_t>(v)];
}

bool DynamicTree::alive(NodeId v) const {
  return v < nodes_.size() && nodes_[static_cast<std::size_t>(v)].alive;
}

NodeId DynamicTree::parent(NodeId v) const {
  DYNCON_REQUIRE(alive(v), "parent of dead node");
  return node(v).parent;
}

const std::vector<NodeId>& DynamicTree::children(NodeId v) const {
  DYNCON_REQUIRE(alive(v), "children of dead node");
  return node(v).children;
}

bool DynamicTree::is_leaf(NodeId v) const {
  DYNCON_REQUIRE(alive(v), "is_leaf of dead node");
  return node(v).children.empty();
}

std::uint64_t DynamicTree::depth(NodeId v) const {
  DYNCON_REQUIRE(alive(v), "depth of dead node");
  std::uint64_t d = 0;
  for (NodeId cur = v; cur != root_; cur = node(cur).parent) {
    ++d;
    DYNCON_INVARIANT(d <= nodes_.size(), "cycle in parent chain");
  }
  return d;
}

bool DynamicTree::is_ancestor(NodeId anc, NodeId v) const {
  DYNCON_REQUIRE(alive(anc) && alive(v), "is_ancestor of dead node");
  for (NodeId cur = v;; cur = node(cur).parent) {
    if (cur == anc) return true;
    if (cur == root_) return false;
  }
}

NodeId DynamicTree::ancestor_at(NodeId v, std::uint64_t hops) const {
  DYNCON_REQUIRE(alive(v), "ancestor_at of dead node");
  NodeId cur = v;
  for (std::uint64_t i = 0; i < hops; ++i) {
    DYNCON_REQUIRE(cur != root_, "ancestor_at: hops exceeds depth");
    cur = node(cur).parent;
  }
  return cur;
}

std::vector<NodeId> DynamicTree::alive_nodes() const {
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(alive_count_));
  std::deque<NodeId> bfs{root_};
  while (!bfs.empty()) {
    NodeId v = bfs.front();
    bfs.pop_front();
    out.push_back(v);
    for (NodeId c : node(v).children) bfs.push_back(c);
  }
  return out;
}

NodeId DynamicTree::add_leaf(NodeId p) {
  DYNCON_REQUIRE(alive(p), "add_leaf: parent not alive");
  const NodeId u = nodes_.size();
  nodes_.push_back(Node{p, {}, true});
  node(p).children.push_back(u);
  ++alive_count_;
  ports_.attach(p, u);
  ports_.attach(u, p);
  for (auto* obs : observers_) obs->on_add_leaf(u, p);
  return u;
}

void DynamicTree::detach_from_parent(NodeId v) {
  Node& p = node(node(v).parent);
  auto it = std::find(p.children.begin(), p.children.end(), v);
  DYNCON_INVARIANT(it != p.children.end(), "child missing from parent list");
  p.children.erase(it);
}

void DynamicTree::remove_leaf(NodeId v) {
  DYNCON_REQUIRE(alive(v), "remove_leaf: node not alive");
  DYNCON_REQUIRE(v != root_, "the root is never deleted");
  DYNCON_REQUIRE(node(v).children.empty(), "remove_leaf: node has children");
  const NodeId p = node(v).parent;
  detach_from_parent(v);
  node(v).alive = false;
  --alive_count_;
  ports_.detach(p, v);
  ports_.drop_node(v);
  for (auto* obs : observers_) obs->on_remove_leaf(v, p);
}

NodeId DynamicTree::add_internal_above(NodeId child) {
  DYNCON_REQUIRE(alive(child), "add_internal_above: child not alive");
  DYNCON_REQUIRE(child != root_, "cannot insert above the root");
  const NodeId p = node(child).parent;
  const NodeId u = nodes_.size();
  nodes_.push_back(Node{p, {child}, true});
  // Replace `child` by `u` in p's child list (preserving position).
  Node& pn = node(p);
  auto it = std::find(pn.children.begin(), pn.children.end(), child);
  DYNCON_INVARIANT(it != pn.children.end(), "child missing from parent list");
  *it = u;
  node(child).parent = u;
  ++alive_count_;
  ports_.detach(p, child);
  ports_.detach(child, p);
  ports_.attach(p, u);
  ports_.attach(u, p);
  ports_.attach(u, child);
  ports_.attach(child, u);
  for (auto* obs : observers_) obs->on_add_internal(u, p, child);
  return u;
}

void DynamicTree::remove_internal(NodeId v) {
  DYNCON_REQUIRE(alive(v), "remove_internal: node not alive");
  DYNCON_REQUIRE(v != root_, "the root is never deleted");
  DYNCON_REQUIRE(!node(v).children.empty(),
                 "remove_internal: node is a leaf (use remove_leaf)");
  const NodeId p = node(v).parent;
  const std::vector<NodeId> kids = node(v).children;
  detach_from_parent(v);
  for (NodeId c : kids) {
    node(c).parent = p;
    node(p).children.push_back(c);
    ports_.detach(c, v);
    ports_.attach(c, p);
    ports_.attach(p, c);
  }
  node(v).children.clear();
  node(v).alive = false;
  --alive_count_;
  ports_.detach(p, v);
  ports_.drop_node(v);
  for (auto* obs : observers_) obs->on_remove_internal(v, p, kids);
}

void DynamicTree::remove_node(NodeId v) {
  DYNCON_REQUIRE(alive(v), "remove_node: node not alive");
  if (node(v).children.empty()) {
    remove_leaf(v);
  } else {
    remove_internal(v);
  }
}

void DynamicTree::reserve_nodes(std::size_t n) {
  nodes_.reserve(n);
  ports_.reserve_nodes(n);
}

void DynamicTree::shrink_to_fit() {
  nodes_.shrink_to_fit();
  ports_.shrink_to_fit();
}

void DynamicTree::reset_to_root() {
  DYNCON_REQUIRE(observers_.empty(),
                 "reset_to_root with observers still registered");
  nodes_.clear();
  nodes_.push_back(Node{});
  alive_count_ = 1;
  ports_.reset();
}

std::uint64_t DynamicTree::approx_bytes() const {
  std::uint64_t bytes = nodes_.capacity() * sizeof(Node);
  for (const Node& n : nodes_) bytes += n.children.capacity() * sizeof(NodeId);
  return bytes + ports_.approx_bytes();
}

void DynamicTree::add_observer(TreeObserver* obs) {
  DYNCON_REQUIRE(obs != nullptr, "null observer");
  observers_.push_back(obs);
}

void DynamicTree::remove_observer(TreeObserver* obs) {
  std::erase(observers_, obs);
}

}  // namespace dyncon::tree

#pragma once

// Per-shard arena storage for materialized ("resident") trees.
//
// A million-tree forest cannot afford three heap objects per tree: the
// engine keeps only a 13-byte SoA index entry per tree (seed, status, slot)
// and parks the heavyweight state — DynamicTree, controller, split-chain
// Rng, grow bookkeeping — in slab slots that exist only while a tree is
// resident.  Slots live in fixed-size chunks with stable addresses
// (CentralizedController holds a reference to its tree and is neither
// copyable nor movable, so slot memory must never move), and releasing a
// slot recycles it in place: the node array and port tables keep their
// capacity, so an acquire/release cycle in steady state allocates nothing
// (bench/micro_structures BM_TreeSlabAcquireReleaseAllocs gates this).

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/centralized_controller.hpp"
#include "tree/dynamic_tree.hpp"
#include "util/error.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace dyncon::forest {

/// One resident tree: everything the eager engine used to keep per tree
/// for its whole lifetime, now paid only while the tree is materialized.
struct LiveTree {
  tree::DynamicTree tree;
  std::optional<core::CentralizedController> ctrl;  ///< echo mode: empty
  Rng rng{0};
  std::vector<NodeId> grown;  ///< grow-added leaves (shrink pops back)
  std::uint64_t grows = 0;    ///< grows granted by this tree instance
  SimTime last_touch = 0;     ///< virtual time of the last serve (LRU key)
  std::uint32_t tree_id = 0;
};

/// Chunked slab of LiveTree slots: stable addresses, free-list reuse,
/// in-place recycling.  Thread-confined to one shard's worker.
class TreeSlab {
 public:
  static constexpr std::size_t kChunk = 32;

  /// Claim a slot (recycled if available, else a new chunk's).  The slot is
  /// in the freshly-constructed state: single-root tree, no controller.
  std::uint32_t acquire() {
    if (free_.empty()) grow();
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    in_use_[slot] = 1;
    ++occupied_;
    return slot;
  }

  /// Return a slot to the free list, resetting its contents in place.  The
  /// tree's node/port storage and the grown vector keep their capacity —
  /// that retained capacity is bounded by the residency budget times the
  /// per-tree cap, and it is what makes the cycle allocation-free.
  void release(std::uint32_t slot) {
    DYNCON_REQUIRE(slot < in_use_.size() && in_use_[slot] != 0,
                   "release of a slot not in use");
    LiveTree& lt = at(slot);
    lt.ctrl.reset();
    lt.tree.reset_to_root();
    lt.grown.clear();
    lt.grows = 0;
    lt.last_touch = 0;
    in_use_[slot] = 0;
    --occupied_;
    free_.push_back(slot);
  }

  [[nodiscard]] LiveTree& at(std::uint32_t slot) {
    return chunks_[slot / kChunk]->slots[slot % kChunk];
  }
  [[nodiscard]] const LiveTree& at(std::uint32_t slot) const {
    return chunks_[slot / kChunk]->slots[slot % kChunk];
  }

  [[nodiscard]] std::size_t occupied() const { return occupied_; }
  [[nodiscard]] std::size_t capacity() const {
    return chunks_.size() * kChunk;
  }

  /// Visit every occupied slot's LiveTree (slot-index order).
  template <typename F>
  void for_each_occupied(F&& f) const {
    for (std::uint32_t slot = 0; slot < in_use_.size(); ++slot) {
      if (in_use_[slot] != 0) f(at(slot));
    }
  }

  /// Rough heap footprint in bytes.  Counts every slot's retained tree
  /// capacity (free slots keep theirs by design) plus occupied slots'
  /// controller and grown storage.
  [[nodiscard]] std::uint64_t approx_bytes() const {
    std::uint64_t bytes = capacity() * sizeof(LiveTree) +
                          in_use_.capacity() +
                          free_.capacity() * sizeof(std::uint32_t);
    for (std::uint32_t slot = 0; slot < in_use_.size(); ++slot) {
      const LiveTree& lt = at(slot);
      bytes += lt.tree.approx_bytes();
      bytes += lt.grown.capacity() * sizeof(NodeId);
      if (lt.ctrl.has_value()) bytes += lt.ctrl->approx_bytes();
    }
    return bytes;
  }

 private:
  struct Chunk {
    std::array<LiveTree, kChunk> slots;
  };

  void grow() {
    const auto base = static_cast<std::uint32_t>(capacity());
    chunks_.push_back(std::make_unique<Chunk>());
    in_use_.resize(capacity(), 0);
    // Descending push so slots hand out in ascending index order.
    for (std::size_t i = kChunk; i > 0; --i) {
      free_.push_back(base + static_cast<std::uint32_t>(i - 1));
    }
  }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<std::uint8_t> in_use_;
  std::vector<std::uint32_t> free_;
  std::size_t occupied_ = 0;
};

}  // namespace dyncon::forest

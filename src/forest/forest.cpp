#include "forest/forest.hpp"

#include <algorithm>
#include <utility>

#include "core/params.hpp"
#include "sim/wire.hpp"
#include "util/error.hpp"

namespace dyncon::forest {

namespace {

// Seed salts: the mux consumes Rng(seed) itself, so the tree and shard
// split chains hang off distinct splitmix-scrambled parents.  Both chains
// are pure functions of (seed, index) — never of the shard count.
constexpr std::uint64_t kTreeSalt = 0x7472656573616c74ULL;   // "treesalt"
constexpr std::uint64_t kShardSalt = 0x73686472646e6773ULL;  // "shdrdngs"

bool ready_order(const workload::MuxRequest& a,
                 const workload::MuxRequest& b) {
  return a.ready != b.ready ? a.ready < b.ready : a.user < b.user;
}

}  // namespace

ForestEngine::ForestEngine(const ForestConfig& cfg, std::uint64_t seed)
    : cfg_(cfg), mux_(cfg.mux, seed) {
  DYNCON_REQUIRE(cfg_.shards >= 1, "forest needs at least one shard");
  DYNCON_REQUIRE(cfg_.window >= 1, "window width must be >= 1 tick");
  DYNCON_REQUIRE(cfg_.tree_size >= 1, "trees need at least the root");

  // Spans are opt-in by the same install discipline as metrics: a SpanSink
  // on the constructing thread enables per-shard recording (and the merge
  // in run()); none keeps every span site at its single disabled branch.
  spans_enabled_ = obs::spans() != nullptr;

  shards_.reserve(cfg_.shards);
  Rng shard_parent(seed ^ kShardSalt);
  for (unsigned s = 0; s < cfg_.shards; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->rng = shard_parent.split();
    sh->queue.reserve(64);
    sh->outbox.reserve(256);
    sh->inbox.reserve(256);
    if (spans_enabled_) {
      sh->spans = std::make_unique<obs::SpanSink>(cfg_.span_capacity);
    }
    shards_.push_back(std::move(sh));
  }
  if (cfg_.shards > 1) {
    pool_ = std::make_unique<util::ThreadPool>(cfg_.shards);
  }
  frame_bits_scratch_.reserve(256);  // grows once, then steady-state clean

  // Every tree draws from its own split-chain generator keyed by tree id,
  // and its permit budget / U bound are per-tree constants — nothing about
  // a tree depends on which shard hosts it.
  const std::uint64_t budget =
      cfg_.permits_per_tree != 0 ? cfg_.permits_per_tree
                                 : std::uint64_t{1} << 30;
  // U must upper-bound nodes-ever per tree: the initial build plus at most
  // one add-leaf per request in the whole workload (all grows could hit
  // one hot tree under heavy Zipf skew).
  const std::uint64_t u_bound =
      cfg_.tree_size + mux_.total_requests() + 2;
  const std::uint64_t w_bound = std::max<std::uint64_t>(u_bound, 1);
  Rng tree_parent(seed ^ kTreeSalt);
  trees_.resize(static_cast<std::size_t>(cfg_.mux.trees));
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    TreeState& ts = trees_[t];
    ts.rng = tree_parent.split();
    ts.shard = shard_of(static_cast<std::uint32_t>(t));
    ts.tree = std::make_unique<tree::DynamicTree>();
    ts.sites.reserve(static_cast<std::size_t>(cfg_.tree_size));
    ts.sites.push_back(ts.tree->root());
    for (std::uint64_t i = 1; i < cfg_.tree_size; ++i) {
      const NodeId parent = ts.sites[ts.rng.index(ts.sites.size())];
      ts.sites.push_back(ts.tree->add_leaf(parent));
    }
    ts.grown.reserve(64);
    if (cfg_.service == Service::kController) {
      core::CentralizedController::Options opts;
      opts.track_domains = false;
      ts.ctrl = std::make_unique<core::CentralizedController>(
          *ts.tree, core::Params(budget, w_bound, u_bound), opts);
    }
  }

  // Seed the first window: every user's opening request goes straight to
  // its target shard's inbox; stage_inboxes schedules them.
  for (const workload::MuxRequest& req : mux_.initial_requests()) {
    shards_[trees_[req.tree].shard]->inbox.push_back(req);
  }
}

ForestEngine::~ForestEngine() = default;

void ForestEngine::stage_inbox(Shard& sh) {
  if (sh.inbox.empty()) return;
  // (ready, user) staging order makes each event's queue seq — and hence
  // the FIFO tie-break — a pure function of the request set, not of the
  // order completions drained from sibling shards.
  std::sort(sh.inbox.begin(), sh.inbox.end(), ready_order);
  for (const workload::MuxRequest& req : sh.inbox) {
    const std::uint64_t user = req.user;
    const std::uint32_t tree = req.tree;
    const workload::ForestOp op = req.op;
    const obs::TraceId trace = req.trace;
    sh.queue.schedule_at(req.ready, [this, user, tree, op, trace] {
      serve(user, tree, op, trace);
    });
  }
  sh.inbox.clear();  // capacity retained: no steady-state allocation
}

bool ForestEngine::step_window() {
  // Earliest pending work across the forest decides the next window.  The
  // minimum is over the union of all shard queues AND their unstaged
  // inboxes, so the window sequence is identical at any shard count
  // (skipping idle windows entirely).  Inboxes are merely scanned here;
  // the sort + per-event scheduling runs inside each shard's own window,
  // off the serial path.
  bool any = false;
  SimTime t_min = 0;
  auto consider = [&](SimTime t) {
    if (!any || t < t_min) t_min = t;
    any = true;
  };
  for (const auto& shp : shards_) {
    if (!shp->queue.empty()) consider(shp->queue.next_time());
    for (const workload::MuxRequest& req : shp->inbox) consider(req.ready);
  }
  if (!any) return false;  // drained

  const SimTime w = cfg_.window;
  const SimTime w_start = std::max(clock_, (t_min / w) * w);
  window_end_ = w_start + w;
  clock_ = window_end_;
  ++stats_.windows;

  if (pool_ != nullptr) {
    ++stats_.barriers;
    pool_->for_each(shards_.size(),
                    [this](std::uint64_t s) { run_window_on_shard(s); });
  } else {
    run_window_on_shard(0);
  }
  exchange();
  // Flight-recorder sampling rides the window edge: every event before
  // window_end_ has fired on every shard regardless of the shard count, so
  // the accumulated counter totals — and hence the rows — are invariant.
  if (flight_ != nullptr && flight_->due(clock_)) {
    flight_->begin_row(clock_);
    for (const auto& shp : shards_) flight_->accumulate(shp->registry);
    flight_->commit_row();
  }
  return true;
}

void ForestEngine::run_window_on_shard(std::uint64_t s) {
  Shard& sh = *shards_[s];
  // Thread-confined metrics: whatever worker runs this window writes into
  // THIS shard's registry; handles re-resolve on the registry switch.
  obs::ScopedMetrics scope(sh.registry);
  // The inbox was filled by the main thread before the dispatch barrier
  // and is owned by this worker until the next one — no synchronization
  // beyond the barriers themselves.
  if (sh.spans != nullptr) {
    // Spans follow the registry's thread-confinement: this window's worker
    // emits into THIS shard's sink; run() merges in shard order.
    obs::ScopedSpans span_scope(*sh.spans);
    stage_inbox(sh);
    sh.queue.run_until(window_end_);
    return;
  }
  stage_inbox(sh);
  sh.queue.run_until(window_end_);
}

void ForestEngine::account_exchange_frame(const Shard& sh) {
  // One frame per (shard, window) with completions: gamma count prefix plus
  // each completion encoded as the AppMsg it would ride home in (a kToken
  // carrying the user id).  Charged arithmetically — batch_frame_bits over
  // the per-payload sizes — so the release path assembles nothing.
  frame_bits_scratch_.clear();
  std::uint64_t member_bits = 0;
  for (const Completion& c : sh.outbox) {
    const std::uint64_t bits =
        sim::Message::app_value(sim::AppTopic::kToken, c.user).encoded_bits();
    frame_bits_scratch_.push_back(bits);
    member_bits += bits;
  }
  const std::uint64_t frame_bits = sim::batch_frame_bits(
      frame_bits_scratch_.data(), frame_bits_scratch_.size());
  ++stats_.exchange_frames;
  stats_.exchange_batched_msgs += sh.outbox.size();
  stats_.exchange_member_bits += member_bits;
  stats_.exchange_frame_bits += frame_bits;
#ifndef NDEBUG
  // Debug builds assemble the real frame and round-trip it, proving the
  // arithmetic charge matches what the codec would actually put on a wire.
  std::vector<sim::Encoded> payloads;
  payloads.reserve(sh.outbox.size());
  for (const Completion& c : sh.outbox) {
    payloads.push_back(
        sim::Message::app_value(sim::AppTopic::kToken, c.user).encode());
  }
  const sim::Message frame = sim::Message::batch_frame(std::move(payloads));
  DYNCON_INVARIANT(frame.encoded_bits() == frame_bits,
                   "arithmetic frame charge diverged from the codec");
  DYNCON_INVARIANT(sim::Message::decode(frame.encode()) == frame,
                   "exchange frame failed its decode round-trip");
#endif
}

void ForestEngine::exchange() {
  exchange_scratch_.clear();
  for (auto& shp : shards_) {
    if (cfg_.batch_exchange && !shp->outbox.empty()) {
      account_exchange_frame(*shp);
    }
    exchange_scratch_.insert(exchange_scratch_.end(), shp->outbox.begin(),
                             shp->outbox.end());
    shp->outbox.clear();
  }
  if (exchange_scratch_.empty()) return;
  // Global (done, user) order: the one sequence every shard count agrees
  // on.  Each user has one outstanding request, so the key is unique.
  std::sort(exchange_scratch_.begin(), exchange_scratch_.end(),
            [](const Completion& a, const Completion& b) {
              return a.done != b.done ? a.done < b.done : a.user < b.user;
            });
  stats_.requests += exchange_scratch_.size();
  for (const Completion& c : exchange_scratch_) {
    workload::MuxRequest req;
    if (!mux_.next_request(c.user, c.done, window_end_, req)) continue;
    const std::uint32_t target = trees_[req.tree].shard;
    shards_[target]->inbox.push_back(req);
    ++stats_.handoffs;
    if (target != trees_[c.tree].shard) ++stats_.cross_shard;
  }
}

void ForestEngine::serve(std::uint64_t user, std::uint32_t tree,
                         workload::ForestOp op, obs::TraceId trace) {
  TreeState& ts = trees_[static_cast<std::size_t>(tree)];
  Shard& sh = *shards_[ts.shard];

  // Causal context for everything this request touches: the controller's
  // op span (and any hop spans under it) parent to the request's root span.
  // The save/restore is two thread-local copies; the stores are behind the
  // spans-enabled check.
  obs::ScopedSpanContext span_scope;
  if (sh.spans != nullptr) {
    span_scope.engage(obs::SpanContext{trace, obs::kRootSpanId});
    obs::set_span_now(sh.queue.now());
  }

  static thread_local obs::CounterHandle c_total("forest.requests.total");
  static thread_local obs::CounterHandle c_granted("forest.requests.granted");
  static thread_local obs::CounterHandle c_rejected(
      "forest.requests.rejected");
  static thread_local obs::CounterHandle c_other("forest.requests.other");
  static thread_local obs::CounterHandle c_permit("forest.ops.permit");
  static thread_local obs::CounterHandle c_grow("forest.ops.grow");
  static thread_local obs::CounterHandle c_shrink("forest.ops.shrink");
  static thread_local obs::CounterHandle c_noop("forest.ops.shrink_noop");
  static thread_local obs::HistogramHandle h_cost("forest.serve.cost");
  c_total.add();

  core::Outcome outcome = core::Outcome::kGranted;
  if (cfg_.service == Service::kEcho) {
    // Engine-only mode: grant unconditionally, touch no controller.  What
    // remains is exactly the sharded runtime's own per-event work.
    c_permit.add();
  } else {
    const std::uint64_t cost_before = ts.ctrl->cost();
    switch (op) {
      case workload::ForestOp::kPermit: {
        c_permit.add();
        const NodeId site = ts.sites[ts.rng.index(ts.sites.size())];
        outcome = ts.ctrl->request_event(site).outcome;
        break;
      }
      case workload::ForestOp::kGrow: {
        c_grow.add();
        const NodeId parent = ts.sites[ts.rng.index(ts.sites.size())];
        const core::Result res = ts.ctrl->request_add_leaf(parent);
        outcome = res.outcome;
        if (res.granted()) ts.grown.push_back(res.new_node);
        break;
      }
      case workload::ForestOp::kShrink: {
        c_shrink.add();
        if (ts.grown.empty()) {
          // Nothing this user's tree can give back; a no-op completion.
          c_noop.add();
          outcome = core::Outcome::kMoot;
          break;
        }
        const core::Result res = ts.ctrl->request_remove(ts.grown.back());
        outcome = res.outcome;
        if (res.granted()) ts.grown.pop_back();
        break;
      }
    }
    h_cost.observe(ts.ctrl->cost() - cost_before);
  }

  switch (outcome) {
    case core::Outcome::kGranted:
      c_granted.add();
      break;
    case core::Outcome::kRejected:
      c_rejected.add();
      break;
    default:
      c_other.add();
      break;
  }

  // Service latency: base + per-tree jitter (same stream as the site
  // draws, so it too is shard-count invariant), then a completion event
  // that hands the response back at the next barrier.
  const SimTime delay = cfg_.service_delay + (ts.rng.next() & 3);
  sh.queue.schedule_after(delay, [this, user, tree] {
    complete(user, tree);
  });
}

void ForestEngine::complete(std::uint64_t user, std::uint32_t tree) {
  Shard& sh = *shards_[trees_[tree].shard];
  sh.outbox.push_back(Completion{sh.queue.now(), user, tree});
}

bool ForestEngine::drained() const {
  for (const auto& shp : shards_) {
    if (!shp->queue.empty() || !shp->inbox.empty()) return false;
  }
  return true;
}

ForestStats ForestEngine::run() {
  DYNCON_REQUIRE(!ran_, "ForestEngine::run is one-shot");
  ran_ = true;
  while (step_window()) {
  }
  DYNCON_INVARIANT(drained(), "run ended with pending work");
  DYNCON_INVARIANT(stats_.requests == mux_.total_requests(),
                   "every issued request must complete exactly once");

  for (const auto& shp : shards_) {
    stats_.events += shp->queue.events_fired();
    stats_.granted += shp->registry.counter("forest.requests.granted");
    stats_.rejected += shp->registry.counter("forest.requests.rejected");
    stats_.other += shp->registry.counter("forest.requests.other");
  }

  // Deterministic reduction: shard registries fold into the caller's
  // registry in shard order.  Counter/histogram totals are shard-count
  // invariant (per-tree streams; merge is commutative over integers).
  if (obs::Registry* r = obs::metrics()) {
    for (const auto& shp : shards_) r->merge(shp->registry);
  }
  merge_shard_spans();
  return stats_;
}

void ForestEngine::merge_shard_spans() {
  obs::SpanSink* sink = obs::spans();
  if (sink == nullptr || !spans_enabled_) return;
  // Root spans were emitted straight into the caller's sink (the exchange
  // runs on this thread, in global (done, user) order).  Shard sinks hold
  // the op and hop spans; (trace, id) is globally unique — a trace's ops
  // run on exactly one shard, and ids are per-trace — so sorting by it
  // gives one total order every shard count agrees on.
  std::vector<obs::Span> all;
  std::uint64_t lost = 0;
  for (const auto& shp : shards_) {
    if (shp->spans == nullptr) continue;
    all.insert(all.end(), shp->spans->entries().begin(),
               shp->spans->entries().end());
    lost += shp->spans->overwritten();
  }
  std::sort(all.begin(), all.end(),
            [](const obs::Span& a, const obs::Span& b) {
              if (a.trace != b.trace) return a.trace < b.trace;
              return a.id < b.id;
            });
  for (const obs::Span& s : all) sink->emit(s);
  sink->add_overwritten(lost);
}

std::vector<std::uint64_t> ForestEngine::shard_rng_fingerprints() const {
  std::vector<std::uint64_t> out;
  out.reserve(shards_.size());
  for (const auto& shp : shards_) {
    Rng copy = shp->rng;
    out.push_back(copy.next());
  }
  return out;
}

}  // namespace dyncon::forest

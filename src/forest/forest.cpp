#include "forest/forest.hpp"

#include <algorithm>
#include <utility>

#include "sim/wire.hpp"
#include "util/error.hpp"

namespace dyncon::forest {

namespace {

// Seed salts: the mux consumes Rng(seed) itself, so the tree and shard
// split chains hang off distinct splitmix-scrambled parents.  Both chains
// are pure functions of (seed, index) — never of the shard count.
constexpr std::uint64_t kTreeSalt = 0x7472656573616c74ULL;   // "treesalt"
constexpr std::uint64_t kShardSalt = 0x73686472646e6773ULL;  // "shdrdngs"

bool ready_order(const workload::MuxRequest& a,
                 const workload::MuxRequest& b) {
  return a.ready != b.ready ? a.ready < b.ready : a.user < b.user;
}

}  // namespace

std::uint64_t resolved_grow_cap(const ForestConfig& cfg) {
  // Auto: the tree may double its initial size plus a constant before
  // grows saturate — enough headroom for every workload mix the benches
  // drive, small enough that U (and hence the parameter levels) stay a
  // per-tree constant.
  return cfg.grow_cap != 0 ? cfg.grow_cap : 2 * cfg.tree_size + 64;
}

core::Params tree_params(const ForestConfig& cfg) {
  DYNCON_REQUIRE(cfg.tree_size >= 1, "trees need at least the root");
  const std::uint64_t budget = cfg.permits_per_tree != 0
                                   ? cfg.permits_per_tree
                                   : std::uint64_t{1} << 30;
  // U upper-bounds nodes-ever per tree INSTANCE: the initial build plus at
  // most grow_cap granted grows (the engine refuses further grows as
  // kMoot).  Independent of users, trees, and the global request count.
  const std::uint64_t u_bound = cfg.tree_size + resolved_grow_cap(cfg) + 2;
  return core::Params(budget, u_bound, u_bound);
}

ForestEngine::ForestEngine(const ForestConfig& cfg, std::uint64_t seed)
    : cfg_(cfg),
      mux_(cfg.mux, seed),
      params_(tree_params(cfg)),
      grow_cap_(resolved_grow_cap(cfg)) {
  DYNCON_REQUIRE(cfg_.shards >= 1, "forest needs at least one shard");
  DYNCON_REQUIRE(cfg_.window >= 1, "window width must be >= 1 tick");
  DYNCON_REQUIRE(cfg_.tree_size >= 1, "trees need at least the root");

  // Spans are opt-in by the same install discipline as metrics: a SpanSink
  // on the constructing thread enables per-shard recording (and the merge
  // in run()); none keeps every span site at its single disabled branch.
  spans_enabled_ = obs::spans() != nullptr;

  shards_.reserve(cfg_.shards);
  Rng shard_parent(seed ^ kShardSalt);
  for (unsigned s = 0; s < cfg_.shards; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->rng = shard_parent.split();
    sh->queue.reserve(64);
    sh->outbox.reserve(256);
    sh->inbox.reserve(256);
    if (spans_enabled_) {
      sh->spans = std::make_unique<obs::SpanSink>(cfg_.span_capacity);
    }
    shards_.push_back(std::move(sh));
  }
  if (cfg_.shards > 1) {
    pool_ = std::make_unique<util::ThreadPool>(cfg_.shards);
  }
  frame_bits_scratch_.reserve(256);  // grows once, then steady-state clean

  // Per-tree SoA index: one split-chain walk records each tree's ctor seed
  // (8 bytes), so a tree's stream is Rng(tree_seed_[t]) whether it
  // materializes now (--eager), at first touch, or after any number of
  // hibernate cycles — byte-identity at any --shards / --resident-trees
  // follows by construction.  Startup is O(trees) index writes, not
  // O(trees) heap objects.
  const auto n = static_cast<std::size_t>(cfg_.mux.trees);
  Rng tree_parent(seed ^ kTreeSalt);
  tree_seed_.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    tree_seed_.push_back(tree_parent.split_seed());
  }
  tree_status_.assign(n, static_cast<std::uint8_t>(TreeStatus::kVirgin));
  tree_slot_.assign(n, 0);

  if (cfg_.eager) {
    for (std::size_t t = 0; t < n; ++t) {
      const auto tree = static_cast<std::uint32_t>(t);
      materialize(tree, *shards_[shard_of(tree)]);
    }
  }

  // Seed the first window: every user's opening request goes straight to
  // its target shard's inbox; stage_inboxes schedules them.
  for (const workload::MuxRequest& req : mux_.initial_requests()) {
    shards_[shard_of(req.tree)]->inbox.push_back(req);
  }
}

ForestEngine::~ForestEngine() = default;

void ForestEngine::stage_inbox(Shard& sh) {
  if (sh.inbox.empty()) return;
  // (ready, user) staging order makes each event's queue seq — and hence
  // the FIFO tie-break — a pure function of the request set, not of the
  // order completions drained from sibling shards.
  std::sort(sh.inbox.begin(), sh.inbox.end(), ready_order);
  for (const workload::MuxRequest& req : sh.inbox) {
    const std::uint64_t user = req.user;
    const std::uint32_t tree = req.tree;
    const workload::ForestOp op = req.op;
    const obs::TraceId trace = req.trace;
    sh.queue.schedule_at(req.ready, [this, user, tree, op, trace] {
      serve(user, tree, op, trace);
    });
  }
  sh.inbox.clear();  // capacity retained: no steady-state allocation
}

bool ForestEngine::step_window() {
  // Earliest pending work across the forest decides the next window.  The
  // minimum is over the union of all shard queues AND their unstaged
  // inboxes, so the window sequence is identical at any shard count
  // (skipping idle windows entirely).  Inboxes are merely scanned here;
  // the sort + per-event scheduling runs inside each shard's own window,
  // off the serial path.
  bool any = false;
  SimTime t_min = 0;
  auto consider = [&](SimTime t) {
    if (!any || t < t_min) t_min = t;
    any = true;
  };
  for (const auto& shp : shards_) {
    if (!shp->queue.empty()) consider(shp->queue.next_time());
    for (const workload::MuxRequest& req : shp->inbox) consider(req.ready);
  }
  if (!any) return false;  // drained

  const SimTime w = cfg_.window;
  const SimTime w_start = std::max(clock_, (t_min / w) * w);
  window_end_ = w_start + w;
  clock_ = window_end_;
  ++stats_.windows;

  if (pool_ != nullptr) {
    ++stats_.barriers;
    pool_->for_each(shards_.size(),
                    [this](std::uint64_t s) { run_window_on_shard(s); });
  } else {
    run_window_on_shard(0);
  }
  exchange();
  // Flight-recorder sampling rides the window edge: every event before
  // window_end_ has fired on every shard regardless of the shard count, so
  // the accumulated counter totals — and hence the rows — are invariant.
  if (flight_ != nullptr && flight_->due(clock_)) {
    flight_->begin_row(clock_);
    for (const auto& shp : shards_) flight_->accumulate(shp->registry);
    flight_->commit_row();
  }
  return true;
}

void ForestEngine::run_window_on_shard(std::uint64_t s) {
  Shard& sh = *shards_[s];
  // Thread-confined metrics: whatever worker runs this window writes into
  // THIS shard's registry; handles re-resolve on the registry switch.
  obs::ScopedMetrics scope(sh.registry);
  // The inbox was filled by the main thread before the dispatch barrier
  // and is owned by this worker until the next one — no synchronization
  // beyond the barriers themselves.  Residency enforcement runs at the
  // window's trailing edge, off the per-event path: the coldest trees
  // beyond the budget hibernate before the barrier.
  if (sh.spans != nullptr) {
    // Spans follow the registry's thread-confinement: this window's worker
    // emits into THIS shard's sink; run() merges in shard order.
    obs::ScopedSpans span_scope(*sh.spans);
    stage_inbox(sh);
    sh.queue.run_until(window_end_);
    enforce_residency(sh);
    return;
  }
  stage_inbox(sh);
  sh.queue.run_until(window_end_);
  enforce_residency(sh);
}

void ForestEngine::account_exchange_frame(const Shard& sh) {
  // One frame per (shard, window) with completions: gamma count prefix plus
  // each completion encoded as the AppMsg it would ride home in (a kToken
  // carrying the user id).  Charged arithmetically — batch_frame_bits over
  // the per-payload sizes — so the release path assembles nothing.
  frame_bits_scratch_.clear();
  std::uint64_t member_bits = 0;
  for (const Completion& c : sh.outbox) {
    const std::uint64_t bits =
        sim::Message::app_value(sim::AppTopic::kToken, c.user).encoded_bits();
    frame_bits_scratch_.push_back(bits);
    member_bits += bits;
  }
  const std::uint64_t frame_bits = sim::batch_frame_bits(
      frame_bits_scratch_.data(), frame_bits_scratch_.size());
  ++stats_.exchange_frames;
  stats_.exchange_batched_msgs += sh.outbox.size();
  stats_.exchange_member_bits += member_bits;
  stats_.exchange_frame_bits += frame_bits;
#ifndef NDEBUG
  // Debug builds assemble the real frame and round-trip it, proving the
  // arithmetic charge matches what the codec would actually put on a wire.
  std::vector<sim::Encoded> payloads;
  payloads.reserve(sh.outbox.size());
  for (const Completion& c : sh.outbox) {
    payloads.push_back(
        sim::Message::app_value(sim::AppTopic::kToken, c.user).encode());
  }
  const sim::Message frame = sim::Message::batch_frame(std::move(payloads));
  DYNCON_INVARIANT(frame.encoded_bits() == frame_bits,
                   "arithmetic frame charge diverged from the codec");
  DYNCON_INVARIANT(sim::Message::decode(frame.encode()) == frame,
                   "exchange frame failed its decode round-trip");
#endif
}

void ForestEngine::exchange() {
  exchange_scratch_.clear();
  for (auto& shp : shards_) {
    if (cfg_.batch_exchange && !shp->outbox.empty()) {
      account_exchange_frame(*shp);
    }
    exchange_scratch_.insert(exchange_scratch_.end(), shp->outbox.begin(),
                             shp->outbox.end());
    shp->outbox.clear();
  }
  if (exchange_scratch_.empty()) return;
  // Global (done, user) order: the one sequence every shard count agrees
  // on.  Each user has one outstanding request, so the key is unique.
  std::sort(exchange_scratch_.begin(), exchange_scratch_.end(),
            [](const Completion& a, const Completion& b) {
              return a.done != b.done ? a.done < b.done : a.user < b.user;
            });
  stats_.requests += exchange_scratch_.size();
  for (const Completion& c : exchange_scratch_) {
    workload::MuxRequest req;
    if (!mux_.next_request(c.user, c.done, window_end_, req)) continue;
    const std::uint32_t target = shard_of(req.tree);
    shards_[target]->inbox.push_back(req);
    ++stats_.handoffs;
    if (target != shard_of(c.tree)) ++stats_.cross_shard;
  }
}

LiveTree& ForestEngine::touch(std::uint32_t tree, Shard& sh) {
  const auto t = static_cast<std::size_t>(tree);
  switch (static_cast<TreeStatus>(tree_status_[t])) {
    case TreeStatus::kLive:
      break;
    case TreeStatus::kVirgin:
      materialize(tree, sh);
      break;
    case TreeStatus::kFrozen:
      wake(tree, sh);
      break;
  }
  LiveTree& lt = sh.slab.at(tree_slot_[t]);
  lt.last_touch = sh.queue.now();
  return lt;
}

void ForestEngine::materialize(std::uint32_t tree, Shard& sh) {
  const std::uint32_t slot = sh.slab.acquire();
  LiveTree& lt = sh.slab.at(slot);
  lt.tree_id = tree;
  lt.rng = Rng(tree_seed_[tree]);
  // The build draws come first off the tree's chain; serve-time draws
  // continue the same stream, exactly as the eager engine consumed it.
  build_initial_topology(lt.tree, lt.rng, cfg_.tree_size);
  if (cfg_.service == Service::kController) {
    core::CentralizedController::Options opts;
    opts.track_domains = false;
    lt.ctrl.emplace(lt.tree, params_, opts);
  }
  tree_slot_[tree] = slot;
  tree_status_[tree] = static_cast<std::uint8_t>(TreeStatus::kLive);
  ++sh.tree_builds;
}

void ForestEngine::wake(std::uint32_t tree, Shard& sh) {
  const std::uint32_t fslot = tree_slot_[tree];
  decode_tree_image(sh.image_scratch, sh.frozen[fslot]);
  const TreeImage& img = sh.image_scratch;

  const std::uint32_t slot = sh.slab.acquire();
  LiveTree& lt = sh.slab.at(slot);
  lt.tree_id = tree;
  {
    // The build's draws replay from the recorded seed on a scratch
    // generator; the live stream then resumes from the snapshot state.
    Rng build_rng(tree_seed_[tree]);
    build_initial_topology(lt.tree, build_rng, cfg_.tree_size);
  }
  replay_grown_nodes(lt.tree, img);
  lt.rng.set_state(img.rng_state);
  lt.grown.clear();
  for (const auto& [id, parent] : img.grown) lt.grown.push_back(id);
  lt.grows = img.grows;
  if (img.has_ctrl) {
    DYNCON_INVARIANT(cfg_.service == Service::kController,
                     "controller image for an echo-mode tree");
    core::CentralizedController::Options opts;
    opts.track_domains = false;
    lt.ctrl.emplace(lt.tree, params_, opts);
    lt.ctrl->restore_image(img.ctrl);
  }

  // Recycle the frozen slot; its byte buffer stays behind on the free list
  // for the next hibernation (allocation-free steady state).
  sh.frozen_free.push_back(fslot);
  tree_slot_[tree] = slot;
  tree_status_[tree] = static_cast<std::uint8_t>(TreeStatus::kLive);
  ++sh.wakes;
}

void ForestEngine::hibernate(std::uint32_t tree, Shard& sh) {
  const std::uint32_t slot = tree_slot_[tree];
  LiveTree& lt = sh.slab.at(slot);
  capture_tree_image(sh.image_scratch, lt.tree,
                     lt.ctrl.has_value() ? &*lt.ctrl : nullptr, lt.rng,
                     lt.grown, lt.grows);
  std::uint32_t fslot;
  if (!sh.frozen_free.empty()) {
    fslot = sh.frozen_free.back();
    sh.frozen_free.pop_back();
  } else {
    fslot = static_cast<std::uint32_t>(sh.frozen.size());
    sh.frozen.emplace_back();
  }
  sh.frozen[fslot] =
      encode_tree_image(sh.image_scratch, std::move(sh.frozen[fslot]));
  sh.hibernate_bits += sh.frozen[fslot].bits;
  sh.slab.release(slot);
  tree_slot_[tree] = fslot;
  tree_status_[tree] = static_cast<std::uint8_t>(TreeStatus::kFrozen);
  ++sh.hibernations;
}

void ForestEngine::destroy_tree(std::uint32_t tree, Shard& sh) {
  const auto t = static_cast<std::size_t>(tree);
  switch (static_cast<TreeStatus>(tree_status_[t])) {
    case TreeStatus::kLive:
      sh.slab.release(tree_slot_[t]);
      break;
    case TreeStatus::kFrozen:
      sh.frozen_free.push_back(tree_slot_[t]);
      break;
    case TreeStatus::kVirgin:
      break;
  }
  tree_status_[t] = static_cast<std::uint8_t>(TreeStatus::kVirgin);
}

void ForestEngine::enforce_residency(Shard& sh) {
  const std::uint64_t budget = cfg_.resident_trees;
  if (budget == 0 || sh.slab.occupied() <= budget) return;
  // Deterministic LRU: (last_touch, tree_id) over this shard's residents.
  // The POLICY may group differently at different shard counts — harmless,
  // because the hibernate round-trip is lossless; only the hibernation
  // diagnostics move.
  sh.evict_scratch.clear();
  sh.slab.for_each_occupied([&](const LiveTree& lt) {
    sh.evict_scratch.emplace_back(lt.last_touch, lt.tree_id);
  });
  std::sort(sh.evict_scratch.begin(), sh.evict_scratch.end());
  const std::size_t excess = sh.slab.occupied() - budget;
  for (std::size_t i = 0; i < excess; ++i) {
    hibernate(sh.evict_scratch[i].second, sh);
  }
}

void ForestEngine::serve(std::uint64_t user, std::uint32_t tree,
                         workload::ForestOp op, obs::TraceId trace) {
  Shard& sh = *shards_[shard_of(tree)];

  // Causal context for everything this request touches: the controller's
  // op span (and any hop spans under it) parent to the request's root span.
  // The save/restore is two thread-local copies; the stores are behind the
  // spans-enabled check.
  obs::ScopedSpanContext span_scope;
  if (sh.spans != nullptr) {
    span_scope.engage(obs::SpanContext{trace, obs::kRootSpanId});
    obs::set_span_now(sh.queue.now());
  }

  static thread_local obs::CounterHandle c_total("forest.requests.total");
  static thread_local obs::CounterHandle c_granted("forest.requests.granted");
  static thread_local obs::CounterHandle c_rejected(
      "forest.requests.rejected");
  static thread_local obs::CounterHandle c_other("forest.requests.other");
  static thread_local obs::CounterHandle c_permit("forest.ops.permit");
  static thread_local obs::CounterHandle c_grow("forest.ops.grow");
  static thread_local obs::CounterHandle c_capped("forest.ops.grow_capped");
  static thread_local obs::CounterHandle c_shrink("forest.ops.shrink");
  static thread_local obs::CounterHandle c_noop("forest.ops.shrink_noop");
  static thread_local obs::CounterHandle c_destroy("forest.ops.destroy");
  static thread_local obs::HistogramHandle h_cost("forest.serve.cost");
  c_total.add();

  LiveTree& lt = touch(tree, sh);

  core::Outcome outcome = core::Outcome::kGranted;
  bool destroyed = false;
  if (cfg_.service == Service::kEcho) {
    // Engine-only mode: grant unconditionally, touch no controller.  What
    // remains is exactly the sharded runtime's own per-event work (destroy
    // is a tenancy op on controller state, so echo ignores it too).
    c_permit.add();
  } else if (op == workload::ForestOp::kDestroy) {
    // Tenant teardown: free the tree's state entirely; the next request
    // that touches this tree id lazily builds a fresh instance from the
    // same seed.  Zero controller cost, granted outcome.
    c_destroy.add();
    h_cost.observe(0);
    destroyed = true;
  } else {
    const std::uint64_t cost_before = lt.ctrl->cost();
    switch (op) {
      case workload::ForestOp::kPermit: {
        c_permit.add();
        const NodeId site = static_cast<NodeId>(
            lt.rng.index(static_cast<std::size_t>(cfg_.tree_size)));
        outcome = lt.ctrl->request_event(site).outcome;
        break;
      }
      case workload::ForestOp::kGrow: {
        c_grow.add();
        if (lt.grows >= grow_cap_) {
          // This instance's grow budget — the U bound's headroom — is
          // spent; refuse without touching the controller.
          c_capped.add();
          outcome = core::Outcome::kMoot;
          break;
        }
        const NodeId parent = static_cast<NodeId>(
            lt.rng.index(static_cast<std::size_t>(cfg_.tree_size)));
        const core::Result res = lt.ctrl->request_add_leaf(parent);
        outcome = res.outcome;
        if (res.granted()) {
          lt.grown.push_back(res.new_node);
          ++lt.grows;
        }
        break;
      }
      case workload::ForestOp::kShrink: {
        c_shrink.add();
        if (lt.grown.empty()) {
          // Nothing this user's tree can give back; a no-op completion.
          c_noop.add();
          outcome = core::Outcome::kMoot;
          break;
        }
        const core::Result res = lt.ctrl->request_remove(lt.grown.back());
        outcome = res.outcome;
        if (res.granted()) lt.grown.pop_back();
        break;
      }
      case workload::ForestOp::kDestroy:
        DYNCON_INVARIANT(false, "destroy handled above");
        break;
    }
    h_cost.observe(lt.ctrl->cost() - cost_before);
  }

  switch (outcome) {
    case core::Outcome::kGranted:
      c_granted.add();
      break;
    case core::Outcome::kRejected:
      c_rejected.add();
      break;
    default:
      c_other.add();
      break;
  }

  // Service latency: base + per-tree jitter (same stream as the site
  // draws, so it too is shard-count invariant), then a completion event
  // that hands the response back at the next barrier.  The jitter draw
  // happens before a destroy releases the tree's state.
  const SimTime delay = cfg_.service_delay + (lt.rng.next() & 3);
  if (destroyed) destroy_tree(tree, sh);
  sh.queue.schedule_after(delay, [this, user, tree] {
    complete(user, tree);
  });
}

void ForestEngine::complete(std::uint64_t user, std::uint32_t tree) {
  Shard& sh = *shards_[shard_of(tree)];
  sh.outbox.push_back(Completion{sh.queue.now(), user, tree});
}

bool ForestEngine::drained() const {
  for (const auto& shp : shards_) {
    if (!shp->queue.empty() || !shp->inbox.empty()) return false;
  }
  return true;
}

ForestStats ForestEngine::run() {
  DYNCON_REQUIRE(!ran_, "ForestEngine::run is one-shot");
  ran_ = true;
  while (step_window()) {
  }
  DYNCON_INVARIANT(drained(), "run ended with pending work");
  DYNCON_INVARIANT(stats_.requests == mux_.total_requests(),
                   "every issued request must complete exactly once");

  for (const auto& shp : shards_) {
    stats_.events += shp->queue.events_fired();
    stats_.granted += shp->registry.counter("forest.requests.granted");
    stats_.rejected += shp->registry.counter("forest.requests.rejected");
    stats_.other += shp->registry.counter("forest.requests.other");
    stats_.tree_builds += shp->tree_builds;
    stats_.hibernations += shp->hibernations;
    stats_.wakes += shp->wakes;
    stats_.hibernate_bits += shp->hibernate_bits;
  }

  // Deterministic reduction: shard registries fold into the caller's
  // registry in shard order.  Counter/histogram totals are shard-count
  // invariant (per-tree streams; merge is commutative over integers).
  if (obs::Registry* r = obs::metrics()) {
    for (const auto& shp : shards_) r->merge(shp->registry);
  }
  merge_shard_spans();
  return stats_;
}

ForestMemStats ForestEngine::mem_stats() const {
  ForestMemStats m;
  m.trees = tree_status_.size();
  for (std::uint8_t st : tree_status_) {
    switch (static_cast<TreeStatus>(st)) {
      case TreeStatus::kVirgin:
        ++m.virgin;
        break;
      case TreeStatus::kLive:
        ++m.resident;
        break;
      case TreeStatus::kFrozen:
        ++m.hibernated;
        break;
    }
  }
  m.materialized = m.resident + m.hibernated;
  for (const auto& shp : shards_) {
    m.arena_bytes += shp->slab.approx_bytes();
    for (const sim::Encoded& e : shp->frozen) {
      m.image_bytes += e.bytes.capacity() + sizeof(sim::Encoded);
    }
  }
  m.index_bytes = tree_seed_.capacity() * sizeof(std::uint64_t) +
                  tree_status_.capacity() +
                  tree_slot_.capacity() * sizeof(std::uint32_t);
  return m;
}

void ForestEngine::merge_shard_spans() {
  obs::SpanSink* sink = obs::spans();
  if (sink == nullptr || !spans_enabled_) return;
  // Root spans were emitted straight into the caller's sink (the exchange
  // runs on this thread, in global (done, user) order).  Shard sinks hold
  // the op and hop spans; (trace, id) is globally unique — a trace's ops
  // run on exactly one shard, and ids are per-trace — so sorting by it
  // gives one total order every shard count agrees on.
  std::vector<obs::Span> all;
  std::uint64_t lost = 0;
  for (const auto& shp : shards_) {
    if (shp->spans == nullptr) continue;
    all.insert(all.end(), shp->spans->entries().begin(),
               shp->spans->entries().end());
    lost += shp->spans->overwritten();
  }
  std::sort(all.begin(), all.end(),
            [](const obs::Span& a, const obs::Span& b) {
              if (a.trace != b.trace) return a.trace < b.trace;
              return a.id < b.id;
            });
  for (const obs::Span& s : all) sink->emit(s);
  sink->add_overwritten(lost);
}

std::vector<std::uint64_t> ForestEngine::shard_rng_fingerprints() const {
  std::vector<std::uint64_t> out;
  out.reserve(shards_.size());
  for (const auto& shp : shards_) {
    Rng copy = shp->rng;
    out.push_back(copy.next());
  }
  return out;
}

}  // namespace dyncon::forest

#pragma once

// Cold-tree hibernation: a resident tree's complete semantic state, folded
// into a compact bit-packed snapshot (PR-1 wire codec, the BoardSnapshot
// idiom from agent/durable.hpp) and back.
//
// The key economy: a forest tree's *topology* is a pure function of its
// split-chain seed plus the list of surviving grow-added leaves, so the
// snapshot never stores the initial tree at all — rematerialization replays
// the seeded build (identical RNG draws), replays the grown/dead id space
// so node ids keep lining up with the never-hibernated run, restores the
// tree RNG's raw state, and rebuilds the controller from its extracted
// image.  Every counter those operations would normally fire was already
// counted in the original shard registry, so restore paths fire none, and
// output stays byte-identical at any --resident-trees budget.
//
// Children-list order is reproduced exactly (alive grown leaves re-attach
// in id order, which is their chronological order; dead ids pass through as
// attach-then-detach fillers that leave sibling order untouched), so a
// post-wake reject wave walks the same BFS order it would have originally.
// Port numbers may differ after a wake — nothing on the forest path reads
// ports, and the controller walks parent chains only.

#include <cstdint>
#include <utility>
#include <vector>

#include "core/centralized_controller.hpp"
#include "sim/wire.hpp"
#include "tree/dynamic_tree.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace dyncon::forest {

/// Everything a hibernated tree needs to come back: the id-space shape
/// (total_ever + surviving grown leaves with their parents, ids ascending),
/// the tree RNG's raw state, the engine's grow-cap bookkeeping, and the
/// controller image (absent in echo mode).
struct TreeImage {
  std::uint64_t total_ever = 0;
  std::vector<std::pair<NodeId, NodeId>> grown;  ///< (id, parent), ascending
  Rng::State rng_state{};
  std::uint64_t grows = 0;
  bool has_ctrl = false;
  core::CentralizedController::Image ctrl;
  bool operator==(const TreeImage&) const = default;
};

/// Capture a live tree into `out` (cleared first).  `grown` is the engine's
/// stack of surviving grow-added leaf ids (ascending by construction);
/// parents are read off the tree.  `ctrl` may be null (echo mode).
void capture_tree_image(TreeImage& out, const tree::DynamicTree& t,
                        const core::CentralizedController* ctrl,
                        const Rng& rng, const std::vector<NodeId>& grown,
                        std::uint64_t grows);

/// Exact encoded size in bits (BitCounter pass over the same body writer).
[[nodiscard]] std::uint64_t tree_image_bits(const TreeImage& img);

/// Encode into a bit-packed snapshot.  Pass a previously-finished Encoded
/// as `reuse` to recycle its byte buffer (allocation-free steady state;
/// the frozen-slot free list does exactly this).
[[nodiscard]] sim::Encoded encode_tree_image(const TreeImage& img,
                                             sim::Encoded&& reuse);
[[nodiscard]] sim::Encoded encode_tree_image(const TreeImage& img);

/// Decode; validates the version tag and exact bit consumption.
void decode_tree_image(TreeImage& out, const sim::Encoded& enc);
[[nodiscard]] TreeImage decode_tree_image(const sim::Encoded& enc);

/// Replay the deterministic initial build into a freshly-reset tree:
/// tree_size - 1 add-leaf steps whose parents are drawn from `rng` exactly
/// as the engine's first materialization draws them (node ids come out
/// 0..tree_size-1, so request sites need no stored vector at all).
void build_initial_topology(tree::DynamicTree& t, Rng& rng,
                            std::uint64_t tree_size);

/// Replay the post-build id space [t.total_ever(), img.total_ever): each id
/// in `img.grown` re-attaches under its recorded parent; every other id is
/// a dead node, burned as an add-leaf(root) + remove-leaf filler so future
/// add-leaf calls keep minting the same ids as the never-hibernated run.
void replay_grown_nodes(tree::DynamicTree& t, const TreeImage& img);

}  // namespace dyncon::forest

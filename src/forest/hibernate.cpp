#include "forest/hibernate.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dyncon::forest {

namespace {

constexpr std::uint64_t kTreeImageVersion = 1;

// One body writer for BitCounter / BitWriter, the wire.cpp discipline:
// counting and encoding cannot drift apart because they are the same code.
template <typename W>
void write_tree_image(W& w, const TreeImage& img) {
  w.put_bits(kTreeImageVersion, 4);
  w.put_gamma(img.total_ever);
  w.put_gamma(img.grown.size());
  std::uint64_t prev = 0;
  for (const auto& [id, parent] : img.grown) {
    DYNCON_REQUIRE(id > prev || prev == 0, "grown ids must ascend");
    w.put_gamma(id - prev);  // strictly ascending: delta >= 1 after first
    w.put_gamma(parent);
    prev = id;
  }
  for (std::uint64_t s : img.rng_state) w.put_bits(s, 64);
  w.put_gamma(img.grows);
  w.put_bit(img.has_ctrl);
  if (!img.has_ctrl) return;
  const core::CentralizedController::Image& c = img.ctrl;
  w.put_gamma(c.storage);
  w.put_gamma(c.granted);
  w.put_gamma(c.rejects);
  w.put_bit(c.wave);
  w.put_bit(c.exhausted);
  w.put_gamma(c.packages.moves);
  w.put_gamma(c.packages.next_id);
  w.put_gamma(c.packages.alive.size());
  for (const core::PackageTable::Record& rec : c.packages.alive) {
    w.put_gamma(rec.id);
    w.put_bits(static_cast<std::uint64_t>(rec.kind), 2);
    w.put_gamma(rec.host);
    w.put_gamma(rec.size);
    w.put_gamma(rec.level);
  }
}

}  // namespace

void capture_tree_image(TreeImage& out, const tree::DynamicTree& t,
                        const core::CentralizedController* ctrl,
                        const Rng& rng, const std::vector<NodeId>& grown,
                        std::uint64_t grows) {
  out.total_ever = t.total_ever();
  out.grown.clear();
  out.grown.reserve(grown.size());
  NodeId prev = 0;
  for (NodeId id : grown) {
    DYNCON_REQUIRE(id > prev || out.grown.empty(),
                   "grown stack must hold ascending ids");
    out.grown.emplace_back(id, t.parent(id));
    prev = id;
  }
  out.rng_state = rng.state();
  out.grows = grows;
  out.has_ctrl = ctrl != nullptr;
  if (ctrl != nullptr) {
    ctrl->extract_image(out.ctrl);
  } else {
    out.ctrl = core::CentralizedController::Image{};
  }
}

std::uint64_t tree_image_bits(const TreeImage& img) {
  sim::BitCounter c;
  write_tree_image(c, img);
  return c.bit_count();
}

sim::Encoded encode_tree_image(const TreeImage& img, sim::Encoded&& reuse) {
  sim::BitWriter w(std::move(reuse));
  write_tree_image(w, img);
  return w.finish();
}

sim::Encoded encode_tree_image(const TreeImage& img) {
  sim::BitWriter w(tree_image_bits(img));
  write_tree_image(w, img);
  return w.finish();
}

void decode_tree_image(TreeImage& out, const sim::Encoded& enc) {
  sim::BitReader r(enc);
  DYNCON_REQUIRE(r.get_bits(4) == kTreeImageVersion,
                 "tree image version mismatch");
  out.total_ever = r.get_gamma();
  const std::uint64_t grown_count = r.get_gamma();
  out.grown.clear();
  out.grown.reserve(grown_count);
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < grown_count; ++i) {
    const NodeId id = prev + r.get_gamma();
    const NodeId parent = r.get_gamma();
    DYNCON_REQUIRE(id > prev || i == 0, "corrupt grown delta");
    DYNCON_REQUIRE(id < out.total_ever && parent < id,
                   "grown node outside the id space");
    out.grown.emplace_back(id, parent);
    prev = id;
  }
  for (std::uint64_t& s : out.rng_state) s = r.get_bits(64);
  out.grows = r.get_gamma();
  out.has_ctrl = r.get_bit();
  out.ctrl = core::CentralizedController::Image{};
  if (out.has_ctrl) {
    core::CentralizedController::Image& c = out.ctrl;
    c.storage = r.get_gamma();
    c.granted = r.get_gamma();
    c.rejects = r.get_gamma();
    c.wave = r.get_bit();
    c.exhausted = r.get_bit();
    c.packages.moves = r.get_gamma();
    c.packages.next_id = r.get_gamma();
    const std::uint64_t alive = r.get_gamma();
    c.packages.alive.clear();
    c.packages.alive.reserve(alive);
    for (std::uint64_t i = 0; i < alive; ++i) {
      core::PackageTable::Record rec;
      rec.id = r.get_gamma();
      rec.kind = static_cast<core::PackageKind>(r.get_bits(2));
      rec.host = r.get_gamma();
      rec.size = r.get_gamma();
      rec.level = static_cast<std::uint32_t>(r.get_gamma());
      c.packages.alive.push_back(rec);
    }
  }
  DYNCON_REQUIRE(r.finished(), "tree image decode left trailing bits");
}

TreeImage decode_tree_image(const sim::Encoded& enc) {
  TreeImage out;
  decode_tree_image(out, enc);
  return out;
}

void build_initial_topology(tree::DynamicTree& t, Rng& rng,
                            std::uint64_t tree_size) {
  DYNCON_REQUIRE(tree_size >= 1, "trees need at least the root");
  DYNCON_REQUIRE(t.total_ever() == 1 && t.size() == 1,
                 "build_initial_topology needs a freshly-reset tree");
  t.reserve_nodes(static_cast<std::size_t>(tree_size));
  for (std::uint64_t i = 1; i < tree_size; ++i) {
    // Exactly the eager engine's draw: a uniform pick among the i nodes
    // built so far, which are ids 0..i-1 — the "sites" vector was always
    // the identity map, so the request path needs no vector at all.
    const NodeId parent =
        static_cast<NodeId>(rng.index(static_cast<std::size_t>(i)));
    const NodeId u = t.add_leaf(parent);
    DYNCON_INVARIANT(u == i, "node ids must mint sequentially");
  }
}

void replay_grown_nodes(tree::DynamicTree& t, const TreeImage& img) {
  DYNCON_REQUIRE(t.total_ever() <= img.total_ever,
                 "image id space smaller than the built tree");
  std::size_t next_grown = 0;
  for (NodeId id = t.total_ever(); id < img.total_ever; ++id) {
    if (next_grown < img.grown.size() && img.grown[next_grown].first == id) {
      const NodeId u = t.add_leaf(img.grown[next_grown].second);
      DYNCON_INVARIANT(u == id, "grown replay minted the wrong id");
      ++next_grown;
    } else {
      // Dead id: burn it so the id counter (and hence every future
      // add-leaf id) matches the never-hibernated run.  The filler hangs
      // off the root and detaches immediately; sibling order among
      // survivors is unchanged because detach preserves order.
      const NodeId u = t.add_leaf(t.root());
      DYNCON_INVARIANT(u == id, "filler replay minted the wrong id");
      t.remove_leaf(u);
    }
  }
  DYNCON_REQUIRE(next_grown == img.grown.size(),
                 "grown list extends past total_ever");
}

}  // namespace dyncon::forest

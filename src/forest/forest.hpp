#pragma once

// Sharded in-process forest runtime: one engine, many trees, one
// deterministic clock.
//
// The paper's controller manages a single tree; a production service faces
// a *forest* — many independent controller instances behind one front end
// (the "Maintaining a Distributed Spanning Forest" setting at service
// scale).  This engine hosts that forest:
//
//   * K shards, each owning a disjoint set of trees, its OWN
//     sim::EventQueue (with PR 4's recycled slot-slab arena), its own
//     obs::Registry (thread-confined; merged deterministically at the end),
//     and a per-shard Rng split from the run seed for shard-local
//     auxiliary draws.  All semantic randomness is per-TREE or per-USER
//     split chains, which is what makes results shard-count invariant.
//
//   * A virtual-time barrier scheduler: shards advance concurrently
//     (util::ThreadPool::for_each, one reusable pool) but only in bounded
//     windows [t, t + window).  At each window edge the engine barriers,
//     collects every shard's completions, sorts them by the shard-invariant
//     key (completion time, user), asks the workload::RequestMux for each
//     user's next request, and stages the resulting arrivals into the
//     target shards' inboxes — batched, seq-ordered cross-shard delivery.
//     A follow-up arrival is clamped to the next window edge whether or
//     not it crosses shards, so the virtual timeline is byte-identical at
//     any --shards=N; sharding changes wall-clock time only.
//
//   * Pay-as-you-go trees: the engine's per-tree footprint is a 13-byte
//     SoA index entry (split-chain seed, status, slot).  A tree's
//     DynamicTree + controller materialize into the shard's TreeSlab arena
//     on the first request that touches it (a tree's build is a pure
//     function of (seed, tree_id), so laziness cannot change a byte of
//     output), and under a --resident-trees budget cold trees hibernate
//     into compact wire-codec snapshots at window edges, rematerializing on
//     the next touch (forest/hibernate.hpp) — again byte-identical at any
//     budget, because the snapshot round-trip is lossless and restore
//     paths re-fire no counters.
//
//   * Tree event timelines are independent: two trees never share state,
//     each draws from its own split-chain Rng, and a tree's events execute
//     in the same relative order whatever else its shard interleaves
//     (per-tree schedule order is a subsequence of the shard queue's
//     (when, seq) order).  Hence counters, histograms, and the engine's
//     request totals match exactly across shard counts — tested in
//     tests/test_forest, benched in bench/exp19_forest_scaling.
//
// The steady-state shard loop (event dispatch, serve, completion, batch
// exchange) allocates nothing per event: queues recycle their slabs, all
// engine buffers (outboxes, inboxes, sort scratch) retain capacity across
// windows, and actions fit InlineFn's inline storage.  exp19's echo phase
// measures this with the operator-new counter (using --eager so one-time
// materialization stays out of the measured loop).

#include <cstdint>
#include <memory>
#include <vector>

#include "core/centralized_controller.hpp"
#include "core/params.hpp"
#include "forest/hibernate.hpp"
#include "forest/tree_slab.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/event_queue.hpp"
#include "tree/dynamic_tree.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workload/request_mux.hpp"

namespace dyncon::forest {

/// What serves a request once it reaches its tree.
enum class Service : std::uint8_t {
  kController,  ///< a real (M,W)-controller per tree (grow/shrink/permit)
  kEcho,        ///< no controller work: grant after the service delay
                ///< (isolates the engine's own loop for alloc accounting)
};

struct ForestConfig {
  /// Shard count == worker count; 1 runs inline with no pool.
  unsigned shards = 1;
  workload::MuxConfig mux;
  /// Virtual-time window width (ticks) between exchange barriers.
  SimTime window = 256;
  Service service = Service::kController;
  /// Initial nodes per tree (grown workload::Shape::kRandomAttach).
  std::uint64_t tree_size = 32;
  /// Permit budget M per tree; 0 = effectively unlimited (requests mostly
  /// grant, the throughput-bench setting).
  std::uint64_t permits_per_tree = 0;
  /// Cap on grows *granted* per tree instance; 0 = auto (2*tree_size + 64,
  /// "the tree may double and change"). This — not the global request
  /// count — is what sizes each controller's U bound, so per-tree
  /// parameter levels no longer grow with unrelated trees or users
  /// (tree_params() is the single source of truth).  A grow arriving at a
  /// capped tree completes as kMoot (forest.ops.grow_capped).
  std::uint64_t grow_cap = 0;
  /// Per-shard budget of resident (materialized) trees; 0 = unlimited.
  /// Enforced at window edges: the least-recently-touched trees beyond the
  /// budget hibernate into compact snapshots and rematerialize on their
  /// next touch.  Output is byte-identical at any budget.
  std::uint64_t resident_trees = 0;
  /// Materialize every tree at construction (the pre-lazy behavior).  Used
  /// by benches/tests to price laziness; semantics are identical.
  bool eager = false;
  /// Base service latency added to every request (plus 0..3 per-tree
  /// jitter ticks).
  SimTime service_delay = 1;
  /// Per-shard span-ring capacity (used only when spans are enabled — a
  /// SpanSink installed on the constructing thread; see the ctor).
  std::size_t span_capacity = std::size_t{1} << 15;
  /// Account each shard's per-window completion hand-off as ONE BatchFrame
  /// (gamma count prefix + the completions encoded back to back) instead of
  /// one message per completion.  Pure accounting: routing, ordering, and
  /// every registry total are identical either way; only the exchange_*
  /// diagnostics below appear/disappear.
  bool batch_exchange = true;
};

/// The (M, W, U) parameter set the engine instantiates every controller
/// with: a pure function of the per-tree knobs (permits_per_tree,
/// tree_size, grow_cap) — never of the user population, the trees count, or
/// the global request budget.  Exposed so tests can pin that property.
[[nodiscard]] core::Params tree_params(const ForestConfig& cfg);

/// grow_cap with the 0 = auto default resolved.
[[nodiscard]] std::uint64_t resolved_grow_cap(const ForestConfig& cfg);

struct ForestStats {
  // Shard-count invariant (compared across --shards values).
  std::uint64_t requests = 0;  ///< completions delivered back to users
  std::uint64_t granted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t other = 0;     ///< moot / exhausted / shrink-noop outcomes
  std::uint64_t events = 0;    ///< events fired across all shard queues
  std::uint64_t windows = 0;   ///< virtual-time windows executed
  std::uint64_t handoffs = 0;  ///< follow-up requests routed at barriers
  // Shard-count DEPENDENT diagnostics (never in the metrics registry).
  std::uint64_t cross_shard = 0;  ///< handoffs whose tree changed shards
  std::uint64_t barriers = 0;
  // Materialization / hibernation diagnostics (populated by run()).  These
  // follow the --eager / --resident-trees knobs (and eviction grouping
  // follows the shard count), so they stay out of the registry and out of
  // the invariant compare; the knobs they track must not change a byte of
  // registry output — that is what tests pin.
  std::uint64_t tree_builds = 0;     ///< virgin -> live materializations
  std::uint64_t hibernations = 0;    ///< live -> frozen transitions
  std::uint64_t wakes = 0;           ///< frozen -> live rematerializations
  std::uint64_t hibernate_bits = 0;  ///< total snapshot bits encoded
  // Exchange batching (cfg.batch_exchange): one BatchFrame per (shard,
  // window) with completions.  Frame grouping follows the shard count, so
  // these stay out of the registry too.  member_bits is what the same
  // completions would cost unbatched (one AppMsg header each);
  // frame_bits is the coalesced cost actually charged.
  std::uint64_t exchange_frames = 0;
  std::uint64_t exchange_batched_msgs = 0;
  std::uint64_t exchange_frame_bits = 0;
  std::uint64_t exchange_member_bits = 0;
};

/// Memory accounting snapshot (perf.mem.* feedstock).  Byte figures are
/// capacity-based estimates from the owning containers, not allocator
/// truth — deterministic for a given run, comparable across knobs.
struct ForestMemStats {
  std::uint64_t trees = 0;
  std::uint64_t virgin = 0;      ///< never touched (or destroyed) — index only
  std::uint64_t resident = 0;    ///< live in a shard's TreeSlab
  std::uint64_t hibernated = 0;  ///< frozen snapshots
  std::uint64_t materialized = 0;  ///< resident + hibernated
  std::uint64_t arena_bytes = 0;   ///< TreeSlab slots incl. retained capacity
  std::uint64_t image_bytes = 0;   ///< frozen snapshot buffers
  std::uint64_t index_bytes = 0;   ///< the per-tree SoA index
  [[nodiscard]] std::uint64_t accounting_bytes() const {
    return arena_bytes + image_bytes + index_bytes;
  }
};

class ForestEngine {
 public:
  ForestEngine(const ForestConfig& cfg, std::uint64_t seed);
  ~ForestEngine();

  ForestEngine(const ForestEngine&) = delete;
  ForestEngine& operator=(const ForestEngine&) = delete;

  /// Advance one virtual-time window (parallel across shards) and run the
  /// barrier exchange.  Returns false once the forest is drained — every
  /// user served its full request budget.
  bool step_window();

  /// step_window to completion, then merge the per-shard registries (in
  /// shard order) into the registry installed on the calling thread.
  ForestStats run();

  /// Attach a flight recorder sampled at window edges (after each barrier
  /// exchange): per-shard registries accumulate in shard order, so rows are
  /// byte-identical at any shard count.  Must outlive run(); nullptr
  /// detaches.
  void set_flight_recorder(obs::FlightRecorder* flight) { flight_ = flight; }

  [[nodiscard]] const ForestStats& stats() const { return stats_; }
  [[nodiscard]] ForestMemStats mem_stats() const;
  [[nodiscard]] unsigned shards() const {
    return static_cast<unsigned>(shards_.size());
  }
  [[nodiscard]] std::uint32_t shard_of(std::uint32_t tree) const {
    return tree % static_cast<std::uint32_t>(shards_.size());
  }

  /// First draw of a COPY of each shard's Rng (tests: the per-shard
  /// streams must be pairwise independent and seed-stable).
  [[nodiscard]] std::vector<std::uint64_t> shard_rng_fingerprints() const;

 private:
  struct Completion {
    SimTime done;
    std::uint64_t user;
    std::uint32_t tree;
  };

  struct Shard {
    sim::EventQueue queue;
    obs::Registry registry;
    std::unique_ptr<obs::SpanSink> spans;  ///< null unless spans enabled
    Rng rng;  ///< shard-local auxiliary stream (diagnostics sampling);
              ///< semantic draws use per-tree/per-user chains so results
              ///< stay shard-count invariant
    std::vector<Completion> outbox;            // filled during a window
    std::vector<workload::MuxRequest> inbox;   // staged at barriers
    // Resident-tree arena + frozen snapshot store, both thread-confined to
    // whichever worker runs this shard's window (distinct SoA index
    // elements for distinct shards' trees, so no cross-thread writes).
    TreeSlab slab;
    std::vector<sim::Encoded> frozen;        // snapshot slots (buffers kept)
    std::vector<std::uint32_t> frozen_free;  // recycled snapshot slots
    TreeImage image_scratch;                 // reused capture/decode scratch
    std::vector<std::pair<SimTime, std::uint32_t>> evict_scratch;
    // Worker-local diagnostics, folded into ForestStats by run().
    std::uint64_t tree_builds = 0;
    std::uint64_t hibernations = 0;
    std::uint64_t wakes = 0;
    std::uint64_t hibernate_bits = 0;
  };

  enum class TreeStatus : std::uint8_t { kVirgin, kLive, kFrozen };

  void stage_inbox(Shard& sh);
  void run_window_on_shard(std::uint64_t s);
  void exchange();
  void serve(std::uint64_t user, std::uint32_t tree,
             workload::ForestOp op, obs::TraceId trace);
  void complete(std::uint64_t user, std::uint32_t tree);
  void merge_shard_spans();
  [[nodiscard]] bool drained() const;

  /// Ensure `tree` is live in its shard's slab and stamp its LRU touch
  /// time; materializes virgin trees and wakes hibernated ones.
  LiveTree& touch(std::uint32_t tree, Shard& sh);
  void materialize(std::uint32_t tree, Shard& sh);
  void wake(std::uint32_t tree, Shard& sh);
  void hibernate(std::uint32_t tree, Shard& sh);
  void destroy_tree(std::uint32_t tree, Shard& sh);
  void enforce_residency(Shard& sh);

  ForestConfig cfg_;
  workload::RequestMux mux_;
  core::Params params_;        ///< per-tree controller parameters
  std::uint64_t grow_cap_;     ///< resolved per-tree grow cap
  void account_exchange_frame(const Shard& sh);

  std::vector<std::unique_ptr<Shard>> shards_;
  // Per-tree SoA index — the only always-resident per-tree state (13
  // bytes/tree).  Entries for a tree are written only by its own shard's
  // worker (distinct vector elements; never a vector<bool>).
  std::vector<std::uint64_t> tree_seed_;    ///< split-chain ctor seed
  std::vector<std::uint8_t> tree_status_;   ///< TreeStatus
  std::vector<std::uint32_t> tree_slot_;    ///< slab slot / frozen slot
  std::unique_ptr<util::ThreadPool> pool_;  // null when shards == 1
  std::vector<Completion> exchange_scratch_;
  std::vector<std::uint64_t> frame_bits_scratch_;  // reused across windows
  SimTime clock_ = 0;  ///< current window edge (virtual time)
  SimTime window_end_ = 0;
  ForestStats stats_;
  obs::FlightRecorder* flight_ = nullptr;
  bool spans_enabled_ = false;
  bool ran_ = false;
};

}  // namespace dyncon::forest

#pragma once

// Request-trace record & replay.
//
// A Script is a concrete sequence of requests (with node ids resolved),
// serializable to a line-oriented text format:
//
//     event 12
//     addleaf 0
//     addinternal 7
//     remove 3
//
// Scripts make failing randomized runs reproducible as checked-in
// regression inputs, and let two controller implementations be driven by
// the *identical* request sequence for differential testing.  Replay is
// tolerant: entries whose subject no longer exists (because the two runs'
// grant decisions diverged) are skipped and counted.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/controller_iface.hpp"
#include "tree/dynamic_tree.hpp"
#include "workload/churn.hpp"

namespace dyncon::workload {

class Script {
 public:
  Script() = default;

  void append(const core::RequestSpec& spec) { entries_.push_back(spec); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<core::RequestSpec>& entries() const {
    return entries_;
  }

  /// Line-oriented text form (see header comment).
  [[nodiscard]] std::string str() const;

  /// Parse the text form; throws ContractError on malformed input.
  static Script parse(const std::string& text);

  /// Record `steps` churn proposals against `tree`, applying each directly
  /// (recording assumes an all-granting world so the trace is closed under
  /// replay on the same starting tree).
  static Script record(tree::DynamicTree& tree, ChurnGenerator& churn,
                       std::uint64_t steps);

  friend bool operator==(const Script&, const Script&);

 private:
  std::vector<core::RequestSpec> entries_;
};

bool operator==(const Script& a, const Script& b);

struct ReplayStats {
  std::uint64_t submitted = 0;
  std::uint64_t granted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t skipped = 0;  ///< subject vanished (runs diverged)
  std::uint64_t other = 0;
};

/// Replay a script through a synchronous controller.
ReplayStats replay(const Script& script, core::IController& ctrl,
                   const tree::DynamicTree& tree);

}  // namespace dyncon::workload

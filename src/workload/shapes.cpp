#include "workload/shapes.hpp"

#include "util/error.hpp"

namespace dyncon::workload {

const char* shape_name(Shape s) {
  switch (s) {
    case Shape::kPath:
      return "path";
    case Shape::kStar:
      return "star";
    case Shape::kBinary:
      return "binary";
    case Shape::kRandomAttach:
      return "random";
    case Shape::kCaterpillar:
      return "caterpillar";
    case Shape::kBroom:
      return "broom";
  }
  return "?";
}

std::vector<Shape> all_shapes() {
  return {Shape::kPath,         Shape::kStar,        Shape::kBinary,
          Shape::kRandomAttach, Shape::kCaterpillar, Shape::kBroom};
}

void build(tree::DynamicTree& t, Shape s, std::uint64_t n_total, Rng& rng) {
  DYNCON_REQUIRE(t.size() <= n_total, "tree already larger than target");
  std::vector<NodeId> nodes = t.alive_nodes();
  NodeId spine = t.root();          // kPath / kCaterpillar / kBroom cursor
  std::uint64_t spine_len = 0;
  bool leaf_turn = false;           // kCaterpillar alternation
  const std::uint64_t broom_handle = n_total / 2;

  while (t.size() < n_total) {
    NodeId parent = t.root();
    switch (s) {
      case Shape::kPath:
        parent = spine;
        break;
      case Shape::kStar:
        parent = t.root();
        break;
      case Shape::kBinary: {
        // Parent of node i (1-based BFS numbering) is node (i-1)/2 by id;
        // ids are assigned densely during construction.
        const NodeId next = t.total_ever();
        parent = (next - 1) / 2;
        break;
      }
      case Shape::kRandomAttach:
        parent = nodes[rng.index(nodes.size())];
        break;
      case Shape::kCaterpillar:
        parent = spine;
        break;
      case Shape::kBroom:
        parent = spine_len < broom_handle ? spine : spine;
        break;
    }
    const NodeId u = t.add_leaf(parent);
    nodes.push_back(u);
    switch (s) {
      case Shape::kPath:
        spine = u;
        break;
      case Shape::kCaterpillar:
        // Alternate: extend the spine, then hang one leg off it.
        if (!leaf_turn) spine = u;
        leaf_turn = !leaf_turn;
        break;
      case Shape::kBroom:
        if (spine_len < broom_handle) {
          spine = u;  // grow the handle; afterwards all fan off its tip
          ++spine_len;
        }
        break;
      default:
        break;
    }
  }
}

NodeId random_node(const tree::DynamicTree& t, Rng& rng) {
  const auto nodes = t.alive_nodes();
  return nodes[rng.index(nodes.size())];
}

NodeId random_non_root(const tree::DynamicTree& t, Rng& rng) {
  DYNCON_REQUIRE(t.size() >= 2, "no non-root node exists");
  const auto nodes = t.alive_nodes();
  for (;;) {
    const NodeId v = nodes[rng.index(nodes.size())];
    if (v != t.root()) return v;
  }
}

}  // namespace dyncon::workload

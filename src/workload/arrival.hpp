#pragma once

// Request arrival-time processes for asynchronous experiments.
//
// Burst drivers submit k requests and drain the queue; an ArrivalProcess
// instead schedules each submission at a simulated time, so requests
// overlap with the protocol's own messages the way they would in a live
// system.  All processes are seeded and deterministic.

#include <cstdint>
#include <memory>
#include <string>

#include "util/ids.hpp"
#include "util/rng.hpp"

namespace dyncon::workload {

/// Produces successive inter-arrival gaps (in simulated ticks, >= 0).
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  [[nodiscard]] virtual SimTime next_gap() = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Constant spacing (a paced client).
class UniformArrivals final : public ArrivalProcess {
 public:
  explicit UniformArrivals(SimTime gap);
  [[nodiscard]] SimTime next_gap() override;
  [[nodiscard]] std::string name() const override;

 private:
  SimTime gap_;
};

/// Memoryless arrivals: geometric gaps with mean `mean_gap` (the discrete
/// analogue of a Poisson process).
class PoissonArrivals final : public ArrivalProcess {
 public:
  PoissonArrivals(Rng rng, double mean_gap);
  [[nodiscard]] SimTime next_gap() override;
  [[nodiscard]] std::string name() const override;

 private:
  Rng rng_;
  double p_;  ///< per-tick arrival probability = 1 / mean_gap
};

/// On/off bursts: `burst` back-to-back arrivals, then a long pause — the
/// flash-crowd arrival pattern.
class BurstyArrivals final : public ArrivalProcess {
 public:
  BurstyArrivals(Rng rng, std::uint64_t burst, SimTime pause);
  [[nodiscard]] SimTime next_gap() override;
  [[nodiscard]] std::string name() const override;

 private:
  Rng rng_;
  std::uint64_t burst_;
  SimTime pause_;
  std::uint64_t left_in_burst_;
};

enum class ArrivalKind { kUniform, kPoisson, kBursty };

[[nodiscard]] std::unique_ptr<ArrivalProcess> make_arrivals(
    ArrivalKind kind, std::uint64_t seed);
[[nodiscard]] const char* arrival_kind_name(ArrivalKind kind);

}  // namespace dyncon::workload

#pragma once

// Request arrival-time processes for asynchronous experiments.
//
// Burst drivers submit k requests and drain the queue; an ArrivalProcess
// instead schedules each submission at a simulated time, so requests
// overlap with the protocol's own messages the way they would in a live
// system.  All processes are seeded and deterministic.

#include <cstdint>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "util/ids.hpp"
#include "util/rng.hpp"

namespace dyncon::workload {

/// Produces successive inter-arrival gaps (in simulated ticks, >= 0).
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  [[nodiscard]] virtual SimTime next_gap() = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Constant spacing (a paced client).
class UniformArrivals final : public ArrivalProcess {
 public:
  explicit UniformArrivals(SimTime gap);
  [[nodiscard]] SimTime next_gap() override;
  [[nodiscard]] std::string name() const override;

 private:
  SimTime gap_;
};

/// Memoryless arrivals: geometric gaps with mean `mean_gap` (the discrete
/// analogue of a Poisson process).
class PoissonArrivals final : public ArrivalProcess {
 public:
  PoissonArrivals(Rng rng, double mean_gap);
  [[nodiscard]] SimTime next_gap() override;
  [[nodiscard]] std::string name() const override;

 private:
  Rng rng_;
  double p_;  ///< per-tick arrival probability = 1 / mean_gap
};

/// On/off bursts: `burst` back-to-back arrivals, then a long pause — the
/// flash-crowd arrival pattern.
class BurstyArrivals final : public ArrivalProcess {
 public:
  BurstyArrivals(Rng rng, std::uint64_t burst, SimTime pause);
  [[nodiscard]] SimTime next_gap() override;
  [[nodiscard]] std::string name() const override;

 private:
  Rng rng_;
  std::uint64_t burst_;
  SimTime pause_;
  std::uint64_t left_in_burst_;
};

/// On/off (Markov-modulated style) wrapper: gaps come from `base` while the
/// process is in an ON span; once a span's virtual time is spent, an OFF
/// pause of `off_span` (plus seeded jitter) is added to the next gap.  This
/// is the diurnal / flash-crowd modulation pattern: traffic arrives in
/// seed-deterministic waves instead of a steady trickle.
class OnOffArrivals final : public ArrivalProcess {
 public:
  OnOffArrivals(Rng rng, std::unique_ptr<ArrivalProcess> base,
                SimTime on_span, SimTime off_span);
  [[nodiscard]] SimTime next_gap() override;
  [[nodiscard]] std::string name() const override;

 private:
  Rng rng_;
  std::unique_ptr<ArrivalProcess> base_;
  SimTime on_span_;
  SimTime off_span_;
  SimTime left_in_on_;  ///< virtual time remaining in the current ON span
};

enum class ArrivalKind { kUniform, kPoisson, kBursty, kOnOff };

[[nodiscard]] std::unique_ptr<ArrivalProcess> make_arrivals(
    ArrivalKind kind, std::uint64_t seed);
[[nodiscard]] const char* arrival_kind_name(ArrivalKind kind);

/// Seed-deterministic Zipf(s) selector over indices [0, n): P(i) is
/// proportional to 1/(i+1)^s, so index 0 is the hottest key.  Draws are a
/// binary search over a precomputed CDF — no allocation, safe to share
/// read-only across threads (each caller supplies its own Rng).  This is
/// the skewed tree/site selector the forest request mux routes with;
/// uniform selection is the s = 0 special case.
class ZipfSelector {
 public:
  ZipfSelector(std::size_t n, double s);

  [[nodiscard]] std::size_t pick(Rng& rng) const;
  [[nodiscard]] std::size_t size() const { return cdf_.size(); }
  [[nodiscard]] double skew() const { return s_; }

  /// P(pick == i) (for tests and reporting).
  [[nodiscard]] double probability(std::size_t i) const;

 private:
  std::vector<double> cdf_;  ///< cdf_[i] = P(pick <= i); back() == 1.0
  double s_;
};

}  // namespace dyncon::workload

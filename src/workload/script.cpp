#include "workload/script.hpp"

#include <sstream>

#include "util/error.hpp"

namespace dyncon::workload {

using core::Outcome;
using core::RequestSpec;

namespace {

const char* type_name(RequestSpec::Type t) {
  switch (t) {
    case RequestSpec::Type::kEvent:
      return "event";
    case RequestSpec::Type::kAddLeaf:
      return "addleaf";
    case RequestSpec::Type::kAddInternal:
      return "addinternal";
    case RequestSpec::Type::kRemove:
      return "remove";
  }
  return "?";
}

RequestSpec::Type parse_type(const std::string& word) {
  if (word == "event") return RequestSpec::Type::kEvent;
  if (word == "addleaf") return RequestSpec::Type::kAddLeaf;
  if (word == "addinternal") return RequestSpec::Type::kAddInternal;
  if (word == "remove") return RequestSpec::Type::kRemove;
  throw ContractError("unknown script verb: " + word);
}

}  // namespace

std::string Script::str() const {
  std::ostringstream os;
  for (const auto& e : entries_) {
    os << type_name(e.type) << ' ' << e.subject << '\n';
  }
  return os.str();
}

Script Script::parse(const std::string& text) {
  Script out;
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string verb;
    std::uint64_t subject = 0;
    if (!(ls >> verb >> subject)) {
      throw ContractError("malformed script line " + std::to_string(lineno) +
                          ": " + line);
    }
    out.append(RequestSpec{parse_type(verb), subject});
  }
  return out;
}

Script Script::record(tree::DynamicTree& tree, ChurnGenerator& churn,
                      std::uint64_t steps) {
  Script out;
  for (std::uint64_t i = 0; i < steps; ++i) {
    const RequestSpec spec = churn.next(tree);
    out.append(spec);
    switch (spec.type) {
      case RequestSpec::Type::kAddLeaf:
        tree.add_leaf(spec.subject);
        break;
      case RequestSpec::Type::kAddInternal:
        tree.add_internal_above(spec.subject);
        break;
      case RequestSpec::Type::kRemove:
        tree.remove_node(spec.subject);
        break;
      case RequestSpec::Type::kEvent:
        break;
    }
  }
  return out;
}

bool operator==(const Script& a, const Script& b) {
  if (a.entries_.size() != b.entries_.size()) return false;
  for (std::size_t i = 0; i < a.entries_.size(); ++i) {
    if (a.entries_[i].type != b.entries_[i].type ||
        a.entries_[i].subject != b.entries_[i].subject) {
      return false;
    }
  }
  return true;
}

ReplayStats replay(const Script& script, core::IController& ctrl,
                   const tree::DynamicTree& tree) {
  ReplayStats stats;
  for (const auto& spec : script.entries()) {
    // Divergence tolerance: skip entries whose subject no longer exists or
    // that became structurally impossible.
    if (!tree.alive(spec.subject)) {
      ++stats.skipped;
      continue;
    }
    if ((spec.type == RequestSpec::Type::kRemove ||
         spec.type == RequestSpec::Type::kAddInternal) &&
        spec.subject == tree.root()) {
      ++stats.skipped;
      continue;
    }
    ++stats.submitted;
    core::Result r;
    switch (spec.type) {
      case RequestSpec::Type::kEvent:
        r = ctrl.request_event(spec.subject);
        break;
      case RequestSpec::Type::kAddLeaf:
        r = ctrl.request_add_leaf(spec.subject);
        break;
      case RequestSpec::Type::kAddInternal:
        r = ctrl.request_add_internal_above(spec.subject);
        break;
      case RequestSpec::Type::kRemove:
        r = ctrl.request_remove(spec.subject);
        break;
    }
    switch (r.outcome) {
      case Outcome::kGranted:
        ++stats.granted;
        break;
      case Outcome::kRejected:
        ++stats.rejected;
        break;
      default:
        ++stats.other;
    }
  }
  return stats;
}

}  // namespace dyncon::workload

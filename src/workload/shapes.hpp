#pragma once

// Tree-shape generators for the initial topology of experiments.
//
// Controller costs depend on depth structure (the filler search walks up,
// package distribution walks down), so every experiment sweeps shapes:
// paths maximize depth, stars minimize it, caterpillars/brooms mix, random
// attachment gives the logarithmic-expected-depth middle ground.

#include <cstdint>
#include <vector>

#include "tree/dynamic_tree.hpp"
#include "util/rng.hpp"

namespace dyncon::workload {

enum class Shape : std::uint8_t {
  kPath,          ///< single downward chain (max depth)
  kStar,          ///< all nodes children of the root (min depth)
  kBinary,        ///< complete binary tree
  kRandomAttach,  ///< each new leaf picks a uniform random parent
  kCaterpillar,   ///< a path with one extra leaf at every spine node
  kBroom,         ///< a path ending in a star of the remaining nodes
};

[[nodiscard]] const char* shape_name(Shape s);
[[nodiscard]] std::vector<Shape> all_shapes();

/// Grow `t` (which may be just a root) by leaf insertions until it has
/// `n_total` nodes, in the given shape.
void build(tree::DynamicTree& t, Shape s, std::uint64_t n_total, Rng& rng);

/// Pick a uniformly random alive node (possibly the root).
[[nodiscard]] NodeId random_node(const tree::DynamicTree& t, Rng& rng);

/// Pick a uniformly random alive non-root node; requires size >= 2.
[[nodiscard]] NodeId random_non_root(const tree::DynamicTree& t, Rng& rng);

}  // namespace dyncon::workload

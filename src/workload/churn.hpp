#pragma once

// Churn models: streams of topological requests over a live tree.
//
// Each model proposes the *next* request given the current topology, so a
// driver can interleave proposals with controller grants (the controlled
// dynamic model: a change only happens if granted).

#include <cstdint>
#include <vector>

#include "core/controller_iface.hpp"
#include "tree/dynamic_tree.hpp"
#include "util/rng.hpp"

namespace dyncon::workload {

enum class ChurnModel : std::uint8_t {
  kGrowOnly,       ///< leaf insertions only (the dynamic model of [4])
  kBirthDeath,     ///< balanced add-leaf / remove-leaf mixture
  kInternalChurn,  ///< all four change types, uniformly mixed
  kFlashCrowd,     ///< join bursts followed by leave bursts (P2P motif)
  kShrink,         ///< removals only (until the root is alone)
};

[[nodiscard]] const char* churn_name(ChurnModel m);
[[nodiscard]] std::vector<ChurnModel> all_churn_models();

/// Stateful request proposer.
class ChurnGenerator {
 public:
  ChurnGenerator(ChurnModel model, Rng rng);

  /// Propose the next topological request for the current tree.  Always
  /// valid at proposal time (alive subjects, non-root removals); may fall
  /// back to an add-leaf when the model's preferred move is impossible.
  [[nodiscard]] core::RequestSpec next(const tree::DynamicTree& t);

 private:
  [[nodiscard]] core::RequestSpec add_leaf(const tree::DynamicTree& t);
  [[nodiscard]] core::RequestSpec remove_node(const tree::DynamicTree& t);
  [[nodiscard]] core::RequestSpec add_internal(const tree::DynamicTree& t);

  ChurnModel model_;
  Rng rng_;
  std::int64_t burst_left_ = 0;  ///< kFlashCrowd phase counter
  bool joining_ = true;
};

}  // namespace dyncon::workload

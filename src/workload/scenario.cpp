#include "workload/scenario.hpp"

#include <sstream>
#include <vector>

#include "workload/shapes.hpp"

namespace dyncon::workload {

using core::Outcome;
using core::RequestSpec;
using core::Result;

void ScenarioStats::count(const Result& r) {
  ++requests;
  switch (r.outcome) {
    case Outcome::kGranted:
      ++granted;
      break;
    case Outcome::kRejected:
      ++rejected;
      break;
    case Outcome::kMoot:
      ++moot;
      break;
    case Outcome::kExhausted:
    case Outcome::kTerminated:
      ++other;
      break;
  }
}

std::string ScenarioStats::str() const {
  std::ostringstream os;
  os << "requests=" << requests << " granted=" << granted
     << " rejected=" << rejected << " moot=" << moot << " other=" << other;
  return os.str();
}

namespace {

RequestSpec propose(tree::DynamicTree& tree, ChurnGenerator& churn,
                    double event_fraction, Rng& rng) {
  if (rng.chance(event_fraction)) {
    return RequestSpec{RequestSpec::Type::kEvent, random_node(tree, rng)};
  }
  return churn.next(tree);
}

Result submit_sync(core::IController& ctrl, const RequestSpec& spec) {
  switch (spec.type) {
    case RequestSpec::Type::kEvent:
      return ctrl.request_event(spec.subject);
    case RequestSpec::Type::kAddLeaf:
      return ctrl.request_add_leaf(spec.subject);
    case RequestSpec::Type::kAddInternal:
      return ctrl.request_add_internal_above(spec.subject);
    case RequestSpec::Type::kRemove:
      return ctrl.request_remove(spec.subject);
  }
  return Result{};
}

}  // namespace

ScenarioStats run_churn(core::IController& ctrl, tree::DynamicTree& tree,
                        ChurnGenerator& churn, std::uint64_t steps,
                        double event_fraction, Rng& rng) {
  ScenarioStats stats;
  for (std::uint64_t i = 0; i < steps; ++i) {
    stats.count(submit_sync(ctrl, propose(tree, churn, event_fraction, rng)));
  }
  return stats;
}

ScenarioStats run_churn_async(core::DistributedController& ctrl,
                              sim::EventQueue& queue,
                              tree::DynamicTree& tree, ChurnGenerator& churn,
                              std::uint64_t steps, std::uint64_t burst,
                              double event_fraction, Rng& rng) {
  ScenarioStats stats;
  std::uint64_t remaining = steps;
  while (remaining > 0) {
    const std::uint64_t k = std::min(burst, remaining);
    remaining -= k;
    for (std::uint64_t i = 0; i < k; ++i) {
      ctrl.submit(propose(tree, churn, event_fraction, rng),
                  [&stats](const Result& r) { stats.count(r); });
    }
    queue.run();  // drain the burst (and any reject flood it triggers)
  }
  return stats;
}

ScenarioStats run_churn_timed(core::DistributedController& ctrl,
                              sim::EventQueue& queue,
                              tree::DynamicTree& tree, ChurnGenerator& churn,
                              std::uint64_t steps, ArrivalProcess& arrivals,
                              double event_fraction, Rng& rng) {
  ScenarioStats stats;
  SimTime when = queue.now();
  for (std::uint64_t i = 0; i < steps; ++i) {
    when += arrivals.next_gap();
    queue.schedule_at(when, [&] {
      // Propose against the topology as it stands at the arrival instant.
      ctrl.submit(propose(tree, churn, event_fraction, rng),
                  [&stats](const Result& r) { stats.count(r); });
    });
  }
  queue.run();
  return stats;
}

}  // namespace dyncon::workload

#include "workload/churn.hpp"

#include "workload/shapes.hpp"

namespace dyncon::workload {

using core::RequestSpec;

const char* churn_name(ChurnModel m) {
  switch (m) {
    case ChurnModel::kGrowOnly:
      return "grow";
    case ChurnModel::kBirthDeath:
      return "birthdeath";
    case ChurnModel::kInternalChurn:
      return "internal";
    case ChurnModel::kFlashCrowd:
      return "flashcrowd";
    case ChurnModel::kShrink:
      return "shrink";
  }
  return "?";
}

std::vector<ChurnModel> all_churn_models() {
  return {ChurnModel::kGrowOnly, ChurnModel::kBirthDeath,
          ChurnModel::kInternalChurn, ChurnModel::kFlashCrowd,
          ChurnModel::kShrink};
}

ChurnGenerator::ChurnGenerator(ChurnModel model, Rng rng)
    : model_(model), rng_(rng) {}

RequestSpec ChurnGenerator::add_leaf(const tree::DynamicTree& t) {
  return RequestSpec{RequestSpec::Type::kAddLeaf, random_node(t, rng_)};
}

RequestSpec ChurnGenerator::remove_node(const tree::DynamicTree& t) {
  if (t.size() < 2) return add_leaf(t);
  return RequestSpec{RequestSpec::Type::kRemove, random_non_root(t, rng_)};
}

RequestSpec ChurnGenerator::add_internal(const tree::DynamicTree& t) {
  if (t.size() < 2) return add_leaf(t);
  return RequestSpec{RequestSpec::Type::kAddInternal,
                     random_non_root(t, rng_)};
}

RequestSpec ChurnGenerator::next(const tree::DynamicTree& t) {
  switch (model_) {
    case ChurnModel::kGrowOnly:
      return add_leaf(t);
    case ChurnModel::kBirthDeath:
      return rng_.chance(0.5) ? add_leaf(t) : remove_node(t);
    case ChurnModel::kInternalChurn: {
      switch (rng_.uniform(0, 3)) {
        case 0:
          return add_leaf(t);
        case 1:
          return remove_node(t);
        case 2:
          return add_internal(t);
        default:
          return remove_node(t);
      }
    }
    case ChurnModel::kFlashCrowd: {
      if (burst_left_ <= 0) {
        joining_ = !joining_;
        burst_left_ =
            static_cast<std::int64_t>(rng_.uniform(8, 64));
      }
      --burst_left_;
      return joining_ ? add_leaf(t) : remove_node(t);
    }
    case ChurnModel::kShrink:
      return remove_node(t);
  }
  return add_leaf(t);
}

}  // namespace dyncon::workload

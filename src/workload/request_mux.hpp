#pragma once

// Front-end request multiplexer for the forest runtime.
//
// Models a large closed-loop user population driving a *forest* of
// controller-managed trees: every user repeatedly (1) picks a tree — Zipf
// skewed, so a few trees are hot the way a few tenants always are —
// (2) issues one grow / shrink / permit request against it, (3) waits for
// the completion, thinks, and goes again.  First arrivals are paced by an
// ArrivalProcess (on/off modulated by default: traffic comes in waves).
//
// Determinism is the whole design: every user owns a split-chain Rng, so
// the request stream of user u is a pure function of (seed, u) and of the
// completion times the engine feeds back — never of how trees are sharded
// or which thread served them.  The engine clamps follow-up arrivals to
// its next virtual-time window edge by passing `floor`; the clamp amount
// is recorded in the forest.mux.defer histogram.

#include <cstdint>
#include <vector>

#include "obs/span.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "workload/arrival.hpp"

namespace dyncon::workload {

/// What a forest user asks a tree for.
enum class ForestOp : std::uint8_t {
  kPermit,   ///< non-topological event request (a "ticket")
  kGrow,     ///< add-leaf under a popular site
  kShrink,   ///< remove a previously grown leaf
  kDestroy,  ///< tenant teardown: drop the tree's state entirely
};

[[nodiscard]] constexpr const char* forest_op_name(ForestOp op) {
  switch (op) {
    case ForestOp::kPermit:
      return "permit";
    case ForestOp::kGrow:
      return "grow";
    case ForestOp::kShrink:
      return "shrink";
    case ForestOp::kDestroy:
      return "destroy";
  }
  return "?";
}

struct MuxConfig {
  std::uint64_t users = 1024;
  std::uint64_t trees = 64;
  std::uint64_t requests_per_user = 8;
  /// Tree-popularity skew: 0 = uniform, ~1 = classic Zipf.
  double zipf_s = 1.1;
  /// Request mix; the permit fraction is the remainder.
  double grow_fraction = 0.15;
  double shrink_fraction = 0.10;
  /// Fraction of requests that tear the target tree down (tenant churn).
  /// Default 0 keeps the draw sequence — and hence every seeded stream —
  /// exactly what it was before the knob existed.
  double destroy_fraction = 0.0;
  /// Mean think time between a completion and the user's next request.
  SimTime mean_think = 12;
  /// First arrivals are paced by this process (gap per user).
  ArrivalKind arrivals = ArrivalKind::kOnOff;
};

/// One routed request: user `user` wants `op` on tree `tree`, submittable
/// from simulated time `ready` on.  `trace` is the request's causal trace
/// id (dense, 1-based issue order — a pure function of the request stream,
/// so it is shard-count invariant); it rides in this engine-side struct,
/// never on the wire.
struct MuxRequest {
  SimTime ready = 0;
  std::uint64_t user = 0;
  obs::TraceId trace = obs::kNoTrace;
  std::uint32_t tree = 0;
  ForestOp op = ForestOp::kPermit;
};

class RequestMux {
 public:
  RequestMux(MuxConfig cfg, std::uint64_t seed);

  /// Every user's first request, sorted by (ready, user).  Call once.
  [[nodiscard]] std::vector<MuxRequest> initial_requests();

  /// Compute user `user`'s next request after a completion at time `done`.
  /// `floor` is the earliest admissible arrival time (the engine's next
  /// window edge); think time pushes past it, never before.  Returns false
  /// when the user has exhausted its request budget.
  ///
  /// Also CLOSES the completed request: observes its end-to-end latency
  /// (done - ready) in the req.latency.<op> histogram and, when a SpanSink
  /// is installed, emits the trace's root span [ready, done].  Callers
  /// drive this once per completion, in global (done, user) order, so the
  /// emission order is shard-count invariant.
  bool next_request(std::uint64_t user, SimTime done, SimTime floor,
                    MuxRequest& out);

  [[nodiscard]] std::uint64_t users() const { return cfg_.users; }
  [[nodiscard]] std::uint64_t trees() const { return cfg_.trees; }
  [[nodiscard]] std::uint64_t total_requests() const {
    return cfg_.users * cfg_.requests_per_user;
  }
  /// Requests handed out so far (initial + follow-ups).
  [[nodiscard]] std::uint64_t issued() const { return issued_; }
  [[nodiscard]] const ZipfSelector& tree_selector() const { return zipf_; }

 private:
  struct UserState {
    Rng rng;
    std::uint64_t remaining = 0;
    MuxRequest pending;  ///< the outstanding request (valid iff in_flight)
    bool in_flight = false;
  };

  /// Draw tree + op from the user's own stream (shard-schedule invariant).
  void draw(UserState& u, MuxRequest& out);
  [[nodiscard]] SimTime think(UserState& u);
  /// Close `u`'s in-flight request at completion time `done`: latency
  /// histogram + root span.
  void close_pending(UserState& u, SimTime done);

  MuxConfig cfg_;
  ZipfSelector zipf_;
  std::uint64_t pacing_seed_;  ///< seeds the initial-ramp ArrivalProcess
  std::vector<UserState> users_;
  std::uint64_t issued_ = 0;
  obs::TraceId next_trace_ = 0;  ///< last issued trace id (1-based)
  bool initial_done_ = false;
};

}  // namespace dyncon::workload

#include "workload/arrival.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dyncon::workload {

UniformArrivals::UniformArrivals(SimTime gap) : gap_(gap) {}

SimTime UniformArrivals::next_gap() { return gap_; }

std::string UniformArrivals::name() const {
  return "uniform(" + std::to_string(gap_) + ")";
}

PoissonArrivals::PoissonArrivals(Rng rng, double mean_gap) : rng_(rng) {
  DYNCON_REQUIRE(mean_gap >= 1.0, "mean gap must be >= 1 tick");
  // The floor-of-exponential draw below is the "failures before success"
  // geometric with mean (1-p)/p, so solve that for the requested mean.
  p_ = 1.0 / (mean_gap + 1.0);
}

SimTime PoissonArrivals::next_gap() {
  // Geometric via inverse CDF: gap = floor(ln(U) / ln(1-p)).
  const double u = rng_.uniform01();
  if (u <= 0.0) return 0;
  const double g = std::floor(std::log(1.0 - u) / std::log(1.0 - p_));
  return g < 0 ? 0 : static_cast<SimTime>(g);
}

std::string PoissonArrivals::name() const {
  return "poisson(p=" + std::to_string(p_) + ")";
}

BurstyArrivals::BurstyArrivals(Rng rng, std::uint64_t burst, SimTime pause)
    : rng_(rng), burst_(burst), pause_(pause), left_in_burst_(burst) {
  DYNCON_REQUIRE(burst >= 1, "burst must be >= 1");
  DYNCON_REQUIRE(pause >= 1, "pause must be >= 1");
}

SimTime BurstyArrivals::next_gap() {
  if (left_in_burst_ > 0) {
    --left_in_burst_;
    return 0;
  }
  left_in_burst_ = rng_.uniform(1, burst_);
  return pause_ + rng_.uniform(0, pause_ / 2 + 1);
}

std::string BurstyArrivals::name() const {
  return "bursty(b=" + std::to_string(burst_) +
         ",pause=" + std::to_string(pause_) + ")";
}

OnOffArrivals::OnOffArrivals(Rng rng, std::unique_ptr<ArrivalProcess> base,
                             SimTime on_span, SimTime off_span)
    : rng_(rng),
      base_(std::move(base)),
      on_span_(on_span),
      off_span_(off_span),
      left_in_on_(on_span) {
  DYNCON_REQUIRE(base_ != nullptr, "base arrival process required");
  DYNCON_REQUIRE(on_span >= 1, "on span must be >= 1");
  DYNCON_REQUIRE(off_span >= 1, "off span must be >= 1");
}

SimTime OnOffArrivals::next_gap() {
  const SimTime gap = base_->next_gap();
  // Spend the base gap against the ON span; every exhausted span inserts
  // one OFF pause (jittered up to +50%) before arrivals resume.  Gaps
  // longer than several spans spend several, exactly as wall time would —
  // the base gap elapses in full, plus every pause it straddled.
  SimTime remaining = gap;
  SimTime pause = 0;
  while (remaining >= left_in_on_) {
    remaining -= left_in_on_;
    left_in_on_ = on_span_;
    pause += off_span_ + rng_.uniform(0, off_span_ / 2 + 1);
  }
  left_in_on_ -= remaining;
  return gap + pause;
}

std::string OnOffArrivals::name() const {
  return "onoff(on=" + std::to_string(on_span_) +
         ",off=" + std::to_string(off_span_) + "," + base_->name() + ")";
}

std::unique_ptr<ArrivalProcess> make_arrivals(ArrivalKind kind,
                                              std::uint64_t seed) {
  Rng rng(seed);
  switch (kind) {
    case ArrivalKind::kUniform:
      return std::make_unique<UniformArrivals>(4);
    case ArrivalKind::kPoisson:
      return std::make_unique<PoissonArrivals>(rng, 4.0);
    case ArrivalKind::kBursty:
      return std::make_unique<BurstyArrivals>(rng, 12, 64);
    case ArrivalKind::kOnOff: {
      Rng base_rng = rng.split();
      return std::make_unique<OnOffArrivals>(
          rng, std::make_unique<PoissonArrivals>(base_rng, 3.0),
          /*on_span=*/96, /*off_span=*/192);
    }
  }
  throw ContractError("unknown ArrivalKind");
}

const char* arrival_kind_name(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kUniform:
      return "uniform";
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kBursty:
      return "bursty";
    case ArrivalKind::kOnOff:
      return "onoff";
  }
  return "?";
}

ZipfSelector::ZipfSelector(std::size_t n, double s) : s_(s) {
  DYNCON_REQUIRE(n >= 1, "selector needs at least one index");
  DYNCON_REQUIRE(s >= 0.0, "zipf exponent must be non-negative");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (std::size_t i = 0; i < n; ++i) cdf_[i] /= total;
  cdf_.back() = 1.0;  // guard against rounding keeping it below u
}

std::size_t ZipfSelector::pick(Rng& rng) const {
  const double u = rng.uniform01();
  // First index with cdf >= u (cdf is strictly increasing).
  std::size_t lo = 0;
  std::size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfSelector::probability(std::size_t i) const {
  DYNCON_REQUIRE(i < cdf_.size(), "index out of range");
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace dyncon::workload

#include "workload/arrival.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dyncon::workload {

UniformArrivals::UniformArrivals(SimTime gap) : gap_(gap) {}

SimTime UniformArrivals::next_gap() { return gap_; }

std::string UniformArrivals::name() const {
  return "uniform(" + std::to_string(gap_) + ")";
}

PoissonArrivals::PoissonArrivals(Rng rng, double mean_gap) : rng_(rng) {
  DYNCON_REQUIRE(mean_gap >= 1.0, "mean gap must be >= 1 tick");
  // The floor-of-exponential draw below is the "failures before success"
  // geometric with mean (1-p)/p, so solve that for the requested mean.
  p_ = 1.0 / (mean_gap + 1.0);
}

SimTime PoissonArrivals::next_gap() {
  // Geometric via inverse CDF: gap = floor(ln(U) / ln(1-p)).
  const double u = rng_.uniform01();
  if (u <= 0.0) return 0;
  const double g = std::floor(std::log(1.0 - u) / std::log(1.0 - p_));
  return g < 0 ? 0 : static_cast<SimTime>(g);
}

std::string PoissonArrivals::name() const {
  return "poisson(p=" + std::to_string(p_) + ")";
}

BurstyArrivals::BurstyArrivals(Rng rng, std::uint64_t burst, SimTime pause)
    : rng_(rng), burst_(burst), pause_(pause), left_in_burst_(burst) {
  DYNCON_REQUIRE(burst >= 1, "burst must be >= 1");
  DYNCON_REQUIRE(pause >= 1, "pause must be >= 1");
}

SimTime BurstyArrivals::next_gap() {
  if (left_in_burst_ > 0) {
    --left_in_burst_;
    return 0;
  }
  left_in_burst_ = rng_.uniform(1, burst_);
  return pause_ + rng_.uniform(0, pause_ / 2 + 1);
}

std::string BurstyArrivals::name() const {
  return "bursty(b=" + std::to_string(burst_) +
         ",pause=" + std::to_string(pause_) + ")";
}

std::unique_ptr<ArrivalProcess> make_arrivals(ArrivalKind kind,
                                              std::uint64_t seed) {
  Rng rng(seed);
  switch (kind) {
    case ArrivalKind::kUniform:
      return std::make_unique<UniformArrivals>(4);
    case ArrivalKind::kPoisson:
      return std::make_unique<PoissonArrivals>(rng, 4.0);
    case ArrivalKind::kBursty:
      return std::make_unique<BurstyArrivals>(rng, 12, 64);
  }
  throw ContractError("unknown ArrivalKind");
}

const char* arrival_kind_name(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kUniform:
      return "uniform";
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kBursty:
      return "bursty";
  }
  return "?";
}

}  // namespace dyncon::workload

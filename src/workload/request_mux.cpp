#include "workload/request_mux.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace dyncon::workload {

RequestMux::RequestMux(MuxConfig cfg, std::uint64_t seed)
    : cfg_(cfg), zipf_(static_cast<std::size_t>(cfg.trees), cfg.zipf_s) {
  DYNCON_REQUIRE(cfg_.users >= 1, "at least one user");
  DYNCON_REQUIRE(cfg_.trees >= 1, "at least one tree");
  DYNCON_REQUIRE(cfg_.trees <= UINT32_MAX, "tree ids are 32-bit");
  DYNCON_REQUIRE(cfg_.grow_fraction >= 0.0 && cfg_.shrink_fraction >= 0.0 &&
                     cfg_.destroy_fraction >= 0.0 &&
                     cfg_.grow_fraction + cfg_.shrink_fraction +
                             cfg_.destroy_fraction <=
                         1.0,
                 "request mix fractions must form a distribution");
  DYNCON_REQUIRE(cfg_.mean_think >= 1, "mean think time must be >= 1");
  // One split chain for the users: user u's stream depends only on
  // (seed, u), exactly like util::derive_run_rngs.  The pacing seed is
  // drawn first so the initial-ramp process is independent of every user
  // stream.
  Rng parent(seed);
  pacing_seed_ = parent.next();
  users_.resize(static_cast<std::size_t>(cfg_.users));
  for (auto& u : users_) {
    u.rng = parent.split();
    u.remaining = cfg_.requests_per_user;
  }
}

void RequestMux::draw(UserState& u, MuxRequest& out) {
  out.tree = static_cast<std::uint32_t>(zipf_.pick(u.rng));
  const double mix = u.rng.uniform01();
  if (mix < cfg_.grow_fraction) {
    out.op = ForestOp::kGrow;
  } else if (mix < cfg_.grow_fraction + cfg_.shrink_fraction) {
    out.op = ForestOp::kShrink;
  } else if (mix < cfg_.grow_fraction + cfg_.shrink_fraction +
                       cfg_.destroy_fraction) {
    // The destroy band sits after grow+shrink so a 0.0 fraction leaves the
    // branch thresholds — and every seeded op sequence — untouched.
    out.op = ForestOp::kDestroy;
  } else {
    out.op = ForestOp::kPermit;
  }
}

SimTime RequestMux::think(UserState& u) {
  // Geometric-ish think time with the configured mean, cheap and seeded.
  return 1 + u.rng.uniform(0, 2 * cfg_.mean_think);
}

std::vector<MuxRequest> RequestMux::initial_requests() {
  DYNCON_REQUIRE(!initial_done_, "initial_requests is one-shot");
  initial_done_ = true;
  std::vector<MuxRequest> out;
  if (cfg_.requests_per_user == 0) return out;
  out.reserve(users_.size());
  // Arrival times come from one shared modulated process; the i-th arrival
  // belongs to user i, so the ramp is a pure function of the seed.
  const auto arrivals = make_arrivals(cfg_.arrivals, pacing_seed_);
  SimTime when = 0;
  for (std::size_t i = 0; i < users_.size(); ++i) {
    when += arrivals->next_gap();
    MuxRequest req;
    req.ready = when;
    req.user = i;
    req.trace = ++next_trace_;
    draw(users_[i], req);
    users_[i].remaining -= 1;
    users_[i].pending = req;
    users_[i].in_flight = true;
    out.push_back(req);
  }
  issued_ += out.size();
  std::sort(out.begin(), out.end(), [](const MuxRequest& a,
                                       const MuxRequest& b) {
    return a.ready != b.ready ? a.ready < b.ready : a.user < b.user;
  });
  return out;
}

void RequestMux::close_pending(UserState& u, SimTime done) {
  if (!u.in_flight) return;
  u.in_flight = false;
  const MuxRequest& req = u.pending;
  // End-to-end latency, arrival to completion, per op kind.  Always-on
  // (shard-count invariant: ready and done both are), unlike the span.
  static thread_local obs::HistogramHandle lat_permit("req.latency.permit");
  static thread_local obs::HistogramHandle lat_grow("req.latency.grow");
  static thread_local obs::HistogramHandle lat_shrink("req.latency.shrink");
  static thread_local obs::HistogramHandle lat_destroy("req.latency.destroy");
  const SimTime latency = done - req.ready;
  switch (req.op) {
    case ForestOp::kPermit:
      lat_permit.observe(latency);
      break;
    case ForestOp::kGrow:
      lat_grow.observe(latency);
      break;
    case ForestOp::kShrink:
      lat_shrink.observe(latency);
      break;
    case ForestOp::kDestroy:
      lat_destroy.observe(latency);
      break;
  }
  if (obs::SpanSink* sink = obs::spans()) {
    obs::Span s;
    s.trace = req.trace;
    s.id = obs::kRootSpanId;
    s.kind = obs::SpanKind::kRequest;
    s.op = static_cast<std::uint8_t>(req.op);
    s.label = forest_op_name(req.op);
    s.begin = req.ready;
    s.end = done;
    sink->emit(s);
  }
}

bool RequestMux::next_request(std::uint64_t user, SimTime done, SimTime floor,
                              MuxRequest& out) {
  UserState& u = users_.at(static_cast<std::size_t>(user));
  close_pending(u, done);
  if (u.remaining == 0) return false;
  u.remaining -= 1;
  const SimTime earliest = done + think(u);
  out.ready = std::max(earliest, floor);
  out.user = user;
  out.trace = ++next_trace_;
  draw(u, out);
  u.pending = out;
  u.in_flight = true;
  // How much the window-edge clamp deferred this arrival beyond its natural
  // time — the cost of batched cross-shard exchange, in ticks.
  static thread_local obs::HistogramHandle defer("forest.mux.defer");
  defer.observe(out.ready - earliest);
  ++issued_;
  return true;
}

}  // namespace dyncon::workload

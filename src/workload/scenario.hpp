#pragma once

// Scenario drivers: feed request streams to controllers and tally outcomes.

#include <cstdint>
#include <string>

#include "core/controller_iface.hpp"
#include "core/distributed_controller.hpp"
#include "workload/arrival.hpp"
#include "workload/churn.hpp"

namespace dyncon::workload {

struct ScenarioStats {
  std::uint64_t requests = 0;
  std::uint64_t granted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t moot = 0;
  std::uint64_t other = 0;  ///< exhausted / terminated

  void count(const core::Result& r);
  [[nodiscard]] std::string str() const;
};

/// Drive a synchronous controller with `steps` requests: each step is a
/// churn proposal with probability (1 - event_fraction), otherwise a
/// non-topological event at a random node.
ScenarioStats run_churn(core::IController& ctrl, tree::DynamicTree& tree,
                        ChurnGenerator& churn, std::uint64_t steps,
                        double event_fraction, Rng& rng);

/// Submit the same mixture to an asynchronous distributed controller in
/// bursts of `burst` concurrent requests (stress for the lock/queue
/// machinery), running the event loop dry between bursts.
ScenarioStats run_churn_async(core::DistributedController& ctrl,
                              sim::EventQueue& queue,
                              tree::DynamicTree& tree, ChurnGenerator& churn,
                              std::uint64_t steps, std::uint64_t burst,
                              double event_fraction, Rng& rng);

/// Open-loop driver: submissions fire at the arrival process's simulated
/// times, overlapping freely with the protocol's own traffic (each request
/// is proposed against the topology at its arrival instant).  Runs the
/// queue to completion before returning.
ScenarioStats run_churn_timed(core::DistributedController& ctrl,
                              sim::EventQueue& queue,
                              tree::DynamicTree& tree, ChurnGenerator& churn,
                              std::uint64_t steps, ArrivalProcess& arrivals,
                              double event_fraction, Rng& rng);

}  // namespace dyncon::workload

#pragma once

// dyncon — Controller and Estimator for Dynamic Networks (Korman & Kutten,
// PODC 2007 / Inf. Comput. 2013).  Umbrella header: include this to get
// the whole public API; fine-grained headers are listed per subsystem.

// Observability (metrics registry, typed events, run reports).
#include "obs/metrics.hpp"          // counters/gauges/histograms + ScopeTimer
#include "obs/events.hpp"           // typed trace events + EventTrace ring
#include "obs/report.hpp"           // RunReport JSON exporter
#include "obs/net_adapter.hpp"      // NetStats <-> registry/report bridge

// Substrates.
#include "sim/delay.hpp"            // message-delay adversaries
#include "sim/event_queue.hpp"      // deterministic discrete-event loop
#include "sim/network.hpp"          // message transport + cost accounting
#include "sim/trace.hpp"            // optional execution traces
#include "tree/dynamic_tree.hpp"    // the dynamic rooted tree (§2.1.2)
#include "tree/validate.hpp"        // structural audits
#include "agent/convergecast.hpp"   // broadcast/upcast as real messages
#include "agent/runtime.hpp"        // agent id + message-size model
#include "agent/taxi.hpp"           // Up/Down hops with graceful delivery
#include "agent/whiteboard.hpp"     // locks + FIFO wait queues (§4.3)

// The paper's contribution.
#include "core/params.hpp"                  // phi/psi arithmetic (§3.1)
#include "core/package.hpp"                 // permit/reject packages
#include "core/domain.hpp"                  // §3.2 domain invariants
#include "core/controller_iface.hpp"        // Outcome/Result/RequestSpec
#include "core/centralized_controller.hpp"  // GrantOrReject + Proc
#include "core/iterated_controller.hpp"     // Obs. 3.4
#include "core/terminating_controller.hpp"  // Obs. 2.1
#include "core/adaptive_controller.hpp"     // Thm. 3.5 (unknown U)
#include "core/distributed_controller.hpp"  // §4 agents + locks
#include "core/distributed_iterated.hpp"    // Thm. 4.7 / Obs. 2.1
#include "core/distributed_adaptive.hpp"    // Thm. 4.9 / App. A
#include "core/message_meter.hpp"           // §2.2 metered protocols
#include "core/aaps_controller.hpp"         // the [4] baseline
#include "core/trivial_controller.hpp"      // the Omega(n)/request baseline

// Applications (§5).
#include "apps/size_estimation.hpp"
#include "apps/name_assignment.hpp"
#include "apps/subtree_estimator.hpp"
#include "apps/heavy_child.hpp"
#include "apps/ancestry_labeling.hpp"
#include "apps/tree_routing.hpp"
#include "apps/nca_labeling.hpp"
#include "apps/majority_commit.hpp"
#include "apps/distributed_size_estimation.hpp"
#include "apps/distributed_name_assignment.hpp"
#include "apps/distributed_heavy_child.hpp"
#include "apps/distributed_tree_routing.hpp"
#include "apps/distributed_nca_labeling.hpp"
#include "apps/distributed_ancestry_labeling.hpp"
#include "apps/two_phase_commit.hpp"

// Workloads for experiments and tests.
#include "workload/arrival.hpp"
#include "workload/churn.hpp"
#include "workload/request_mux.hpp"
#include "workload/scenario.hpp"
#include "workload/script.hpp"
#include "workload/shapes.hpp"

// Forest runtime: sharded many-tree engine on one deterministic clock.
#include "forest/forest.hpp"

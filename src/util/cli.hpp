#pragma once

// Tiny shared CLI-flag parsing for bench/tool binaries.
//
// Every evaluation binary speaks the same dialect — `--flag=value` and the
// two-token `--flag value` — so sweep flags like `--jobs` and `--base-seed`
// behave identically across all of them (bench::Run wires the standard
// set; tools that do not use bench::Run call these directly).  Unknown
// flags are each binary's business: these helpers only *find* a flag, they
// never reject the rest of argv.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

namespace dyncon::util {

/// The value of `--name=<v>` or `--name <v>` in argv, if present (last
/// occurrence wins, like most CLIs).
inline std::optional<std::string> flag_value(int argc, char** argv,
                                             std::string_view name) {
  std::optional<std::string> found;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind(name, 0) != 0) continue;
    if (arg.size() > name.size() && arg[name.size()] == '=') {
      found = std::string(arg.substr(name.size() + 1));
    } else if (arg == name && i + 1 < argc) {
      found = argv[i + 1];
    }
  }
  return found;
}

/// Integer flag with a default; malformed values fall back to the default.
inline std::uint64_t flag_u64(int argc, char** argv, std::string_view name,
                              std::uint64_t fallback) {
  const auto v = flag_value(argc, argv, name);
  if (!v || v->empty()) return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v->c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

/// Validated parse of a worker/shard count: the value must be a plain
/// decimal integer >= 1.  Values above `max_value` are clamped (a sweep on
/// a huge host should degrade, not explode); zero and garbage are reported
/// via `error` so callers can print the flag's name with the message.
/// Returns nullopt on invalid input.
inline std::optional<unsigned> parse_count(std::string_view text,
                                           unsigned max_value,
                                           std::string* error = nullptr,
                                           bool* clamped = nullptr) {
  if (clamped != nullptr) *clamped = false;
  const std::string value(text);
  if (value.empty()) {
    if (error != nullptr) *error = "empty value";
    return std::nullopt;
  }
  // Strictly digits: strtoull alone would quietly accept leading
  // whitespace and signs, which is exactly the silent misparse this
  // helper exists to refuse.
  if (value.find_first_not_of("0123456789") != std::string::npos) {
    if (error != nullptr) *error = "'" + value + "' is not a whole number";
    return std::nullopt;
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    if (error != nullptr) *error = "'" + value + "' is not a whole number";
    return std::nullopt;
  }
  if (parsed == 0) {
    if (error != nullptr) {
      *error = "must be >= 1 (0 workers cannot make progress)";
    }
    return std::nullopt;
  }
  if (parsed > max_value) {
    if (clamped != nullptr) *clamped = true;
    return max_value;
  }
  return static_cast<unsigned>(parsed);
}

/// `--jobs`/`--shards`-style count flag: absent -> `fallback`; invalid (0,
/// negative, garbage) -> clear error on stderr and exit(2); above
/// `max_value` -> clamped with a warning.  Never silently misbehaves.
inline unsigned flag_count(int argc, char** argv, std::string_view name,
                           unsigned fallback, unsigned max_value = 256) {
  const auto v = flag_value(argc, argv, name);
  if (!v) return fallback;
  std::string error;
  bool clamped = false;
  const auto parsed = parse_count(*v, max_value, &error, &clamped);
  if (!parsed) {
    std::fprintf(stderr, "%.*s=%s: %s\n", static_cast<int>(name.size()),
                 name.data(), v->c_str(), error.c_str());
    std::exit(2);
  }
  if (clamped) {
    std::fprintf(stderr, "%.*s=%s: clamped to %u (sane maximum)\n",
                 static_cast<int>(name.size()), name.data(), v->c_str(),
                 max_value);
  }
  return *parsed;
}

/// True when `--name` appears at all (bare or with a value).
inline bool flag_present(int argc, char** argv, std::string_view name) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == name) return true;
    if (arg.rfind(name, 0) == 0 && arg.size() > name.size() &&
        arg[name.size()] == '=') {
      return true;
    }
  }
  return false;
}

}  // namespace dyncon::util

#pragma once

// Tiny shared CLI-flag parsing for bench/tool binaries.
//
// Every evaluation binary speaks the same dialect — `--flag=value` and the
// two-token `--flag value` — so sweep flags like `--jobs` and `--base-seed`
// behave identically across all of them (bench::Run wires the standard
// set; tools that do not use bench::Run call these directly).  Unknown
// flags are each binary's business: these helpers only *find* a flag, they
// never reject the rest of argv.

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

namespace dyncon::util {

/// The value of `--name=<v>` or `--name <v>` in argv, if present (last
/// occurrence wins, like most CLIs).
inline std::optional<std::string> flag_value(int argc, char** argv,
                                             std::string_view name) {
  std::optional<std::string> found;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind(name, 0) != 0) continue;
    if (arg.size() > name.size() && arg[name.size()] == '=') {
      found = std::string(arg.substr(name.size() + 1));
    } else if (arg == name && i + 1 < argc) {
      found = argv[i + 1];
    }
  }
  return found;
}

/// Integer flag with a default; malformed values fall back to the default.
inline std::uint64_t flag_u64(int argc, char** argv, std::string_view name,
                              std::uint64_t fallback) {
  const auto v = flag_value(argc, argv, name);
  if (!v || v->empty()) return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v->c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

/// True when `--name` appears at all (bare or with a value).
inline bool flag_present(int argc, char** argv, std::string_view name) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == name) return true;
    if (arg.rfind(name, 0) == 0 && arg.size() > name.size() &&
        arg[name.size()] == '=') {
      return true;
    }
  }
  return false;
}

}  // namespace dyncon::util

#include "util/thread_pool.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace dyncon::util {

ThreadPool::ThreadPool(unsigned workers, std::size_t queue_capacity)
    : capacity_(std::max<std::size_t>(queue_capacity, 1)) {
  const unsigned count = std::max(1u, workers);
  threads_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mu_);
    stop_ = true;
  }
  not_empty_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [this] { return queue_.size() < capacity_; });
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  not_empty_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

unsigned ThreadPool::hardware_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      not_empty_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    try {
      task();
    } catch (...) {
      std::unique_lock lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::unique_lock lock(mu_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

namespace {

/// Per-index error collection shared by the inline and pooled paths: run
/// every index, record failures keyed by index, rethrow the lowest.
struct IndexErrors {
  std::mutex mu;
  std::map<std::uint64_t, std::exception_ptr> errors;

  void record(std::uint64_t i) {
    std::scoped_lock lock(mu);
    errors.emplace(i, std::current_exception());
  }
  void rethrow_lowest() {
    if (!errors.empty()) std::rethrow_exception(errors.begin()->second);
  }
};

}  // namespace

void ThreadPool::for_each(std::uint64_t n,
                          const std::function<void(std::uint64_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {  // nothing to fan out; same semantics without a hop
    fn(0);
    return;
  }
  IndexErrors errs;
  for (std::uint64_t i = 0; i < n; ++i) {
    submit([&fn, &errs, i] {
      try {
        fn(i);
      } catch (...) {
        errs.record(i);
      }
    });
  }
  wait_idle();  // tasks never leak exceptions, so this only synchronizes
  errs.rethrow_lowest();
}

void for_each_index(std::uint64_t n, unsigned jobs,
                    const std::function<void(std::uint64_t)>& fn) {
  if (n == 0) return;
  // Exceptions are recorded per index and the lowest-index one rethrown, so
  // the reported failure is the same whatever the worker count.
  if (jobs <= 1 || n == 1) {
    IndexErrors errs;
    for (std::uint64_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        errs.record(i);
      }
    }
    errs.rethrow_lowest();
  } else {
    const unsigned workers =
        static_cast<unsigned>(std::min<std::uint64_t>(jobs, n));
    ThreadPool pool(workers);
    pool.for_each(n, fn);
  }
}

std::vector<Rng> derive_run_rngs(std::uint64_t base_seed, std::uint64_t n) {
  std::vector<Rng> rngs;
  rngs.reserve(static_cast<std::size_t>(n));
  Rng parent(base_seed);
  for (std::uint64_t i = 0; i < n; ++i) rngs.push_back(parent.split());
  return rngs;
}

void parallel_for_runs(std::uint64_t n, unsigned jobs,
                       std::uint64_t base_seed,
                       const std::function<void(std::uint64_t, Rng)>& fn) {
  const std::vector<Rng> rngs = derive_run_rngs(base_seed, n);
  for_each_index(n, jobs, [&](std::uint64_t i) {
    fn(i, rngs[static_cast<std::size_t>(i)]);
  });
}

}  // namespace dyncon::util

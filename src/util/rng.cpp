#include "util/rng.hpp"

#include <cmath>

namespace dyncon {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  DYNCON_REQUIRE(lo <= hi, "uniform: empty range");
  const std::uint64_t span = hi - lo;
  if (span == UINT64_MAX) return next();
  // Rejection sampling to remove modulo bias.
  const std::uint64_t bound = span + 1;
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  std::uint64_t draw;
  do {
    draw = next();
  } while (draw >= limit);
  return lo + draw % bound;
}

double Rng::uniform01() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::uint64_t Rng::zipf_tail(std::uint64_t cap) {
  DYNCON_REQUIRE(cap >= 1, "zipf_tail: cap must be >= 1");
  // Inverse-CDF of P(X >= k) = 1/k on [1, cap]: X = 1/U clipped.
  const double u = uniform01();
  const double x = 1.0 / (u + 1.0 / static_cast<double>(cap));
  auto k = static_cast<std::uint64_t>(x);
  if (k < 1) k = 1;
  if (k > cap) k = cap;
  return k;
}

std::size_t Rng::index(std::size_t size) {
  DYNCON_REQUIRE(size > 0, "index: empty container");
  return static_cast<std::size_t>(uniform(0, size - 1));
}

Rng Rng::split() { return Rng(split_seed()); }

void Rng::set_state(const State& s) {
  DYNCON_REQUIRE((s[0] | s[1] | s[2] | s[3]) != 0,
                 "set_state: all-zero xoshiro state is absorbing");
  for (std::size_t i = 0; i < 4; ++i) s_[i] = s[i];
}

}  // namespace dyncon

#pragma once

// Streaming summary statistics used by benches and EXPERIMENTS reporting.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace dyncon {

/// Online mean/min/max/variance accumulator (Welford).
class Summary {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;

  /// "mean=… min=… max=… n=…" one-liner for bench output.
  [[nodiscard]] std::string str() const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact percentile over a stored sample (used for tail-latency style rows).
class Percentiles {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;  // an append after at() invalidates the sort
  }
  [[nodiscard]] double at(double q) const;  ///< q in [0,1]; 0 if empty.
  [[nodiscard]] std::size_t count() const { return xs_.size(); }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
};

/// Least-squares slope of log(y) vs log(x): empirical scaling exponent.
/// Returns 0 if fewer than two distinct points.
[[nodiscard]] double loglog_slope(const std::vector<double>& x,
                                  const std::vector<double>& y);

}  // namespace dyncon

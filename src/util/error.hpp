#pragma once

// Error-handling primitives for dyncon.
//
// Invariant violations inside the simulator or the controllers indicate a
// bug (either in this library or in how a scenario drives it), never a
// recoverable runtime condition, so they throw `dyncon::InvariantError`
// carrying the failing expression and location.  Tests catch these to turn
// violated protocol invariants into failures.

#include <source_location>
#include <stdexcept>
#include <string>

namespace dyncon {

/// Thrown when an internal invariant of the library is violated.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a caller passes arguments outside a function's contract.
class ContractError : public std::invalid_argument {
 public:
  explicit ContractError(const std::string& what)
      : std::invalid_argument(what) {}
};

namespace detail {
[[noreturn]] inline void invariant_failed(
    const char* expr, const std::string& msg,
    const std::source_location loc = std::source_location::current()) {
  throw InvariantError(std::string("invariant violated: ") + expr + " (" +
                       msg + ") at " + loc.file_name() + ":" +
                       std::to_string(loc.line()));
}
}  // namespace detail

}  // namespace dyncon

/// Checked in all build types: protocol invariants are the subject of this
/// library, so they are never compiled out.
#define DYNCON_INVARIANT(expr, msg)                   \
  do {                                                \
    if (!(expr)) {                                    \
      ::dyncon::detail::invariant_failed(#expr, msg); \
    }                                                 \
  } while (false)

/// Precondition check for public API entry points.
#define DYNCON_REQUIRE(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      throw ::dyncon::ContractError(std::string("precondition: ") +   \
                                    #expr + " (" + (msg) + ")");      \
    }                                                                 \
  } while (false)

#pragma once

// Small-buffer-only callable: the simulation hot path's replacement for
// std::function.
//
// Every scheduled event and every network delivery used to carry a
// std::function<void()>, and libstdc++ heap-allocates any capture larger
// than two pointers — one operator-new per message on the path every
// experiment times.  InlineFn stores the callable inline (kCapacity bytes),
// never touches the heap, and refuses at compile time anything that would
// not fit, so a capture that silently fit yesterday cannot silently start
// allocating tomorrow.
//
// Contract (see docs/PERFORMANCE.md):
//   - captures must fit kCapacity bytes and kAlign alignment;
//   - captures must be nothrow-move-constructible (relocation happens
//     inside the event heap's push/pop, which must not throw);
//   - InlineFn itself is move-only; the wrapped callable may be copyable
//     (lvalues are copied in, rvalues moved in);
//   - moved-from InlineFns are empty; invoking one is a contract violation.

#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>

#include "util/error.hpp"

namespace dyncon {

template <class Signature>
class InlineFn;  // primary template intentionally undefined

template <class R, class... Args>
class InlineFn<R(Args...)> {
 public:
  /// Inline capture budget.  64 bytes = one cache line; the largest capture
  /// in the tree (distributed_controller's [this, spec, done]) is 56 bytes.
  static constexpr std::size_t kCapacity = 64;
  static constexpr std::size_t kAlign = alignof(std::max_align_t);

  InlineFn() noexcept = default;
  InlineFn(std::nullptr_t) noexcept {}

  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                     std::is_invocable_r_v<R, D&, Args...>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors
                     // std::function's converting constructor
    static_assert(sizeof(D) <= kCapacity,
                  "InlineFn capture too large: trim the capture list or box "
                  "cold state behind a pointer (no heap fallback by design)");
    static_assert(alignof(D) <= kAlign,
                  "InlineFn capture over-aligned for inline storage");
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "InlineFn captures must be nothrow-move-constructible "
                  "(relocation happens inside noexcept heap maintenance)");
    ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
    ops_ = &ops_for<D>;
  }

  InlineFn(InlineFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      relocate_from(other);
      other.ops_ = nullptr;
    }
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        relocate_from(other);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  R operator()(Args... args) {
    DYNCON_REQUIRE(ops_ != nullptr, "invoking an empty InlineFn");
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    /// Trivially copyable + trivially destructible capture: relocation is
    /// an inline memcpy and destruction a no-op, so the hot paths (every
    /// queue slab move, every delivery continuation) skip both indirect
    /// calls.  Nearly every capture in the tree is a handful of PODs, so
    /// this is the common case, not an optimization corner.
    bool trivial;
  };

  template <class D>
  static constexpr Ops ops_for{
      [](void* p, Args&&... args) -> R {
        return static_cast<R>(
            (*static_cast<D*>(p))(std::forward<Args>(args)...));
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* p) noexcept { static_cast<D*>(p)->~D(); },
      std::is_trivially_copyable_v<D> && std::is_trivially_destructible_v<D>,
  };

  void relocate_from(InlineFn& other) noexcept {
    if (ops_->trivial) {
      std::memcpy(storage_, other.storage_, kCapacity);
    } else {
      ops_->relocate(storage_, other.storage_);
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (!ops_->trivial) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(kAlign) std::byte storage_[kCapacity];
};

}  // namespace dyncon

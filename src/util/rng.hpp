#pragma once

// Deterministic pseudo-random number generation.
//
// Every randomized component of the simulator (delay adversaries, workload
// generators, shuffles) draws from an explicitly seeded `Rng`, so any run is
// reproducible from its seed.  The generator is xoshiro256** seeded via
// splitmix64, which is fast, has a 256-bit state, and — unlike
// std::mt19937 — has a guaranteed identical stream across platforms.

#include <array>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace dyncon {

/// xoshiro256** PRNG.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return UINT64_MAX; }

  result_type operator()() { return next(); }

  /// Next raw 64-bit draw.
  std::uint64_t next();

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli(p) draw.
  bool chance(double p);

  /// Geometric-ish heavy-tail draw in [1, cap]: P(X >= k) ~ 1/k.
  std::uint64_t zipf_tail(std::uint64_t cap);

  /// Pick a uniformly random element index of a non-empty container size.
  std::size_t index(std::size_t size);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      std::size_t j = index(i + 1);
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// Derive an independent child generator (for per-component streams).
  Rng split();

  /// The seed that `split()` would construct its child from, without
  /// materializing the child.  `Rng(parent.split_seed())` produces exactly
  /// the same stream as `parent.split()` — this is what lets a forest of
  /// lazily-built trees record one u64 per tree instead of an Rng each.
  std::uint64_t split_seed() { return next() ^ 0xd6e8feb86659fd93ULL; }

  /// Raw 256-bit generator state, for hibernation snapshots.
  using State = std::array<std::uint64_t, 4>;
  [[nodiscard]] State state() const { return {s_[0], s_[1], s_[2], s_[3]}; }

  /// Restore a state previously captured with `state()`; the stream
  /// continues exactly where the captured generator left off.
  void set_state(const State& s);

 private:
  std::uint64_t s_[4];
};

}  // namespace dyncon

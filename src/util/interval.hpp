#pragma once

// Closed integer intervals [lo, hi].
//
// The name-assignment protocol (paper §5.2) represents the permits stored in
// the root and in every package as an explicit interval of "serial numbers";
// splitting a package splits its interval into two equal halves, and the
// identity handed to a joining node is the single integer in a size-one
// interval.  This type implements exactly that arithmetic.

#include <cstdint>
#include <ostream>

#include "util/error.hpp"

namespace dyncon {

/// Closed interval of 64-bit identifiers; may be empty.
class Interval {
 public:
  /// Empty interval.
  constexpr Interval() : lo_(1), hi_(0) {}

  /// Closed interval [lo, hi]; lo > hi denotes empty, normalized to {1,0}.
  constexpr Interval(std::uint64_t lo, std::uint64_t hi) : lo_(lo), hi_(hi) {
    if (lo_ > hi_) {
      lo_ = 1;
      hi_ = 0;
    }
  }

  [[nodiscard]] constexpr bool empty() const { return lo_ > hi_; }
  [[nodiscard]] constexpr std::uint64_t size() const {
    return empty() ? 0 : hi_ - lo_ + 1;
  }
  [[nodiscard]] constexpr std::uint64_t lo() const { return lo_; }
  [[nodiscard]] constexpr std::uint64_t hi() const { return hi_; }

  [[nodiscard]] constexpr bool contains(std::uint64_t x) const {
    return !empty() && lo_ <= x && x <= hi_;
  }

  [[nodiscard]] constexpr bool intersects(const Interval& o) const {
    if (empty() || o.empty()) return false;
    return lo_ <= o.hi_ && o.lo_ <= hi_;
  }

  /// Remove and return the lowest `k` elements as a new interval.
  /// Requires k <= size().
  Interval take_low(std::uint64_t k) {
    DYNCON_REQUIRE(k <= size(), "take_low: not enough elements");
    if (k == 0) return Interval{};
    Interval out(lo_, lo_ + k - 1);
    lo_ += k;
    if (lo_ > hi_) *this = Interval{};
    return out;
  }

  /// Remove and return the single lowest element.  Requires non-empty.
  std::uint64_t take_one() {
    DYNCON_REQUIRE(!empty(), "take_one on empty interval");
    return take_low(1).lo();
  }

  /// Split into two halves of equal size; requires even, non-zero size.
  [[nodiscard]] std::pair<Interval, Interval> split_half() const {
    DYNCON_REQUIRE(size() > 0 && size() % 2 == 0,
                   "split_half: size must be even and positive");
    const std::uint64_t mid = lo_ + size() / 2 - 1;
    return {Interval(lo_, mid), Interval(mid + 1, hi_)};
  }

  friend constexpr bool operator==(const Interval&, const Interval&) = default;

 private:
  std::uint64_t lo_;
  std::uint64_t hi_;
};

inline std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  if (iv.empty()) return os << "[]";
  return os << "[" << iv.lo() << "," << iv.hi() << "]";
}

}  // namespace dyncon

#pragma once

// Deterministic parallel execution of independent simulation runs.
//
// Every randomized component of the repo draws from an explicitly seeded
// `Rng`, so a run is a pure function of its seed — which makes replicated
// sweeps (benches, fuzzing, soaks) embarrassingly parallel.  The pieces:
//
//   * `ThreadPool`: a fixed-size worker pool over a bounded task queue.
//     Tasks are opaque `void()` callables; the first exception a task
//     throws is captured and rethrown from `wait_idle()`.
//
//   * `for_each_index(n, jobs, fn)`: run fn(0..n-1) across `jobs` workers.
//     With jobs <= 1 (or n <= 1) it runs inline, in index order, with no
//     threads — the serial path IS the parallel path's specification.
//     Exceptions are collected per index and the *lowest-index* one is
//     rethrown after all tasks finish, so failure reporting does not
//     depend on scheduling.
//
//   * `parallel_for_runs(n, jobs, base_seed, fn)`: `for_each_index` plus
//     deterministic seed derivation — run i receives the i-th generator of
//     an `Rng(base_seed).split()` chain, so its random stream depends only
//     on (base_seed, i), never on `jobs` or on which worker picked it up.
//     Results are bit-identical to serial execution by construction.
//
// The event loop inside each run stays single-threaded; parallelism exists
// only *between* runs (shared-nothing replication, docs/PERFORMANCE.md
// "Threading model").

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace dyncon::util {

/// Fixed-size worker pool with a bounded task queue.  `submit` blocks when
/// the queue is full (backpressure instead of unbounded memory); the
/// destructor drains the queue and joins.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned workers, std::size_t queue_capacity = 256);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; blocks while the queue holds `queue_capacity` tasks.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished, then rethrow the first
  /// exception any task threw (submission order is not defined here — use
  /// for_each_index for deterministic exception selection).
  void wait_idle();

  /// Run fn(i) for every i in [0, n) across this pool's workers and block
  /// until all have finished (a barrier).  Exceptions are collected per
  /// index and the lowest-index one is rethrown, exactly like
  /// for_each_index — but the pool is REUSED, so a caller that barriers
  /// many times (the forest runtime's virtual-time windows) pays for
  /// thread creation once, not once per barrier.
  void for_each(std::uint64_t n, const std::function<void(std::uint64_t)>& fn);

  [[nodiscard]] unsigned workers() const {
    return static_cast<unsigned>(threads_.size());
  }

  /// Usable parallelism on this machine (>= 1 even when the runtime cannot
  /// tell): the default for every --jobs flag.
  static unsigned hardware_jobs();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  std::size_t capacity_;
  std::size_t in_flight_ = 0;  // queued + currently executing
  std::exception_ptr first_error_;
  bool stop_ = false;
};

/// Run fn(i) for every i in [0, n) across up to `jobs` workers.  Inline and
/// in index order when jobs <= 1 or n <= 1.  If any invocations throw, the
/// one with the lowest index is rethrown after all n finish — identical to
/// what a serial sweep that ran everything would report.
void for_each_index(std::uint64_t n, unsigned jobs,
                    const std::function<void(std::uint64_t)>& fn);

/// Derive the n per-run generators of the `Rng(base_seed).split()` chain.
/// Run i's generator depends only on (base_seed, i): the chain is what a
/// serial loop splitting one parent would have produced.
std::vector<Rng> derive_run_rngs(std::uint64_t base_seed, std::uint64_t n);

/// Replicated-run helper: fn(i, rng_i) with rng_i from derive_run_rngs.
/// Scheduling-independent by construction — results depend only on
/// (base_seed, i), never on `jobs`.
void parallel_for_runs(std::uint64_t n, unsigned jobs,
                       std::uint64_t base_seed,
                       const std::function<void(std::uint64_t, Rng)>& fn);

}  // namespace dyncon::util

#pragma once

// Integer log/exp helpers used by the controller's parameter formulas.
//
// The paper's constants are built from expressions such as
//   phi = max(floor(W / 2U), 1)
//   psi = 4 * ceil(log2(U) + 2) * max(ceil(U / W), 1)
// and package levels are exponents in sizes 2^i * phi.  Everything here is
// exact integer arithmetic (no floating point), matching the paper's
// ceil/floor usage.

#include <bit>
#include <cstdint>

#include "util/error.hpp"

namespace dyncon {

/// floor(log2(x)); requires x >= 1.
[[nodiscard]] constexpr std::uint32_t floor_log2(std::uint64_t x) {
  DYNCON_INVARIANT(x >= 1, "floor_log2 of zero");
  return static_cast<std::uint32_t>(63 - std::countl_zero(x));
}

/// ceil(log2(x)); requires x >= 1.  ceil_log2(1) == 0.
[[nodiscard]] constexpr std::uint32_t ceil_log2(std::uint64_t x) {
  DYNCON_INVARIANT(x >= 1, "ceil_log2 of zero");
  const std::uint32_t fl = floor_log2(x);
  return std::has_single_bit(x) ? fl : fl + 1;
}

/// ceil(a / b) for b > 0.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a,
                                               std::uint64_t b) {
  DYNCON_INVARIANT(b > 0, "ceil_div by zero");
  return a / b + (a % b != 0 ? 1 : 0);
}

/// 2^i with overflow check.
[[nodiscard]] constexpr std::uint64_t pow2(std::uint32_t i) {
  DYNCON_INVARIANT(i < 64, "pow2 overflow");
  return std::uint64_t{1} << i;
}

/// Saturating multiply for cost formulas (benches can request huge M).
[[nodiscard]] constexpr std::uint64_t sat_mul(std::uint64_t a,
                                              std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > UINT64_MAX / b) return UINT64_MAX;
  return a * b;
}

}  // namespace dyncon

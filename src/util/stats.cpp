#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace dyncon {

void Summary::add(double x) {
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Summary::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

std::string Summary::str() const {
  std::ostringstream os;
  os << "mean=" << mean() << " min=" << min() << " max=" << max()
     << " sd=" << stddev() << " n=" << n_;
  return os.str();
}

double Percentiles::at(double q) const {
  DYNCON_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q out of range");
  if (xs_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(xs_.size() - 1);
  const auto i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  if (i + 1 >= xs_.size()) return xs_.back();
  return xs_[i] * (1.0 - frac) + xs_[i + 1] * frac;
}

double loglog_slope(const std::vector<double>& x,
                    const std::vector<double>& y) {
  DYNCON_REQUIRE(x.size() == y.size(), "loglog_slope: size mismatch");
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0 || y[i] <= 0) continue;
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) return 0.0;
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (dn * sxy - sx * sy) / denom;
}

}  // namespace dyncon

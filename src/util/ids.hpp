#pragma once

// Shared identifier and time vocabulary.
//
// NodeId is a permanent handle: once a node is deleted its id is never
// reused, matching the paper's accounting where U bounds "the number of
// nodes ever to exist in the network (including deleted nodes)".

#include <cstdint>

namespace dyncon {

/// Permanent node identifier (never reused after deletion).
using NodeId = std::uint64_t;

/// Sentinel for "no node" (e.g., the root's parent).
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// Simulated time (abstract ticks; only ordering matters for correctness).
using SimTime = std::uint64_t;

/// Port number on a node, assigned adversarially (paper §2.1.2).
using PortId = std::uint64_t;

/// Request identifier, unique per submitted request.
using RequestId = std::uint64_t;

}  // namespace dyncon

#pragma once

// Majority commitment over a dynamic network (§1.3).
//
// Bar-Yehuda & Kutten [9] introduced asynchronous size estimation as the
// tool for majority commitment (two-phase commit where a coordinator may
// only commit if a majority of the *current* network agrees) in networks
// whose size is unknown.  This paper generalizes the size estimator to
// networks with deletions and internal insertions; this module carries the
// commitment protocol along:
//
//   * nodes register YES/NO votes (an upcast, one message per hop);
//   * the root commits iff the collected YES count is provably a majority
//     of the true current size, using only the beta-estimate n~:
//     yes >= floor(beta * n~ / 2) + 1  implies  yes > n/2 (soundness),
//     since n <= beta * n~.
//
// Completeness is correspondingly approximate: a YES fraction above
// beta^2/2 of the true size always commits.  With beta < sqrt(2) both
// bounds bite below/above one half.

#include <cstdint>
#include <unordered_map>

#include "apps/size_estimation.hpp"

namespace dyncon::apps {

enum class Vote : std::uint8_t { kYes, kNo, kAbstain };
enum class Decision : std::uint8_t { kCommit, kAbort };

class MajorityCommit {
 public:
  struct Options {
    bool track_domains = false;
  };

  /// beta must be in (1, sqrt(2)) for the commit threshold to be usable.
  MajorityCommit(tree::DynamicTree& tree, double beta, Options options);
  MajorityCommit(tree::DynamicTree& tree, double beta)
      : MajorityCommit(tree, beta, Options{}) {}

  // Topological requests flow through the underlying size estimation.
  core::Result request_add_leaf(NodeId parent);
  core::Result request_add_internal_above(NodeId child);
  core::Result request_remove(NodeId v);

  /// Record node v's vote (overwrites a previous vote).
  void cast_vote(NodeId v, Vote vote);

  /// Run the commitment round: upcast the votes of all currently alive
  /// nodes and decide.  Sound: kCommit implies the YES voters alive now are
  /// a strict majority of the current network.
  [[nodiscard]] Decision decide();

  /// The threshold the current round would require.
  [[nodiscard]] std::uint64_t commit_threshold() const;

  [[nodiscard]] std::uint64_t size_estimate() const {
    return size_est_->estimate();
  }
  [[nodiscard]] std::uint64_t messages() const;

 private:
  tree::DynamicTree& tree_;
  double beta_;
  std::unique_ptr<SizeEstimation> size_est_;
  std::unordered_map<NodeId, Vote> votes_;
  std::uint64_t round_messages_ = 0;
};

}  // namespace dyncon::apps

#include "apps/majority_commit.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dyncon::apps {

using core::Result;

MajorityCommit::MajorityCommit(tree::DynamicTree& tree, double beta,
                               Options options)
    : tree_(tree), beta_(beta) {
  DYNCON_REQUIRE(beta > 1.0 && beta * beta < 2.0,
                 "beta must be in (1, sqrt(2)) for a usable threshold");
  SizeEstimation::Options se;
  se.track_domains = options.track_domains;
  size_est_ = std::make_unique<SizeEstimation>(tree, beta, std::move(se));
}

Result MajorityCommit::request_add_leaf(NodeId parent) {
  return size_est_->request_add_leaf(parent);
}

Result MajorityCommit::request_add_internal_above(NodeId child) {
  return size_est_->request_add_internal_above(child);
}

Result MajorityCommit::request_remove(NodeId v) {
  Result r = size_est_->request_remove(v);
  if (r.granted()) votes_.erase(v);
  return r;
}

void MajorityCommit::cast_vote(NodeId v, Vote vote) {
  DYNCON_REQUIRE(tree_.alive(v), "vote from a dead node");
  votes_[v] = vote;
}

std::uint64_t MajorityCommit::commit_threshold() const {
  // yes >= floor(beta * n~ / 2) + 1  ==>  yes > beta*n~/2 >= n/2.
  const double half = beta_ * static_cast<double>(size_est_->estimate()) / 2.0;
  return static_cast<std::uint64_t>(std::floor(half)) + 1;
}

Decision MajorityCommit::decide() {
  // Upcast: every node forwards its subtree's YES count to its parent.
  std::uint64_t yes = 0;
  const auto nodes = tree_.alive_nodes();
  for (NodeId v : nodes) {
    auto it = votes_.find(v);
    if (it != votes_.end() && it->second == Vote::kYes) ++yes;
  }
  round_messages_ += nodes.size();  // one upcast message per node
  return yes >= commit_threshold() ? Decision::kCommit : Decision::kAbort;
}

std::uint64_t MajorityCommit::messages() const {
  return size_est_->messages() + round_messages_;
}

}  // namespace dyncon::apps

#include "apps/distributed_name_assignment.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace dyncon::apps {

using core::Outcome;
using core::RequestSpec;
using core::Result;

DistributedNameAssignment::DistributedNameAssignment(sim::Network& net,
                                                     tree::DynamicTree& tree,
                                                     Options options)
    : net_(net), tree_(tree), options_(options), cast_(net, tree) {
  start_iteration(tree_.size());
}

void DistributedNameAssignment::relabel_dfs(std::uint64_t offset) {
  // One DFS token walk assigning offset + DFS number: 2(n-1) hops of
  // O(log n) bits, applied atomically here (the network is quiescent at
  // relabel time, so the walk cannot race anything).
  std::uint64_t dfs = 0;
  std::vector<NodeId> stack{tree_.root()};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    ids_[v] = offset + ++dfs;
    const auto& kids = tree_.children(v);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  const std::uint64_t hops = 2 * (tree_.size() - 1);
  messages_base_ += hops;
  net_.charge(
      sim::Message::app_value(sim::AppTopic::kToken, 4 * tree_.size()),
      hops);
}

void DistributedNameAssignment::start_iteration(std::uint64_t ni) {
  ++iterations_;
  ni = std::max<std::uint64_t>(ni, 1);
  relabel_dfs(3 * ni);  // temporary range keeps ids unique mid-change
  relabel_dfs(0);
  std::erase_if(ids_,
                [this](const auto& kv) { return !tree_.alive(kv.first); });

  const std::uint64_t Mi = std::max<std::uint64_t>(ni / 2, 1);
  const std::uint64_t Wi = std::max<std::uint64_t>(ni / 4, 1);
  core::DistributedTerminating::Options opts;
  opts.track_domains = options_.track_domains;
  opts.serials = Interval(ni + 1, ni + Mi);
  inner_ = std::make_unique<core::DistributedTerminating>(
      net_, tree_, Mi, Wi, /*U=*/2 * ni + Mi, std::move(opts));
  rotating_ = false;
  auto pend = std::move(pending_);
  pending_.clear();
  for (auto& [spec, cb] : pend) dispatch(spec, std::move(cb));
}

void DistributedNameAssignment::begin_rotation() {
  if (rotating_) return;
  rotating_ = true;
  inner_->terminate([this] {
    net_.queue().schedule_after(0, [this] {
      messages_base_ += inner_->messages_used();
      inner_.reset();
      cast_.count_nodes([this](std::uint64_t n) { start_iteration(n); });
    });
  });
}

void DistributedNameAssignment::dispatch(const RequestSpec& spec,
                                         Callback done) {
  if (rotating_) {
    pending_.emplace_back(spec, std::move(done));
    return;
  }
  inner_->submit(spec, [this, spec, done = std::move(done)](
                           const Result& r) mutable {
    if (r.outcome == Outcome::kTerminated) {
      pending_.emplace_back(spec, std::move(done));
      begin_rotation();
      return;
    }
    if (r.granted()) {
      if (r.new_node != kNoNode) {
        DYNCON_INVARIANT(r.serial.has_value(),
                         "granted permit carries no name");
        ids_[r.new_node] = *r.serial;
      } else if (spec.type == RequestSpec::Type::kRemove) {
        ids_.erase(spec.subject);
      }
    }
    done(r);
  });
}

void DistributedNameAssignment::submit(const RequestSpec& spec,
                                       Callback done) {
  DYNCON_REQUIRE(spec.type != RequestSpec::Type::kEvent,
                 "name assignment meters topological changes only");
  DYNCON_REQUIRE(static_cast<bool>(done), "null completion callback");
  dispatch(spec, std::move(done));
}

void DistributedNameAssignment::submit_add_leaf(NodeId parent,
                                                Callback done) {
  submit(RequestSpec{RequestSpec::Type::kAddLeaf, parent}, std::move(done));
}

void DistributedNameAssignment::submit_add_internal_above(NodeId child,
                                                          Callback done) {
  submit(RequestSpec{RequestSpec::Type::kAddInternal, child},
         std::move(done));
}

void DistributedNameAssignment::submit_remove(NodeId v, Callback done) {
  submit(RequestSpec{RequestSpec::Type::kRemove, v}, std::move(done));
}

std::uint64_t DistributedNameAssignment::id_of(NodeId v) const {
  DYNCON_REQUIRE(tree_.alive(v), "id of a dead node");
  auto it = ids_.find(v);
  DYNCON_INVARIANT(it != ids_.end(), "alive node without an identity");
  return it->second;
}

std::uint64_t DistributedNameAssignment::max_id() const {
  std::uint64_t best = 0;
  for (NodeId v : tree_.alive_nodes()) best = std::max(best, id_of(v));
  return best;
}

bool DistributedNameAssignment::ids_unique() const {
  std::unordered_set<std::uint64_t> seen;
  for (NodeId v : tree_.alive_nodes()) {
    if (!seen.insert(id_of(v)).second) return false;
  }
  return true;
}

std::uint64_t DistributedNameAssignment::messages() const {
  return messages_base_ + cast_.messages() +
         (inner_ ? inner_->messages_used() : 0);
}

}  // namespace dyncon::apps

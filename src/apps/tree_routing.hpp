#pragma once

// Dynamic compact tree routing (§5.4, Observation 5.5 / Corollary 5.6).
//
// The classic interval routing scheme answers "which neighbor of u is next
// on the route to v?" from u's routing table and v's label alone: labels
// are DFS intervals, and the next hop from u toward v is the child whose
// interval contains label(v), or u's parent when none does.  This is an
// *exact (stretch 1)* scheme, and by Obs. 5.5 its correctness survives
// deletions of degree-one nodes — in fact, on trees, deletions of internal
// nodes too (survivor-to-survivor routes only ever shorten).
//
// Per Cor. 5.6, the dynamic extension uses the size-estimation protocol to
// trigger a rebuild when the network has shrunk enough that the old labels
// waste bits; insertions reuse the slack mechanism of the ancestry scheme.
// Message complexity: O(n0 log^2 n0 + M(pi, n0) + sum_i(log^2 n_i +
// M(pi, n_i)/n_i)) where M(pi, n) = O(n) is the relabeling cost.
//
// The route queries themselves are free (label inspection); `route` walks
// the hop sequence for tests and demos and reports its length.

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "apps/size_estimation.hpp"

namespace dyncon::apps {

class TreeRouting {
 public:
  struct Options {
    bool track_domains = false;
  };

  TreeRouting(tree::DynamicTree& tree, Options options);
  explicit TreeRouting(tree::DynamicTree& tree)
      : TreeRouting(tree, Options{}) {}

  // Controlled topological changes (through the size estimator).
  core::Result request_add_leaf(NodeId parent);
  core::Result request_add_internal_above(NodeId child);
  core::Result request_remove(NodeId v);

  /// The next hop from u toward v, decided from u's local table and v's
  /// label only.  Requires u != v.
  [[nodiscard]] NodeId next_hop(NodeId u, NodeId v) const;

  /// Full route from u to v (for audits); empty if u == v.
  [[nodiscard]] std::vector<NodeId> route(NodeId u, NodeId v) const;

  /// Bits of the largest label component in use (O(log n) claim).
  [[nodiscard]] std::uint64_t label_bits() const;

  [[nodiscard]] std::uint64_t relabels() const { return relabels_; }
  [[nodiscard]] std::uint64_t messages() const;
  [[nodiscard]] std::uint64_t size_estimate() const {
    return size_est_->estimate();
  }

 private:
  struct Label {
    std::uint64_t pre = 0;   ///< interval start (also the node's address)
    std::uint64_t post = 0;  ///< interval end
  };

  void relabel();
  void maybe_relabel();
  [[nodiscard]] bool contains(const Label& outer,
                              const Label& inner) const {
    return outer.pre <= inner.pre && inner.post <= outer.post;
  }
  void assign_leaf_label(NodeId u, NodeId parent);
  void assign_wrapper_label(NodeId m, NodeId child);

  tree::DynamicTree& tree_;
  std::unique_ptr<SizeEstimation> size_est_;
  std::unordered_map<NodeId, Label> labels_;
  std::uint64_t built_for_ = 0;
  std::uint64_t relabels_ = 0;
  std::uint64_t control_messages_ = 0;
};

}  // namespace dyncon::apps

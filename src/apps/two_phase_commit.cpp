#include "apps/two_phase_commit.hpp"

#include <cmath>
#include <utility>

#include "util/error.hpp"

namespace dyncon::apps {

TwoPhaseCommit::TwoPhaseCommit(sim::Network& net, tree::DynamicTree& tree,
                               double beta, Options options)
    : net_(net),
      tree_(tree),
      beta_(beta),
      size_est_(net, tree, beta,
                DistributedSizeEstimation::Options{options.track_domains}),
      cast_(net, tree) {
  DYNCON_REQUIRE(beta > 1.0 && beta * beta < 2.0,
                 "beta must be in (1, sqrt(2)) for a usable threshold");
}

void TwoPhaseCommit::submit_add_leaf(NodeId parent, Callback done) {
  size_est_.submit_add_leaf(parent, std::move(done));
}

void TwoPhaseCommit::submit_remove(NodeId v, Callback done) {
  votes_.erase(v);  // a departing voter's ballot leaves with it
  size_est_.submit_remove(v, std::move(done));
}

void TwoPhaseCommit::set_vote(NodeId v, Vote vote) {
  DYNCON_REQUIRE(tree_.alive(v), "vote from a dead node");
  votes_[v] = vote;
}

std::uint64_t TwoPhaseCommit::commit_threshold() const {
  const double half =
      beta_ * static_cast<double>(size_est_.estimate()) / 2.0;
  return static_cast<std::uint64_t>(std::floor(half)) + 1;
}

void TwoPhaseCommit::run_round(std::function<void(Decision)> done) {
  DYNCON_REQUIRE(static_cast<bool>(done), "null round callback");
  DYNCON_REQUIRE(!size_est_.rotating() && !cast_.running(),
                 "round requires a quiescent network");
  ++rounds_;
  // Phase 1: VOTE-REQ down, YES-count up.
  cast_.run(
      /*broadcast_value=*/rounds_,
      [this](NodeId v, std::uint64_t) -> std::uint64_t {
        auto it = votes_.find(v);
        return it != votes_.end() && it->second == Vote::kYes ? 1 : 0;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; },
      [this, done = std::move(done)](std::uint64_t yes) {
        const Decision d = yes >= commit_threshold() ? Decision::kCommit
                                                     : Decision::kAbort;
        // Phase 2: decision broadcast (delivered to every node; the upcast
        // back doubles as the "everyone has it" acknowledgement).
        cast_.run(
            static_cast<std::uint64_t>(d),
            [this, d](NodeId v, std::uint64_t) -> std::uint64_t {
              decisions_[v] = d;
              return 0;
            },
            [](std::uint64_t, std::uint64_t) { return 0; },
            [d, done](std::uint64_t) { done(d); });
      });
}

Decision TwoPhaseCommit::decision_at(NodeId v) const {
  DYNCON_REQUIRE(tree_.alive(v), "decision of a dead node");
  auto it = decisions_.find(v);
  return it == decisions_.end() ? Decision::kAbort : it->second;
}

std::uint64_t TwoPhaseCommit::messages() const {
  return size_est_.messages() + cast_.messages();
}

}  // namespace dyncon::apps

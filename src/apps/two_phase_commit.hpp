#pragma once

// Distributed majority commitment / two-phase commit (§1.3).
//
// Bar-Yehuda & Kutten [9] showed that asynchronous size estimation is the
// key to majority commitment in networks of unknown size; this paper's
// estimator extends the technique to networks with deletions and internal
// insertions.  This module is the end-to-end distributed protocol:
//
//   phase 0  membership churn flows through the distributed size
//            estimator, so the coordinator always holds a
//            beta-approximation n~ of the live size;
//   phase 1  VOTE-REQ broadcast + YES-count convergecast (real messages);
//   phase 2  COMMIT/ABORT decision broadcast, delivered to every node.
//
// Soundness: COMMIT is announced only when yes >= floor(beta*n~/2) + 1,
// which implies yes > n/2 for the true current n.  Rounds must run while
// the network is quiescent (no in-flight membership grants), which the
// caller gets by draining the event queue between churn bursts.

#include <cstdint>
#include <unordered_map>

#include "apps/distributed_size_estimation.hpp"
#include "apps/majority_commit.hpp"  // Vote / Decision vocabulary

namespace dyncon::apps {

class TwoPhaseCommit {
 public:
  using Callback = core::DistributedController::Callback;

  struct Options {
    bool track_domains = false;
  };

  /// beta must lie in (1, sqrt(2)) so the threshold is usable.
  TwoPhaseCommit(sim::Network& net, tree::DynamicTree& tree, double beta,
                 Options options);
  TwoPhaseCommit(sim::Network& net, tree::DynamicTree& tree, double beta)
      : TwoPhaseCommit(net, tree, beta, Options{}) {}

  // ---- membership (controlled model, via the size estimator) --------------

  void submit_add_leaf(NodeId parent, Callback done);
  void submit_remove(NodeId v, Callback done);

  // ---- voting ---------------------------------------------------------------

  /// Record node v's standing vote (its reply to the next VOTE-REQ).
  void set_vote(NodeId v, Vote vote);

  /// Run one commitment round; `done(decision)` fires after the decision
  /// broadcast has reached every node.  Requires a quiescent network.
  void run_round(std::function<void(Decision)> done);

  /// The decision node v last received (kAbort before any round).
  [[nodiscard]] Decision decision_at(NodeId v) const;

  [[nodiscard]] std::uint64_t size_estimate() const {
    return size_est_.estimate();
  }
  [[nodiscard]] std::uint64_t commit_threshold() const;
  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }
  [[nodiscard]] std::uint64_t messages() const;

 private:
  sim::Network& net_;
  tree::DynamicTree& tree_;
  double beta_;
  DistributedSizeEstimation size_est_;
  agent::Convergecast cast_;
  std::unordered_map<NodeId, Vote> votes_;
  std::unordered_map<NodeId, Decision> decisions_;
  std::uint64_t rounds_ = 0;
};

}  // namespace dyncon::apps

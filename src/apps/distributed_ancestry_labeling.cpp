#include "apps/distributed_ancestry_labeling.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"
#include "util/log2.hpp"

namespace dyncon::apps {

using core::Result;

namespace {
constexpr std::uint64_t kStride = 16;
}  // namespace

DistributedAncestryLabeling::DistributedAncestryLabeling(
    sim::Network& net, tree::DynamicTree& tree, Options options)
    : net_(net), tree_(tree) {
  DistributedSizeEstimation::Options se;
  se.track_domains = options.track_domains;
  se.on_iteration_start = [this] {
    if (built_for_ > 0 && tree_.size() * 2 <= built_for_) relabel();
  };
  size_est_ = std::make_unique<DistributedSizeEstimation>(net, tree, 2.0,
                                                          std::move(se));
  relabel();
}

void DistributedAncestryLabeling::relabel() {
  ++relabels_;
  labels_.clear();
  std::uint64_t counter = 0;
  struct Frame {
    NodeId v;
    std::size_t next_child;
  };
  std::vector<Frame> stack{{tree_.root(), 0}};
  labels_[tree_.root()].pre = (counter += kStride);
  while (!stack.empty()) {
    Frame& f = stack.back();
    const auto& kids = tree_.children(f.v);
    if (f.next_child < kids.size()) {
      const NodeId c = kids[f.next_child++];
      labels_[c].pre = (counter += kStride);
      stack.push_back(Frame{c, 0});
    } else {
      labels_[f.v].post = (counter += kStride);
      stack.pop_back();
    }
  }
  built_for_ = tree_.size();
  const std::uint64_t hops = 2 * (tree_.size() - 1);
  control_messages_ += hops;
  net_.charge(sim::Message::app_value(sim::AppTopic::kToken, counter), hops);
}

void DistributedAncestryLabeling::assign_leaf_label(NodeId u,
                                                    NodeId parent) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    const Label lp = labels_.at(parent);
    std::uint64_t hi = lp.pre;
    for (NodeId c : tree_.children(parent)) {
      if (c == u) continue;
      auto it = labels_.find(c);
      if (it != labels_.end()) hi = std::max(hi, it->second.post);
    }
    if (lp.post - hi >= 3) {
      labels_[u] = Label{hi + 1, hi + 2};
      ++control_messages_;
      return;
    }
    relabel();
  }
  DYNCON_INVARIANT(false, "no label slack even after a fresh relabel");
}

void DistributedAncestryLabeling::assign_wrapper_label(NodeId m) {
  DYNCON_INVARIANT(tree_.children(m).size() == 1,
                   "wrapper node with unexpected degree");
  const NodeId child = tree_.children(m).front();
  for (int attempt = 0; attempt < 2; ++attempt) {
    const Label lc = labels_.at(child);
    const Label candidate{lc.pre - 1, lc.post + 1};
    const Label lp = labels_.at(tree_.parent(m));
    bool ok = lp.pre < candidate.pre && candidate.post < lp.post;
    if (ok) {
      for (const auto& [node, lab] : labels_) {
        if (!tree_.alive(node)) continue;
        if (lab.pre == candidate.pre || lab.post == candidate.pre ||
            lab.pre == candidate.post || lab.post == candidate.post) {
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      labels_[m] = candidate;
      ++control_messages_;
      return;
    }
    relabel();
  }
  DYNCON_INVARIANT(false, "no wrapper slack even after a fresh relabel");
}

void DistributedAncestryLabeling::submit_add_leaf(NodeId parent,
                                                  Callback done) {
  size_est_->submit_add_leaf(
      parent, [this, parent, done = std::move(done)](const Result& r) {
        if (r.granted()) assign_leaf_label(r.new_node, parent);
        done(r);
      });
}

void DistributedAncestryLabeling::submit_add_internal_above(NodeId child,
                                                            Callback done) {
  size_est_->submit_add_internal_above(
      child, [this, done = std::move(done)](const Result& r) {
        if (r.granted() && tree_.alive(r.new_node)) {
          assign_wrapper_label(r.new_node);
        }
        done(r);
      });
}

void DistributedAncestryLabeling::submit_remove(NodeId v, Callback done) {
  size_est_->submit_remove(
      v, [this, v, done = std::move(done)](const Result& r) {
        if (r.granted()) labels_.erase(v);
        done(r);
      });
}

bool DistributedAncestryLabeling::is_ancestor(NodeId anc, NodeId v) const {
  const Label a = label(anc);
  const Label b = label(v);
  return a.pre <= b.pre && b.post <= a.post;
}

DistributedAncestryLabeling::Label DistributedAncestryLabeling::label(
    NodeId v) const {
  DYNCON_REQUIRE(tree_.alive(v), "label of a dead node");
  auto it = labels_.find(v);
  DYNCON_INVARIANT(it != labels_.end(), "alive node without a label");
  return it->second;
}

std::uint64_t DistributedAncestryLabeling::label_bits() const {
  std::uint64_t biggest = 1;
  for (NodeId v : tree_.alive_nodes()) {
    biggest = std::max(biggest, label(v).post);
  }
  return ceil_log2(biggest + 1);
}

std::uint64_t DistributedAncestryLabeling::messages() const {
  return size_est_->messages() + control_messages_;
}

}  // namespace dyncon::apps

#pragma once

// The size-estimation protocol of §5.1, fully distributed.
//
// Unlike apps/size_estimation (which drives the centralized controller
// stack and charges control traffic analytically), this variant runs on
// the asynchronous simulator end to end: iteration i counts N_i with a
// real broadcast/convergecast, disseminates it, and admits topological
// changes through a distributed terminating (alpha*N_i, alpha*N_i/2)-
// controller; when that controller terminates, the next iteration starts.
// Requests that arrive during a rotation are queued and replayed.
//
// The estimate held "at every node" is the N_i of the current iteration
// (the dissemination broadcast is part of the counted traffic), and it is
// a beta-approximation of the live size at all times.

#include <cstdint>
#include <deque>
#include <memory>

#include "agent/convergecast.hpp"
#include "core/distributed_iterated.hpp"

namespace dyncon::apps {

class DistributedSizeEstimation {
 public:
  using Callback = core::DistributedController::Callback;

  struct Options {
    bool track_domains = false;
    /// Forwarded to the controller iterations (§5.3; used by the
    /// distributed subtree estimator).
    std::function<void(NodeId, std::uint64_t)> on_pass_down;
    /// Called at the start of every iteration, after the estimate resets.
    std::function<void()> on_iteration_start;
  };

  DistributedSizeEstimation(sim::Network& net, tree::DynamicTree& tree,
                            double beta, Options options);
  DistributedSizeEstimation(sim::Network& net, tree::DynamicTree& tree,
                            double beta)
      : DistributedSizeEstimation(net, tree, beta, Options{}) {}

  /// Submit a topological request (kEvent requests are rejected by
  /// contract: this protocol only meters membership changes).
  void submit(const core::RequestSpec& spec, Callback done);
  void submit_add_leaf(NodeId parent, Callback done);
  void submit_add_internal_above(NodeId child, Callback done);
  void submit_remove(NodeId v, Callback done);

  /// The network-wide estimate (the current iteration's N_i).
  [[nodiscard]] std::uint64_t estimate() const { return ni_; }
  [[nodiscard]] double beta() const { return beta_; }
  [[nodiscard]] std::uint64_t iterations() const { return iterations_; }
  [[nodiscard]] bool rotating() const { return rotating_; }
  [[nodiscard]] std::uint64_t messages() const;

 private:
  void start_iteration(std::uint64_t ni);
  void begin_rotation();
  void dispatch(const core::RequestSpec& spec, Callback done);

  sim::Network& net_;
  tree::DynamicTree& tree_;
  double beta_;
  double alpha_;
  Options options_;

  agent::Convergecast cast_;
  std::unique_ptr<core::DistributedTerminating> inner_;
  std::uint64_t ni_ = 0;
  std::uint64_t iterations_ = 0;
  bool rotating_ = false;
  std::deque<std::pair<core::RequestSpec, Callback>> pending_;
  std::uint64_t messages_base_ = 0;
};

}  // namespace dyncon::apps

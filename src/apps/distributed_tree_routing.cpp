#include "apps/distributed_tree_routing.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/log2.hpp"

namespace dyncon::apps {

using core::Result;

namespace {
constexpr std::uint64_t kStride = 16;  // label slack between DFS events
}  // namespace

DistributedTreeRouting::DistributedTreeRouting(sim::Network& net,
                                               tree::DynamicTree& tree,
                                               Options options)
    : net_(net), tree_(tree) {
  DistributedSizeEstimation::Options se;
  se.track_domains = options.track_domains;
  se.on_iteration_start = [this] {
    if (built_for_ > 0 && tree_.size() * 2 <= built_for_) relabel();
  };
  size_est_ = std::make_unique<DistributedSizeEstimation>(net, tree, 2.0,
                                                          std::move(se));
  relabel();
}

void DistributedTreeRouting::relabel() {
  ++relabels_;
  labels_.clear();
  std::uint64_t counter = 0;
  struct Frame {
    NodeId v;
    std::size_t next_child;
  };
  std::vector<Frame> stack{{tree_.root(), 0}};
  labels_[tree_.root()].pre = (counter += kStride);
  while (!stack.empty()) {
    Frame& f = stack.back();
    const auto& kids = tree_.children(f.v);
    if (f.next_child < kids.size()) {
      const NodeId c = kids[f.next_child++];
      labels_[c].pre = (counter += kStride);
      stack.push_back(Frame{c, 0});
    } else {
      labels_[f.v].post = (counter += kStride);
      stack.pop_back();
    }
  }
  built_for_ = tree_.size();
  // The relabeling token's walk: 2(n-1) hops of O(log n) bits.
  const std::uint64_t hops = 2 * (tree_.size() - 1);
  control_messages_ += hops;
  net_.charge(sim::Message::app_value(sim::AppTopic::kToken, counter), hops);
}

void DistributedTreeRouting::assign_leaf_label(NodeId u, NodeId parent) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    const Label lp = labels_.at(parent);
    std::uint64_t hi = lp.pre;
    for (NodeId c : tree_.children(parent)) {
      if (c == u) continue;
      auto it = labels_.find(c);
      if (it != labels_.end()) hi = std::max(hi, it->second.post);
    }
    if (lp.post - hi >= 3) {
      labels_[u] = Label{hi + 1, hi + 2};
      ++control_messages_;
      return;
    }
    relabel();
  }
  DYNCON_INVARIANT(false, "no label slack even after a fresh relabel");
}

void DistributedTreeRouting::assign_wrapper_label(NodeId m) {
  // The wrapper adopted exactly one child when it was spliced in.
  DYNCON_INVARIANT(tree_.children(m).size() == 1,
                   "wrapper node with unexpected degree");
  const NodeId child = tree_.children(m).front();
  for (int attempt = 0; attempt < 2; ++attempt) {
    const Label lc = labels_.at(child);
    const Label candidate{lc.pre - 1, lc.post + 1};
    const Label lp = labels_.at(tree_.parent(m));
    bool ok = lp.pre < candidate.pre && candidate.post < lp.post;
    if (ok) {
      for (const auto& [node, lab] : labels_) {
        if (!tree_.alive(node)) continue;
        if (lab.pre == candidate.pre || lab.post == candidate.pre ||
            lab.pre == candidate.post || lab.post == candidate.post) {
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      labels_[m] = candidate;
      ++control_messages_;
      return;
    }
    relabel();
  }
  DYNCON_INVARIANT(false, "no wrapper slack even after a fresh relabel");
}

void DistributedTreeRouting::submit_add_leaf(NodeId parent, Callback done) {
  size_est_->submit_add_leaf(
      parent, [this, parent, done = std::move(done)](const Result& r) {
        if (r.granted()) assign_leaf_label(r.new_node, parent);
        done(r);
      });
}

void DistributedTreeRouting::submit_add_internal_above(NodeId child,
                                                       Callback done) {
  size_est_->submit_add_internal_above(
      child, [this, done = std::move(done)](const Result& r) {
        if (r.granted() && tree_.alive(r.new_node)) {
          assign_wrapper_label(r.new_node);
        }
        done(r);
      });
}

void DistributedTreeRouting::submit_remove(NodeId v, Callback done) {
  size_est_->submit_remove(
      v, [this, v, done = std::move(done)](const Result& r) {
        if (r.granted()) labels_.erase(v);
        done(r);
      });
}

NodeId DistributedTreeRouting::next_hop(NodeId u, NodeId v) const {
  DYNCON_REQUIRE(tree_.alive(u) && tree_.alive(v), "routing dead endpoints");
  DYNCON_REQUIRE(u != v, "next_hop of a node to itself");
  const Label lu = labels_.at(u);
  const Label lv = labels_.at(v);
  if (!contains(lu, lv)) {
    DYNCON_INVARIANT(u != tree_.root(), "root's interval must contain all");
    return tree_.parent(u);
  }
  for (NodeId c : tree_.children(u)) {
    if (contains(labels_.at(c), lv)) return c;
  }
  DYNCON_INVARIANT(false, "label containment without a matching child");
  return kNoNode;
}

std::vector<NodeId> DistributedTreeRouting::route(NodeId u, NodeId v) const {
  std::vector<NodeId> hops;
  NodeId cur = u;
  while (cur != v) {
    cur = next_hop(cur, v);
    hops.push_back(cur);
    DYNCON_INVARIANT(hops.size() <= tree_.size(), "routing loop");
  }
  return hops;
}

std::uint64_t DistributedTreeRouting::label_bits() const {
  std::uint64_t biggest = 1;
  for (NodeId v : tree_.alive_nodes()) {
    biggest = std::max(biggest, labels_.at(v).post);
  }
  return ceil_log2(biggest + 1);
}

std::uint64_t DistributedTreeRouting::messages() const {
  return size_est_->messages() + control_messages_;
}

}  // namespace dyncon::apps

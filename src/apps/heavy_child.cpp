#include "apps/heavy_child.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dyncon::apps {

using core::Result;

HeavyChild::HeavyChild(tree::DynamicTree& tree, Options options)
    : tree_(tree) {
  SubtreeEstimator::Options opts;
  opts.track_domains = options.track_domains;
  opts.on_estimate_update = [this](NodeId v) { on_estimate_update(v); };
  est_ = std::make_unique<SubtreeEstimator>(tree, std::sqrt(3.0),
                                            std::move(opts));
  tree_.add_observer(this);
  // Seed the reports for the initial topology.
  for (NodeId v : tree_.alive_nodes()) on_estimate_update(v);
}

HeavyChild::~HeavyChild() { tree_.remove_observer(this); }

void HeavyChild::on_estimate_update(NodeId v) {
  // The estimator fires its first iteration-start callback from inside its
  // own construction, before est_ is assigned; the constructor re-seeds
  // every node afterwards, so skipping here loses nothing.
  if (!est_ || !tree_.alive(v)) return;
  report_to_parent(v);
}

void HeavyChild::report_to_parent(NodeId v) {
  if (v == tree_.root()) return;
  const NodeId p = tree_.parent(v);
  ++report_messages_;
  child_reports_[p][v] = est_->estimate(v);
  recompute_heavy(p);
}

void HeavyChild::recompute_heavy(NodeId v) {
  const auto& kids = tree_.children(v);
  if (kids.empty()) {
    heavy_.erase(v);
    return;
  }
  auto& reports = child_reports_[v];
  NodeId best = kids.front();
  std::uint64_t best_est = 0;
  for (NodeId c : kids) {
    const auto it = reports.find(c);
    const std::uint64_t e = it == reports.end() ? 1 : it->second;
    if (e > best_est) {
      best_est = e;
      best = c;
    }
  }
  heavy_[v] = best;
}

Result HeavyChild::request_add_leaf(NodeId parent) {
  Result r = est_->request_add_leaf(parent);
  if (r.granted()) on_estimate_update(r.new_node);
  return r;
}

Result HeavyChild::request_add_internal_above(NodeId child) {
  Result r = est_->request_add_internal_above(child);
  if (r.granted()) on_estimate_update(r.new_node);
  return r;
}

Result HeavyChild::request_remove(NodeId v) { return est_->request_remove(v); }

NodeId HeavyChild::heavy(NodeId v) const {
  auto it = heavy_.find(v);
  return it == heavy_.end() ? kNoNode : it->second;
}

std::uint64_t HeavyChild::light_ancestors(NodeId v) const {
  DYNCON_REQUIRE(tree_.alive(v), "light_ancestors of a dead node");
  std::uint64_t light = 0;
  NodeId cur = v;
  while (cur != tree_.root()) {
    const NodeId p = tree_.parent(cur);
    if (heavy(p) != cur) ++light;
    cur = p;
  }
  return light;
}

std::uint64_t HeavyChild::max_light_ancestors() const {
  std::uint64_t best = 0;
  for (NodeId v : tree_.alive_nodes()) {
    best = std::max(best, light_ancestors(v));
  }
  return best;
}

std::uint64_t HeavyChild::messages() const {
  return est_->messages() + report_messages_;
}

void HeavyChild::on_add_leaf(NodeId u, NodeId parent) {
  child_reports_[parent][u] = 1;
  recompute_heavy(parent);
}

void HeavyChild::on_remove_leaf(NodeId u, NodeId parent) {
  child_reports_[parent].erase(u);
  child_reports_.erase(u);
  heavy_.erase(u);
  recompute_heavy(parent);
}

void HeavyChild::on_add_internal(NodeId u, NodeId parent, NodeId child) {
  auto& preports = child_reports_[parent];
  const auto it = preports.find(child);
  const std::uint64_t child_est = it == preports.end() ? 1 : it->second;
  preports.erase(child);
  preports[u] = child_est + 1;
  child_reports_[u][child] = child_est;
  heavy_[u] = child;
  recompute_heavy(parent);
}

void HeavyChild::on_remove_internal(NodeId u, NodeId parent,
                                    const std::vector<NodeId>& children) {
  auto& preports = child_reports_[parent];
  preports.erase(u);
  auto& ureports = child_reports_[u];
  for (NodeId c : children) {
    const auto it = ureports.find(c);
    preports[c] = it == ureports.end() ? 1 : it->second;
  }
  child_reports_.erase(u);
  heavy_.erase(u);
  recompute_heavy(parent);
}

}  // namespace dyncon::apps

#pragma once

// The name-assignment protocol of §5.2, distributed.
//
// Iteration i: one DFS token relabels all nodes (two passes — temporary
// range 3N_i + DFS first, then [1, N_i] — so identities stay unique while
// they change; the token's walk is 2(n-1) hops per pass, charged as
// control traffic), then a distributed terminating (N_i/2, N_i/4)-
// controller whose permits carry explicit serial numbers from
// [N_i+1, 3N_i/2] admits joins; a node is named by the serial of the
// permit that admitted it.  On termination the protocol recounts with a
// real convergecast and starts the next iteration.
//
// Invariants (audited in tests): identities pairwise distinct at all
// times, every identity within [1, 4n].

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>

#include "agent/convergecast.hpp"
#include "core/distributed_iterated.hpp"

namespace dyncon::apps {

class DistributedNameAssignment {
 public:
  using Callback = core::DistributedController::Callback;

  struct Options {
    bool track_domains = false;
  };

  DistributedNameAssignment(sim::Network& net, tree::DynamicTree& tree,
                            Options options);
  DistributedNameAssignment(sim::Network& net, tree::DynamicTree& tree)
      : DistributedNameAssignment(net, tree, Options{}) {}

  void submit(const core::RequestSpec& spec, Callback done);
  void submit_add_leaf(NodeId parent, Callback done);
  void submit_add_internal_above(NodeId child, Callback done);
  void submit_remove(NodeId v, Callback done);

  [[nodiscard]] std::uint64_t id_of(NodeId v) const;
  [[nodiscard]] std::uint64_t max_id() const;
  [[nodiscard]] bool ids_unique() const;
  [[nodiscard]] std::uint64_t iterations() const { return iterations_; }
  [[nodiscard]] bool rotating() const { return rotating_; }
  [[nodiscard]] std::uint64_t messages() const;

 private:
  void start_iteration(std::uint64_t ni);
  void begin_rotation();
  void relabel_dfs(std::uint64_t offset);
  void dispatch(const core::RequestSpec& spec, Callback done);

  sim::Network& net_;
  tree::DynamicTree& tree_;
  Options options_;
  agent::Convergecast cast_;
  std::unique_ptr<core::DistributedTerminating> inner_;
  std::unordered_map<NodeId, std::uint64_t> ids_;
  std::uint64_t iterations_ = 0;
  bool rotating_ = false;
  std::deque<std::pair<core::RequestSpec, Callback>> pending_;
  std::uint64_t messages_base_ = 0;
};

}  // namespace dyncon::apps

#pragma once

// NCA labeling over the protocol-maintained heavy-child decomposition
// (§5.3 + §5.4 composed, distributed).
//
// The centralized NcaLabeling builds its heavy paths from exact subtree
// sizes.  This variant uses the decomposition the *protocol itself*
// maintains — DistributedHeavyChild's mu(v) pointers, which come from
// beta-approximate super-weight estimates (Thm. 5.4).  The theorem
// guarantees O(log n) light ancestors even for the approximate pointers,
// so labels built from them still have O(log n) entries; this module is
// the end-to-end demonstration that the paper's approximate decomposition
// is good enough to power the classic labeling construction.
//
// Dynamics: leaf joins graft single-node light paths; leaf removals are
// free (Obs. 5.5); the decomposition snapshot is refreshed (labels
// rebuilt) at size-estimation iteration boundaries once the tree drifted.

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "apps/distributed_heavy_child.hpp"

namespace dyncon::apps {

class DistributedNcaLabeling {
 public:
  using Callback = core::DistributedController::Callback;

  struct Entry {
    NodeId head = kNoNode;
    std::uint64_t offset = 0;
    bool operator==(const Entry&) const = default;
  };
  using Label = std::vector<Entry>;

  struct Options {
    bool track_domains = false;
    /// Rebuild when the size drifts by this factor from the last build.
    double rebuild_drift = 2.0;
  };

  DistributedNcaLabeling(sim::Network& net, tree::DynamicTree& tree,
                         Options options);
  DistributedNcaLabeling(sim::Network& net, tree::DynamicTree& tree)
      : DistributedNcaLabeling(net, tree, Options{}) {}

  void submit_add_leaf(NodeId parent, Callback done);
  void submit_remove_leaf(NodeId v, Callback done);

  [[nodiscard]] NodeId nca(NodeId u, NodeId v) const;
  [[nodiscard]] const Label& label(NodeId v) const;
  [[nodiscard]] std::uint64_t max_label_entries() const;
  [[nodiscard]] std::uint64_t rebuilds() const { return rebuilds_; }
  [[nodiscard]] std::uint64_t messages() const;
  [[nodiscard]] const DistributedHeavyChild& decomposition() const {
    return *hc_;
  }

 private:
  void rebuild();
  void maybe_rebuild();

  sim::Network& net_;
  tree::DynamicTree& tree_;
  Options options_;
  std::unique_ptr<DistributedHeavyChild> hc_;
  std::unordered_map<NodeId, Label> labels_;
  std::unordered_map<NodeId, std::vector<NodeId>> paths_;
  std::uint64_t built_for_ = 0;
  std::uint64_t rebuilds_ = 0;
  std::uint64_t changes_since_build_ = 0;
  std::uint64_t control_messages_ = 0;
};

}  // namespace dyncon::apps

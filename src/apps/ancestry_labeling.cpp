#include "apps/ancestry_labeling.hpp"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "util/error.hpp"

namespace dyncon::apps {

using core::Result;

namespace {
/// Gap between consecutive DFS events; the slack is what insertions consume
/// between relabels.  Labels stay <= 2*kStride*n, i.e. log n + O(1) bits.
constexpr std::uint64_t kStride = 16;
}  // namespace

AncestryLabeling::AncestryLabeling(tree::DynamicTree& tree, Options options)
    : tree_(tree) {
  SizeEstimation::Options se;
  se.track_domains = options.track_domains;
  se.on_iteration_start = [this] { maybe_relabel(); };
  size_est_ = std::make_unique<SizeEstimation>(tree, 2.0, std::move(se));
  relabel();
}

void AncestryLabeling::relabel() {
  ++relabels_;
  labels_.clear();
  std::uint64_t counter = 0;
  // Iterative DFS assigning pre on entry and post on exit, stride apart.
  struct Frame {
    NodeId v;
    std::size_t next_child;
  };
  std::vector<Frame> stack{{tree_.root(), 0}};
  labels_[tree_.root()].pre = (counter += kStride);
  while (!stack.empty()) {
    Frame& f = stack.back();
    const auto& kids = tree_.children(f.v);
    if (f.next_child < kids.size()) {
      const NodeId c = kids[f.next_child++];
      labels_[c].pre = (counter += kStride);
      stack.push_back(Frame{c, 0});
    } else {
      labels_[f.v].post = (counter += kStride);
      stack.pop_back();
    }
  }
  built_for_ = tree_.size();
  max_component_ = counter;
  control_messages_ += 2 * tree_.size();  // the relabeling DFS traversal
}

void AncestryLabeling::maybe_relabel() {
  // Cor. 5.7's point: when the network shrank enough that the old labels
  // waste bits, rebuild; amortized against the >= Omega(N_i) changes the
  // size-estimation iteration admitted.
  if (tree_.size() * 2 <= built_for_) relabel();
}

Result AncestryLabeling::request_add_leaf(NodeId parent) {
  Result r = size_est_->request_add_leaf(parent);
  if (!r.granted()) return r;
  const NodeId u = r.new_node;
  // Place the leaf in its parent's trailing slack: just below post(parent),
  // above every existing descendant label of parent.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const Label lp = labels_.at(parent);
    std::uint64_t hi = lp.pre;
    for (NodeId c : tree_.children(parent)) {
      if (c == u) continue;
      auto it = labels_.find(c);
      if (it != labels_.end()) hi = std::max(hi, it->second.post);
    }
    if (lp.post - hi >= 3) {
      labels_[u] = Label{hi + 1, hi + 2};
      ++control_messages_;  // the parent hands the label over
      max_component_ = std::max(max_component_, hi + 2);
      return r;
    }
    relabel();  // slack exhausted under this parent
  }
  DYNCON_INVARIANT(false, "no label slack even after a fresh relabel");
  return r;
}

Result AncestryLabeling::request_add_internal_above(NodeId child) {
  Result r = size_est_->request_add_internal_above(child);
  if (!r.granted()) return r;
  const NodeId m = r.new_node;
  for (int attempt = 0; attempt < 2; ++attempt) {
    const Label lc = labels_.at(child);
    const Label candidate{lc.pre - 1, lc.post + 1};
    // The wrapper label must nest strictly inside the parent's and collide
    // with no existing label component (both checks are local to the
    // parent in a real deployment; the hash probe models them).
    const NodeId p = tree_.parent(m);
    const Label lp = labels_.at(p);
    bool ok = lp.pre < candidate.pre && candidate.post < lp.post;
    if (ok) {
      for (const auto& [node, lab] : labels_) {
        if (!tree_.alive(node)) continue;
        if (lab.pre == candidate.pre || lab.post == candidate.pre ||
            lab.pre == candidate.post || lab.post == candidate.post) {
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      labels_[m] = candidate;
      ++control_messages_;
      max_component_ = std::max(max_component_, candidate.post);
      return r;
    }
    relabel();
  }
  DYNCON_INVARIANT(false, "no wrapper slack even after a fresh relabel");
  return r;
}

Result AncestryLabeling::request_remove(NodeId v) {
  Result r = size_est_->request_remove(v);
  // Deletions never invalidate surviving labels (containment among the
  // survivors is unchanged); the entry is merely dropped.
  if (r.granted()) labels_.erase(v);
  return r;
}

bool AncestryLabeling::is_ancestor(NodeId anc, NodeId v) const {
  const Label a = label(anc);
  const Label b = label(v);
  return a.pre <= b.pre && b.post <= a.post;
}

AncestryLabeling::Label AncestryLabeling::label(NodeId v) const {
  DYNCON_REQUIRE(tree_.alive(v), "label of a dead node");
  auto it = labels_.find(v);
  DYNCON_INVARIANT(it != labels_.end(), "alive node without a label");
  return it->second;
}

std::uint64_t AncestryLabeling::label_bits() const {
  std::uint64_t biggest = 1;
  for (NodeId v : tree_.alive_nodes()) {
    biggest = std::max(biggest, label(v).post);
  }
  return ceil_log2(biggest + 1);
}

std::uint64_t AncestryLabeling::messages() const {
  return size_est_->messages() + control_messages_;
}

}  // namespace dyncon::apps

#include "apps/subtree_estimator.hpp"

#include <vector>

#include "util/error.hpp"

namespace dyncon::apps {

using core::Result;

SubtreeEstimator::SubtreeEstimator(tree::DynamicTree& tree, double beta,
                                   Options options)
    : tree_(tree), options_(std::move(options)) {
  SizeEstimation::Options se;
  se.track_domains = options_.track_domains;
  se.on_pass_down = [this](NodeId v, std::uint64_t permits) {
    on_pass_down(v, permits);
  };
  se.on_iteration_start = [this] { on_iteration_start(); };
  size_est_ = std::make_unique<SizeEstimation>(tree, beta, std::move(se));
}

void SubtreeEstimator::on_iteration_start() {
  // Broadcast + upcast computing w0(v, i) = |descendants of v| for every
  // node; already charged inside SizeEstimation's per-iteration 2n, we add
  // the dedicated w0 upcast the paper describes.
  w0_.clear();
  passed_.clear();
  sw_.clear();
  // Post-order accumulation (children have larger BFS indices, so iterate
  // the BFS order backwards).
  const auto order = tree_.alive_nodes();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    std::uint64_t w = 1;
    for (NodeId c : tree_.children(v)) w += w0_[c];
    w0_[v] = w;
    sw_[v] = w;
  }
  if (options_.on_estimate_update) {
    for (NodeId v : order) options_.on_estimate_update(v);
  }
}

void SubtreeEstimator::on_pass_down(NodeId v, std::uint64_t permits) {
  passed_[v] += permits;
  if (options_.on_estimate_update) options_.on_estimate_update(v);
}

void SubtreeEstimator::bump_ancestors(NodeId from) {
  for (NodeId cur = from;;) {
    if (cur == tree_.root()) break;
    cur = tree_.parent(cur);
    sw_[cur] += 1;
  }
}

template <typename Fn>
Result SubtreeEstimator::request(Fn&& go) {
  return go(*size_est_);
}

Result SubtreeEstimator::request_add_leaf(NodeId parent) {
  Result r = size_est_->request_add_leaf(parent);
  if (r.granted()) {
    w0_[r.new_node] = 1;
    sw_[r.new_node] = 1;
    bump_ancestors(r.new_node);
  }
  return r;
}

Result SubtreeEstimator::request_add_internal_above(NodeId child) {
  Result r = size_est_->request_add_internal_above(child);
  if (r.granted()) {
    // Graceful-insertion bootstrap: the new node adopts its child's current
    // counters (one local handshake) so its estimate reflects the subtree
    // it now roots.
    const NodeId m = r.new_node;
    w0_[m] = w0_[child] + passed_[child] + 1;
    sw_[m] = sw_[child] + 1;
    bump_ancestors(m);
    if (options_.on_estimate_update) options_.on_estimate_update(m);
  }
  return r;
}

Result SubtreeEstimator::request_remove(NodeId v) {
  // Super-weights count nodes that *ever* existed this iteration, so a
  // removal changes nothing upward.
  return size_est_->request_remove(v);
}

std::uint64_t SubtreeEstimator::estimate(NodeId v) const {
  DYNCON_REQUIRE(tree_.alive(v), "estimate of a dead node");
  std::uint64_t est = 0;
  if (auto it = w0_.find(v); it != w0_.end()) est += it->second;
  if (auto it = passed_.find(v); it != passed_.end()) est += it->second;
  return est;
}

std::uint64_t SubtreeEstimator::true_super_weight(NodeId v) const {
  DYNCON_REQUIRE(tree_.alive(v), "super-weight of a dead node");
  auto it = sw_.find(v);
  return it == sw_.end() ? 1 : it->second;
}

std::uint64_t SubtreeEstimator::messages() const {
  // The w0 dissemination is one extra broadcast/upcast per iteration.
  return size_est_->messages() + 2 * iterations() * tree_.size();
}

}  // namespace dyncon::apps

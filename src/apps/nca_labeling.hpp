#pragma once

// Nearest-common-ancestor labeling on dynamic trees (§5.4, Obs. 5.5).
//
// The classic heavy-path NCA labeling: decompose the tree into heavy paths
// (each node points at its heaviest child — here computed from exact
// subtree sizes at build time, the quality the protocol of Thm 5.4
// approximates); label(v) lists the (path head, exit offset) pairs of the
// heavy paths the root->v walk crosses.  Since v has O(log n) light
// ancestors, labels have O(log n) entries, i.e. O(log^2 n) bits (the
// simple variant — [8]/[31] shave the extra log with heavier machinery).
//
// NCA query from two labels alone: take the longest prefix on which the
// path heads agree — say they still share path h_j — then
// nca = the node of h_j at offset min(o_j(u), o_j(v)).
//
// Dynamics, per Obs. 5.5/Cor. 5.6: deletions of degree-one nodes never
// invalidate surviving labels, and new leaves can be grafted as single-node
// light paths (one extra label entry).  Everything else requires a rebuild,
// which the dynamic wrapper schedules at size-estimation iteration
// boundaries — the same amortization as every other §5.4 extension.

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "apps/size_estimation.hpp"

namespace dyncon::apps {

class NcaLabeling {
 public:
  struct Entry {
    NodeId head = kNoNode;     ///< topmost node of the heavy path
    std::uint64_t offset = 0;  ///< exit (or final) position on that path
    bool operator==(const Entry&) const = default;
  };
  using Label = std::vector<Entry>;

  struct Options {
    bool track_domains = false;
  };

  /// Builds the decomposition and labels for the current tree; topological
  /// changes flow through the request_* methods (leaf dynamics only — see
  /// header comment).
  NcaLabeling(tree::DynamicTree& tree, Options options);
  explicit NcaLabeling(tree::DynamicTree& tree)
      : NcaLabeling(tree, Options{}) {}

  core::Result request_add_leaf(NodeId parent);
  core::Result request_remove_leaf(NodeId v);

  /// The NCA of u and v, computed from their labels (plus the per-path
  /// member arrays, which are the scheme's distributed directory).
  [[nodiscard]] NodeId nca(NodeId u, NodeId v) const;

  [[nodiscard]] const Label& label(NodeId v) const;

  /// Worst label length over alive nodes (O(log n) claim).
  [[nodiscard]] std::uint64_t max_label_entries() const;

  [[nodiscard]] std::uint64_t rebuilds() const { return rebuilds_; }
  [[nodiscard]] std::uint64_t messages() const;

 private:
  void rebuild();

  tree::DynamicTree& tree_;
  std::unique_ptr<SizeEstimation> size_est_;
  std::unordered_map<NodeId, Label> labels_;
  /// head -> the path's members, offset order (index 0 = head).
  std::unordered_map<NodeId, std::vector<NodeId>> paths_;
  std::uint64_t rebuilds_ = 0;
  std::uint64_t built_for_ = 0;
  std::uint64_t control_messages_ = 0;
};

}  // namespace dyncon::apps

#pragma once

// Dynamic ancestry labeling on trees (§5.4, Corollary 5.7).
//
// Static ancestry labels are classic DFS intervals (Kannan–Naor–Rudich
// [17]): label(v) = [pre(v), post(v)], and u is an ancestor of v iff
// label(u) contains label(v).  Deletions (of leaves *and* internal nodes)
// never invalidate containment among the survivors, so the only thing a
// dynamic scheme must manage is label *size*: after heavy shrinkage the old
// labels waste bits relative to the optimal O(log n).
//
// Following Cor. 5.7, the scheme piggybacks on the size-estimation
// protocol: when an iteration starts and the counted size has dropped below
// half of the size the labels were built for, one DFS relabels the tree.
// Insertions are also supported within an iteration by handing each new
// node a label hole: a fresh pair from a reserve range sized by the
// iteration's admission budget (the controller guarantees at most alpha*N_i
// joins per iteration, so the reserve keeps labels at O(log n) bits).

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "apps/size_estimation.hpp"

namespace dyncon::apps {

class AncestryLabeling {
 public:
  struct Options {
    bool track_domains = false;
  };

  AncestryLabeling(tree::DynamicTree& tree, Options options);
  explicit AncestryLabeling(tree::DynamicTree& tree)
      : AncestryLabeling(tree, Options{}) {}

  core::Result request_add_leaf(NodeId parent);
  core::Result request_add_internal_above(NodeId child);
  core::Result request_remove(NodeId v);

  /// Ancestry query answered from the two labels alone.
  [[nodiscard]] bool is_ancestor(NodeId anc, NodeId v) const;

  struct Label {
    std::uint64_t pre = 0;
    std::uint64_t post = 0;
  };
  [[nodiscard]] Label label(NodeId v) const;

  /// Bits needed for the largest label component currently in use.
  [[nodiscard]] std::uint64_t label_bits() const;

  [[nodiscard]] std::uint64_t relabels() const { return relabels_; }
  [[nodiscard]] std::uint64_t messages() const;

 private:
  void relabel();
  void maybe_relabel();
  void assign_fresh(NodeId v, NodeId parent_hint);

  tree::DynamicTree& tree_;
  std::unique_ptr<SizeEstimation> size_est_;
  std::unordered_map<NodeId, Label> labels_;
  std::uint64_t built_for_ = 0;   ///< size the labels were last built for
  std::uint64_t next_fresh_ = 0;  ///< reserve cursor for joins
  std::uint64_t max_component_ = 0;
  std::uint64_t relabels_ = 0;
  std::uint64_t control_messages_ = 0;
};

}  // namespace dyncon::apps

#pragma once

// The subtree estimator and heavy-child decomposition of §5.3, distributed.
//
// In the asynchronous protocol the pass-down observation is literally each
// node watching the permit packages that physically travel through it
// inside agents' Bags (the on_pass_down hook of the distributed
// controller) — zero extra messages, exactly the paper's construction.
// Estimates reset at every size-estimation iteration from a w0
// broadcast/upcast; each estimate change is reported to the parent (one
// message), and the parent points its mu(v) at the child with the largest
// report, giving O(log n) light ancestors at all times (Thm 5.4).

#include <cmath>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "apps/distributed_size_estimation.hpp"

namespace dyncon::apps {

class DistributedSubtreeEstimator {
 public:
  using Callback = core::DistributedController::Callback;

  struct Options {
    bool track_domains = false;
    /// Fired after any estimate update at `node`.
    std::function<void(NodeId)> on_estimate_update;
  };

  DistributedSubtreeEstimator(sim::Network& net, tree::DynamicTree& tree,
                              double beta, Options options);
  DistributedSubtreeEstimator(sim::Network& net, tree::DynamicTree& tree,
                              double beta)
      : DistributedSubtreeEstimator(net, tree, beta, Options{}) {}

  void submit(const core::RequestSpec& spec, Callback done);
  void submit_add_leaf(NodeId parent, Callback done);
  void submit_add_internal_above(NodeId child, Callback done);
  void submit_remove(NodeId v, Callback done);

  [[nodiscard]] std::uint64_t estimate(NodeId v) const;
  /// Ground-truth super-weight mirror (audits only; no protocol messages).
  [[nodiscard]] std::uint64_t true_super_weight(NodeId v) const;
  [[nodiscard]] std::uint64_t size_estimate() const {
    return size_est_->estimate();
  }
  [[nodiscard]] std::uint64_t iterations() const {
    return size_est_->iterations();
  }
  [[nodiscard]] std::uint64_t messages() const;

 private:
  void on_iteration_start();
  void on_pass_down(NodeId v, std::uint64_t permits);

  sim::Network& net_;
  tree::DynamicTree& tree_;
  Options options_;
  std::unique_ptr<DistributedSizeEstimation> size_est_;
  std::unordered_map<NodeId, std::uint64_t> w0_;
  std::unordered_map<NodeId, std::uint64_t> passed_;
  std::unordered_map<NodeId, std::uint64_t> sw_;
};

class DistributedHeavyChild final : private tree::TreeObserver {
 public:
  using Callback = core::DistributedController::Callback;

  struct Options {
    bool track_domains = false;
  };

  DistributedHeavyChild(sim::Network& net, tree::DynamicTree& tree,
                        Options options);
  DistributedHeavyChild(sim::Network& net, tree::DynamicTree& tree)
      : DistributedHeavyChild(net, tree, Options{}) {}
  ~DistributedHeavyChild() override;

  void submit(const core::RequestSpec& spec, Callback done);
  void submit_add_leaf(NodeId parent, Callback done);
  void submit_add_internal_above(NodeId child, Callback done);
  void submit_remove(NodeId v, Callback done);

  [[nodiscard]] NodeId heavy(NodeId v) const;
  [[nodiscard]] std::uint64_t light_ancestors(NodeId v) const;
  [[nodiscard]] std::uint64_t max_light_ancestors() const;
  [[nodiscard]] std::uint64_t messages() const;
  [[nodiscard]] const DistributedSubtreeEstimator& estimator() const {
    return *est_;
  }

 private:
  void on_estimate_update(NodeId v);
  void recompute_heavy(NodeId v);

  void on_add_leaf(NodeId u, NodeId parent) override;
  void on_remove_leaf(NodeId u, NodeId parent) override;
  void on_add_internal(NodeId u, NodeId parent, NodeId child) override;
  void on_remove_internal(NodeId u, NodeId parent,
                          const std::vector<NodeId>& children) override;

  sim::Network& net_;
  tree::DynamicTree& tree_;
  std::unique_ptr<DistributedSubtreeEstimator> est_;
  std::unordered_map<NodeId, std::unordered_map<NodeId, std::uint64_t>>
      child_reports_;
  std::unordered_map<NodeId, NodeId> heavy_;
  std::uint64_t report_messages_ = 0;
};

}  // namespace dyncon::apps

#include "apps/distributed_size_estimation.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/error.hpp"

namespace dyncon::apps {

using core::Outcome;
using core::RequestSpec;
using core::Result;

DistributedSizeEstimation::DistributedSizeEstimation(
    sim::Network& net, tree::DynamicTree& tree, double beta, Options options)
    : net_(net),
      tree_(tree),
      beta_(beta),
      options_(std::move(options)),
      cast_(net, tree) {
  DYNCON_REQUIRE(beta > 1.0, "beta must exceed 1");
  alpha_ = 1.0 - 1.0 / beta;
  // The initial count is exact and local to construction; subsequent
  // counts run over the network.
  start_iteration(tree_.size());
}

void DistributedSizeEstimation::start_iteration(std::uint64_t ni) {
  ++iterations_;
  ni_ = ni;
  // Disseminating N_i is one broadcast: n-1 control messages.
  net_.charge(sim::Message::control(sim::ControlTopic::kBroadcast, ni),
              tree_.size() - 1);
  messages_base_ += tree_.size() - 1;
  const auto budget = static_cast<std::uint64_t>(
      std::floor(alpha_ * static_cast<double>(ni)));
  const std::uint64_t Mi = std::max<std::uint64_t>(budget, 1);
  const std::uint64_t Wi = std::max<std::uint64_t>(Mi / 2, 1);
  core::DistributedTerminating::Options opts;
  opts.track_domains = options_.track_domains;
  opts.on_pass_down = options_.on_pass_down;
  inner_ = std::make_unique<core::DistributedTerminating>(
      net_, tree_, Mi, Wi, /*U=*/2 * ni + Mi, std::move(opts));
  rotating_ = false;
  if (options_.on_iteration_start) options_.on_iteration_start();
  // Replay whatever queued up during the rotation.
  auto pend = std::move(pending_);
  pending_.clear();
  for (auto& [spec, cb] : pend) dispatch(spec, std::move(cb));
}

void DistributedSizeEstimation::begin_rotation() {
  if (rotating_) return;
  rotating_ = true;
  // Drain every in-flight agent of the terminated controller, then (from a
  // fresh event, so its call chain has fully unwound) count N_{i+1} with a
  // real broadcast/convergecast and restart.  No topological change can
  // happen during the count: all grants are drained and new requests are
  // queued in pending_.
  inner_->terminate([this] {
    net_.queue().schedule_after(0, [this] {
      messages_base_ += inner_->messages_used();
      inner_.reset();
      cast_.count_nodes([this](std::uint64_t n) {
        start_iteration(std::max<std::uint64_t>(n, 1));
      });
    });
  });
}

void DistributedSizeEstimation::dispatch(const RequestSpec& spec,
                                         Callback done) {
  if (rotating_) {
    pending_.emplace_back(spec, std::move(done));
    return;
  }
  inner_->submit(spec, [this, spec, done = std::move(done)](
                           const Result& r) mutable {
    if (r.outcome == Outcome::kTerminated) {
      // Iteration over: queue the request for the next one and rotate.
      pending_.emplace_back(spec, std::move(done));
      begin_rotation();
      return;
    }
    done(r);
  });
}

void DistributedSizeEstimation::submit(const RequestSpec& spec,
                                       Callback done) {
  DYNCON_REQUIRE(spec.type != RequestSpec::Type::kEvent,
                 "size estimation meters topological changes only");
  DYNCON_REQUIRE(static_cast<bool>(done), "null completion callback");
  dispatch(spec, std::move(done));
}

void DistributedSizeEstimation::submit_add_leaf(NodeId parent,
                                                Callback done) {
  submit(RequestSpec{RequestSpec::Type::kAddLeaf, parent}, std::move(done));
}

void DistributedSizeEstimation::submit_add_internal_above(NodeId child,
                                                          Callback done) {
  submit(RequestSpec{RequestSpec::Type::kAddInternal, child},
         std::move(done));
}

void DistributedSizeEstimation::submit_remove(NodeId v, Callback done) {
  submit(RequestSpec{RequestSpec::Type::kRemove, v}, std::move(done));
}

std::uint64_t DistributedSizeEstimation::messages() const {
  return messages_base_ + cast_.messages() +
         (inner_ ? inner_->messages_used() : 0);
}

}  // namespace dyncon::apps

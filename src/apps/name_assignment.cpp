#include "apps/name_assignment.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/error.hpp"

namespace dyncon::apps {

using core::Outcome;
using core::Result;

NameAssignment::NameAssignment(tree::DynamicTree& tree, Options options)
    : tree_(tree), options_(options) {
  start_iteration();
}

void NameAssignment::relabel_dfs(std::uint64_t offset) {
  // One DFS traversal assigning offset + DFS number; 2(n-1) agent hops.
  std::uint64_t dfs = 0;
  std::vector<NodeId> stack{tree_.root()};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    ids_[v] = offset + ++dfs;
    const auto& kids = tree_.children(v);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  control_messages_ += 2 * (tree_.size() - 1);
}

void NameAssignment::start_iteration() {
  ++iterations_;
  const std::uint64_t ni = tree_.size();
  // Two traversals: temporary range first so identities stay unique while
  // they change (3*N_i + DFS <= 4*N_i <= 4n), then the final [1, N_i].
  relabel_dfs(3 * ni);
  relabel_dfs(0);
  // Drop stale entries of deleted nodes.
  std::erase_if(ids_, [this](const auto& kv) {
    return !tree_.alive(kv.first);
  });

  const std::uint64_t Mi = std::max<std::uint64_t>(ni / 2, 1);
  const std::uint64_t Wi = std::max<std::uint64_t>(ni / 4, 1);
  core::TerminatingController::Options opts;
  opts.track_domains = options_.track_domains;
  // Serial numbers [N_i + 1, N_i + M_i]: disjoint from [1, N_i] and within
  // [1, 3N_i/2], so every identity stays in [1, 4n] throughout.
  opts.serials = Interval(ni + 1, ni + Mi);
  inner_ = std::make_unique<core::TerminatingController>(
      tree_, Mi, Wi, /*U=*/2 * ni + Mi, std::move(opts));
}

template <typename Fn>
Result NameAssignment::with_rotation(Fn&& submit) {
  for (;;) {
    Result r = submit(*inner_);
    if (r.outcome != Outcome::kTerminated) return r;
    messages_base_ += inner_->cost();
    start_iteration();
  }
}

Result NameAssignment::request_add_leaf(NodeId parent) {
  Result r = with_rotation([&](core::TerminatingController& c) {
    return c.request_add_leaf(parent);
  });
  if (r.granted()) {
    DYNCON_INVARIANT(r.serial.has_value(), "granted permit carries no name");
    ids_[r.new_node] = *r.serial;
  }
  return r;
}

Result NameAssignment::request_add_internal_above(NodeId child) {
  Result r = with_rotation([&](core::TerminatingController& c) {
    return c.request_add_internal_above(child);
  });
  if (r.granted()) {
    DYNCON_INVARIANT(r.serial.has_value(), "granted permit carries no name");
    ids_[r.new_node] = *r.serial;
  }
  return r;
}

Result NameAssignment::request_remove(NodeId v) {
  Result r = with_rotation(
      [&](core::TerminatingController& c) { return c.request_remove(v); });
  if (r.granted()) ids_.erase(v);
  return r;
}

std::uint64_t NameAssignment::id_of(NodeId v) const {
  DYNCON_REQUIRE(tree_.alive(v), "id of a dead node");
  auto it = ids_.find(v);
  DYNCON_INVARIANT(it != ids_.end(), "alive node without an identity");
  return it->second;
}

std::uint64_t NameAssignment::max_id() const {
  std::uint64_t best = 0;
  for (NodeId v : tree_.alive_nodes()) best = std::max(best, id_of(v));
  return best;
}

bool NameAssignment::ids_unique() const {
  std::unordered_set<std::uint64_t> seen;
  for (NodeId v : tree_.alive_nodes()) {
    if (!seen.insert(id_of(v)).second) return false;
  }
  return true;
}

std::uint64_t NameAssignment::messages() const {
  return messages_base_ + control_messages_ + inner_->cost();
}

}  // namespace dyncon::apps

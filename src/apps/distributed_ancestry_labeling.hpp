#pragma once

// Dynamic ancestry labeling over the asynchronous controller (§5.4,
// Cor. 5.7 — the distributed variant of apps/ancestry_labeling).
//
// DFS-interval labels answer "is u an ancestor of v?" from the two labels
// alone.  Deletions of leaves *and* internal nodes never invalidate
// containment among survivors; the distributed size estimator triggers a
// relabel when the network has shrunk past half of what the labels were
// built for, keeping labels at log n + O(1) bits; insertions consume label
// slack between relabels.

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "apps/distributed_size_estimation.hpp"

namespace dyncon::apps {

class DistributedAncestryLabeling {
 public:
  using Callback = core::DistributedController::Callback;

  struct Label {
    std::uint64_t pre = 0;
    std::uint64_t post = 0;
  };

  struct Options {
    bool track_domains = false;
  };

  DistributedAncestryLabeling(sim::Network& net, tree::DynamicTree& tree,
                              Options options);
  DistributedAncestryLabeling(sim::Network& net, tree::DynamicTree& tree)
      : DistributedAncestryLabeling(net, tree, Options{}) {}

  void submit_add_leaf(NodeId parent, Callback done);
  void submit_add_internal_above(NodeId child, Callback done);
  void submit_remove(NodeId v, Callback done);

  /// Ancestry query from labels alone.
  [[nodiscard]] bool is_ancestor(NodeId anc, NodeId v) const;
  [[nodiscard]] Label label(NodeId v) const;
  [[nodiscard]] std::uint64_t label_bits() const;
  [[nodiscard]] std::uint64_t relabels() const { return relabels_; }
  [[nodiscard]] std::uint64_t messages() const;

 private:
  void relabel();
  void assign_leaf_label(NodeId u, NodeId parent);
  void assign_wrapper_label(NodeId m);

  sim::Network& net_;
  tree::DynamicTree& tree_;
  std::unique_ptr<DistributedSizeEstimation> size_est_;
  std::unordered_map<NodeId, Label> labels_;
  std::uint64_t built_for_ = 0;
  std::uint64_t relabels_ = 0;
  std::uint64_t control_messages_ = 0;
};

}  // namespace dyncon::apps

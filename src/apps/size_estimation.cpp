#include "apps/size_estimation.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dyncon::apps {

using core::Outcome;
using core::Result;

SizeEstimation::SizeEstimation(tree::DynamicTree& tree, double beta,
                               Options options)
    : tree_(tree), beta_(beta), options_(std::move(options)) {
  DYNCON_REQUIRE(beta > 1.0, "beta must exceed 1");
  alpha_ = 1.0 - 1.0 / beta;
  start_iteration();
}

void SizeEstimation::start_iteration() {
  ++iterations_;
  ni_ = tree_.size();
  // Counting + dissemination of N_i: one broadcast and one upcast.
  control_messages_ += 2 * ni_;
  const auto budget = static_cast<std::uint64_t>(
      std::floor(alpha_ * static_cast<double>(ni_)));
  const std::uint64_t Mi = std::max<std::uint64_t>(budget, 1);
  const std::uint64_t Wi = std::max<std::uint64_t>(Mi / 2, 1);
  core::TerminatingController::Options opts;
  opts.track_domains = options_.track_domains;
  opts.on_pass_down = options_.on_pass_down;
  inner_ = std::make_unique<core::TerminatingController>(
      tree_, Mi, Wi, /*U=*/2 * ni_ + Mi, std::move(opts));
  if (options_.on_iteration_start) options_.on_iteration_start();
}

template <typename Fn>
Result SizeEstimation::with_rotation(Fn&& submit) {
  for (;;) {
    Result r = submit(*inner_);
    if (r.outcome != Outcome::kTerminated) return r;
    // The iteration's controller terminated: between alpha*N_i/2 and
    // alpha*N_i changes happened; recount and start the next iteration.
    messages_base_ += inner_->cost();
    start_iteration();
  }
}

Result SizeEstimation::request_add_leaf(NodeId parent) {
  return with_rotation([&](core::TerminatingController& c) {
    return c.request_add_leaf(parent);
  });
}

Result SizeEstimation::request_add_internal_above(NodeId child) {
  return with_rotation([&](core::TerminatingController& c) {
    return c.request_add_internal_above(child);
  });
}

Result SizeEstimation::request_remove(NodeId v) {
  return with_rotation(
      [&](core::TerminatingController& c) { return c.request_remove(v); });
}

std::uint64_t SizeEstimation::messages() const {
  return messages_base_ + control_messages_ + inner_->cost();
}

}  // namespace dyncon::apps

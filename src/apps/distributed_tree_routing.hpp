#pragma once

// Dynamic compact tree routing over the asynchronous controller
// (§5.4, Obs. 5.5 / Cor. 5.6 — the distributed variant of
// apps/tree_routing).
//
// Same scheme: DFS-interval labels answer "which neighbor of u is next on
// the route to v?" locally; deletions never invalidate surviving routes;
// insertions consume label slack; the size estimator triggers a relabel
// when the network has shrunk past half of what the labels were built for.
// Here the membership changes run through the distributed size estimator,
// so all control traffic (counting convergecasts, N_i broadcasts, the
// relabeling DFS token) is real messages on the simulated network.

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "apps/distributed_size_estimation.hpp"

namespace dyncon::apps {

class DistributedTreeRouting {
 public:
  using Callback = core::DistributedController::Callback;

  struct Options {
    bool track_domains = false;
  };

  DistributedTreeRouting(sim::Network& net, tree::DynamicTree& tree,
                         Options options);
  DistributedTreeRouting(sim::Network& net, tree::DynamicTree& tree)
      : DistributedTreeRouting(net, tree, Options{}) {}

  void submit_add_leaf(NodeId parent, Callback done);
  void submit_add_internal_above(NodeId child, Callback done);
  void submit_remove(NodeId v, Callback done);

  /// Next hop from u toward v, from u's table and v's label alone.
  [[nodiscard]] NodeId next_hop(NodeId u, NodeId v) const;
  /// Full route (audits); empty if u == v.
  [[nodiscard]] std::vector<NodeId> route(NodeId u, NodeId v) const;

  [[nodiscard]] std::uint64_t label_bits() const;
  [[nodiscard]] std::uint64_t relabels() const { return relabels_; }
  [[nodiscard]] std::uint64_t messages() const;

 private:
  struct Label {
    std::uint64_t pre = 0;
    std::uint64_t post = 0;
  };

  void relabel();
  void assign_leaf_label(NodeId u, NodeId parent);
  void assign_wrapper_label(NodeId m);
  [[nodiscard]] bool contains(const Label& outer,
                              const Label& inner) const {
    return outer.pre <= inner.pre && inner.post <= outer.post;
  }

  sim::Network& net_;
  tree::DynamicTree& tree_;
  std::unique_ptr<DistributedSizeEstimation> size_est_;
  std::unordered_map<NodeId, Label> labels_;
  std::uint64_t built_for_ = 0;
  std::uint64_t relabels_ = 0;
  std::uint64_t control_messages_ = 0;
};

}  // namespace dyncon::apps

#pragma once

// The size-estimation protocol of §5.1 (Theorem 5.1).
//
// Every node maintains a beta-approximation n~ of the current network size:
// n/beta <= n~ <= beta*n at all times.  The protocol runs in iterations:
// at iteration start the exact size N_i is counted and broadcast (each node
// adopts it as its estimate), then a terminating (alpha*N_i, alpha*N_i/2)-
// controller with alpha = 1 - 1/beta admits topological changes; because it
// terminates after at most alpha*N_i granted changes (and at least
// alpha*N_i/2), the size cannot drift outside [N_i/beta, beta*N_i] within
// an iteration, and each iteration's O(N_i log^2 N_i) messages amortize to
// O(log^2 n) per change.
//
// All topological changes MUST flow through this protocol's request
// methods (the controlled dynamic model).

#include <cstdint>
#include <functional>
#include <memory>

#include "core/terminating_controller.hpp"

namespace dyncon::apps {

class SizeEstimation {
 public:
  struct Options {
    bool track_domains = false;
    /// Forwarded to the controller iterations (used by SubtreeEstimator).
    std::function<void(NodeId, std::uint64_t)> on_pass_down;
    /// Called at the start of every iteration, after the estimate resets.
    std::function<void()> on_iteration_start;
  };

  SizeEstimation(tree::DynamicTree& tree, double beta, Options options);
  SizeEstimation(tree::DynamicTree& tree, double beta)
      : SizeEstimation(tree, beta, Options{}) {}

  core::Result request_add_leaf(NodeId parent);
  core::Result request_add_internal_above(NodeId child);
  core::Result request_remove(NodeId v);

  /// The estimate every node currently holds (identical network-wide: it is
  /// the N_i broadcast at iteration start).
  [[nodiscard]] std::uint64_t estimate() const { return ni_; }

  [[nodiscard]] double beta() const { return beta_; }
  [[nodiscard]] std::uint64_t iterations() const { return iterations_; }

  /// Total messages: controller traffic plus the per-iteration counting
  /// broadcast/upcast.
  [[nodiscard]] std::uint64_t messages() const;

  [[nodiscard]] const core::TerminatingController& controller() const {
    return *inner_;
  }

 private:
  template <typename Fn>
  core::Result with_rotation(Fn&& submit);
  void start_iteration();

  tree::DynamicTree& tree_;
  double beta_;
  double alpha_;
  Options options_;

  std::unique_ptr<core::TerminatingController> inner_;
  std::uint64_t ni_ = 0;
  std::uint64_t iterations_ = 0;
  std::uint64_t control_messages_ = 0;
  std::uint64_t messages_base_ = 0;
};

}  // namespace dyncon::apps

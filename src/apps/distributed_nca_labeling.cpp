#include "apps/distributed_nca_labeling.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dyncon::apps {

using core::Result;

DistributedNcaLabeling::DistributedNcaLabeling(sim::Network& net,
                                               tree::DynamicTree& tree,
                                               Options options)
    : net_(net), tree_(tree), options_(options) {
  DYNCON_REQUIRE(options.rebuild_drift > 1.0, "drift factor must exceed 1");
  DistributedHeavyChild::Options hco;
  hco.track_domains = options_.track_domains;
  hc_ = std::make_unique<DistributedHeavyChild>(net, tree, hco);
  rebuild();
}

void DistributedNcaLabeling::rebuild() {
  ++rebuilds_;
  labels_.clear();
  paths_.clear();
  // Freeze the protocol's current mu(v) pointers into heavy paths and
  // label along them, root-down.
  std::unordered_map<NodeId, Entry> position;
  for (NodeId v : tree_.alive_nodes()) {
    Entry pos;
    if (v == tree_.root()) {
      pos = Entry{v, 0};
      labels_[v] = {pos};
    } else {
      const NodeId p = tree_.parent(v);
      const Entry parent_pos = position.at(p);
      if (hc_->heavy(p) == v) {
        pos = Entry{parent_pos.head, parent_pos.offset + 1};
        Label lab = labels_.at(p);
        lab.back().offset = pos.offset;
        labels_[v] = std::move(lab);
      } else {
        pos = Entry{v, 0};
        Label lab = labels_.at(p);
        lab.push_back(pos);
        labels_[v] = std::move(lab);
      }
    }
    position[v] = pos;
    auto& members = paths_[pos.head];
    DYNCON_INVARIANT(members.size() == pos.offset,
                     "path members built out of order");
    members.push_back(v);
  }
  built_for_ = tree_.size();
  changes_since_build_ = 0;
  // The labeling DFS traversal: 2(n-1) hops of O(log n)-entry payloads.
  const std::uint64_t hops = 2 * (tree_.size() - 1);
  control_messages_ += hops;
  net_.charge(sim::Message::app_value(sim::AppTopic::kToken, tree_.size()),
              hops);
}

void DistributedNcaLabeling::maybe_rebuild() {
  const double n = static_cast<double>(std::max<std::uint64_t>(
      tree_.size(), 1));
  const double base = static_cast<double>(std::max<std::uint64_t>(
      built_for_, 1));
  if (n >= base * options_.rebuild_drift ||
      n * options_.rebuild_drift <= base) {
    rebuild();
  }
}

void DistributedNcaLabeling::submit_add_leaf(NodeId parent, Callback done) {
  hc_->submit_add_leaf(
      parent, [this, parent, done = std::move(done)](const Result& r) {
        if (r.granted()) {
          Label lab = labels_.at(parent);
          lab.push_back(Entry{r.new_node, 0});
          labels_[r.new_node] = std::move(lab);
          paths_[r.new_node] = {r.new_node};
          ++control_messages_;
          ++changes_since_build_;
          maybe_rebuild();
        }
        done(r);
      });
}

void DistributedNcaLabeling::submit_remove_leaf(NodeId v, Callback done) {
  DYNCON_REQUIRE(tree_.alive(v) && tree_.is_leaf(v),
                 "NCA labeling supports leaf removals only (Obs. 5.5)");
  hc_->submit_remove(v, [this, v, done = std::move(done)](const Result& r) {
    if (r.granted()) {
      labels_.erase(v);
      auto it = paths_.find(v);
      if (it != paths_.end()) {
        paths_.erase(it);
      } else {
        for (auto& [head, members] : paths_) {
          if (!members.empty() && members.back() == v) {
            members.pop_back();
            break;
          }
        }
      }
      ++changes_since_build_;
      maybe_rebuild();
    }
    done(r);
  });
}

NodeId DistributedNcaLabeling::nca(NodeId u, NodeId v) const {
  const Label& lu = label(u);
  const Label& lv = label(v);
  std::size_t j = 0;
  while (j + 1 < lu.size() && j + 1 < lv.size() &&
         lu[j + 1].head == lv[j + 1].head) {
    ++j;
  }
  DYNCON_INVARIANT(lu[j].head == lv[j].head, "labels share no path");
  const std::uint64_t offset = std::min(lu[j].offset, lv[j].offset);
  const auto& members = paths_.at(lu[j].head);
  DYNCON_INVARIANT(offset < members.size(), "stale path directory");
  return members[offset];
}

const DistributedNcaLabeling::Label& DistributedNcaLabeling::label(
    NodeId v) const {
  DYNCON_REQUIRE(tree_.alive(v), "label of a dead node");
  auto it = labels_.find(v);
  DYNCON_INVARIANT(it != labels_.end(), "alive node without a label");
  return it->second;
}

std::uint64_t DistributedNcaLabeling::max_label_entries() const {
  std::uint64_t best = 0;
  for (NodeId v : tree_.alive_nodes()) {
    best = std::max<std::uint64_t>(best, label(v).size());
  }
  return best;
}

std::uint64_t DistributedNcaLabeling::messages() const {
  return hc_->messages() + control_messages_;
}

}  // namespace dyncon::apps

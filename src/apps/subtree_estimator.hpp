#pragma once

// The subtree-estimator protocol of §5.3 (Lemma 5.3).
//
// During iteration i of the size-estimation protocol, node u's *super-
// weight* SW(u) is the number of descendants u had at the iteration start
// plus every node that existed below u at some point during the iteration.
// Each node estimates its super-weight locally as
//
//     w~(u) = w0(u, i) + S(u)
//
// where w0 is its descendant count computed by a broadcast/upcast at the
// iteration start, and S(u) counts the permits of the size-estimation
// controller that passed down the tree through u during the iteration —
// a purely local observation (the on_pass_down hook).
//
// The estimator also maintains the exact super-weight per node (an O(depth)
// bookkeeping walk per granted change) so tests and benches can audit the
// approximation; this mirror costs no protocol messages.

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "apps/size_estimation.hpp"

namespace dyncon::apps {

class SubtreeEstimator {
 public:
  struct Options {
    bool track_domains = false;
    /// Invoked after any estimate update at `node` (used by HeavyChild to
    /// forward new estimates to the parent).
    std::function<void(NodeId)> on_estimate_update;
  };

  SubtreeEstimator(tree::DynamicTree& tree, double beta, Options options);
  SubtreeEstimator(tree::DynamicTree& tree, double beta)
      : SubtreeEstimator(tree, beta, Options{}) {}

  core::Result request_add_leaf(NodeId parent);
  core::Result request_add_internal_above(NodeId child);
  core::Result request_remove(NodeId v);

  /// The node's current super-weight estimate w~(u).
  [[nodiscard]] std::uint64_t estimate(NodeId v) const;

  /// Ground-truth super-weight (for audits; not a protocol quantity).
  [[nodiscard]] std::uint64_t true_super_weight(NodeId v) const;

  /// Network size estimate (from the underlying size estimation).
  [[nodiscard]] std::uint64_t size_estimate() const {
    return size_est_->estimate();
  }

  [[nodiscard]] double beta() const { return size_est_->beta(); }
  [[nodiscard]] std::uint64_t messages() const;
  [[nodiscard]] std::uint64_t iterations() const {
    return size_est_->iterations();
  }

 private:
  void on_iteration_start();
  void on_pass_down(NodeId v, std::uint64_t permits);
  void bump_ancestors(NodeId from);
  template <typename Fn>
  core::Result request(Fn&& go);

  tree::DynamicTree& tree_;
  Options options_;
  std::unique_ptr<SizeEstimation> size_est_;

  std::unordered_map<NodeId, std::uint64_t> w0_;      ///< iteration baseline
  std::unordered_map<NodeId, std::uint64_t> passed_;  ///< S(u)
  std::unordered_map<NodeId, std::uint64_t> sw_;      ///< exact mirror
};

}  // namespace dyncon::apps

#include "apps/distributed_heavy_child.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dyncon::apps {

using core::RequestSpec;
using core::Result;

// ---- DistributedSubtreeEstimator ---------------------------------------------

DistributedSubtreeEstimator::DistributedSubtreeEstimator(
    sim::Network& net, tree::DynamicTree& tree, double beta, Options options)
    : net_(net), tree_(tree), options_(std::move(options)) {
  DistributedSizeEstimation::Options se;
  se.track_domains = options_.track_domains;
  se.on_pass_down = [this](NodeId v, std::uint64_t permits) {
    on_pass_down(v, permits);
  };
  se.on_iteration_start = [this] { on_iteration_start(); };
  size_est_ = std::make_unique<DistributedSizeEstimation>(net, tree, beta,
                                                          std::move(se));
}

void DistributedSubtreeEstimator::on_iteration_start() {
  // w0 dissemination: one extra broadcast/upcast (2(n-1) messages) on top
  // of the size estimator's own counting.
  net_.charge(sim::Message::app_value(sim::AppTopic::kReport, tree_.size()),
              2 * (tree_.size() - 1));
  w0_.clear();
  passed_.clear();
  sw_.clear();
  const auto order = tree_.alive_nodes();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    std::uint64_t w = 1;
    for (NodeId c : tree_.children(v)) w += w0_[c];
    w0_[v] = w;
    sw_[v] = w;
  }
  if (options_.on_estimate_update) {
    for (NodeId v : order) options_.on_estimate_update(v);
  }
}

void DistributedSubtreeEstimator::on_pass_down(NodeId v,
                                               std::uint64_t permits) {
  passed_[v] += permits;
  if (options_.on_estimate_update) options_.on_estimate_update(v);
}

void DistributedSubtreeEstimator::submit(const RequestSpec& spec,
                                         Callback done) {
  size_est_->submit(spec, [this, spec, done = std::move(done)](
                              const Result& r) mutable {
    if (r.granted()) {
      if (spec.type == RequestSpec::Type::kAddLeaf && r.new_node != kNoNode) {
        w0_[r.new_node] = 1;
        sw_[r.new_node] = 1;
      } else if (spec.type == RequestSpec::Type::kAddInternal &&
                 r.new_node != kNoNode && tree_.alive(r.new_node)) {
        // Graceful bootstrap from the adopted child's counters.
        const auto& kids = tree_.children(r.new_node);
        std::uint64_t base = 1;
        for (NodeId c : kids) {
          auto w = w0_.find(c);
          if (w != w0_.end()) base += w->second;
          auto pd = passed_.find(c);
          if (pd != passed_.end()) base += pd->second;
        }
        w0_[r.new_node] = base;
        std::uint64_t s = 1;
        for (NodeId c : kids) {
          auto it = sw_.find(c);
          if (it != sw_.end()) s += it->second;
        }
        sw_[r.new_node] = s;
      }
      // Super-weights of ancestors grow on additions (ever-existed).
      if (r.new_node != kNoNode && tree_.alive(r.new_node)) {
        for (NodeId cur = r.new_node; cur != tree_.root();) {
          cur = tree_.parent(cur);
          sw_[cur] += 1;
        }
      }
    }
    done(r);
  });
}

void DistributedSubtreeEstimator::submit_add_leaf(NodeId parent,
                                                  Callback done) {
  submit(RequestSpec{RequestSpec::Type::kAddLeaf, parent}, std::move(done));
}

void DistributedSubtreeEstimator::submit_add_internal_above(NodeId child,
                                                            Callback done) {
  submit(RequestSpec{RequestSpec::Type::kAddInternal, child},
         std::move(done));
}

void DistributedSubtreeEstimator::submit_remove(NodeId v, Callback done) {
  submit(RequestSpec{RequestSpec::Type::kRemove, v}, std::move(done));
}

std::uint64_t DistributedSubtreeEstimator::estimate(NodeId v) const {
  DYNCON_REQUIRE(tree_.alive(v), "estimate of a dead node");
  std::uint64_t est = 0;
  if (auto it = w0_.find(v); it != w0_.end()) est += it->second;
  if (auto it = passed_.find(v); it != passed_.end()) est += it->second;
  return est;
}

std::uint64_t DistributedSubtreeEstimator::true_super_weight(
    NodeId v) const {
  DYNCON_REQUIRE(tree_.alive(v), "super-weight of a dead node");
  auto it = sw_.find(v);
  return it == sw_.end() ? 1 : it->second;
}

std::uint64_t DistributedSubtreeEstimator::messages() const {
  return size_est_->messages() + 2 * iterations() * tree_.size();
}

// ---- DistributedHeavyChild --------------------------------------------------

DistributedHeavyChild::DistributedHeavyChild(sim::Network& net,
                                             tree::DynamicTree& tree,
                                             Options options)
    : net_(net), tree_(tree) {
  DistributedSubtreeEstimator::Options opts;
  opts.track_domains = options.track_domains;
  opts.on_estimate_update = [this](NodeId v) { on_estimate_update(v); };
  est_ = std::make_unique<DistributedSubtreeEstimator>(
      net, tree, std::sqrt(3.0), std::move(opts));
  tree_.add_observer(this);
  for (NodeId v : tree_.alive_nodes()) on_estimate_update(v);
}

DistributedHeavyChild::~DistributedHeavyChild() {
  tree_.remove_observer(this);
}

void DistributedHeavyChild::on_estimate_update(NodeId v) {
  if (!est_ || !tree_.alive(v) || v == tree_.root()) return;
  const NodeId p = tree_.parent(v);
  ++report_messages_;
  child_reports_[p][v] = est_->estimate(v);
  recompute_heavy(p);
}

void DistributedHeavyChild::recompute_heavy(NodeId v) {
  const auto& kids = tree_.children(v);
  if (kids.empty()) {
    heavy_.erase(v);
    return;
  }
  auto& reports = child_reports_[v];
  NodeId best = kids.front();
  std::uint64_t best_est = 0;
  for (NodeId c : kids) {
    const auto it = reports.find(c);
    const std::uint64_t e = it == reports.end() ? 1 : it->second;
    if (e > best_est) {
      best_est = e;
      best = c;
    }
  }
  heavy_[v] = best;
}

void DistributedHeavyChild::submit(const RequestSpec& spec, Callback done) {
  est_->submit(spec, [this, done = std::move(done)](const Result& r) {
    if (r.granted() && r.new_node != kNoNode && tree_.alive(r.new_node)) {
      on_estimate_update(r.new_node);
    }
    done(r);
  });
}

void DistributedHeavyChild::submit_add_leaf(NodeId parent, Callback done) {
  submit(RequestSpec{RequestSpec::Type::kAddLeaf, parent}, std::move(done));
}

void DistributedHeavyChild::submit_add_internal_above(NodeId child,
                                                      Callback done) {
  submit(RequestSpec{RequestSpec::Type::kAddInternal, child},
         std::move(done));
}

void DistributedHeavyChild::submit_remove(NodeId v, Callback done) {
  submit(RequestSpec{RequestSpec::Type::kRemove, v}, std::move(done));
}

NodeId DistributedHeavyChild::heavy(NodeId v) const {
  auto it = heavy_.find(v);
  return it == heavy_.end() ? kNoNode : it->second;
}

std::uint64_t DistributedHeavyChild::light_ancestors(NodeId v) const {
  DYNCON_REQUIRE(tree_.alive(v), "light_ancestors of a dead node");
  std::uint64_t light = 0;
  NodeId cur = v;
  while (cur != tree_.root()) {
    const NodeId p = tree_.parent(cur);
    if (heavy(p) != cur) ++light;
    cur = p;
  }
  return light;
}

std::uint64_t DistributedHeavyChild::max_light_ancestors() const {
  std::uint64_t best = 0;
  for (NodeId v : tree_.alive_nodes()) {
    best = std::max(best, light_ancestors(v));
  }
  return best;
}

std::uint64_t DistributedHeavyChild::messages() const {
  return est_->messages() + report_messages_;
}

void DistributedHeavyChild::on_add_leaf(NodeId u, NodeId parent) {
  child_reports_[parent][u] = 1;
  recompute_heavy(parent);
}

void DistributedHeavyChild::on_remove_leaf(NodeId u, NodeId parent) {
  child_reports_[parent].erase(u);
  child_reports_.erase(u);
  heavy_.erase(u);
  recompute_heavy(parent);
}

void DistributedHeavyChild::on_add_internal(NodeId u, NodeId parent,
                                            NodeId child) {
  auto& preports = child_reports_[parent];
  const auto it = preports.find(child);
  const std::uint64_t child_est = it == preports.end() ? 1 : it->second;
  preports.erase(child);
  preports[u] = child_est + 1;
  child_reports_[u][child] = child_est;
  heavy_[u] = child;
  recompute_heavy(parent);
}

void DistributedHeavyChild::on_remove_internal(
    NodeId u, NodeId parent, const std::vector<NodeId>& children) {
  auto& preports = child_reports_[parent];
  preports.erase(u);
  auto& ureports = child_reports_[u];
  for (NodeId c : children) {
    const auto it = ureports.find(c);
    preports[c] = it == ureports.end() ? 1 : it->second;
  }
  child_reports_.erase(u);
  heavy_.erase(u);
  recompute_heavy(parent);
}

}  // namespace dyncon::apps

#include "apps/nca_labeling.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dyncon::apps {

using core::Result;

NcaLabeling::NcaLabeling(tree::DynamicTree& tree, Options options)
    : tree_(tree) {
  SizeEstimation::Options se;
  se.track_domains = options.track_domains;
  se.on_iteration_start = [this] {
    // Rebuild at iteration boundaries once the tree drifted enough that
    // grafted light leaves degrade the label-length guarantee.
    if (tree_.size() * 2 <= built_for_ || built_for_ * 2 <= tree_.size()) {
      rebuild();
    }
  };
  size_est_ = std::make_unique<SizeEstimation>(tree, 2.0, std::move(se));
  rebuild();
}

void NcaLabeling::rebuild() {
  ++rebuilds_;
  labels_.clear();
  paths_.clear();

  // Exact subtree sizes, children-after-parents order reversed.
  const auto order = tree_.alive_nodes();
  std::unordered_map<NodeId, std::uint64_t> size;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    std::uint64_t w = 1;
    for (NodeId c : tree_.children(*it)) w += size[c];
    size[*it] = w;
  }

  // Heavy child = child with the largest subtree; build labels root-down.
  std::unordered_map<NodeId, Entry> position;  // node -> its path position
  for (NodeId v : order) {
    Entry pos;
    if (v == tree_.root()) {
      pos = Entry{v, 0};
      labels_[v] = {pos};
    } else {
      const NodeId p = tree_.parent(v);
      const Entry parent_pos = position.at(p);
      // Is v its parent's heavy child?
      NodeId heavy = tree_.children(p).front();
      for (NodeId c : tree_.children(p)) {
        if (size[c] > size[heavy]) heavy = c;
      }
      if (v == heavy) {
        pos = Entry{parent_pos.head, parent_pos.offset + 1};
        Label lab = labels_.at(p);
        lab.back().offset = pos.offset;
        labels_[v] = std::move(lab);
      } else {
        pos = Entry{v, 0};
        Label lab = labels_.at(p);
        lab.push_back(pos);
        labels_[v] = std::move(lab);
      }
    }
    position[v] = pos;
    auto& members = paths_[pos.head];
    DYNCON_INVARIANT(members.size() == pos.offset,
                     "path members built out of order");
    members.push_back(v);
  }
  built_for_ = tree_.size();
  control_messages_ += 2 * tree_.size();  // the rebuilding traversal
}

Result NcaLabeling::request_add_leaf(NodeId parent) {
  Result r = size_est_->request_add_leaf(parent);
  if (!r.granted()) return r;
  // The new leaf joins as its own single-node light path: one extra label
  // entry relative to its parent, assigned by a local handshake.
  const NodeId u = r.new_node;
  Label lab = labels_.at(parent);
  lab.push_back(Entry{u, 0});
  labels_[u] = std::move(lab);
  paths_[u] = {u};
  ++control_messages_;
  return r;
}

Result NcaLabeling::request_remove_leaf(NodeId v) {
  DYNCON_REQUIRE(tree_.alive(v) && tree_.is_leaf(v),
                 "NCA labeling supports leaf removals only (Obs. 5.5)");
  Result r = size_est_->request_remove(v);
  if (!r.granted()) return r;
  // Obs. 5.5: no surviving label references the removed leaf's position
  // (a leaf is always the terminal node of its path).
  labels_.erase(v);
  auto it = paths_.find(v);
  if (it != paths_.end()) {
    paths_.erase(it);  // it was a grafted single-node path
  } else {
    // It terminated a build-time heavy path: shrink that member array.
    for (auto& [head, members] : paths_) {
      if (!members.empty() && members.back() == v) {
        members.pop_back();
        break;
      }
    }
  }
  return r;
}

NodeId NcaLabeling::nca(NodeId u, NodeId v) const {
  const Label& lu = label(u);
  const Label& lv = label(v);
  // Longest shared-head prefix; heads agreeing implies the earlier exit
  // offsets agree too (a heavy path has a unique entry point).
  std::size_t j = 0;
  while (j + 1 < lu.size() && j + 1 < lv.size() &&
         lu[j + 1].head == lv[j + 1].head) {
    ++j;
  }
  DYNCON_INVARIANT(lu[j].head == lv[j].head,
                   "labels share no path (different trees?)");
  const std::uint64_t offset = std::min(lu[j].offset, lv[j].offset);
  const auto& members = paths_.at(lu[j].head);
  DYNCON_INVARIANT(offset < members.size(), "stale path directory");
  return members[offset];
}

const NcaLabeling::Label& NcaLabeling::label(NodeId v) const {
  DYNCON_REQUIRE(tree_.alive(v), "label of a dead node");
  auto it = labels_.find(v);
  DYNCON_INVARIANT(it != labels_.end(), "alive node without a label");
  return it->second;
}

std::uint64_t NcaLabeling::max_label_entries() const {
  std::uint64_t best = 0;
  for (NodeId v : tree_.alive_nodes()) {
    best = std::max<std::uint64_t>(best, label(v).size());
  }
  return best;
}

std::uint64_t NcaLabeling::messages() const {
  return size_est_->messages() + control_messages_;
}

}  // namespace dyncon::apps

#pragma once

// The name-assignment protocol of §5.2 (Theorem 5.2).
//
// Every node holds a short unique identity: at any time all identities are
// distinct integers in [1, 4n], i.e. log n + O(1) bits.  Iteration i:
//
//   1. count N_i and relabel in two DFS traversals — first to the
//      "temporary" range (id = 3*N_i + DFS number), then to [1, N_i]; the
//      two-phase dance keeps identities unique *during* the relabeling;
//   2. run a terminating (N_i/2, N_i/4)-controller whose permits carry
//      explicit serial numbers from [N_i+1, 3N_i/2]; a node that joins is
//      named by the serial of the permit that admitted it.
//
// The iteration ends when the controller terminates (after >= N_i/4
// changes), giving the O(n0 log^2 n0 + sum_j log^2 n_j) message bound.

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "core/terminating_controller.hpp"

namespace dyncon::apps {

class NameAssignment {
 public:
  struct Options {
    bool track_domains = false;
  };

  /// Initial identities are assigned by a DFS over the starting tree.
  NameAssignment(tree::DynamicTree& tree, Options options);
  explicit NameAssignment(tree::DynamicTree& tree)
      : NameAssignment(tree, Options{}) {}

  core::Result request_add_leaf(NodeId parent);
  core::Result request_add_internal_above(NodeId child);
  core::Result request_remove(NodeId v);

  /// Current identity of an alive node.
  [[nodiscard]] std::uint64_t id_of(NodeId v) const;

  /// Largest identity currently in use (0 when only the root exists...
  /// the root always has one, so >= 1).
  [[nodiscard]] std::uint64_t max_id() const;

  /// True iff all current identities are pairwise distinct (audit).
  [[nodiscard]] bool ids_unique() const;

  [[nodiscard]] std::uint64_t iterations() const { return iterations_; }
  [[nodiscard]] std::uint64_t messages() const;

 private:
  template <typename Fn>
  core::Result with_rotation(Fn&& submit);
  void start_iteration();
  void relabel_dfs(std::uint64_t offset);

  tree::DynamicTree& tree_;
  Options options_;
  std::unique_ptr<core::TerminatingController> inner_;
  std::unordered_map<NodeId, std::uint64_t> ids_;
  std::uint64_t iterations_ = 0;
  std::uint64_t control_messages_ = 0;
  std::uint64_t messages_base_ = 0;
};

}  // namespace dyncon::apps

#pragma once

// Heavy-child decomposition maintenance (§5.3, Theorem 5.4).
//
// Each internal node v keeps a pointer mu(v) to one child — its *heavy*
// child; all other children are *light*.  The protocol maintains the
// pointers so that every node has O(log n) light ancestors at all times:
//
//   * a subtree estimator with beta = sqrt(3) gives each node a
//     beta-approximation of its super-weight;
//   * whenever a node's estimate changes it informs its parent (one
//     message; at most doubling the total message count);
//   * each parent points at the child with the largest reported estimate,
//     which guarantees SW(light child) <= 3/4 * SW(v).
//
// Deviation noted in DESIGN.md: the paper has each node remember only the
// single largest child estimate; we keep the last report of every child
// (local memory only, no extra messages) so the pointer can be recomputed
// when the heavy child is deleted or re-parented.

#include <cmath>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "apps/subtree_estimator.hpp"

namespace dyncon::apps {

class HeavyChild final : private tree::TreeObserver {
 public:
  struct Options {
    bool track_domains = false;
  };

  HeavyChild(tree::DynamicTree& tree, Options options);
  explicit HeavyChild(tree::DynamicTree& tree)
      : HeavyChild(tree, Options{}) {}
  ~HeavyChild() override;

  core::Result request_add_leaf(NodeId parent);
  core::Result request_add_internal_above(NodeId child);
  core::Result request_remove(NodeId v);

  /// mu(v): the heavy child of v, or kNoNode for a leaf.
  [[nodiscard]] NodeId heavy(NodeId v) const;

  /// Number of light ancestors of v (ancestors a != v whose child on the
  /// path to v is not mu(a)).
  [[nodiscard]] std::uint64_t light_ancestors(NodeId v) const;

  /// max over alive nodes (the decomposition's quality, O(log n) claimed).
  [[nodiscard]] std::uint64_t max_light_ancestors() const;

  [[nodiscard]] std::uint64_t messages() const;
  [[nodiscard]] const SubtreeEstimator& estimator() const { return *est_; }

 private:
  void on_estimate_update(NodeId v);
  void report_to_parent(NodeId v);
  void recompute_heavy(NodeId v);

  // TreeObserver: keep the child-report tables aligned with the topology.
  void on_add_leaf(NodeId u, NodeId parent) override;
  void on_remove_leaf(NodeId u, NodeId parent) override;
  void on_add_internal(NodeId u, NodeId parent, NodeId child) override;
  void on_remove_internal(NodeId u, NodeId parent,
                          const std::vector<NodeId>& children) override;

  tree::DynamicTree& tree_;
  std::unique_ptr<SubtreeEstimator> est_;
  /// Last estimate each child reported to this node.
  std::unordered_map<NodeId, std::unordered_map<NodeId, std::uint64_t>>
      child_reports_;
  std::unordered_map<NodeId, NodeId> heavy_;
  std::uint64_t report_messages_ = 0;
};

}  // namespace dyncon::apps

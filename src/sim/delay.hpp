#pragma once

// Message-delay adversaries.
//
// Message complexity — the paper's cost measure — is independent of the
// delay schedule, but *which execution happens* (which agent wins a lock,
// which requests overlap) is not.  A DelayPolicy is the adversary that picks
// each message's in-flight delay; benches and property tests sweep policies
// to show the complexity bounds hold across schedules (paper Lemmas
// 4.2–4.5 argue over all executions).

#include <cstdint>
#include <memory>
#include <string>

#include "util/ids.hpp"
#include "util/rng.hpp"

namespace dyncon::sim {

/// Strategy deciding each message's delivery delay (>= 1 tick).
class DelayPolicy {
 public:
  virtual ~DelayPolicy() = default;

  /// Delay for the `seq`-th message from `from` to `to`.
  [[nodiscard]] virtual SimTime delay(NodeId from, NodeId to,
                                      std::uint64_t seq) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Every message takes exactly `ticks`.  FIFO per link, synchronous-like.
class FixedDelay final : public DelayPolicy {
 public:
  explicit FixedDelay(SimTime ticks = 1);
  [[nodiscard]] SimTime delay(NodeId, NodeId, std::uint64_t) override;
  [[nodiscard]] std::string name() const override;

 private:
  SimTime ticks_;
};

/// Uniform random delay in [lo, hi].
class UniformDelay final : public DelayPolicy {
 public:
  UniformDelay(Rng rng, SimTime lo, SimTime hi);
  [[nodiscard]] SimTime delay(NodeId, NodeId, std::uint64_t) override;
  [[nodiscard]] std::string name() const override;

 private:
  Rng rng_;
  SimTime lo_, hi_;
};

/// Heavy-tailed delay: mostly fast, occasionally very slow (stragglers).
class HeavyTailDelay final : public DelayPolicy {
 public:
  HeavyTailDelay(Rng rng, SimTime cap);
  [[nodiscard]] SimTime delay(NodeId, NodeId, std::uint64_t) override;
  [[nodiscard]] std::string name() const override;

 private:
  Rng rng_;
  SimTime cap_;
};

/// Per-node bias: messages touching "slow" nodes crawl; maximizes overlap
/// between concurrent agent walks.
class BiasedDelay final : public DelayPolicy {
 public:
  BiasedDelay(Rng rng, double slow_fraction, SimTime slow_ticks);
  [[nodiscard]] SimTime delay(NodeId from, NodeId to,
                              std::uint64_t seq) override;
  [[nodiscard]] std::string name() const override;

 private:
  [[nodiscard]] bool is_slow(NodeId id) const;
  Rng rng_;
  double slow_fraction_;
  SimTime slow_ticks_;
  std::uint64_t salt_;
};

/// Deliberate reordering: consecutive messages get descending delays, so
/// within every window of `window` sends the later message tends to arrive
/// first.  The protocols assume nothing about link FIFO-ness; this
/// adversary is what checks that.
class ReorderDelay final : public DelayPolicy {
 public:
  ReorderDelay(Rng rng, SimTime window);
  [[nodiscard]] SimTime delay(NodeId, NodeId, std::uint64_t seq) override;
  [[nodiscard]] std::string name() const override;

 private:
  Rng rng_;
  SimTime window_;
};

/// Factory helpers keyed by a small enum, so benches can sweep policies.
enum class DelayKind { kFixed, kUniform, kHeavyTail, kBiased, kReorder };

[[nodiscard]] std::unique_ptr<DelayPolicy> make_delay(DelayKind kind,
                                                      std::uint64_t seed);
[[nodiscard]] const char* delay_kind_name(DelayKind kind);

}  // namespace dyncon::sim

#pragma once

// Discrete-event simulation core.
//
// The paper's model is a fully asynchronous message-passing network with
// arbitrary-but-finite message delays.  We realize executions of that model
// with a deterministic discrete-event loop: every message delivery (and
// every environment action, such as a request arrival) is an event with a
// firing time; ties are broken by insertion sequence so a run is a pure
// function of (scenario, seed).

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/error.hpp"
#include "util/ids.hpp"

namespace dyncon::sim {

/// Deterministic discrete-event queue.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedule `action` to fire `delay` ticks after the current time.
  void schedule_after(SimTime delay, Action action);

  /// Schedule at an absolute time (must not be in the past).
  void schedule_at(SimTime when, Action action);

  /// Fire the earliest pending event.  Requires !empty().
  void step();

  /// Run until no events remain or `max_events` have fired.
  /// Returns the number of events fired.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t fired_ = 0;
};

}  // namespace dyncon::sim

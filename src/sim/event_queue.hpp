#pragma once

// Discrete-event simulation core.
//
// The paper's model is a fully asynchronous message-passing network with
// arbitrary-but-finite message delays.  We realize executions of that model
// with a deterministic discrete-event loop: every message delivery (and
// every environment action, such as a request arrival) is an event with a
// firing time; ties are broken by insertion sequence so a run is a pure
// function of (scenario, seed).
//
// Hot-path notes: actions are InlineFn (inline storage, no heap) living
// out-of-line in a slot slab (recycled through a free list), so the records
// the queue shuffles are trivially copyable 24-byte entries.
//
// The queue itself is a two-tier calendar (PR 9): a window of kWindow
// one-tick FIFO buckets covers [now, now + kWindow), and everything farther
// out waits in a binary heap.  Near-term traffic — which is almost all of
// it: protocol messages ride 1-tick links, resumes fire at +0 — costs an
// append and a bitmap scan per event instead of O(log n) sift levels
// through a heap that open-loop benches keep ~10^5 entries deep.  Far
// entries migrate heap -> bucket when the window slides over them, which
// happens exactly once per entry (amortized one heap pop per far schedule).
//
// Exactness of the (when, seq) order, which byte-identical replay rests on:
//   * a bucket only ever holds ONE firing time (the window spans kWindow
//     ticks, so within it each residue class mod kWindow names one tick;
//     ticks at or before `now` are fully drained before `now` advances);
//   * appends to a bucket arrive in ascending seq: the window only slides
//     when now advances, migration drains the heap in (when, seq) order at
//     that instant — before any action at the new time can schedule — and
//     direct schedules afterwards carry strictly larger seqs;
//   * the heap and the buckets never hold the same firing time (a time
//     inside the window was either migrated already or was never eligible
//     for the heap), so min(bucket front, heap top) needs no tie-break.

#include <array>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "util/error.hpp"
#include "util/ids.hpp"
#include "util/inline_fn.hpp"

namespace dyncon::sim {

/// Deterministic discrete-event queue.
class EventQueue {
 public:
  using Action = InlineFn<void()>;

  /// Width of the near-term calendar window, in ticks.
  static constexpr SimTime kWindow = 256;

  /// Schedule `action` to fire `delay` ticks after the current time.
  /// Returns the slab slot holding the action (see replace_action).
  std::uint32_t schedule_after(SimTime delay, Action action);

  /// Schedule at an absolute time (must not be in the past).
  /// Returns the slab slot holding the action (see replace_action).
  std::uint32_t schedule_at(SimTime when, Action action);

  /// Swap the pending action in `slot` for another one, in place — the
  /// entry's (when, seq) position is untouched.  This is how the network
  /// upgrades an already-scheduled plain delivery into a coalesced-frame
  /// dispatch when a second same-edge send arrives: the common n==1 case
  /// pays for a plain schedule and nothing else.  The caller must prove
  /// the entry has not fired yet (slots are recycled at pop time): the
  /// network's test is "schedule_seq() unchanged since the schedule AND
  /// the firing tick is still in the future".
  Action replace_action(std::uint32_t slot, Action action) {
    Action old = std::move(slab_[slot]);
    slab_[slot] = std::move(action);
    return old;
  }

  /// Fire the earliest pending event.  Requires !empty().
  void step();

  /// Run until no events remain or `max_events` have fired.
  /// Returns the number of events fired.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Fire events in (when, seq) order while the next firing time is strictly
  /// below `horizon` (events an action schedules inside the horizon fire
  /// too).  Events at or past the horizon stay pending — this is how the
  /// forest runtime advances shards in bounded virtual-time windows.
  /// Returns the number of events fired.
  std::uint64_t run_until(SimTime horizon);

  /// Firing time of the earliest pending event.  Requires !empty().
  [[nodiscard]] SimTime next_time() const {
    DYNCON_REQUIRE(!empty(), "next_time on empty queue");
    if (bucket_pending_ != 0) {
      const SimTime tb = earliest_bucket_time();
      return heap_.empty() || tb < heap_.front().when ? tb
                                                      : heap_.front().when;
    }
    return heap_.front().when;
  }

  /// Pre-size the far heap (events the caller is about to schedule).
  void reserve(std::size_t events) {
    heap_.reserve(events);
    slab_.reserve(events);
    free_.reserve(events);
  }

  [[nodiscard]] bool empty() const {
    return heap_.empty() && bucket_pending_ == 0;
  }
  [[nodiscard]] std::size_t pending() const {
    return heap_.size() + bucket_pending_;
  }
  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

  /// The seq the NEXT schedule_at/schedule_after call will consume.  Lets
  /// the network detect "nothing was scheduled since" — the legality test
  /// for coalescing consecutive same-edge deliveries into one batch.
  [[nodiscard]] std::uint64_t schedule_seq() const { return seq_; }

  /// Credit `n` additional fired events without dispatching through the
  /// queue.  Batched dispatch (a coalesced delivery frame, an inlined grant
  /// wave) runs k logical events under one queue pop; crediting the other
  /// k-1 here keeps events_fired() — and every perf.events counter derived
  /// from it — identical between batched and unbatched runs.
  void count_extra_fired(std::uint64_t n) { fired_ += n; }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;  ///< index of the action in slab_
  };
  static_assert(std::is_trivially_copyable_v<Entry>,
                "queue shuffles must reduce to memcpy");
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  static constexpr std::size_t kBitmapWords = kWindow / 64;

  void bucket_put(const Entry& e);
  /// Slide the window to the (just advanced) now_: drain heap entries whose
  /// time fell inside [now_, now_ + kWindow) into their buckets, in
  /// (when, seq) order.
  void migrate();
  /// Earliest non-empty bucket's firing time; requires bucket_pending_ != 0.
  [[nodiscard]] SimTime earliest_bucket_time() const;

  std::vector<Entry> heap_;  // beyond-window events; max-heap under Later
  std::array<std::vector<Entry>, kWindow> buckets_;  // one tick each, FIFO
  std::array<std::uint32_t, kWindow> cursor_{};  // per-bucket read position
  std::array<std::uint64_t, kBitmapWords> live_{};  // non-empty-bucket bits
  std::size_t bucket_pending_ = 0;
  std::vector<Action> slab_;          // pending actions, addressed by slot
  std::vector<std::uint32_t> free_;   // recycled slab slots
  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t fired_ = 0;
};

}  // namespace dyncon::sim

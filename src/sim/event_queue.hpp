#pragma once

// Discrete-event simulation core.
//
// The paper's model is a fully asynchronous message-passing network with
// arbitrary-but-finite message delays.  We realize executions of that model
// with a deterministic discrete-event loop: every message delivery (and
// every environment action, such as a request arrival) is an event with a
// firing time; ties are broken by insertion sequence so a run is a pure
// function of (scenario, seed).
//
// Hot-path notes: actions are InlineFn (inline storage, no heap), and the
// heap is an explicit std::vector driven by std::push_heap/pop_heap — the
// comparator is a total strict order over (when, seq), so FIFO tie-breaking
// survives the heap's internal reshuffling, and pop_heap lets us move the
// fired entry out of a mutable back() instead of const_casting top().
// Actions live out-of-line in a slot slab (recycled through a free list):
// the heap entries the sift operations shuffle are trivially copyable
// 24-byte records, so a sift level is a memcpy instead of a destroy +
// relocate through InlineFn's ops table; each action is moved exactly
// twice (into its slab slot, out again when it fires).

#include <cstdint>
#include <type_traits>
#include <vector>

#include "util/error.hpp"
#include "util/ids.hpp"
#include "util/inline_fn.hpp"

namespace dyncon::sim {

/// Deterministic discrete-event queue.
class EventQueue {
 public:
  using Action = InlineFn<void()>;

  /// Schedule `action` to fire `delay` ticks after the current time.
  void schedule_after(SimTime delay, Action action);

  /// Schedule at an absolute time (must not be in the past).
  void schedule_at(SimTime when, Action action);

  /// Fire the earliest pending event.  Requires !empty().
  void step();

  /// Run until no events remain or `max_events` have fired.
  /// Returns the number of events fired.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Fire events in (when, seq) order while the next firing time is strictly
  /// below `horizon` (events an action schedules inside the horizon fire
  /// too).  Events at or past the horizon stay pending — this is how the
  /// forest runtime advances shards in bounded virtual-time windows.
  /// Returns the number of events fired.
  std::uint64_t run_until(SimTime horizon);

  /// Firing time of the earliest pending event.  Requires !empty().
  [[nodiscard]] SimTime next_time() const {
    DYNCON_REQUIRE(!heap_.empty(), "next_time on empty queue");
    return heap_.front().when;
  }

  /// Pre-size the event heap (events the caller is about to schedule).
  void reserve(std::size_t events) {
    heap_.reserve(events);
    slab_.reserve(events);
    free_.reserve(events);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;  ///< index of the action in slab_
  };
  static_assert(std::is_trivially_copyable_v<Entry>,
                "heap sifts must reduce to memcpy");
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::vector<Entry> heap_;  // max-heap under Later == min-(when, seq) first
  std::vector<Action> slab_;          // pending actions, addressed by slot
  std::vector<std::uint32_t> free_;   // recycled slab slots
  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t fired_ = 0;
};

}  // namespace dyncon::sim

#include "sim/fault.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dyncon::sim {

namespace {

/// Full murmur3 finalizer: the same stable-coin idiom BiasedDelay uses for
/// its per-node bias, here keyed by links/nodes plus a policy salt.
std::uint64_t mix(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform in [0,1)
}

void check_probability(double p) {
  DYNCON_REQUIRE(p >= 0.0 && p < 1.0, "fault probability must be in [0,1)");
}

}  // namespace

// ---- DropFault --------------------------------------------------------------

DropFault::DropFault(Rng rng, double p) : rng_(rng), p_(p) {
  check_probability(p);
}

FaultDecision DropFault::on_send(NodeId, NodeId, MsgKind, std::uint64_t,
                                 SimTime) {
  FaultDecision d;
  d.drop = rng_.chance(p_);
  return d;
}

std::string DropFault::name() const {
  return "drop(p=" + std::to_string(p_) + ")";
}

// ---- DuplicateFault ---------------------------------------------------------

DuplicateFault::DuplicateFault(Rng rng, double p) : rng_(rng), p_(p) {
  check_probability(p);
}

FaultDecision DuplicateFault::on_send(NodeId, NodeId, MsgKind, std::uint64_t,
                                      SimTime) {
  FaultDecision d;
  if (rng_.chance(p_)) d.duplicates = 1;
  return d;
}

std::string DuplicateFault::name() const {
  return "duplicate(p=" + std::to_string(p_) + ")";
}

// ---- BurstLossFault ---------------------------------------------------------

BurstLossFault::BurstLossFault(Rng rng, double link_fraction, SimTime period,
                               SimTime burst_len)
    : link_fraction_(link_fraction), period_(period), burst_len_(burst_len) {
  DYNCON_REQUIRE(link_fraction >= 0.0 && link_fraction <= 1.0,
                 "link_fraction out of range");
  DYNCON_REQUIRE(period >= 1 && burst_len < period,
                 "burst must be shorter than its period, or nothing would "
                 "ever get through");
  salt_ = rng.next();
}

bool BurstLossFault::flaky(NodeId from, NodeId to) const {
  return to_unit(mix((from * 0x9e3779b97f4a7c15ULL) ^ mix(to ^ salt_))) <
         link_fraction_;
}

FaultDecision BurstLossFault::on_send(NodeId from, NodeId to, MsgKind,
                                      std::uint64_t, SimTime now) {
  FaultDecision d;
  if (!flaky(from, to)) return d;
  // Per-link phase so bursts do not synchronize across the whole network.
  const SimTime phase =
      mix((from << 1) ^ to ^ salt_ ^ 0xabcdefULL) % period_;
  d.drop = (now + phase) % period_ < burst_len_;
  return d;
}

std::string BurstLossFault::name() const {
  return "burst(f=" + std::to_string(link_fraction_) +
         ",len=" + std::to_string(burst_len_) + "/" + std::to_string(period_) +
         ")";
}

// ---- StallFault -------------------------------------------------------------

StallFault::StallFault(Rng rng, double node_fraction, SimTime period,
                       SimTime stall_len)
    : node_fraction_(node_fraction), period_(period), stall_len_(stall_len) {
  DYNCON_REQUIRE(node_fraction >= 0.0 && node_fraction <= 1.0,
                 "node_fraction out of range");
  DYNCON_REQUIRE(period >= 1 && stall_len < period,
                 "stall must be shorter than its period, or the node would "
                 "never resume");
  salt_ = rng.next();
}

SimTime StallFault::stalled_for(NodeId node, SimTime now) const {
  if (to_unit(mix(node ^ salt_)) >= node_fraction_) return 0;
  const SimTime phase = mix(node ^ salt_ ^ 0x5ca1ab1eULL) % period_;
  const SimTime pos = (now + phase) % period_;
  return pos < stall_len_ ? stall_len_ - pos : 0;
}

FaultDecision StallFault::on_send(NodeId from, NodeId to, MsgKind,
                                  std::uint64_t, SimTime now) {
  FaultDecision d;
  // A stalled sender's message leaves once it resumes; a stalled receiver
  // processes its queue once it resumes.  Either way: held, not lost.
  d.stall_ticks = std::max(stalled_for(from, now), stalled_for(to, now));
  return d;
}

std::string StallFault::name() const {
  return "stall(f=" + std::to_string(node_fraction_) +
         ",len=" + std::to_string(stall_len_) + "/" + std::to_string(period_) +
         ")";
}

// ---- ComposedFault ----------------------------------------------------------

ComposedFault::ComposedFault(
    std::vector<std::unique_ptr<FaultPolicy>> children)
    : children_(std::move(children)) {
  for (const auto& c : children_) {
    DYNCON_REQUIRE(c != nullptr, "null child fault policy");
  }
}

FaultDecision ComposedFault::on_send(NodeId from, NodeId to, MsgKind kind,
                                     std::uint64_t seq, SimTime now) {
  FaultDecision d;
  for (auto& c : children_) {
    const FaultDecision cd = c->on_send(from, to, kind, seq, now);
    d.drop = d.drop || cd.drop;
    d.duplicates += cd.duplicates;
    d.stall_ticks = std::max(d.stall_ticks, cd.stall_ticks);
  }
  return d;
}

bool ComposedFault::fault_free() const {
  return std::all_of(children_.begin(), children_.end(),
                     [](const auto& c) { return c->fault_free(); });
}

std::string ComposedFault::name() const {
  std::string s = "composed(";
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (i) s += ",";
    s += children_[i]->name();
  }
  return s + ")";
}

// ---- factory ----------------------------------------------------------------

std::unique_ptr<FaultPolicy> make_fault(FaultKind kind, std::uint64_t seed) {
  Rng rng(seed);
  switch (kind) {
    case FaultKind::kNone:
      return nullptr;
    case FaultKind::kDrop:
      return std::make_unique<DropFault>(rng, 0.1);
    case FaultKind::kDuplicate:
      return std::make_unique<DuplicateFault>(rng, 0.1);
    case FaultKind::kBurst:
      return std::make_unique<BurstLossFault>(rng, 0.2, 96, 24);
    case FaultKind::kStall:
      return std::make_unique<StallFault>(rng, 0.1, 192, 48);
    case FaultKind::kChaos: {
      std::vector<std::unique_ptr<FaultPolicy>> parts;
      parts.push_back(std::make_unique<DropFault>(rng.split(), 0.05));
      parts.push_back(std::make_unique<DuplicateFault>(rng.split(), 0.05));
      parts.push_back(std::make_unique<BurstLossFault>(rng.split(), 0.1, 96, 16));
      parts.push_back(std::make_unique<StallFault>(rng.split(), 0.05, 192, 32));
      return std::make_unique<ComposedFault>(std::move(parts));
    }
  }
  throw ContractError("unknown FaultKind");
}

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kBurst:
      return "burst";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kChaos:
      return "chaos";
  }
  return "?";
}

const std::vector<FaultKind>& all_fault_kinds() {
  static const std::vector<FaultKind> kinds = {
      FaultKind::kNone,  FaultKind::kDrop,  FaultKind::kDuplicate,
      FaultKind::kBurst, FaultKind::kStall, FaultKind::kChaos};
  return kinds;
}

}  // namespace dyncon::sim

#include "sim/wire.hpp"

#include <bit>
#include <ostream>
#include <sstream>

#include "util/log2.hpp"

namespace dyncon::sim {

const char* msg_kind_name(MsgKind kind) {
  switch (kind) {
    case MsgKind::kAgent:
      return "agent";
    case MsgKind::kReject:
      return "reject";
    case MsgKind::kControl:
      return "control";
    case MsgKind::kDataMove:
      return "datamove";
    case MsgKind::kApp:
      return "app";
    case MsgKind::kChannel:
      return "channel";
    case MsgKind::kBatch:
      return "batch";
    case MsgKind::kKindCount__:
      break;
  }
  return "invalid";
}

std::ostream& operator<<(std::ostream& os, MsgKind kind) {
  const char* name = msg_kind_name(kind);
  os << name;
  if (name[0] == 'i') {  // "invalid": show the raw byte too
    os << "(MsgKind=" << static_cast<unsigned>(kind) << ")";
  }
  return os;
}

// ---- BitWriter --------------------------------------------------------------

void BitWriter::put_bit(bool bit) {
  const std::uint64_t offset = out_.bits % 8;
  if (offset == 0) out_.bytes.push_back(0);
  if (bit) out_.bytes.back() |= static_cast<std::uint8_t>(1u << (7 - offset));
  ++out_.bits;
}

void BitWriter::put_bits(std::uint64_t value, std::uint32_t width) {
  DYNCON_REQUIRE(width <= 64, "bit-field width exceeds 64");
  DYNCON_REQUIRE(width == 64 || value < (std::uint64_t{1} << width),
                 "value does not fit the declared bit-field width");
  for (std::uint32_t i = width; i-- > 0;) {
    put_bit((value >> i) & 1u);
  }
}

void BitWriter::put_gamma(std::uint64_t v) {
  DYNCON_REQUIRE(v < (std::uint64_t{1} << 62), "gamma field overflow");
  const std::uint64_t n = v + 1;
  const std::uint32_t len = floor_log2(n);
  for (std::uint32_t i = 0; i < len; ++i) put_bit(false);
  put_bits(n, len + 1);
}

void BitWriter::put_varint(std::uint64_t v) {
  // High 7-bit groups first; every group but the last sets the
  // continuation bit.
  std::uint32_t groups = 1;
  for (std::uint64_t rest = v >> 7; rest != 0; rest >>= 7) ++groups;
  for (std::uint32_t g = groups; g-- > 0;) {
    const std::uint64_t chunk = (v >> (7 * g)) & 0x7Fu;
    put_bit(g != 0);  // continuation
    put_bits(chunk, 7);
  }
}

void BitWriter::pad_zeros(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) put_bit(false);
}

void BitWriter::put_encoded(const Encoded& src) {
  BitReader r(src);
  std::uint64_t left = src.bits;
  while (left >= 64) {
    put_bits(r.get_bits(64), 64);
    left -= 64;
  }
  if (left > 0) {
    put_bits(r.get_bits(static_cast<std::uint32_t>(left)),
             static_cast<std::uint32_t>(left));
  }
}

// ---- BitReader --------------------------------------------------------------

bool BitReader::get_bit() {
  DYNCON_REQUIRE(pos_ < enc_.bits, "wire underrun: read past end of message");
  const std::uint64_t byte = pos_ / 8;
  const std::uint64_t offset = pos_ % 8;
  ++pos_;
  return (enc_.bytes[byte] >> (7 - offset)) & 1u;
}

std::uint64_t BitReader::get_bits(std::uint32_t width) {
  DYNCON_REQUIRE(width <= 64, "bit-field width exceeds 64");
  std::uint64_t v = 0;
  for (std::uint32_t i = 0; i < width; ++i) {
    v = (v << 1) | static_cast<std::uint64_t>(get_bit());
  }
  return v;
}

std::uint64_t BitReader::get_gamma() {
  std::uint32_t len = 0;
  while (!get_bit()) {
    ++len;
    DYNCON_REQUIRE(len < 63, "malformed gamma code: runaway zero prefix");
  }
  std::uint64_t n = 1;
  for (std::uint32_t i = 0; i < len; ++i) {
    n = (n << 1) | static_cast<std::uint64_t>(get_bit());
  }
  return n - 1;
}

std::uint64_t BitReader::get_varint() {
  std::uint64_t v = 0;
  for (std::uint32_t groups = 0;; ++groups) {
    DYNCON_REQUIRE(groups < 10, "malformed varint: too many groups");
    const bool more = get_bit();
    v = (v << 7) | get_bits(7);
    if (!more) return v;
  }
}

void BitReader::skip(std::uint64_t n) {
  DYNCON_REQUIRE(n <= remaining(), "wire underrun: skip past end of message");
  pos_ += n;
}

// ---- Message ----------------------------------------------------------------

namespace {
constexpr std::uint32_t kTagBits = kMsgTagBits;  // 7 kinds fit 3 bits
constexpr std::uint32_t kTopicBits = 2;  // <= 4 topics per kind
constexpr std::uint32_t kPhaseBits = 3;  // controller phases fit in 3 bits
static_assert(static_cast<std::size_t>(MsgKind::kKindCount__) <=
                  (std::size_t{1} << kTagBits),
              "message kinds no longer fit the wire tag");

/// The one and only description of each message body's wire layout, written
/// against the shared writer interface.  Instantiated for BitWriter (the
/// real encoding) and BitCounter (the size-only release path), so the two
/// cannot drift: any new field is either paid for in both or in neither.
template <class Writer>
void write_message(Writer& w, const Message::Body& body) {
  w.put_bits(body.index(), kTagBits);
  std::visit(
      [&w](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, AgentHopMsg>) {
          w.put_varint(m.agent);
          w.put_gamma(m.distance);
          w.put_gamma(m.top_distance);
          w.put_gamma(m.bag_level);
          w.put_bits(m.phase, kPhaseBits);
          w.put_bit(m.carrying);
        } else if constexpr (std::is_same_v<T, RejectWaveMsg>) {
          // Pure signal: the tag is the message.
        } else if constexpr (std::is_same_v<T, ControlMsg>) {
          w.put_bits(static_cast<std::uint64_t>(m.topic), kTopicBits);
          w.put_gamma(m.value);
        } else if constexpr (std::is_same_v<T, DataMoveMsg>) {
          w.put_gamma(m.item);
        } else if constexpr (std::is_same_v<T, AppMsg>) {
          w.put_bits(static_cast<std::uint64_t>(m.topic), kTopicBits);
          w.put_varint(m.value);
          w.put_gamma(m.opaque_bits);
          w.pad_zeros(m.opaque_bits);
        } else if constexpr (std::is_same_v<T, ChannelMsg>) {
          w.put_bit(m.topic == ChannelTopic::kAck);
          w.put_gamma(m.seq);
          if (m.topic == ChannelTopic::kData) {
            w.put_gamma(m.payload.bits);
            w.put_encoded(m.payload);
          }
        } else {
          static_assert(std::is_same_v<T, BatchMsg>);
          w.put_gamma(m.payloads.size());
          for (const Encoded& p : m.payloads) {
            w.put_gamma(p.bits);
            w.put_encoded(p);
          }
        }
      },
      body);
}
}  // namespace

MsgKind ChannelMsg::inner_kind() const {
  DYNCON_REQUIRE(topic == ChannelTopic::kData && payload.bits >= kTagBits,
                 "inner_kind needs a data frame with a tagged payload");
  BitReader r(payload);
  const std::uint64_t tag = r.get_bits(kTagBits);
  DYNCON_REQUIRE(tag < static_cast<std::uint64_t>(MsgKind::kKindCount__),
                 "channel payload carries an unknown kind tag");
  return static_cast<MsgKind>(tag);
}

MsgKind BatchMsg::payload_kind(std::size_t i) const {
  DYNCON_REQUIRE(i < payloads.size() && payloads[i].bits >= kTagBits,
                 "payload_kind needs an in-range tagged payload");
  BitReader r(payloads[i]);
  const std::uint64_t tag = r.get_bits(kTagBits);
  DYNCON_REQUIRE(tag < static_cast<std::uint64_t>(MsgKind::kKindCount__),
                 "batch payload carries an unknown kind tag");
  return static_cast<MsgKind>(tag);
}

Message Message::agent_hop(std::uint64_t agent, std::uint64_t distance,
                           std::uint64_t top_distance, std::uint32_t bag_level,
                           std::uint8_t phase, bool carrying) {
  DYNCON_REQUIRE(phase < (1u << kPhaseBits), "phase tag does not fit 3 bits");
  return Message(AgentHopMsg{agent, distance, top_distance, bag_level, phase,
                             carrying});
}

Message Message::reject_wave() { return Message(RejectWaveMsg{}); }

Message Message::control(ControlTopic topic, std::uint64_t value) {
  return Message(ControlMsg{topic, value});
}

Message Message::data_move(std::uint64_t item) {
  return Message(DataMoveMsg{item});
}

Message Message::app_value(AppTopic topic, std::uint64_t value) {
  DYNCON_REQUIRE(topic != AppTopic::kMetered,
                 "metered payloads go through app_payload()");
  return Message(AppMsg{topic, value, 0});
}

Message Message::app_payload(std::uint64_t opaque_bits) {
  return Message(AppMsg{AppTopic::kMetered, 0, opaque_bits});
}

Message Message::channel_data(std::uint64_t seq, const Message& inner) {
  DYNCON_REQUIRE(inner.kind() != MsgKind::kChannel,
                 "the reliable channel never nests frames");
  return Message(ChannelMsg{ChannelTopic::kData, seq, inner.encode()});
}

Message Message::channel_data(std::uint64_t seq, Encoded inner) {
  ChannelMsg m{ChannelTopic::kData, seq, std::move(inner)};
  const MsgKind k = m.inner_kind();  // also validates the leading tag
  DYNCON_REQUIRE(k != MsgKind::kChannel,
                 "the reliable channel never nests frames");
  DYNCON_REQUIRE(k != MsgKind::kBatch,
                 "a channel frame wraps one protocol message, not a batch");
  return Message(std::move(m));
}

Message Message::channel_ack(std::uint64_t seq) {
  return Message(ChannelMsg{ChannelTopic::kAck, seq, Encoded{}});
}

Message Message::batch_frame(std::vector<Encoded> payloads) {
  BatchMsg m{std::move(payloads)};
  for (std::size_t i = 0; i < m.payloads.size(); ++i) {
    DYNCON_REQUIRE(m.payload_kind(i) != MsgKind::kBatch,
                   "batch frames never nest");
  }
  return Message(std::move(m));
}

Encoded Message::encode() const {
  // The counting pass is cheap (no buffer work), so spend it to size the
  // output exactly — the byte vector is allocated once, never regrown.
  BitWriter w(encoded_bits());
  write_message(w, body_);
  return w.finish();
}

std::uint64_t Message::encoded_bits() const {
  BitCounter c;
  write_message(c, body_);
  return c.bit_count();
}

Message Message::decode(const Encoded& e) {
  BitReader r(e);
  const std::uint64_t tag = r.get_bits(kTagBits);
  DYNCON_REQUIRE(tag < static_cast<std::uint64_t>(MsgKind::kKindCount__),
                 "malformed message: unknown kind tag");
  Body body;
  switch (static_cast<MsgKind>(tag)) {
    case MsgKind::kAgent: {
      AgentHopMsg m;
      m.agent = r.get_varint();
      m.distance = r.get_gamma();
      m.top_distance = r.get_gamma();
      m.bag_level = static_cast<std::uint32_t>(r.get_gamma());
      m.phase = static_cast<std::uint8_t>(r.get_bits(kPhaseBits));
      m.carrying = r.get_bit();
      body = m;
      break;
    }
    case MsgKind::kReject:
      body = RejectWaveMsg{};
      break;
    case MsgKind::kControl: {
      ControlMsg m;
      m.topic = static_cast<ControlTopic>(r.get_bits(kTopicBits));
      m.value = r.get_gamma();
      body = m;
      break;
    }
    case MsgKind::kDataMove:
      body = DataMoveMsg{r.get_gamma()};
      break;
    case MsgKind::kApp: {
      AppMsg m;
      m.topic = static_cast<AppTopic>(r.get_bits(kTopicBits));
      m.value = r.get_varint();
      m.opaque_bits = r.get_gamma();
      r.skip(m.opaque_bits);
      body = m;
      break;
    }
    case MsgKind::kChannel: {
      ChannelMsg m;
      m.topic = r.get_bit() ? ChannelTopic::kAck : ChannelTopic::kData;
      m.seq = r.get_gamma();
      if (m.topic == ChannelTopic::kData) {
        const std::uint64_t payload_bits = r.get_gamma();
        DYNCON_REQUIRE(payload_bits <= r.remaining(),
                       "malformed channel frame: truncated payload");
        BitWriter pw;
        for (std::uint64_t left = payload_bits; left > 0;) {
          const std::uint32_t chunk =
              left >= 64 ? 64 : static_cast<std::uint32_t>(left);
          pw.put_bits(r.get_bits(chunk), chunk);
          left -= chunk;
        }
        m.payload = pw.finish();
      }
      body = m;
      break;
    }
    case MsgKind::kBatch: {
      BatchMsg m;
      const std::uint64_t count = r.get_gamma();
      DYNCON_REQUIRE(count <= r.remaining(),
                     "malformed batch frame: impossible payload count");
      m.payloads.reserve(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t payload_bits = r.get_gamma();
        DYNCON_REQUIRE(payload_bits <= r.remaining(),
                       "malformed batch frame: truncated payload");
        DYNCON_REQUIRE(payload_bits >= kTagBits,
                       "malformed batch frame: payload too short for a tag");
        BitWriter pw;
        for (std::uint64_t left = payload_bits; left > 0;) {
          const std::uint32_t chunk =
              left >= 64 ? 64 : static_cast<std::uint32_t>(left);
          pw.put_bits(r.get_bits(chunk), chunk);
          left -= chunk;
        }
        m.payloads.push_back(pw.finish());
        DYNCON_REQUIRE(m.payload_kind(i) != MsgKind::kBatch,
                       "malformed batch frame: nested batch payload");
      }
      body = std::move(m);
      break;
    }
    case MsgKind::kKindCount__:
      break;  // unreachable: tag < kKindCount__ checked above
  }
  DYNCON_REQUIRE(r.finished(),
                 "malformed message: trailing bits after the last field");
  return Message(std::move(body));
}

std::string Message::str() const {
  std::ostringstream os;
  os << kind() << "{";
  std::visit(
      [&os](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, AgentHopMsg>) {
          os << "agent=" << m.agent << " dist=" << m.distance
             << " top=" << m.top_distance << " bag=" << m.bag_level
             << " phase=" << static_cast<unsigned>(m.phase)
             << " carrying=" << m.carrying;
        } else if constexpr (std::is_same_v<T, ControlMsg>) {
          os << "topic=" << static_cast<unsigned>(m.topic)
             << " value=" << m.value;
        } else if constexpr (std::is_same_v<T, DataMoveMsg>) {
          os << "item=" << m.item;
        } else if constexpr (std::is_same_v<T, AppMsg>) {
          os << "topic=" << static_cast<unsigned>(m.topic)
             << " value=" << m.value << " opaque_bits=" << m.opaque_bits;
        } else if constexpr (std::is_same_v<T, ChannelMsg>) {
          os << (m.topic == ChannelTopic::kAck ? "ack" : "data")
             << " seq=" << m.seq << " payload_bits=" << m.payload.bits;
        } else if constexpr (std::is_same_v<T, BatchMsg>) {
          std::uint64_t payload_bits = 0;
          for (const Encoded& p : m.payloads) payload_bits += p.bits;
          os << "count=" << m.payloads.size()
             << " payload_bits=" << payload_bits;
        }
      },
      body_);
  os << "}";
  return os.str();
}

}  // namespace dyncon::sim

#include "sim/watchdog.hpp"

#include <iostream>
#include <sstream>

#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace dyncon::sim {

namespace {

constexpr std::uint32_t slot_of(Watchdog::Token token) {
  return static_cast<std::uint32_t>(token & 0xffffffffu);
}
constexpr std::uint32_t serial_of(Watchdog::Token token) {
  return static_cast<std::uint32_t>(token >> 32);
}
constexpr Watchdog::Token pack(std::uint32_t serial, std::uint32_t slot) {
  return (static_cast<Watchdog::Token>(serial) << 32) | slot;
}

}  // namespace

Watchdog::Watchdog(EventQueue& queue, SimTime deadline)
    : queue_(queue), deadline_(deadline), sink_(&std::cerr) {}

Watchdog::Slot* Watchdog::find(Token token) {
  const std::uint32_t slot = slot_of(token);
  if (slot >= slots_.size()) return nullptr;
  Slot& s = slots_[slot];
  if (!s.live || s.serial != serial_of(token)) return nullptr;
  return &s;
}

Watchdog::Token Watchdog::arm(NodeId origin, const char* what) {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.origin = origin;
  s.what = what;
  s.armed_at = queue_.now();
  s.serial = next_serial_++;
  s.extensions = 0;
  s.live = true;
  ++live_count_;
  ++armed_;
  const Token token = pack(s.serial, slot);
  // Interned: arm/disarm run once per request in every watched workload.
  static thread_local obs::CounterHandle armed_counter("watchdog.armed");
  armed_counter.add();
  schedule_deadline(token);
  return token;
}

void Watchdog::schedule_deadline(Token token) {
  if (deadline_ == 0) return;
  queue_.schedule_after(deadline_, [this, token] { on_deadline(token); });
}

void Watchdog::disarm(Token token) {
  Slot* s = find(token);
  DYNCON_REQUIRE(s != nullptr, "disarm of an unknown token");
  static thread_local obs::HistogramHandle latency("watchdog.request_ticks");
  latency.observe(queue_.now() - s->armed_at);
  s->live = false;
  s->what = nullptr;
  free_.push_back(slot_of(token));
  --live_count_;
  ++completed_;
  static thread_local obs::CounterHandle completed("watchdog.completed");
  completed.add();
}

void Watchdog::add_death_probe(const void* owner, DeathProbe probe) {
  DYNCON_REQUIRE(owner != nullptr, "death probe needs an owner key");
  probes_.push_back(Probe{owner, std::move(probe)});
}

void Watchdog::remove_death_probe(const void* owner) {
  for (auto it = probes_.begin(); it != probes_.end();) {
    it = it->owner == owner ? probes_.erase(it) : std::next(it);
  }
}

bool Watchdog::run_probes() {
  bool hopeful = false;
  for (auto& p : probes_) {
    static thread_local obs::CounterHandle probes("watchdog.probes");
    probes.add();
    if (p.fn()) hopeful = true;
  }
  return hopeful;
}

std::size_t Watchdog::run_recovery_sweep() {
  if (probes_.empty()) return 0;
  const std::size_t before = live_count_;
  (void)run_probes();
  return before - live_count_;
}

void Watchdog::on_deadline(Token token) {
  Slot* s = find(token);
  if (s == nullptr) return;  // completed in time; stale probe
  // Recovery escape hatch: a registered death probe may resolve the hang
  // (orphan-lock release wave) or vouch that a node outage is still being
  // ridden out.  Either way the deadline extends — a bounded number of
  // times, so a probe that is merely optimistic cannot mask a real hang.
  if (!probes_.empty() && s->extensions < kMaxExtensions) {
    ++s->extensions;
    const bool hopeful = run_probes();
    Slot* after = find(token);
    if (after == nullptr) return;  // a probe resolved this very request
    if (hopeful) {
      static thread_local obs::CounterHandle rearms("watchdog.probe_rearms");
      rearms.add();
      schedule_deadline(token);
      return;
    }
  }
  obs::count("watchdog.expired");
  abort_run("request \"" + std::string(s->what ? s->what : "?") +
            "\" (origin " + std::to_string(s->origin) + ", armed at t=" +
            std::to_string(s->armed_at) + ") passed its deadline of " +
            std::to_string(deadline_) + " ticks with no verdict");
}

void Watchdog::verify_idle() const {
  if (live_count_ == 0) return;
  obs::count("watchdog.idle_violations");
  abort_run("event queue drained with " + std::to_string(live_count_) +
            " request(s) still outstanding — they can never complete");
}

void Watchdog::abort_run(const std::string& why) const {
  obs::count("watchdog.aborts");
  if (sink_ != nullptr) {
    std::ostream& out = *sink_;
    out << "watchdog: liveness violated at t=" << queue_.now() << ": " << why
        << "\n";
    out << "watchdog: " << live_count_ << " outstanding request(s):\n";
    for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
      const Slot& e = slots_[slot];
      if (!e.live) continue;
      out << "  token=" << pack(e.serial, slot) << " origin=" << e.origin
          << " armed_at=" << e.armed_at
          << " what=" << (e.what ? e.what : "?") << "\n";
    }
    // Post-mortem via the obs layer, when installed: every counter the run
    // touched, then the typed events leading up to the hang (JSONL, newest
    // last) — the same dump the fuzzer emits on a violation.
    if (const obs::Registry* reg = obs::metrics()) {
      std::ostringstream snapshot;
      reg->to_json().dump(snapshot, 2);
      out << "watchdog: metrics snapshot:\n" << snapshot.str() << "\n";
    }
    if (const obs::EventTrace* tr = obs::trace()) {
      out << "watchdog: trace tail (" << tr->size() << " of "
          << tr->recorded() << " events, " << tr->overwritten()
          << " overwritten):\n";
      tr->dump_jsonl(out, 64);
    }
  }
  throw WatchdogError("watchdog: " + why);
}

}  // namespace dyncon::sim

#include "sim/watchdog.hpp"

#include <iostream>
#include <sstream>

#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace dyncon::sim {

Watchdog::Watchdog(EventQueue& queue, SimTime deadline)
    : queue_(queue), deadline_(deadline) {}

Watchdog::Token Watchdog::arm(NodeId origin, std::string what) {
  const Token token = next_++;
  live_.emplace(token, Entry{origin, std::move(what), queue_.now()});
  ++armed_;
  // Interned: arm/disarm run once per request in every watched workload.
  static thread_local obs::CounterHandle armed("watchdog.armed");
  armed.add();
  if (deadline_ > 0) {
    queue_.schedule_after(deadline_, [this, token] {
      const auto it = live_.find(token);
      if (it == live_.end()) return;  // completed in time; stale probe
      obs::count("watchdog.expired");
      abort_run("request \"" + it->second.what + "\" (origin " +
                std::to_string(it->second.origin) + ", armed at t=" +
                std::to_string(it->second.armed_at) +
                ") passed its deadline of " + std::to_string(deadline_) +
                " ticks with no verdict");
    });
  }
  return token;
}

void Watchdog::disarm(Token token) {
  DYNCON_REQUIRE(live_.erase(token) == 1, "disarm of an unknown token");
  ++completed_;
  static thread_local obs::CounterHandle completed("watchdog.completed");
  completed.add();
}

void Watchdog::verify_idle() const {
  if (live_.empty()) return;
  obs::count("watchdog.idle_violations");
  abort_run("event queue drained with " + std::to_string(live_.size()) +
            " request(s) still outstanding — they can never complete");
}

void Watchdog::abort_run(const std::string& why) const {
  obs::count("watchdog.aborts");
  std::cerr << "watchdog: liveness violated at t=" << queue_.now() << ": "
            << why << "\n";
  std::cerr << "watchdog: " << live_.size() << " outstanding request(s):\n";
  for (const auto& [token, e] : live_) {
    std::cerr << "  token=" << token << " origin=" << e.origin
              << " armed_at=" << e.armed_at << " what=" << e.what << "\n";
  }
  // Post-mortem via the obs layer, when installed: every counter the run
  // touched, then the typed events leading up to the hang (JSONL, newest
  // last) — the same dump the fuzzer emits on a violation.
  if (const obs::Registry* reg = obs::metrics()) {
    std::ostringstream snapshot;
    reg->to_json().dump(snapshot, 2);
    std::cerr << "watchdog: metrics snapshot:\n" << snapshot.str() << "\n";
  }
  if (const obs::EventTrace* tr = obs::trace()) {
    std::cerr << "watchdog: trace tail (" << tr->size() << " of "
              << tr->recorded() << " events, " << tr->overwritten()
              << " overwritten):\n";
    tr->dump_jsonl(std::cerr, 64);
  }
  throw WatchdogError("watchdog: " + why);
}

}  // namespace dyncon::sim

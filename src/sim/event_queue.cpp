#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <utility>

namespace dyncon::sim {

std::uint32_t EventQueue::schedule_after(SimTime delay, Action action) {
  return schedule_at(now_ + delay, std::move(action));
}

std::uint32_t EventQueue::schedule_at(SimTime when, Action action) {
  DYNCON_REQUIRE(when >= now_, "cannot schedule in the past");
  DYNCON_REQUIRE(static_cast<bool>(action), "null action");
  std::uint32_t slot;
  if (free_.empty()) {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.push_back(std::move(action));
  } else {
    slot = free_.back();
    free_.pop_back();
    slab_[slot] = std::move(action);
  }
  const Entry e{when, seq_++, slot};
  if (when < now_ + kWindow) {
    bucket_put(e);
  } else {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
  return slot;
}

void EventQueue::bucket_put(const Entry& e) {
  const std::size_t idx = static_cast<std::size_t>(e.when % kWindow);
  buckets_[idx].push_back(e);
  live_[idx / 64] |= std::uint64_t{1} << (idx % 64);
  ++bucket_pending_;
}

void EventQueue::migrate() {
  // Every heap entry whose time just entered the window moves to its
  // bucket NOW — before any action at the new time can schedule — so
  // bucket appends stay in ascending seq order (the heap drains in
  // (when, seq) order; later direct schedules carry larger seqs).
  const SimTime limit = now_ + kWindow;
  while (!heap_.empty() && heap_.front().when < limit) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    bucket_put(heap_.back());
    heap_.pop_back();
  }
}

SimTime EventQueue::earliest_bucket_time() const {
  // Bit b of live_ marks bucket b; bucket b holds the unique window time
  // congruent to b mod kWindow.  Scan [offset, kWindow) for times in
  // [now_, base + kWindow), then wrap to [0, offset) for the rest.
  const SimTime base = now_ - (now_ % kWindow);
  const std::size_t offset = static_cast<std::size_t>(now_ % kWindow);
  std::size_t word = offset / 64;
  std::uint64_t bits = live_[word] & (~std::uint64_t{0} << (offset % 64));
  for (;;) {
    if (bits != 0) {
      const std::size_t idx =
          word * 64 + static_cast<std::size_t>(std::countr_zero(bits));
      return idx >= offset ? base + idx : base + kWindow + idx;
    }
    ++word;
    if (word == kBitmapWords) word = 0;  // wrap to the [0, offset) tail
    bits = live_[word];
  }
}

void EventQueue::step() {
  DYNCON_REQUIRE(!empty(), "step on empty queue");
  // After migrate(), every heap entry sits at or beyond now_ + kWindow and
  // every bucket entry strictly inside, so a non-empty calendar always owns
  // the earliest event; the comparison is a safety net for the empty case.
  Entry e;
  bool from_bucket = false;
  if (bucket_pending_ != 0) {
    const SimTime tb = earliest_bucket_time();
    if (heap_.empty() || tb < heap_.front().when) {
      const std::size_t idx = static_cast<std::size_t>(tb % kWindow);
      std::vector<Entry>& b = buckets_[idx];
      e = b[cursor_[idx]++];
      if (cursor_[idx] == b.size()) {
        b.clear();  // capacity retained: no steady-state allocation
        cursor_[idx] = 0;
        live_[idx / 64] &= ~(std::uint64_t{1} << (idx % 64));
      }
      --bucket_pending_;
      from_bucket = true;
    }
  }
  if (!from_bucket) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    e = heap_.back();
    heap_.pop_back();
  }
  // Move the action out of its slab slot (and recycle the slot) before
  // invoking: the action may schedule new events and reallocate the slab.
  Action action = std::move(slab_[e.slot]);
  free_.push_back(e.slot);
  if (e.when != now_) {
    now_ = e.when;
    // The window slid: pull newly-near heap entries in.  Checked here so
    // the (dominant) empty-heap case never pays the call.
    if (!heap_.empty()) migrate();
  }
  ++fired_;
  action();
}

std::uint64_t EventQueue::run_until(SimTime horizon) {
  std::uint64_t n = 0;
  while (!empty() && next_time() < horizon) {
    step();
    ++n;
  }
  return n;
}

std::uint64_t EventQueue::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (!empty() && n < max_events) {
    step();
    ++n;
  }
  return n;
}

}  // namespace dyncon::sim

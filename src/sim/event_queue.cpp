#include "sim/event_queue.hpp"

#include <utility>

namespace dyncon::sim {

void EventQueue::schedule_after(SimTime delay, Action action) {
  schedule_at(now_ + delay, std::move(action));
}

void EventQueue::schedule_at(SimTime when, Action action) {
  DYNCON_REQUIRE(when >= now_, "cannot schedule in the past");
  DYNCON_REQUIRE(static_cast<bool>(action), "null action");
  heap_.push(Entry{when, seq_++, std::move(action)});
}

void EventQueue::step() {
  DYNCON_REQUIRE(!heap_.empty(), "step on empty queue");
  // Move the action out before popping so it may schedule new events.
  Entry top = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now_ = top.when;
  ++fired_;
  top.action();
}

std::uint64_t EventQueue::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (!heap_.empty() && n < max_events) {
    step();
    ++n;
  }
  return n;
}

}  // namespace dyncon::sim

#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace dyncon::sim {

void EventQueue::schedule_after(SimTime delay, Action action) {
  schedule_at(now_ + delay, std::move(action));
}

void EventQueue::schedule_at(SimTime when, Action action) {
  DYNCON_REQUIRE(when >= now_, "cannot schedule in the past");
  DYNCON_REQUIRE(static_cast<bool>(action), "null action");
  std::uint32_t slot;
  if (free_.empty()) {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.push_back(std::move(action));
  } else {
    slot = free_.back();
    free_.pop_back();
    slab_[slot] = std::move(action);
  }
  heap_.push_back(Entry{when, seq_++, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void EventQueue::step() {
  DYNCON_REQUIRE(!heap_.empty(), "step on empty queue");
  // pop_heap moves the earliest entry to back(); move the action out of its
  // slab slot (and recycle the slot) before invoking, because the action may
  // schedule new events and reallocate both heap_ and slab_.
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry top = heap_.back();
  heap_.pop_back();
  Action action = std::move(slab_[top.slot]);
  free_.push_back(top.slot);
  now_ = top.when;
  ++fired_;
  action();
}

std::uint64_t EventQueue::run_until(SimTime horizon) {
  std::uint64_t n = 0;
  while (!heap_.empty() && heap_.front().when < horizon) {
    step();
    ++n;
  }
  return n;
}

std::uint64_t EventQueue::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (!heap_.empty() && n < max_events) {
    step();
    ++n;
  }
  return n;
}

}  // namespace dyncon::sim

#include "sim/trace.hpp"

#include <utility>

namespace dyncon::sim {

void Trace::log(SimTime now, std::string line) {
  if (!enabled_) return;
  ++recorded_;
  ring_.push_back("[t=" + std::to_string(now) + "] " + std::move(line));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<std::string> Trace::tail(std::size_t n) const {
  std::vector<std::string> out;
  const std::size_t start = ring_.size() > n ? ring_.size() - n : 0;
  out.reserve(ring_.size() - start);
  for (std::size_t i = start; i < ring_.size(); ++i) out.push_back(ring_[i]);
  return out;
}

void Trace::clear() {
  ring_.clear();
  recorded_ = 0;
}

}  // namespace dyncon::sim

#pragma once

// Reliable-FIFO channel sublayer over the faulty transport.
//
// The paper grants every protocol reliable links for free; with a
// FaultPolicy installed (sim/fault.hpp) that grant is revoked, and this
// layer buys it back — paying in *measured* messages.  Per directed link it
// keeps classic ARQ state:
//
//   * every logical send becomes a sequenced kChannel data frame wrapping
//     the encoded protocol message (the header is on the wire, so the
//     overhead is measured, not claimed);
//   * the receiver suppresses duplicate frames (fault-injected copies and
//     retransmissions alike), releases frames in sequence order — restoring
//     FIFO over reordering delay adversaries — and answers every arrival
//     with a cumulative ack;
//   * the sender retransmits an unacked frame on a timeout that backs off
//     exponentially (initial_rto, doubling up to max_rto) plus a
//     deterministic per-attempt jitter — a pure hash of (link, seq,
//     attempt), so replays stay byte-identical but the backoff clock can
//     never phase-lock onto a periodic adversary (sim/crash.hpp windows)
//     — and gives up — loudly, with an InvariantError — after max_retries
//     attempts.
//
// Acks themselves ride the same faulty transport unprotected: a lost ack is
// repaired by the retransmission it provokes (the duplicate is suppressed
// and re-acked).  When the network is not lossy the channel is a strict
// passthrough: no header, no acks, no timers — a run with fault rates at
// zero is bit-identical to a run without the channel (asserted by tests).
//
// Charging: a data frame is accounted under its *inner* message's kind (a
// retransmitted agent hop is agent traffic, at its true wrapped size), so
// the per-kind NetStats decomposition exp9/exp13 report stays honest under
// faults; only acks appear under the kChannel kind.

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "sim/network.hpp"

namespace dyncon::sim {

/// Retransmission tuning.  The defaults suit the canonical sweep policies
/// (delays up to HeavyTailDelay's 256-tick cap, stalls up to 48 ticks):
/// generous enough that a fault-free link never times out, tight enough
/// that the chaos soak converges quickly.
struct ChannelConfig {
  SimTime initial_rto = 512;      ///< first retransmit timeout (> worst RTT)
  SimTime max_rto = 8192;         ///< exponential backoff cap
  std::uint32_t max_retries = 40; ///< per frame; exceeding aborts the run
};

/// Cumulative channel-layer counters (per channel instance; merge sums a
/// sweep the way NetStats::merge does).
struct ChannelStats {
  std::uint64_t data_frames = 0;           ///< first transmissions
  std::uint64_t retransmits = 0;           ///< timeout-driven resends
  std::uint64_t acks = 0;                  ///< cumulative acks sent
  std::uint64_t duplicates_suppressed = 0; ///< receiver-side drops of copies
  std::uint64_t held_for_order = 0;        ///< frames buffered for FIFO release
  bool operator==(const ChannelStats&) const = default;

  void merge(const ChannelStats& other);
  [[nodiscard]] std::string str() const;
};

class ReliableChannel {
 public:
  explicit ReliableChannel(Network& net, ChannelConfig cfg = ChannelConfig{});

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  /// Send `msg` from `from` to `to` with reliable-FIFO semantics;
  /// `on_deliver` fires exactly once, after every earlier send on the same
  /// directed link has been delivered.  Passthrough when the network is not
  /// lossy.
  void send(NodeId from, NodeId to, const Message& msg,
            Network::Deliver on_deliver);

  [[nodiscard]] const ChannelStats& stats() const { return stats_; }
  [[nodiscard]] const ChannelConfig& config() const { return cfg_; }
  /// Frames sent but not yet cumulatively acked (drains to 0 at quiescence).
  [[nodiscard]] std::size_t in_flight() const;

 private:
  struct Pending {
    Message frame;             ///< the kChannel data frame, for retransmits
    Network::Deliver deliver;  ///< consumed when the frame is released
    SimTime rto = 0;
    std::uint32_t retries = 0;
    bool delivered = false;    ///< arrived at the receiver (maybe held)
    bool released = false;     ///< deliver() has run
    Pending(Message f, Network::Deliver d, SimTime r)
        : frame(std::move(f)), deliver(std::move(d)), rto(r) {}
  };
  /// Per directed (from, to) link: sender and receiver ends of the ARQ
  /// state live side by side because the simulator plays both parties.
  struct Link {
    std::uint64_t next_seq = 0;   ///< sender: next sequence to assign
    std::uint64_t recv_next = 0;  ///< receiver: next sequence to release
    std::map<std::uint64_t, Pending> pending;
  };
  using LinkKey = std::pair<NodeId, NodeId>;

  void transmit(NodeId from, NodeId to, std::uint64_t seq);
  void arm_timer(NodeId from, NodeId to, std::uint64_t seq);
  void on_frame(NodeId from, NodeId to, std::uint64_t seq);
  void release_in_order(Link& link);
  void send_ack(NodeId from, NodeId to, Link& link);
  void on_ack(NodeId from, NodeId to, std::uint64_t upto);

  Network& net_;
  ChannelConfig cfg_;
  std::map<LinkKey, Link> links_;
  ChannelStats stats_;
};

}  // namespace dyncon::sim

#include "sim/crash.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"

namespace dyncon::sim {

namespace {

// The same murmur3-finalizer stable-coin idiom the link adversaries use
// (fault.cpp): purely positional randomness, no draw-order coupling.
std::uint64_t mix(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform in [0,1)
}

}  // namespace

// ---- CrashSchedule ----------------------------------------------------------

CrashSchedule::CrashSchedule(Rng rng, double node_fraction, SimTime period,
                             SimTime down_len)
    : node_fraction_(node_fraction), period_(period), down_len_(down_len) {
  DYNCON_REQUIRE(node_fraction >= 0.0 && node_fraction <= 1.0,
                 "node_fraction out of range");
  DYNCON_REQUIRE(period >= 1 && down_len < period,
                 "a crashed node must restart before its next crash, or it "
                 "would never come back");
  salt_ = rng.next();
}

bool CrashSchedule::crash_prone(NodeId v) const {
  if (crash_free()) return false;
  if (limit_ != kNoNode && v >= limit_) return false;
  if (v == immune_) return false;
  return to_unit(mix(v ^ salt_)) < node_fraction_;
}

SimTime CrashSchedule::phase_of(NodeId v) const {
  return mix(v ^ salt_ ^ 0xdeadbea7ULL) % period_;
}

bool CrashSchedule::down(NodeId v, SimTime now) const {
  return down_for(v, now) != 0;
}

SimTime CrashSchedule::down_for(NodeId v, SimTime now) const {
  if (!crash_prone(v)) return 0;
  const SimTime phase = phase_of(v);
  const SimTime pos = (now + phase) % period_;
  if (pos >= down_len_) return 0;
  // Warmup rule: the window starting at now - pos only counts if that start
  // is at or after one full period, so there is no "crashed at birth" state
  // the driver never announced.  (now < pos would make the unsigned
  // subtraction wrap and fabricate exactly such a window.)
  if (now < pos || now - pos < period_) return 0;
  return down_len_ - pos;
}

std::vector<SimTime> CrashSchedule::windows(NodeId v, SimTime horizon) const {
  std::vector<SimTime> starts;
  if (!crash_prone(v)) return starts;
  const SimTime phase = phase_of(v);
  // Window starts are the times s with (s + phase) % period == 0, s >= period.
  SimTime s = (period_ - phase % period_) % period_;
  while (s < period_) s += period_;
  for (; s <= horizon; s += period_) starts.push_back(s);
  return starts;
}

std::string CrashSchedule::name() const {
  if (crash_free()) return "crash(none)";
  return "crash(f=" + std::to_string(node_fraction_) +
         ",down=" + std::to_string(down_len_) + "/" + std::to_string(period_) +
         ")";
}

// ---- CrashFault -------------------------------------------------------------

CrashFault::CrashFault(std::shared_ptr<const CrashSchedule> schedule)
    : schedule_(std::move(schedule)) {
  DYNCON_REQUIRE(schedule_ != nullptr, "CrashFault needs a schedule");
}

FaultDecision CrashFault::on_send(NodeId from, NodeId to, MsgKind,
                                  std::uint64_t, SimTime now) {
  FaultDecision d;
  d.drop = schedule_->down(from, now) || schedule_->down(to, now);
  if (d.drop) {
    static thread_local obs::CounterHandle drops("crash.drops");
    drops.add();
  }
  return d;
}

std::string CrashFault::name() const { return schedule_->name(); }

std::unique_ptr<FaultPolicy> make_crash_stack(
    std::unique_ptr<FaultPolicy> base,
    std::shared_ptr<const CrashSchedule> schedule) {
  auto crash = std::make_unique<CrashFault>(std::move(schedule));
  if (!base) return crash;
  std::vector<std::unique_ptr<FaultPolicy>> parts;
  parts.push_back(std::move(base));
  parts.push_back(std::move(crash));
  return std::make_unique<ComposedFault>(std::move(parts));
}

// ---- CrashDriver ------------------------------------------------------------

CrashDriver::CrashDriver(EventQueue& queue,
                         std::shared_ptr<const CrashSchedule> schedule)
    : queue_(queue), schedule_(std::move(schedule)) {
  DYNCON_REQUIRE(schedule_ != nullptr, "CrashDriver needs a schedule");
}

void CrashDriver::add_listener(CrashListener* l) {
  DYNCON_REQUIRE(l != nullptr, "null crash listener");
  listeners_.push_back(l);
}

void CrashDriver::remove_listener(CrashListener* l) {
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), l),
                   listeners_.end());
}

void CrashDriver::start(NodeId limit, SimTime horizon) {
  DYNCON_REQUIRE(limit_ == 0, "CrashDriver::start called twice");
  limit_ = limit;
  // Enumerate transitions in node order; the queue's FIFO tie-break then
  // fixes the order of same-tick transitions across nodes, independent of
  // anything that happens later in the run.
  for (NodeId v = 0; v < limit; ++v) {
    for (const SimTime s : schedule_->windows(v, horizon)) {
      queue_.schedule_at(s, [this, v] { fire_crash(v); });
      // The restart is always scheduled, even past the horizon: a down
      // window left open forever would strand retransmissions.
      queue_.schedule_at(s + schedule_->down_len(), [this, v] {
        fire_restart(v);
      });
    }
  }
}

bool CrashDriver::any_down() const {
  for (NodeId v = 0; v < limit_; ++v) {
    if (schedule_->down(v, queue_.now())) return true;
  }
  return false;
}

void CrashDriver::fire_crash(NodeId v) {
  ++crashes_;
  static thread_local obs::CounterHandle crashes("crash.node_crashes");
  crashes.add();
  for (CrashListener* l : listeners_) l->on_crash(v);
}

void CrashDriver::fire_restart(NodeId v) {
  ++restarts_;
  static thread_local obs::CounterHandle restarts("crash.node_restarts");
  restarts.add();
  obs::Span span;
  span.kind = obs::SpanKind::kCrash;
  span.node = v;
  span.begin = queue_.now() - schedule_->down_len();
  span.end = queue_.now();
  span.label = "down";
  // Traceless spans would collide on (trace, id); mint a trace per outage
  // when a sink is installed so the export tooling keeps them distinct.
  if (obs::SpanSink* sink = obs::spans()) {
    span.trace = sink->new_trace();
    span.id = obs::kRootSpanId;
    sink->emit(span);
  }
  for (CrashListener* l : listeners_) l->on_restart(v);
}

}  // namespace dyncon::sim

#include "sim/channel.hpp"

#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace dyncon::sim {

namespace {

// The stable-coin idiom (fault.cpp): retransmit jitter is a pure function
// of (link, seq, attempt), so replays stay byte-identical and no RNG draw
// order is perturbed — yet no backoff clock can phase-lock onto a periodic
// adversary.  Without it, a crash window whose period divides the capped
// RTO eats every retry of an unlucky frame (the retransmits land at the
// same phase offset forever) and the channel falsely declares the link
// dead.
std::uint64_t mix(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

SimTime retransmit_jitter(NodeId from, NodeId to, std::uint64_t seq,
                          std::uint64_t attempt, SimTime rto) {
  const std::uint64_t h =
      mix(mix(from ^ 0x6a09e667f3bcc909ULL) ^ mix(to ^ 0xbb67ae8584caa73bULL) ^
          (seq << 17) ^ attempt);
  return h % (rto / 2 + 1);  // in [0, rto/2]: lengthens, never shortens
}

}  // namespace

void ChannelStats::merge(const ChannelStats& other) {
  data_frames += other.data_frames;
  retransmits += other.retransmits;
  acks += other.acks;
  duplicates_suppressed += other.duplicates_suppressed;
  held_for_order += other.held_for_order;
}

std::string ChannelStats::str() const {
  std::ostringstream os;
  os << "data=" << data_frames << " retransmits=" << retransmits
     << " acks=" << acks << " dups_suppressed=" << duplicates_suppressed
     << " held=" << held_for_order;
  return os.str();
}

ReliableChannel::ReliableChannel(Network& net, ChannelConfig cfg)
    : net_(net), cfg_(cfg) {
  DYNCON_REQUIRE(cfg.initial_rto >= 1 && cfg.max_rto >= cfg.initial_rto,
                 "bad retransmission timeout range");
  DYNCON_REQUIRE(cfg.max_retries >= 1, "need at least one retry");
}

std::size_t ReliableChannel::in_flight() const {
  std::size_t n = 0;
  for (const auto& [key, link] : links_) n += link.pending.size();
  return n;
}

void ReliableChannel::send(NodeId from, NodeId to, const Message& msg,
                           Network::Deliver on_deliver) {
  DYNCON_REQUIRE(static_cast<bool>(on_deliver), "null delivery handler");
  if (!net_.lossy()) {
    // Zero-overhead passthrough: no header, no seq, no timer — the run is
    // bit-identical to one without the channel.
    net_.transmit(from, to, msg, std::move(on_deliver));
    return;
  }
  Link& link = links_[{from, to}];
  const std::uint64_t seq = link.next_seq++;
  // The inner encoding comes from the network's per-kind encode cache
  // (friend access): a run of same-shaped sends — the common case under
  // retransmission storms — reuses one materialized encoding instead of
  // re-running the encoder per frame.  Non-cacheable kinds encode directly.
  Message frame = EncodeCache::cacheable(msg.kind())
                      ? Message::channel_data(seq, net_.cache_.encoded(msg))
                      : Message::channel_data(seq, msg);
  auto [it, inserted] = link.pending.try_emplace(
      seq, std::move(frame), std::move(on_deliver), cfg_.initial_rto);
  DYNCON_INVARIANT(inserted, "sequence number reused on a link");
  static thread_local obs::CounterHandle data_frames("channel.data_frames");
  ++stats_.data_frames;
  data_frames.add();
  transmit(from, to, seq);
  arm_timer(from, to, seq);
}

void ReliableChannel::transmit(NodeId from, NodeId to, std::uint64_t seq) {
  const Link& link = links_.at({from, to});
  net_.transmit(from, to, link.pending.at(seq).frame,
                [this, from, to, seq] { on_frame(from, to, seq); });
}

void ReliableChannel::arm_timer(NodeId from, NodeId to, std::uint64_t seq) {
  const Pending& pend = links_.at({from, to}).pending.at(seq);
  const SimTime rto =
      pend.rto + retransmit_jitter(from, to, seq, pend.retries, pend.rto);
  net_.queue().schedule_after(rto, [this, from, to, seq] {
    Link& link = links_.at({from, to});
    const auto it = link.pending.find(seq);
    if (it == link.pending.end()) return;  // acked; stale timer
    Pending& p = it->second;
    if (p.retries >= cfg_.max_retries) {
      obs::count("channel.gave_up");
      throw InvariantError(
          "reliable channel gave up: frame seq=" + std::to_string(seq) +
          " on link " + std::to_string(from) + " -> " + std::to_string(to) +
          " unacked after " + std::to_string(p.retries) +
          " retransmissions — link dead beyond the configured retry cap");
    }
    ++p.retries;
    p.rto = std::min(p.rto * 2, cfg_.max_rto);
    static thread_local obs::CounterHandle retransmits("channel.retransmits");
    ++stats_.retransmits;
    retransmits.add();
    transmit(from, to, seq);
    arm_timer(from, to, seq);
  });
}

void ReliableChannel::on_frame(NodeId from, NodeId to, std::uint64_t seq) {
  // Everything below — releasing held frames back to back, then the ack
  // transmit — is transport work still owed by THIS event, so the released
  // continuations run under guarded dispatch: an inline fast path jumping
  // ahead of the remaining releases (or of the ack's delay/fault draws)
  // would diverge from the unbatched schedule.
  ++net_.guard_depth_;
  struct Guard {
    std::uint32_t& d;
    ~Guard() { --d; }
  } guard{net_.guard_depth_};
  Link& link = links_.at({from, to});
  const auto it = link.pending.find(seq);
  if (it == link.pending.end() || it->second.delivered) {
    // A fault-injected copy, or a retransmission of something already
    // received (its ack was lost or is still in flight).  Suppress, and
    // re-ack so the sender can stop retransmitting.
    static thread_local obs::CounterHandle suppressed(
        "channel.duplicates_suppressed");
    ++stats_.duplicates_suppressed;
    suppressed.add();
    send_ack(from, to, link);
    return;
  }
  it->second.delivered = true;
  if (seq != link.recv_next) {
    // Arrived ahead of a gap (the underlying links are not FIFO and may
    // have dropped the earlier frame); hold until the gap fills.
    static thread_local obs::CounterHandle held("channel.held_for_order");
    ++stats_.held_for_order;
    held.add();
  }
  release_in_order(link);
  send_ack(from, to, link);
}

void ReliableChannel::release_in_order(Link& link) {
  for (auto it = link.pending.find(link.recv_next);
       it != link.pending.end() && it->second.delivered;
       it = link.pending.find(link.recv_next)) {
    Pending& p = it->second;
    DYNCON_INVARIANT(!p.released, "frame released twice");
    p.released = true;
    ++link.recv_next;
    Network::Deliver deliver = std::move(p.deliver);
    // The entry stays until the cumulative ack lands back at the sender
    // (it still backs duplicate suppression and the retransmit timer).
    deliver();
  }
}

void ReliableChannel::send_ack(NodeId from, NodeId to, Link& link) {
  const std::uint64_t upto = link.recv_next;
  static thread_local obs::CounterHandle acks("channel.acks");
  ++stats_.acks;
  acks.add();
  // Acks ride the faulty transport unprotected (no ack-of-ack): a lost ack
  // is repaired by the retransmission it provokes.
  net_.transmit(to, from, Message::channel_ack(upto),
                [this, from, to, upto] { on_ack(from, to, upto); });
}

void ReliableChannel::on_ack(NodeId from, NodeId to, std::uint64_t upto) {
  Link& link = links_.at({from, to});
  auto it = link.pending.begin();
  while (it != link.pending.end() && it->first < upto) {
    DYNCON_INVARIANT(it->second.released,
                     "cumulative ack covers an unreleased frame");
    it = link.pending.erase(it);
  }
}

}  // namespace dyncon::sim

#include "sim/network.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace dyncon::sim {

std::string NetStats::str() const {
  std::ostringstream os;
  os << "messages=" << messages << " total_bits=" << total_bits
     << " max_msg_bits=" << max_message_bits;
  for (std::size_t k = 0; k < by_kind.size(); ++k) {
    if (by_kind[k] == 0) continue;
    os << " " << msg_kind_name(static_cast<MsgKind>(k)) << "=" << by_kind[k]
       << "(max " << max_bits_by_kind[k] << "b)";
  }
  return os.str();
}

void NetStats::merge(const NetStats& other) {
  messages += other.messages;
  total_bits += other.total_bits;
  max_message_bits = std::max(max_message_bits, other.max_message_bits);
  roundtrip_checks += other.roundtrip_checks;
  for (std::size_t k = 0; k < kKinds; ++k) {
    by_kind[k] += other.by_kind[k];
    bits_by_kind[k] += other.bits_by_kind[k];
    max_bits_by_kind[k] = std::max(max_bits_by_kind[k],
                                   other.max_bits_by_kind[k]);
  }
  for (std::size_t w = 0; w < size_histogram.size(); ++w) {
    size_histogram[w] += other.size_histogram[w];
  }
}

Network::Network(EventQueue& queue, std::unique_ptr<DelayPolicy> delay)
    : queue_(queue), delay_(std::move(delay)) {
  DYNCON_REQUIRE(delay_ != nullptr, "null delay policy");
}

void Network::set_link_check(const void* owner, LinkCheck check) {
  DYNCON_REQUIRE(owner != nullptr && static_cast<bool>(check),
                 "link check needs an owner and a predicate");
  link_check_ = std::move(check);
  link_check_owner_ = owner;
}

void Network::clear_link_check(const void* owner) {
  if (link_check_owner_ != owner) return;  // replaced by a later installer
  link_check_ = nullptr;
  link_check_owner_ = nullptr;
}

void Network::account(MsgKind kind, std::uint64_t bits, std::uint64_t count) {
  if (strict_max_bits_ != 0 && bits > strict_max_bits_) {
    throw InvariantError("oversized message: " + std::to_string(bits) +
                         " bits of " + msg_kind_name(kind) +
                         " exceeds the strict envelope of " +
                         std::to_string(strict_max_bits_) + " bits");
  }
  const auto k = static_cast<std::size_t>(kind);
  stats_.messages += count;
  stats_.total_bits += bits * count;
  stats_.max_message_bits = std::max(stats_.max_message_bits, bits);
  stats_.by_kind[k] += count;
  stats_.bits_by_kind[k] += bits * count;
  stats_.max_bits_by_kind[k] = std::max(stats_.max_bits_by_kind[k], bits);
  stats_.size_histogram[std::bit_width(bits)] += count;
  // Live registry export: cumulative across every Network instance of the
  // run, unlike the per-instance NetStats (one branch when uninstalled).
  obs::count("net.messages", count);
  obs::count("net.total_bits", bits * count);
  obs::observe("net.message_bits", bits, count);
}

void Network::send(NodeId from, NodeId to, const Message& msg,
                   Deliver on_deliver) {
  DYNCON_REQUIRE(static_cast<bool>(on_deliver), "null delivery handler");
  const Encoded enc = msg.encode();
#ifndef NDEBUG
  // Round-trip verification: any field the encoder drops or mangles fails
  // at the send site, with the offending message in the error text.
  DYNCON_INVARIANT(Message::decode(enc) == msg,
                   "wire round-trip mismatch for " + msg.str());
  ++stats_.roundtrip_checks;
  if (link_check_) {
    DYNCON_INVARIANT(
        link_check_(from, to, msg.kind()),
        "send violates the installed topology contract: " +
            std::to_string(from) + " -> " + std::to_string(to) + " " +
            msg.str());
  }
#endif
  account(msg.kind(), enc.bits, 1);
  const SimTime d = delay_->delay(from, to, seq_++);
  queue_.schedule_after(d, std::move(on_deliver));
}

void Network::charge(const Message& prototype, std::uint64_t count) {
  if (count == 0) return;
  const Encoded enc = prototype.encode();
#ifndef NDEBUG
  DYNCON_INVARIANT(Message::decode(enc) == prototype,
                   "wire round-trip mismatch for " + prototype.str());
  ++stats_.roundtrip_checks;
#endif
  account(prototype.kind(), enc.bits, count);
}

}  // namespace dyncon::sim

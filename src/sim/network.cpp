#include "sim/network.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "sim/channel.hpp"
#include "util/error.hpp"

namespace dyncon::sim {

std::string NetStats::str() const {
  std::ostringstream os;
  os << "messages=" << messages << " total_bits=" << total_bits
     << " max_msg_bits=" << max_message_bits;
  for (std::size_t k = 0; k < by_kind.size(); ++k) {
    if (by_kind[k] == 0) continue;
    os << " " << msg_kind_name(static_cast<MsgKind>(k)) << "=" << by_kind[k]
       << "(max " << max_bits_by_kind[k] << "b)";
  }
  return os.str();
}

void NetStats::merge(const NetStats& other) {
  messages += other.messages;
  total_bits += other.total_bits;
  max_message_bits = std::max(max_message_bits, other.max_message_bits);
  roundtrip_checks += other.roundtrip_checks;
  for (std::size_t k = 0; k < kKinds; ++k) {
    by_kind[k] += other.by_kind[k];
    bits_by_kind[k] += other.bits_by_kind[k];
    max_bits_by_kind[k] = std::max(max_bits_by_kind[k],
                                   other.max_bits_by_kind[k]);
  }
  for (std::size_t w = 0; w < size_histogram.size(); ++w) {
    size_histogram[w] += other.size_histogram[w];
  }
}

void FaultStats::merge(const FaultStats& other) {
  drops += other.drops;
  duplicates += other.duplicates;
  stalls += other.stalls;
  stall_ticks += other.stall_ticks;
}

Network::Network(EventQueue& queue, std::unique_ptr<DelayPolicy> delay)
    : queue_(queue), delay_(std::move(delay)) {
  DYNCON_REQUIRE(delay_ != nullptr, "null delay policy");
}

Network::~Network() = default;

void Network::set_fault_policy(std::unique_ptr<FaultPolicy> policy) {
  faults_ = std::move(policy);
}

void Network::enable_reliability() { enable_reliability(ChannelConfig{}); }

void Network::enable_reliability(const ChannelConfig& cfg) {
  if (channel_ == nullptr) {
    channel_ = std::make_unique<ReliableChannel>(*this, cfg);
  }
}

void Network::set_link_check(const void* owner, LinkCheck check) {
  DYNCON_REQUIRE(owner != nullptr && static_cast<bool>(check),
                 "link check needs an owner and a predicate");
  link_check_ = std::move(check);
  link_check_owner_ = owner;
}

void Network::clear_link_check(const void* owner) {
  if (link_check_owner_ != owner) return;  // replaced by a later installer
  link_check_ = nullptr;
  link_check_owner_ = nullptr;
}

void Network::account(MsgKind kind, std::uint64_t bits, std::uint64_t count) {
  if (strict_max_bits_ != 0 && bits > strict_max_bits_) {
    throw InvariantError("oversized message: " + std::to_string(bits) +
                         " bits of " + msg_kind_name(kind) +
                         " exceeds the strict envelope of " +
                         std::to_string(strict_max_bits_) + " bits");
  }
  const auto k = static_cast<std::size_t>(kind);
  stats_.messages += count;
  stats_.total_bits += bits * count;
  stats_.max_message_bits = std::max(stats_.max_message_bits, bits);
  stats_.by_kind[k] += count;
  stats_.bits_by_kind[k] += bits * count;
  stats_.max_bits_by_kind[k] = std::max(stats_.max_bits_by_kind[k], bits);
  stats_.size_histogram[std::bit_width(bits)] += count;
  // Live registry export: cumulative across every Network instance of the
  // run, unlike the per-instance NetStats.  Interned handles: this runs per
  // transmission, and the name->slot map lookup was measurable there.
  static thread_local obs::CounterHandle messages("net.messages");
  static thread_local obs::CounterHandle total_bits("net.total_bits");
  static thread_local obs::HistogramHandle message_bits("net.message_bits");
  messages.add(count);
  total_bits.add(bits * count);
  message_bits.observe(bits, count);
}

void Network::send(NodeId from, NodeId to, const Message& msg,
                   Deliver on_deliver) {
  DYNCON_REQUIRE(static_cast<bool>(on_deliver), "null delivery handler");
#ifndef NDEBUG
  // The topology contract is checked on the *logical* send; channel frames
  // (retransmits can outlive a graceful reparenting, acks flow against the
  // edge direction) are exempt by construction because they route through
  // transmit() directly.
  if (link_check_) {
    DYNCON_INVARIANT(
        link_check_(from, to, msg.kind()),
        "send violates the installed topology contract: " +
            std::to_string(from) + " -> " + std::to_string(to) + " " +
            msg.str());
  }
#endif
  if (channel_ != nullptr && lossy()) {
    channel_->send(from, to, msg, std::move(on_deliver));
    return;
  }
  transmit(from, to, msg, std::move(on_deliver));
}

void Network::transmit(NodeId from, NodeId to, const Message& msg,
                       Deliver on_deliver) {
#ifndef NDEBUG
  // Debug builds do the full byte-level encode and round-trip verification:
  // any field the encoder drops or mangles fails at the send site, with the
  // offending message in the error text.
  const Encoded enc = msg.encode();
  DYNCON_INVARIANT(Message::decode(enc) == msg,
                   "wire round-trip mismatch for " + msg.str());
  ++stats_.roundtrip_checks;
  const std::uint64_t bits = enc.bits;
#else
  // Release builds take the size-only path: encoded_bits() runs the same
  // body-writer as encode() against a BitCounter, so the charged size is
  // still *measured* — just without materializing the byte buffer nobody
  // reads.  (The ARQ channel still builds real frames: channel_data()
  // encodes its inner message to embed it.)
  const std::uint64_t bits = msg.encoded_bits();
#endif
  // A channel data frame is charged under the kind of the message it wraps
  // (at the full wrapped size), so the per-kind decomposition exp9/exp13
  // report survives fault injection; only acks land under kChannel.
  MsgKind kind = msg.kind();
  if (kind == MsgKind::kChannel) {
    const auto& ch = msg.as<ChannelMsg>();
    if (ch.topic == ChannelTopic::kData) kind = ch.inner_kind();
  }
  FaultDecision fault;
  if (faults_ != nullptr) {
    fault = faults_->on_send(from, to, kind, seq_, queue_.now());
  }
  // Transmissions are charged whether or not they arrive: a dropped
  // message was sent (and a duplicated one delivered twice), which is
  // exactly the accounting the reliability layer's overhead is measured in.
  account(kind, bits, 1 + fault.duplicates);
  if (fault.duplicates > 0) {
    static thread_local obs::CounterHandle duplicates(
        "faults.injected.duplicate");
    fault_stats_.duplicates += fault.duplicates;
    duplicates.add(fault.duplicates);
  }
  if (fault.stall_ticks > 0) {
    static thread_local obs::CounterHandle stalls("faults.injected.stall");
    static thread_local obs::CounterHandle stall_ticks(
        "faults.injected.stall_ticks");
    ++fault_stats_.stalls;
    fault_stats_.stall_ticks += fault.stall_ticks;
    stalls.add();
    stall_ticks.add(fault.stall_ticks);
  }
  if (fault.drop) {
    static thread_local obs::CounterHandle drops("faults.injected.drop");
    ++fault_stats_.drops;
    drops.add();
    return;
  }
  if (fault.duplicates == 0) {
    // Hot path: exactly one delivery; the continuation moves through
    // untouched — no copy, no allocation.
    const SimTime d = delay_->delay(from, to, seq_++) + fault.stall_ticks;
    // Hop span (one branch when no sink is installed): park the span and
    // the continuation in the side table and schedule a token-sized
    // trampoline instead.  The delay draw and the event count are the same
    // either way, so enabling spans never perturbs the virtual timeline.
    // Duplicated copies below take the cold path unspanned: under fault
    // injection the causal record is best-effort by design.
    if (obs::SpanSink* sink = obs::spans();
        sink != nullptr && obs::current_span().trace != obs::kNoTrace) {
      const obs::SpanContext ctx = obs::current_span();
      const std::uint64_t token = hop_token_++;
      PendingHop& hop = pending_hops_[token];
      hop.span.trace = ctx.trace;
      hop.span.id = sink->open(ctx.trace);
      hop.span.parent = ctx.span;
      hop.span.kind = obs::SpanKind::kHop;
      hop.span.op = static_cast<std::uint8_t>(kind);
      hop.span.label = msg_kind_name(kind);
      hop.span.node = from;
      hop.span.peer = to;
      hop.span.begin = queue_.now();
      hop.ctx = ctx;
      hop.deliver = std::move(on_deliver);
      queue_.schedule_after(d, [this, token] { deliver_spanned(token); });
      return;
    }
    queue_.schedule_after(d, std::move(on_deliver));
    return;
  }
  // Cold path (fault-injected copies): several events must share one
  // move-only continuation, so box it once and invoke through the box.
  const auto shared = std::make_shared<Deliver>(std::move(on_deliver));
  for (std::uint32_t copy = 0; copy <= fault.duplicates; ++copy) {
    const SimTime d = delay_->delay(from, to, seq_++) + fault.stall_ticks;
    queue_.schedule_after(d, [shared] { (*shared)(); });
  }
}

void Network::deliver_spanned(std::uint64_t token) {
  // Move the hop out BEFORE running anything: the continuation may send
  // again and rehash the table.
  auto it = pending_hops_.find(token);
  DYNCON_INVARIANT(it != pending_hops_.end(), "unknown hop-span token");
  PendingHop hop = std::move(it->second);
  pending_hops_.erase(it);
  hop.span.end = queue_.now();
  obs::emit_span(hop.span);
  // The continuation runs under the SENDER's causal context, so any sends
  // it makes (forwarding an agent, acking a frame) chain to the same op.
  obs::ScopedSpanContext scope(hop.ctx);
  hop.deliver();
}

void Network::charge(const Message& prototype, std::uint64_t count) {
  if (count == 0) return;
#ifndef NDEBUG
  const Encoded enc = prototype.encode();
  DYNCON_INVARIANT(Message::decode(enc) == prototype,
                   "wire round-trip mismatch for " + prototype.str());
  ++stats_.roundtrip_checks;
  account(prototype.kind(), enc.bits, count);
#else
  // Bursts of charges repeat a handful of prototype shapes (a graceful
  // deletion emits one per handoff record); memoize the last measured size
  // per kind so repeats don't even pay the counting pass.
  auto& memo = charge_memo_[static_cast<std::size_t>(prototype.kind())];
  if (!memo.has_value() || !(memo->first == prototype)) {
    memo.emplace(prototype, prototype.encoded_bits());
  }
  account(prototype.kind(), memo->second, count);
#endif
}

}  // namespace dyncon::sim

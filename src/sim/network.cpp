#include "sim/network.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace dyncon::sim {

const char* msg_kind_name(MsgKind kind) {
  switch (kind) {
    case MsgKind::kAgent:
      return "agent";
    case MsgKind::kReject:
      return "reject";
    case MsgKind::kControl:
      return "control";
    case MsgKind::kDataMove:
      return "datamove";
    case MsgKind::kApp:
      return "app";
    case MsgKind::kKindCount__:
      break;
  }
  return "?";
}

std::string NetStats::str() const {
  std::ostringstream os;
  os << "messages=" << messages << " total_bits=" << total_bits
     << " max_msg_bits=" << max_message_bits;
  for (std::size_t k = 0; k < by_kind.size(); ++k) {
    if (by_kind[k] == 0) continue;
    os << " " << msg_kind_name(static_cast<MsgKind>(k)) << "=" << by_kind[k];
  }
  return os.str();
}

Network::Network(EventQueue& queue, std::unique_ptr<DelayPolicy> delay)
    : queue_(queue), delay_(std::move(delay)) {
  DYNCON_REQUIRE(delay_ != nullptr, "null delay policy");
}

void Network::send(NodeId from, NodeId to, MsgKind kind,
                   std::uint64_t payload_bits, Deliver on_deliver) {
  DYNCON_REQUIRE(static_cast<bool>(on_deliver), "null delivery handler");
  ++stats_.messages;
  stats_.total_bits += payload_bits;
  stats_.max_message_bits = std::max(stats_.max_message_bits, payload_bits);
  ++stats_.by_kind[static_cast<std::size_t>(kind)];
  const SimTime d = delay_->delay(from, to, seq_++);
  queue_.schedule_after(d, std::move(on_deliver));
}

void Network::charge(MsgKind kind, std::uint64_t count,
                     std::uint64_t bits_each) {
  stats_.messages += count;
  stats_.total_bits += count * bits_each;
  if (count > 0) {
    stats_.max_message_bits = std::max(stats_.max_message_bits, bits_each);
  }
  stats_.by_kind[static_cast<std::size_t>(kind)] += count;
}

}  // namespace dyncon::sim

#include "sim/network.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "sim/channel.hpp"
#include "util/error.hpp"

namespace dyncon::sim {

std::string NetStats::str() const {
  std::ostringstream os;
  os << "messages=" << messages << " total_bits=" << total_bits
     << " max_msg_bits=" << max_message_bits;
  for (std::size_t k = 0; k < by_kind.size(); ++k) {
    if (by_kind[k] == 0) continue;
    os << " " << msg_kind_name(static_cast<MsgKind>(k)) << "=" << by_kind[k]
       << "(max " << max_bits_by_kind[k] << "b)";
  }
  return os.str();
}

void NetStats::merge(const NetStats& other) {
  messages += other.messages;
  total_bits += other.total_bits;
  max_message_bits = std::max(max_message_bits, other.max_message_bits);
  roundtrip_checks += other.roundtrip_checks;
  for (std::size_t k = 0; k < kKinds; ++k) {
    by_kind[k] += other.by_kind[k];
    bits_by_kind[k] += other.bits_by_kind[k];
    max_bits_by_kind[k] = std::max(max_bits_by_kind[k],
                                   other.max_bits_by_kind[k]);
  }
  for (std::size_t w = 0; w < size_histogram.size(); ++w) {
    size_histogram[w] += other.size_histogram[w];
  }
}

void BatchStats::merge(const BatchStats& other) {
  frames += other.frames;
  batched_msgs += other.batched_msgs;
  frame_bits += other.frame_bits;
  member_bits += other.member_bits;
  for (std::size_t w = 0; w < msgs_per_frame.size(); ++w) {
    msgs_per_frame[w] += other.msgs_per_frame[w];
  }
}

void FaultStats::merge(const FaultStats& other) {
  drops += other.drops;
  duplicates += other.duplicates;
  stalls += other.stalls;
  stall_ticks += other.stall_ticks;
}

Network::Network(EventQueue& queue, std::unique_ptr<DelayPolicy> delay)
    : queue_(queue), delay_(std::move(delay)) {
  DYNCON_REQUIRE(delay_ != nullptr, "null delay policy");
}

Network::~Network() = default;

void Network::set_fault_policy(std::unique_ptr<FaultPolicy> policy) {
  faults_ = std::move(policy);
}

void Network::enable_reliability() { enable_reliability(ChannelConfig{}); }

void Network::enable_reliability(const ChannelConfig& cfg) {
  if (channel_ == nullptr) {
    channel_ = std::make_unique<ReliableChannel>(*this, cfg);
  }
}

void Network::set_link_check(const void* owner, LinkCheck check) {
  DYNCON_REQUIRE(owner != nullptr && static_cast<bool>(check),
                 "link check needs an owner and a predicate");
  link_check_ = std::move(check);
  link_check_owner_ = owner;
}

void Network::clear_link_check(const void* owner) {
  if (link_check_owner_ != owner) return;  // replaced by a later installer
  link_check_ = nullptr;
  link_check_owner_ = nullptr;
}

void Network::account(MsgKind kind, std::uint64_t bits, std::uint64_t count) {
  if (strict_max_bits_ != 0 && bits > strict_max_bits_) {
    throw InvariantError("oversized message: " + std::to_string(bits) +
                         " bits of " + msg_kind_name(kind) +
                         " exceeds the strict envelope of " +
                         std::to_string(strict_max_bits_) + " bits");
  }
  const auto k = static_cast<std::size_t>(kind);
  stats_.messages += count;
  stats_.total_bits += bits * count;
  stats_.max_message_bits = std::max(stats_.max_message_bits, bits);
  stats_.by_kind[k] += count;
  stats_.bits_by_kind[k] += bits * count;
  stats_.max_bits_by_kind[k] = std::max(stats_.max_bits_by_kind[k], bits);
  stats_.size_histogram[std::bit_width(bits)] += count;
  // Live registry export: cumulative across every Network instance of the
  // run, unlike the per-instance NetStats.  Interned handles: this runs per
  // transmission, and the name->slot map lookup was measurable there.
  static thread_local obs::CounterHandle messages("net.messages");
  static thread_local obs::CounterHandle total_bits("net.total_bits");
  static thread_local obs::HistogramHandle message_bits("net.message_bits");
  messages.add(count);
  total_bits.add(bits * count);
  message_bits.observe(bits, count);
}

void Network::send(NodeId from, NodeId to, const Message& msg,
                   Deliver on_deliver) {
  DYNCON_REQUIRE(static_cast<bool>(on_deliver), "null delivery handler");
#ifndef NDEBUG
  // The topology contract is checked on the *logical* send; channel frames
  // (retransmits can outlive a graceful reparenting, acks flow against the
  // edge direction) are exempt by construction because they route through
  // transmit() directly.
  if (link_check_) {
    DYNCON_INVARIANT(
        link_check_(from, to, msg.kind()),
        "send violates the installed topology contract: " +
            std::to_string(from) + " -> " + std::to_string(to) + " " +
            msg.str());
  }
#endif
  if (channel_ != nullptr && lossy()) {
    channel_->send(from, to, msg, std::move(on_deliver));
    return;
  }
  transmit(from, to, msg, std::move(on_deliver));
}

void Network::transmit(NodeId from, NodeId to, const Message& msg,
                       Deliver on_deliver) {
#ifndef NDEBUG
  // Debug builds do the full byte-level encode and round-trip verification:
  // any field the encoder drops or mangles fails at the send site, with the
  // offending message in the error text.
  const Encoded enc = msg.encode();
  DYNCON_INVARIANT(Message::decode(enc) == msg,
                   "wire round-trip mismatch for " + msg.str());
  ++stats_.roundtrip_checks;
  const std::uint64_t bits = enc.bits;
  // Cross-check the encode cache against ground truth while we have it.
  DYNCON_INVARIANT(cache_.measured_bits(msg) == bits,
                   "encode cache disagrees with encode() for " + msg.str());
#else
  // Release builds take the size-only path through the per-kind encode
  // cache: a hit returns the memoized size of the last message of this
  // kind (one POD comparison), a miss runs the size-only BitCounter pass —
  // the same body-writer as encode(), so the charged size is still
  // *measured*, just without materializing the byte buffer nobody reads.
  // (The ARQ channel still builds real frames: channel_data() embeds the
  // cached inner encoding.)
  const std::uint64_t bits = cache_.measured_bits(msg);
#endif
  // A channel data frame is charged under the kind of the message it wraps
  // (at the full wrapped size), so the per-kind decomposition exp9/exp13
  // report survives fault injection; only acks land under kChannel.
  MsgKind kind = msg.kind();
  if (kind == MsgKind::kChannel) {
    const auto& ch = msg.as<ChannelMsg>();
    if (ch.topic == ChannelTopic::kData) kind = ch.inner_kind();
  }
  FaultDecision fault;
  if (faults_ != nullptr) {
    fault = faults_->on_send(from, to, kind, seq_, queue_.now());
  }
  // Transmissions are charged whether or not they arrive: a dropped
  // message was sent (and a duplicated one delivered twice), which is
  // exactly the accounting the reliability layer's overhead is measured in.
  account(kind, bits, 1 + fault.duplicates);
  if (fault.duplicates > 0) {
    static thread_local obs::CounterHandle duplicates(
        "faults.injected.duplicate");
    fault_stats_.duplicates += fault.duplicates;
    duplicates.add(fault.duplicates);
  }
  if (fault.stall_ticks > 0) {
    static thread_local obs::CounterHandle stalls("faults.injected.stall");
    static thread_local obs::CounterHandle stall_ticks(
        "faults.injected.stall_ticks");
    ++fault_stats_.stalls;
    fault_stats_.stall_ticks += fault.stall_ticks;
    stalls.add();
    stall_ticks.add(fault.stall_ticks);
  }
  if (fault.drop) {
    static thread_local obs::CounterHandle drops("faults.injected.drop");
    ++fault_stats_.drops;
    drops.add();
    return;
  }
#ifndef NDEBUG
  const Encoded* frame_payload = &enc;
#else
  const Encoded* frame_payload = nullptr;
#endif
  if (fault.duplicates == 0) {
    // Hot path: exactly one delivery; the continuation moves through
    // untouched — no copy, no allocation.
    const SimTime d = delay_->delay(from, to, seq_++) + fault.stall_ticks;
    // Hop span (one branch when no sink is installed): park the span and
    // the continuation in the side table and schedule a token-sized
    // trampoline instead.  The delay draw and the event count are the same
    // either way, so enabling spans never perturbs the virtual timeline.
    // Duplicated copies below take the cold path unspanned: under fault
    // injection the causal record is best-effort by design.
    if (obs::SpanSink* sink = obs::spans();
        sink != nullptr && obs::current_span().trace != obs::kNoTrace) {
      const obs::SpanContext ctx = obs::current_span();
      const std::uint64_t token = hop_token_++;
      PendingHop& hop = pending_hops_[token];
      hop.span.trace = ctx.trace;
      hop.span.id = sink->open(ctx.trace);
      hop.span.parent = ctx.span;
      hop.span.kind = obs::SpanKind::kHop;
      hop.span.op = static_cast<std::uint8_t>(kind);
      hop.span.label = msg_kind_name(kind);
      hop.span.node = from;
      hop.span.peer = to;
      hop.span.begin = queue_.now();
      hop.ctx = ctx;
      hop.deliver = std::move(on_deliver);
      // The token trampoline batches exactly like a plain delivery: spans
      // never perturb the virtual timeline, batched or not.
      deliver_or_batch(from, to, d, bits,
                       Deliver([this, token] { deliver_spanned(token); }),
                       frame_payload);
      return;
    }
    deliver_or_batch(from, to, d, bits, std::move(on_deliver),
                     frame_payload);
    return;
  }
  // Cold path (fault-injected copies): several events must share one
  // move-only continuation, so box it once and invoke through the box.
  // Copies are never coalesced — but the scheduling below moves the queue's
  // seq watermark, which closes any open batch automatically.
  const auto shared = std::make_shared<Deliver>(std::move(on_deliver));
  for (std::uint32_t copy = 0; copy <= fault.duplicates; ++copy) {
    const SimTime d = delay_->delay(from, to, seq_++) + fault.stall_ticks;
    queue_.schedule_after(d, [shared] { (*shared)(); });
  }
}

void Network::deliver_or_batch(NodeId from, NodeId to, SimTime delay,
                               std::uint64_t bits, Deliver cont,
                               [[maybe_unused]] const Encoded* enc) {
  if (!batching_) {
    queue_.schedule_after(delay, std::move(cont));
    return;
  }
  const SimTime when = queue_.now() + delay;
  // Append is legal only when this delivery is provably the immediate
  // (when, seq) successor of the batch's tail: same link, same delivery
  // tick — still strictly in the future, since at `when == now` the head
  // is firing or fired and its slab slot may be recycled — and NOTHING was
  // scheduled since the last append (the queue's seq watermark is
  // untouched, so unbatched seqs would have been consecutive).  Under that
  // condition, running the members back to back inside one queue event IS
  // the unbatched order, exactly.
  if (open_.active && open_.from == from && open_.to == to &&
      open_.when == when && when > queue_.now() &&
      queue_.schedule_seq() == open_.sched_seq) {
    if (open_.upgraded) {
      BatchSlot& slot = batch_slots_[open_.slot];
      if (slot.entries.size() < batch_window_) {
        slot.entries.push_back(std::move(cont));
        slot.bits.push_back(bits);
#ifndef NDEBUG
        if (enc != nullptr) slot.payloads.push_back(*enc);
#endif
        return;
      }
      // Window full: fall through to a fresh plain head.
    } else if (batch_window_ >= 2) {
      // Second member: upgrade the pending plain head into a frame
      // dispatch.  The head's queue entry keeps its (when, seq) position;
      // only its action is swapped, and the displaced continuation becomes
      // the frame's first member.
      std::uint32_t s;
      if (batch_free_.empty()) {
        s = static_cast<std::uint32_t>(batch_slots_.size());
        batch_slots_.emplace_back();
      } else {
        s = batch_free_.back();
        batch_free_.pop_back();
      }
      BatchSlot& slot = batch_slots_[s];
      slot.entries.push_back(queue_.replace_action(
          open_.head_slot, EventQueue::Action([this, s] { fire_batch(s); })));
      slot.bits.push_back(open_.head_bits);
      slot.entries.push_back(std::move(cont));
      slot.bits.push_back(bits);
#ifndef NDEBUG
      if (open_.head_has_payload) {
        slot.payloads.push_back(std::move(open_.head_payload));
      }
      if (enc != nullptr) slot.payloads.push_back(*enc);
#endif
      open_.upgraded = true;
      open_.slot = s;
      return;
    }
  }
  // Plain head of a (potential) fresh batch: scheduled exactly as a
  // --no-batch run would — the dominant never-coalesced case pays only the
  // open-batch bookkeeping below.
  const std::uint32_t head_slot = queue_.schedule_after(delay, std::move(cont));
  open_.active = true;
  open_.upgraded = false;
  open_.from = from;
  open_.to = to;
  open_.when = when;
  open_.sched_seq = queue_.schedule_seq();
  open_.head_slot = head_slot;
  open_.head_bits = bits;
#ifndef NDEBUG
  open_.head_has_payload = enc != nullptr;
  if (enc != nullptr) open_.head_payload = *enc;
#endif
}

void Network::fire_batch(std::uint32_t s) {
  // The batch is closed from here on: appends to a firing frame are
  // impossible by construction (the append test requires a future firing
  // tick), but the open_ marker may still point at this slot if nothing
  // was scheduled since the last append.
  if (open_.active && open_.upgraded && open_.slot == s) open_.active = false;
  BatchSlot& slot = batch_slots_[s];
  const std::size_t n = slot.entries.size();
  // Lazy opening guarantees a real frame: a batch only exists once a
  // second member upgraded the plain head (n==1 deliveries never come
  // through here — they fire as ordinary queue events).
  DYNCON_INVARIANT(n >= 2, "coalesced frame with fewer than two members");
  {
    // Frame economics (BatchStats only — the per-message registry charges
    // already happened at transmit time, identically to --no-batch).
    const std::uint64_t fbits = batch_frame_bits(slot.bits.data(), n);
    std::uint64_t members = 0;
    for (std::size_t i = 0; i < n; ++i) members += slot.bits[i];
    ++batch_stats_.frames;
    batch_stats_.batched_msgs += n;
    batch_stats_.frame_bits += fbits;
    batch_stats_.member_bits += members;
    ++batch_stats_.msgs_per_frame[std::bit_width(n)];
#ifndef NDEBUG
    // Assemble the real frame and round-trip it: the wire layout the
    // arithmetic above charges for must actually encode and decode.
    if (slot.payloads.size() == n) {
      const Message frame = Message::batch_frame(slot.payloads);
      const Encoded fenc = frame.encode();
      DYNCON_INVARIANT(fenc.bits == fbits,
                       "batch frame arithmetic disagrees with encode()");
      DYNCON_INVARIANT(Message::decode(fenc) == frame,
                       "wire round-trip mismatch for " + frame.str());
    }
#endif
    // The n-1 merged members each stand for one unbatched queue pop.
    queue_.count_extra_fired(n - 1);
  }
  // Run the members in append order == the unbatched (when, seq) order.
  // Move the entry vector out first: a continuation may send again and
  // grow batch_slots_, invalidating `slot`.
  std::vector<Deliver> run = std::move(slot.entries);
  slot.bits.clear();
#ifndef NDEBUG
  slot.payloads.clear();
#endif
  // Members run under guarded dispatch: a continuation that wants to inline
  // follow-on work (the controller's grant waves) must not jump ahead of its
  // sibling members — unbatched, they fire first.
  ++guard_depth_;
  for (Deliver& d : run) d();
  --guard_depth_;
  run.clear();
  batch_slots_[s].entries = std::move(run);  // hand the capacity back
  batch_free_.push_back(s);
}

void Network::deliver_spanned(std::uint64_t token) {
  // Move the hop out BEFORE running anything: the continuation may send
  // again and rehash the table.
  auto it = pending_hops_.find(token);
  DYNCON_INVARIANT(it != pending_hops_.end(), "unknown hop-span token");
  PendingHop hop = std::move(it->second);
  pending_hops_.erase(it);
  hop.span.end = queue_.now();
  obs::emit_span(hop.span);
  // The continuation runs under the SENDER's causal context, so any sends
  // it makes (forwarding an agent, acking a frame) chain to the same op.
  obs::ScopedSpanContext scope(hop.ctx);
  hop.deliver();
}

void Network::charge(const Message& prototype, std::uint64_t count) {
  if (count == 0) return;
#ifndef NDEBUG
  const Encoded enc = prototype.encode();
  DYNCON_INVARIANT(Message::decode(enc) == prototype,
                   "wire round-trip mismatch for " + prototype.str());
  ++stats_.roundtrip_checks;
  DYNCON_INVARIANT(cache_.measured_bits(prototype) == enc.bits,
                   "encode cache disagrees with encode() for " +
                       prototype.str());
  account(prototype.kind(), enc.bits, count);
#else
  // Bursts of charges repeat a handful of prototype shapes (a graceful
  // deletion emits one per handoff record); the per-kind encode cache —
  // which PR 9 grew out of the charge memo that used to live here — sizes
  // each shape once and repeats don't even pay the counting pass.
  account(prototype.kind(), cache_.measured_bits(prototype), count);
#endif
}

}  // namespace dyncon::sim

#pragma once

// Liveness watchdog: "eventually" as an enforced, testable contract.
//
// Lemma 3.2's promise — every request is eventually granted or rejected —
// is invisible to an ordinary test on a lossy network: a dropped message
// silently strands an agent, the event queue drains, and the run just
// *ends* with the request answered by nobody.  The watchdog turns that
// silence into a loud, replayable failure:
//
//   * a protocol arms a token per outstanding request (the distributed
//     controllers do this for every submission when handed a watchdog) and
//     disarms it when the completion callback fires;
//   * arming schedules a deadline probe `deadline` ticks out; if the probe
//     fires with the token still armed, the run aborts — unless a death
//     probe (below) claims recovery is still in progress, in which case
//     the deadline is extended a bounded number of times;
//   * `verify_idle()` is the drain-time check — call it after the event
//     loop empties to assert nothing is still armed.
//
// Death probes are the crash-recovery hook (ROADMAP item 3): a controller
// registers a callback that, when a request overstays its deadline, checks
// for dead lock holders and drives the orphan-lock release wave.  The
// probe returns true if it acted (or a node outage is still in progress,
// so the request may yet complete), telling the watchdog to re-arm rather
// than abort.  Probes are keyed by an owner pointer — the same discipline
// as Network's link checks — because the iterated wrapper rotates inner
// controller instances and the adaptive wrapper runs two at once.
//
// Hot-path contract (PR 4): arm/disarm are allocation-free.  Entries live
// in a recycled slot slab; a token packs (serial, slot) so lookups are
// O(1) with stale-token detection; labels are `const char*` (callers pass
// static strings such as request_type_name()).  An abort dumps a
// post-mortem — every outstanding request, the metrics snapshot, and the
// typed trace tail — to a pluggable sink (default std::cerr; parallel
// soak harnesses install a private stream so dumps never interleave),
// then throws WatchdogError.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/error.hpp"
#include "util/ids.hpp"
#include "util/inline_fn.hpp"

namespace dyncon::sim {

/// A liveness violation: a request was neither granted nor rejected by its
/// deadline (or by the time the event queue drained).
class WatchdogError : public InvariantError {
 public:
  using InvariantError::InvariantError;
};

class Watchdog {
 public:
  using Token = std::uint64_t;
  /// Invoked when a request overstays its deadline (and by
  /// run_recovery_sweep).  Returns true if the probe made progress or
  /// believes completion is still possible (e.g. a node is mid-outage);
  /// false means "nothing I can do".
  using DeathProbe = InlineFn<bool()>;

  /// `deadline` is the per-request tick budget; 0 disables the scheduled
  /// probes (only `verify_idle` then enforces anything).  The watchdog
  /// must outlive every run of `queue` that can fire one of its probes.
  Watchdog(EventQueue& queue, SimTime deadline);

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Register an outstanding request.  `what` is a short label for the
  /// post-mortem and MUST outlive the token (pass a static string, e.g.
  /// core::request_type_name).  Allocation-free in steady state.
  [[nodiscard]] Token arm(NodeId origin, const char* what);

  /// The request completed (granted, rejected, moot — any verdict counts;
  /// what the watchdog enforces is that *some* verdict arrives).
  void disarm(Token token);

  /// Drain-time check: the event queue has gone quiet, so anything still
  /// armed can never complete.  Throws WatchdogError if something is.
  void verify_idle() const;

  /// Register / remove a recovery probe.  `owner` keys removal (the same
  /// pattern as Network::set_link_check); probes run in install order.
  void add_death_probe(const void* owner, DeathProbe probe);
  void remove_death_probe(const void* owner);

  /// Run every death probe once, outside any deadline (the drain-time
  /// recovery path: queue.run(); while (run_recovery_sweep()) queue.run();
  /// verify_idle()).  Returns the number of tokens the probes resolved.
  std::size_t run_recovery_sweep();

  /// Post-mortem sink.  Default is std::cerr; nullptr silences the dump
  /// (the WatchdogError still carries the one-line reason).
  void set_sink(std::ostream* sink) { sink_ = sink; }

  /// How many times one token's deadline may be extended by a hopeful
  /// death probe before the watchdog aborts anyway.
  static constexpr std::uint32_t kMaxExtensions = 8;

  [[nodiscard]] std::size_t outstanding() const { return live_count_; }
  [[nodiscard]] std::uint64_t armed_total() const { return armed_; }
  [[nodiscard]] std::uint64_t completed_total() const { return completed_; }
  [[nodiscard]] SimTime deadline() const { return deadline_; }

 private:
  struct Slot {
    NodeId origin = kNoNode;
    const char* what = nullptr;
    SimTime armed_at = 0;
    std::uint32_t serial = 0;
    std::uint32_t extensions = 0;
    bool live = false;
  };
  struct Probe {
    const void* owner;
    DeathProbe fn;
  };

  [[nodiscard]] Slot* find(Token token);
  void on_deadline(Token token);
  /// True if any probe reports progress/hope.
  bool run_probes();
  void schedule_deadline(Token token);
  [[noreturn]] void abort_run(const std::string& why) const;

  EventQueue& queue_;
  SimTime deadline_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::vector<Probe> probes_;
  std::ostream* sink_;
  std::size_t live_count_ = 0;
  std::uint32_t next_serial_ = 1;
  std::uint64_t armed_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace dyncon::sim

#pragma once

// Liveness watchdog: "eventually" as an enforced, testable contract.
//
// Lemma 3.2's promise — every request is eventually granted or rejected —
// is invisible to an ordinary test on a lossy network: a dropped message
// silently strands an agent, the event queue drains, and the run just
// *ends* with the request answered by nobody.  The watchdog turns that
// silence into a loud, replayable failure:
//
//   * a protocol arms a token per outstanding request (the distributed
//     controllers do this for every submission when handed a watchdog) and
//     disarms it when the completion callback fires;
//   * arming schedules a deadline probe `deadline` ticks out; if the probe
//     fires with the token still armed, the run aborts;
//   * `verify_idle()` is the drain-time check — call it after the event
//     loop empties to assert nothing is still armed.
//
// An abort dumps a post-mortem to stderr — every outstanding request, the
// metrics snapshot, and the typed trace tail (the PR-2 obs layer) — then
// throws WatchdogError, which is an InvariantError so existing harnesses
// already treat it as a protocol-invariant failure.

#include <cstdint>
#include <map>
#include <string>

#include "sim/event_queue.hpp"
#include "util/error.hpp"
#include "util/ids.hpp"

namespace dyncon::sim {

/// A liveness violation: a request was neither granted nor rejected by its
/// deadline (or by the time the event queue drained).
class WatchdogError : public InvariantError {
 public:
  using InvariantError::InvariantError;
};

class Watchdog {
 public:
  using Token = std::uint64_t;

  /// `deadline` is the per-request tick budget; 0 disables the scheduled
  /// probes (only `verify_idle` then enforces anything).  The watchdog
  /// must outlive every run of `queue` that can fire one of its probes.
  Watchdog(EventQueue& queue, SimTime deadline);

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Register an outstanding request (`what` is a short human label for the
  /// post-mortem, e.g. "event@7").  Schedules the deadline probe.
  [[nodiscard]] Token arm(NodeId origin, std::string what);

  /// The request completed (granted, rejected, moot — any verdict counts;
  /// what the watchdog enforces is that *some* verdict arrives).
  void disarm(Token token);

  /// Drain-time check: the event queue has gone quiet, so anything still
  /// armed can never complete.  Throws WatchdogError if something is.
  void verify_idle() const;

  [[nodiscard]] std::size_t outstanding() const { return live_.size(); }
  [[nodiscard]] std::uint64_t armed_total() const { return armed_; }
  [[nodiscard]] std::uint64_t completed_total() const { return completed_; }
  [[nodiscard]] SimTime deadline() const { return deadline_; }

 private:
  struct Entry {
    NodeId origin;
    std::string what;
    SimTime armed_at;
  };

  [[noreturn]] void abort_run(const std::string& why) const;

  EventQueue& queue_;
  SimTime deadline_;
  std::map<Token, Entry> live_;
  Token next_ = 0;
  std::uint64_t armed_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace dyncon::sim

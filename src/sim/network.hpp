#pragma once

// Asynchronous point-to-point message transport with cost accounting.
//
// `Network` is the only way protocol layers send anything, so its counters
// are authoritative for the paper's cost measure (message complexity) and
// for the O(log N)-bit message-size claim (§2.1.1, Lemma 4.5).  Every send
// takes a typed `Message` (sim/wire.hpp) and *measures* its encoded size —
// no caller ever claims a bit count.  In debug builds each message is also
// decoded back and compared against the original, and an optional link
// check asserts the agent layer's "only send along tree edges" contract
// instead of assuming it.
//
// Links are reliable by default.  Installing a FaultPolicy (sim/fault.hpp)
// makes them lossy: every physical transmission may be dropped, duplicated,
// or held, and the charge is for transmissions, not deliveries (a lost
// message was still sent; a duplicated one cost two sends).  Enabling the
// reliability sublayer (sim/channel.hpp) then routes every logical send
// through a per-link ARQ channel that rebuilds the reliable-FIFO
// abstraction over the faulty links — at a measured cost.  With no policy
// installed, or a policy whose rates are all zero, both features are exact
// no-ops and the run is bit-identical to one on a plain network.

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "obs/span.hpp"
#include "sim/delay.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault.hpp"
#include "sim/wire.hpp"
#include "util/ids.hpp"

namespace dyncon::sim {

class ReliableChannel;
struct ChannelConfig;

/// Per-kind and aggregate message statistics, all derived from measured
/// (encoded) sizes.
struct NetStats {
  static constexpr std::size_t kKinds =
      static_cast<std::size_t>(MsgKind::kKindCount__);

  std::uint64_t messages = 0;
  std::uint64_t total_bits = 0;
  std::uint64_t max_message_bits = 0;
  std::array<std::uint64_t, kKinds> by_kind{};
  std::array<std::uint64_t, kKinds> bits_by_kind{};
  std::array<std::uint64_t, kKinds> max_bits_by_kind{};
  /// size_histogram[w] counts messages whose encoded size has bit-width w,
  /// i.e., sizes in [2^(w-1), 2^w); bucket 0 is the (impossible) empty
  /// message.  The histogram is the measured shape exp9/exp13 report
  /// against the c*log N envelope.
  std::array<std::uint64_t, 65> size_histogram{};
  /// Number of debug-build encode->decode->compare round trips performed
  /// (0 in NDEBUG builds); lets tests assert the verification actually ran.
  std::uint64_t roundtrip_checks = 0;

  bool operator==(const NetStats&) const = default;

  [[nodiscard]] std::uint64_t kind(MsgKind k) const {
    return by_kind[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::uint64_t kind_bits(MsgKind k) const {
    return bits_by_kind[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::uint64_t kind_max_bits(MsgKind k) const {
    return max_bits_by_kind[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::string str() const;

  /// Accumulate another instance's stats (benches sum the networks of a
  /// sweep into one figure for the run report).
  void merge(const NetStats& other);
};

/// Damage the installed FaultPolicy actually inflicted (cumulative per
/// network instance; the live registry counterparts are faults.injected.*).
struct FaultStats {
  std::uint64_t drops = 0;        ///< transmissions charged but never delivered
  std::uint64_t duplicates = 0;   ///< extra deliveries injected
  std::uint64_t stalls = 0;       ///< transmissions held by a stalled endpoint
  std::uint64_t stall_ticks = 0;  ///< total hold time across those
  bool operator==(const FaultStats&) const = default;

  void merge(const FaultStats& other);
};

/// Message transport over the event queue.
class Network {
 public:
  /// Delivery continuation: an InlineFn, same as EventQueue::Action (the
  /// network moves it straight into the scheduled event).  Captures must
  /// fit InlineFn's 64-byte inline budget — oversized captures fail to
  /// compile rather than silently heap-allocate.
  using Deliver = EventQueue::Action;
  /// Debug contract hook: returns whether a (from, to, kind) send is legal
  /// under the installing protocol's topology contract.  Cold (debug-only,
  /// install-time), so std::function's flexibility is fine here.
  using LinkCheck = std::function<bool(NodeId, NodeId, MsgKind)>;

  Network(EventQueue& queue, std::unique_ptr<DelayPolicy> delay);
  ~Network();

  /// Send one encoded message; `on_deliver` fires when it arrives.  The
  /// payload size charged to the stats is measured from the encoding —
  /// senders cannot claim a size.  On a lossy network with the reliability
  /// sublayer enabled the send is routed through the per-link ARQ channel
  /// (and `on_deliver` still fires exactly once, in FIFO order per link);
  /// lossy without the sublayer, the message may simply never arrive.
  void send(NodeId from, NodeId to, const Message& msg, Deliver on_deliver);

  /// Account for `count` messages shaped like `prototype` that are modeled
  /// but not individually scheduled (e.g., a graceful-deletion data
  /// handoff, which is applied atomically but costs O(deg + log^2 U) real
  /// messages).  The per-message size is measured from the prototype.
  /// Charged traffic is exempt from fault injection: it models messages
  /// whose effect has already been applied atomically, so losing one would
  /// desynchronize the model from the state it describes.
  void charge(const Message& prototype, std::uint64_t count);

  /// Install the fault adversary consulted on every physical transmission
  /// (nullptr restores reliable links).  Deterministic given the policy's
  /// seed, so any chaos failure replays from its configuration.
  void set_fault_policy(std::unique_ptr<FaultPolicy> policy);
  [[nodiscard]] const FaultPolicy* fault_policy() const {
    return faults_.get();
  }
  /// True when an installed policy can actually injure a message.  All the
  /// fault/reliability machinery is gated on this, so a zero-rate policy is
  /// indistinguishable from no policy at all.
  [[nodiscard]] bool lossy() const {
    return faults_ != nullptr && !faults_->fault_free();
  }

  /// Engage the reliable-channel sublayer (sim/channel.hpp).  Idempotent;
  /// a strict passthrough while the network is not lossy.
  void enable_reliability();
  void enable_reliability(const ChannelConfig& cfg);
  [[nodiscard]] bool reliable() const { return channel_ != nullptr; }
  /// The engaged channel, or nullptr (for its stats/config).
  [[nodiscard]] const ReliableChannel* channel() const {
    return channel_.get();
  }

  [[nodiscard]] const FaultStats& fault_stats() const { return fault_stats_; }

  /// Opt-in strict mode: any message (sent or charged) whose measured size
  /// exceeds `limit` bits aborts the run with an InvariantError.  0
  /// disables.  Benches set this to the c*log N envelope so a message-size
  /// regression fails the experiment instead of skewing a column.
  void set_strict_max_bits(std::uint64_t limit) { strict_max_bits_ = limit; }
  [[nodiscard]] std::uint64_t strict_max_bits() const {
    return strict_max_bits_;
  }

  /// Install the debug-only adjacency hook (checked in debug builds on
  /// every send).  `owner` identifies the installer so nested protocols can
  /// replace each other's hooks and `clear_link_check` only removes its
  /// own.  The distributed controllers wire this to their DynamicTree so
  /// the header's "the agent layer only sends along tree edges" contract
  /// is asserted instead of assumed.
  void set_link_check(const void* owner, LinkCheck check);
  /// Remove the hook iff `owner` installed the current one.
  void clear_link_check(const void* owner);

  [[nodiscard]] const NetStats& stats() const { return stats_; }
  void reset_stats() { stats_ = NetStats{}; }

  [[nodiscard]] EventQueue& queue() { return queue_; }

 private:
  friend class ReliableChannel;

  /// Per-message hop-span state, parked between send and delivery.  A side
  /// table keyed by a token captured in the continuation — NOT a field of
  /// the message — so wire bytes, event timing, and the no-sink hot path
  /// are untouched; the table is populated only when a SpanSink is
  /// installed and the send happens inside a traced context.
  struct PendingHop {
    obs::Span span;
    obs::SpanContext ctx;
    Deliver deliver;
  };

  void account(MsgKind kind, std::uint64_t bits, std::uint64_t count);
  /// Deliver a span-wrapped message: close + emit its hop span, then run
  /// the continuation under the sender's causal context.
  void deliver_spanned(std::uint64_t token);
  /// One physical transmission: measure, charge (under the inner kind for
  /// channel data frames), consult the fault policy, schedule the surviving
  /// copies.  `send` routes here directly on a reliable network; the
  /// channel routes its frames (data, retransmits, acks) here so they are
  /// subject to the same faults and the same accounting as everything else.
  void transmit(NodeId from, NodeId to, const Message& msg,
                Deliver on_deliver);

  EventQueue& queue_;
  std::unique_ptr<DelayPolicy> delay_;
  std::unique_ptr<FaultPolicy> faults_;
  std::unique_ptr<ReliableChannel> channel_;
  NetStats stats_;
  FaultStats fault_stats_;
  /// Release-build charge() memo, one per kind: the last prototype charged
  /// and its measured bits, so a burst of identical charges (a graceful
  /// deletion's O(deg + log^2 U) handoff records) sizes the shape once.
  std::array<std::optional<std::pair<Message, std::uint64_t>>,
             NetStats::kKinds>
      charge_memo_;
  std::unordered_map<std::uint64_t, PendingHop> pending_hops_;
  std::uint64_t hop_token_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t strict_max_bits_ = 0;
  LinkCheck link_check_;
  const void* link_check_owner_ = nullptr;
};

}  // namespace dyncon::sim

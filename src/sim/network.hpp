#pragma once

// Asynchronous point-to-point message transport with cost accounting.
//
// `Network` is the only way protocol layers send anything, so its counters
// are authoritative for the paper's cost measure (message complexity) and
// for the O(log N)-bit message-size claim (§2.1.1, Lemma 4.5).  Every send
// takes a typed `Message` (sim/wire.hpp) and *measures* its encoded size —
// no caller ever claims a bit count.  In debug builds each message is also
// decoded back and compared against the original, and an optional link
// check asserts the agent layer's "only send along tree edges" contract
// instead of assuming it.

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "sim/delay.hpp"
#include "sim/event_queue.hpp"
#include "sim/wire.hpp"
#include "util/ids.hpp"

namespace dyncon::sim {

/// Per-kind and aggregate message statistics, all derived from measured
/// (encoded) sizes.
struct NetStats {
  static constexpr std::size_t kKinds =
      static_cast<std::size_t>(MsgKind::kKindCount__);

  std::uint64_t messages = 0;
  std::uint64_t total_bits = 0;
  std::uint64_t max_message_bits = 0;
  std::array<std::uint64_t, kKinds> by_kind{};
  std::array<std::uint64_t, kKinds> bits_by_kind{};
  std::array<std::uint64_t, kKinds> max_bits_by_kind{};
  /// size_histogram[w] counts messages whose encoded size has bit-width w,
  /// i.e., sizes in [2^(w-1), 2^w); bucket 0 is the (impossible) empty
  /// message.  The histogram is the measured shape exp9/exp13 report
  /// against the c*log N envelope.
  std::array<std::uint64_t, 65> size_histogram{};
  /// Number of debug-build encode->decode->compare round trips performed
  /// (0 in NDEBUG builds); lets tests assert the verification actually ran.
  std::uint64_t roundtrip_checks = 0;

  [[nodiscard]] std::uint64_t kind(MsgKind k) const {
    return by_kind[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::uint64_t kind_bits(MsgKind k) const {
    return bits_by_kind[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::uint64_t kind_max_bits(MsgKind k) const {
    return max_bits_by_kind[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::string str() const;

  /// Accumulate another instance's stats (benches sum the networks of a
  /// sweep into one figure for the run report).
  void merge(const NetStats& other);
};

/// Message transport over the event queue.
class Network {
 public:
  using Deliver = std::function<void()>;
  /// Debug contract hook: returns whether a (from, to, kind) send is legal
  /// under the installing protocol's topology contract.
  using LinkCheck = std::function<bool(NodeId, NodeId, MsgKind)>;

  Network(EventQueue& queue, std::unique_ptr<DelayPolicy> delay);

  /// Send one encoded message; `on_deliver` fires when it arrives.  The
  /// payload size charged to the stats is measured from the encoding —
  /// senders cannot claim a size.
  void send(NodeId from, NodeId to, const Message& msg, Deliver on_deliver);

  /// Account for `count` messages shaped like `prototype` that are modeled
  /// but not individually scheduled (e.g., a graceful-deletion data
  /// handoff, which is applied atomically but costs O(deg + log^2 U) real
  /// messages).  The per-message size is measured from the prototype.
  void charge(const Message& prototype, std::uint64_t count);

  /// Opt-in strict mode: any message (sent or charged) whose measured size
  /// exceeds `limit` bits aborts the run with an InvariantError.  0
  /// disables.  Benches set this to the c*log N envelope so a message-size
  /// regression fails the experiment instead of skewing a column.
  void set_strict_max_bits(std::uint64_t limit) { strict_max_bits_ = limit; }
  [[nodiscard]] std::uint64_t strict_max_bits() const {
    return strict_max_bits_;
  }

  /// Install the debug-only adjacency hook (checked in debug builds on
  /// every send).  `owner` identifies the installer so nested protocols can
  /// replace each other's hooks and `clear_link_check` only removes its
  /// own.  The distributed controllers wire this to their DynamicTree so
  /// the header's "the agent layer only sends along tree edges" contract
  /// is asserted instead of assumed.
  void set_link_check(const void* owner, LinkCheck check);
  /// Remove the hook iff `owner` installed the current one.
  void clear_link_check(const void* owner);

  [[nodiscard]] const NetStats& stats() const { return stats_; }
  void reset_stats() { stats_ = NetStats{}; }

  [[nodiscard]] EventQueue& queue() { return queue_; }

 private:
  void account(MsgKind kind, std::uint64_t bits, std::uint64_t count);

  EventQueue& queue_;
  std::unique_ptr<DelayPolicy> delay_;
  NetStats stats_;
  std::uint64_t seq_ = 0;
  std::uint64_t strict_max_bits_ = 0;
  LinkCheck link_check_;
  const void* link_check_owner_ = nullptr;
};

}  // namespace dyncon::sim

#pragma once

// Asynchronous point-to-point message transport with cost accounting.
//
// `Network` is the only way protocol layers send anything, so its counters
// are authoritative for the paper's cost measure (message complexity) and
// for the O(log N)-bit message-size claim (§2.1.1, Lemma 4.5).  It does not
// know about tree topology; the agent layer is responsible for only sending
// along tree edges.

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "sim/delay.hpp"
#include "sim/event_queue.hpp"
#include "util/ids.hpp"

namespace dyncon::sim {

/// Accounting category of a message; the paper's bounds decompose by these.
enum class MsgKind : std::uint8_t {
  kAgent,       ///< request-handling agent hop (the dominant cost term)
  kReject,      ///< reject-wave flooding (O(U) total)
  kControl,     ///< broadcast/upcast for iteration management (Obs. 2.1, App. A)
  kDataMove,    ///< graceful-deletion data handoff to parent
  kApp,         ///< application-layer traffic (DFS relabeling, estimates, ...)
  kKindCount__  ///< sentinel
};

[[nodiscard]] const char* msg_kind_name(MsgKind kind);

/// Per-kind and aggregate message statistics.
struct NetStats {
  std::uint64_t messages = 0;
  std::uint64_t total_bits = 0;
  std::uint64_t max_message_bits = 0;
  std::array<std::uint64_t, static_cast<std::size_t>(MsgKind::kKindCount__)>
      by_kind{};

  [[nodiscard]] std::uint64_t kind(MsgKind k) const {
    return by_kind[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::string str() const;
};

/// Message transport over the event queue.
class Network {
 public:
  using Deliver = std::function<void()>;

  Network(EventQueue& queue, std::unique_ptr<DelayPolicy> delay);

  /// Send one message; `on_deliver` fires when it arrives.
  /// `payload_bits` is the encoded size the sender claims; the counter
  /// `max_message_bits` lets tests verify the O(log N) message-size bound.
  void send(NodeId from, NodeId to, MsgKind kind, std::uint64_t payload_bits,
            Deliver on_deliver);

  /// Account for `count` messages of `bits_each` bits that are modeled but
  /// not individually scheduled (e.g., a graceful-deletion data handoff,
  /// which is applied atomically but costs O(deg + log^2 U) real messages).
  void charge(MsgKind kind, std::uint64_t count, std::uint64_t bits_each);

  [[nodiscard]] const NetStats& stats() const { return stats_; }
  void reset_stats() { stats_ = NetStats{}; }

  [[nodiscard]] EventQueue& queue() { return queue_; }

 private:
  EventQueue& queue_;
  std::unique_ptr<DelayPolicy> delay_;
  NetStats stats_;
  std::uint64_t seq_ = 0;
};

}  // namespace dyncon::sim

#pragma once

// Asynchronous point-to-point message transport with cost accounting.
//
// `Network` is the only way protocol layers send anything, so its counters
// are authoritative for the paper's cost measure (message complexity) and
// for the O(log N)-bit message-size claim (§2.1.1, Lemma 4.5).  Every send
// takes a typed `Message` (sim/wire.hpp) and *measures* its encoded size —
// no caller ever claims a bit count.  In debug builds each message is also
// decoded back and compared against the original, and an optional link
// check asserts the agent layer's "only send along tree edges" contract
// instead of assuming it.
//
// Links are reliable by default.  Installing a FaultPolicy (sim/fault.hpp)
// makes them lossy: every physical transmission may be dropped, duplicated,
// or held, and the charge is for transmissions, not deliveries (a lost
// message was still sent; a duplicated one cost two sends).  Enabling the
// reliability sublayer (sim/channel.hpp) then routes every logical send
// through a per-link ARQ channel that rebuilds the reliable-FIFO
// abstraction over the faulty links — at a measured cost.  With no policy
// installed, or a policy whose rates are all zero, both features are exact
// no-ops and the run is bit-identical to one on a plain network.

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "obs/span.hpp"
#include "sim/delay.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault.hpp"
#include "sim/wire.hpp"
#include "util/ids.hpp"

namespace dyncon::sim {

class ReliableChannel;
struct ChannelConfig;

/// Per-kind and aggregate message statistics, all derived from measured
/// (encoded) sizes.
struct NetStats {
  static constexpr std::size_t kKinds =
      static_cast<std::size_t>(MsgKind::kKindCount__);

  std::uint64_t messages = 0;
  std::uint64_t total_bits = 0;
  std::uint64_t max_message_bits = 0;
  std::array<std::uint64_t, kKinds> by_kind{};
  std::array<std::uint64_t, kKinds> bits_by_kind{};
  std::array<std::uint64_t, kKinds> max_bits_by_kind{};
  /// size_histogram[w] counts messages whose encoded size has bit-width w,
  /// i.e., sizes in [2^(w-1), 2^w); bucket 0 is the (impossible) empty
  /// message.  The histogram is the measured shape exp9/exp13 report
  /// against the c*log N envelope.
  std::array<std::uint64_t, 65> size_histogram{};
  /// Number of debug-build encode->decode->compare round trips performed
  /// (0 in NDEBUG builds); lets tests assert the verification actually ran.
  std::uint64_t roundtrip_checks = 0;

  bool operator==(const NetStats&) const = default;

  [[nodiscard]] std::uint64_t kind(MsgKind k) const {
    return by_kind[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::uint64_t kind_bits(MsgKind k) const {
    return bits_by_kind[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::uint64_t kind_max_bits(MsgKind k) const {
    return max_bits_by_kind[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::string str() const;

  /// Accumulate another instance's stats (benches sum the networks of a
  /// sweep into one figure for the run report).
  void merge(const NetStats& other);
};

/// Economics of the same-edge delivery coalescing layer (PR 9).  These are
/// *frame* metrics, deliberately kept OUT of NetStats and the metrics
/// registry: logical per-message accounting stays bit-identical between
/// batched and --no-batch runs (the acceptance contract), while this struct
/// records what the coalesced frames would cost a real transport.  Exported
/// to reports only as the perf.batch.* bench family.
struct BatchStats {
  std::uint64_t frames = 0;        ///< coalesced frames fired (>= 2 msgs)
  std::uint64_t batched_msgs = 0;  ///< messages delivered inside those frames
  std::uint64_t frame_bits = 0;    ///< measured BatchFrame wire cost
  std::uint64_t member_bits = 0;   ///< what the same messages cost singly
  /// msgs_per_frame[w] counts frames whose message count has bit-width w
  /// (same log2 bucketing as NetStats::size_histogram).
  std::array<std::uint64_t, 33> msgs_per_frame{};
  bool operator==(const BatchStats&) const = default;

  void merge(const BatchStats& other);
};

/// Damage the installed FaultPolicy actually inflicted (cumulative per
/// network instance; the live registry counterparts are faults.injected.*).
struct FaultStats {
  std::uint64_t drops = 0;        ///< transmissions charged but never delivered
  std::uint64_t duplicates = 0;   ///< extra deliveries injected
  std::uint64_t stalls = 0;       ///< transmissions held by a stalled endpoint
  std::uint64_t stall_ticks = 0;  ///< total hold time across those
  bool operator==(const FaultStats&) const = default;

  void merge(const FaultStats& other);
};

/// Message transport over the event queue.
class Network {
 public:
  /// Delivery continuation: an InlineFn, same as EventQueue::Action (the
  /// network moves it straight into the scheduled event).  Captures must
  /// fit InlineFn's 64-byte inline budget — oversized captures fail to
  /// compile rather than silently heap-allocate.
  using Deliver = EventQueue::Action;
  /// Debug contract hook: returns whether a (from, to, kind) send is legal
  /// under the installing protocol's topology contract.  Cold (debug-only,
  /// install-time), so std::function's flexibility is fine here.
  using LinkCheck = std::function<bool(NodeId, NodeId, MsgKind)>;

  Network(EventQueue& queue, std::unique_ptr<DelayPolicy> delay);
  ~Network();

  /// Send one encoded message; `on_deliver` fires when it arrives.  The
  /// payload size charged to the stats is measured from the encoding —
  /// senders cannot claim a size.  On a lossy network with the reliability
  /// sublayer enabled the send is routed through the per-link ARQ channel
  /// (and `on_deliver` still fires exactly once, in FIFO order per link);
  /// lossy without the sublayer, the message may simply never arrive.
  void send(NodeId from, NodeId to, const Message& msg, Deliver on_deliver);

  /// Account for `count` messages shaped like `prototype` that are modeled
  /// but not individually scheduled (e.g., a graceful-deletion data
  /// handoff, which is applied atomically but costs O(deg + log^2 U) real
  /// messages).  The per-message size is measured from the prototype.
  /// Charged traffic is exempt from fault injection: it models messages
  /// whose effect has already been applied atomically, so losing one would
  /// desynchronize the model from the state it describes.
  void charge(const Message& prototype, std::uint64_t count);

  /// Install the fault adversary consulted on every physical transmission
  /// (nullptr restores reliable links).  Deterministic given the policy's
  /// seed, so any chaos failure replays from its configuration.
  void set_fault_policy(std::unique_ptr<FaultPolicy> policy);
  [[nodiscard]] const FaultPolicy* fault_policy() const {
    return faults_.get();
  }
  /// True when an installed policy can actually injure a message.  All the
  /// fault/reliability machinery is gated on this, so a zero-rate policy is
  /// indistinguishable from no policy at all.
  [[nodiscard]] bool lossy() const {
    return faults_ != nullptr && !faults_->fault_free();
  }

  /// Engage the reliable-channel sublayer (sim/channel.hpp).  Idempotent;
  /// a strict passthrough while the network is not lossy.
  void enable_reliability();
  void enable_reliability(const ChannelConfig& cfg);
  [[nodiscard]] bool reliable() const { return channel_ != nullptr; }
  /// The engaged channel, or nullptr (for its stats/config).
  [[nodiscard]] const ReliableChannel* channel() const {
    return channel_.get();
  }

  [[nodiscard]] const FaultStats& fault_stats() const { return fault_stats_; }

  /// Opt-in strict mode: any message (sent or charged) whose measured size
  /// exceeds `limit` bits aborts the run with an InvariantError.  0
  /// disables.  Benches set this to the c*log N envelope so a message-size
  /// regression fails the experiment instead of skewing a column.
  void set_strict_max_bits(std::uint64_t limit) { strict_max_bits_ = limit; }
  [[nodiscard]] std::uint64_t strict_max_bits() const {
    return strict_max_bits_;
  }

  /// Install the debug-only adjacency hook (checked in debug builds on
  /// every send).  `owner` identifies the installer so nested protocols can
  /// replace each other's hooks and `clear_link_check` only removes its
  /// own.  The distributed controllers wire this to their DynamicTree so
  /// the header's "the agent layer only sends along tree edges" contract
  /// is asserted instead of assumed.
  void set_link_check(const void* owner, LinkCheck check);
  /// Remove the hook iff `owner` installed the current one.
  void clear_link_check(const void* owner);

  [[nodiscard]] const NetStats& stats() const { return stats_; }
  void reset_stats() { stats_ = NetStats{}; }

  /// Same-edge delivery coalescing: consecutive sends on one (src, dst)
  /// link, bound for the same delivery tick with nothing else scheduled in
  /// between, merge into one BatchFrame event (up to the window).  ON by
  /// default — coalescing is exact: per-message accounting, fault draws,
  /// delay draws, and the (when, seq) firing order are all unchanged, so a
  /// batched run is byte-identical to a --no-batch run.
  void set_batching(bool on) { batching_ = on; }
  [[nodiscard]] bool batching() const { return batching_; }
  /// Maximum messages coalesced into one frame (>= 1; 1 disables merging).
  void set_batch_window(std::uint32_t window) {
    DYNCON_REQUIRE(window >= 1, "batch window must be >= 1");
    batch_window_ = window;
  }
  [[nodiscard]] std::uint32_t batch_window() const { return batch_window_; }

  [[nodiscard]] const BatchStats& batch_stats() const { return batch_stats_; }
  /// The per-kind encode cache (for its hit/lookup counters).
  [[nodiscard]] const EncodeCache& encode_cache() const { return cache_; }

  /// True while the current event still has transport work queued BEHIND the
  /// continuation now running: a coalesced frame delivering its remaining
  /// members, or the ARQ channel releasing held frames / about to send its
  /// ack.  Inline fast paths that rely on "nothing happens between this
  /// point and the next queue pop" (the controller's inline grant waves)
  /// must check this and fall back to scheduling, or their sends would
  /// consume delay/fault draws ahead of the pending transport work and the
  /// run would diverge from its unbatched twin.
  [[nodiscard]] bool guarded_dispatch() const { return guard_depth_ != 0; }

  [[nodiscard]] EventQueue& queue() { return queue_; }

 private:
  friend class ReliableChannel;

  /// Per-message hop-span state, parked between send and delivery.  A side
  /// table keyed by a token captured in the continuation — NOT a field of
  /// the message — so wire bytes, event timing, and the no-sink hot path
  /// are untouched; the table is populated only when a SpanSink is
  /// installed and the send happens inside a traced context.
  struct PendingHop {
    obs::Span span;
    obs::SpanContext ctx;
    Deliver deliver;
  };

  /// One pooled coalescing buffer: the continuations (and measured sizes)
  /// of the deliveries merged into one scheduled BatchFrame event.  All
  /// vectors retain capacity across reuse — zero steady-state allocation.
  struct BatchSlot {
    std::vector<Deliver> entries;
    std::vector<std::uint64_t> bits;
#ifndef NDEBUG
    std::vector<Encoded> payloads;  ///< real encodings, for the frame
                                    ///< round-trip check
#endif
  };

  /// The one batch currently accepting appends (at most one: adjacency is
  /// what makes coalescing order-exact).  A batch opens LAZILY: the head
  /// delivery is scheduled plain — exactly the --no-batch path — and only
  /// a second coalescible send upgrades the pending queue entry into a
  /// frame dispatch (EventQueue::replace_action).  The dominant n==1 case
  /// therefore pays a few stores here and nothing else.
  struct OpenBatch {
    bool active = false;
    bool upgraded = false;  ///< head entry already swapped for fire_batch
    NodeId from = 0;
    NodeId to = 0;
    SimTime when = 0;           ///< delivery tick of every member
    std::uint64_t sched_seq = 0;  ///< queue seq watermark at open/append —
                                  ///< any scheduling in between closes it
    std::uint32_t head_slot = 0;  ///< queue slab slot of the plain head
    std::uint64_t head_bits = 0;  ///< head's measured size, for the frame
    std::uint32_t slot = 0;       ///< batch slot, meaningful once upgraded
#ifndef NDEBUG
    Encoded head_payload;  ///< head's real encoding, for the round trip
    bool head_has_payload = false;
#endif
  };

  void account(MsgKind kind, std::uint64_t bits, std::uint64_t count);
  /// Deliver a span-wrapped message: close + emit its hop span, then run
  /// the continuation under the sender's causal context.
  void deliver_spanned(std::uint64_t token);
  /// One physical transmission: measure, charge (under the inner kind for
  /// channel data frames), consult the fault policy, schedule the surviving
  /// copies.  `send` routes here directly on a reliable network; the
  /// channel routes its frames (data, retransmits, acks) here so they are
  /// subject to the same faults and the same accounting as everything else.
  void transmit(NodeId from, NodeId to, const Message& msg,
                Deliver on_deliver);
  /// Schedule one surviving delivery — appending to the open batch when the
  /// coalescing conditions hold, else opening a fresh one.  `enc` is the
  /// debug-build encoding (null in release), kept for the frame round trip.
  void deliver_or_batch(NodeId from, NodeId to, SimTime delay,
                        std::uint64_t bits, Deliver cont, const Encoded* enc);
  /// Fire a batch: record frame economics, credit the merged continuations
  /// as fired events, run every entry in append (== seq) order.
  void fire_batch(std::uint32_t slot);

  EventQueue& queue_;
  std::unique_ptr<DelayPolicy> delay_;
  std::unique_ptr<FaultPolicy> faults_;
  std::unique_ptr<ReliableChannel> channel_;
  NetStats stats_;
  FaultStats fault_stats_;
  BatchStats batch_stats_;
  /// Per-kind encode cache: measured sizes for the release transmit/charge
  /// paths (supersedes the PR-4 charge memo), full bytes for the channel's
  /// inner-payload embedding.
  EncodeCache cache_;
  std::vector<BatchSlot> batch_slots_;
  std::vector<std::uint32_t> batch_free_;  ///< recycled slot indices
  OpenBatch open_;
  std::uint32_t guard_depth_ = 0;  ///< see guarded_dispatch()
  bool batching_ = true;
  std::uint32_t batch_window_ = 16;
  std::unordered_map<std::uint64_t, PendingHop> pending_hops_;
  std::uint64_t hop_token_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t strict_max_bits_ = 0;
  LinkCheck link_check_;
  const void* link_check_owner_ = nullptr;
};

}  // namespace dyncon::sim
